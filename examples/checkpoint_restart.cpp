// The paper's case study end to end (§4, Figure 8): a parallel application
// computes, periodically checkpoints its distributed state with the
// lightweight checkpoint operation, then the whole deployment is torn
// down ("machine crash") and a *fresh* deployment over the same
// file-backed storage recovers the state from the most recent named
// checkpoint.
//
// The same run also executes the two traditional-PFS alternatives on the
// same substrate and prints the three timings side by side.
//
//   $ ./checkpoint_restart [ranks] [megabytes-per-rank]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "checkpoint/checkpoint.h"
#include "util/rng.h"

using namespace lwfs;

namespace {

/// A toy "simulation": each rank evolves a block of state deterministically
/// so a restarted run can verify recovery bit for bit.
std::vector<Buffer> ComputeStep(std::vector<Buffer> states, int step) {
  for (std::size_t r = 0; r < states.size(); ++r) {
    Rng rng(static_cast<std::uint64_t>(step) * 1000 + r);
    for (auto& byte : states[r]) {
      byte = static_cast<std::uint8_t>(byte ^ rng.NextU64());
    }
  }
  return states;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t nranks = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  const std::size_t mb = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;
  const std::size_t bytes_per_rank = mb << 20;

  // --- LWFS deployment over durable storage (Figure 8 MAIN(), lines 1-3) --
  const auto durable_root = std::filesystem::temp_directory_path() /
                            ("lwfs_ckpt_demo_" + std::to_string(::getpid()));
  std::filesystem::remove_all(durable_root);
  core::RuntimeOptions options;
  options.storage_servers = 4;
  options.backend = core::RuntimeOptions::Backend::kFile;
  options.file_store_root = (durable_root / "stores").string();
  options.naming_snapshot_file = (durable_root / "namespace.snap").string();

  auto runtime = core::ServiceRuntime::Start(options).value();
  runtime->AddUser("app", "secret", 1);
  auto client = runtime->MakeClient();
  auto cred = client->Login("app", "secret").value();
  auto cid = client->CreateContainer(cred).value();
  auto caps = client->GetCap(cred, cid, security::kOpAll).value();
  (void)client->Mkdir("/ckpt", true);

  std::printf("application: %u ranks x %zu MB of state, 4 file-backed "
              "storage servers\n\n",
              nranks, mb);

  // --- Compute / checkpoint loop (Figure 8 MAIN(), lines 4-7) -------------
  std::vector<Buffer> states;
  for (std::uint32_t r = 0; r < nranks; ++r) {
    states.push_back(PatternBuffer(bytes_per_rank, r));
  }
  std::string last_checkpoint;
  for (int step = 1; step <= 3; ++step) {
    states = ComputeStep(std::move(states), step);  // state <- COMPUTE()
    checkpoint::LwfsCheckpoint::Config config;
    config.path = "/ckpt/step" + std::to_string(step);
    config.cid = cid;
    config.cap = caps;
    auto stats = checkpoint::LwfsCheckpoint::Run(*runtime, config, states);
    if (!stats.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    last_checkpoint = config.path;
    std::printf("step %d: checkpointed %llu MB in %.3f s (%.0f MB/s, %llu creates)\n",
                step, static_cast<unsigned long long>(stats->bytes >> 20),
                stats->seconds, stats->throughput_mb_s(),
                static_cast<unsigned long long>(stats->creates));
  }

  // --- Whole-deployment crash & cold restart --------------------------------
  std::printf("\n*** simulated machine crash: services torn down ***\n");
  auto expected = states;  // what a correct recovery must reproduce
  states.clear();
  (void)runtime->SaveNamingSnapshot();
  client.reset();
  runtime.reset();  // everything in memory is gone

  std::printf("fresh deployment booting over the surviving storage ...\n");
  runtime = core::ServiceRuntime::Start(options).value();  // reloads snapshot
  runtime->AddUser("app", "secret", 1);
  client = runtime->MakeClient();
  cred = client->Login("app", "secret").value();
  // Re-establish authorization over the surviving container (fresh authz
  // instance; container ids restart at 1, matching the persisted objects).
  auto recovered_cid = client->CreateContainer(cred).value();
  caps = client->GetCap(cred, recovered_cid, security::kOpAll).value();

  std::printf("restarted instance recovering from %s ...\n",
              last_checkpoint.c_str());
  auto restored =
      checkpoint::LwfsCheckpoint::Restore(*runtime, caps, last_checkpoint);
  if (!restored.ok()) {
    std::fprintf(stderr, "restore failed: %s\n",
                 restored.status().ToString().c_str());
    return 1;
  }
  bool match = restored->size() == expected.size();
  for (std::size_t r = 0; match && r < expected.size(); ++r) {
    match = (*restored)[r] == expected[r];
  }
  std::printf("recovered %zu ranks, state match: %s\n\n", restored->size(),
              match ? "yes" : "NO");
  std::filesystem::remove_all(durable_root);

  // --- The same checkpoint through a traditional PFS ------------------------
  portals::Fabric pfs_fabric;
  pfs::PfsRuntimeOptions pfs_options;
  pfs_options.ost_count = 4;
  auto pfs_runtime = pfs::PfsRuntime::Start(&pfs_fabric, pfs_options).value();

  checkpoint::PfsFilePerProcess::Config fpp{"/ckpt-fpp", 1};
  auto fpp_stats =
      checkpoint::PfsFilePerProcess::Run(*pfs_runtime, fpp, expected).value();
  const std::uint64_t mds_creates = pfs_runtime->mds().creates_served();
  checkpoint::PfsSharedFile::Config shared;
  shared.path = "/ckpt-shared";
  auto shared_stats =
      checkpoint::PfsSharedFile::Run(*pfs_runtime, shared, expected).value();

  std::printf("comparison on this machine (functional, not cluster-timed):\n");
  std::printf("  %-28s %8.3f s  %4llu creates (all via MDS: %llu)\n",
              "PFS file-per-process", fpp_stats.seconds,
              static_cast<unsigned long long>(fpp_stats.creates),
              static_cast<unsigned long long>(mds_creates));
  std::printf("  %-28s %8.3f s  %4llu create\n", "PFS shared file",
              shared_stats.seconds,
              static_cast<unsigned long long>(shared_stats.creates));
  std::printf(
      "\n(cluster-scale timing comparisons are the job of the simulator:\n"
      " see bench/fig9_dump_throughput and bench/fig10_create_throughput)\n");
  return match ? 0 : 1;
}
