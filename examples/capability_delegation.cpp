// Security walk-through (§3.1): transferable credentials and capabilities,
// delegation to another process, storage-side caching, and immediate,
// *partial* revocation on a policy change.
//
//   $ ./capability_delegation
#include <cstdio>

#include "core/runtime.h"

using namespace lwfs;

namespace {

void Show(const char* what, const Status& s) {
  std::printf("  %-46s -> %s\n", what, s.ToString().c_str());
}

}  // namespace

int main() {
  core::RuntimeOptions options;
  options.storage_servers = 2;
  auto runtime = core::ServiceRuntime::Start(options).value();
  runtime->AddUser("alice", "pw-a", 100);
  runtime->AddUser("bob", "pw-b", 200);

  // Alice owns a container holding a dataset.
  auto alice = runtime->MakeClient();
  auto alice_cred = alice->Login("alice", "pw-a").value();
  auto cid = alice->CreateContainer(alice_cred).value();
  auto alice_cap = alice->GetCap(alice_cred, cid, security::kOpAll).value();
  auto oid = alice->CreateObject(0, alice_cap).value();
  Buffer data = PatternBuffer(4096, 1);
  (void)alice->WriteObject(0, alice_cap, oid, 0, ByteSpan(data));
  std::printf("alice: container %llu, dataset object %llu\n\n",
              static_cast<unsigned long long>(cid.value),
              static_cast<unsigned long long>(oid.value));

  // --- Grant + delegation ---------------------------------------------------
  // Alice grants bob read+write on the container; bob acquires his own
  // capabilities with his own credential.
  (void)alice->SetGrant(alice_cred, cid, 200,
                        security::kOpRead | security::kOpWrite);
  auto bob = runtime->MakeClient();
  auto bob_cred = bob->Login("bob", "pw-b").value();
  auto bob_read = bob->GetCap(bob_cred, cid, security::kOpRead).value();
  auto bob_write = bob->GetCap(bob_cred, cid, security::kOpWrite).value();
  std::printf("bob acquired caps: read=%s write=%s\n",
              security::OpMaskToString(bob_read.ops).c_str(),
              security::OpMaskToString(bob_write.ops).c_str());

  Show("bob reads the dataset",
       bob->ReadObjectAlloc(0, bob_read, oid, 0, 16).status());
  Show("bob writes the dataset",
       bob->WriteObject(0, bob_write, oid, 0, ByteSpan(data)));
  Show("bob tries to create (not granted)",
       bob->CreateObject(0, bob_write).status());

  // Capabilities are fully transferable: a third process holding the raw
  // bytes of bob's read capability can use it (delegation without any
  // server involvement, §3.1.2).
  Encoder wire;
  bob_read.Encode(wire);
  Decoder dec(wire.buffer());
  auto transferred = security::Capability::Decode(dec).value();
  auto third = runtime->MakeClient();
  Show("a third process uses bob's transferred cap",
       third->ReadObjectAlloc(0, transferred, oid, 0, 16).status());

  // --- Caching ---------------------------------------------------------------
  auto& server = runtime->storage_server(0);
  std::printf("\nstorage server 0: remote verifies so far = %llu "
              "(each cap verified once, then cached)\n",
              static_cast<unsigned long long>(server.remote_verifies()));

  // --- Immediate partial revocation ("chmod", §3.1.4) -------------------------
  std::printf("\nalice revokes bob's WRITE access (keeps read):\n");
  (void)alice->SetGrant(alice_cred, cid, 200, security::kOpRead);
  Show("bob writes after chmod (cached cap invalidated)",
       bob->WriteObject(0, bob_write, oid, 0, ByteSpan(data)));
  Show("bob still reads after chmod",
       bob->ReadObjectAlloc(0, bob_read, oid, 0, 16).status());

  // --- Forgery resistance -------------------------------------------------------
  std::printf("\nforgery attempts:\n");
  security::Capability forged = bob_read;
  forged.ops = security::kOpAll;  // escalate ops; tag no longer matches
  Show("bob escalates his read cap to all-ops",
       bob->CreateObject(0, forged).status());
  forged = bob_read;
  forged.expires_us += 3600LL * 1000 * 1000;  // extend lifetime
  Show("bob extends his cap's lifetime",
       bob->ReadObjectAlloc(0, forged, oid, 0, 16).status());

  // --- Credential revocation (application exit) ----------------------------------
  std::printf("\nalice's application exits; its credential is revoked:\n");
  (void)alice->RevokeCred(alice_cred.cred_id);
  Show("alice's credential used after revocation",
       alice->GetCap(alice_cred, cid, security::kOpRead).status());
  return 0;
}
