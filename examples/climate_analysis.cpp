// A post-processing pipeline on the high-level I/O library: a "climate
// model" writes a 3-D temperature dataset collectively, then an analysis
// job reads time series with data sieving and computes statistics with
// active-storage filters — all of it libraries above the LWFS-core
// (Figure 2), none of it file-system policy.
//
//   $ ./climate_analysis
#include <cstdio>
#include <cstring>

#include "core/runtime.h"
#include "libio/collective.h"
#include "libio/dataset.h"
#include "libio/sieve.h"
#include "lwfsfs/lwfsfs.h"

using namespace lwfs;

namespace {

constexpr std::uint64_t kTimesteps = 16;
constexpr std::uint64_t kLat = 32;
constexpr std::uint64_t kLon = 64;

double Temperature(std::uint64_t t, std::uint64_t lat, std::uint64_t lon) {
  // A synthetic but structured field: warm equator, seasonal drift.
  const double latitude = (static_cast<double>(lat) / kLat - 0.5) * 180.0;
  return 288.0 - 0.4 * latitude * latitude / 90.0 +
         3.0 * static_cast<double>(t) / kTimesteps +
         0.01 * static_cast<double>(lon);
}

}  // namespace

int main() {
  core::RuntimeOptions options;
  options.storage_servers = 4;
  auto runtime = core::ServiceRuntime::Start(options).value();
  runtime->AddUser("climate", "pw", 42);
  auto client = runtime->MakeClient();
  auto cred = client->Login("climate", "pw").value();
  auto cid = client->CreateContainer(cred).value();
  auto cap = client->GetCap(cred, cid, security::kOpAll).value();
  fs::FsOptions fs_options;
  fs_options.consistency = fs::FsConsistency::kRelaxed;
  auto fs = fs::LwfsFs::Mount(client.get(), cap, "/climate", fs_options).value();

  // --- Producer: create the dataset and write it collectively -----------------
  io::DatasetSpec spec{{kTimesteps, kLat, kLon}, sizeof(double)};
  auto ds = io::Dataset::Create(fs.get(), "/temperature", spec,
                                {{"units", "K"}, {"model", "toy-gcm-0.1"}})
                .value();
  std::printf("dataset /temperature: %llu x %llu x %llu float64 (%.1f MB)\n",
              (unsigned long long)kTimesteps, (unsigned long long)kLat,
              (unsigned long long)kLon, spec.ByteSize() / 1e6);

  // Each of 4 "ranks" owns a latitude band of every timestep — interleaved
  // in file space, the classic case for two-phase collective I/O.
  constexpr int kRanks = 4;
  std::vector<std::vector<io::WriteFragment>> per_rank(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    const std::uint64_t lat0 = static_cast<std::uint64_t>(r) * (kLat / kRanks);
    const std::uint64_t lat1 = lat0 + kLat / kRanks;
    for (std::uint64_t t = 0; t < kTimesteps; ++t) {
      Buffer band((lat1 - lat0) * kLon * sizeof(double));
      for (std::uint64_t lat = lat0; lat < lat1; ++lat) {
        for (std::uint64_t lon = 0; lon < kLon; ++lon) {
          const double v = Temperature(t, lat, lon);
          std::memcpy(band.data() +
                          ((lat - lat0) * kLon + lon) * sizeof(double),
                      &v, sizeof(double));
        }
      }
      const std::uint64_t offset =
          (t * kLat * kLon + lat0 * kLon) * sizeof(double);
      per_rank[static_cast<std::size_t>(r)].push_back(
          io::WriteFragment{offset, std::move(band)});
    }
  }
  auto wstats = io::CollectiveWrite(*fs, ds.file(), per_rank).value();
  std::printf("collective write: %llu fragments -> %llu writes\n",
              (unsigned long long)wstats.fragments_in,
              (unsigned long long)wstats.writes_issued);

  // --- Analysis 1: one grid point's time series (hyperslab read) -----------------
  std::uint64_t start[] = {0, kLat / 2, kLon / 2};
  std::uint64_t count[] = {kTimesteps, 1, 1};
  auto series = ds.ReadSlab(start, count).value();
  std::printf("\nequator time series (K):");
  for (std::uint64_t t = 0; t < kTimesteps; t += 4) {
    double v;
    std::memcpy(&v, series.data() + t * sizeof(double), sizeof(double));
    std::printf(" %.1f", v);
  }
  std::printf("\n");

  // --- Analysis 2: a whole latitude's series via data sieving -------------------
  std::vector<io::Fragment> fragments;
  for (std::uint64_t t = 0; t < kTimesteps; ++t) {
    const std::uint64_t offset =
        (t * kLat * kLon + (kLat / 2) * kLon) * sizeof(double);
    fragments.emplace_back(offset, kLon * sizeof(double));
  }
  Buffer lat_series(kTimesteps * kLon * sizeof(double), 0);
  auto sstats =
      io::SievedRead(*fs, ds.file(), fragments, MutableByteSpan(lat_series))
          .value();
  std::printf("sieved latitude read: %llu fragments in %llu requests "
              "(%.2fx bytes overhead)\n",
              (unsigned long long)fragments.size(),
              (unsigned long long)sstats.requests, sstats.overhead());

  // --- Analysis 3: global statistics via active-storage filters ------------------
  // The dataset's bytes live in stripe objects; reduce each stripe at its
  // server and combine, moving only a few dozen bytes per server.
  double mn = 1e300, mx = -1e300, sum = 0, n = 0;
  runtime->fabric().ResetStats();
  for (const pfs::StripeTarget& stripe : ds.file().stripes) {
    core::FilterSpec fspec;
    fspec.kind = core::FilterKind::kMinMaxSumCount;
    auto attr = client->GetAttr(stripe.ost_index, cap, stripe.oid).value();
    if (attr.size == 0) continue;
    auto result = client
                      ->FilterObjectAlloc(stripe.ost_index, cap, stripe.oid, 0,
                                          attr.size, fspec)
                      .value();
    double part[4];
    std::memcpy(part, result.data(), sizeof(part));
    mn = std::min(mn, part[0]);
    mx = std::max(mx, part[1]);
    sum += part[2];
    n += part[3];
  }
  auto wire = runtime->fabric().Stats();
  std::printf("\nglobal stats via active storage: min=%.1fK max=%.1fK "
              "mean=%.1fK  (%llu bytes on the wire for a %.1f MB dataset)\n",
              mn, mx, sum / n,
              (unsigned long long)(wire.put_bytes + wire.get_bytes),
              spec.ByteSize() / 1e6);

  const bool sane = mn > 200 && mx < 350 && n == spec.ElementCount();
  std::printf("consistency check: %s\n", sane ? "ok" : "FAILED");
  return sane ? 0 : 1;
}
