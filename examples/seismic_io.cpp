// Application-specific I/O policy on the LWFS core — the "open
// architecture" claim (§3, Figure 2), on the seismic-imaging workload the
// paper's introduction motivates (Oldfield et al., reference [27]).
//
// A seismic survey produces shot gathers: for each source ("shot"), an
// array of traces (time series).  The natural write pattern is
// shot-parallel; the natural *read* pattern for migration is
// common-offset — a transpose.  General-purpose file systems force one
// layout; on LWFS the application picks its own distribution policy per
// dataset, because the core only provides containers + objects.
//
// This example stores the same survey under two application-chosen
// distribution policies and shows how the read pattern decides the winner:
//   policy A: one object per shot (write-optimal)
//   policy B: one object per offset class, distributed round-robin
//             (read-optimal for common-offset migration)
//
//   $ ./seismic_io
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/runtime.h"

using namespace lwfs;

namespace {

constexpr std::uint32_t kShots = 32;
constexpr std::uint32_t kOffsets = 16;   // traces per shot
constexpr std::uint32_t kSamples = 2048; // samples per trace
constexpr std::uint32_t kTraceBytes = kSamples * 4;

/// Deterministic synthetic trace so reads can be verified.
Buffer MakeTrace(std::uint32_t shot, std::uint32_t offset) {
  return PatternBuffer(kTraceBytes, (static_cast<std::uint64_t>(shot) << 32) | offset);
}

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

int main() {
  core::RuntimeOptions options;
  options.storage_servers = 4;
  auto runtime = core::ServiceRuntime::Start(options).value();
  runtime->AddUser("geo", "pw", 7);
  auto client = runtime->MakeClient();
  auto cred = client->Login("geo", "pw").value();
  auto cid = client->CreateContainer(cred).value();
  auto cap = client->GetCap(cred, cid, security::kOpAll).value();
  const auto nservers = static_cast<std::uint32_t>(client->storage_server_count());

  std::printf("survey: %u shots x %u offsets x %u samples (%.1f MB)\n\n",
              kShots, kOffsets, kSamples,
              static_cast<double>(kShots) * kOffsets * kTraceBytes / 1e6);

  // ---- Policy A: shot gathers — one object per shot, shot-parallel write --
  std::vector<storage::ObjectRef> shot_objects(kShots);
  auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> writers;
    for (std::uint32_t shot = 0; shot < kShots; ++shot) {
      writers.emplace_back([&, shot] {
        auto c = runtime->MakeClient();
        const std::uint32_t server = shot % nservers;  // app-chosen placement
        auto oid = c->CreateObject(server, cap).value();
        Buffer gather;
        for (std::uint32_t off = 0; off < kOffsets; ++off) {
          Buffer trace = MakeTrace(shot, off);
          gather.insert(gather.end(), trace.begin(), trace.end());
        }
        (void)c->WriteObject(server, cap, oid, 0, ByteSpan(gather));
        shot_objects[shot] = storage::ObjectRef{cid, server, oid};
      });
    }
    for (auto& w : writers) w.join();
  }
  const double write_a = Seconds(t0, std::chrono::steady_clock::now());
  std::printf("policy A (object per shot):    write %.3f s\n", write_a);

  // Common-offset read under policy A: every shot object is touched for one
  // trace — kShots small reads.
  t0 = std::chrono::steady_clock::now();
  const std::uint32_t want_offset = 5;
  std::uint64_t a_reads = 0;
  for (std::uint32_t shot = 0; shot < kShots; ++shot) {
    const auto& ref = shot_objects[shot];
    auto trace = client
                     ->ReadObjectAlloc(ref.server_index, cap, ref.oid,
                                       static_cast<std::uint64_t>(want_offset) * kTraceBytes,
                                       kTraceBytes)
                     .value();
    ++a_reads;
    if (trace != MakeTrace(shot, want_offset)) {
      std::fprintf(stderr, "policy A verify failed\n");
      return 1;
    }
  }
  const double read_a = Seconds(t0, std::chrono::steady_clock::now());
  std::printf("policy A common-offset read:   %.3f s (%llu object touches)\n\n",
              read_a, static_cast<unsigned long long>(a_reads));

  // ---- Policy B: offset classes — one object per offset, transpose layout --
  std::vector<storage::ObjectRef> offset_objects(kOffsets);
  t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> writers;
    for (std::uint32_t off = 0; off < kOffsets; ++off) {
      writers.emplace_back([&, off] {
        auto c = runtime->MakeClient();
        const std::uint32_t server = off % nservers;
        auto oid = c->CreateObject(server, cap).value();
        Buffer klass;
        for (std::uint32_t shot = 0; shot < kShots; ++shot) {
          Buffer trace = MakeTrace(shot, off);
          klass.insert(klass.end(), trace.begin(), trace.end());
        }
        (void)c->WriteObject(server, cap, oid, 0, ByteSpan(klass));
        offset_objects[off] = storage::ObjectRef{cid, server, oid};
      });
    }
    for (auto& w : writers) w.join();
  }
  const double write_b = Seconds(t0, std::chrono::steady_clock::now());
  std::printf("policy B (object per offset):  write %.3f s (transpose cost)\n",
              write_b);

  // Common-offset read under policy B: one sequential read of one object.
  t0 = std::chrono::steady_clock::now();
  const auto& ref = offset_objects[want_offset];
  auto klass = client
                   ->ReadObjectAlloc(ref.server_index, cap, ref.oid, 0,
                                     static_cast<std::uint64_t>(kShots) * kTraceBytes)
                   .value();
  const double read_b = Seconds(t0, std::chrono::steady_clock::now());
  for (std::uint32_t shot = 0; shot < kShots; ++shot) {
    Buffer expect = MakeTrace(shot, want_offset);
    if (!std::equal(expect.begin(), expect.end(),
                    klass.begin() + static_cast<std::ptrdiff_t>(shot) * kTraceBytes)) {
      std::fprintf(stderr, "policy B verify failed\n");
      return 1;
    }
  }
  std::printf("policy B common-offset read:   %.3f s (1 object touch)\n\n", read_b);

  std::printf(
      "Both layouts live in the same container under the same capability;\n"
      "the application — not the file system — owns the distribution\n"
      "policy, and can even keep both (redundant layouts) when reads\n"
      "dominate.  This is the flexibility Figure 2's upper layers buy.\n");
  return 0;
}
