// lwfs_shell: a tiny persistent file-manager shell over LwfsFs.
//
// Commands are read from stdin (one per line) against a file-backed LWFS
// deployment rooted at a state directory, so data and names survive
// between invocations:
//
//   $ echo -e "mkdir /data\nput /data/hello hello-world\nls /data" |
//       ./lwfs_shell /tmp/lwfs-state
//   $ echo "get /data/hello" | ./lwfs_shell /tmp/lwfs-state
//   hello-world
//
// Commands: mkdir <dir> | ls <dir> | put <file> <text> | get <file> |
//           stat <file> | rm <file> | mv <from> <to> | fsck | help
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/runtime.h"
#include "lwfsfs/lwfsfs.h"

using namespace lwfs;

namespace {

void Help() {
  std::printf(
      "commands:\n"
      "  mkdir <dir>         create a directory\n"
      "  ls <dir>            list a directory\n"
      "  put <file> <text>   write text to a file (created if absent)\n"
      "  get <file>          print a file's contents\n"
      "  stat <file>         show size and stripe layout\n"
      "  rm <file>           remove a file\n"
      "  mv <from> <to>      rename\n"
      "  fsck                check the file system\n"
      "  help                this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string state_dir = argc > 1 ? argv[1] : "/tmp/lwfs-shell-state";

  core::RuntimeOptions options;
  options.storage_servers = 4;
  options.backend = core::RuntimeOptions::Backend::kFile;
  options.file_store_root = state_dir + "/stores";
  options.naming_snapshot_file = state_dir + "/namespace.snap";
  auto runtime = core::ServiceRuntime::Start(options);
  if (!runtime.ok()) {
    std::fprintf(stderr, "startup failed: %s\n",
                 runtime.status().ToString().c_str());
    return 1;
  }
  (*runtime)->AddUser("shell", "shell", 1);
  auto client = (*runtime)->MakeClient();
  auto cred = client->Login("shell", "shell").value();
  // First run creates container 1; later runs re-acquire the same id.
  auto cid = client->CreateContainer(cred).value();
  auto cap = client->GetCap(cred, cid, security::kOpAll).value();
  auto fs = fs::LwfsFs::Mount(client.get(), cap, "/shell", {}).value();

  std::fprintf(stderr, "lwfs shell on %s (4 file-backed servers)\n",
               state_dir.c_str());

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd, path;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') continue;
    if (cmd == "help") {
      Help();
    } else if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "fsck") {
      auto report = fs->Fsck();
      if (!report.ok()) {
        std::printf("fsck: %s\n", report.status().ToString().c_str());
        continue;
      }
      std::printf("fsck: %llu files, %llu dirs, %llu reachable objects, "
                  "%zu orphans, %zu broken\n",
                  (unsigned long long)report->files,
                  (unsigned long long)report->directories,
                  (unsigned long long)report->reachable_objects,
                  report->orphans.size(), report->broken_files.size());
    } else if (cmd == "mkdir" && (in >> path)) {
      Status s = fs->Mkdir(path);
      if (!s.ok()) std::printf("mkdir: %s\n", s.ToString().c_str());
    } else if (cmd == "ls" && (in >> path)) {
      auto names = fs->Readdir(path == "/" ? "" : path);
      if (!names.ok()) {
        std::printf("ls: %s\n", names.status().ToString().c_str());
        continue;
      }
      for (const std::string& name : *names) std::printf("%s\n", name.c_str());
    } else if (cmd == "put" && (in >> path)) {
      std::string text;
      std::getline(in, text);
      if (!text.empty() && text[0] == ' ') text.erase(0, 1);
      auto file = fs->Exists(path) ? fs->Open(path) : fs->Create(path);
      if (!file.ok()) {
        std::printf("put: %s\n", file.status().ToString().c_str());
        continue;
      }
      Status s = fs->Write(*file, 0,
                           ByteSpan(reinterpret_cast<const std::uint8_t*>(
                                        text.data()),
                                    text.size()));
      if (s.ok()) s = fs->Truncate(*file, text.size());
      if (s.ok()) s = fs->Flush(*file);
      if (!s.ok()) std::printf("put: %s\n", s.ToString().c_str());
    } else if (cmd == "get" && (in >> path)) {
      auto file = fs->Open(path);
      if (!file.ok()) {
        std::printf("get: %s\n", file.status().ToString().c_str());
        continue;
      }
      auto size = fs->Size(*file).value_or(0);
      Buffer out(static_cast<std::size_t>(size), 0);
      auto n = fs->Read(*file, 0, MutableByteSpan(out));
      if (!n.ok()) {
        std::printf("get: %s\n", n.status().ToString().c_str());
        continue;
      }
      fwrite(out.data(), 1, static_cast<std::size_t>(*n), stdout);
      std::printf("\n");
    } else if (cmd == "stat" && (in >> path)) {
      auto file = fs->Open(path);
      if (!file.ok()) {
        std::printf("stat: %s\n", file.status().ToString().c_str());
        continue;
      }
      auto size = fs->Size(*file).value_or(0);
      std::printf("%s: %llu bytes, stripe %u B x %zu (servers:", path.c_str(),
                  (unsigned long long)size, file->stripe_size,
                  file->stripes.size());
      for (const auto& stripe : file->stripes) {
        std::printf(" %u", stripe.ost_index);
      }
      std::printf(")\n");
    } else if (cmd == "rm" && (in >> path)) {
      Status s = fs->Remove(path);
      if (!s.ok()) std::printf("rm: %s\n", s.ToString().c_str());
    } else if (cmd == "mv" && (in >> path)) {
      std::string to;
      if (in >> to) {
        Status s = fs->Rename(path, to);
        if (!s.ok()) std::printf("mv: %s\n", s.ToString().c_str());
      }
    } else {
      std::printf("unknown command (try: help)\n");
    }
  }

  Status saved = (*runtime)->SaveNamingSnapshot();
  if (!saved.ok()) {
    std::fprintf(stderr, "warning: %s\n", saved.ToString().c_str());
  }
  return 0;
}
