// Quickstart: stand up an in-process LWFS deployment, authenticate, create
// a container, acquire capabilities, and do capability-checked object I/O
// directly against a storage server — the Figure 8 MAIN() prologue plus a
// first write/read.
//
//   $ ./quickstart
#include <cstdio>

#include "core/runtime.h"

using namespace lwfs;

int main() {
  // 1. Start the LWFS-core services: authentication, authorization, four
  //    storage servers, plus the optional naming and lock services.
  core::RuntimeOptions options;
  options.storage_servers = 4;
  auto runtime = core::ServiceRuntime::Start(options);
  if (!runtime.ok()) {
    std::fprintf(stderr, "runtime: %s\n", runtime.status().ToString().c_str());
    return 1;
  }
  (*runtime)->AddUser("alice", "secret", /*uid=*/1001);
  std::printf("LWFS deployment up: authn, authz, naming, locks, %d storage servers\n",
              (*runtime)->storage_count());

  // 2. Authenticate: a transferable credential, verifiable only by the
  //    authentication service.
  auto client = (*runtime)->MakeClient();
  auto cred = client->Login("alice", "secret").value();
  std::printf("logged in: uid=%llu cred_id=%llu\n",
              static_cast<unsigned long long>(cred.uid),
              static_cast<unsigned long long>(cred.cred_id));

  // 3. Create a container (the unit of access control) and get a
  //    capability covering the operations we need.
  auto cid = client->CreateContainer(cred).value();
  auto cap = client->GetCap(cred, cid, security::kOpAll).value();
  std::printf("container %llu, capability ops=%s\n",
              static_cast<unsigned long long>(cid.value),
              security::OpMaskToString(cap.ops).c_str());

  // 4. Talk to a storage server directly — no metadata server in the data
  //    path.  The server pulls the write payload (server-directed I/O).
  const std::uint32_t server = 2;  // our choice: distribution is app policy
  auto oid = client->CreateObject(server, cap).value();
  Buffer data = PatternBuffer(1 << 20, /*seed=*/42);
  Status written = client->WriteObject(server, cap, oid, 0, ByteSpan(data));
  std::printf("wrote %zu bytes to object %llu on server %u: %s\n", data.size(),
              static_cast<unsigned long long>(oid.value), server,
              written.ToString().c_str());

  auto back = client->ReadObjectAlloc(server, cap, oid, 0, data.size()).value();
  std::printf("read back %zu bytes, match=%s\n", back.size(),
              back == data ? "yes" : "NO");

  // 5. Optionally give the object a name through the naming service.
  (void)client->Mkdir("/demo", true);
  (void)client->LinkName("/demo/first-object",
                         storage::ObjectRef{cid, server, oid});
  auto ref = client->LookupName("/demo/first-object").value();
  std::printf("named it /demo/first-object -> server %u object %llu\n",
              ref.server_index, static_cast<unsigned long long>(ref.oid.value));

  // 6. The capability cache at work: repeated operations cost no extra
  //    authorization traffic.
  for (int i = 0; i < 10; ++i) (void)client->CreateObject(server, cap);
  auto& ss = (*runtime)->storage_server(static_cast<int>(server));
  std::printf("server %u: %llu remote verifies, %llu cap-cache hits\n", server,
              static_cast<unsigned long long>(ss.remote_verifies()),
              static_cast<unsigned long long>(ss.cap_cache().hits()));
  return back == data ? 0 : 1;
}
