// E8: micro-benchmarks of the real LWFS stack — per-operation latencies of
// the core API over the in-process portals fabric.  These are supporting
// numbers (the paper's Figures are cluster-scale and run on the simulator);
// they demonstrate the library itself is usable and show where software
// time goes.
#include <benchmark/benchmark.h>

#include <atomic>

#include "core/runtime.h"
#include "pfs/pfs_runtime.h"

namespace {

using namespace lwfs;
using namespace lwfs::core;

struct Stack {
  std::unique_ptr<ServiceRuntime> runtime;
  std::unique_ptr<Client> client;
  security::Credential cred;
  storage::ContainerId cid;
  security::Capability cap;

  Stack() {
    RuntimeOptions options;
    options.storage_servers = 4;
    runtime = ServiceRuntime::Start(options).value();
    runtime->AddUser("u", "p", 1);
    client = runtime->MakeClient();
    cred = *client->Login("u", "p");
    cid = *client->CreateContainer(cred);
    cap = *client->GetCap(cred, cid, security::kOpAll);
  }
};

Stack& SharedStack() {
  static Stack stack;
  return stack;
}

void BM_Login(benchmark::State& state) {
  Stack& s = SharedStack();
  for (auto _ : state) {
    auto cred = s.client->Login("u", "p");
    if (!cred.ok()) state.SkipWithError("login failed");
  }
}
BENCHMARK(BM_Login);

void BM_GetCap(benchmark::State& state) {
  Stack& s = SharedStack();
  for (auto _ : state) {
    auto cap = s.client->GetCap(s.cred, s.cid, security::kOpRead);
    if (!cap.ok()) state.SkipWithError("getcap failed");
  }
}
BENCHMARK(BM_GetCap);

void BM_ObjectCreate(benchmark::State& state) {
  Stack& s = SharedStack();
  for (auto _ : state) {
    auto oid = s.client->CreateObject(0, s.cap);
    if (!oid.ok()) state.SkipWithError("create failed");
  }
}
BENCHMARK(BM_ObjectCreate);

void BM_Write(benchmark::State& state) {
  Stack& s = SharedStack();
  auto oid = *s.client->CreateObject(1, s.cap);
  Buffer data = PatternBuffer(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    Status st = s.client->WriteObject(1, s.cap, oid, 0, ByteSpan(data));
    if (!st.ok()) state.SkipWithError("write failed");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Write)->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20)->Arg(8 << 20);

void BM_Read(benchmark::State& state) {
  Stack& s = SharedStack();
  auto oid = *s.client->CreateObject(2, s.cap);
  const auto n = static_cast<std::size_t>(state.range(0));
  Buffer data = PatternBuffer(n, 2);
  (void)s.client->WriteObject(2, s.cap, oid, 0, ByteSpan(data));
  Buffer out(n, 0);
  for (auto _ : state) {
    auto got = s.client->ReadObject(2, s.cap, oid, 0, MutableByteSpan(out));
    if (!got.ok()) state.SkipWithError("read failed");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Read)->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20)->Arg(8 << 20);

void BM_GetAttr(benchmark::State& state) {
  Stack& s = SharedStack();
  auto oid = *s.client->CreateObject(3, s.cap);
  for (auto _ : state) {
    auto attr = s.client->GetAttr(3, s.cap, oid);
    if (!attr.ok()) state.SkipWithError("getattr failed");
  }
}
BENCHMARK(BM_GetAttr);

void BM_NameLinkLookupUnlink(benchmark::State& state) {
  Stack& s = SharedStack();
  (void)s.client->Mkdir("/bench", true);
  storage::ObjectRef ref{s.cid, 0, storage::ObjectId{1}};
  for (auto _ : state) {
    if (!s.client->LinkName("/bench/x", ref).ok() ||
        !s.client->LookupName("/bench/x").ok() ||
        !s.client->UnlinkName("/bench/x").ok()) {
      state.SkipWithError("naming op failed");
    }
  }
}
BENCHMARK(BM_NameLinkLookupUnlink);

void BM_LockUnlock(benchmark::State& state) {
  Stack& s = SharedStack();
  txn::LockKey key{s.cid.value, 99};
  for (auto _ : state) {
    auto id = s.client->TryLock(key, {0, 100}, txn::LockMode::kExclusive);
    if (!id.ok() || !s.client->Unlock(*id).ok()) {
      state.SkipWithError("lock failed");
    }
  }
}
BENCHMARK(BM_LockUnlock);

void BM_EmptyTransaction(benchmark::State& state) {
  Stack& s = SharedStack();
  TxnParticipants participants;
  participants.storage_servers = {0};
  for (auto _ : state) {
    auto txn = s.client->BeginTxn(0, s.cap, participants);
    if (!txn.ok() || !(*txn)->Commit().ok()) {
      state.SkipWithError("txn failed");
    }
  }
}
BENCHMARK(BM_EmptyTransaction);

void BM_TransactionalCreateAndName(benchmark::State& state) {
  // The Figure 8 inner loop: create + write + name inside one transaction.
  Stack& s = SharedStack();
  (void)s.client->Mkdir("/txbench", true);
  Buffer data = PatternBuffer(64 << 10, 3);
  static std::atomic<int> counter{0};
  for (auto _ : state) {
    TxnParticipants participants;
    participants.storage_servers = {0};
    participants.naming = true;
    auto txn = s.client->BeginTxn(0, s.cap, participants);
    auto oid = s.client->CreateObject(0, s.cap, (*txn)->id());
    if (!oid.ok()) {
      state.SkipWithError("create failed");
      break;
    }
    (void)s.client->WriteObject(0, s.cap, *oid, 0, ByteSpan(data));
    (void)s.client->StageLinkName(
        (*txn)->id(), "/txbench/o" + std::to_string(counter.fetch_add(1)),
        storage::ObjectRef{s.cid, 0, *oid});
    if (!(*txn)->Commit().ok()) state.SkipWithError("commit failed");
  }
}
BENCHMARK(BM_TransactionalCreateAndName);

// PFS baseline comparison points on the identical substrate.
void BM_PfsCreate(benchmark::State& state) {
  static portals::Fabric fabric;
  static auto runtime = pfs::PfsRuntime::Start(&fabric, {}).value();
  auto client = runtime->MakeClient();
  static std::atomic<int> counter{0};
  for (auto _ : state) {
    auto file =
        client->Create("/bench" + std::to_string(counter.fetch_add(1)), 1);
    if (!file.ok()) state.SkipWithError("pfs create failed");
  }
}
BENCHMARK(BM_PfsCreate);

}  // namespace

BENCHMARK_MAIN();
