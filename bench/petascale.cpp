// Petascale harness: Figures 9 and 10 at petaflop-machine client counts.
//
// The paper's scaling argument (§5) extrapolates LWFS to a machine with
// ~100k–1M clients and ~2k storage servers.  petaflop_extrapolation does
// that analytically; this bench *runs* it: every client is a
// checkpoint::WritePipeline state machine (authenticate → create → stream
// → done) driven by a small carrier pool (driver::Engine) over the live
// RPC stack — one process, 100k+ logical clients, no thread per client.
//
//  * Figure 9 shape: dump throughput vs. the per-client chunk window
//    {1, 2, 4}, every client streaming a small state payload.
//  * Figure 10 shape: create-only throughput; storage servers charge the
//    modeled ~0.25 ms create cost (≈4k creates/s/server, EXPERIMENTS.md).
//
// Under --virtual the whole stack runs on a VirtualClock: modeled service
// time costs no wall-clock and a run is bit-reproducible — --selfcheck
// runs the sweep twice from the same seed on fresh deployments and
// compares digests.  The null object store keeps per-object cost to an
// attribute record, which is what bounds peak RSS at the million scale.
//
// Results land in BENCH_petascale.json (modeled throughput, peak RSS,
// logical clients per carrier, digest).
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "checkpoint/write_pipeline.h"
#include "core/runtime.h"
#include "driver/driver.h"
#include "util/clock.h"

namespace {

using namespace lwfs;

struct Options {
  std::uint64_t clients = 100000;
  int servers = 2000;
  std::size_t carriers = 4;
  std::uint64_t seed = 1;
  std::uint64_t payload_bytes = 4096;
  std::uint64_t chunk_bytes = 1024;
  bool use_virtual = false;
  bool selfcheck = false;
};

constexpr std::uint32_t kWindows[] = {1, 2, 4};
constexpr std::size_t kCarrierInflight = 1024;

struct Point {
  std::uint32_t window = 0;  // 0 = the create-only (Figure 10) point
  double seconds = 0;        // virtual (or wall) engine time
  double mb_per_s = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t polls = 0;
  std::uint64_t completion_wakes = 0;
};

struct RunResult {
  bool ok = false;
  std::vector<Point> fig9;
  Point fig10;
  double creates_per_s = 0;
  std::uint64_t clients_per_carrier = 0;
  std::uint64_t digest = 0xCBF29CE484222325ULL;  // FNV-1a basis
};

/// FNV-1a over the 8 bytes of `v` — the determinism digest accumulates
/// only integer quantities (virtual nanoseconds and counters), never
/// doubles or wall-clock readings.
void Mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
}

std::uint64_t PeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

/// One engine pass: `opt.clients` WritePipelines sharded over
/// `opt.carriers` client endpoints.  window == 0 means create-only.
bool RunPoint(const Options& opt, core::ServiceRuntime& runtime,
              const std::vector<std::unique_ptr<core::Client>>& shards,
              const security::Capability& cap, ByteSpan payload,
              std::uint32_t window, RunResult& out, Point& point) {
  driver::EngineOptions eng;
  eng.carriers = opt.carriers;
  eng.seed = opt.seed;
  eng.max_inflight_per_carrier = kCarrierInflight;
  eng.clock = runtime.clock();
  driver::Engine engine(eng);
  for (std::uint64_t c = 0; c < opt.clients; ++c) {
    checkpoint::WritePipeline::Spec spec;
    spec.client = shards[c % shards.size()].get();
    spec.server = static_cast<std::uint32_t>(c % opt.servers);
    spec.cap = cap;
    spec.payload = payload;
    spec.chunk_bytes = opt.chunk_bytes;
    spec.window = window == 0 ? 1 : window;
    spec.create_only = window == 0;
    engine.Add(std::make_unique<checkpoint::WritePipeline>(std::move(spec)));
  }

  util::Clock* clock = runtime.clock();
  const util::Clock::TimePoint t0 = clock->Now();
  const Status status = engine.Run();
  const util::Clock::TimePoint t1 = clock->Now();
  if (!status.ok()) {
    std::fprintf(stderr, "engine run failed: %s\n", status.ToString().c_str());
    return false;
  }

  const driver::EngineStats stats = engine.stats();
  const auto elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  point.window = window;
  point.seconds = static_cast<double>(elapsed_ns) / 1e9;
  point.done = stats.done;
  point.failed = stats.failed;
  point.polls = stats.polls;
  point.completion_wakes = stats.completion_wakes;
  if (window != 0 && point.seconds > 0) {
    point.mb_per_s = static_cast<double>(opt.clients * opt.payload_bytes) /
                     1e6 / point.seconds;
  }
  out.clients_per_carrier = stats.clients_per_carrier;
  Mix(out.digest, window);
  Mix(out.digest, elapsed_ns);
  Mix(out.digest, stats.done);
  Mix(out.digest, stats.failed);
  Mix(out.digest, stats.polls);
  Mix(out.digest, stats.completion_wakes);
  return stats.failed == 0;
}

RunResult RunOnce(const Options& opt, util::Clock* clock) {
  RunResult out;

  core::RuntimeOptions options;
  options.storage_servers = opt.servers;
  options.backend = core::RuntimeOptions::Backend::kNull;
  options.storage.worker_threads = 1;
  options.storage.modeled_disk_mb_s = 400;
  options.storage.modeled_create_latency_us = 250;  // ≈4k creates/s/server
  options.clock = clock;
  auto runtime = core::ServiceRuntime::Start(options);
  if (!runtime.ok()) {
    std::fprintf(stderr, "runtime start failed: %s\n",
                 runtime.status().ToString().c_str());
    return out;
  }
  (*runtime)->AddUser("petascale", "pw", 1);

  // One login, one container, one capability — broadcast to every logical
  // client (the paper's Figure 4-a capability distribution).  Each carrier
  // gets its own RPC endpoint; the id % carriers shard contract keeps one
  // endpoint per carrier thread.
  auto admin = (*runtime)->MakeClient();
  auto cred = admin->Login("petascale", "pw");
  if (!cred.ok()) return out;
  auto cid = admin->CreateContainer(*cred);
  if (!cid.ok()) return out;
  auto cap = admin->GetCap(*cred, *cid, security::kOpAll);
  if (!cap.ok()) return out;
  std::vector<std::unique_ptr<core::Client>> shards;
  shards.reserve(opt.carriers);
  for (std::size_t i = 0; i < opt.carriers; ++i) {
    shards.push_back((*runtime)->MakeClient());
  }

  // Every client dumps the same pattern bytes: the null store discards
  // them, so one buffer serves a million clients.
  Buffer pattern(static_cast<std::size_t>(opt.payload_bytes), 0xA5);

  for (std::uint32_t window : kWindows) {
    Point point;
    if (!RunPoint(opt, **runtime, shards, *cap, ByteSpan(pattern), window,
                  out, point)) {
      return out;
    }
    out.fig9.push_back(point);
  }
  if (!RunPoint(opt, **runtime, shards, *cap, ByteSpan(pattern), 0, out,
                out.fig10)) {
    return out;
  }
  if (out.fig10.seconds > 0) {
    out.creates_per_s =
        static_cast<double>(opt.clients) / out.fig10.seconds;
  }
  out.ok = true;
  return out;
}

RunResult RunWithClock(const Options& opt) {
  if (opt.use_virtual) {
    util::VirtualClock vclock;
    util::Clock::ThreadGuard guard(&vclock);
    return RunOnce(opt, &vclock);
  }
  return RunOnce(opt, nullptr);
}

void PrintResult(const Options& opt, const RunResult& run) {
  bench::PrintHeader("Petascale checkpoint: dump throughput vs window");
  std::printf("%" PRIu64 " logical clients x %" PRIu64
              " B on %d servers, %zu carriers (%s time)\n",
              opt.clients, opt.payload_bytes, opt.servers, opt.carriers,
              opt.use_virtual ? "virtual" : "real");
  std::printf("%8s %12s %12s %12s %14s\n", "window", "seconds", "MB/s",
              "polls", "compl_wakes");
  for (const Point& p : run.fig9) {
    std::printf("%8u %12.4f %12.1f %12" PRIu64 " %14" PRIu64 "\n", p.window,
                p.seconds, p.mb_per_s, p.polls, p.completion_wakes);
  }
  bench::PrintHeader("Petascale create throughput (Figure 10 shape)");
  std::printf("%12.4f s  %12.1f creates/s  %10.1f creates/s/server\n",
              run.fig10.seconds, run.creates_per_s,
              run.creates_per_s / static_cast<double>(opt.servers));
  std::printf("\nlogical clients per carrier: %" PRIu64
              "   peak RSS: %" PRIu64 " KiB   digest: %016" PRIx64 "\n",
              run.clients_per_carrier, PeakRssKb(), run.digest);
}

void DumpJson(const Options& opt, const RunResult& run,
              const char* selfcheck) {
  const char* path = "BENCH_petascale.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"figure\": \"petascale\",\n"
               "  \"benchmark\": \"event_driven_client_engine\",\n"
               "  \"clients\": %" PRIu64 ",\n"
               "  \"storage_servers\": %d,\n"
               "  \"carriers\": %zu,\n"
               "  \"seed\": %" PRIu64 ",\n"
               "  \"virtual\": %s,\n"
               "  \"payload_bytes\": %" PRIu64 ",\n"
               "  \"chunk_bytes\": %" PRIu64 ",\n"
               "  \"window_sweep\": [\n",
               opt.clients, opt.servers, opt.carriers, opt.seed,
               opt.use_virtual ? "true" : "false", opt.payload_bytes,
               opt.chunk_bytes);
  for (std::size_t i = 0; i < run.fig9.size(); ++i) {
    const Point& p = run.fig9[i];
    std::fprintf(out,
                 "    {\"window\": %u, \"seconds\": %.6f, "
                 "\"mb_per_s\": %.2f, \"done\": %" PRIu64
                 ", \"failed\": %" PRIu64 ", \"polls\": %" PRIu64
                 ", \"completion_wakes\": %" PRIu64 "}%s\n",
                 p.window, p.seconds, p.mb_per_s, p.done, p.failed, p.polls,
                 p.completion_wakes, i + 1 < run.fig9.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"create_only\": {\"seconds\": %.6f, "
               "\"creates_per_s\": %.1f, \"creates_per_s_per_server\": %.2f},\n"
               "  \"clients_per_carrier\": %" PRIu64 ",\n"
               "  \"peak_rss_kb\": %" PRIu64 ",\n"
               "  \"digest\": \"%016" PRIx64 "\",\n"
               "  \"selfcheck\": \"%s\"\n"
               "}\n",
               run.fig10.seconds, run.creates_per_s,
               run.creates_per_s / static_cast<double>(opt.servers),
               run.clients_per_carrier, PeakRssKb(), run.digest, selfcheck);
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(a, "--virtual") == 0) {
      opt.use_virtual = true;
    } else if (std::strcmp(a, "--selfcheck") == 0) {
      opt.selfcheck = true;
    } else if (std::strcmp(a, "--smoke") == 0) {
      opt.clients = 10000;
      opt.servers = 200;
    } else if (std::strcmp(a, "--clients") == 0) {
      opt.clients = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(a, "--servers") == 0) {
      opt.servers = std::atoi(next());
    } else if (std::strcmp(a, "--carriers") == 0) {
      opt.carriers = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (std::strcmp(a, "--seed") == 0) {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(a, "--payload") == 0) {
      opt.payload_bytes = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(a, "--chunk") == 0) {
      opt.chunk_bytes = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: petascale [--virtual] [--selfcheck] [--smoke] "
                   "[--clients N] [--servers N] [--carriers N] [--seed N] "
                   "[--payload BYTES] [--chunk BYTES]\n");
      return 2;
    }
  }
  if (opt.clients == 0 || opt.servers <= 0 || opt.carriers == 0) {
    std::fprintf(stderr, "need clients > 0, servers > 0, carriers > 0\n");
    return 2;
  }

  RunResult run = RunWithClock(opt);
  if (!run.ok) return 1;
  PrintResult(opt, run);

  const char* selfcheck = "skipped";
  if (opt.selfcheck) {
    if (!opt.use_virtual) {
      std::fprintf(stderr, "--selfcheck requires --virtual (real-time runs "
                           "are not reproducible)\n");
      return 2;
    }
    std::printf("\nselfcheck: repeating the sweep from seed %" PRIu64
                " on a fresh deployment...\n",
                opt.seed);
    RunResult again = RunWithClock(opt);
    if (!again.ok) return 1;
    if (again.digest != run.digest) {
      std::printf("selfcheck FAILED: %016" PRIx64 " vs %016" PRIx64 "\n",
                  run.digest, again.digest);
      DumpJson(opt, run, "fail");
      return 1;
    }
    std::printf("selfcheck OK: both runs digest %016" PRIx64 "\n", run.digest);
    selfcheck = "pass";
  }
  DumpJson(opt, run, selfcheck);
  return 0;
}
