// Calibration-sensitivity sweep: the paper's conclusions should not hinge
// on our fitted constants.  This bench perturbs each fitted parameter
// across a wide range and reports the two headline ratios —
// (a) LWFS-vs-Lustre create throughput and (b) shared-file dump penalty —
// showing that the *shape* conclusions survive any plausible calibration.
#include <cstdio>

#include "bench_util.h"
#include "simapps/checkpoint_sim.h"

namespace {

using namespace lwfs;
using namespace lwfs::simapps;

double CreateRatio(const ClusterParams& params) {
  auto lwfs = SimulateCreates(CheckpointKind::kLwfsObjectPerProcess, params,
                              32, 1);
  auto lustre =
      SimulateCreates(CheckpointKind::kPfsFilePerProcess, params, 32, 1);
  return lwfs.ops_per_sec() / lustre.ops_per_sec();
}

double SharedPenalty(const ClusterParams& params) {
  constexpr std::uint64_t kBytes = 512ull << 20;
  auto fpp = SimulateCheckpoint(CheckpointKind::kPfsFilePerProcess, params,
                                kBytes, 1);
  auto shared =
      SimulateCheckpoint(CheckpointKind::kPfsSharedFile, params, kBytes, 1);
  return shared.throughput_mb_s() / fpp.throughput_mb_s();
}

}  // namespace

int main() {
  lwfs::bench::PrintHeader(
      "Sensitivity of the headline conclusions to calibration constants");
  std::printf("baseline: 64 clients, 16 servers, dev-cluster constants\n\n");

  // (a) The create gap vs the MDS service time (our fit: 1.45 ms).
  std::printf("%-44s %14s\n", "MDS create service time",
              "LWFS/Lustre create ratio");
  for (double ms : {0.4, 0.8, 1.45, 3.0, 6.0}) {
    ClusterParams params = ClusterParams::DevCluster(64, 16);
    params.mds_create_time = ms * 1e-3;
    std::printf("%40.2f ms  %18.1fx\n", ms, CreateRatio(params));
  }
  std::printf("-> even a 3.6x faster MDS leaves a >25x gap: the gap is\n"
              "   architectural (1 server vs m servers), not a fitted value.\n\n");

  // (a') ... and vs the per-object create cost (our fit: 0.25 ms).
  std::printf("%-44s %14s\n", "storage-server object-create time",
              "LWFS/Lustre create ratio");
  for (double ms : {0.1, 0.25, 0.5, 1.0}) {
    ClusterParams params = ClusterParams::DevCluster(64, 16);
    params.disk_op_overhead = ms * 1e-3;
    std::printf("%40.2f ms  %18.1fx\n", ms, CreateRatio(params));
  }
  std::printf("\n");

  // (b) The shared-file penalty vs the consistency-efficiency factor (the
  // one constant fitted *from* the paper's own measurement).
  std::printf("%-44s %14s\n", "shared-file drain efficiency",
              "shared/file-per-process throughput");
  for (double eff : {0.3, 0.4, 0.5, 0.6, 0.8, 1.0}) {
    ClusterParams params = ClusterParams::DevCluster(64, 16);
    params.shared_file_efficiency = eff;
    std::printf("%42.2f  %17.2fx\n", eff, SharedPenalty(params));
  }
  std::printf(
      "-> the penalty tracks the efficiency factor ~1:1, i.e. the paper's\n"
      "   measured 0.5x throughput implies a ~0.5 drain efficiency; at\n"
      "   efficiency 1.0 (no consistency tax) the shared file matches\n"
      "   file-per-process, confirming the model attributes the gap to\n"
      "   the consistency machinery and nothing else.\n\n");

  // (c) Server count sweep at fixed everything: linearity check.
  std::printf("%-44s %14s\n", "server count (64 clients)",
              "LWFS dump MB/s");
  for (int m : {2, 4, 8, 16, 32}) {
    ClusterParams params = ClusterParams::DevCluster(64, m);
    auto r = SimulateCheckpoint(CheckpointKind::kLwfsObjectPerProcess, params,
                                512ull << 20, 1);
    std::printf("%42d  %16.0f\n", m, r.throughput_mb_s());
  }
  std::printf("-> linear until the client count stops covering the servers.\n");
  return 0;
}
