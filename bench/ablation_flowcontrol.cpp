// E7 ablation: server-directed vs. client-pushed data movement under a
// burst (§2.2/§3.2).  One Red Storm-class I/O node (6 GB/s ingress,
// 400 MB/s RAID drain, finite buffers) receives a simultaneous dump from N
// clients.  Server-directed transfers queue small requests and pull into
// free buffers; eager pushes bounce off the full buffer and must resend.
#include <cstdio>

#include "bench_util.h"
#include "simapps/flow_sim.h"

int main() {
  using namespace lwfs;
  using namespace lwfs::simapps;

  bench::PrintHeader(
      "Flow-control ablation: server-directed pull vs. eager client push");
  std::printf(
      "one I/O node: 6 GB/s ingress, 400 MB/s RAID drain, 512 MB per client\n\n");
  std::printf("%8s %10s %8s %12s %12s %12s %10s\n", "clients", "buffer",
              "mode", "time (s)", "goodput", "resends", "waste/good");

  for (int clients : {8, 32, 128}) {
    for (std::uint64_t buffer_mb : {64ull, 256ull}) {
      FlowParams params;
      params.num_clients = clients;
      params.buffer_bytes = buffer_mb << 20;

      auto directed = SimulateServerDirected(params, 1);
      std::printf("%8d %8lluMB %8s %12.1f %9.0fMB/s %12llu %9.2fx\n", clients,
                  static_cast<unsigned long long>(buffer_mb), "pull",
                  directed.total_time, directed.goodput_mb_s(),
                  static_cast<unsigned long long>(directed.resends),
                  directed.wire_overhead());

      auto eager = SimulateEagerPush(params, 1);
      std::printf("%8d %8lluMB %8s %12.1f %9.0fMB/s %12llu %9.2fx\n", clients,
                  static_cast<unsigned long long>(buffer_mb), "push",
                  eager.total_time, eager.goodput_mb_s(),
                  static_cast<unsigned long long>(eager.resends),
                  eager.wire_overhead());
    }
  }

  std::printf(
      "\nBoth modes drain at the RAID rate; the cost of client-pushed I/O\n"
      "is the resend traffic — wasted network bandwidth and compute-node\n"
      "overhead that grows with the burst (Section 3.2).  Server-directed\n"
      "transfers never resend.\n");
  return 0;
}
