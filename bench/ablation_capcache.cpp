// E6 ablation (real stack): the storage-server capability cache (§3.1.2).
//
// The paper's scheme adds one explicit verify round trip to the
// authorization server on the *first* use of a capability at a storage
// server, then caches the verdict.  This bench measures, on the real
// in-process stack, the per-operation cost with the cache enabled vs.
// disabled (every request verifies remotely) — the amortization the paper
// asserts is "minimal".
#include <benchmark/benchmark.h>

#include "core/runtime.h"

namespace {

using namespace lwfs;
using namespace lwfs::core;

struct Stack {
  std::unique_ptr<ServiceRuntime> runtime;
  std::unique_ptr<Client> client;
  security::Capability cap;
  storage::ObjectId oid;

  explicit Stack(VerifyMode mode) {
    RuntimeOptions options;
    options.storage_servers = 2;
    options.storage.verify_mode = mode;
    runtime = ServiceRuntime::Start(options).value();
    runtime->AddUser("u", "p", 1);
    client = runtime->MakeClient();
    auto cred = client->Login("u", "p");
    auto cid = client->CreateContainer(*cred);
    cap = *client->GetCap(*cred, *cid, security::kOpAll);
    oid = *client->CreateObject(0, cap);
  }
};

VerifyMode ModeOf(std::int64_t arg) {
  switch (arg) {
    case 0: return VerifyMode::kAuthzEveryRequest;
    case 2: return VerifyMode::kSharedKey;
    default: return VerifyMode::kAuthzWithCache;
  }
}

const char* ModeLabel(std::int64_t arg) {
  switch (arg) {
    case 0: return "verify-every-request";
    case 2: return "shared-key (NASD/T10)";
    default: return "cap-cache (LWFS)";
  }
}

void BM_CreateObject(benchmark::State& state) {
  Stack stack(ModeOf(state.range(0)));
  for (auto _ : state) {
    auto oid = stack.client->CreateObject(0, stack.cap);
    if (!oid.ok()) state.SkipWithError("create failed");
  }
  state.counters["remote_verifies"] = static_cast<double>(
      stack.runtime->storage_server(0).remote_verifies());
  state.SetLabel(ModeLabel(state.range(0)));
}
BENCHMARK(BM_CreateObject)->Arg(1)->Arg(0)->Arg(2);

void BM_Write64K(benchmark::State& state) {
  Stack stack(ModeOf(state.range(0)));
  Buffer data = PatternBuffer(64 << 10, 1);
  for (auto _ : state) {
    Status s = stack.client->WriteObject(0, stack.cap, stack.oid, 0,
                                         ByteSpan(data));
    if (!s.ok()) state.SkipWithError("write failed");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (64 << 10));
  state.SetLabel(ModeLabel(state.range(0)));
}
BENCHMARK(BM_Write64K)->Arg(1)->Arg(0)->Arg(2);

void BM_Read64K(benchmark::State& state) {
  Stack stack(ModeOf(state.range(0)));
  Buffer data = PatternBuffer(64 << 10, 1);
  (void)stack.client->WriteObject(0, stack.cap, stack.oid, 0, ByteSpan(data));
  Buffer out(64 << 10, 0);
  for (auto _ : state) {
    auto n = stack.client->ReadObject(0, stack.cap, stack.oid, 0,
                                      MutableByteSpan(out));
    if (!n.ok()) state.SkipWithError("read failed");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (64 << 10));
  state.SetLabel(ModeLabel(state.range(0)));
}
BENCHMARK(BM_Read64K)->Arg(1)->Arg(0)->Arg(2);

// Amortization curve: K operations per freshly-acquired capability.  The
// cache pays one verify per K ops; without it, K verifies.
void BM_OpsPerFreshCap(benchmark::State& state) {
  Stack stack(VerifyMode::kAuthzWithCache);
  auto client = stack.runtime->MakeClient();
  auto cred = client->Login("u", "p");
  const auto k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto cap = client->GetCap(*cred, stack.cap.cid, security::kOpCreate);
    if (!cap.ok()) {
      state.SkipWithError("getcap failed");
      break;
    }
    for (int i = 0; i < k; ++i) {
      auto oid = client->CreateObject(0, *cap);
      if (!oid.ok()) state.SkipWithError("create failed");
    }
  }
  state.counters["ops_per_cap"] = k;
}
BENCHMARK(BM_OpsPerFreshCap)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
