// Table 1 reproduction: compute and I/O nodes for MPPs at the DOE
// laboratories, with the compute:I/O ratio.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "util/machines.h"

int main() {
  lwfs::bench::PrintHeader(
      "Table 1: Compute and I/O nodes for MPPs at the DOE laboratories");
  std::printf("%-28s %15s %10s %8s\n", "Computer", "Compute Nodes", "I/O Nodes",
              "Ratio");
  for (const lwfs::MachineInventory& machine : lwfs::Table1Machines()) {
    std::printf("%-28s %15llu %10llu %6.0f:1\n", machine.name.data(),
                static_cast<unsigned long long>(machine.compute_nodes),
                static_cast<unsigned long long>(machine.io_nodes),
                std::round(machine.Ratio()));
  }
  std::printf(
      "\nPaper values: 58:1, 62:1, 41:1, 64:1 — one to two orders of\n"
      "magnitude more compute nodes than I/O nodes (Section 2.1).\n");
  return 0;
}
