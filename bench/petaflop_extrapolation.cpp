// §4 closing-paragraph reproduction: scale the dev-cluster model to a
// theoretical petaflop machine with 100,000 compute nodes and 2,000 I/O
// nodes, and measure what fraction of the checkpoint the file-creation
// phase consumes for the traditional PFS vs. LWFS.
#include <cstdio>

#include "bench_util.h"
#include "simapps/checkpoint_sim.h"
#include "util/machines.h"

int main() {
  using namespace lwfs;
  using namespace lwfs::simapps;

  const PetaflopSpec& spec = Petaflop();
  bench::PrintHeader(
      "Petaflop extrapolation (Section 4): 100,000 compute nodes, 2,000 I/O nodes");

  ClusterParams params = ClusterParams::DevCluster(
      static_cast<int>(spec.compute_nodes), static_cast<int>(spec.io_nodes));
  params.chunk_bytes = 256ull << 20;  // coarse chunks: 100k actors
  params.jitter = 0;

  std::printf("%12s %14s %12s %12s %10s\n", "state/node", "implementation",
              "create (s)", "total (s)", "create %");
  for (std::uint64_t gb : {1ull, 2ull, 5ull}) {
    const std::uint64_t bytes = gb << 30;
    for (auto [kind, name] :
         {std::pair{CheckpointKind::kPfsFilePerProcess, "Lustre f-p-p"},
          std::pair{CheckpointKind::kLwfsObjectPerProcess, "LWFS obj-p-p"}}) {
      auto r = SimulateCheckpoint(kind, params, bytes, 1);
      std::printf("%9llu GB %14s %12.1f %12.1f %9.2f%%\n",
                  static_cast<unsigned long long>(gb), name, r.create_time,
                  r.total_time, 100.0 * r.create_time / r.total_time);
    }
  }

  std::printf(
      "\nPaper claim: with conservative scaling, creating the files for a\n"
      "checkpoint on this machine takes multiple minutes — roughly 10%% of\n"
      "the total checkpoint time — because every create serializes at the\n"
      "metadata server, while the LWFS create phase stays negligible.\n");
  return 0;
}
