// Figure 9 reproduction: checkpoint dump throughput (MB/s) vs. number of
// client processes, for 2/4/8/16 storage servers, for the three
// implementations (Lustre file-per-process, Lustre shared-file, LWFS
// object-per-process).  Each client dumps 512 MB, as in §4; every point is
// the mean of 5 jittered trials with its standard deviation.
//
// A second section sweeps the async-engine window of the *live* LWFS
// checkpoint (LwfsCheckpoint::Config::window) over {1, 2, 4, 8, 16} on the
// in-process runtime and emits BENCH_fig9.json: window=1 degenerates to
// the old serial round-trip behaviour, wider windows keep every storage
// server busy, which is the overlap Figure 9's LWFS curves depend on.
// `--virtual` skips the analytic series and runs the live window sweep on
// a VirtualClock: the modeled medium charges virtual time, sleeps cost no
// wall-clock, and repeated trials of one window are bit-identical (sd 0).
// Results land in BENCH_fig9_virtual.json instead of BENCH_fig9.json.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "checkpoint/checkpoint.h"
#include "core/runtime.h"
#include "simapps/checkpoint_sim.h"
#include "util/clock.h"
#include "util/machines.h"

namespace {

using namespace lwfs;
using namespace lwfs::simapps;

constexpr int kServerCounts[] = {2, 4, 8, 16};
constexpr int kClientCounts[] = {1, 2, 4, 8, 16, 24, 32, 48, 64};

void PrintSeries(const char* title, CheckpointKind kind) {
  bench::PrintHeader(title);
  std::printf("%8s", "clients");
  for (int m : kServerCounts) std::printf("  %8dsrv %7s", m, "(sd)");
  std::printf("\n");
  const std::uint64_t bytes = DevCluster().bytes_per_client;
  for (int n : kClientCounts) {
    std::printf("%8d", n);
    for (int m : kServerCounts) {
      auto stats = bench::OverTrials([&](std::uint64_t seed) {
        return SimulateCheckpoint(kind, ClusterParams::DevCluster(n, m), bytes,
                                  seed)
            .throughput_mb_s();
      });
      std::printf("  %11.1f %7.1f", stats.mean(), stats.stddev());
    }
    std::printf("\n");
  }
}

struct SweepPoint {
  std::uint32_t window = 0;
  double mean_mb_s = 0;
  double sd = 0;
  // Server-side scheduler activity across all trials of this window: how
  // many extents the storage servers queued, how many merged runs they
  // became, and the merge count (see DESIGN.md "Server-directed
  // scheduling").
  std::uint64_t sched_requests = 0;
  std::uint64_t sched_runs = 0;
  std::uint64_t sched_merges = 0;
  std::uint64_t sched_coalesced_bytes = 0;
  // Robustness ledger for the same trials (see DESIGN.md "Fault model"):
  // requests served, retransmits absorbed by the reply cache, and frames
  // dropped for failing their wire checksum.  On a healthy in-process
  // fabric the last two stay zero — recorded so a regression that starts
  // silently retransmitting shows up in the numbers.
  std::uint64_t rpc_served = 0;
  std::uint64_t rpc_dedup_hits = 0;
  std::uint64_t rpc_crc_drops = 0;
};

struct SweepResult {
  std::vector<SweepPoint> points;
  // Per-op middleware metrics over the whole sweep (warm-up included):
  // every dispatch the deployment served, keyed "<service>.<op>", with
  // error/reject/deny counts, latency, and bulk bytes (DESIGN.md §11).
  std::vector<rpc::OpStats> op_stats;
};

/// Sweep Config::window on the live in-process stack: 64 ranks of 512 KiB
/// each on 4 storage servers whose data path is charged the modeled
/// ~400 MB/s medium bandwidth (in-process memcpy would otherwise hide the
/// service time the window is meant to overlap).  5 trials per window
/// after a discarded warm-up checkpoint.
SweepResult RunWindowSweep(util::Clock* clock = nullptr, int trials = 5) {
  constexpr std::uint32_t kRanks = 64;
  constexpr std::size_t kStateBytes = 512 << 10;
  constexpr std::uint32_t kWindows[] = {1, 2, 4, 8, 16};
  const int kTrials = trials;

  core::RuntimeOptions options;
  options.storage_servers = 4;
  options.storage.worker_threads = 2;
  options.storage.modeled_disk_mb_s = 400;
  options.clock = clock;
  auto runtime = core::ServiceRuntime::Start(options);
  if (!runtime.ok()) {
    std::fprintf(stderr, "runtime start failed: %s\n",
                 runtime.status().ToString().c_str());
    return {};
  }
  (*runtime)->AddUser("bench", "pw", 1);
  auto client = (*runtime)->MakeClient();
  auto cred = client->Login("bench", "pw");
  if (!cred.ok()) return {};
  auto cid = client->CreateContainer(*cred);
  auto cap = cid.ok() ? client->GetCap(*cred, *cid, security::kOpAll)
                      : Result<security::Capability>(cid.status());
  if (!cap.ok() || !client->Mkdir("/fig9", true).ok()) return {};

  std::vector<Buffer> states;
  states.reserve(kRanks);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    states.push_back(PatternBuffer(kStateBytes, r));
  }

  int trial_id = 0;
  {
    checkpoint::LwfsCheckpoint::Config warm;
    warm.path = "/fig9/warmup";
    warm.cid = *cid;
    warm.cap = *cap;
    auto run = checkpoint::LwfsCheckpoint::Run(**runtime, warm, states);
    if (!run.ok()) return {};
  }
  // Interleave the trials (trial-major, window-minor) so drift in the host
  // spreads evenly over every window instead of biasing whichever window
  // happened to run last.
  constexpr std::size_t kNumWindows = std::size(kWindows);
  std::vector<RunningStats> stats(kNumWindows);
  std::vector<SweepPoint> points(kNumWindows);
  for (int t = 0; t < kTrials; ++t) {
    for (std::size_t w = 0; w < kNumWindows; ++w) {
      checkpoint::LwfsCheckpoint::Config config;
      config.path = "/fig9/ckpt" + std::to_string(trial_id++);
      config.cid = *cid;
      config.cap = *cap;
      config.window = kWindows[w];
      const core::IoSchedulerStats before = (*runtime)->TotalSchedStats();
      const auto robust_before = (*runtime)->TotalRobustnessStats();
      auto run = checkpoint::LwfsCheckpoint::Run(**runtime, config, states);
      if (!run.ok()) {
        std::fprintf(stderr, "checkpoint failed: %s\n",
                     run.status().ToString().c_str());
        return {};
      }
      stats[w].Add(run->throughput_mb_s());
      const core::IoSchedulerStats after = (*runtime)->TotalSchedStats();
      points[w].sched_requests += after.requests - before.requests;
      points[w].sched_runs += after.runs - before.runs;
      points[w].sched_merges += after.merges - before.merges;
      points[w].sched_coalesced_bytes +=
          after.coalesced_bytes - before.coalesced_bytes;
      const auto robust_after = (*runtime)->TotalRobustnessStats();
      points[w].rpc_served += robust_after.rpc.served - robust_before.rpc.served;
      points[w].rpc_dedup_hits +=
          robust_after.rpc.dedup_hits - robust_before.rpc.dedup_hits;
      points[w].rpc_crc_drops +=
          robust_after.rpc.crc_drops - robust_before.rpc.crc_drops;
    }
  }
  for (std::size_t w = 0; w < kNumWindows; ++w) {
    points[w].window = kWindows[w];
    points[w].mean_mb_s = stats[w].mean();
    points[w].sd = stats[w].stddev();
  }
  return SweepResult{std::move(points), (*runtime)->TotalOpStats()};
}

void PrintAndDumpSweep(const SweepResult& sweep,
                       const char* json_path = "BENCH_fig9.json") {
  const std::vector<SweepPoint>& points = sweep.points;
  bench::PrintHeader(
      "Async-engine window sweep (live LWFS checkpoint, 64 ranks x 512 KiB, "
      "4 servers)");
  std::printf("%8s  %12s %8s %10s %8s %8s\n", "window", "MB/s", "(sd)",
              "extents", "runs", "merges");
  for (const SweepPoint& p : points) {
    std::printf("%8u  %12.1f %8.1f %10llu %8llu %8llu\n", p.window,
                p.mean_mb_s, p.sd,
                static_cast<unsigned long long>(p.sched_requests),
                static_cast<unsigned long long>(p.sched_runs),
                static_cast<unsigned long long>(p.sched_merges));
  }
  std::printf("\nwindow=1 serializes every round trip; window>=4 keeps all\n"
              "four storage servers pulling concurrently.\n");

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"figure\": \"fig9\",\n"
               "  \"benchmark\": \"lwfs_checkpoint_window_sweep\",\n"
               "  \"ranks\": 64,\n"
               "  \"state_bytes\": %zu,\n"
               "  \"storage_servers\": 4,\n"
               "  \"points\": [\n",
               static_cast<std::size_t>(512 << 10));
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::fprintf(
        out,
        "    {\"window\": %u, \"mb_per_s\": %.2f, \"sd\": %.2f, "
        "\"sched_requests\": %llu, \"sched_runs\": %llu, "
        "\"sched_merges\": %llu, \"sched_coalesced_bytes\": %llu, "
        "\"rpc_served\": %llu, \"rpc_dedup_hits\": %llu, "
        "\"rpc_crc_drops\": %llu}%s\n",
        points[i].window, points[i].mean_mb_s, points[i].sd,
        static_cast<unsigned long long>(points[i].sched_requests),
        static_cast<unsigned long long>(points[i].sched_runs),
        static_cast<unsigned long long>(points[i].sched_merges),
        static_cast<unsigned long long>(points[i].sched_coalesced_bytes),
        static_cast<unsigned long long>(points[i].rpc_served),
        static_cast<unsigned long long>(points[i].rpc_dedup_hits),
        static_cast<unsigned long long>(points[i].rpc_crc_drops),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"op_stats\": [\n");
  for (std::size_t i = 0; i < sweep.op_stats.size(); ++i) {
    const rpc::OpStats& s = sweep.op_stats[i];
    std::fprintf(
        out,
        "    {\"op\": \"%s\", \"opcode\": %u, \"calls\": %llu, "
        "\"errors\": %llu, \"rejected\": %llu, \"denied\": %llu, "
        "\"latency_us_total\": %llu, \"latency_us_max\": %llu, "
        "\"bulk_bytes\": %llu}%s\n",
        s.name.c_str(), s.opcode, static_cast<unsigned long long>(s.calls),
        static_cast<unsigned long long>(s.errors),
        static_cast<unsigned long long>(s.rejected),
        static_cast<unsigned long long>(s.denied),
        static_cast<unsigned long long>(s.latency_us_total),
        static_cast<unsigned long long>(s.latency_us_max),
        static_cast<unsigned long long>(s.bulk_bytes),
        i + 1 < sweep.op_stats.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);

  bench::PrintHeader("Per-op service metrics (whole sweep)");
  std::printf("%-28s %10s %8s %10s %12s\n", "op", "calls", "errors",
              "avg_us", "bulk_bytes");
  for (const rpc::OpStats& s : sweep.op_stats) {
    const double avg_us =
        s.calls > 0 ? static_cast<double>(s.latency_us_total) /
                          static_cast<double>(s.calls)
                    : 0.0;
    std::printf("%-28s %10llu %8llu %10.1f %12llu\n", s.name.c_str(),
                static_cast<unsigned long long>(s.calls),
                static_cast<unsigned long long>(s.errors), avg_us,
                static_cast<unsigned long long>(s.bulk_bytes));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--virtual") == 0) {
    std::printf("Figure 9 window sweep on virtual time: modeled medium,\n"
                "zero wall-clock sleeps, repeated trials bit-identical.\n");
    util::VirtualClock vclock;
    {
      util::Clock::ThreadGuard guard(&vclock);
      PrintAndDumpSweep(RunWindowSweep(&vclock, /*trials=*/2),
                        "BENCH_fig9_virtual.json");
    }
    return 0;
  }
  std::printf("Figure 9: throughput (MB/s) of the I/O-dump phase of the\n"
              "checkpoint operation, 512 MB per client, dev-cluster model.\n");
  PrintSeries("Lustre checkpoint performance (one file per process)",
              CheckpointKind::kPfsFilePerProcess);
  PrintSeries("Lustre checkpoint performance (one shared file)",
              CheckpointKind::kPfsSharedFile);
  PrintSeries("LWFS checkpoint performance (one object per process)",
              CheckpointKind::kLwfsObjectPerProcess);
  std::printf(
      "\nPaper shapes to check: file-per-process and LWFS scale with the\n"
      "number of servers and saturate near m x 95 MB/s; the shared-file\n"
      "curve sits at roughly half of them (Figure 9, Section 4).\n");
  PrintAndDumpSweep(RunWindowSweep());
  return 0;
}
