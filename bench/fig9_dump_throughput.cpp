// Figure 9 reproduction: checkpoint dump throughput (MB/s) vs. number of
// client processes, for 2/4/8/16 storage servers, for the three
// implementations (Lustre file-per-process, Lustre shared-file, LWFS
// object-per-process).  Each client dumps 512 MB, as in §4; every point is
// the mean of 5 jittered trials with its standard deviation.
#include <cstdio>

#include "bench_util.h"
#include "simapps/checkpoint_sim.h"
#include "util/machines.h"

namespace {

using namespace lwfs;
using namespace lwfs::simapps;

constexpr int kServerCounts[] = {2, 4, 8, 16};
constexpr int kClientCounts[] = {1, 2, 4, 8, 16, 24, 32, 48, 64};

void PrintSeries(const char* title, CheckpointKind kind) {
  bench::PrintHeader(title);
  std::printf("%8s", "clients");
  for (int m : kServerCounts) std::printf("  %8dsrv %7s", m, "(sd)");
  std::printf("\n");
  const std::uint64_t bytes = DevCluster().bytes_per_client;
  for (int n : kClientCounts) {
    std::printf("%8d", n);
    for (int m : kServerCounts) {
      auto stats = bench::OverTrials([&](std::uint64_t seed) {
        return SimulateCheckpoint(kind, ClusterParams::DevCluster(n, m), bytes,
                                  seed)
            .throughput_mb_s();
      });
      std::printf("  %11.1f %7.1f", stats.mean(), stats.stddev());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("Figure 9: throughput (MB/s) of the I/O-dump phase of the\n"
              "checkpoint operation, 512 MB per client, dev-cluster model.\n");
  PrintSeries("Lustre checkpoint performance (one file per process)",
              CheckpointKind::kPfsFilePerProcess);
  PrintSeries("Lustre checkpoint performance (one shared file)",
              CheckpointKind::kPfsSharedFile);
  PrintSeries("LWFS checkpoint performance (one object per process)",
              CheckpointKind::kLwfsObjectPerProcess);
  std::printf(
      "\nPaper shapes to check: file-per-process and LWFS scale with the\n"
      "number of servers and saturate near m x 95 MB/s; the shared-file\n"
      "curve sits at roughly half of them (Figure 9, Section 4).\n");
  return 0;
}
