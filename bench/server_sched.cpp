// Server-side I/O scheduler ablation: strided-small-write and
// interleaved-read workloads against the modeled medium
// (modeled_disk_mb_s + modeled_op_latency_us), scheduler off vs on.
//
// With the scheduler off every extent is serviced in arrival order and
// pays its own op (seek) cost; with it on, extents that queue behind a
// busy medium are merged into contiguous runs and serviced in offset
// order, so the op cost amortizes over the whole run — the
// noncontiguous-I/O win, executed where the paper says it belongs: at the
// server that directs the I/O.  Emits BENCH_sched.json.
//
// `--smoke` runs a seconds-scale configuration for sanitizer CI.
//
// `--virtual` runs the strided-write comparison once on the real clock and
// twice on a VirtualClock (same modeled medium, zero wall-clock sleeps),
// checks the two virtual runs are bit-identical, and emits
// BENCH_virtual.json with the modeled throughput and the wall-clock
// speedup of virtual over real.  Exits nonzero if the virtual runs differ.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/runtime.h"
#include "util/clock.h"
#include "util/stats.h"

namespace {

using namespace lwfs;

struct Params {
  std::uint32_t threads = 4;
  std::uint32_t window = 8;
  std::uint32_t extents_per_thread = 192;
  std::size_t extent_bytes = 4096;
  double disk_mb_s = 400;
  double op_latency_us = 200;
  int trials = 3;
  util::Clock* clock = nullptr;  // nullptr = real time
};

struct WorkloadResult {
  double mb_s = 0;
  core::IoSchedulerStats sched;
};

core::RuntimeOptions MakeOptions(bool scheduler_on, const Params& p) {
  core::RuntimeOptions options;
  options.storage_servers = 1;
  options.storage.scheduler = scheduler_on;
  // Enough data-plane workers that every client-side in-flight request can
  // be in service at once — the scheduler's batches (and so its merges) can
  // only be as deep as the number of concurrently blocked workers.
  options.storage.worker_threads = 16;
  options.storage.modeled_disk_mb_s = p.disk_mb_s;
  options.storage.modeled_op_latency_us = p.op_latency_us;
  options.clock = p.clock;
  return options;
}

/// Strided small writes: `threads` clients interleave 4 KiB extents into
/// one object (consecutive offsets belong to different clients), each
/// keeping `window` requests in flight.  Only server-side coalescing can
/// turn this into large contiguous accesses.
WorkloadResult RunStridedWrite(bool scheduler_on, const Params& p) {
  auto runtime = core::ServiceRuntime::Start(MakeOptions(scheduler_on, p)).value();
  runtime->AddUser("bench", "pw", 1);
  auto client = runtime->MakeClient();
  auto cred = client->Login("bench", "pw").value();
  auto cid = client->CreateContainer(cred).value();
  auto cap = client->GetCap(cred, cid, security::kOpAll).value();
  auto oid = client->CreateObject(0, cap).value();

  util::Clock* clk = util::OrReal(p.clock);
  const util::Clock::TimePoint start = clk->Now();
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < p.threads; ++t) {
    threads.push_back(clk->SpawnThread([&, t] {
      auto worker = runtime->MakeClient();
      const Buffer payload(p.extent_bytes, static_cast<std::uint8_t>(t + 1));
      core::Batch batch(worker.get(), p.window);
      for (std::uint32_t i = 0; i < p.extents_per_thread; ++i) {
        const std::uint64_t offset =
            (static_cast<std::uint64_t>(i) * p.threads + t) * p.extent_bytes;
        if (!batch.Write(0, cap, oid, offset, ByteSpan(payload)).ok()) return;
      }
      (void)batch.Drain();
    }));
  }
  for (auto& t : threads) clk->Join(t);
  const std::chrono::duration<double> elapsed = clk->Now() - start;

  WorkloadResult result;
  const double total_mb = static_cast<double>(p.threads) *
                          p.extents_per_thread * p.extent_bytes / 1e6;
  result.mb_s = total_mb / elapsed.count();
  result.sched = runtime->TotalSchedStats();
  return result;
}

/// Interleaved strided reads over a pre-populated object, same issue
/// pattern as the write workload.
WorkloadResult RunInterleavedRead(bool scheduler_on, const Params& p) {
  auto runtime = core::ServiceRuntime::Start(MakeOptions(scheduler_on, p)).value();
  runtime->AddUser("bench", "pw", 1);
  auto client = runtime->MakeClient();
  auto cred = client->Login("bench", "pw").value();
  auto cid = client->CreateContainer(cred).value();
  auto cap = client->GetCap(cred, cid, security::kOpAll).value();
  auto oid = client->CreateObject(0, cap).value();

  // Populate with large sequential writes (cheap in modeled op cost), then
  // zero the scheduler counters so every stat — including the otherwise
  // monotonic queue_depth_hwm — reflects only the measured read phase.
  const std::uint64_t total_bytes = static_cast<std::uint64_t>(p.threads) *
                                    p.extents_per_thread * p.extent_bytes;
  {
    const Buffer fill = PatternBuffer(1 << 20, 99);
    for (std::uint64_t at = 0; at < total_bytes; at += fill.size()) {
      const std::uint64_t n =
          std::min<std::uint64_t>(fill.size(), total_bytes - at);
      if (!client->WriteObject(0, cap, oid, at,
                               ByteSpan(fill.data(), static_cast<std::size_t>(n)))
               .ok()) {
        std::fprintf(stderr, "populate failed\n");
        return {};
      }
    }
  }
  runtime->ResetSchedStats();

  util::Clock* clk = util::OrReal(p.clock);
  const util::Clock::TimePoint start = clk->Now();
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < p.threads; ++t) {
    threads.push_back(clk->SpawnThread([&, t] {
      auto worker = runtime->MakeClient();
      std::vector<Buffer> slots(p.window, Buffer(p.extent_bytes, 0));
      core::Batch batch(worker.get(), p.window);
      for (std::uint32_t i = 0; i < p.extents_per_thread; ++i) {
        const std::uint64_t offset =
            (static_cast<std::uint64_t>(i) * p.threads + t) * p.extent_bytes;
        Buffer& slot = slots[i % p.window];
        if (!batch.Read(0, cap, oid, offset, MutableByteSpan(slot)).ok()) {
          return;
        }
      }
      (void)batch.Drain();
    }));
  }
  for (auto& t : threads) clk->Join(t);
  const std::chrono::duration<double> elapsed = clk->Now() - start;

  WorkloadResult result;
  result.mb_s = static_cast<double>(total_bytes) / 1e6 / elapsed.count();
  result.sched = runtime->TotalSchedStats();
  return result;
}

struct Comparison {
  const char* name;
  double off_mb_s = 0;
  double on_mb_s = 0;
  core::IoSchedulerStats sched;  // scheduler-on counters, last trial

  [[nodiscard]] double speedup() const {
    return off_mb_s > 0 ? on_mb_s / off_mb_s : 0;
  }
};

template <typename Fn>
Comparison Compare(const char* name, Fn workload, const Params& p) {
  Comparison c;
  c.name = name;
  RunningStats off_stats, on_stats;
  for (int trial = 0; trial < p.trials; ++trial) {
    off_stats.Add(workload(false, p).mb_s);
    WorkloadResult on = workload(true, p);
    on_stats.Add(on.mb_s);
    c.sched = on.sched;
  }
  c.off_mb_s = off_stats.mean();
  c.on_mb_s = on_stats.mean();
  return c;
}

void PrintComparison(const Comparison& c) {
  bench::PrintHeader(c.name);
  std::printf("%16s %12.1f MB/s\n", "scheduler off", c.off_mb_s);
  std::printf("%16s %12.1f MB/s\n", "scheduler on", c.on_mb_s);
  std::printf("%16s %12.2fx\n", "speedup", c.speedup());
  std::printf("%16s %12llu extents -> %llu runs (%llu merges, %.1f MB "
              "coalesced, queue hwm %llu)\n",
              "on-run stats",
              static_cast<unsigned long long>(c.sched.requests),
              static_cast<unsigned long long>(c.sched.runs),
              static_cast<unsigned long long>(c.sched.merges),
              static_cast<double>(c.sched.coalesced_bytes) / 1e6,
              static_cast<unsigned long long>(c.sched.queue_depth_hwm));
}

void DumpJson(const Params& p, const std::vector<Comparison>& comparisons) {
  std::FILE* out = std::fopen("BENCH_sched.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_sched.json\n");
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"server_io_scheduler\",\n"
               "  \"threads\": %u,\n"
               "  \"window\": %u,\n"
               "  \"extents_per_thread\": %u,\n"
               "  \"extent_bytes\": %zu,\n"
               "  \"modeled_disk_mb_s\": %.1f,\n"
               "  \"modeled_op_latency_us\": %.1f,\n"
               "  \"workloads\": [\n",
               p.threads, p.window, p.extents_per_thread, p.extent_bytes,
               p.disk_mb_s, p.op_latency_us);
  for (std::size_t i = 0; i < comparisons.size(); ++i) {
    const Comparison& c = comparisons[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"off_mb_s\": %.2f, \"on_mb_s\": %.2f, "
        "\"speedup\": %.3f, \"requests\": %llu, \"runs\": %llu, "
        "\"merges\": %llu, \"coalesced_bytes\": %llu, "
        "\"queue_depth_hwm\": %llu}%s\n",
        c.name, c.off_mb_s, c.on_mb_s, c.speedup(),
        static_cast<unsigned long long>(c.sched.requests),
        static_cast<unsigned long long>(c.sched.runs),
        static_cast<unsigned long long>(c.sched.merges),
        static_cast<unsigned long long>(c.sched.coalesced_bytes),
        static_cast<unsigned long long>(c.sched.queue_depth_hwm),
        i + 1 < comparisons.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_sched.json\n");
}

// ---------------------------------------------------------------------------
// --virtual: modeled benches on a VirtualClock
// ---------------------------------------------------------------------------

/// One off/on strided-write comparison with no trial averaging — the unit
/// of work timed identically on the real clock and on a VirtualClock.
Comparison RunPairOnce(const Params& p) {
  Comparison c;
  c.name = "strided-small-write (4 KiB interleaved, one object)";
  c.off_mb_s = RunStridedWrite(false, p).mb_s;
  WorkloadResult on = RunStridedWrite(true, p);
  c.on_mb_s = on.mb_s;
  c.sched = on.sched;
  return c;
}

double WallSecondsSince(util::Clock::TimePoint t0) {
  return std::chrono::duration<double>(util::RealClockInstance()->Now() - t0)
      .count();
}

int RunVirtualMode(Params p) {
  // A slower modeled medium makes the real baseline pay its sleeps for
  // real while the virtual runs skip them — that gap is the point.
  p.op_latency_us = 1000;
  std::printf("Virtual-time mode: strided-write off/on pair, once on the\n"
              "real clock and twice on a VirtualClock (modeled medium\n"
              "%.0f MB/s, %.0f us per access).\n",
              p.disk_mb_s, p.op_latency_us);

  const auto real_t0 = util::RealClockInstance()->Now();
  const Comparison real = RunPairOnce(p);
  const double real_wall_s = WallSecondsSince(real_t0);
  bench::PrintHeader("real clock");
  PrintComparison(real);
  std::printf("%16s %12.3f s\n", "wall clock", real_wall_s);

  Comparison virt[2];
  double virt_wall_s[2] = {0, 0};
  for (int rep = 0; rep < 2; ++rep) {
    util::VirtualClock vclock;
    const auto t0 = util::RealClockInstance()->Now();
    {
      util::Clock::ThreadGuard guard(&vclock);
      Params vp = p;
      vp.clock = &vclock;
      virt[rep] = RunPairOnce(vp);
    }
    virt_wall_s[rep] = WallSecondsSince(t0);
    bench::PrintHeader(rep == 0 ? "virtual clock, run 1"
                                : "virtual clock, run 2");
    PrintComparison(virt[rep]);
    std::printf("%16s %12.3f s\n", "wall clock", virt_wall_s[rep]);
  }

  // Modeled time is deterministic: both virtual runs must agree on every
  // derived number, bit for bit.
  const bool deterministic =
      virt[0].off_mb_s == virt[1].off_mb_s &&
      virt[0].on_mb_s == virt[1].on_mb_s &&
      virt[0].sched.requests == virt[1].sched.requests &&
      virt[0].sched.runs == virt[1].sched.runs &&
      virt[0].sched.merges == virt[1].sched.merges &&
      virt[0].sched.coalesced_bytes == virt[1].sched.coalesced_bytes &&
      virt[0].sched.queue_depth_hwm == virt[1].sched.queue_depth_hwm;
  const double slowest_virtual =
      virt_wall_s[0] > virt_wall_s[1] ? virt_wall_s[0] : virt_wall_s[1];
  const double wall_speedup =
      slowest_virtual > 0 ? real_wall_s / slowest_virtual : 0;

  std::printf("\nvirtual runs identical: %s\n",
              deterministic ? "yes" : "NO — nondeterminism!");
  std::printf("wall-clock speedup (real / slowest virtual): %.1fx\n",
              wall_speedup);

  std::FILE* out = std::fopen("BENCH_virtual.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_virtual.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"virtual_time_server_sched\",\n"
               "  \"workload\": \"strided-small-write\",\n"
               "  \"threads\": %u,\n"
               "  \"extents_per_thread\": %u,\n"
               "  \"extent_bytes\": %zu,\n"
               "  \"modeled_disk_mb_s\": %.1f,\n"
               "  \"modeled_op_latency_us\": %.1f,\n"
               "  \"real\": {\"wall_s\": %.4f, \"off_mb_s\": %.2f, "
               "\"on_mb_s\": %.2f},\n"
               "  \"virtual\": [\n",
               p.threads, p.extents_per_thread, p.extent_bytes, p.disk_mb_s,
               p.op_latency_us, real_wall_s, real.off_mb_s, real.on_mb_s);
  for (int rep = 0; rep < 2; ++rep) {
    std::fprintf(out,
                 "    {\"wall_s\": %.4f, \"off_mb_s\": %.2f, "
                 "\"on_mb_s\": %.2f, \"requests\": %llu, \"runs\": %llu, "
                 "\"merges\": %llu}%s\n",
                 virt_wall_s[rep], virt[rep].off_mb_s, virt[rep].on_mb_s,
                 static_cast<unsigned long long>(virt[rep].sched.requests),
                 static_cast<unsigned long long>(virt[rep].sched.runs),
                 static_cast<unsigned long long>(virt[rep].sched.merges),
                 rep == 0 ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"deterministic\": %s,\n"
               "  \"wall_speedup\": %.2f\n"
               "}\n",
               deterministic ? "true" : "false", wall_speedup);
  std::fclose(out);
  std::printf("wrote BENCH_virtual.json\n");
  return deterministic ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Params p;
  if (argc > 1 && std::strcmp(argv[1], "--virtual") == 0) {
    return RunVirtualMode(p);
  }
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (smoke) {
    p.extents_per_thread = 24;
    p.op_latency_us = 50;
    p.trials = 1;
  }
  std::printf("Server-side I/O scheduler: extent coalescing + elevator vs "
              "per-request FIFO,\nmodeled medium %.0f MB/s with %.0f us per "
              "access.%s\n",
              p.disk_mb_s, p.op_latency_us, smoke ? "  (smoke)" : "");

  std::vector<Comparison> comparisons;
  comparisons.push_back(
      Compare("strided-small-write (4 KiB interleaved, one object)",
              RunStridedWrite, p));
  PrintComparison(comparisons.back());
  comparisons.push_back(Compare(
      "interleaved-read (4 KiB strided over a warm object)",
      RunInterleavedRead, p));
  PrintComparison(comparisons.back());
  DumpJson(p, comparisons);

  std::printf("\nThe off configuration charges the medium one op per extent\n"
              "in arrival order; on merges queued extents per object and\n"
              "pays one op per contiguous run — the >= 1.5x acceptance bar\n"
              "applies to the strided-small-write row.\n");
  return 0;
}
