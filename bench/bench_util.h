// Shared helpers for the reproduction benches: consistent table printing
// and the trial-averaging the paper uses ("average and standard deviation
// over a minimum of 5 trials").
#pragma once

#include <cstdio>
#include <functional>

#include "util/stats.h"

namespace lwfs::bench {

inline constexpr int kTrials = 5;

/// Mean/stddev over kTrials calls of `run(seed)`.
inline RunningStats OverTrials(const std::function<double(std::uint64_t)>& run) {
  RunningStats stats;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) stats.Add(run(seed));
  return stats;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace lwfs::bench
