// Table 2 reproduction: Red Storm communication and I/O performance.
// Instantiates the simulator's network/storage primitives with the Table 2
// constants and *measures* them back out of the simulation, verifying the
// model reproduces the envelope the paper's flow-control argument uses.
#include <cstdio>

#include "bench_util.h"
#include "sim/engine.h"
#include "sim/resources.h"
#include "util/machines.h"

namespace {

using namespace lwfs;

/// Measured one-way time for `bytes` through a pipe with the given specs.
double MeasureTransfer(double bw, double latency, std::uint64_t bytes) {
  sim::Engine engine;
  sim::Pipe pipe(&engine, bw, latency);
  double done = 0;
  engine.Spawn([](sim::Engine& e, sim::Pipe& p, std::uint64_t n,
                  double& out) -> sim::Task {
    co_await p.Transfer(n);
    out = e.Now();
  }(engine, pipe, bytes, done));
  engine.RunUntilIdle();
  return done;
}

/// Measured drain rate of the RAID model under sustained load.
double MeasureDrainRate(double drain_bw) {
  sim::Engine engine;
  sim::FifoResource raid(&engine, 1);
  constexpr std::uint64_t kChunk = 1 << 20;
  constexpr int kChunks = 1000;
  for (int i = 0; i < kChunks; ++i) {
    engine.Spawn([](sim::FifoResource& r, double t) -> sim::Task {
      co_await r.Use(t);
    }(raid, static_cast<double>(kChunk) / drain_bw));
  }
  const double total = engine.RunUntilIdle();
  return static_cast<double>(kChunks) * kChunk / total;
}

}  // namespace

int main() {
  const RedStormSpec& rs = RedStorm();
  lwfs::bench::PrintHeader("Table 2: Red Storm communication and I/O performance");

  std::printf("%-38s %14s %14s\n", "quantity", "paper", "model");

  // Interconnect performance.
  const double small_msg = MeasureTransfer(rs.link_bw, rs.mpi_latency_1hop, 1);
  std::printf("%-38s %11.1f us %11.1f us\n", "MPI latency (1 hop)",
              rs.mpi_latency_1hop * 1e6, small_msg * 1e6);

  const std::uint64_t big = 1ull << 30;
  const double big_time = MeasureTransfer(rs.link_bw, rs.mpi_latency_1hop, big);
  const double measured_bw = static_cast<double>(big) / big_time;
  std::printf("%-38s %9.1f GB/s %9.1f GB/s\n", "bi-directional link bandwidth",
              rs.link_bw / 1e9, measured_bw / 1e9);

  // Bisection: number of bisection links implied by Table 2.
  const double bisection_links = rs.bisection_bw / rs.link_bw;
  std::printf("%-38s %9.1f TB/s %9.1f TB/s  (%.0f links)\n",
              "minimum bi-section bandwidth", rs.bisection_bw / 1e12,
              bisection_links * rs.link_bw / 1e12, bisection_links);

  // I/O performance.
  const double drain = MeasureDrainRate(rs.io_node_raid_bw);
  std::printf("%-38s %9.0f MB/s %9.0f MB/s\n", "I/O node bandwidth (to RAID)",
              rs.io_node_raid_bw / 1e6, drain / 1e6);

  std::printf("%-38s %8dx%-5d\n", "I/O node topology (per end)",
              rs.io_mesh_rows, rs.io_mesh_cols);
  const int io_nodes_per_end = rs.io_mesh_rows * rs.io_mesh_cols;
  const double aggregate = io_nodes_per_end * rs.io_node_raid_bw;
  std::printf("%-38s %9.1f GB/s %9.1f GB/s  (%d nodes x %.0f MB/s)\n",
              "aggregate I/O bandwidth (per end)", rs.aggregate_io_bw / 1e9,
              aggregate / 1e9, io_nodes_per_end, rs.io_node_raid_bw / 1e6);

  std::printf(
      "\nThe motivating imbalance (Section 3.2): an I/O node can receive\n"
      "%.1fx faster than it can drain to storage (%.1f GB/s vs %.0f MB/s),\n"
      "so uncoordinated bursts overrun its buffers — see\n"
      "ablation_flowcontrol for the consequence.\n",
      rs.link_bw / rs.io_node_raid_bw, rs.link_bw / 1e9,
      rs.io_node_raid_bw / 1e6);
  return 0;
}
