// Figure 10 reproduction: creation throughput (ops/sec) vs. number of
// client processes.
//   (a) LWFS object creation vs. Lustre file creation at 16 servers
//       (the paper plots this on a log axis — 2 orders of magnitude apart)
//   (b) Lustre file creation for m = 2/4/8/16 (flat: the MDS is the limit)
//   (c) LWFS object creation for m = 2/4/8/16 (scales with m)
//
// `--shards` switches to the real-stack metadata-shard sweep (DESIGN.md
// §16): the full deployment runs on a virtual clock with the namespace
// partitioned over 1/2/4/8 naming shards, every create's naming op charged
// to the owning shard's busy-clock, and throughput computed from the
// busiest shard's makespan — the steady-state completion time with enough
// client concurrency to keep every shard fed.  Emits BENCH_shard.json and
// exits nonzero if 4 shards deliver less than kShardSpeedupGate x the
// 1-shard rate (the sharding regression gate; `--smoke` shrinks the
// workload to CI scale).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/runtime.h"
#include "simapps/checkpoint_sim.h"
#include "util/clock.h"

namespace {

using namespace lwfs;
using namespace lwfs::simapps;

constexpr int kServerCounts[] = {2, 4, 8, 16};
constexpr int kClientCounts[] = {1, 2, 4, 8, 16, 24, 32, 48, 64};
constexpr std::uint64_t kCreatesPerClient = 32;

double Rate(CheckpointKind kind, int n, int m, std::uint64_t seed) {
  return SimulateCreates(kind, ClusterParams::DevCluster(n, m),
                         kCreatesPerClient, seed)
      .ops_per_sec();
}

void PrintPerServerTable(const char* title, CheckpointKind kind) {
  bench::PrintHeader(title);
  std::printf("%8s", "clients");
  for (int m : kServerCounts) std::printf("  %8dsrv %7s", m, "(sd)");
  std::printf("\n");
  for (int n : kClientCounts) {
    std::printf("%8d", n);
    for (int m : kServerCounts) {
      auto stats = bench::OverTrials(
          [&](std::uint64_t seed) { return Rate(kind, n, m, seed); });
      std::printf("  %11.0f %7.0f", stats.mean(), stats.stddev());
    }
    std::printf("\n");
  }
}

// ---------------------------------------------------------------------------
// --shards: metadata-shard scaling sweep over the real stack
// ---------------------------------------------------------------------------

/// 4 shards must beat 1 shard by at least this factor (acceptance gate).
constexpr double kShardSpeedupGate = 1.6;
/// Modeled metadata service cost per naming op at the owning shard.
constexpr double kPerOpUs = 50.0;

struct ShardResult {
  std::uint32_t shards = 0;
  std::uint64_t creates = 0;
  double makespan_ms = 0;   // busiest shard's modeled busy time
  double ops_per_sec = 0;
  double balance = 0;       // mean shard busy time / max (1.0 = perfect)
  std::uint64_t wrong_shard_retries = 0;
};

Result<ShardResult> RunShardCount(std::uint32_t shards, std::uint64_t creates) {
  ShardResult r;
  r.shards = shards;
  r.creates = creates;

  // Per-shard busy-clock: every naming op the owning shard admits charges
  // kPerOpUs here.  The makespan (max over shards) models the completion
  // time of the whole create burst once client concurrency keeps each
  // shard's queue non-empty — the same steady-state model the simulated
  // tables use, but driven by the real routing/admission path.
  std::mutex busy_mutex;
  std::vector<double> busy_us(shards, 0.0);

  util::VirtualClock clock;
  util::Clock::ThreadGuard guard(&clock);
  core::RuntimeOptions options;
  options.storage_servers = 4;
  options.naming_shards = shards;
  options.clock = &clock;
  options.naming_op_delay = [&](std::uint32_t shard) {
    std::lock_guard<std::mutex> lock(busy_mutex);
    busy_us[shard] += kPerOpUs;
  };
  auto runtime = core::ServiceRuntime::Start(options);
  if (!runtime.ok()) return runtime.status();
  (*runtime)->AddUser("bench", "pw", 1);
  auto client = (*runtime)->MakeClient();
  auto cred = client->Login("bench", "pw");
  if (!cred.ok()) return cred.status();
  auto cid = client->CreateContainer(*cred);
  if (!cid.ok()) return cid.status();
  auto cap = client->GetCap(*cred, *cid, security::kOpAll);
  if (!cap.ok()) return cap.status();
  LWFS_RETURN_IF_ERROR(client->Mkdir("/ckpt"));

  {  // The directory fan-out is setup cost, not create cost.
    std::lock_guard<std::mutex> lock(busy_mutex);
    std::fill(busy_us.begin(), busy_us.end(), 0.0);
  }

  for (std::uint64_t i = 0; i < creates; ++i) {
    const std::uint32_t server =
        static_cast<std::uint32_t>(i % 4);  // storage_servers
    auto oid = client->CreateObject(server, *cap);
    if (!oid.ok()) return oid.status();
    LWFS_RETURN_IF_ERROR(
        client->LinkName("/ckpt/rank" + std::to_string(i),
                         storage::ObjectRef{*cid, server, *oid}));
  }

  double max_us = 0, total_us = 0;
  {
    std::lock_guard<std::mutex> lock(busy_mutex);
    for (double us : busy_us) {
      max_us = std::max(max_us, us);
      total_us += us;
    }
  }
  if (max_us <= 0) return Internal("no naming op was charged");
  r.makespan_ms = max_us / 1e3;
  r.ops_per_sec = static_cast<double>(creates) / (max_us / 1e6);
  r.balance = total_us / static_cast<double>(shards) / max_us;
  r.wrong_shard_retries = client->wrong_shard_retries();
  return r;
}

bool DumpShardJson(const std::vector<ShardResult>& results, double speedup4,
                   bool smoke) {
  std::FILE* out = std::fopen("BENCH_shard.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_shard.json\n");
    return false;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"fig10_shard_sweep\",\n"
               "  \"smoke\": %s,\n"
               "  \"per_op_us\": %.1f,\n"
               "  \"speedup_gate_4_shards\": %.2f,\n"
               "  \"speedup_4_shards\": %.2f,\n"
               "  \"shards\": [\n",
               smoke ? "true" : "false", kPerOpUs, kShardSpeedupGate, speedup4);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ShardResult& r = results[i];
    std::fprintf(out,
                 "    {\n"
                 "      \"shards\": %u,\n"
                 "      \"creates\": %llu,\n"
                 "      \"makespan_ms\": %.3f,\n"
                 "      \"ops_per_sec\": %.0f,\n"
                 "      \"balance\": %.3f,\n"
                 "      \"wrong_shard_retries\": %llu\n"
                 "    }%s\n",
                 r.shards, static_cast<unsigned long long>(r.creates),
                 r.makespan_ms, r.ops_per_sec, r.balance,
                 static_cast<unsigned long long>(r.wrong_shard_retries),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_shard.json\n");
  return true;
}

int RunShardSweep(bool smoke) {
  const std::vector<std::uint32_t> counts =
      smoke ? std::vector<std::uint32_t>{1, 2, 4}
            : std::vector<std::uint32_t>{1, 2, 4, 8};
  const std::uint64_t creates = smoke ? 256 : 2048;

  bench::PrintHeader("Metadata shard sweep: create throughput vs shards");
  std::printf("%8s %10s %12s %12s %9s %8s\n", "shards", "creates",
              "makespan ms", "ops/sec", "balance", "retries");

  std::vector<ShardResult> results;
  for (std::uint32_t s : counts) {
    auto r = RunShardCount(s, creates);
    if (!r.ok()) {
      std::fprintf(stderr, "shard sweep failed at %u shards: %s\n", s,
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("%8u %10llu %12.3f %12.0f %9.3f %8llu\n", r->shards,
                static_cast<unsigned long long>(r->creates), r->makespan_ms,
                r->ops_per_sec, r->balance,
                static_cast<unsigned long long>(r->wrong_shard_retries));
    results.push_back(*r);
  }

  double base = 0, four = 0;
  for (const ShardResult& r : results) {
    if (r.shards == 1) base = r.ops_per_sec;
    if (r.shards == 4) four = r.ops_per_sec;
  }
  const double speedup4 = base > 0 ? four / base : 0;
  std::printf("\n4-shard speedup over 1 shard: %.2fx (gate %.2fx)\n", speedup4,
              kShardSpeedupGate);
  if (!DumpShardJson(results, speedup4, smoke)) return 1;
  if (speedup4 < kShardSpeedupGate) {
    std::fprintf(stderr,
                 "FAIL: 4 naming shards deliver only %.2fx the 1-shard create "
                 "rate (gate %.2fx) — shard routing or balance regressed\n",
                 speedup4, kShardSpeedupGate);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool shards = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0) shards = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (shards) return RunShardSweep(smoke);

  std::printf("Figure 10: file/object creation throughput (ops/sec),\n"
              "dev-cluster model, %llu creates per client.\n",
              static_cast<unsigned long long>(kCreatesPerClient));

  bench::PrintHeader(
      "(a) LWFS object creation vs. Lustre file creation, 16 servers");
  std::printf("%8s  %14s  %14s  %8s\n", "clients", "LWFS ops/s",
              "Lustre ops/s", "ratio");
  for (int n : kClientCounts) {
    auto lwfs_stats = lwfs::bench::OverTrials([&](std::uint64_t seed) {
      return Rate(CheckpointKind::kLwfsObjectPerProcess, n, 16, seed);
    });
    auto lustre_stats = lwfs::bench::OverTrials([&](std::uint64_t seed) {
      return Rate(CheckpointKind::kPfsFilePerProcess, n, 16, seed);
    });
    std::printf("%8d  %14.0f  %14.0f  %7.1fx\n", n, lwfs_stats.mean(),
                lustre_stats.mean(), lwfs_stats.mean() / lustre_stats.mean());
  }

  PrintPerServerTable("(b) Lustre file creation (per server count)",
                      CheckpointKind::kPfsFilePerProcess);
  PrintPerServerTable("(c) LWFS object creation (per server count)",
                      CheckpointKind::kLwfsObjectPerProcess);

  std::printf(
      "\nPaper shapes to check: Lustre creation is flat in the number of\n"
      "servers (every create serializes at the MDS, hundreds of ops/sec);\n"
      "LWFS creation is distributed and reaches tens of thousands of\n"
      "ops/sec at 16 servers (Figure 10, Section 4).\n");
  return 0;
}
