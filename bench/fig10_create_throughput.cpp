// Figure 10 reproduction: creation throughput (ops/sec) vs. number of
// client processes.
//   (a) LWFS object creation vs. Lustre file creation at 16 servers
//       (the paper plots this on a log axis — 2 orders of magnitude apart)
//   (b) Lustre file creation for m = 2/4/8/16 (flat: the MDS is the limit)
//   (c) LWFS object creation for m = 2/4/8/16 (scales with m)
#include <cstdio>

#include "bench_util.h"
#include "simapps/checkpoint_sim.h"

namespace {

using namespace lwfs;
using namespace lwfs::simapps;

constexpr int kServerCounts[] = {2, 4, 8, 16};
constexpr int kClientCounts[] = {1, 2, 4, 8, 16, 24, 32, 48, 64};
constexpr std::uint64_t kCreatesPerClient = 32;

double Rate(CheckpointKind kind, int n, int m, std::uint64_t seed) {
  return SimulateCreates(kind, ClusterParams::DevCluster(n, m),
                         kCreatesPerClient, seed)
      .ops_per_sec();
}

void PrintPerServerTable(const char* title, CheckpointKind kind) {
  bench::PrintHeader(title);
  std::printf("%8s", "clients");
  for (int m : kServerCounts) std::printf("  %8dsrv %7s", m, "(sd)");
  std::printf("\n");
  for (int n : kClientCounts) {
    std::printf("%8d", n);
    for (int m : kServerCounts) {
      auto stats = bench::OverTrials(
          [&](std::uint64_t seed) { return Rate(kind, n, m, seed); });
      std::printf("  %11.0f %7.0f", stats.mean(), stats.stddev());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("Figure 10: file/object creation throughput (ops/sec),\n"
              "dev-cluster model, %llu creates per client.\n",
              static_cast<unsigned long long>(kCreatesPerClient));

  bench::PrintHeader(
      "(a) LWFS object creation vs. Lustre file creation, 16 servers");
  std::printf("%8s  %14s  %14s  %8s\n", "clients", "LWFS ops/s",
              "Lustre ops/s", "ratio");
  for (int n : kClientCounts) {
    auto lwfs_stats = lwfs::bench::OverTrials([&](std::uint64_t seed) {
      return Rate(CheckpointKind::kLwfsObjectPerProcess, n, 16, seed);
    });
    auto lustre_stats = lwfs::bench::OverTrials([&](std::uint64_t seed) {
      return Rate(CheckpointKind::kPfsFilePerProcess, n, 16, seed);
    });
    std::printf("%8d  %14.0f  %14.0f  %7.1fx\n", n, lwfs_stats.mean(),
                lustre_stats.mean(), lwfs_stats.mean() / lustre_stats.mean());
  }

  PrintPerServerTable("(b) Lustre file creation (per server count)",
                      CheckpointKind::kPfsFilePerProcess);
  PrintPerServerTable("(c) LWFS object creation (per server count)",
                      CheckpointKind::kLwfsObjectPerProcess);

  std::printf(
      "\nPaper shapes to check: Lustre creation is flat in the number of\n"
      "servers (every create serializes at the MDS, hundreds of ops/sec);\n"
      "LWFS creation is distributed and reaches tens of thousands of\n"
      "ops/sec at 16 servers (Figure 10, Section 4).\n");
  return 0;
}
