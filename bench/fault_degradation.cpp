// Fault-degradation sweep (§3.2): aggregate dump throughput vs. injected
// message-drop rate, on the live in-process LWFS stack.
//
// The paper's robustness argument is that failures are paid for in *small*
// messages: a lost request or reply costs one retransmission after a short
// deadline, never a torn object or a wedged client.  This bench makes the
// claim measurable — each point injects a uniform drop probability on every
// link touching the storage servers, dumps a checkpoint-shaped workload
// through the fault-hardened RPC path, and reports:
//
//   * throughput (mean/sd over 5 seeded trials, MB/s) — should degrade
//     smoothly with the drop rate, not fall off a cliff;
//   * the recovery ledger — client retransmits, server dedup hits, CRC
//     rejects, and the injector's own fault counters — which shows *why*
//     the curve bends;
//   * integrity failures — reads that returned wrong bytes; always zero,
//     at any drop rate, or the run prints FAIL.
//
// With `--replicated` the bench instead measures degraded-mode operation of
// the replication layer: a 3-way replicated workload with one storage server
// hard-down — chain writes degrade (survivors commit, the miss is reported
// stale), reads fail over / hedge, and after the outage the repair scanner
// must restore full replication (the run exits 1 if it does not, or if any
// read returns wrong bytes).  Reported: healthy vs. degraded dump
// throughput, per-read p99 latency, the hedging/failover ledger, and the
// repair-scan + replica-audit summary.
//
// Emits BENCH_fault.json for the plots.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/client.h"
#include "core/runtime.h"
#include "util/clock.h"
#include "util/stats.h"

namespace {

using namespace lwfs;

constexpr double kDropRates[] = {0, 0.001, 0.01, 0.05};
constexpr int kObjectsPerTrial = 16;
constexpr std::size_t kObjectBytes = 256 << 10;
constexpr int kStorageServers = 4;
constexpr int kWriteAttempts = 4;  // clean retries after a budget-exhausted call

struct Point {
  double drop_rate = 0;
  double mean_mb_s = 0;
  double sd = 0;
  double relative = 0;  // vs. the fault-free baseline
  // Client-side recovery work (one fresh client per point).
  std::uint64_t calls = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t crc_rejects = 0;
  std::uint64_t bulk_crc_failures = 0;
  std::uint64_t call_failures = 0;  // calls that exhausted their budget
  // Server/fabric-side deltas over the point's trials.
  std::uint64_t served = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t crc_drops = 0;
  std::uint64_t injected_drops = 0;
  std::uint64_t integrity_failures = 0;  // accepted-wrong-bytes reads: must be 0
};

Result<Point> RunPoint(core::ServiceRuntime& runtime, double drop_rate) {
  Point point;
  point.drop_rate = drop_rate;

  auto& injector = runtime.fabric().injector();
  injector.ClearFaults();
  for (portals::Nid nid : runtime.deployment().storage) {
    injector.SetNode(nid, {.drop = drop_rate});
  }

  auto client = runtime.MakeClient();
  auto cred = client->Login("bench", "pw");
  if (!cred.ok()) return cred.status();
  auto cid = client->CreateContainer(*cred);
  if (!cid.ok()) return cid.status();
  auto cap = client->GetCap(*cred, *cid, security::kOpAll);
  if (!cap.ok()) return cap.status();

  const Buffer payload = PatternBuffer(kObjectBytes, 0xFA17);
  const auto before = runtime.TotalRobustnessStats();

  RunningStats stats;
  for (std::uint64_t trial = 1; trial <= bench::kTrials; ++trial) {
    injector.Seed(0xFA170000 + trial * 977 + std::uint64_t(drop_rate * 1e4));
    // Create untimed: the dump phase (Figure 9's metric) is the writes.
    std::vector<std::pair<int, storage::ObjectId>> objects;
    for (int i = 0; i < kObjectsPerTrial; ++i) {
      const int server = i % kStorageServers;
      auto oid = client->CreateObject(server, *cap);
      for (int a = 1; a < kWriteAttempts && !oid.ok(); ++a) {
        oid = client->CreateObject(server, *cap);
      }
      if (!oid.ok()) return oid.status();
      objects.emplace_back(server, *oid);
    }

    const auto start = util::RealClockInstance()->Now();
    for (const auto& [server, oid] : objects) {
      Status wrote = client->WriteObject(server, *cap, oid, 0, ByteSpan(payload));
      for (int a = 1; a < kWriteAttempts && !wrote.ok(); ++a) {
        ++point.call_failures;
        wrote = client->WriteObject(server, *cap, oid, 0, ByteSpan(payload));
      }
      if (!wrote.ok()) return wrote;
    }
    const std::chrono::duration<double> elapsed =
        util::RealClockInstance()->Now() - start;
    const double mb = double(kObjectsPerTrial) * double(kObjectBytes) / 1e6;
    stats.Add(mb / elapsed.count());

    // Untimed read-back through the same lossy fabric: detected failures
    // (kDataLoss, kTimeout) retry cleanly; *wrong accepted bytes* are the
    // one unforgivable outcome.
    for (const auto& [server, oid] : objects) {
      auto back = client->ReadObjectAlloc(server, *cap, oid, 0, payload.size());
      for (int a = 1; a < kWriteAttempts && !back.ok(); ++a) {
        back = client->ReadObjectAlloc(server, *cap, oid, 0, payload.size());
      }
      if (!back.ok()) return back.status();
      if (*back != payload) ++point.integrity_failures;
    }
  }

  const auto after = runtime.TotalRobustnessStats();
  const auto rpc = client->rpc_stats();
  point.mean_mb_s = stats.mean();
  point.sd = stats.stddev();
  point.calls = rpc.calls;
  point.retransmits = rpc.retransmits;
  point.crc_rejects = rpc.crc_rejects;
  point.bulk_crc_failures = rpc.bulk_crc_failures;
  point.served = after.rpc.served - before.rpc.served;
  point.dedup_hits = after.rpc.dedup_hits - before.rpc.dedup_hits;
  point.crc_drops = after.rpc.crc_drops - before.rpc.crc_drops;
  point.injected_drops = after.faults.drops - before.faults.drops;
  return point;
}

// ---------------------------------------------------------------------------
// Replicated degraded-mode suite (--replicated)
// ---------------------------------------------------------------------------

struct ReplicatedReport {
  double healthy_mb_s = 0, healthy_sd = 0;
  double degraded_mb_s = 0, degraded_sd = 0;
  double degraded_relative = 0;
  double healthy_read_p99_us = 0;
  double degraded_read_p99_us = 0;
  core::ReplicationStats client_stats;
  core::RepairScanSummary repair;
  naming::ReplicaAuditCounts audit;
  std::uint64_t integrity_failures = 0;
};

double P99(std::vector<double>& us) {
  if (us.empty()) return 0;
  std::sort(us.begin(), us.end());
  const std::size_t idx = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(us.size()))) - 1;
  return us[std::min(idx, us.size() - 1)];
}

Result<ReplicatedReport> RunReplicated() {
  core::RuntimeOptions options;
  options.storage_servers = kStorageServers;
  options.client_options.default_timeout = std::chrono::milliseconds(20);
  options.client_options.max_retransmits = 10;
  options.replication.replication_factor = 3;
  options.replication.hedge_after_us = 500;
  options.replication.repair_mb_s = 256.0;
  auto rt = core::ServiceRuntime::Start(options);
  if (!rt.ok()) return rt.status();
  core::ServiceRuntime& runtime = **rt;
  runtime.AddUser("bench", "pw", 1);

  auto client = runtime.MakeClient();
  auto cred = client->Login("bench", "pw");
  if (!cred.ok()) return cred.status();
  auto cid = client->CreateContainer(*cred);
  if (!cid.ok()) return cid.status();
  auto cap = client->GetCap(*cred, *cid, security::kOpAll);
  if (!cap.ok()) return cap.status();

  const Buffer payload = PatternBuffer(kObjectBytes, 0x5E77);
  ReplicatedReport rep;

  // One phase = kTrials x (create 16 replicated objects, timed chain-write
  // dump, per-read-timed read-back with integrity check).
  auto phase = [&](RunningStats& write_stats,
                   std::vector<double>& read_us) -> Status {
    for (std::uint64_t trial = 1; trial <= bench::kTrials; ++trial) {
      std::vector<core::ReplicaChain> chains;
      for (int i = 0; i < kObjectsPerTrial; ++i) {
        auto chain = client->CreateReplicatedObject(
            *cap, static_cast<std::uint32_t>(i % kStorageServers),
            options.replication.replication_factor);
        if (!chain.ok()) return chain.status();
        chains.push_back(std::move(*chain));
      }
      const auto start = util::RealClockInstance()->Now();
      for (const auto& chain : chains) {
        LWFS_RETURN_IF_ERROR(
            client->WriteReplicated(*cap, chain, 0, ByteSpan(payload)));
      }
      const std::chrono::duration<double> elapsed =
          util::RealClockInstance()->Now() - start;
      const double mb = double(kObjectsPerTrial) * double(kObjectBytes) / 1e6;
      write_stats.Add(mb / elapsed.count());

      Buffer back(payload.size(), 0);
      for (const auto& chain : chains) {
        const auto r0 = util::RealClockInstance()->Now();
        auto n = client->ReadReplicated(*cap, chain, 0, MutableByteSpan(back));
        const std::chrono::duration<double, std::micro> lat =
            util::RealClockInstance()->Now() - r0;
        if (!n.ok()) return n.status();
        read_us.push_back(lat.count());
        if (*n != payload.size() || back != payload) {
          ++rep.integrity_failures;
        }
      }
    }
    return OkStatus();
  };

  RunningStats healthy_writes;
  std::vector<double> healthy_reads;
  LWFS_RETURN_IF_ERROR(phase(healthy_writes, healthy_reads));
  rep.healthy_mb_s = healthy_writes.mean();
  rep.healthy_sd = healthy_writes.stddev();
  rep.healthy_read_p99_us = P99(healthy_reads);

  // Kill one storage server and run the identical workload degraded: chains
  // still include the dead member, so every write commits short-handed and
  // every read that lands on it fails over or hedges.
  const portals::Nid victim = runtime.deployment().storage[0];
  runtime.fabric().SetNodeDown(victim, true);
  RunningStats degraded_writes;
  std::vector<double> degraded_reads;
  LWFS_RETURN_IF_ERROR(phase(degraded_writes, degraded_reads));
  rep.degraded_mb_s = degraded_writes.mean();
  rep.degraded_sd = degraded_writes.stddev();
  rep.degraded_read_p99_us = P99(degraded_reads);
  rep.degraded_relative =
      rep.healthy_mb_s > 0 ? rep.degraded_mb_s / rep.healthy_mb_s : 0;
  rep.client_stats = client->replication_stats();

  // Heal and repair: restart re-registers the survivor's holdings, the scan
  // re-replicates everything the outage missed, and the audit must come back
  // fully replicated — this is the bench's pass/fail smoke gate.
  runtime.fabric().SetNodeDown(victim, false);
  runtime.storage_server(0).Restart();
  auto scan = runtime.replicator().RunScan();
  if (!scan.ok()) return scan.status();
  rep.repair = *scan;
  rep.audit = runtime.replica_map().Audit();
  return rep;
}

void PrintReplicated(const ReplicatedReport& r) {
  bench::PrintHeader(
      "Degraded mode: 3-way replicated dump, one server down "
      "(16 objects x 256 KiB, 4 servers)");
  std::printf("%10s  %12s %8s %9s %14s\n", "mode", "MB/s", "(sd)", "relative",
              "read p99 (us)");
  std::printf("%10s  %12.1f %8.1f %9.3f %14.0f\n", "healthy", r.healthy_mb_s,
              r.healthy_sd, 1.0, r.healthy_read_p99_us);
  std::printf("%10s  %12.1f %8.1f %9.3f %14.0f\n", "degraded", r.degraded_mb_s,
              r.degraded_sd, r.degraded_relative, r.degraded_read_p99_us);
  std::printf(
      "\nwrites=%llu failovers=%llu degraded=%llu stale_reports=%llu "
      "hedged=%llu hedge_wins=%llu read_failovers=%llu\n",
      static_cast<unsigned long long>(r.client_stats.replicated_writes),
      static_cast<unsigned long long>(r.client_stats.write_failovers),
      static_cast<unsigned long long>(r.client_stats.degraded_writes),
      static_cast<unsigned long long>(r.client_stats.stale_reports),
      static_cast<unsigned long long>(r.client_stats.hedged_reads),
      static_cast<unsigned long long>(r.client_stats.hedge_wins),
      static_cast<unsigned long long>(r.client_stats.read_failovers));
  std::printf(
      "repair: stale=%llu repaired=%llu failed=%llu copied=%llu bytes; "
      "audit: %llu/%llu fully replicated, under=%llu stale=%llu\n",
      static_cast<unsigned long long>(r.repair.stale_members),
      static_cast<unsigned long long>(r.repair.repaired),
      static_cast<unsigned long long>(r.repair.failed),
      static_cast<unsigned long long>(r.repair.bytes_copied),
      static_cast<unsigned long long>(r.audit.fully_replicated),
      static_cast<unsigned long long>(r.audit.objects),
      static_cast<unsigned long long>(r.audit.under_replicated),
      static_cast<unsigned long long>(r.audit.stale_members));
}

void DumpJson(const std::vector<Point>& points, const ReplicatedReport* rep) {
  std::FILE* out = std::fopen("BENCH_fault.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fault.json\n");
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"fault_degradation\",\n"
               "  \"objects_per_trial\": %d,\n"
               "  \"object_bytes\": %zu,\n"
               "  \"storage_servers\": %d,\n"
               "  \"trials\": %d,\n"
               "  \"points\": [\n",
               kObjectsPerTrial, kObjectBytes, kStorageServers, bench::kTrials);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(
        out,
        "    {\"drop_rate\": %.4f, \"mb_per_s\": %.2f, \"sd\": %.2f, "
        "\"relative\": %.3f, \"calls\": %llu, \"retransmits\": %llu, "
        "\"crc_rejects\": %llu, \"bulk_crc_failures\": %llu, "
        "\"call_failures\": %llu, \"served\": %llu, \"dedup_hits\": %llu, "
        "\"crc_drops\": %llu, \"injected_drops\": %llu, "
        "\"integrity_failures\": %llu}%s\n",
        p.drop_rate, p.mean_mb_s, p.sd, p.relative,
        static_cast<unsigned long long>(p.calls),
        static_cast<unsigned long long>(p.retransmits),
        static_cast<unsigned long long>(p.crc_rejects),
        static_cast<unsigned long long>(p.bulk_crc_failures),
        static_cast<unsigned long long>(p.call_failures),
        static_cast<unsigned long long>(p.served),
        static_cast<unsigned long long>(p.dedup_hits),
        static_cast<unsigned long long>(p.crc_drops),
        static_cast<unsigned long long>(p.injected_drops),
        static_cast<unsigned long long>(p.integrity_failures),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]%s\n", rep != nullptr ? "," : "");
  if (rep != nullptr) {
    std::fprintf(
        out,
        "  \"replicated\": {\n"
        "    \"replication_factor\": 3,\n"
        "    \"healthy_mb_s\": %.2f, \"healthy_sd\": %.2f,\n"
        "    \"degraded_mb_s\": %.2f, \"degraded_sd\": %.2f, "
        "\"degraded_relative\": %.3f,\n"
        "    \"healthy_read_p99_us\": %.1f, \"degraded_read_p99_us\": %.1f,\n"
        "    \"replicated_writes\": %llu, \"write_failovers\": %llu, "
        "\"degraded_writes\": %llu, \"stale_reports\": %llu,\n"
        "    \"hedged_reads\": %llu, \"hedge_wins\": %llu, "
        "\"read_failovers\": %llu,\n"
        "    \"repair\": {\"stale\": %llu, \"repaired\": %llu, "
        "\"failed\": %llu, \"bytes_copied\": %llu},\n"
        "    \"audit\": {\"objects\": %llu, \"fully_replicated\": %llu, "
        "\"under_replicated\": %llu, \"stale_members\": %llu},\n"
        "    \"integrity_failures\": %llu\n"
        "  }\n",
        rep->healthy_mb_s, rep->healthy_sd, rep->degraded_mb_s,
        rep->degraded_sd, rep->degraded_relative, rep->healthy_read_p99_us,
        rep->degraded_read_p99_us,
        static_cast<unsigned long long>(rep->client_stats.replicated_writes),
        static_cast<unsigned long long>(rep->client_stats.write_failovers),
        static_cast<unsigned long long>(rep->client_stats.degraded_writes),
        static_cast<unsigned long long>(rep->client_stats.stale_reports),
        static_cast<unsigned long long>(rep->client_stats.hedged_reads),
        static_cast<unsigned long long>(rep->client_stats.hedge_wins),
        static_cast<unsigned long long>(rep->client_stats.read_failovers),
        static_cast<unsigned long long>(rep->repair.stale_members),
        static_cast<unsigned long long>(rep->repair.repaired),
        static_cast<unsigned long long>(rep->repair.failed),
        static_cast<unsigned long long>(rep->repair.bytes_copied),
        static_cast<unsigned long long>(rep->audit.objects),
        static_cast<unsigned long long>(rep->audit.fully_replicated),
        static_cast<unsigned long long>(rep->audit.under_replicated),
        static_cast<unsigned long long>(rep->audit.stale_members),
        static_cast<unsigned long long>(rep->integrity_failures));
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_fault.json\n");
}

/// Degraded-mode gates: no wrong bytes, the degraded path still moves data,
/// and heal + repair scan restored full replication.
bool ReplicatedGatesPass(const ReplicatedReport& r) {
  if (r.integrity_failures > 0) return false;
  if (r.degraded_mb_s <= 0) return false;
  if (r.repair.failed > 0) return false;
  if (r.audit.under_replicated > 0 || r.audit.stale_members > 0) return false;
  return r.audit.fully_replicated == r.audit.objects;
}

}  // namespace

int main(int argc, char** argv) {
  // `--replicated` runs only the degraded-mode replication suite (the CI
  // smoke gate); the default run does the drop sweep plus the suite.
  const bool replicated_only =
      argc > 1 && std::strcmp(argv[1], "--replicated") == 0;
  if (replicated_only) {
    auto rep = RunReplicated();
    if (!rep.ok()) {
      std::fprintf(stderr, "FAIL replicated suite: %s\n",
                   rep.status().ToString().c_str());
      return 1;
    }
    PrintReplicated(*rep);
    DumpJson({}, &*rep);
    if (!ReplicatedGatesPass(*rep)) {
      std::fprintf(stderr, "FAIL: degraded-mode gates not met\n");
      return 1;
    }
    return 0;
  }

  core::RuntimeOptions options;
  options.storage_servers = kStorageServers;
  // Short deadlines + a deep budget: a dropped message costs one quick
  // retransmission, so degradation stays proportional to the drop rate.
  options.client_options.default_timeout = std::chrono::milliseconds(20);
  options.client_options.max_retransmits = 10;
  auto runtime = core::ServiceRuntime::Start(options);
  if (!runtime.ok()) {
    std::fprintf(stderr, "runtime start failed: %s\n",
                 runtime.status().ToString().c_str());
    return 1;
  }
  (*runtime)->AddUser("bench", "pw", 1);

  bench::PrintHeader(
      "Fault degradation: dump throughput vs. injected drop rate "
      "(16 objects x 256 KiB, 4 servers)");
  std::printf("%10s  %12s %8s %9s %12s %10s %9s %10s\n", "drop", "MB/s", "(sd)",
              "relative", "retransmits", "dedup", "crc_rej", "integrity");

  std::vector<Point> points;
  for (double rate : kDropRates) {
    auto point = RunPoint(**runtime, rate);
    if (!point.ok()) {
      std::fprintf(stderr, "FAIL at drop=%.4f: %s\n", rate,
                   point.status().ToString().c_str());
      return 1;
    }
    points.push_back(*point);
    Point& p = points.back();
    p.relative = points.front().mean_mb_s > 0
                     ? p.mean_mb_s / points.front().mean_mb_s
                     : 0;
    std::printf("%9.2f%%  %12.1f %8.1f %9.3f %12llu %10llu %9llu %10llu%s\n",
                rate * 100, p.mean_mb_s, p.sd, p.relative,
                static_cast<unsigned long long>(p.retransmits),
                static_cast<unsigned long long>(p.dedup_hits),
                static_cast<unsigned long long>(p.crc_rejects),
                static_cast<unsigned long long>(p.integrity_failures),
                p.integrity_failures > 0 ? "  FAIL" : "");
  }

  std::printf(
      "\nEvery byte read back matched what was written at every drop rate;\n"
      "losses cost retransmissions of small messages, never data.\n");

  auto rep = RunReplicated();
  if (!rep.ok()) {
    std::fprintf(stderr, "FAIL replicated suite: %s\n",
                 rep.status().ToString().c_str());
    return 1;
  }
  PrintReplicated(*rep);
  DumpJson(points, &*rep);

  bool graceful = ReplicatedGatesPass(*rep);
  for (const Point& p : points) {
    if (p.integrity_failures > 0) graceful = false;
  }
  if (points.size() >= 2 && points.back().mean_mb_s <= 0) graceful = false;
  return graceful ? 0 : 1;
}
