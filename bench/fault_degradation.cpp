// Fault-degradation sweep (§3.2): aggregate dump throughput vs. injected
// message-drop rate, on the live in-process LWFS stack.
//
// The paper's robustness argument is that failures are paid for in *small*
// messages: a lost request or reply costs one retransmission after a short
// deadline, never a torn object or a wedged client.  This bench makes the
// claim measurable — each point injects a uniform drop probability on every
// link touching the storage servers, dumps a checkpoint-shaped workload
// through the fault-hardened RPC path, and reports:
//
//   * throughput (mean/sd over 5 seeded trials, MB/s) — should degrade
//     smoothly with the drop rate, not fall off a cliff;
//   * the recovery ledger — client retransmits, server dedup hits, CRC
//     rejects, and the injector's own fault counters — which shows *why*
//     the curve bends;
//   * integrity failures — reads that returned wrong bytes; always zero,
//     at any drop rate, or the run prints FAIL.
//
// Emits BENCH_fault.json for the plots.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/client.h"
#include "core/runtime.h"
#include "util/clock.h"
#include "util/stats.h"

namespace {

using namespace lwfs;

constexpr double kDropRates[] = {0, 0.001, 0.01, 0.05};
constexpr int kObjectsPerTrial = 16;
constexpr std::size_t kObjectBytes = 256 << 10;
constexpr int kStorageServers = 4;
constexpr int kWriteAttempts = 4;  // clean retries after a budget-exhausted call

struct Point {
  double drop_rate = 0;
  double mean_mb_s = 0;
  double sd = 0;
  double relative = 0;  // vs. the fault-free baseline
  // Client-side recovery work (one fresh client per point).
  std::uint64_t calls = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t crc_rejects = 0;
  std::uint64_t bulk_crc_failures = 0;
  std::uint64_t call_failures = 0;  // calls that exhausted their budget
  // Server/fabric-side deltas over the point's trials.
  std::uint64_t served = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t crc_drops = 0;
  std::uint64_t injected_drops = 0;
  std::uint64_t integrity_failures = 0;  // accepted-wrong-bytes reads: must be 0
};

Result<Point> RunPoint(core::ServiceRuntime& runtime, double drop_rate) {
  Point point;
  point.drop_rate = drop_rate;

  auto& injector = runtime.fabric().injector();
  injector.ClearFaults();
  for (portals::Nid nid : runtime.deployment().storage) {
    injector.SetNode(nid, {.drop = drop_rate});
  }

  auto client = runtime.MakeClient();
  auto cred = client->Login("bench", "pw");
  if (!cred.ok()) return cred.status();
  auto cid = client->CreateContainer(*cred);
  if (!cid.ok()) return cid.status();
  auto cap = client->GetCap(*cred, *cid, security::kOpAll);
  if (!cap.ok()) return cap.status();

  const Buffer payload = PatternBuffer(kObjectBytes, 0xFA17);
  const auto before = runtime.TotalRobustnessStats();

  RunningStats stats;
  for (std::uint64_t trial = 1; trial <= bench::kTrials; ++trial) {
    injector.Seed(0xFA170000 + trial * 977 + std::uint64_t(drop_rate * 1e4));
    // Create untimed: the dump phase (Figure 9's metric) is the writes.
    std::vector<std::pair<int, storage::ObjectId>> objects;
    for (int i = 0; i < kObjectsPerTrial; ++i) {
      const int server = i % kStorageServers;
      auto oid = client->CreateObject(server, *cap);
      for (int a = 1; a < kWriteAttempts && !oid.ok(); ++a) {
        oid = client->CreateObject(server, *cap);
      }
      if (!oid.ok()) return oid.status();
      objects.emplace_back(server, *oid);
    }

    const auto start = util::RealClockInstance()->Now();
    for (const auto& [server, oid] : objects) {
      Status wrote = client->WriteObject(server, *cap, oid, 0, ByteSpan(payload));
      for (int a = 1; a < kWriteAttempts && !wrote.ok(); ++a) {
        ++point.call_failures;
        wrote = client->WriteObject(server, *cap, oid, 0, ByteSpan(payload));
      }
      if (!wrote.ok()) return wrote;
    }
    const std::chrono::duration<double> elapsed =
        util::RealClockInstance()->Now() - start;
    const double mb = double(kObjectsPerTrial) * double(kObjectBytes) / 1e6;
    stats.Add(mb / elapsed.count());

    // Untimed read-back through the same lossy fabric: detected failures
    // (kDataLoss, kTimeout) retry cleanly; *wrong accepted bytes* are the
    // one unforgivable outcome.
    for (const auto& [server, oid] : objects) {
      auto back = client->ReadObjectAlloc(server, *cap, oid, 0, payload.size());
      for (int a = 1; a < kWriteAttempts && !back.ok(); ++a) {
        back = client->ReadObjectAlloc(server, *cap, oid, 0, payload.size());
      }
      if (!back.ok()) return back.status();
      if (*back != payload) ++point.integrity_failures;
    }
  }

  const auto after = runtime.TotalRobustnessStats();
  const auto rpc = client->rpc_stats();
  point.mean_mb_s = stats.mean();
  point.sd = stats.stddev();
  point.calls = rpc.calls;
  point.retransmits = rpc.retransmits;
  point.crc_rejects = rpc.crc_rejects;
  point.bulk_crc_failures = rpc.bulk_crc_failures;
  point.served = after.rpc.served - before.rpc.served;
  point.dedup_hits = after.rpc.dedup_hits - before.rpc.dedup_hits;
  point.crc_drops = after.rpc.crc_drops - before.rpc.crc_drops;
  point.injected_drops = after.faults.drops - before.faults.drops;
  return point;
}

void DumpJson(const std::vector<Point>& points) {
  std::FILE* out = std::fopen("BENCH_fault.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fault.json\n");
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"fault_degradation\",\n"
               "  \"objects_per_trial\": %d,\n"
               "  \"object_bytes\": %zu,\n"
               "  \"storage_servers\": %d,\n"
               "  \"trials\": %d,\n"
               "  \"points\": [\n",
               kObjectsPerTrial, kObjectBytes, kStorageServers, bench::kTrials);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(
        out,
        "    {\"drop_rate\": %.4f, \"mb_per_s\": %.2f, \"sd\": %.2f, "
        "\"relative\": %.3f, \"calls\": %llu, \"retransmits\": %llu, "
        "\"crc_rejects\": %llu, \"bulk_crc_failures\": %llu, "
        "\"call_failures\": %llu, \"served\": %llu, \"dedup_hits\": %llu, "
        "\"crc_drops\": %llu, \"injected_drops\": %llu, "
        "\"integrity_failures\": %llu}%s\n",
        p.drop_rate, p.mean_mb_s, p.sd, p.relative,
        static_cast<unsigned long long>(p.calls),
        static_cast<unsigned long long>(p.retransmits),
        static_cast<unsigned long long>(p.crc_rejects),
        static_cast<unsigned long long>(p.bulk_crc_failures),
        static_cast<unsigned long long>(p.call_failures),
        static_cast<unsigned long long>(p.served),
        static_cast<unsigned long long>(p.dedup_hits),
        static_cast<unsigned long long>(p.crc_drops),
        static_cast<unsigned long long>(p.injected_drops),
        static_cast<unsigned long long>(p.integrity_failures),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_fault.json\n");
}

}  // namespace

int main() {
  core::RuntimeOptions options;
  options.storage_servers = kStorageServers;
  // Short deadlines + a deep budget: a dropped message costs one quick
  // retransmission, so degradation stays proportional to the drop rate.
  options.client_options.default_timeout = std::chrono::milliseconds(20);
  options.client_options.max_retransmits = 10;
  auto runtime = core::ServiceRuntime::Start(options);
  if (!runtime.ok()) {
    std::fprintf(stderr, "runtime start failed: %s\n",
                 runtime.status().ToString().c_str());
    return 1;
  }
  (*runtime)->AddUser("bench", "pw", 1);

  bench::PrintHeader(
      "Fault degradation: dump throughput vs. injected drop rate "
      "(16 objects x 256 KiB, 4 servers)");
  std::printf("%10s  %12s %8s %9s %12s %10s %9s %10s\n", "drop", "MB/s", "(sd)",
              "relative", "retransmits", "dedup", "crc_rej", "integrity");

  std::vector<Point> points;
  for (double rate : kDropRates) {
    auto point = RunPoint(**runtime, rate);
    if (!point.ok()) {
      std::fprintf(stderr, "FAIL at drop=%.4f: %s\n", rate,
                   point.status().ToString().c_str());
      return 1;
    }
    points.push_back(*point);
    Point& p = points.back();
    p.relative = points.front().mean_mb_s > 0
                     ? p.mean_mb_s / points.front().mean_mb_s
                     : 0;
    std::printf("%9.2f%%  %12.1f %8.1f %9.3f %12llu %10llu %9llu %10llu%s\n",
                rate * 100, p.mean_mb_s, p.sd, p.relative,
                static_cast<unsigned long long>(p.retransmits),
                static_cast<unsigned long long>(p.dedup_hits),
                static_cast<unsigned long long>(p.crc_rejects),
                static_cast<unsigned long long>(p.integrity_failures),
                p.integrity_failures > 0 ? "  FAIL" : "");
  }

  std::printf(
      "\nEvery byte read back matched what was written at every drop rate;\n"
      "losses cost retransmissions of small messages, never data.\n");
  DumpJson(points);

  bool graceful = true;
  for (const Point& p : points) {
    if (p.integrity_failures > 0) graceful = false;
  }
  if (points.size() >= 2 && points.back().mean_mb_s <= 0) graceful = false;
  return graceful ? 0 : 1;
}
