// Zero-copy data path A/B: ref-counted slice writes (client registers an
// owned slice, server pulls sub-slices and hands them to the store) against
// the legacy staged path (server pulls every chunk into a staging buffer
// before the store copy).  Same deployment, same flow control — the only
// difference is StorageServerOptions::zero_copy plus which client write
// API the workload uses.
//
// Reports, per payload size: bytes-copied-per-byte-written (the CopyStats
// budget: staging + store copies), per-kind copy bytes, and end-to-end
// write/read throughput.  Emits BENCH_zerocopy.json.
//
// `--smoke` shrinks the workload to sanitizer-CI scale and doubles as the
// bench-regression gate: the process exits nonzero if the zero-copy write
// path's copies-per-byte exceeds kWriteCopyBudget (a copy snuck back into
// the data path) or if the legacy path stops costing measurably more.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/runtime.h"
#include "util/clock.h"
#include "util/shared_buffer.h"

namespace {

using namespace lwfs;

// The zero-copy write path performs exactly one budgeted copy per byte
// (the store-medium copy); allow headroom for control-plane writes.
constexpr double kWriteCopyBudget = 1.25;
// Same bound on the read side: the slice read's only budgeted copy is the
// medium-store one; the reply frame hands the same bytes to the client.
constexpr double kReadCopyBudget = 1.25;

struct SizeResult {
  std::size_t payload_bytes = 0;
  int iters = 0;
  // Per mode: copies-per-byte on each path, throughputs, copy bytes.
  double write_cpb[2] = {0, 0};    // [0]=legacy, [1]=zerocopy
  double read_cpb[2] = {0, 0};
  double write_mb_s[2] = {0, 0};
  double read_mb_s[2] = {0, 0};
  std::uint64_t stage_bytes[2] = {0, 0};
  std::uint64_t store_bytes[2] = {0, 0};
  std::uint64_t read_stage_bytes[2] = {0, 0};
  std::uint64_t read_store_bytes[2] = {0, 0};
};

struct ModeSetup {
  const char* name;
  bool zero_copy;
};
constexpr ModeSetup kModes[2] = {{"legacy", false}, {"zerocopy", true}};

Result<SizeResult> RunSize(std::size_t payload_bytes, int iters) {
  SizeResult r;
  r.payload_bytes = payload_bytes;
  r.iters = iters;

  for (int mode = 0; mode < 2; ++mode) {
    core::RuntimeOptions options;
    options.storage_servers = 1;
    options.storage.zero_copy = kModes[mode].zero_copy;
    auto runtime = core::ServiceRuntime::Start(options);
    if (!runtime.ok()) return runtime.status();
    (*runtime)->AddUser("bench", "pw", 1);
    auto client = (*runtime)->MakeClient();
    auto cred = client->Login("bench", "pw");
    if (!cred.ok()) return cred.status();
    auto cid = client->CreateContainer(*cred);
    if (!cid.ok()) return cid.status();
    auto cap = client->GetCap(*cred, *cid, security::kOpAll);
    if (!cap.ok()) return cap.status();
    auto oid = client->CreateObject(0, *cap);
    if (!oid.ok()) return oid.status();

    Buffer pattern = PatternBuffer(payload_bytes, 7);
    util::SharedSlice slice = util::SharedSlice::FromBuffer(Buffer(pattern));
    util::RealClock wall;

    // Write phase: payload written `iters` times (offset 0 each time — the
    // medium copy cost is identical, and the store stays one object big).
    const util::CopySnapshot before = util::CopyStats::Snapshot();
    const auto w0 = wall.Now();
    for (int i = 0; i < iters; ++i) {
      Status written =
          kModes[mode].zero_copy
              ? client->WriteObjectSlice(0, *cap, *oid, 0, slice)
              : client->WriteObject(0, *cap, *oid, 0, ByteSpan(pattern));
      if (!written.ok()) return written;
    }
    const double write_s =
        std::chrono::duration<double>(wall.Now() - w0).count();
    const util::CopySnapshot wd = util::CopyStats::Snapshot().Since(before);
    const auto total =
        static_cast<double>(payload_bytes) * static_cast<double>(iters);
    r.write_cpb[mode] = static_cast<double>(wd.budget_bytes()) / total;
    r.write_mb_s[mode] = total / 1e6 / write_s;
    r.stage_bytes[mode] = wd.bytes_of(util::CopyKind::kStage);
    r.store_bytes[mode] = wd.bytes_of(util::CopyKind::kStore);

    // Read phase A/B: the legacy mode reads through the span API (the
    // server stages the payload before pushing it), the zero-copy mode
    // through the slice API (the reply frame carries the store's own
    // slice end to end).
    Buffer out(payload_bytes);
    // Untimed warmup (identical for both modes): lets the reply cache and
    // the store's recycled read buffers reach steady state, so the timed
    // loop measures the data path, not allocator cold-start.
    const int warmup = std::min(iters / 4, 48);
    for (int i = 0; i < warmup; ++i) {
      if (kModes[mode].zero_copy) {
        auto got = client->ReadObjectSlice(0, *cap, *oid, 0, payload_bytes);
        if (!got.ok()) return got.status();
      } else {
        auto n = client->ReadObject(0, *cap, *oid, 0, MutableByteSpan(out));
        if (!n.ok()) return n.status();
      }
    }
    const util::CopySnapshot rbefore = util::CopyStats::Snapshot();
    const auto r0 = wall.Now();
    for (int i = 0; i < iters; ++i) {
      if (kModes[mode].zero_copy) {
        auto got = client->ReadObjectSlice(0, *cap, *oid, 0, payload_bytes);
        if (!got.ok()) return got.status();
        if (got->size() != payload_bytes) return Internal("short read in bench");
        if (i == 0 &&
            !std::equal(got->span().begin(), got->span().end(),
                        pattern.begin())) {
          return DataLoss("bench slice read back wrong bytes");
        }
      } else {
        auto n = client->ReadObject(0, *cap, *oid, 0, MutableByteSpan(out));
        if (!n.ok()) return n.status();
        if (*n != payload_bytes) return Internal("short read in bench");
      }
    }
    const double read_s =
        std::chrono::duration<double>(wall.Now() - r0).count();
    const util::CopySnapshot rd = util::CopyStats::Snapshot().Since(rbefore);
    r.read_cpb[mode] = static_cast<double>(rd.budget_bytes()) / total;
    r.read_mb_s[mode] = total / 1e6 / read_s;
    r.read_stage_bytes[mode] = rd.bytes_of(util::CopyKind::kStage);
    r.read_store_bytes[mode] = rd.bytes_of(util::CopyKind::kStore);
    if (!kModes[mode].zero_copy && out != pattern) {
      return DataLoss("bench read back wrong bytes");
    }
  }
  return r;
}

void DumpJson(const std::vector<SizeResult>& results, bool smoke) {
  std::FILE* out = std::fopen("BENCH_zerocopy.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_zerocopy.json\n");
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"zerocopy_data_path\",\n"
               "  \"smoke\": %s,\n"
               "  \"copy_budget_write\": %.2f,\n"
               "  \"copy_budget_read\": %.2f,\n"
               "  \"counts_copies\": %s,\n"
               "  \"sizes\": [\n",
               smoke ? "true" : "false", kWriteCopyBudget, kReadCopyBudget,
               util::CopyStats::Enabled() ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    std::fprintf(out,
                 "    {\n"
                 "      \"payload_bytes\": %zu,\n"
                 "      \"iters\": %d,\n",
                 r.payload_bytes, r.iters);
    for (int m = 0; m < 2; ++m) {
      std::fprintf(out,
                   "      \"%s\": {\n"
                   "        \"write_copies_per_byte\": %.3f,\n"
                   "        \"write_mb_s\": %.1f,\n"
                   "        \"read_mb_s\": %.1f,\n"
                   "        \"stage_bytes\": %llu,\n"
                   "        \"store_bytes\": %llu\n"
                   "      },\n",
                   kModes[m].name, r.write_cpb[m], r.write_mb_s[m],
                   r.read_mb_s[m],
                   static_cast<unsigned long long>(r.stage_bytes[m]),
                   static_cast<unsigned long long>(r.store_bytes[m]));
    }
    std::fprintf(out,
                 "      \"read\": {\n");
    for (int m = 0; m < 2; ++m) {
      std::fprintf(out,
                   "        \"%s\": {\n"
                   "          \"copies_per_byte\": %.3f,\n"
                   "          \"mb_s\": %.1f,\n"
                   "          \"stage_bytes\": %llu,\n"
                   "          \"store_bytes\": %llu\n"
                   "        }%s\n",
                   kModes[m].name, r.read_cpb[m], r.read_mb_s[m],
                   static_cast<unsigned long long>(r.read_stage_bytes[m]),
                   static_cast<unsigned long long>(r.read_store_bytes[m]),
                   m == 0 ? "," : "");
    }
    std::fprintf(out, "      }\n");
    std::fprintf(out, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_zerocopy.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  struct SizeSpec {
    std::size_t bytes;
    int iters;
  };
  std::vector<SizeSpec> sizes;
  if (smoke) {
    sizes = {{64 << 10, 8}, {1 << 20, 4}, {8 << 20, 2}};
  } else {
    sizes = {{64 << 10, 256}, {1 << 20, 64}, {8 << 20, 16}};
  }

  bench::PrintHeader(
      "Zero-copy data path: staged (legacy) vs ref-counted slices");
  std::printf("%10s %10s | %-8s %11s %11s %11s %11s\n", "payload", "iters",
              "mode", "w copies/B", "write MB/s", "r copies/B", "read MB/s");

  std::vector<SizeResult> results;
  for (const SizeSpec& s : sizes) {
    auto r = RunSize(s.bytes, s.iters);
    if (!r.ok()) {
      std::fprintf(stderr, "bench failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    for (int m = 0; m < 2; ++m) {
      std::printf("%10zu %10d | %-8s %11.3f %11.1f %11.3f %11.1f\n", s.bytes,
                  s.iters, kModes[m].name, r->write_cpb[m], r->write_mb_s[m],
                  r->read_cpb[m], r->read_mb_s[m]);
    }
    results.push_back(*r);
  }
  DumpJson(results, smoke);

  // Regression gate (CI runs `zerocopy --smoke`): the zero-copy write path
  // must stay within the copy budget, and the legacy path must still cost
  // more copies than the zero-copy path (i.e. the knob still does
  // something).  Only meaningful when the build counts copies.
  if (util::CopyStats::Enabled()) {
    for (const SizeResult& r : results) {
      if (r.write_cpb[1] > kWriteCopyBudget) {
        std::fprintf(stderr,
                     "FAIL: zero-copy write path copies %.3f bytes per byte "
                     "written at %zu B payloads (budget %.2f) — an extra "
                     "copy crept into the data path\n",
                     r.write_cpb[1], r.payload_bytes, kWriteCopyBudget);
        return 1;
      }
      if (r.write_cpb[0] <= r.write_cpb[1]) {
        std::fprintf(stderr,
                     "FAIL: legacy path (%.3f copies/B) no longer costs more "
                     "than zero-copy (%.3f copies/B) at %zu B — the A/B knob "
                     "is broken\n",
                     r.write_cpb[0], r.write_cpb[1], r.payload_bytes);
        return 1;
      }
      if (r.read_cpb[1] > kReadCopyBudget) {
        std::fprintf(stderr,
                     "FAIL: slice read path copies %.3f bytes per byte read "
                     "at %zu B payloads (budget %.2f) — an extra copy crept "
                     "into the read path\n",
                     r.read_cpb[1], r.payload_bytes, kReadCopyBudget);
        return 1;
      }
      if (r.read_cpb[0] <= r.read_cpb[1]) {
        std::fprintf(stderr,
                     "FAIL: staged read path (%.3f copies/B) no longer costs "
                     "more than the slice read (%.3f copies/B) at %zu B — "
                     "the A/B knob is broken\n",
                     r.read_cpb[0], r.read_cpb[1], r.payload_bytes);
        return 1;
      }
    }
    std::printf(
        "copy budget check: zero-copy write within %.2f and slice read "
        "within %.2f copies/byte\n",
        kWriteCopyBudget, kReadCopyBudget);
  }
  return 0;
}
