// Ablations for the application-level I/O techniques the paper's
// introduction motivates (§1): collective (two-phase) writes, data
// sieving, and active-storage filtering — all measured on the *real*
// in-process stack with wire-level counters from the portals fabric.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "core/runtime.h"
#include "libio/collective.h"
#include "libio/prefetch.h"
#include "libio/sieve.h"
#include "lwfsfs/lwfsfs.h"
#include "util/clock.h"
#include "util/rng.h"

namespace {

using namespace lwfs;

struct World {
  std::unique_ptr<core::ServiceRuntime> runtime;
  std::unique_ptr<core::Client> client;
  security::Capability cap;
  std::unique_ptr<fs::LwfsFs> fs;

  World() {
    core::RuntimeOptions options;
    options.storage_servers = 4;
    runtime = core::ServiceRuntime::Start(options).value();
    runtime->AddUser("u", "p", 1);
    client = runtime->MakeClient();
    auto cred = client->Login("u", "p").value();
    auto cid = client->CreateContainer(cred).value();
    cap = client->GetCap(cred, cid, security::kOpAll).value();
    fs::FsOptions fs_options;
    fs_options.consistency = fs::FsConsistency::kRelaxed;
    fs = fs::LwfsFs::Mount(client.get(), cap, "/io", fs_options).value();
  }
};

double Seconds(util::Clock::TimePoint a, util::Clock::TimePoint b) {
  return std::chrono::duration<double>(b - a).count();
}

void CollectiveAblation(World& world) {
  lwfs::bench::PrintHeader(
      "Two-phase collective write vs. independent writes (real stack)");
  std::printf("%8s %8s %14s %12s %12s %10s\n", "ranks", "frag", "mode",
              "writes", "wire msgs", "time");
  for (int ranks : {4, 16}) {
    for (std::uint64_t frag : {1024ull, 8192ull}) {
      // Interleaved blocks: rank r owns every ranks-th `frag`-byte block.
      std::vector<std::vector<io::WriteFragment>> per_rank(
          static_cast<std::size_t>(ranks));
      constexpr int kBlocksPerRank = 64;
      for (int r = 0; r < ranks; ++r) {
        for (int b = 0; b < kBlocksPerRank; ++b) {
          const std::uint64_t offset =
              (static_cast<std::uint64_t>(b) * static_cast<std::uint64_t>(ranks) +
               static_cast<std::uint64_t>(r)) *
              frag;
          per_rank[static_cast<std::size_t>(r)].push_back(
              io::WriteFragment{offset, PatternBuffer(frag, offset)});
        }
      }
      for (bool collective : {true, false}) {
        auto file = world.fs
                        ->Create("/cw-" + std::to_string(ranks) + "-" +
                                 std::to_string(frag) +
                                 (collective ? "c" : "i"))
                        .value();
        world.runtime->fabric().ResetStats();
        const auto t0 = util::RealClockInstance()->Now();
        auto stats =
            collective
                ? io::CollectiveWrite(*world.fs, file, per_rank).value()
                : io::IndependentWrite(*world.fs, file, per_rank).value();
        const double dt = Seconds(t0, util::RealClockInstance()->Now());
        auto wire = world.runtime->fabric().Stats();
        std::printf("%8d %7lluB %14s %12llu %12llu %8.4fs\n", ranks,
                    static_cast<unsigned long long>(frag),
                    collective ? "two-phase" : "independent",
                    static_cast<unsigned long long>(stats.writes_issued),
                    static_cast<unsigned long long>(wire.puts + wire.gets), dt);
      }
    }
  }
}

void SieveAblation(World& world) {
  lwfs::bench::PrintHeader("Data sieving vs. direct strided reads (real stack)");
  std::printf("%14s %10s %12s %14s %12s\n", "pattern", "mode", "requests",
              "bytes moved", "overhead");
  auto file = world.fs->Create("/sieve").value();
  Buffer data = PatternBuffer(4 << 20, 1);
  (void)world.fs->Write(file, 0, ByteSpan(data));
  (void)world.fs->Flush(file);

  struct Pattern {
    const char* name;
    std::uint64_t piece, stride;
  };
  for (const Pattern& p : {Pattern{"dense 1K/4K", 1024, 4096},
                           Pattern{"sparse 64B/64K", 64, 64 << 10}}) {
    std::vector<io::Fragment> fragments;
    std::uint64_t total = 0;
    for (std::uint64_t off = 0; off + p.piece <= data.size(); off += p.stride) {
      fragments.emplace_back(off, p.piece);
      total += p.piece;
    }
    Buffer out(static_cast<std::size_t>(total), 0);
    auto direct =
        io::DirectRead(*world.fs, file, fragments, MutableByteSpan(out)).value();
    auto sieved =
        io::SievedRead(*world.fs, file, fragments, MutableByteSpan(out)).value();
    std::printf("%14s %10s %12llu %13.2fMB %11.2fx\n", p.name, "direct",
                static_cast<unsigned long long>(direct.requests),
                static_cast<double>(direct.bytes_transferred) / 1e6,
                direct.overhead());
    std::printf("%14s %10s %12llu %13.2fMB %11.2fx\n", p.name, "sieved",
                static_cast<unsigned long long>(sieved.requests),
                static_cast<double>(sieved.bytes_transferred) / 1e6,
                sieved.overhead());
  }
}

void FilterAblation(World& world) {
  lwfs::bench::PrintHeader(
      "Active-storage filtering vs. read-then-filter (real stack)");
  const std::uint64_t elems = 4 << 20;  // 32 MB of float64
  auto oid = world.client->CreateObject(0, world.cap).value();
  Buffer data(static_cast<std::size_t>(elems) * 8);
  lwfs::Rng rng(5);
  for (std::uint64_t i = 0; i < elems; ++i) {
    const double v = rng.NextDouble();
    std::memcpy(data.data() + i * 8, &v, 8);
  }
  (void)world.client->WriteObject(0, world.cap, oid, 0, ByteSpan(data));

  std::printf("%16s %14s %14s %10s\n", "reduction", "mode", "wire bytes",
              "time");
  for (auto [kind, name] :
       {std::pair{core::FilterKind::kMinMaxSumCount, "min/max/sum"},
        std::pair{core::FilterKind::kHistogram, "histogram(16)"}}) {
    core::FilterSpec spec;
    spec.kind = kind;
    spec.lo = 0;
    spec.hi = 1;
    spec.bins = 16;

    world.runtime->fabric().ResetStats();
    auto t0 = util::RealClockInstance()->Now();
    auto remote = world.client->FilterObjectAlloc(0, world.cap, oid, 0,
                                                  data.size(), spec);
    double dt = Seconds(t0, util::RealClockInstance()->Now());
    auto wire = world.runtime->fabric().Stats();
    std::printf("%16s %14s %13.1fKB %8.4fs\n", name, "at-server",
                static_cast<double>(wire.put_bytes + wire.get_bytes) / 1e3, dt);
    if (!remote.ok()) std::printf("  ERROR: %s\n", remote.status().ToString().c_str());

    world.runtime->fabric().ResetStats();
    t0 = util::RealClockInstance()->Now();
    auto raw = world.client->ReadObjectAlloc(0, world.cap, oid, 0, data.size());
    if (raw.ok()) (void)core::ApplyFilter(spec, ByteSpan(*raw));
    dt = Seconds(t0, util::RealClockInstance()->Now());
    wire = world.runtime->fabric().Stats();
    std::printf("%16s %14s %13.1fKB %8.4fs\n", name, "read+local",
                static_cast<double>(wire.put_bytes + wire.get_bytes) / 1e3, dt);
  }
}

void PrefetchAblation(World& world) {
  lwfs::bench::PrintHeader(
      "Sequential read-ahead vs. unbuffered small reads (real stack)");
  auto file = world.fs->Create("/prefetch").value();
  Buffer data = PatternBuffer(16 << 20, 2);
  (void)world.fs->Write(file, 0, ByteSpan(data));
  (void)world.fs->Flush(file);

  std::printf("%12s %12s %12s %10s\n", "mode", "reads", "I/O requests",
              "time");
  Buffer chunk(8192, 0);

  // Unbuffered: one FS read per 8 KiB chunk.
  world.runtime->fabric().ResetStats();
  auto t0 = util::RealClockInstance()->Now();
  std::uint64_t reads = 0;
  for (std::uint64_t off = 0; off < data.size(); off += chunk.size()) {
    (void)world.fs->Read(file, off, MutableByteSpan(chunk));
    ++reads;
  }
  double dt = Seconds(t0, util::RealClockInstance()->Now());
  auto wire = world.runtime->fabric().Stats();
  std::printf("%12s %12llu %12llu %8.4fs\n", "unbuffered",
              static_cast<unsigned long long>(reads),
              static_cast<unsigned long long>(wire.puts + wire.gets), dt);

  // Prefetched: same access stream through the read-ahead window.
  io::PrefetchOptions options;
  options.window_bytes = 2 << 20;
  io::PrefetchReader reader(world.fs.get(), world.fs->Open("/prefetch").value(),
                            options);
  world.runtime->fabric().ResetStats();
  t0 = util::RealClockInstance()->Now();
  for (std::uint64_t off = 0; off < data.size(); off += chunk.size()) {
    (void)reader.Read(off, MutableByteSpan(chunk));
  }
  dt = Seconds(t0, util::RealClockInstance()->Now());
  wire = world.runtime->fabric().Stats();
  std::printf("%12s %12llu %12llu %8.4fs   (%llu window fetches)\n",
              "prefetched",
              static_cast<unsigned long long>(reader.stats().reads),
              static_cast<unsigned long long>(wire.puts + wire.gets), dt,
              static_cast<unsigned long long>(reader.stats().fetches));
}

}  // namespace

int main() {
  World world;
  CollectiveAblation(world);
  SieveAblation(world);
  FilterAblation(world);
  PrefetchAblation(world);
  std::printf(
      "\nAll of these optimizations are *libraries above the LWFS-core* — the\n"
      "paper's Figure 2 claim that application-specific I/O policy belongs\n"
      "to the application, not to a general-purpose file system.\n");
  return 0;
}
