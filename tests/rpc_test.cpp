// Tests for the RPC layer with server-directed bulk movement (Figure 6).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "rpc/rpc.h"
#include "util/clock.h"

namespace lwfs::rpc {
namespace {

constexpr Opcode kEcho = 1;
constexpr Opcode kFail = 2;
constexpr Opcode kStore = 3;  // pulls bulk into a server buffer
constexpr Opcode kFetch = 4;  // pushes a server buffer to the client
constexpr Opcode kSlow = 5;

class RpcTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    server_ = std::make_unique<RpcServer>(fabric_.CreateNic(), options);
    server_->RegisterHandler(
        kEcho, [](ServerContext&, Decoder& req) -> Result<Buffer> {
          auto s = req.GetString();
          if (!s.ok()) return s.status();
          Encoder reply;
          reply.PutString("echo:" + *s);
          return std::move(reply).Take();
        });
    server_->RegisterHandler(
        kFail, [](ServerContext&, Decoder&) -> Result<Buffer> {
          return PermissionDenied("nope");
        });
    server_->RegisterHandler(
        kStore, [this](ServerContext& ctx, Decoder&) -> Result<Buffer> {
          stored_.resize(ctx.bulk_out_size());
          LWFS_RETURN_IF_ERROR(ctx.PullBulk(MutableByteSpan(stored_)));
          Encoder reply;
          reply.PutU64(stored_.size());
          return std::move(reply).Take();
        });
    server_->RegisterHandler(
        kFetch, [this](ServerContext& ctx, Decoder&) -> Result<Buffer> {
          LWFS_RETURN_IF_ERROR(ctx.PushBulk(ByteSpan(stored_)));
          return Buffer{};
        });
    server_->RegisterHandler(
        kSlow, [](ServerContext&, Decoder&) -> Result<Buffer> {
          util::RealClockInstance()->SleepFor(std::chrono::milliseconds(50));
          return Buffer{};
        });
    ASSERT_TRUE(server_->Start().ok());
  }

  portals::Fabric fabric_;
  std::unique_ptr<RpcServer> server_;
  Buffer stored_;
};

TEST_F(RpcTest, EchoRoundTrip) {
  StartServer();
  RpcClient client(fabric_.CreateNic());
  Encoder req;
  req.PutString("hi");
  auto reply = client.Call(server_->nid(), kEcho, ByteSpan(req.buffer()));
  ASSERT_TRUE(reply.ok());
  Decoder dec(*reply);
  EXPECT_EQ(*dec.GetString(), "echo:hi");
  EXPECT_EQ(client.stats().calls, 1u);
  EXPECT_EQ(client.stats().failures, 0u);
}

TEST_F(RpcTest, ServerErrorPropagatesCodeAndMessage) {
  StartServer();
  RpcClient client(fabric_.CreateNic());
  auto reply = client.Call(server_->nid(), kFail, {});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(reply.status().message(), "nope");
}

TEST_F(RpcTest, UnknownOpcodeIsInvalidArgument) {
  StartServer();
  RpcClient client(fabric_.CreateNic());
  auto reply = client.Call(server_->nid(), 999, {});
  EXPECT_EQ(reply.status().code(), ErrorCode::kInvalidArgument);
}

class RpcBulkTest : public RpcTest,
                    public ::testing::WithParamInterface<std::size_t> {};

TEST_P(RpcBulkTest, ServerPullThenPushRoundTrip) {
  StartServer();
  RpcClient client(fabric_.CreateNic());
  const Buffer payload = PatternBuffer(GetParam(), 3);

  // Write path: server pulls the registered payload.
  CallOptions wopts;
  wopts.bulk_out = ByteSpan(payload);
  auto wreply = client.Call(server_->nid(), kStore, {}, wopts);
  ASSERT_TRUE(wreply.ok());
  Decoder dec(*wreply);
  EXPECT_EQ(*dec.GetU64(), payload.size());

  // Read path: server pushes into the registered region.
  Buffer out(payload.size(), 0);
  CallOptions ropts;
  ropts.bulk_in = MutableByteSpan(out);
  auto rreply = client.Call(server_->nid(), kFetch, {}, ropts);
  ASSERT_TRUE(rreply.ok());
  EXPECT_EQ(out, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RpcBulkTest,
                         ::testing::Values(1, 512, 4096, 1 << 16, 1 << 20));

TEST_F(RpcTest, ConcurrentClients) {
  ServerOptions options;
  options.worker_threads = 2;
  StartServer(options);
  constexpr int kClients = 8;
  constexpr int kCallsEach = 50;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      RpcClient client(fabric_.CreateNic());
      for (int i = 0; i < kCallsEach; ++i) {
        Encoder req;
        req.PutString(std::to_string(i));
        auto reply = client.Call(server_->nid(), kEcho, ByteSpan(req.buffer()));
        if (reply.ok()) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * kCallsEach);
  EXPECT_EQ(server_->requests_served(), static_cast<std::uint64_t>(kClients) *
                                            kCallsEach);
}

TEST_F(RpcTest, FullRequestQueueForcesResends) {
  ServerOptions options;
  options.request_queue_depth = 1;
  options.worker_threads = 1;
  StartServer(options);
  // Saturate the single-slot queue with slow calls from several threads;
  // the clients must resend (counted) yet every call eventually succeeds.
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> resends{0};
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      RpcClient client(fabric_.CreateNic());
      for (int i = 0; i < 3; ++i) {
        auto reply = client.Call(server_->nid(), kSlow, {});
        if (reply.ok()) ok.fetch_add(1);
      }
      resends.fetch_add(client.stats().resends);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * 3);
  EXPECT_GT(resends.load(), 0u);  // flow control kicked in
}

TEST_F(RpcTest, CallToUnknownServerFailsFast) {
  StartServer();
  RpcClient client(fabric_.CreateNic());
  auto reply = client.Call(99999, kEcho, {});
  EXPECT_EQ(reply.status().code(), ErrorCode::kUnavailable);
}

TEST_F(RpcTest, TimeoutWhenServerDiesMidCall) {
  StartServer();
  RpcClient client(fabric_.CreateNic());
  // Kill the server's request processing between send and reply by taking
  // the node down after the request is queued is racy; instead use a
  // handler-less portal: stop the server so the entry disappears, then the
  // resends exhaust.
  server_->Stop();
  CallOptions options;
  options.timeout = std::chrono::milliseconds(100);
  options.max_resends = 3;
  auto reply = client.Call(server_->nid(), kEcho, {}, options);
  EXPECT_FALSE(reply.ok());
}

TEST_F(RpcTest, ControlPortalIsIndependentlyServed) {
  StartServer();
  // A second server on the same NIC, listening on the control portal.
  ServerOptions copts;
  copts.request_portal = kControlPortal;
  // Sharing the NIC requires access to it; create a dedicated NIC pair
  // instead: one NIC, two servers.
  auto nic = fabric_.CreateNic();
  RpcServer data_server(nic, {});
  RpcServer control_server(nic, copts);
  data_server.RegisterHandler(kEcho,
                              [](ServerContext&, Decoder&) -> Result<Buffer> {
                                Encoder reply;
                                reply.PutString("data");
                                return std::move(reply).Take();
                              });
  control_server.RegisterHandler(
      kEcho, [](ServerContext&, Decoder&) -> Result<Buffer> {
        Encoder reply;
        reply.PutString("control");
        return std::move(reply).Take();
      });
  ASSERT_TRUE(data_server.Start().ok());
  ASSERT_TRUE(control_server.Start().ok());

  RpcClient client(fabric_.CreateNic());
  auto data_reply = client.Call(nic->nid(), kEcho, {});
  ASSERT_TRUE(data_reply.ok());
  Decoder d1(*data_reply);
  EXPECT_EQ(*d1.GetString(), "data");

  CallOptions options;
  options.request_portal = kControlPortal;
  auto control_reply = client.Call(nic->nid(), kEcho, {}, options);
  ASSERT_TRUE(control_reply.ok());
  Decoder d2(*control_reply);
  EXPECT_EQ(*d2.GetString(), "control");

  data_server.Stop();
  control_server.Stop();
}

// ---------------------------------------------------------------------------
// Async completion engine
// ---------------------------------------------------------------------------

constexpr Opcode kGated = 6;  // blocks until the test releases it
constexpr Opcode kFast = 7;

TEST_F(RpcTest, OutOfOrderCompletions) {
  ServerOptions options;
  options.worker_threads = 2;
  auto nic = fabric_.CreateNic();
  RpcServer server(nic, options);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  server.RegisterHandler(kGated,
                         [gate](ServerContext&, Decoder&) -> Result<Buffer> {
                           gate.wait();
                           Encoder reply;
                           reply.PutString("slow");
                           return std::move(reply).Take();
                         });
  server.RegisterHandler(kFast, [](ServerContext&, Decoder&) -> Result<Buffer> {
    Encoder reply;
    reply.PutString("fast");
    return std::move(reply).Take();
  });
  ASSERT_TRUE(server.Start().ok());

  RpcClient client(fabric_.CreateNic());
  auto slow = client.CallAsync(nic->nid(), kGated, {});
  ASSERT_TRUE(slow.ok());
  auto fast = client.CallAsync(nic->nid(), kFast, {});
  ASSERT_TRUE(fast.ok());

  // The later call completes first; the earlier one is still parked.
  auto fast_reply = fast->Await();
  ASSERT_TRUE(fast_reply.ok());
  Decoder dec(*fast_reply);
  EXPECT_EQ(*dec.GetString(), "fast");
  Result<Buffer> peek = Buffer{};
  EXPECT_FALSE(slow->TryAwait(&peek));

  release.set_value();
  auto slow_reply = slow->Await();
  ASSERT_TRUE(slow_reply.ok());
  Decoder dec2(*slow_reply);
  EXPECT_EQ(*dec2.GetString(), "slow");
  EXPECT_EQ(client.stats().calls, 2u);
  EXPECT_EQ(client.stats().failures, 0u);
  server.Stop();
}

TEST_F(RpcTest, PerCallTimeoutLeavesOthersInFlight) {
  ServerOptions options;
  options.worker_threads = 2;
  auto nic = fabric_.CreateNic();
  RpcServer server(nic, options);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  server.RegisterHandler(kGated,
                         [gate](ServerContext&, Decoder&) -> Result<Buffer> {
                           gate.wait();
                           return Buffer{};
                         });
  ASSERT_TRUE(server.Start().ok());

  RpcClient client(fabric_.CreateNic());
  auto patient = client.CallAsync(nic->nid(), kGated, {});
  ASSERT_TRUE(patient.ok());
  CallOptions hasty_options;
  hasty_options.timeout = std::chrono::milliseconds(50);
  auto hasty = client.CallAsync(nic->nid(), kGated, {}, hasty_options);
  ASSERT_TRUE(hasty.ok());

  // The hasty call's deadline fires; the patient one must be untouched.
  auto hasty_reply = hasty->Await();
  ASSERT_FALSE(hasty_reply.ok());
  EXPECT_EQ(hasty_reply.status().code(), ErrorCode::kTimeout);
  Result<Buffer> peek = Buffer{};
  EXPECT_FALSE(patient->TryAwait(&peek));

  release.set_value();
  EXPECT_TRUE(patient->Await().ok());
  server.Stop();
}

TEST_F(RpcTest, DestructionWithCallsPendingAbortsThem) {
  ServerOptions options;
  options.worker_threads = 1;
  auto nic = fabric_.CreateNic();
  RpcServer server(nic, options);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  server.RegisterHandler(kGated,
                         [gate](ServerContext&, Decoder&) -> Result<Buffer> {
                           gate.wait();
                           return Buffer{};
                         });
  ASSERT_TRUE(server.Start().ok());

  CallHandle orphan;
  {
    RpcClient client(fabric_.CreateNic());
    auto handle = client.CallAsync(nic->nid(), kGated, {});
    ASSERT_TRUE(handle.ok());
    orphan = std::move(*handle);
  }  // client destroyed with the call still in flight

  auto reply = orphan.Await();
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kAborted);

  release.set_value();
  server.Stop();
}

// ---------------------------------------------------------------------------
// Fault tolerance: retransmission, at-most-once dedup, checksums, breaker
// ---------------------------------------------------------------------------

constexpr Opcode kCount = 8;  // non-idempotent: increments a counter

TEST_F(RpcTest, RetransmitRecoversLostReplyWithoutDoubleExecution) {
  auto nic = fabric_.CreateNic();
  RpcServer server(nic, {});
  std::atomic<int> executed{0};
  server.RegisterHandler(kCount,
                         [&executed](ServerContext&, Decoder&) -> Result<Buffer> {
                           executed.fetch_add(1);
                           return Buffer{};
                         });
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.default_timeout = std::chrono::milliseconds(50);
  copts.max_retransmits = 10;
  RpcClient client(fabric_.CreateNic(), copts);

  // Drop every server->client message: the request arrives and the handler
  // runs, but the reply vanishes on the wire.
  fabric_.injector().SetLink(nic->nid(), client.nid(), {.drop = 1.0});
  auto handle = client.CallAsync(nic->nid(), kCount, {});
  ASSERT_TRUE(handle.ok());
  while (executed.load() == 0) std::this_thread::yield();
  // Give the (doomed) first reply time to hit the wire, then heal the link
  // so the next retransmission's replayed reply gets through.
  util::RealClockInstance()->SleepFor(std::chrono::milliseconds(20));
  fabric_.injector().ClearFaults();

  ASSERT_TRUE(handle->Await().ok());
  EXPECT_EQ(executed.load(), 1);  // dedup absorbed every duplicate request
  EXPECT_GE(client.stats().retransmits, 1u);
  EXPECT_GE(server.stats().dedup_hits, 1u);
  server.Stop();
}

TEST_F(RpcTest, RetransmitBudgetExhaustedIsTimeout) {
  StartServer();
  ClientOptions copts;
  copts.default_timeout = std::chrono::milliseconds(25);
  copts.max_retransmits = 2;
  copts.breaker_threshold = 0;  // isolate the retransmit path
  RpcClient client(fabric_.CreateNic(), copts);
  // Drop every client->server message: requests silently vanish.
  fabric_.injector().SetLink(client.nid(), server_->nid(), {.drop = 1.0});
  auto reply = client.Call(server_->nid(), kEcho, {});
  EXPECT_EQ(reply.status().code(), ErrorCode::kTimeout);
  EXPECT_EQ(client.stats().retransmits, 2u);  // full budget spent
  EXPECT_EQ(server_->requests_served(), 0u);
}

TEST_F(RpcTest, CorruptRequestIsDroppedServerSide) {
  StartServer();
  ClientOptions copts;
  copts.default_timeout = std::chrono::milliseconds(25);
  copts.max_retransmits = 2;
  copts.breaker_threshold = 0;
  RpcClient client(fabric_.CreateNic(), copts);
  fabric_.injector().SetLink(client.nid(), server_->nid(), {.corrupt = 1.0});
  auto reply = client.Call(server_->nid(), kEcho, {});
  // A corrupt request frame never reaches a handler; to the client the loss
  // looks like any other timeout.
  EXPECT_EQ(reply.status().code(), ErrorCode::kTimeout);
  EXPECT_GE(server_->stats().crc_drops, 1u);
  EXPECT_EQ(server_->requests_served(), 0u);
}

TEST_F(RpcTest, CorruptReplySurfacesAsDataLossAfterRetries) {
  StartServer();
  ClientOptions copts;
  copts.default_timeout = std::chrono::milliseconds(500);
  copts.max_retransmits = 2;
  copts.breaker_threshold = 0;
  RpcClient client(fabric_.CreateNic(), copts);
  fabric_.injector().SetLink(server_->nid(), client.nid(), {.corrupt = 1.0});
  auto reply = client.Call(server_->nid(), kEcho, {});
  EXPECT_EQ(reply.status().code(), ErrorCode::kDataLoss);
  // Initial attempt + every retransmitted (deduped, replayed) reply was
  // rejected by the frame checksum.
  EXPECT_EQ(client.stats().crc_rejects, 3u);
  EXPECT_EQ(client.stats().retransmits, 2u);
  EXPECT_GE(server_->stats().dedup_hits, 2u);
  EXPECT_EQ(server_->requests_served(), 1u);  // handler ran exactly once
}

TEST_F(RpcTest, CorruptedBulkDataIsNeverSilentlyAccepted) {
  StartServer();
  stored_ = PatternBuffer(4096, 11);
  ClientOptions copts;
  copts.default_timeout = std::chrono::milliseconds(500);
  copts.breaker_threshold = 0;
  RpcClient client(fabric_.CreateNic(), copts);
  fabric_.injector().Seed(0xD15EA5E);
  // Corrupt ~30% of server->client messages: bulk pushes and reply frames.
  fabric_.injector().SetLink(server_->nid(), client.nid(), {.corrupt = 0.3});

  int ok_replies = 0;
  for (int i = 0; i < 50; ++i) {
    Buffer out(stored_.size(), 0);
    CallOptions ropts;
    ropts.bulk_in = MutableByteSpan(out);
    auto reply = client.Call(server_->nid(), kFetch, {}, ropts);
    if (reply.ok()) {
      // The one invariant that matters: an accepted read is byte-exact.
      ASSERT_EQ(out, stored_) << "corrupted bulk data accepted on call " << i;
      ++ok_replies;
    } else {
      EXPECT_EQ(reply.status().code(), ErrorCode::kDataLoss);
    }
  }
  EXPECT_GT(ok_replies, 0);  // retransmission recovered at least some calls
  const ClientStats stats = client.stats();
  EXPECT_GE(stats.bulk_crc_failures + stats.crc_rejects, 1u);
}

// ---------------------------------------------------------------------------
// Slice-carrying replies: PushBulkSlice → reply frame → CallHandle::ReplyBulk
// ---------------------------------------------------------------------------

constexpr Opcode kFetchSlice = 9;  // pushes a store-owned slice in the reply

TEST_F(RpcTest, SliceReplyAliasesTheServerBufferEndToEnd) {
  auto nic = fabric_.CreateNic();
  RpcServer server(nic, {});
  const util::SharedSlice payload =
      util::SharedSlice::FromBuffer(PatternBuffer(64 << 10, 13));
  server.RegisterHandler(
      kFetchSlice, [&](ServerContext& ctx, Decoder&) -> Result<Buffer> {
        LWFS_RETURN_IF_ERROR(ctx.PushBulkSlice(payload));
        return Buffer{};
      });
  ASSERT_TRUE(server.Start().ok());

  RpcClient client(fabric_.CreateNic());
  auto handle = client.CallAsync(nic->nid(), kFetchSlice, {});
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(handle->Await().ok());
  const util::SharedSlice got = handle->ReplyBulk();
  ASSERT_EQ(got.size(), payload.size());
  EXPECT_TRUE(std::equal(payload.span().begin(), payload.span().end(),
                         got.span().begin()));
  // The whole path — reply frame, wire, delivery, ReplyBulk — passed the
  // server's allocation by reference: the client reads the same bytes the
  // server owns, and the reply cache still holds an alias for replays.
  EXPECT_EQ(got.span().data(), payload.span().data());
  EXPECT_GE(payload.use_count(), 2);
  server.Stop();
}

TEST_F(RpcTest, ReplayedSliceReplyServesTheSameCachedSlice) {
  auto nic = fabric_.CreateNic();
  RpcServer server(nic, {});
  const util::SharedSlice payload =
      util::SharedSlice::FromBuffer(PatternBuffer(32 << 10, 17));
  std::atomic<int> executed{0};
  server.RegisterHandler(
      kFetchSlice, [&](ServerContext& ctx, Decoder&) -> Result<Buffer> {
        executed.fetch_add(1);
        LWFS_RETURN_IF_ERROR(ctx.PushBulkSlice(payload));
        return Buffer{};
      });
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.default_timeout = std::chrono::milliseconds(50);
  copts.max_retransmits = 10;
  RpcClient client(fabric_.CreateNic(), copts);

  // Drop every reply: the handler runs once, its frame parks in the reply
  // cache, and after the link heals a retransmission replays that frame.
  fabric_.injector().SetLink(nic->nid(), client.nid(), {.drop = 1.0});
  auto handle = client.CallAsync(nic->nid(), kFetchSlice, {});
  ASSERT_TRUE(handle.ok());
  while (executed.load() == 0) std::this_thread::yield();
  util::RealClockInstance()->SleepFor(std::chrono::milliseconds(20));
  fabric_.injector().ClearFaults();

  ASSERT_TRUE(handle->Await().ok());
  EXPECT_EQ(executed.load(), 1);  // dedup absorbed the duplicate requests
  EXPECT_GE(server.stats().dedup_hits, 1u);
  // The duplicate delivery aliases the one cached slice — same bytes, same
  // allocation.  However many times the reply crossed the wire, there is
  // exactly one payload in the process.
  const util::SharedSlice got = handle->ReplyBulk();
  ASSERT_EQ(got.size(), payload.size());
  EXPECT_EQ(got.span().data(), payload.span().data());
  server.Stop();
}

TEST_F(RpcTest, CorruptedSliceReplyNeverMutatesTheServerSlice) {
  auto nic = fabric_.CreateNic();
  RpcServer server(nic, {});
  const util::SharedSlice payload =
      util::SharedSlice::FromBuffer(PatternBuffer(16 << 10, 19));
  const Buffer pristine(payload.span().begin(), payload.span().end());
  server.RegisterHandler(
      kFetchSlice, [&](ServerContext& ctx, Decoder&) -> Result<Buffer> {
        LWFS_RETURN_IF_ERROR(ctx.PushBulkSlice(payload));
        return Buffer{};
      });
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.default_timeout = std::chrono::milliseconds(100);
  copts.max_retransmits = 2;
  copts.breaker_threshold = 0;
  RpcClient client(fabric_.CreateNic(), copts);

  // Because reply frames alias the server-owned slice, the injector's bit
  // flips must land in a copy-on-write clone — never in the slice itself,
  // or one hostile wire event would corrupt every future read of the
  // object.
  fabric_.injector().SetLink(nic->nid(), client.nid(), {.corrupt = 1.0});
  auto reply = client.Call(nic->nid(), kFetchSlice, {});
  EXPECT_FALSE(reply.ok());
  EXPECT_TRUE(
      std::equal(pristine.begin(), pristine.end(), payload.span().begin()))
      << "fault injection mutated the server-owned slice";

  // After healing, the same cached/re-served bytes arrive intact.
  fabric_.injector().ClearFaults();
  auto handle = client.CallAsync(nic->nid(), kFetchSlice, {});
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(handle->Await().ok());
  const util::SharedSlice got = handle->ReplyBulk();
  ASSERT_EQ(got.size(), pristine.size());
  EXPECT_TRUE(
      std::equal(pristine.begin(), pristine.end(), got.span().begin()));
  server.Stop();
}

TEST_F(RpcTest, BreakerOpensFastFailsAndRecoversViaProbe) {
  StartServer();
  ClientOptions copts;
  copts.default_timeout = std::chrono::milliseconds(25);
  copts.max_retransmits = 0;
  copts.breaker_threshold = 2;
  copts.breaker_cooldown = std::chrono::milliseconds(50);
  RpcClient client(fabric_.CreateNic(), copts);
  Encoder req;
  req.PutString("ping");
  const ByteSpan body(req.buffer());

  fabric_.SetNodeDown(server_->nid(), true);
  EXPECT_FALSE(client.Call(server_->nid(), kEcho, body).ok());
  EXPECT_FALSE(client.Call(server_->nid(), kEcho, body).ok());
  EXPECT_TRUE(client.BreakerOpen(server_->nid()));
  EXPECT_EQ(client.stats().breaker_opens, 1u);

  // While open, calls are refused without touching the fabric.
  auto fast = client.Call(server_->nid(), kEcho, body);
  EXPECT_EQ(fast.status().code(), ErrorCode::kUnavailable);
  EXPECT_GE(client.stats().breaker_fast_fails, 1u);

  // A failed half-open probe keeps the breaker open.
  util::RealClockInstance()->SleepFor(std::chrono::milliseconds(60));
  EXPECT_FALSE(client.Call(server_->nid(), kEcho, body).ok());
  EXPECT_TRUE(client.BreakerOpen(server_->nid()));

  // Server comes back: after the cooldown one probe goes through, succeeds,
  // and closes the breaker.
  fabric_.SetNodeDown(server_->nid(), false);
  util::RealClockInstance()->SleepFor(std::chrono::milliseconds(60));
  EXPECT_TRUE(client.Call(server_->nid(), kEcho, body).ok());
  EXPECT_FALSE(client.BreakerOpen(server_->nid()));
  EXPECT_TRUE(client.Call(server_->nid(), kEcho, body).ok());
}

TEST_F(RpcTest, ErrorRepliesDoNotTripBreaker) {
  StartServer();
  ClientOptions copts;
  copts.breaker_threshold = 2;
  RpcClient client(fabric_.CreateNic(), copts);
  // A decoded error reply is proof the server is alive — the lock-polling
  // pattern depends on kResourceExhausted loops not opening the breaker.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(client.Call(server_->nid(), kFail, {}).status().code(),
              ErrorCode::kPermissionDenied);
  }
  EXPECT_FALSE(client.BreakerOpen(server_->nid()));
  EXPECT_EQ(client.stats().breaker_opens, 0u);
}

TEST(BackoffTest, DecorrelatedJitterStaysInEnvelope) {
  Backoff backoff(/*seed=*/42);
  int prev = Backoff::kDefaultBaseUs;
  for (int i = 0; i < 64; ++i) {
    const int us = backoff.NextUs();
    EXPECT_GE(us, Backoff::kDefaultBaseUs);
    EXPECT_LE(us, Backoff::kDefaultCapUs);
    EXPECT_LE(us, std::max(Backoff::kDefaultBaseUs, 3 * prev));
    prev = us;
  }
}

TEST(BackoffTest, DifferentSeedsSpreadRetries) {
  // Decorrelated jitter exists so that clients rejected together do not
  // resend together: distinct seeds must produce distinct schedules.
  constexpr int kClients = 16;
  constexpr int kSteps = 8;
  std::set<std::vector<int>> schedules;
  for (int c = 0; c < kClients; ++c) {
    Backoff backoff(static_cast<std::uint64_t>(c) << 32 | 7u);
    std::vector<int> schedule;
    schedule.reserve(kSteps);
    for (int i = 0; i < kSteps; ++i) schedule.push_back(backoff.NextUs());
    schedules.insert(std::move(schedule));
  }
  // At least 15 of 16 schedules distinct (allows one rare collision).
  EXPECT_GE(schedules.size(), static_cast<std::size_t>(kClients - 1));
  // And the very first retry delay is already spread, not a single value.
  std::set<int> first_delays;
  for (int c = 0; c < kClients; ++c) {
    Backoff backoff(static_cast<std::uint64_t>(c) << 32 | 7u);
    first_delays.insert(backoff.NextUs());
  }
  EXPECT_GT(first_delays.size(), 4u);
}

// ---------------------------------------------------------------------------
// Completion notification (CallHandle::OnComplete) — the event-driven path
// ---------------------------------------------------------------------------

TEST_F(RpcTest, OnCompleteAfterCompletionRunsInlineOnCaller) {
  StartServer();
  RpcClient client(fabric_.CreateNic());
  Encoder req;
  req.PutString("now");
  auto handle = client.CallAsync(server_->nid(), kEcho, ByteSpan(req.buffer()));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(handle->Await().ok());

  // The call is already done: the callback must run on this thread, inside
  // the OnComplete call, with the result visible.
  const auto caller = std::this_thread::get_id();
  bool ran = false;
  handle->OnComplete([&](const Result<Buffer>& result) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_TRUE(result.ok());
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST_F(RpcTest, OnCompleteRunsBeforeAwaitersAreReleased) {
  ServerOptions options;
  options.worker_threads = 1;
  auto nic = fabric_.CreateNic();
  RpcServer server(nic, options);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  server.RegisterHandler(kGated,
                         [gate](ServerContext&, Decoder&) -> Result<Buffer> {
                           gate.wait();
                           return Buffer{};
                         });
  ASSERT_TRUE(server.Start().ok());

  RpcClient client(fabric_.CreateNic());
  auto handle = client.CallAsync(nic->nid(), kGated, {});
  ASSERT_TRUE(handle.ok());
  std::atomic<bool> callback_ran{false};
  std::atomic<bool> try_await_inside{false};
  CallHandle inner = *handle;
  handle->OnComplete([&](const Result<Buffer>& result) {
    EXPECT_TRUE(result.ok());
    // The contract: TryAwait succeeds inside the callback.
    Result<Buffer> peek = Buffer{};
    try_await_inside = inner.TryAwait(&peek);
    callback_ran = true;
  });
  EXPECT_FALSE(callback_ran.load());  // still parked behind the gate

  release.set_value();
  ASSERT_TRUE(handle->Await().ok());
  // The callback fires before Await waiters are released, so by the time
  // Await returned it must have run.
  EXPECT_TRUE(callback_ran.load());
  EXPECT_TRUE(try_await_inside.load());
  server.Stop();
}

TEST_F(RpcTest, OnCompleteFiresOnRetransmitExhaustion) {
  StartServer();
  ClientOptions copts;
  copts.default_timeout = std::chrono::milliseconds(25);
  copts.max_retransmits = 2;
  copts.breaker_threshold = 0;
  RpcClient client(fabric_.CreateNic(), copts);
  fabric_.injector().SetLink(client.nid(), server_->nid(), {.drop = 1.0});

  auto handle = client.CallAsync(server_->nid(), kEcho, {});
  ASSERT_TRUE(handle.ok());
  std::promise<ErrorCode> seen;
  handle->OnComplete([&](const Result<Buffer>& result) {
    seen.set_value(result.status().code());
  });
  // Failure paths (deadline after a spent retransmit budget) publish the
  // result through the same completion path as replies.
  EXPECT_EQ(seen.get_future().get(), ErrorCode::kTimeout);
  EXPECT_EQ(handle->Await().status().code(), ErrorCode::kTimeout);
  EXPECT_EQ(client.stats().retransmits, 2u);
}

TEST_F(RpcTest, SecondOnCompleteReplacesUnfiredFirst) {
  ServerOptions options;
  options.worker_threads = 1;
  auto nic = fabric_.CreateNic();
  RpcServer server(nic, options);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  server.RegisterHandler(kGated,
                         [gate](ServerContext&, Decoder&) -> Result<Buffer> {
                           gate.wait();
                           return Buffer{};
                         });
  ASSERT_TRUE(server.Start().ok());

  RpcClient client(fabric_.CreateNic());
  auto handle = client.CallAsync(nic->nid(), kGated, {});
  ASSERT_TRUE(handle.ok());
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  handle->OnComplete([&](const Result<Buffer>&) { ++first; });
  handle->OnComplete([&](const Result<Buffer>&) { ++second; });

  release.set_value();
  ASSERT_TRUE(handle->Await().ok());
  EXPECT_EQ(first.load(), 0);  // replaced before it could fire
  EXPECT_EQ(second.load(), 1);
  server.Stop();
}

TEST(RpcVirtualClockTest, OnCompleteTimeoutPathNeverDeadlocksOnVirtualTime) {
  // Every party — fabric, server, client engine, and this thread — runs on
  // one VirtualClock.  The call's deadline can only be reached by a virtual
  // advance, which requires that the completion path never leaves a thread
  // blocked outside the clock.
  util::VirtualClock vclock;
  util::Clock::ThreadGuard guard(&vclock);
  portals::Fabric fabric;
  fabric.SetClock(&vclock);
  auto nic = fabric.CreateNic();
  ServerOptions sopts;
  sopts.clock = &vclock;
  RpcServer server(nic, sopts);
  server.RegisterHandler(kEcho, [](ServerContext&, Decoder&) -> Result<Buffer> {
    return Buffer{};
  });
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.clock = &vclock;
  copts.default_timeout = std::chrono::milliseconds(25);
  copts.max_retransmits = 1;
  copts.breaker_threshold = 0;
  RpcClient client(fabric.CreateNic(), copts);
  fabric.injector().SetLink(client.nid(), nic->nid(), {.drop = 1.0});

  auto handle = client.CallAsync(nic->nid(), kEcho, {});
  ASSERT_TRUE(handle.ok());
  std::atomic<bool> callback_ran{false};
  handle->OnComplete([&](const Result<Buffer>& result) {
    EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
    callback_ran = true;
  });
  EXPECT_EQ(handle->Await().status().code(), ErrorCode::kTimeout);
  EXPECT_TRUE(callback_ran.load());

  // The healed path still completes (and fires its callback) afterwards.
  fabric.injector().ClearFaults();
  auto again = client.CallAsync(nic->nid(), kEcho, {});
  ASSERT_TRUE(again.ok());
  std::atomic<bool> ok_ran{false};
  again->OnComplete(
      [&](const Result<Buffer>& result) { ok_ran = result.ok(); });
  EXPECT_TRUE(again->Await().ok());
  EXPECT_TRUE(ok_ran.load());
  server.Stop();
}

// ---------------------------------------------------------------------------
// Shared-client tallies: thousands of logical clients, one RpcClient
// ---------------------------------------------------------------------------

TEST_F(RpcTest, OpTalliesAggregateAcrossConcurrentIssuers) {
  StartServer();
  RpcClient client(fabric_.CreateNic());
  constexpr int kThreads = 8;
  constexpr int kOkPerThread = 50;
  constexpr int kFailPerThread = 10;

  // Many issuing threads sharing one engine, as carrier threads do when
  // thousands of logical clients multiplex one endpoint.  Every issue and
  // every error must land in the shared tallies exactly once.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<CallHandle> handles;
      Encoder req;
      req.PutString("tally");
      for (int i = 0; i < kOkPerThread; ++i) {
        auto h = client.CallAsync(server_->nid(), kEcho, ByteSpan(req.buffer()));
        ASSERT_TRUE(h.ok());
        handles.push_back(std::move(*h));
      }
      for (int i = 0; i < kFailPerThread; ++i) {
        auto h = client.CallAsync(server_->nid(), kFail, {});
        ASSERT_TRUE(h.ok());
        handles.push_back(std::move(*h));
      }
      for (auto& h : handles) (void)h.Await();
    });
  }
  for (auto& t : threads) t.join();

  const auto tallies = client.OpTallies();
  ASSERT_TRUE(tallies.contains(kEcho));
  ASSERT_TRUE(tallies.contains(kFail));
  EXPECT_EQ(tallies.at(kEcho).calls,
            static_cast<std::uint64_t>(kThreads) * kOkPerThread);
  EXPECT_EQ(tallies.at(kEcho).errors, 0u);
  EXPECT_EQ(tallies.at(kFail).calls,
            static_cast<std::uint64_t>(kThreads) * kFailPerThread);
  EXPECT_EQ(tallies.at(kFail).errors,
            static_cast<std::uint64_t>(kThreads) * kFailPerThread);
  EXPECT_EQ(client.stats().calls,
            static_cast<std::uint64_t>(kThreads) * (kOkPerThread + kFailPerThread));
}

}  // namespace
}  // namespace lwfs::rpc
