// Validating the simulator against queueing theory: if the engine's FIFO
// resources do not reproduce textbook results, none of the Figure 9/10
// numbers can be trusted.  These tests drive the primitives with known
// workloads and compare against closed forms.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/resources.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lwfs::sim {
namespace {

/// Drive an M/D/1 queue: Poisson arrivals (rate lambda), deterministic
/// service time s, single server.  Returns the mean waiting time in queue.
double RunMd1(double lambda, double service, int customers,
              std::uint64_t seed) {
  Engine engine;
  FifoResource server(&engine, 1);
  Rng rng(seed);
  RunningStats wait;

  double arrival_time = 0;
  for (int i = 0; i < customers; ++i) {
    arrival_time += rng.NextExponential(1.0 / lambda);
    engine.At(arrival_time, [&engine, &server, &wait, service, arrival_time] {
      engine.Spawn([](Engine& e, FifoResource& r, RunningStats& w, double s,
                      double arrived) -> Task {
        co_await r.Use(s);
        // Waiting time = completion - arrival - service.
        w.Add(e.Now() - arrived - s);
      }(engine, server, wait, service, arrival_time));
    });
  }
  engine.RunUntilIdle();
  return wait.mean();
}

class Md1Test : public ::testing::TestWithParam<double> {};

TEST_P(Md1Test, MeanWaitMatchesPollaczekKhinchine) {
  const double rho = GetParam();     // utilization
  const double service = 0.01;       // seconds
  const double lambda = rho / service;
  // Wq = rho * s / (2 (1 - rho)) for M/D/1.
  const double expected = rho * service / (2.0 * (1.0 - rho));
  RunningStats across_seeds;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    across_seeds.Add(RunMd1(lambda, service, 40000, seed));
  }
  EXPECT_NEAR(across_seeds.mean(), expected, expected * 0.15 + 2e-5)
      << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Utilizations, Md1Test,
                         ::testing::Values(0.3, 0.5, 0.7, 0.85));

TEST(QueueingTest, UtilizationMatchesOfferedLoad) {
  Engine engine;
  FifoResource server(&engine, 1);
  Rng rng(3);
  const double service = 0.02;
  const double lambda = 30;  // rho = 0.6
  double arrival = 0;
  for (int i = 0; i < 5000; ++i) {
    arrival += rng.NextExponential(1.0 / lambda);
    engine.At(arrival, [&engine, &server, service] {
      engine.Spawn([](FifoResource& r, double s) -> Task {
        co_await r.Use(s);
      }(server, service));
    });
  }
  const double horizon = engine.RunUntilIdle();
  EXPECT_NEAR(server.Utilization(horizon), 0.6, 0.05);
  EXPECT_EQ(server.served(), 5000u);
}

TEST(QueueingTest, TwoServersHalveTheWaitAtSameLoad) {
  // A sanity property the Figure 9 scaling rests on: doubling servers at
  // fixed total offered load strictly reduces queueing.
  auto run = [](int slots, double per_slot_rho) {
    Engine engine;
    FifoResource servers(&engine, slots);
    Rng rng(9);
    RunningStats wait;
    const double service = 0.01;
    const double lambda = per_slot_rho * slots / service;
    double arrival = 0;
    for (int i = 0; i < 20000; ++i) {
      arrival += rng.NextExponential(1.0 / lambda);
      engine.At(arrival, [&engine, &servers, &wait, service, arrival] {
        engine.Spawn([](Engine& e, FifoResource& r, RunningStats& w, double s,
                        double arrived) -> Task {
          co_await r.Use(s);
          w.Add(e.Now() - arrived - s);
        }(engine, servers, wait, service, arrival));
      });
    }
    engine.RunUntilIdle();
    return wait.mean();
  };
  const double one = run(1, 0.7);
  const double two = run(2, 0.7);
  EXPECT_LT(two, one);
}

TEST(QueueingTest, PipeConservesBytes) {
  // Whatever enters the link leaves the link: total transfer time for K
  // serial transfers equals K * (bytes/bw) + K * latency when issued
  // back-to-back by one sender.
  Engine engine;
  Pipe pipe(&engine, 1e6, 0.001);
  double done = 0;
  engine.Spawn([](Engine& e, Pipe& p, double& out) -> Task {
    for (int i = 0; i < 10; ++i) co_await p.Transfer(5000);
    out = e.Now();
  }(engine, pipe, done));
  engine.RunUntilIdle();
  EXPECT_NEAR(done, 10 * (5000 / 1e6 + 0.001), 1e-9);
}

TEST(QueueingTest, ConcurrentSendersShareBandwidthFairlyInAggregate) {
  // N senders pushing through one pipe finish in N * single-sender
  // bandwidth time (serialized DMA), regardless of interleaving.
  Engine engine;
  Pipe pipe(&engine, 1e6, 0.0);
  for (int i = 0; i < 8; ++i) {
    engine.Spawn([](Pipe& p) -> Task { co_await p.Transfer(100000); }(pipe));
  }
  const double horizon = engine.RunUntilIdle();
  EXPECT_NEAR(horizon, 8 * 0.1, 1e-9);
}

TEST(QueueingTest, JitterPreservesMeans) {
  // The per-trial jitter used for error bars must not bias the mean
  // service time (else calibrations would drift with the trial count).
  Rng rng(1);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double jittered = 1.0 * (1.0 + 0.03 * (2.0 * rng.NextDouble() - 1.0));
    stats.Add(jittered);
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.001);
}

}  // namespace
}  // namespace lwfs::sim
