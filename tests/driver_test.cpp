// Tests for the event-driven logical-client engine (src/driver) and the
// checkpoint WritePipeline state machine it drives: carrier scheduling,
// completion and timer wakes, per-client deterministic RNG streams,
// logical-waiter interaction with the virtual clock, and the scheduled
// lock-retry pattern that replaces sleep-loop polling.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "checkpoint/write_pipeline.h"
#include "core/runtime.h"
#include "driver/driver.h"
#include "txn/lock_retry.h"
#include "txn/lock_table.h"
#include "util/clock.h"

namespace lwfs {
namespace {

void Mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
}

/// Counts down `rounds` runnable polls, then finishes.
class Spinner final : public driver::LogicalClient {
 public:
  explicit Spinner(int rounds) : rounds_(rounds) {}
  driver::Step Poll(driver::Context&) override {
    if (rounds_-- > 0) return driver::Step::kRunnable;
    return driver::Step::kDone;
  }

 private:
  int rounds_;
};

TEST(DriverEngine, DrivesManyMachinesOverFewCarriers) {
  driver::EngineOptions options;
  options.carriers = 3;
  driver::Engine engine(options);
  constexpr std::uint64_t kN = 10000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(engine.Add(std::make_unique<Spinner>(3)), i);
  }
  ASSERT_TRUE(engine.Run().ok());
  const driver::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.clients, kN);
  EXPECT_EQ(stats.done, kN);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.polls, kN * 4);  // 3 runnable rounds + the finishing poll
  EXPECT_EQ(stats.clients_per_carrier, (kN + 2) / 3);
  EXPECT_EQ(engine.Run().code(), ErrorCode::kFailedPrecondition);
}

/// Blocks without arming anything — the engine must report it, not hang.
class Staller final : public driver::LogicalClient {
 public:
  driver::Step Poll(driver::Context&) override {
    return driver::Step::kBlocked;
  }
};

TEST(DriverEngine, BlockedMachineWithNoWakeIsAnError) {
  driver::Engine engine(driver::EngineOptions{});
  engine.Add(std::make_unique<Spinner>(1));
  engine.Add(std::make_unique<Staller>());
  const Status status = engine.Run();
  EXPECT_EQ(status.code(), ErrorCode::kInternal);
  EXPECT_EQ(engine.stats().failed, 1u);
  EXPECT_EQ(engine.stats().done, 2u);  // the stalled machine is retired too
}

/// Hops through `rounds` rng-spaced timer wakes, folding every observed
/// virtual timestamp and rng draw into a digest.
class TimerHopper final : public driver::LogicalClient {
 public:
  TimerHopper(int rounds, std::uint64_t* digest)
      : rounds_(rounds), digest_(digest) {}
  driver::Step Poll(driver::Context& ctx) override {
    Mix(*digest_, static_cast<std::uint64_t>(ctx.clock()->Now().count()));
    if (rounds_-- == 0) return driver::Step::kDone;
    const std::uint64_t jitter = ctx.rng().NextBelow(200);
    Mix(*digest_, jitter);
    ctx.WakeAfter(std::chrono::microseconds(50 + jitter));
    return driver::Step::kBlocked;
  }

 private:
  int rounds_;
  std::uint64_t* digest_;
};

std::uint64_t RunTimerSwarm(std::uint64_t seed) {
  util::VirtualClock clock;
  util::Clock::ThreadGuard guard(&clock);
  driver::EngineOptions options;
  options.carriers = 2;
  options.seed = seed;
  options.clock = &clock;
  driver::Engine engine(options);
  constexpr int kN = 64;
  std::vector<std::uint64_t> digests(kN, 0xCBF29CE484222325ULL);
  for (int i = 0; i < kN; ++i) {
    engine.Add(std::make_unique<TimerHopper>(5, &digests[i]));
  }
  EXPECT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.stats().timer_fires, static_cast<std::uint64_t>(kN) * 5);
  std::uint64_t combined = 0xCBF29CE484222325ULL;
  for (std::uint64_t d : digests) Mix(combined, d);
  return combined;
}

TEST(DriverEngine, TimerWakesAreDeterministicOnVirtualTime) {
  // Parked machines' timers are reached through the carrier's logical
  // waiter on the virtual clock; two runs from one seed replay the same
  // interleaving bit-for-bit, and a different seed diverges.
  const std::uint64_t a = RunTimerSwarm(7);
  const std::uint64_t b = RunTimerSwarm(7);
  const std::uint64_t c = RunTimerSwarm(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(DriverEngine, RngStreamsDifferPerClient) {
  driver::EngineOptions options;
  options.seed = 42;
  driver::Engine engine(options);
  constexpr int kN = 16;
  std::vector<std::uint64_t> first(kN, 0);
  class Probe final : public driver::LogicalClient {
   public:
    explicit Probe(std::uint64_t* out) : out_(out) {}
    driver::Step Poll(driver::Context& ctx) override {
      *out_ = ctx.rng().NextU64();
      return driver::Step::kDone;
    }

   private:
    std::uint64_t* out_;
  };
  for (int i = 0; i < kN; ++i) {
    engine.Add(std::make_unique<Probe>(&first[i]));
  }
  ASSERT_TRUE(engine.Run().ok());
  for (int i = 0; i < kN; ++i) {
    for (int j = i + 1; j < kN; ++j) EXPECT_NE(first[i], first[j]);
  }
}

/// Acquire an exclusive lock with scheduled-timer retries (the event-driven
/// counterpart of Client::LockBlocking's sleep loop), hold it across a
/// timer wake, release, done.
class LockWorker final : public driver::LogicalClient {
 public:
  LockWorker(core::Client* client, txn::LockKey key) : client_(client), key_(key) {}

  driver::Step Poll(driver::Context& ctx) override {
    for (;;) {
      switch (stage_) {
        case Stage::kIssueTry: {
          auto handle = client_->TryLockAsync(key_, txn::kWholeResource,
                                              txn::LockMode::kExclusive);
          if (!handle.ok()) return Fail(handle.status());
          call_ = std::move(*handle);
          ctx.WakeOnComplete(call_);
          stage_ = Stage::kAwaitTry;
          return driver::Step::kBlocked;
        }
        case Stage::kAwaitTry: {
          Result<Buffer> reply = Buffer{};
          if (!call_.TryAwait(&reply)) return driver::Step::kBlocked;
          auto id = core::Client::ResolveTryLock(std::move(reply));
          if (!id.ok()) {
            if (id.status().code() != ErrorCode::kResourceExhausted) {
              return Fail(id.status());
            }
            // Contended: arm the shared backoff schedule as a timer wake
            // instead of sleeping an OS thread.
            if (!retry_.has_value()) {
              retry_.emplace(ctx.clock()->Now(), std::chrono::seconds(10));
            }
            const auto next = retry_->Next(ctx.clock()->Now());
            if (!next.has_value()) return Fail(Timeout("lock wait timed out"));
            ++retries_;
            ctx.WakeAt(*next);
            stage_ = Stage::kIssueTry;
            return driver::Step::kBlocked;
          }
          lock_id_ = *id;
          retry_.reset();
          stage_ = Stage::kHold;
          ctx.WakeAfter(std::chrono::microseconds(200));
          return driver::Step::kBlocked;
        }
        case Stage::kHold: {
          auto handle = client_->UnlockAsync(lock_id_);
          if (!handle.ok()) return Fail(handle.status());
          call_ = std::move(*handle);
          ctx.WakeOnComplete(call_);
          stage_ = Stage::kAwaitUnlock;
          return driver::Step::kBlocked;
        }
        case Stage::kAwaitUnlock: {
          Result<Buffer> reply = Buffer{};
          if (!call_.TryAwait(&reply)) return driver::Step::kBlocked;
          const Status unlocked = core::Client::ResolveUnlock(std::move(reply));
          if (!unlocked.ok()) return Fail(unlocked);
          held_ = true;
          return driver::Step::kDone;
        }
      }
    }
  }

  [[nodiscard]] Status result() const override { return result_; }
  [[nodiscard]] bool held() const { return held_; }
  [[nodiscard]] int retries() const { return retries_; }

 private:
  enum class Stage { kIssueTry, kAwaitTry, kHold, kAwaitUnlock };
  driver::Step Fail(Status status) {
    result_ = std::move(status);
    return driver::Step::kDone;
  }

  core::Client* client_;
  txn::LockKey key_;
  Stage stage_ = Stage::kIssueTry;
  rpc::CallHandle call_;
  std::optional<txn::LockRetrySchedule> retry_;
  txn::LockId lock_id_ = 0;
  Status result_ = OkStatus();
  bool held_ = false;
  int retries_ = 0;
};

TEST(DriverEngine, ContendedLockMachinesRetryOnTimersNotSleeps) {
  util::VirtualClock clock;
  util::Clock::ThreadGuard guard(&clock);
  core::RuntimeOptions options;
  options.storage_servers = 1;
  options.clock = &clock;
  auto runtime = core::ServiceRuntime::Start(options);
  ASSERT_TRUE(runtime.ok());

  // One endpoint per machine: the lock table is re-entrant per owner
  // (owner = client nid), so real contention needs distinct nids.
  driver::EngineOptions eng;
  eng.carriers = 2;
  eng.clock = &clock;
  driver::Engine engine(eng);
  const txn::LockKey key{1, 99};
  constexpr int kN = 8;
  std::vector<std::unique_ptr<core::Client>> endpoints;
  std::vector<LockWorker*> workers;
  for (int i = 0; i < kN; ++i) {
    endpoints.push_back((*runtime)->MakeClient());
    auto worker = std::make_unique<LockWorker>(endpoints.back().get(), key);
    workers.push_back(worker.get());
    engine.Add(std::move(worker));
  }
  ASSERT_TRUE(engine.Run().ok());

  int total_retries = 0;
  for (const LockWorker* w : workers) {
    EXPECT_TRUE(w->held());
    total_retries += w->retries();
  }
  // The lock is exclusive and held across a timer wake, so later machines
  // must have found it busy at least once each.
  EXPECT_GE(total_retries, kN - 1);
  EXPECT_GT(engine.stats().timer_fires, 0u);
}

TEST(DriverEngine, WritePipelineRunsFullAuthCreateStreamVerifyPath) {
  util::VirtualClock clock;
  util::Clock::ThreadGuard guard(&clock);
  core::RuntimeOptions options;
  options.storage_servers = 4;
  options.clock = &clock;
  auto runtime = core::ServiceRuntime::Start(options);
  ASSERT_TRUE(runtime.ok());
  (*runtime)->AddUser("machines", "pw", 7);

  // The machines log in and acquire their own capability, so the container
  // is the only pre-provisioned state.
  auto admin = (*runtime)->MakeClient();
  auto cred = admin->Login("machines", "pw");
  ASSERT_TRUE(cred.ok());
  auto cid = admin->CreateContainer(*cred);
  ASSERT_TRUE(cid.ok());

  const Buffer payload(10000, 0x5A);
  driver::EngineOptions eng;
  eng.carriers = 2;
  eng.clock = &clock;
  auto shard0 = (*runtime)->MakeClient();
  auto shard1 = (*runtime)->MakeClient();
  core::Client* shards[] = {shard0.get(), shard1.get()};
  driver::Engine engine(eng);
  constexpr std::uint32_t kN = 32;
  std::vector<checkpoint::WritePipeline*> machines;
  for (std::uint32_t i = 0; i < kN; ++i) {
    checkpoint::WritePipeline::Spec spec;
    spec.client = shards[i % 2];
    spec.server = i % 4;
    spec.principal = "machines";
    spec.secret = "pw";
    spec.cid = *cid;
    spec.cap_ops = security::kOpAll;
    spec.payload = ByteSpan(payload);
    spec.chunk_bytes = 4096;  // 3 chunks, windowed 2 deep
    spec.window = 2;
    spec.verify_attr = true;
    auto machine = std::make_unique<checkpoint::WritePipeline>(std::move(spec));
    machines.push_back(machine.get());
    engine.Add(std::move(machine));
  }
  ASSERT_TRUE(engine.Run().ok());

  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(machines[i]->result().ok()) << machines[i]->result().ToString();
    EXPECT_TRUE(machines[i]->created());
    EXPECT_TRUE(machines[i]->dumped());
    auto attr = admin->GetAttr(i % 4,
                               *admin->GetCap(*cred, *cid, security::kOpAll),
                               machines[i]->oid());
    ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->size, payload.size());
  }
  std::uint64_t objects = 0;
  for (int s = 0; s < 4; ++s) objects += (*runtime)->store(s).ObjectCount();
  EXPECT_GE(objects, static_cast<std::uint64_t>(kN));
}

TEST(LockRetrySchedule, DoublesFromFiftyMicrosAndHonorsDeadline) {
  using namespace std::chrono;
  const util::Clock::TimePoint t0{};
  txn::LockRetrySchedule retry(t0, milliseconds(1));
  auto n1 = retry.Next(t0);
  ASSERT_TRUE(n1.has_value());
  EXPECT_EQ(*n1, t0 + microseconds(50));
  auto n2 = retry.Next(*n1);
  ASSERT_TRUE(n2.has_value());
  EXPECT_EQ(*n2, *n1 + microseconds(100));
  auto n3 = retry.Next(*n2);
  ASSERT_TRUE(n3.has_value());
  EXPECT_EQ(*n3, *n2 + microseconds(200));
  // Once the observed time reaches the deadline the schedule reports
  // exhaustion and the caller returns Timeout.
  auto n4 = retry.Next(*n3);
  ASSERT_TRUE(n4.has_value());
  EXPECT_LE(*n4, retry.deadline());
  EXPECT_FALSE(retry.Next(retry.deadline()).has_value());
}

}  // namespace
}  // namespace lwfs
