// Tests for the object-storage substrate: the allocator, and every backend
// through the common ObjectStore interface (parameterized).
#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <memory>

#include "storage/block_allocator.h"
#include "storage/object_store.h"
#include "util/rng.h"

namespace lwfs::storage {
namespace {

// ---- BlockAllocator ---------------------------------------------------------

TEST(BlockAllocatorTest, StartsFullyFree) {
  BlockAllocator alloc(100);
  EXPECT_EQ(alloc.free_blocks(), 100u);
  EXPECT_EQ(alloc.allocated_blocks(), 0u);
  EXPECT_TRUE(alloc.CheckInvariants());
}

TEST(BlockAllocatorTest, AllocateAndFreeRoundTrip) {
  BlockAllocator alloc(100);
  auto extents = alloc.Allocate(40);
  ASSERT_TRUE(extents.ok());
  EXPECT_EQ(alloc.free_blocks(), 60u);
  for (const Extent& e : *extents) ASSERT_TRUE(alloc.Free(e).ok());
  EXPECT_EQ(alloc.free_blocks(), 100u);
  EXPECT_EQ(alloc.free_extent_count(), 1u);  // fully coalesced
  EXPECT_TRUE(alloc.CheckInvariants());
}

TEST(BlockAllocatorTest, ExhaustionFailsCleanly) {
  BlockAllocator alloc(10);
  ASSERT_TRUE(alloc.Allocate(10).ok());
  auto more = alloc.Allocate(1);
  EXPECT_EQ(more.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_TRUE(alloc.CheckInvariants());
}

TEST(BlockAllocatorTest, FragmentationSplitsAllocations) {
  BlockAllocator alloc(30);
  auto a = alloc.Allocate(10);
  auto b = alloc.Allocate(10);
  auto c = alloc.Allocate(10);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  // Free the middle, then ask for more than any single hole.
  for (const Extent& e : *b) ASSERT_TRUE(alloc.Free(e).ok());
  EXPECT_FALSE(alloc.AllocateContiguous(11).ok());
  auto split = alloc.Allocate(10);
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(alloc.CheckInvariants());
}

TEST(BlockAllocatorTest, DoubleFreeRejected) {
  BlockAllocator alloc(20);
  auto e = alloc.AllocateContiguous(5);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(alloc.Free(*e).ok());
  EXPECT_FALSE(alloc.Free(*e).ok());
  EXPECT_TRUE(alloc.CheckInvariants());
}

TEST(BlockAllocatorTest, FreeOutOfRangeRejected) {
  BlockAllocator alloc(20);
  EXPECT_EQ(alloc.Free(Extent{15, 10}).code(), ErrorCode::kOutOfRange);
}

TEST(BlockAllocatorTest, CoalescesWithBothNeighbours) {
  BlockAllocator alloc(30);
  auto a = alloc.AllocateContiguous(10);  // [0,10)
  auto b = alloc.AllocateContiguous(10);  // [10,20)
  auto c = alloc.AllocateContiguous(10);  // [20,30)
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(alloc.Free(*a).ok());
  ASSERT_TRUE(alloc.Free(*c).ok());
  EXPECT_EQ(alloc.free_extent_count(), 2u);
  ASSERT_TRUE(alloc.Free(*b).ok());  // merges all three
  EXPECT_EQ(alloc.free_extent_count(), 1u);
  EXPECT_EQ(alloc.free_blocks(), 30u);
}

TEST(BlockAllocatorTest, RandomWorkloadPreservesInvariants) {
  BlockAllocator alloc(1000);
  Rng rng(99);
  std::vector<Extent> held;
  for (int step = 0; step < 2000; ++step) {
    if (held.empty() || rng.NextDouble() < 0.55) {
      auto got = alloc.Allocate(1 + rng.NextBelow(20));
      if (got.ok()) {
        held.insert(held.end(), got->begin(), got->end());
      }
    } else {
      const std::size_t idx = static_cast<std::size_t>(rng.NextBelow(held.size()));
      ASSERT_TRUE(alloc.Free(held[idx]).ok());
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_TRUE(alloc.CheckInvariants()) << "step " << step;
  }
}

// ---- ObjectStore (all backends) ----------------------------------------------

enum class Backend { kMemory, kBlock, kFile };

std::string BackendName(Backend b) {
  switch (b) {
    case Backend::kMemory: return "Memory";
    case Backend::kBlock: return "Block";
    case Backend::kFile: return "File";
  }
  return "?";
}

class ObjectStoreTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    switch (GetParam()) {
      case Backend::kMemory:
        store_ = std::make_unique<MemObjectStore>();
        break;
      case Backend::kBlock:
        store_ = std::make_unique<BlockObjectStore>(4096, 512);
        break;
      case Backend::kFile: {
        dir_ = std::filesystem::temp_directory_path() /
               ("lwfs_store_test_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        std::filesystem::remove_all(dir_);
        auto opened = FileObjectStore::Open(dir_.string());
        ASSERT_TRUE(opened.ok()) << opened.status().ToString();
        store_ = std::move(*opened);
        break;
      }
    }
  }

  void TearDown() override {
    store_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<ObjectStore> store_;
  std::filesystem::path dir_;
  const ContainerId cid_{7};
};

TEST_P(ObjectStoreTest, CreateAssignsUniqueIds) {
  auto a = store_->Create(cid_);
  auto b = store_->Create(cid_);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(store_->ObjectCount(), 2u);
}

TEST_P(ObjectStoreTest, CreateRejectsInvalidContainer) {
  EXPECT_FALSE(store_->Create(kInvalidContainer).ok());
}

TEST_P(ObjectStoreTest, WriteReadRoundTrip) {
  auto oid = store_->Create(cid_);
  ASSERT_TRUE(oid.ok());
  Buffer data = PatternBuffer(3000, 5);
  ASSERT_TRUE(store_->Write(*oid, 0, ByteSpan(data)).ok());
  auto back = store_->Read(*oid, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_P(ObjectStoreTest, WriteAtOffsetExtendsWithZeros) {
  auto oid = store_->Create(cid_);
  ASSERT_TRUE(oid.ok());
  Buffer data = {1, 2, 3};
  ASSERT_TRUE(store_->Write(*oid, 1000, ByteSpan(data)).ok());
  auto attr = store_->GetAttr(*oid);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 1003u);
  auto hole = store_->Read(*oid, 500, 10);
  ASSERT_TRUE(hole.ok());
  EXPECT_EQ(*hole, Buffer(10, 0));
  auto tail = store_->Read(*oid, 1000, 3);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, data);
}

TEST_P(ObjectStoreTest, OverwriteInPlace) {
  auto oid = store_->Create(cid_);
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(store_->Write(*oid, 0, ByteSpan(Buffer(100, 0xAA))).ok());
  ASSERT_TRUE(store_->Write(*oid, 50, ByteSpan(Buffer(10, 0xBB))).ok());
  auto back = store_->Read(*oid, 45, 20);
  ASSERT_TRUE(back.ok());
  for (int i = 0; i < 5; ++i) EXPECT_EQ((*back)[static_cast<std::size_t>(i)], 0xAA);
  for (int i = 5; i < 15; ++i) EXPECT_EQ((*back)[static_cast<std::size_t>(i)], 0xBB);
  for (int i = 15; i < 20; ++i) EXPECT_EQ((*back)[static_cast<std::size_t>(i)], 0xAA);
}

TEST_P(ObjectStoreTest, ReadPastEofIsShort) {
  auto oid = store_->Create(cid_);
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(store_->Write(*oid, 0, ByteSpan(Buffer(10, 1))).ok());
  auto r = store_->Read(*oid, 5, 100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
  auto beyond = store_->Read(*oid, 100, 10);
  ASSERT_TRUE(beyond.ok());
  EXPECT_TRUE(beyond->empty());
}

TEST_P(ObjectStoreTest, TruncateShrinkAndGrow) {
  auto oid = store_->Create(cid_);
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(store_->Write(*oid, 0, ByteSpan(Buffer(2000, 0xCC))).ok());
  ASSERT_TRUE(store_->Truncate(*oid, 700).ok());
  auto attr = store_->GetAttr(*oid);
  EXPECT_EQ(attr->size, 700u);
  ASSERT_TRUE(store_->Truncate(*oid, 1500).ok());
  auto grown = store_->Read(*oid, 700, 800);
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(*grown, Buffer(800, 0));  // regrown region reads zero
}

TEST_P(ObjectStoreTest, RemoveMakesObjectVanish) {
  auto oid = store_->Create(cid_);
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(store_->Remove(*oid).ok());
  EXPECT_EQ(store_->Read(*oid, 0, 1).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(store_->Remove(*oid).code(), ErrorCode::kNotFound);
  EXPECT_EQ(store_->ObjectCount(), 0u);
}

TEST_P(ObjectStoreTest, OpsOnMissingObjectFail) {
  ObjectId ghost{424242};
  EXPECT_EQ(store_->Write(ghost, 0, ByteSpan(Buffer{1})).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(store_->GetAttr(ghost).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(store_->Truncate(ghost, 10).code(), ErrorCode::kNotFound);
}

TEST_P(ObjectStoreTest, ListFiltersByContainer) {
  ContainerId other{8};
  auto a = store_->Create(cid_);
  auto b = store_->Create(other);
  auto c = store_->Create(cid_);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  auto list = store_->List(cid_);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[0], *a);
  EXPECT_EQ((*list)[1], *c);
}

TEST_P(ObjectStoreTest, CreateWithIdAndConflict) {
  ASSERT_TRUE(store_->CreateWithId(cid_, ObjectId{500}).ok());
  EXPECT_EQ(store_->CreateWithId(cid_, ObjectId{500}).code(),
            ErrorCode::kAlreadyExists);
  // The id generator must not collide with explicit ids.
  auto next = store_->Create(cid_);
  ASSERT_TRUE(next.ok());
  EXPECT_GT(next->value, 500u);
}

TEST_P(ObjectStoreTest, VersionBumpsOnMutation) {
  auto oid = store_->Create(cid_);
  ASSERT_TRUE(oid.ok());
  auto v0 = store_->GetAttr(*oid)->version;
  ASSERT_TRUE(store_->Write(*oid, 0, ByteSpan(Buffer{1})).ok());
  auto v1 = store_->GetAttr(*oid)->version;
  ASSERT_TRUE(store_->Truncate(*oid, 0).ok());
  auto v2 = store_->GetAttr(*oid)->version;
  EXPECT_LT(v0, v1);
  EXPECT_LT(v1, v2);
}

TEST_P(ObjectStoreTest, RandomOpsAgainstReferenceModel) {
  // Property test: every backend behaves like a simple map<oid, bytes>.
  Rng rng(GetParam() == Backend::kMemory ? 1 : GetParam() == Backend::kBlock ? 2 : 3);
  std::map<std::uint64_t, Buffer> model;
  std::vector<ObjectId> live;
  const int steps = GetParam() == Backend::kFile ? 150 : 600;
  for (int step = 0; step < steps; ++step) {
    const double roll = rng.NextDouble();
    if (live.empty() || roll < 0.2) {
      auto oid = store_->Create(cid_);
      ASSERT_TRUE(oid.ok());
      live.push_back(*oid);
      model[oid->value] = {};
    } else if (roll < 0.6) {
      const ObjectId oid = live[static_cast<std::size_t>(rng.NextBelow(live.size()))];
      const std::uint64_t offset = rng.NextBelow(5000);
      Buffer data = PatternBuffer(1 + rng.NextBelow(2000), rng.NextU64());
      ASSERT_TRUE(store_->Write(oid, offset, ByteSpan(data)).ok());
      Buffer& m = model[oid.value];
      if (m.size() < offset + data.size()) m.resize(offset + data.size(), 0);
      std::copy(data.begin(), data.end(),
                m.begin() + static_cast<std::ptrdiff_t>(offset));
    } else if (roll < 0.9) {
      const ObjectId oid = live[static_cast<std::size_t>(rng.NextBelow(live.size()))];
      const std::uint64_t offset = rng.NextBelow(6000);
      const std::uint64_t len = 1 + rng.NextBelow(3000);
      auto got = store_->Read(oid, offset, len);
      ASSERT_TRUE(got.ok());
      const Buffer& m = model[oid.value];
      Buffer expect;
      if (offset < m.size()) {
        const std::uint64_t n = std::min<std::uint64_t>(len, m.size() - offset);
        expect.assign(m.begin() + static_cast<std::ptrdiff_t>(offset),
                      m.begin() + static_cast<std::ptrdiff_t>(offset + n));
      }
      ASSERT_EQ(*got, expect) << "step " << step;
    } else {
      const std::size_t idx = static_cast<std::size_t>(rng.NextBelow(live.size()));
      ASSERT_TRUE(store_->Remove(live[idx]).ok());
      model.erase(live[idx].value);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  EXPECT_EQ(store_->ObjectCount(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Backends, ObjectStoreTest,
                         ::testing::Values(Backend::kMemory, Backend::kBlock,
                                           Backend::kFile),
                         [](const auto& info) { return BackendName(info.param); });

// ---- Backend-specific behaviour ------------------------------------------------

TEST(BlockObjectStoreTest, InvariantsHoldUnderWorkload) {
  BlockObjectStore store(512, 256);
  Rng rng(4);
  std::vector<ObjectId> live;
  for (int step = 0; step < 500; ++step) {
    if (live.empty() || rng.NextDouble() < 0.4) {
      auto oid = store.Create(ContainerId{1});
      ASSERT_TRUE(oid.ok());
      live.push_back(*oid);
    } else if (rng.NextDouble() < 0.7) {
      const ObjectId oid = live[static_cast<std::size_t>(rng.NextBelow(live.size()))];
      Buffer data = PatternBuffer(1 + rng.NextBelow(1024), rng.NextU64());
      // Writes may hit device-full; that must fail cleanly.
      (void)store.Write(oid, rng.NextBelow(2048), ByteSpan(data));
    } else {
      const std::size_t idx = static_cast<std::size_t>(rng.NextBelow(live.size()));
      ASSERT_TRUE(store.Remove(live[idx]).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_TRUE(store.CheckInvariants()) << "step " << step;
  }
}

TEST(BlockObjectStoreTest, DeviceFullSurfacesAsResourceExhausted) {
  BlockObjectStore store(8, 512);  // 4 KiB device
  auto oid = store.Create(ContainerId{1});
  ASSERT_TRUE(oid.ok());
  EXPECT_TRUE(store.Write(*oid, 0, ByteSpan(Buffer(4096, 1))).ok());
  auto second = store.Create(ContainerId{1});
  ASSERT_TRUE(second.ok());  // creates are metadata-only
  EXPECT_EQ(store.Write(*second, 0, ByteSpan(Buffer(512, 1))).code(),
            ErrorCode::kResourceExhausted);
}

TEST(BlockObjectStoreTest, RemoveReleasesBlocksForReuse) {
  BlockObjectStore store(8, 512);
  auto a = store.Create(ContainerId{1});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(store.Write(*a, 0, ByteSpan(Buffer(4096, 0xFF))).ok());
  ASSERT_TRUE(store.Remove(*a).ok());
  EXPECT_EQ(store.FreeBlocks(), 8u);
  auto b = store.Create(ContainerId{1});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(store.Write(*b, 0, ByteSpan(Buffer(512, 1))).ok());
  // Recycled blocks must not leak the previous object's bytes.
  auto back = store.Read(*b, 0, 512);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0], 1);
}

TEST(FileObjectStoreTest, PersistsAcrossReopen) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("lwfs_persist_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  Buffer data = PatternBuffer(1234, 77);
  ObjectId oid;
  {
    auto store = FileObjectStore::Open(dir.string());
    ASSERT_TRUE(store.ok());
    auto created = (*store)->Create(ContainerId{3});
    ASSERT_TRUE(created.ok());
    oid = *created;
    ASSERT_TRUE((*store)->Write(oid, 0, ByteSpan(data)).ok());
  }
  {
    auto store = FileObjectStore::Open(dir.string());
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->ObjectCount(), 1u);
    auto back = (*store)->Read(oid, 0, data.size());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, data);
    auto attr = (*store)->GetAttr(oid);
    ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->cid, ContainerId{3});
    // Fresh ids must not collide with recovered ones.
    auto fresh = (*store)->Create(ContainerId{3});
    ASSERT_TRUE(fresh.ok());
    EXPECT_NE(*fresh, oid);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lwfs::storage
