// Unit tests for the Portals-like one-sided transport.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "portals/portals.h"

namespace lwfs::portals {
namespace {

class PortalsTest : public ::testing::Test {
 protected:
  Fabric fabric_;
};

TEST_F(PortalsTest, NidsAreUniqueAndNonZero) {
  auto a = fabric_.CreateNic();
  auto b = fabric_.CreateNic();
  EXPECT_NE(a->nid(), kInvalidNid);
  EXPECT_NE(a->nid(), b->nid());
}

TEST_F(PortalsTest, PutIntoRegisteredRegion) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region(16, 0);
  EventQueue eq;
  MeOptions opts;
  opts.allow_put = true;
  auto me = dst->Attach(0, 42, 0, MutableByteSpan(region), opts, &eq, 777);
  ASSERT_TRUE(me.ok());

  Buffer data = {1, 2, 3, 4};
  ASSERT_TRUE(src->Put(dst->nid(), 0, 42, ByteSpan(data), 4, 99).ok());
  EXPECT_EQ(region[4], 1);
  EXPECT_EQ(region[7], 4);
  EXPECT_EQ(region[0], 0);

  auto ev = eq.Poll();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->type, EventType::kPut);
  EXPECT_EQ(ev->initiator, src->nid());
  EXPECT_EQ(ev->match_bits, 42u);
  EXPECT_EQ(ev->offset, 4u);
  EXPECT_EQ(ev->length, 4u);
  EXPECT_EQ(ev->user_data, 777u);
  EXPECT_EQ(ev->hdr_data, 99u);
}

TEST_F(PortalsTest, GetFromRegisteredRegion) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region = {10, 20, 30, 40, 50};
  MeOptions opts;
  opts.allow_get = true;
  ASSERT_TRUE(dst->Attach(2, 7, 0, MutableByteSpan(region), opts, nullptr).ok());

  Buffer out(3, 0);
  ASSERT_TRUE(src->Get(dst->nid(), 2, 7, MutableByteSpan(out), 1).ok());
  EXPECT_EQ(out, (Buffer{20, 30, 40}));
}

TEST_F(PortalsTest, MatchBitsMustMatch) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region(8, 0);
  MeOptions opts;
  opts.allow_put = true;
  ASSERT_TRUE(dst->Attach(0, 42, 0, MutableByteSpan(region), opts, nullptr).ok());
  Buffer data = {1};
  Status s = src->Put(dst->nid(), 0, 43, ByteSpan(data));
  EXPECT_EQ(s.code(), ErrorCode::kResourceExhausted);
}

TEST_F(PortalsTest, IgnoreBitsWidenTheMatch) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  EventQueue eq;
  MeOptions opts;
  opts.allow_put = true;
  opts.message_mode = true;
  // Ignore everything: any match bits land here.
  ASSERT_TRUE(dst->Attach(0, 0, ~0ULL, {}, opts, &eq).ok());
  Buffer data = {5};
  EXPECT_TRUE(src->Put(dst->nid(), 0, 0xABCDEF, ByteSpan(data)).ok());
  auto ev = eq.Poll();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->match_bits, 0xABCDEFu);
}

TEST_F(PortalsTest, MessageModeCarriesPayload) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  EventQueue eq;
  MeOptions opts;
  opts.allow_put = true;
  opts.message_mode = true;
  ASSERT_TRUE(dst->Attach(0, 1, 0, {}, opts, &eq).ok());
  Buffer data = {9, 9, 9};
  ASSERT_TRUE(src->Put(dst->nid(), 0, 1, ByteSpan(data)).ok());
  auto ev = eq.Poll();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->payload.ToBuffer(util::CopyKind::kDeliver), data);
}

TEST_F(PortalsTest, GetSliceFromSliceEntryIsZeroCopy) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer bytes = {1, 2, 3, 4, 5, 6, 7, 8};
  util::SharedSlice registered = util::SharedSlice::FromBuffer(Buffer(bytes));
  ASSERT_TRUE(dst->AttachSlice(0, 7, 0, registered).ok());
  const util::CopySnapshot before = util::CopyStats::Snapshot();
  auto got = src->GetSlice(dst->nid(), 0, 7, 4, 2);
  ASSERT_TRUE(got.ok());
  // The pulled slice aliases the registered bytes: no copy, shared owner.
  EXPECT_EQ(got->data(), registered.data() + 2);
  EXPECT_EQ(got->owner().get(), registered.owner().get());
  if (util::CopyStats::Enabled()) {
    EXPECT_EQ(util::CopyStats::Snapshot().Since(before).budget_bytes(), 0u);
  }
}

TEST_F(PortalsTest, GetSliceFromRawRegionStagesOneCopy) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region = {9, 8, 7, 6};
  MeOptions opts;
  opts.allow_get = true;
  ASSERT_TRUE(dst->Attach(0, 7, 0, MutableByteSpan(region), opts, nullptr).ok());
  const util::CopySnapshot before = util::CopyStats::Snapshot();
  auto got = src->GetSlice(dst->nid(), 0, 7, region.size());
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->owned());  // staged: safe past the region's lifetime
  EXPECT_NE(static_cast<const void*>(got->data()),
            static_cast<const void*>(region.data()));
  if (util::CopyStats::Enabled()) {
    const util::CopySnapshot delta = util::CopyStats::Snapshot().Since(before);
    EXPECT_EQ(delta.copies_of(util::CopyKind::kStage), 1u);
    EXPECT_EQ(delta.bytes_of(util::CopyKind::kStage), region.size());
  }
}

TEST_F(PortalsTest, BoundedEventQueueRejectsOverflow) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  EventQueue eq(2);  // two buffers on the "I/O node"
  MeOptions opts;
  opts.allow_put = true;
  opts.message_mode = true;
  ASSERT_TRUE(dst->Attach(0, 1, 0, {}, opts, &eq).ok());
  Buffer data = {1};
  EXPECT_TRUE(src->Put(dst->nid(), 0, 1, ByteSpan(data)).ok());
  EXPECT_TRUE(src->Put(dst->nid(), 0, 1, ByteSpan(data)).ok());
  Status s = src->Put(dst->nid(), 0, 1, ByteSpan(data));
  EXPECT_EQ(s.code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(fabric_.Stats().rejected, 1u);
  // Draining makes room again: the resend would now succeed.
  eq.Poll();
  EXPECT_TRUE(src->Put(dst->nid(), 0, 1, ByteSpan(data)).ok());
}

TEST_F(PortalsTest, UnlinkOnUseConsumesEntry) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region(4, 0);
  MeOptions opts;
  opts.allow_put = true;
  opts.unlink_on_use = true;
  ASSERT_TRUE(dst->Attach(0, 5, 0, MutableByteSpan(region), opts, nullptr).ok());
  Buffer data = {1};
  EXPECT_TRUE(src->Put(dst->nid(), 0, 5, ByteSpan(data)).ok());
  EXPECT_EQ(src->Put(dst->nid(), 0, 5, ByteSpan(data)).code(),
            ErrorCode::kResourceExhausted);
}

TEST_F(PortalsTest, PutBeyondRegionFails) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region(4, 0);
  MeOptions opts;
  opts.allow_put = true;
  ASSERT_TRUE(dst->Attach(0, 5, 0, MutableByteSpan(region), opts, nullptr).ok());
  Buffer data = {1, 2, 3};
  EXPECT_EQ(src->Put(dst->nid(), 0, 5, ByteSpan(data), 2).code(),
            ErrorCode::kOutOfRange);
}

TEST_F(PortalsTest, GetBeyondRegionFails) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region(4, 0);
  MeOptions opts;
  opts.allow_get = true;
  ASSERT_TRUE(dst->Attach(0, 5, 0, MutableByteSpan(region), opts, nullptr).ok());
  Buffer out(3, 0);
  EXPECT_EQ(src->Get(dst->nid(), 0, 5, MutableByteSpan(out), 2).code(),
            ErrorCode::kOutOfRange);
}

TEST_F(PortalsTest, PutRequiresPutPermission) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region(4, 0);
  MeOptions opts;
  opts.allow_get = true;  // get-only entry
  ASSERT_TRUE(dst->Attach(0, 5, 0, MutableByteSpan(region), opts, nullptr).ok());
  Buffer data = {1};
  EXPECT_EQ(src->Put(dst->nid(), 0, 5, ByteSpan(data)).code(),
            ErrorCode::kResourceExhausted);
}

TEST_F(PortalsTest, DownNodeIsUnavailable) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region(4, 0);
  MeOptions opts;
  opts.allow_put = true;
  ASSERT_TRUE(dst->Attach(0, 5, 0, MutableByteSpan(region), opts, nullptr).ok());
  fabric_.SetNodeDown(dst->nid(), true);
  Buffer data = {1};
  EXPECT_EQ(src->Put(dst->nid(), 0, 5, ByteSpan(data)).code(),
            ErrorCode::kUnavailable);
  fabric_.SetNodeDown(dst->nid(), false);
  EXPECT_TRUE(src->Put(dst->nid(), 0, 5, ByteSpan(data)).ok());
}

TEST_F(PortalsTest, UnknownNidIsUnavailable) {
  auto src = fabric_.CreateNic();
  Buffer data = {1};
  EXPECT_EQ(src->Put(99999, 0, 5, ByteSpan(data)).code(),
            ErrorCode::kUnavailable);
}

TEST_F(PortalsTest, StatsCountTrafficAndBytes) {
  fabric_.ResetStats();
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region(64, 0);
  MeOptions opts;
  opts.allow_put = true;
  opts.allow_get = true;
  ASSERT_TRUE(dst->Attach(0, 5, 0, MutableByteSpan(region), opts, nullptr).ok());
  Buffer data(10, 1);
  ASSERT_TRUE(src->Put(dst->nid(), 0, 5, ByteSpan(data)).ok());
  Buffer out(6, 0);
  ASSERT_TRUE(src->Get(dst->nid(), 0, 5, MutableByteSpan(out)).ok());
  FabricStats stats = fabric_.Stats();
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.gets, 1u);
  EXPECT_EQ(stats.put_bytes, 10u);
  EXPECT_EQ(stats.get_bytes, 6u);
}

TEST_F(PortalsTest, RegisteredRegionDetachesOnDestruction) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region(4, 0);
  MeOptions opts;
  opts.allow_put = true;
  Buffer data = {1};
  {
    auto me = dst->Attach(0, 5, 0, MutableByteSpan(region), opts, nullptr);
    ASSERT_TRUE(me.ok());
    RegisteredRegion raii(dst, *me);
    EXPECT_TRUE(src->Put(dst->nid(), 0, 5, ByteSpan(data)).ok());
  }
  EXPECT_EQ(src->Put(dst->nid(), 0, 5, ByteSpan(data)).code(),
            ErrorCode::kResourceExhausted);
}

TEST_F(PortalsTest, FirstMatchingEntryWins) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region_a(4, 0);
  Buffer region_b(4, 0);
  MeOptions opts;
  opts.allow_put = true;
  ASSERT_TRUE(dst->Attach(0, 5, 0, MutableByteSpan(region_a), opts, nullptr).ok());
  ASSERT_TRUE(dst->Attach(0, 5, 0, MutableByteSpan(region_b), opts, nullptr).ok());
  Buffer data = {7};
  ASSERT_TRUE(src->Put(dst->nid(), 0, 5, ByteSpan(data)).ok());
  EXPECT_EQ(region_a[0], 7);
  EXPECT_EQ(region_b[0], 0);
}

TEST_F(PortalsTest, ConcurrentTransfersAreSafe) {
  auto dst = fabric_.CreateNic();
  constexpr int kThreads = 8;
  constexpr int kPutsEach = 200;
  Buffer region(kThreads * 8, 0);
  MeOptions opts;
  opts.allow_put = true;
  ASSERT_TRUE(dst->Attach(0, 1, 0, MutableByteSpan(region), opts, nullptr).ok());

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto nic = fabric_.CreateNic();
      Buffer data(8, static_cast<std::uint8_t>(t + 1));
      for (int i = 0; i < kPutsEach; ++i) {
        ASSERT_TRUE(nic->Put(dst->nid(), 0, 1, ByteSpan(data),
                             static_cast<std::size_t>(t) * 8)
                        .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(region[static_cast<std::size_t>(t) * 8],
              static_cast<std::uint8_t>(t + 1));
  }
}

// ---- Fault injection ------------------------------------------------------

class FaultInjectorTest : public ::testing::Test {
 protected:
  // One put-capable region ME on dst_, returning the region buffer.
  Buffer AttachPutRegion(const std::shared_ptr<Nic>& dst, std::size_t size) {
    Buffer region(size, 0);
    MeOptions opts;
    opts.allow_put = true;
    EXPECT_TRUE(
        dst->Attach(0, 1, 0, MutableByteSpan(region), opts, nullptr).ok());
    return region;
  }

  Fabric fabric_;
};

TEST_F(FaultInjectorTest, DroppedPutIsSilentlyLost) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region = AttachPutRegion(dst, 4);
  fabric_.injector().SetLink(src->nid(), dst->nid(), {.drop = 1.0});
  Buffer data = {9, 9, 9, 9};
  // The initiator sees success — only a reply timeout can reveal the loss.
  EXPECT_TRUE(src->Put(dst->nid(), 0, 1, ByteSpan(data)).ok());
  EXPECT_EQ(region[0], 0);
  EXPECT_EQ(fabric_.injector().LinkCounters(src->nid(), dst->nid()).drops, 1u);
}

TEST_F(FaultInjectorTest, DroppedGetTimesOut) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region = {1, 2, 3, 4};
  MeOptions opts;
  opts.allow_get = true;
  ASSERT_TRUE(dst->Attach(0, 1, 0, MutableByteSpan(region), opts, nullptr).ok());
  fabric_.injector().SetLink(src->nid(), dst->nid(), {.drop = 1.0});
  Buffer out(4, 0);
  // kTimeout (retryable), not the kUnavailable of a known-down node.
  EXPECT_EQ(src->Get(dst->nid(), 0, 1, MutableByteSpan(out)).code(),
            ErrorCode::kTimeout);
}

TEST_F(FaultInjectorTest, CorruptionFlipsExactlyOneByte) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region = AttachPutRegion(dst, 8);
  fabric_.injector().SetLink(src->nid(), dst->nid(), {.corrupt = 1.0});
  Buffer data = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(src->Put(dst->nid(), 0, 1, ByteSpan(data)).ok());
  int differing = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (region[i] != data[i]) ++differing;
  }
  EXPECT_EQ(differing, 1);
  EXPECT_EQ(fabric_.injector().TotalCounters().corruptions, 1u);
}

TEST_F(FaultInjectorTest, CorruptedSlicePutNeverMutatesSenderBytes) {
  // The regression this guards: zero-copy delivery shares the sender's
  // bytes, so injected corruption must clone first (copy-on-write) — a
  // corrupting injector that scribbled on the shared buffer would corrupt
  // the sender's copy (and every retransmit) too.
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  EventQueue eq;
  MeOptions opts;
  opts.allow_put = true;
  opts.message_mode = true;
  ASSERT_TRUE(dst->Attach(0, 1, 0, {}, opts, &eq).ok());
  fabric_.injector().SetLink(src->nid(), dst->nid(), {.corrupt = 1.0});

  Buffer original = {10, 20, 30, 40, 50, 60, 70, 80};
  util::SharedSlice payload = util::SharedSlice::FromBuffer(Buffer(original));
  const util::CopySnapshot before = util::CopyStats::Snapshot();
  ASSERT_TRUE(src->Put(dst->nid(), 0, 1, payload).ok());

  // The sender's shared bytes are untouched...
  ASSERT_EQ(payload.size(), original.size());
  EXPECT_EQ(0, std::memcmp(payload.data(), original.data(), original.size()));
  // ...while the delivered copy differs in exactly one byte.
  auto ev = eq.Poll();
  ASSERT_TRUE(ev.has_value());
  ASSERT_EQ(ev->payload.size(), original.size());
  int differing = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (ev->payload.data()[i] != original[i]) ++differing;
  }
  EXPECT_EQ(differing, 1);
  if (util::CopyStats::Enabled()) {
    const util::CopySnapshot delta = util::CopyStats::Snapshot().Since(before);
    EXPECT_EQ(delta.copies_of(util::CopyKind::kInjected), 1u);
    EXPECT_EQ(delta.budget_bytes(), 0u);  // the clone is not a budget copy
  }
}

TEST_F(FaultInjectorTest, CorruptedSliceGetLeavesRegisteredSliceIntact) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer original = {1, 2, 3, 4, 5, 6, 7, 8};
  util::SharedSlice registered =
      util::SharedSlice::FromBuffer(Buffer(original));
  ASSERT_TRUE(dst->AttachSlice(0, 1, 0, registered).ok());
  fabric_.injector().SetLink(src->nid(), dst->nid(), {.corrupt = 1.0});
  auto got = src->GetSlice(dst->nid(), 0, 1, original.size());
  ASSERT_TRUE(got.ok());
  int differing = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (got->data()[i] != original[i]) ++differing;
  }
  EXPECT_EQ(differing, 1);
  // COW: the registered (sender-shared) slice still holds the true bytes.
  EXPECT_EQ(0,
            std::memcmp(registered.data(), original.data(), original.size()));
}

TEST_F(FaultInjectorTest, DuplicatedPutDeliversTwice) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  EventQueue eq;
  MeOptions opts;
  opts.allow_put = true;
  opts.message_mode = true;
  ASSERT_TRUE(dst->Attach(0, 1, 0, {}, opts, &eq).ok());
  fabric_.injector().SetLink(src->nid(), dst->nid(), {.duplicate = 1.0});
  Buffer data = {42};
  ASSERT_TRUE(src->Put(dst->nid(), 0, 1, ByteSpan(data)).ok());
  EXPECT_TRUE(eq.Poll().has_value());
  EXPECT_TRUE(eq.Poll().has_value());  // the duplicate
  EXPECT_FALSE(eq.Poll().has_value());
  EXPECT_EQ(fabric_.injector().TotalCounters().duplicates, 1u);
}

TEST_F(FaultInjectorTest, PartitionIsSymmetricAndHealable) {
  auto a = fabric_.CreateNic();
  auto b = fabric_.CreateNic();
  Buffer region = AttachPutRegion(b, 4);
  fabric_.injector().Partition(a->nid(), b->nid(), true);
  Buffer data = {5};
  EXPECT_TRUE(a->Put(b->nid(), 0, 1, ByteSpan(data)).ok());  // silent loss
  EXPECT_EQ(region[0], 0);
  Buffer out(1, 0);
  EXPECT_EQ(b->Get(a->nid(), 0, 1, MutableByteSpan(out)).code(),
            ErrorCode::kTimeout);  // other direction blocked too
  EXPECT_EQ(fabric_.injector().TotalCounters().partition_drops, 2u);

  fabric_.injector().Partition(a->nid(), b->nid(), false);
  EXPECT_TRUE(a->Put(b->nid(), 0, 1, ByteSpan(data)).ok());
  EXPECT_EQ(region[0], 5);
}

TEST_F(FaultInjectorTest, CrashBeforeDeliveryLosesMessageAndDownsNode) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region = AttachPutRegion(dst, 4);
  fabric_.injector().CrashBeforeDelivery(dst->nid());
  Buffer data = {3};
  EXPECT_TRUE(src->Put(dst->nid(), 0, 1, ByteSpan(data)).ok());
  EXPECT_EQ(region[0], 0);  // message died with the node
  EXPECT_TRUE(fabric_.IsNodeDown(dst->nid()));
  EXPECT_EQ(src->Put(dst->nid(), 0, 1, ByteSpan(data)).code(),
            ErrorCode::kUnavailable);
  EXPECT_EQ(fabric_.injector().TotalCounters().crashes, 1u);

  // The trigger is one-shot: after a restart the node works again.
  fabric_.SetNodeDown(dst->nid(), false);
  EXPECT_TRUE(src->Put(dst->nid(), 0, 1, ByteSpan(data)).ok());
  EXPECT_EQ(region[0], 3);
}

TEST_F(FaultInjectorTest, CrashAfterDeliveryDeliversThenDownsNode) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region = AttachPutRegion(dst, 4);
  fabric_.injector().CrashAfterDelivery(dst->nid());
  Buffer data = {7};
  EXPECT_TRUE(src->Put(dst->nid(), 0, 1, ByteSpan(data)).ok());
  EXPECT_EQ(region[0], 7);  // delivered...
  EXPECT_TRUE(fabric_.IsNodeDown(dst->nid()));  // ...then crashed
}

TEST_F(FaultInjectorTest, LinkSpecOverridesDefault) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  auto bystander = fabric_.CreateNic();
  Buffer region = AttachPutRegion(dst, 4);
  Buffer bystander_region = AttachPutRegion(bystander, 4);
  fabric_.injector().SetDefault({.drop = 1.0});
  fabric_.injector().SetLink(src->nid(), dst->nid(), {});  // clean link
  Buffer data = {1};
  ASSERT_TRUE(src->Put(dst->nid(), 0, 1, ByteSpan(data)).ok());
  EXPECT_EQ(region[0], 1);  // the specific link spec won
  ASSERT_TRUE(src->Put(bystander->nid(), 0, 1, ByteSpan(data)).ok());
  EXPECT_EQ(bystander_region[0], 0);  // everyone else gets the default
}

TEST_F(FaultInjectorTest, NodeSpecAppliesBothDirections) {
  auto src = fabric_.CreateNic();
  auto victim = fabric_.CreateNic();
  Buffer region = AttachPutRegion(victim, 4);
  fabric_.injector().SetNode(victim->nid(), {.drop = 1.0});
  Buffer data = {1};
  ASSERT_TRUE(src->Put(victim->nid(), 0, 1, ByteSpan(data)).ok());
  EXPECT_EQ(region[0], 0);  // toward the node
  Buffer src_region = AttachPutRegion(src, 4);
  ASSERT_TRUE(victim->Put(src->nid(), 0, 1, ByteSpan(data)).ok());
  EXPECT_EQ(src_region[0], 0);  // and away from it
}

TEST_F(FaultInjectorTest, ResetRestoresPassThrough) {
  auto src = fabric_.CreateNic();
  auto dst = fabric_.CreateNic();
  Buffer region = AttachPutRegion(dst, 4);
  fabric_.injector().SetDefault({.drop = 1.0});
  EXPECT_TRUE(fabric_.injector().enabled());
  fabric_.injector().Reset();
  EXPECT_FALSE(fabric_.injector().enabled());
  Buffer data = {8};
  ASSERT_TRUE(src->Put(dst->nid(), 0, 1, ByteSpan(data)).ok());
  EXPECT_EQ(region[0], 8);
  EXPECT_EQ(fabric_.injector().TotalCounters().drops, 0u);
}

TEST_F(FaultInjectorTest, SameSeedSameFaultSequence) {
  auto run = [](std::uint64_t seed) {
    Fabric fabric;
    auto src = fabric.CreateNic();
    auto dst = fabric.CreateNic();
    Buffer region(1, 0);
    MeOptions opts;
    opts.allow_put = true;
    EXPECT_TRUE(
        dst->Attach(0, 1, 0, MutableByteSpan(region), opts, nullptr).ok());
    fabric.injector().Seed(seed);
    fabric.injector().SetDefault({.drop = 0.5});
    std::vector<bool> delivered;
    Buffer data = {1};
    for (int i = 0; i < 64; ++i) {
      region[0] = 0;
      EXPECT_TRUE(src->Put(dst->nid(), 0, 1, ByteSpan(data)).ok());
      delivered.push_back(region[0] == 1);
    }
    return delivered;
  };
  EXPECT_EQ(run(0xC0FFEE), run(0xC0FFEE));
  EXPECT_NE(run(0xC0FFEE), run(0xBADBEE));  // astronomically unlikely to tie
}

}  // namespace
}  // namespace lwfs::portals
