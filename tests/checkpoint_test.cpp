// Integration tests for the checkpoint case study (§4): the three
// implementations dump and restore identical application state, the LWFS
// path is transactional, and the architectural bottlenecks are observable.
#include <gtest/gtest.h>

#include "checkpoint/checkpoint.h"

namespace lwfs::checkpoint {
namespace {

std::vector<Buffer> MakeStates(std::uint32_t nranks, std::size_t bytes) {
  std::vector<Buffer> states;
  states.reserve(nranks);
  for (std::uint32_t r = 0; r < nranks; ++r) {
    states.push_back(PatternBuffer(bytes, 1000 + r));
  }
  return states;
}

class LwfsCheckpointTest : public ::testing::Test {
 protected:
  void Start(int servers = 4) {
    core::RuntimeOptions options;
    options.storage_servers = servers;
    auto rt = core::ServiceRuntime::Start(options);
    ASSERT_TRUE(rt.ok());
    runtime_ = std::move(*rt);
    runtime_->AddUser("app", "secret", 100);

    auto client = runtime_->MakeClient();
    auto cred = client->Login("app", "secret");
    ASSERT_TRUE(cred.ok());
    auto cid = client->CreateContainer(*cred);
    ASSERT_TRUE(cid.ok());
    auto cap = client->GetCap(*cred, *cid, security::kOpAll);
    ASSERT_TRUE(cap.ok());
    ASSERT_TRUE(client->Mkdir("/ckpt", true).ok());

    config_.path = "/ckpt/run0";
    config_.cid = *cid;
    config_.cap = *cap;
  }

  std::unique_ptr<core::ServiceRuntime> runtime_;
  LwfsCheckpoint::Config config_;
};

TEST_F(LwfsCheckpointTest, CheckpointRestoreRoundTrip) {
  Start();
  auto states = MakeStates(8, 20000);
  auto stats = LwfsCheckpoint::Run(*runtime_, config_, states);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->bytes, 8u * 20000u);
  EXPECT_EQ(stats->creates, 9u);  // 8 state objects + 1 metadata object
  EXPECT_GT(stats->seconds, 0.0);

  auto restored = LwfsCheckpoint::Restore(*runtime_, config_.cap, config_.path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), states.size());
  for (std::size_t r = 0; r < states.size(); ++r) {
    EXPECT_EQ((*restored)[r], states[r]) << "rank " << r;
  }
}

TEST_F(LwfsCheckpointTest, ObjectsSpreadAcrossServers) {
  Start(4);
  auto states = MakeStates(8, 1000);
  ASSERT_TRUE(LwfsCheckpoint::Run(*runtime_, config_, states).ok());
  // 8 ranks over 4 servers: 2 state objects each, +1 metadata on server 0,
  // +1 journal object on server 0.
  EXPECT_EQ(runtime_->store(0).ObjectCount(), 4u);
  for (int s = 1; s < 4; ++s) {
    EXPECT_EQ(runtime_->store(s).ObjectCount(), 2u) << "server " << s;
  }
}

TEST_F(LwfsCheckpointTest, SecondCheckpointReusesContainer) {
  // §4: "Since we can create multiple checkpoint files using the same
  // container ID, it is only necessary to perform this step once."
  Start();
  auto states = MakeStates(4, 500);
  ASSERT_TRUE(LwfsCheckpoint::Run(*runtime_, config_, states).ok());
  LwfsCheckpoint::Config second = config_;
  second.path = "/ckpt/run1";
  auto states2 = MakeStates(4, 800);
  ASSERT_TRUE(LwfsCheckpoint::Run(*runtime_, second, states2).ok());
  auto r0 = LwfsCheckpoint::Restore(*runtime_, config_.cap, "/ckpt/run0");
  auto r1 = LwfsCheckpoint::Restore(*runtime_, config_.cap, "/ckpt/run1");
  ASSERT_TRUE(r0.ok() && r1.ok());
  EXPECT_EQ((*r0)[0].size(), 500u);
  EXPECT_EQ((*r1)[0].size(), 800u);
}

TEST_F(LwfsCheckpointTest, FailedCheckpointLeavesNoName) {
  Start();
  // Sabotage: make storage server 1 vote "no" on the next transaction by
  // failing its prepare.  We don't know the txid in advance, so run the
  // checkpoint with a doomed config instead: use a path whose parent is
  // missing, which fails after data was written but before commit.
  LwfsCheckpoint::Config bad = config_;
  bad.path = "/missing-dir/run";
  auto states = MakeStates(4, 100);
  auto stats = LwfsCheckpoint::Run(*runtime_, bad, states);
  EXPECT_FALSE(stats.ok());
  // The name must not exist.
  auto client = runtime_->MakeClient();
  EXPECT_EQ(client->LookupName("/missing-dir/run").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(LwfsCheckpointTest, CheckpointWithReadOnlyCapFails) {
  Start();
  auto client = runtime_->MakeClient();
  auto cred = client->Login("app", "secret");
  ASSERT_TRUE(cred.ok());
  auto ro = client->GetCap(*cred, config_.cid, security::kOpRead);
  ASSERT_TRUE(ro.ok());
  LwfsCheckpoint::Config bad = config_;
  bad.cap = *ro;
  auto stats = LwfsCheckpoint::Run(*runtime_, bad, MakeStates(2, 100));
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), ErrorCode::kPermissionDenied);
}

class PfsCheckpointTest : public ::testing::Test {
 protected:
  void Start(int osts = 4) {
    pfs::PfsRuntimeOptions options;
    options.ost_count = osts;
    options.mds.default_stripe_size = 4096;
    auto rt = pfs::PfsRuntime::Start(&fabric_, options);
    ASSERT_TRUE(rt.ok());
    runtime_ = std::move(*rt);
  }

  portals::Fabric fabric_;
  std::unique_ptr<pfs::PfsRuntime> runtime_;
};

TEST_F(PfsCheckpointTest, FilePerProcessRoundTrip) {
  Start();
  auto states = MakeStates(6, 15000);
  PfsFilePerProcess::Config config{"/ckpt", 1};
  auto stats = PfsFilePerProcess::Run(*runtime_, config, states);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->creates, 6u);
  // Every create went through the centralized MDS.
  EXPECT_EQ(runtime_->mds().creates_served(), 6u);

  auto restored = PfsFilePerProcess::Restore(*runtime_, config, 6);
  ASSERT_TRUE(restored.ok());
  for (std::size_t r = 0; r < states.size(); ++r) {
    EXPECT_EQ((*restored)[r], states[r]) << "rank " << r;
  }
}

TEST_F(PfsCheckpointTest, SharedFileRoundTrip) {
  Start();
  auto states = MakeStates(6, 15000);
  PfsSharedFile::Config config;
  config.path = "/shared-ckpt";
  auto stats = PfsSharedFile::Run(*runtime_, config, states);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->creates, 1u);
  EXPECT_EQ(runtime_->mds().creates_served(), 1u);

  std::vector<std::uint64_t> sizes(6, 15000);
  auto restored = PfsSharedFile::Restore(*runtime_, config, sizes);
  ASSERT_TRUE(restored.ok());
  for (std::size_t r = 0; r < states.size(); ++r) {
    EXPECT_EQ((*restored)[r], states[r]) << "rank " << r;
  }
}

TEST_F(PfsCheckpointTest, SharedFileRelaxedModeAlsoCorrectForDisjointWrites) {
  // Checkpoint writes never overlap, so the relaxed (PVFS-style) mode is
  // just as correct — the locking the PFS imposes is pure overhead here,
  // which is the paper's §4 point.
  Start();
  auto states = MakeStates(5, 9000);
  PfsSharedFile::Config config;
  config.path = "/relaxed-ckpt";
  config.mode = pfs::ConsistencyMode::kRelaxed;
  auto stats = PfsSharedFile::Run(*runtime_, config, states);
  ASSERT_TRUE(stats.ok());
  std::vector<std::uint64_t> sizes(5, 9000);
  auto restored = PfsSharedFile::Restore(*runtime_, config, sizes);
  ASSERT_TRUE(restored.ok());
  for (std::size_t r = 0; r < states.size(); ++r) {
    EXPECT_EQ((*restored)[r], states[r]);
  }
}

TEST_F(PfsCheckpointTest, UnevenStateSizesRestoreExactly) {
  Start();
  std::vector<Buffer> states;
  std::vector<std::uint64_t> sizes;
  for (std::uint32_t r = 0; r < 4; ++r) {
    const std::size_t n = 1000 * (r + 1) + r;
    states.push_back(PatternBuffer(n, r));
    sizes.push_back(n);
  }
  PfsSharedFile::Config config;
  config.path = "/uneven";
  ASSERT_TRUE(PfsSharedFile::Run(*runtime_, config, states).ok());
  auto restored = PfsSharedFile::Restore(*runtime_, config, sizes);
  ASSERT_TRUE(restored.ok());
  for (std::size_t r = 0; r < states.size(); ++r) {
    EXPECT_EQ((*restored)[r], states[r]);
  }
}

TEST(CheckpointEquivalenceTest, AllThreeImplementationsPreserveState) {
  // The paper's premise: the three implementations are functionally
  // equivalent — only their interaction with the I/O system differs.
  auto states = MakeStates(4, 12000);

  core::RuntimeOptions lwfs_options;
  auto lwfs_rt = core::ServiceRuntime::Start(lwfs_options);
  ASSERT_TRUE(lwfs_rt.ok());
  (*lwfs_rt)->AddUser("app", "pw", 1);
  auto client = (*lwfs_rt)->MakeClient();
  auto cred = client->Login("app", "pw");
  auto cid = client->CreateContainer(*cred);
  auto cap = client->GetCap(*cred, *cid, security::kOpAll);
  ASSERT_TRUE(client->Mkdir("/ckpt", true).ok());
  LwfsCheckpoint::Config lwfs_config{"/ckpt/eq", *cid, *cap, 0};
  ASSERT_TRUE(LwfsCheckpoint::Run(**lwfs_rt, lwfs_config, states).ok());
  auto lwfs_states = LwfsCheckpoint::Restore(**lwfs_rt, *cap, "/ckpt/eq");

  portals::Fabric fabric;
  auto pfs_rt = pfs::PfsRuntime::Start(&fabric, {});
  ASSERT_TRUE(pfs_rt.ok());
  PfsFilePerProcess::Config fpp_config{"/eq", 1};
  ASSERT_TRUE(PfsFilePerProcess::Run(**pfs_rt, fpp_config, states).ok());
  auto fpp_states = PfsFilePerProcess::Restore(**pfs_rt, fpp_config, 4);

  PfsSharedFile::Config shared_config;
  shared_config.path = "/eq-shared";
  ASSERT_TRUE(PfsSharedFile::Run(**pfs_rt, shared_config, states).ok());
  auto shared_states = PfsSharedFile::Restore(
      **pfs_rt, shared_config, std::vector<std::uint64_t>(4, 12000));

  ASSERT_TRUE(lwfs_states.ok() && fpp_states.ok() && shared_states.ok());
  for (std::size_t r = 0; r < states.size(); ++r) {
    EXPECT_EQ((*lwfs_states)[r], states[r]);
    EXPECT_EQ((*fpp_states)[r], states[r]);
    EXPECT_EQ((*shared_states)[r], states[r]);
  }
}

}  // namespace
}  // namespace lwfs::checkpoint
