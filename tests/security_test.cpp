// Tests for the security substrate: SipHash, credentials, capabilities,
// the authentication and authorization services, caching and revocation.
#include <gtest/gtest.h>

#include "security/authn.h"
#include "security/authz.h"
#include "security/cap_cache.h"
#include "security/siphash.h"

namespace lwfs::security {
namespace {

// ---- SipHash -----------------------------------------------------------------

TEST(SipHashTest, MatchesReferenceVector) {
  // Official SipHash-2-4 test vector: key = 00..0F, input = 00..0E.
  SipKey key{0x0706050403020100ULL, 0x0F0E0D0C0B0A0908ULL};
  Buffer input(15);
  for (int i = 0; i < 15; ++i) input[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(SipHash24(key, ByteSpan(input)), 0xA129CA6149BE45E5ULL);
}

TEST(SipHashTest, EmptyInputReferenceVector) {
  SipKey key{0x0706050403020100ULL, 0x0F0E0D0C0B0A0908ULL};
  EXPECT_EQ(SipHash24(key, {}), 0x726FDB47DD0E0E31ULL);
}

TEST(SipHashTest, KeySensitivity) {
  Buffer data = {1, 2, 3};
  EXPECT_NE(SipHash24(SipKey{1, 2}, ByteSpan(data)),
            SipHash24(SipKey{1, 3}, ByteSpan(data)));
}

TEST(SipHashTest, DataSensitivity) {
  SipKey key{5, 6};
  Buffer a = {1, 2, 3};
  Buffer b = {1, 2, 4};
  EXPECT_NE(SipHash24(key, ByteSpan(a)), SipHash24(key, ByteSpan(b)));
}

TEST(SipHashTest, TagCombinesTwoHalves) {
  SipKey key{5, 6};
  Buffer data = {9};
  Tag128 tag = SipTag(key, ByteSpan(data));
  EXPECT_NE(tag.lo, tag.hi);
  EXPECT_EQ(tag, SipTag(key, ByteSpan(data)));
}

// ---- Credential / Capability encode ------------------------------------------

TEST(TypesTest, CredentialRoundTrip) {
  Credential c;
  c.cred_id = 7;
  c.uid = 1001;
  c.instance = 3;
  c.expires_us = 123456789;
  c.tag = Tag128{11, 22};
  Encoder enc;
  c.Encode(enc);
  Decoder dec(enc.buffer());
  auto back = Credential::Decode(dec);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->cred_id, c.cred_id);
  EXPECT_EQ(back->uid, c.uid);
  EXPECT_EQ(back->instance, c.instance);
  EXPECT_EQ(back->expires_us, c.expires_us);
  EXPECT_EQ(back->tag, c.tag);
}

TEST(TypesTest, CapabilityRoundTrip) {
  Capability c;
  c.cap_id = 9;
  c.cid = storage::ContainerId{44};
  c.ops = kOpRead | kOpWrite;
  c.uid = 1002;
  c.instance = 5;
  c.expires_us = 777;
  c.tag = Tag128{33, 44};
  Encoder enc;
  c.Encode(enc);
  Decoder dec(enc.buffer());
  auto back = Capability::Decode(dec);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->cap_id, c.cap_id);
  EXPECT_EQ(back->cid, c.cid);
  EXPECT_EQ(back->ops, c.ops);
  EXPECT_EQ(back->tag, c.tag);
}

TEST(TypesTest, OpMaskToString) {
  EXPECT_EQ(OpMaskToString(kOpRead | kOpWrite), "RW---");
  EXPECT_EQ(OpMaskToString(kOpAll), "RWCDM");
  EXPECT_EQ(OpMaskToString(kOpNone), "-----");
}

// ---- Test fixture with controllable time ---------------------------------------

class SecurityTest : public ::testing::Test {
 protected:
  SecurityTest()
      : authn_(&users_, SipKey{1, 2}, AuthnOpts()),
        authz_(&authn_, SipKey{3, 4}, AuthzOpts()) {
    users_.AddPrincipal("alice", "pw-a", 100);
    users_.AddPrincipal("bob", "pw-b", 200);
  }

  AuthnOptions AuthnOpts() {
    AuthnOptions o;
    o.now = [this] { return now_us_; };
    o.credential_ttl_us = 1000;
    return o;
  }
  AuthzOptions AuthzOpts() {
    AuthzOptions o;
    o.now = [this] { return now_us_; };
    o.capability_ttl_us = 1000;
    return o;
  }

  std::int64_t now_us_ = 0;
  TableAuthenticator users_;
  AuthnService authn_;
  AuthzService authz_;
};

// ---- Authentication ------------------------------------------------------------

TEST_F(SecurityTest, LoginIssuesVerifiableCredential) {
  auto cred = authn_.Login("alice", "pw-a");
  ASSERT_TRUE(cred.ok());
  auto uid = authn_.Verify(*cred);
  ASSERT_TRUE(uid.ok());
  EXPECT_EQ(*uid, 100u);
}

TEST_F(SecurityTest, BadSecretRejected) {
  EXPECT_EQ(authn_.Login("alice", "wrong").status().code(),
            ErrorCode::kUnauthenticated);
  EXPECT_EQ(authn_.Login("mallory", "x").status().code(),
            ErrorCode::kUnauthenticated);
}

TEST_F(SecurityTest, TamperedCredentialRejected) {
  auto cred = authn_.Login("alice", "pw-a");
  ASSERT_TRUE(cred.ok());
  // Tamper with each signed field in turn; all must fail verification.
  {
    Credential t = *cred;
    t.uid = 200;  // impersonate bob
    EXPECT_FALSE(authn_.Verify(t).ok());
  }
  {
    Credential t = *cred;
    t.expires_us += 1000000;  // extend lifetime
    EXPECT_FALSE(authn_.Verify(t).ok());
  }
  {
    Credential t = *cred;
    t.cred_id += 1;
    EXPECT_FALSE(authn_.Verify(t).ok());
  }
  {
    Credential t = *cred;
    t.tag.lo ^= 1;  // forge the signature itself
    EXPECT_FALSE(authn_.Verify(t).ok());
  }
}

TEST_F(SecurityTest, CredentialExpires) {
  auto cred = authn_.Login("alice", "pw-a");
  ASSERT_TRUE(cred.ok());
  now_us_ = 999;
  EXPECT_TRUE(authn_.Verify(*cred).ok());
  now_us_ = 1000;
  EXPECT_FALSE(authn_.Verify(*cred).ok());
}

TEST_F(SecurityTest, CredentialRevocationIsImmediate) {
  auto cred = authn_.Login("alice", "pw-a");
  ASSERT_TRUE(cred.ok());
  ASSERT_TRUE(authn_.Revoke(cred->cred_id).ok());
  EXPECT_FALSE(authn_.Verify(*cred).ok());
  EXPECT_EQ(authn_.Revoke(cred->cred_id).code(), ErrorCode::kNotFound);
}

TEST_F(SecurityTest, RevokeAllForUid) {
  auto c1 = authn_.Login("alice", "pw-a");
  auto c2 = authn_.Login("alice", "pw-a");
  auto c3 = authn_.Login("bob", "pw-b");
  ASSERT_TRUE(c1.ok() && c2.ok() && c3.ok());
  std::vector<std::uint64_t> observed;
  authn_.SetRevocationObserver([&](std::uint64_t id) { observed.push_back(id); });
  authn_.RevokeAllForUid(100);
  EXPECT_FALSE(authn_.Verify(*c1).ok());
  EXPECT_FALSE(authn_.Verify(*c2).ok());
  EXPECT_TRUE(authn_.Verify(*c3).ok());
  EXPECT_EQ(observed.size(), 2u);
}

TEST_F(SecurityTest, CredentialIsTransferable) {
  // Transferability (§3.1.2): the bytes are the credential.  A re-decoded
  // copy verifies identically.
  auto cred = authn_.Login("alice", "pw-a");
  ASSERT_TRUE(cred.ok());
  Encoder enc;
  cred->Encode(enc);
  Decoder dec(enc.buffer());
  auto copy = Credential::Decode(dec);
  ASSERT_TRUE(copy.ok());
  EXPECT_TRUE(authn_.Verify(*copy).ok());
}

// ---- Authorization ---------------------------------------------------------------

TEST_F(SecurityTest, OwnerGetsFullGrantOnCreate) {
  auto cred = authn_.Login("alice", "pw-a");
  auto cid = authz_.CreateContainer(*cred);
  ASSERT_TRUE(cid.ok());
  auto cap = authz_.GetCap(*cred, *cid, kOpAll);
  ASSERT_TRUE(cap.ok());
  EXPECT_EQ(cap->ops, static_cast<std::uint32_t>(kOpAll));
  EXPECT_EQ(cap->uid, 100u);
}

TEST_F(SecurityTest, NonGranteeDenied) {
  auto alice = authn_.Login("alice", "pw-a");
  auto bob = authn_.Login("bob", "pw-b");
  auto cid = authz_.CreateContainer(*alice);
  ASSERT_TRUE(cid.ok());
  EXPECT_EQ(authz_.GetCap(*bob, *cid, kOpRead).status().code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(SecurityTest, GrantAllowsSubsetOnly) {
  auto alice = authn_.Login("alice", "pw-a");
  auto bob = authn_.Login("bob", "pw-b");
  auto cid = authz_.CreateContainer(*alice);
  ASSERT_TRUE(authz_.SetGrant(*alice, *cid, 200, kOpRead).ok());
  EXPECT_TRUE(authz_.GetCap(*bob, *cid, kOpRead).ok());
  EXPECT_EQ(authz_.GetCap(*bob, *cid, kOpRead | kOpWrite).status().code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(SecurityTest, SetGrantRequiresManage) {
  auto alice = authn_.Login("alice", "pw-a");
  auto bob = authn_.Login("bob", "pw-b");
  auto cid = authz_.CreateContainer(*alice);
  ASSERT_TRUE(authz_.SetGrant(*alice, *cid, 200, kOpRead).ok());
  EXPECT_EQ(authz_.SetGrant(*bob, *cid, 200, kOpAll).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(SecurityTest, CredentialVerificationIsCachedAtAuthz) {
  auto alice = authn_.Login("alice", "pw-a");
  auto cid = authz_.CreateContainer(*alice);
  ASSERT_TRUE(cid.ok());
  const auto trips_before = authz_.authn_roundtrips();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(authz_.GetCap(*alice, *cid, kOpRead).ok());
  }
  // One container create + five getcaps, but only the first call paid an
  // authentication round trip (Figure 4-a).
  EXPECT_EQ(authz_.authn_roundtrips(), trips_before);
}

TEST_F(SecurityTest, CredRevocationDropsAuthzCache) {
  auto alice = authn_.Login("alice", "pw-a");
  authn_.SetRevocationObserver(
      [this](std::uint64_t id) { authz_.ForgetCredential(id); });
  auto cid = authz_.CreateContainer(*alice);
  ASSERT_TRUE(cid.ok());
  ASSERT_TRUE(authn_.Revoke(alice->cred_id).ok());
  EXPECT_EQ(authz_.GetCap(*alice, *cid, kOpRead).status().code(),
            ErrorCode::kUnauthenticated);
}

TEST_F(SecurityTest, VerifyForServerChecksEverything) {
  auto alice = authn_.Login("alice", "pw-a");
  auto cid = authz_.CreateContainer(*alice);
  auto cap = authz_.GetCap(*alice, *cid, kOpWrite);
  ASSERT_TRUE(cap.ok());
  EXPECT_TRUE(authz_.VerifyForServer(1, *cap).ok());

  Capability forged = *cap;
  forged.ops = kOpAll;  // escalate
  EXPECT_FALSE(authz_.VerifyForServer(1, forged).ok());

  forged = *cap;
  forged.cid = storage::ContainerId{999};  // different container
  EXPECT_FALSE(authz_.VerifyForServer(1, forged).ok());

  forged = *cap;
  forged.tag.hi ^= 42;
  EXPECT_FALSE(authz_.VerifyForServer(1, forged).ok());

  now_us_ = 2000;  // expire
  EXPECT_FALSE(authz_.VerifyForServer(1, *cap).ok());
}

class RecordingSink : public RevocationSink {
 public:
  void InvalidateCaps(ServerId server,
                      const std::vector<std::uint64_t>& cap_ids) override {
    calls.emplace_back(server, cap_ids);
  }
  std::vector<std::pair<ServerId, std::vector<std::uint64_t>>> calls;
};

TEST_F(SecurityTest, ChmodRevokesOnlyUncoveredCaps) {
  // The paper's flagship revocation example (§3.1.4): removing write
  // access invalidates the write capability but not the read capability.
  auto alice = authn_.Login("alice", "pw-a");
  auto bob = authn_.Login("bob", "pw-b");
  auto cid = authz_.CreateContainer(*alice);
  ASSERT_TRUE(authz_.SetGrant(*alice, *cid, 200, kOpRead | kOpWrite).ok());
  auto read_cap = authz_.GetCap(*bob, *cid, kOpRead);
  auto write_cap = authz_.GetCap(*bob, *cid, kOpWrite);
  ASSERT_TRUE(read_cap.ok() && write_cap.ok());

  // Both get cached on storage server 3 (back pointers recorded).
  ASSERT_TRUE(authz_.VerifyForServer(3, *read_cap).ok());
  ASSERT_TRUE(authz_.VerifyForServer(3, *write_cap).ok());

  RecordingSink sink;
  authz_.SetRevocationSink(&sink);
  ASSERT_TRUE(authz_.SetGrant(*alice, *cid, 200, kOpRead).ok());  // chmod -w

  // Only the write cap was invalidated, and only on server 3.
  ASSERT_EQ(sink.calls.size(), 1u);
  EXPECT_EQ(sink.calls[0].first, 3u);
  EXPECT_EQ(sink.calls[0].second, std::vector<std::uint64_t>{write_cap->cap_id});

  EXPECT_TRUE(authz_.VerifyForServer(3, *read_cap).ok());
  EXPECT_FALSE(authz_.VerifyForServer(3, *write_cap).ok());
}

TEST_F(SecurityTest, RevokeCapByHolderAndOwner) {
  auto alice = authn_.Login("alice", "pw-a");
  auto bob = authn_.Login("bob", "pw-b");
  auto cid = authz_.CreateContainer(*alice);
  ASSERT_TRUE(authz_.SetGrant(*alice, *cid, 200, kOpRead).ok());
  auto cap = authz_.GetCap(*bob, *cid, kOpRead);
  ASSERT_TRUE(cap.ok());
  // The container owner may revoke bob's cap.
  ASSERT_TRUE(authz_.RevokeCap(*alice, cap->cap_id).ok());
  EXPECT_FALSE(authz_.VerifyForServer(1, *cap).ok());
  EXPECT_EQ(authz_.caps_revoked(), 1u);
}

TEST_F(SecurityTest, StrangerCannotRevokeCap) {
  auto alice = authn_.Login("alice", "pw-a");
  auto bob = authn_.Login("bob", "pw-b");
  auto cid = authz_.CreateContainer(*alice);
  auto cap = authz_.GetCap(*alice, *cid, kOpRead);
  ASSERT_TRUE(cap.ok());
  EXPECT_EQ(authz_.RevokeCap(*bob, cap->cap_id).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(SecurityTest, RefreshExpiredCapability) {
  auto alice = authn_.Login("alice", "pw-a");
  auto cid = authz_.CreateContainer(*alice);
  auto cap = authz_.GetCap(*alice, *cid, kOpWrite);
  ASSERT_TRUE(cap.ok());
  now_us_ = 999;  // credential (ttl 1000) still alive, cap about to expire
  auto fresh = authz_.RefreshCap(*alice, *cap);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_GT(fresh->expires_us, cap->expires_us);
  EXPECT_EQ(fresh->ops, cap->ops);
}

TEST_F(SecurityTest, RefreshDeniedAfterPolicyChange) {
  auto alice = authn_.Login("alice", "pw-a");
  auto bob = authn_.Login("bob", "pw-b");
  auto cid = authz_.CreateContainer(*alice);
  ASSERT_TRUE(authz_.SetGrant(*alice, *cid, 200, kOpWrite).ok());
  auto cap = authz_.GetCap(*bob, *cid, kOpWrite);
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(authz_.SetGrant(*alice, *cid, 200, kOpRead).ok());
  EXPECT_EQ(authz_.RefreshCap(*bob, *cap).status().code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(SecurityTest, ForgedRefreshRejected) {
  auto alice = authn_.Login("alice", "pw-a");
  auto cid = authz_.CreateContainer(*alice);
  auto cap = authz_.GetCap(*alice, *cid, kOpRead);
  ASSERT_TRUE(cap.ok());
  Capability forged = *cap;
  forged.ops = kOpAll;
  EXPECT_FALSE(authz_.RefreshCap(*alice, forged).ok());
}

// ---- CapCache ----------------------------------------------------------------------

TEST(CapCacheTest, HitRequiresExactMatch) {
  CapCache cache;
  Capability cap;
  cap.cap_id = 1;
  cap.cid = storage::ContainerId{2};
  cap.ops = kOpRead;
  cap.expires_us = 100;
  cap.tag = Tag128{5, 6};
  EXPECT_FALSE(cache.Lookup(cap, 0));
  cache.Insert(cap);
  EXPECT_TRUE(cache.Lookup(cap, 0));

  // A forged capability reusing a cached id must miss.
  Capability forged = cap;
  forged.ops = kOpAll;
  EXPECT_FALSE(cache.Lookup(forged, 0));
  forged = cap;
  forged.tag.lo ^= 1;
  EXPECT_FALSE(cache.Lookup(forged, 0));

  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(CapCacheTest, ExpiredEntriesMiss) {
  CapCache cache;
  Capability cap;
  cap.cap_id = 1;
  cap.expires_us = 100;
  cache.Insert(cap);
  EXPECT_TRUE(cache.Lookup(cap, 99));
  EXPECT_FALSE(cache.Lookup(cap, 100));
  EXPECT_EQ(cache.size(), 0u);  // expired entry evicted
}

TEST(CapCacheTest, InvalidateRemovesEntries) {
  CapCache cache;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    Capability cap;
    cap.cap_id = id;
    cap.expires_us = 1000;
    cache.Insert(cap);
  }
  std::vector<std::uint64_t> victims = {1, 3};
  cache.Invalidate(victims);
  EXPECT_EQ(cache.size(), 1u);
  Capability probe;
  probe.cap_id = 2;
  probe.expires_us = 1000;
  EXPECT_TRUE(cache.Lookup(probe, 0));
}

TEST(CapCacheTest, ClearEmptiesEverything) {
  CapCache cache;
  Capability cap;
  cap.cap_id = 9;
  cap.expires_us = 10;
  cache.Insert(cap);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace lwfs::security
