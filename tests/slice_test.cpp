// SharedSlice / Frame / CopyStats unit tests: the ownership and aliasing
// rules the zero-copy data path depends on.  Lifetime tests deliberately
// drop parents before touching children — ASan runs catch any slice that
// fails to keep its bytes alive, and the concurrent test gives TSan real
// cross-thread refcount traffic.
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/buffer_pool.h"
#include "util/bytes.h"
#include "util/crc32.h"
#include "util/shared_buffer.h"

namespace lwfs::util {
namespace {

Buffer MakeBytes(std::size_t n, std::uint8_t seed = 1) {
  Buffer b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(seed + i * 7);
  }
  return b;
}

TEST(SharedSlice, FromBufferAdoptsWithoutCopying) {
  Buffer b = MakeBytes(64);
  const std::uint8_t* raw = b.data();
  const CopySnapshot before = CopyStats::Snapshot();
  SharedSlice s = SharedSlice::FromBuffer(std::move(b));
  const CopySnapshot delta = CopyStats::Snapshot().Since(before);
  EXPECT_EQ(s.data(), raw);  // same storage: adopted, not copied
  EXPECT_TRUE(s.owned());
  for (int i = 0; i < kCopyKinds; ++i) EXPECT_EQ(delta.copies[i], 0u);
}

TEST(SharedSlice, SubSliceKeepsParentBufferAlive) {
  SharedSlice child;
  {
    SharedSlice parent = SharedSlice::FromBuffer(MakeBytes(256));
    child = parent.Slice(100, 50);
    EXPECT_EQ(child.use_count(), 2);
  }  // parent handle gone; child must still pin the buffer
  EXPECT_EQ(child.use_count(), 1);
  ASSERT_EQ(child.size(), 50u);
  const Buffer expect = MakeBytes(256);
  EXPECT_EQ(0, std::memcmp(child.data(), expect.data() + 100, 50));
}

TEST(SharedSlice, SliceClampsOutOfRangeBounds) {
  SharedSlice s = SharedSlice::FromBuffer(MakeBytes(10));
  EXPECT_EQ(s.Slice(4, 100).size(), 6u);   // length clamped
  EXPECT_EQ(s.Slice(50, 10).size(), 0u);   // offset clamped to end
  EXPECT_EQ(s.Slice(10, 0).size(), 0u);
}

TEST(SharedSlice, ExternalSliceIsBorrowedNotOwned) {
  Buffer b = MakeBytes(32);
  SharedSlice s = SharedSlice::External(ByteSpan(b));
  EXPECT_FALSE(s.owned());
  EXPECT_EQ(s.data(), b.data());
  // Sub-slices of an external slice are external too.
  EXPECT_FALSE(s.Slice(1, 4).owned());
}

TEST(SharedSlice, CopyAndToBufferAreCounted) {
  if (!CopyStats::Enabled()) GTEST_SKIP() << "built without LWFS_COUNT_COPIES";
  Buffer b = MakeBytes(128);
  const CopySnapshot before = CopyStats::Snapshot();
  SharedSlice s = SharedSlice::Copy(ByteSpan(b), CopyKind::kStage);
  Buffer back = s.ToBuffer(CopyKind::kDeliver);
  const CopySnapshot delta = CopyStats::Snapshot().Since(before);
  EXPECT_EQ(delta.copies_of(CopyKind::kStage), 1u);
  EXPECT_EQ(delta.bytes_of(CopyKind::kStage), 128u);
  EXPECT_EQ(delta.copies_of(CopyKind::kDeliver), 1u);
  EXPECT_EQ(delta.bytes_of(CopyKind::kDeliver), 128u);
  EXPECT_EQ(back, b);
  EXPECT_EQ(delta.budget_bytes(), 128u);  // only kStage counts against budget
}

TEST(SharedSlice, DecodedSliceOutlivesDecoderAndSource) {
  SharedSlice decoded;
  {
    Encoder enc;
    enc.PutU32(7);
    enc.PutSlice(SharedSlice::FromBuffer(MakeBytes(40, 9)));
    SharedSlice wire = SharedSlice::FromBuffer(std::move(enc).Take());
    {
      Decoder dec(wire);
      ASSERT_TRUE(dec.GetU32().ok());
      auto taken = dec.TakeSlice();
      ASSERT_TRUE(taken.ok());
      decoded = *taken;
      // Zero-copy: the decoded slice aliases the wire frame's storage.
      EXPECT_EQ(decoded.owner().get(), wire.owner().get());
    }  // decoder gone
  }  // wire handle gone; decoded still pins the frame
  ASSERT_EQ(decoded.size(), 40u);
  const Buffer expect = MakeBytes(40, 9);
  EXPECT_EQ(0, std::memcmp(decoded.data(), expect.data(), 40));
}

TEST(SharedSlice, TakeSliceFromUnownedInputFallsBackToCopy) {
  Encoder enc;
  enc.PutSlice(SharedSlice::FromBuffer(MakeBytes(16)));
  Buffer wire = std::move(enc).Take();
  Decoder dec(wire);  // plain span: no owner
  auto taken = dec.TakeSlice();
  ASSERT_TRUE(taken.ok());
  EXPECT_TRUE(taken->owned());  // safe to hold: copied, not aliased
  EXPECT_NE(static_cast<const void*>(taken->data()),
            static_cast<const void*>(wire.data() + 4));
}

TEST(SharedSlice, TakeSliceRejectsTruncatedInput) {
  Encoder enc;
  enc.PutU32(100);  // claims 100 payload bytes that are not there
  Buffer wire = std::move(enc).Take();
  Decoder dec(wire);
  EXPECT_FALSE(dec.TakeSlice().ok());
}

TEST(SharedSlice, ConcurrentCopyAndDropIsRaceFree) {
  // Refcount churn from many threads against one buffer: TSan checks the
  // control-block traffic, ASan checks nobody touches freed bytes.
  SharedSlice root = SharedSlice::FromBuffer(MakeBytes(4096));
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&root, t] {
      for (int i = 0; i < 1000; ++i) {
        SharedSlice local = root.Slice(static_cast<std::size_t>(t) * 16,
                                       static_cast<std::size_t>(i % 64));
        SharedSlice copy = local;
        volatile std::size_t touch = copy.size();
        (void)touch;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(root.use_count(), 1);
}

TEST(Crc32, MatchesKnownCastagnoliVector) {
  // The canonical CRC32-C check value: crc32c("123456789") = 0xE3069283.
  // Pins the polynomial so the table fallback and the SSE4.2 instruction
  // can never drift apart silently.
  const char* s = "123456789";
  EXPECT_EQ(
      lwfs::Crc32(ByteSpan(reinterpret_cast<const std::uint8_t*>(s), 9)),
      0xE3069283u);
}

#ifdef LWFS_CRC32_HW
TEST(Crc32, HardwareAndTableFallbackAgree) {
  if (!lwfs::detail::Crc32HwAvailable()) GTEST_SKIP() << "no SSE4.2";
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 63u, 4097u, 65536u}) {
    Buffer b = MakeBytes(n, static_cast<std::uint8_t>(n * 31 + 5));
    const std::uint32_t sw = lwfs::Crc32Final(
        lwfs::detail::Crc32UpdateSw(lwfs::Crc32Init(), b.data(), n));
    const std::uint32_t hw = lwfs::Crc32Final(
        lwfs::detail::Crc32UpdateHw(lwfs::Crc32Init(), b.data(), n));
    EXPECT_EQ(sw, hw) << "size " << n;
  }
}
#endif

TEST(Crc32, CombineMatchesDirectConcatenation) {
  Buffer all = MakeBytes(50000, 9);
  for (std::size_t split : {0u, 1u, 3u, 255u, 4096u, 49999u, 50000u}) {
    const std::uint32_t a = lwfs::Crc32(ByteSpan(all.data(), split));
    const std::uint32_t b =
        lwfs::Crc32(ByteSpan(all.data() + split, all.size() - split));
    EXPECT_EQ(lwfs::Crc32Combine(a, b, all.size() - split),
              lwfs::Crc32(ByteSpan(all)))
        << "split " << split;
  }
}

TEST(SharedSlice, CachedCrcSurvivesFullRangeSliceOnly) {
  Buffer b = MakeBytes(256, 4);
  const std::uint32_t crc = lwfs::Crc32(ByteSpan(b));
  SharedSlice s = SharedSlice::FromBuffer(std::move(b));
  EXPECT_FALSE(s.has_cached_crc());
  s.SetCachedCrc(crc);
  ASSERT_TRUE(s.has_cached_crc());
  // Copies and full-range sub-slices are the same bytes: cache survives.
  SharedSlice copy = s;
  EXPECT_TRUE(copy.has_cached_crc());
  EXPECT_EQ(copy.cached_crc(), crc);
  EXPECT_TRUE(s.Slice(0, 256).has_cached_crc());
  EXPECT_TRUE(s.Slice(0, 10000).has_cached_crc());  // clamped to full range
  // A proper sub-range covers different bytes: cache must drop.
  EXPECT_FALSE(s.Slice(1, 255).has_cached_crc());
  EXPECT_FALSE(s.Slice(0, 255).has_cached_crc());
}

TEST(Frame, CrcUsesCachedSliceCrcWhenPresent) {
  Buffer payload = MakeBytes(20000, 6);
  const std::uint32_t payload_crc = lwfs::Crc32(ByteSpan(payload));

  // A frame whose bulk part carries a correct cached CRC must checksum
  // identically to one whose part streams — combine is an optimization,
  // not a different answer.
  FrameBuilder fb1;
  fb1.header().PutU32(7);
  SharedSlice cached = SharedSlice::FromBuffer(Buffer(payload));
  cached.SetCachedCrc(payload_crc);
  fb1.Append(std::move(cached));
  fb1.header().PutU64(11);
  Frame with_cache = fb1.Build(/*with_crc_trailer=*/false);

  Buffer flat = with_cache.Flatten();
  EXPECT_EQ(with_cache.Crc(), Crc32(ByteSpan(flat)));

  // And the cached value is really being consulted: poisoning it changes
  // the frame CRC.
  FrameBuilder fb2;
  fb2.header().PutU32(7);
  SharedSlice poisoned = SharedSlice::FromBuffer(Buffer(payload));
  poisoned.SetCachedCrc(payload_crc ^ 0xDEADBEEFu);
  fb2.Append(std::move(poisoned));
  fb2.header().PutU64(11);
  Frame with_poison = fb2.Build(/*with_crc_trailer=*/false);
  EXPECT_NE(with_poison.Crc(), Crc32(ByteSpan(flat)));
}

TEST(Frame, CrcMatchesFlattenedBytes) {
  FrameBuilder fb;
  fb.header().PutU32(42);
  fb.header().PutString("hdr");
  fb.Append(SharedSlice::FromBuffer(MakeBytes(100, 3)));
  fb.header().PutU64(7);
  Frame frame = fb.Build(/*with_crc_trailer=*/false);
  Buffer flat = frame.Flatten();
  EXPECT_EQ(frame.total_bytes, flat.size());
  EXPECT_EQ(frame.Crc(), Crc32(ByteSpan(flat)));
}

TEST(Frame, CrcTrailerCoversPrecedingParts) {
  FrameBuilder fb;
  fb.header().PutU32(1);
  fb.Append(SharedSlice::FromBuffer(MakeBytes(33, 5)));
  Frame frame = fb.Build(/*with_crc_trailer=*/true);
  Buffer flat = frame.Flatten();
  ASSERT_GE(flat.size(), 4u);
  const ByteSpan body(flat.data(), flat.size() - 4);
  const std::uint32_t crc = Crc32(body);
  EXPECT_EQ(flat[flat.size() - 4], static_cast<std::uint8_t>(crc & 0xFF));
  EXPECT_EQ(flat[flat.size() - 3],
            static_cast<std::uint8_t>((crc >> 8) & 0xFF));
  EXPECT_EQ(flat[flat.size() - 2],
            static_cast<std::uint8_t>((crc >> 16) & 0xFF));
  EXPECT_EQ(flat[flat.size() - 1],
            static_cast<std::uint8_t>((crc >> 24) & 0xFF));
}

TEST(Frame, BuilderConcatenationMatchesManualLayout) {
  // The server's reply assembly depends on segments + parts concatenating
  // to the same bytes a contiguous Encoder would have produced.
  Buffer body = MakeBytes(50, 11);

  FrameBuilder fb;
  fb.header().PutU32(0);
  fb.header().PutString("ok");
  fb.header().PutU32(static_cast<std::uint32_t>(body.size()));
  fb.Append(SharedSlice::FromBuffer(Buffer(body)));
  fb.header().PutU32(0xDEADBEEF);
  Buffer flat = fb.Build().Flatten();

  Encoder ref;
  ref.PutU32(0);
  ref.PutString("ok");
  ref.PutU32(static_cast<std::uint32_t>(body.size()));
  ref.PutRaw(ByteSpan(body));
  ref.PutU32(0xDEADBEEF);
  EXPECT_EQ(flat, std::move(ref).Take());
}

TEST(Frame, PayloadPartsRideByReference) {
  SharedSlice payload = SharedSlice::FromBuffer(MakeBytes(1 << 16));
  const std::uint8_t* raw = payload.data();
  FrameBuilder fb;
  fb.header().PutU32(1);
  fb.Append(payload);
  Frame frame = fb.Build(/*with_crc_trailer=*/true);
  bool found = false;
  for (const SharedSlice& p : frame.parts) {
    if (p.data() == raw) found = true;
  }
  EXPECT_TRUE(found) << "payload was copied into the frame";
}

TEST(ReadBufferPool, CopyOutAttachesBytesAndCrc) {
  auto pool = ReadBufferPool::Create();
  Buffer src = MakeBytes(4096, 8);
  SharedSlice s = pool->CopyOut(ByteSpan(src), CopyKind::kStore);
  ASSERT_EQ(s.size(), src.size());
  EXPECT_TRUE(s.owned());
  EXPECT_EQ(0, std::memcmp(s.data(), src.data(), src.size()));
  ASSERT_TRUE(s.has_cached_crc());
  EXPECT_EQ(s.cached_crc(), lwfs::Crc32(ByteSpan(src)));
}

TEST(ReadBufferPool, BlocksRecycleAfterLastReferenceDrops) {
  auto pool = ReadBufferPool::Create();
  Buffer src = MakeBytes(2048, 2);
  const std::uint8_t* first_block = nullptr;
  {
    SharedSlice s = pool->CopyOut(ByteSpan(src), CopyKind::kStore);
    first_block = s.data();
    EXPECT_EQ(pool->retained_bytes(), 0u);  // block is out on loan
  }
  EXPECT_EQ(pool->retained_bytes(), 2048u);  // returned on release
  SharedSlice again = pool->CopyOut(ByteSpan(src), CopyKind::kStore);
  EXPECT_EQ(again.data(), first_block);  // same block, warm pages
  EXPECT_EQ(pool->retained_bytes(), 0u);
}

TEST(ReadBufferPool, SliceKeepsPoolAliveAfterCreatorDropsIt) {
  Buffer src = MakeBytes(512, 3);
  SharedSlice s;
  {
    auto pool = ReadBufferPool::Create();
    s = pool->CopyOut(ByteSpan(src), CopyKind::kStore);
  }
  // The pool handle is gone; the slice's owner holds the pool.  ASan
  // validates the bytes are still live.
  EXPECT_EQ(0, std::memcmp(s.data(), src.data(), src.size()));
  s = SharedSlice();  // final release returns the block, then the pool dies
}

TEST(ReadBufferPool, RetainedBytesRespectTheBound) {
  auto pool = ReadBufferPool::Create(/*max_retained_bytes=*/4096);
  Buffer src = MakeBytes(4096, 1);
  SharedSlice a = pool->CopyOut(ByteSpan(src), CopyKind::kStore);
  SharedSlice b = pool->CopyOut(ByteSpan(src), CopyKind::kStore);
  a = SharedSlice();
  b = SharedSlice();
  // Only one block fits under the bound; the second release frees.
  EXPECT_EQ(pool->retained_bytes(), 4096u);
}

TEST(ReadBufferPool, CrossThreadReleaseReturnsTheBlock) {
  auto pool = ReadBufferPool::Create();
  Buffer src = MakeBytes(1024, 5);
  SharedSlice s = pool->CopyOut(ByteSpan(src), CopyKind::kStore);
  std::thread releaser([moved = std::move(s)]() mutable {
    moved = SharedSlice();
  });
  releaser.join();
  EXPECT_EQ(pool->retained_bytes(), 1024u);
}

TEST(Encoder, ReservePreservesContentsAndGrowsCapacity) {
  Encoder enc;
  enc.PutU32(123);
  enc.Reserve(1 << 20);
  EXPECT_GE(enc.buffer().capacity(), (1u << 20));
  enc.PutRaw(ByteSpan(MakeBytes(8)));
  Buffer out = std::move(enc).Take();
  Decoder dec(out);
  auto v = dec.GetU32();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 123u);
  EXPECT_EQ(dec.remaining(), 8u);
}

}  // namespace
}  // namespace lwfs::util
