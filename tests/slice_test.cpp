// SharedSlice / Frame / CopyStats unit tests: the ownership and aliasing
// rules the zero-copy data path depends on.  Lifetime tests deliberately
// drop parents before touching children — ASan runs catch any slice that
// fails to keep its bytes alive, and the concurrent test gives TSan real
// cross-thread refcount traffic.
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/crc32.h"
#include "util/shared_buffer.h"

namespace lwfs::util {
namespace {

Buffer MakeBytes(std::size_t n, std::uint8_t seed = 1) {
  Buffer b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(seed + i * 7);
  }
  return b;
}

TEST(SharedSlice, FromBufferAdoptsWithoutCopying) {
  Buffer b = MakeBytes(64);
  const std::uint8_t* raw = b.data();
  const CopySnapshot before = CopyStats::Snapshot();
  SharedSlice s = SharedSlice::FromBuffer(std::move(b));
  const CopySnapshot delta = CopyStats::Snapshot().Since(before);
  EXPECT_EQ(s.data(), raw);  // same storage: adopted, not copied
  EXPECT_TRUE(s.owned());
  for (int i = 0; i < kCopyKinds; ++i) EXPECT_EQ(delta.copies[i], 0u);
}

TEST(SharedSlice, SubSliceKeepsParentBufferAlive) {
  SharedSlice child;
  {
    SharedSlice parent = SharedSlice::FromBuffer(MakeBytes(256));
    child = parent.Slice(100, 50);
    EXPECT_EQ(child.use_count(), 2);
  }  // parent handle gone; child must still pin the buffer
  EXPECT_EQ(child.use_count(), 1);
  ASSERT_EQ(child.size(), 50u);
  const Buffer expect = MakeBytes(256);
  EXPECT_EQ(0, std::memcmp(child.data(), expect.data() + 100, 50));
}

TEST(SharedSlice, SliceClampsOutOfRangeBounds) {
  SharedSlice s = SharedSlice::FromBuffer(MakeBytes(10));
  EXPECT_EQ(s.Slice(4, 100).size(), 6u);   // length clamped
  EXPECT_EQ(s.Slice(50, 10).size(), 0u);   // offset clamped to end
  EXPECT_EQ(s.Slice(10, 0).size(), 0u);
}

TEST(SharedSlice, ExternalSliceIsBorrowedNotOwned) {
  Buffer b = MakeBytes(32);
  SharedSlice s = SharedSlice::External(ByteSpan(b));
  EXPECT_FALSE(s.owned());
  EXPECT_EQ(s.data(), b.data());
  // Sub-slices of an external slice are external too.
  EXPECT_FALSE(s.Slice(1, 4).owned());
}

TEST(SharedSlice, CopyAndToBufferAreCounted) {
  if (!CopyStats::Enabled()) GTEST_SKIP() << "built without LWFS_COUNT_COPIES";
  Buffer b = MakeBytes(128);
  const CopySnapshot before = CopyStats::Snapshot();
  SharedSlice s = SharedSlice::Copy(ByteSpan(b), CopyKind::kStage);
  Buffer back = s.ToBuffer(CopyKind::kDeliver);
  const CopySnapshot delta = CopyStats::Snapshot().Since(before);
  EXPECT_EQ(delta.copies_of(CopyKind::kStage), 1u);
  EXPECT_EQ(delta.bytes_of(CopyKind::kStage), 128u);
  EXPECT_EQ(delta.copies_of(CopyKind::kDeliver), 1u);
  EXPECT_EQ(delta.bytes_of(CopyKind::kDeliver), 128u);
  EXPECT_EQ(back, b);
  EXPECT_EQ(delta.budget_bytes(), 128u);  // only kStage counts against budget
}

TEST(SharedSlice, DecodedSliceOutlivesDecoderAndSource) {
  SharedSlice decoded;
  {
    Encoder enc;
    enc.PutU32(7);
    enc.PutSlice(SharedSlice::FromBuffer(MakeBytes(40, 9)));
    SharedSlice wire = SharedSlice::FromBuffer(std::move(enc).Take());
    {
      Decoder dec(wire);
      ASSERT_TRUE(dec.GetU32().ok());
      auto taken = dec.TakeSlice();
      ASSERT_TRUE(taken.ok());
      decoded = *taken;
      // Zero-copy: the decoded slice aliases the wire frame's storage.
      EXPECT_EQ(decoded.owner().get(), wire.owner().get());
    }  // decoder gone
  }  // wire handle gone; decoded still pins the frame
  ASSERT_EQ(decoded.size(), 40u);
  const Buffer expect = MakeBytes(40, 9);
  EXPECT_EQ(0, std::memcmp(decoded.data(), expect.data(), 40));
}

TEST(SharedSlice, TakeSliceFromUnownedInputFallsBackToCopy) {
  Encoder enc;
  enc.PutSlice(SharedSlice::FromBuffer(MakeBytes(16)));
  Buffer wire = std::move(enc).Take();
  Decoder dec(wire);  // plain span: no owner
  auto taken = dec.TakeSlice();
  ASSERT_TRUE(taken.ok());
  EXPECT_TRUE(taken->owned());  // safe to hold: copied, not aliased
  EXPECT_NE(static_cast<const void*>(taken->data()),
            static_cast<const void*>(wire.data() + 4));
}

TEST(SharedSlice, TakeSliceRejectsTruncatedInput) {
  Encoder enc;
  enc.PutU32(100);  // claims 100 payload bytes that are not there
  Buffer wire = std::move(enc).Take();
  Decoder dec(wire);
  EXPECT_FALSE(dec.TakeSlice().ok());
}

TEST(SharedSlice, ConcurrentCopyAndDropIsRaceFree) {
  // Refcount churn from many threads against one buffer: TSan checks the
  // control-block traffic, ASan checks nobody touches freed bytes.
  SharedSlice root = SharedSlice::FromBuffer(MakeBytes(4096));
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&root, t] {
      for (int i = 0; i < 1000; ++i) {
        SharedSlice local = root.Slice(static_cast<std::size_t>(t) * 16,
                                       static_cast<std::size_t>(i % 64));
        SharedSlice copy = local;
        volatile std::size_t touch = copy.size();
        (void)touch;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(root.use_count(), 1);
}

TEST(Frame, CrcMatchesFlattenedBytes) {
  FrameBuilder fb;
  fb.header().PutU32(42);
  fb.header().PutString("hdr");
  fb.Append(SharedSlice::FromBuffer(MakeBytes(100, 3)));
  fb.header().PutU64(7);
  Frame frame = fb.Build(/*with_crc_trailer=*/false);
  Buffer flat = frame.Flatten();
  EXPECT_EQ(frame.total_bytes, flat.size());
  EXPECT_EQ(frame.Crc(), Crc32(ByteSpan(flat)));
}

TEST(Frame, CrcTrailerCoversPrecedingParts) {
  FrameBuilder fb;
  fb.header().PutU32(1);
  fb.Append(SharedSlice::FromBuffer(MakeBytes(33, 5)));
  Frame frame = fb.Build(/*with_crc_trailer=*/true);
  Buffer flat = frame.Flatten();
  ASSERT_GE(flat.size(), 4u);
  const ByteSpan body(flat.data(), flat.size() - 4);
  const std::uint32_t crc = Crc32(body);
  EXPECT_EQ(flat[flat.size() - 4], static_cast<std::uint8_t>(crc & 0xFF));
  EXPECT_EQ(flat[flat.size() - 3],
            static_cast<std::uint8_t>((crc >> 8) & 0xFF));
  EXPECT_EQ(flat[flat.size() - 2],
            static_cast<std::uint8_t>((crc >> 16) & 0xFF));
  EXPECT_EQ(flat[flat.size() - 1],
            static_cast<std::uint8_t>((crc >> 24) & 0xFF));
}

TEST(Frame, BuilderConcatenationMatchesManualLayout) {
  // The server's reply assembly depends on segments + parts concatenating
  // to the same bytes a contiguous Encoder would have produced.
  Buffer body = MakeBytes(50, 11);

  FrameBuilder fb;
  fb.header().PutU32(0);
  fb.header().PutString("ok");
  fb.header().PutU32(static_cast<std::uint32_t>(body.size()));
  fb.Append(SharedSlice::FromBuffer(Buffer(body)));
  fb.header().PutU32(0xDEADBEEF);
  Buffer flat = fb.Build().Flatten();

  Encoder ref;
  ref.PutU32(0);
  ref.PutString("ok");
  ref.PutU32(static_cast<std::uint32_t>(body.size()));
  ref.PutRaw(ByteSpan(body));
  ref.PutU32(0xDEADBEEF);
  EXPECT_EQ(flat, std::move(ref).Take());
}

TEST(Frame, PayloadPartsRideByReference) {
  SharedSlice payload = SharedSlice::FromBuffer(MakeBytes(1 << 16));
  const std::uint8_t* raw = payload.data();
  FrameBuilder fb;
  fb.header().PutU32(1);
  fb.Append(payload);
  Frame frame = fb.Build(/*with_crc_trailer=*/true);
  bool found = false;
  for (const SharedSlice& p : frame.parts) {
    if (p.data() == raw) found = true;
  }
  EXPECT_TRUE(found) << "payload was copied into the frame";
}

TEST(Encoder, ReservePreservesContentsAndGrowsCapacity) {
  Encoder enc;
  enc.PutU32(123);
  enc.Reserve(1 << 20);
  EXPECT_GE(enc.buffer().capacity(), (1u << 20));
  enc.PutRaw(ByteSpan(MakeBytes(8)));
  Buffer out = std::move(enc).Take();
  Decoder dec(out);
  auto v = dec.GetU32();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 123u);
  EXPECT_EQ(dec.remaining(), 8u);
}

}  // namespace
}  // namespace lwfs::util
