// The §3.1.2 design argument, executable: LWFS's cached-verify scheme vs.
// the NASD/T10 shared-key scheme.  Both authorize correctly in the happy
// path; they differ exactly where the paper says they do — revocation and
// trust.
#include <gtest/gtest.h>

#include "core/runtime.h"
#include "security/siphash.h"

namespace lwfs::core {
namespace {

class VerifyModesTest : public ::testing::TestWithParam<VerifyMode> {
 protected:
  void SetUp() override {
    RuntimeOptions options;
    options.storage_servers = 2;
    options.storage.verify_mode = GetParam();
    runtime_ = ServiceRuntime::Start(options).value();
    runtime_->AddUser("alice", "pw-a", 100);
    runtime_->AddUser("bob", "pw-b", 200);
    alice_ = runtime_->MakeClient();
    alice_cred_ = alice_->Login("alice", "pw-a").value();
    cid_ = alice_->CreateContainer(alice_cred_).value();
    alice_cap_ = alice_->GetCap(alice_cred_, cid_, security::kOpAll).value();
  }

  std::unique_ptr<ServiceRuntime> runtime_;
  std::unique_ptr<Client> alice_;
  security::Credential alice_cred_;
  storage::ContainerId cid_;
  security::Capability alice_cap_;
};

TEST_P(VerifyModesTest, HappyPathAuthorizesIdentically) {
  auto oid = alice_->CreateObject(0, alice_cap_);
  ASSERT_TRUE(oid.ok());
  Buffer data = PatternBuffer(1000, 1);
  EXPECT_TRUE(alice_->WriteObject(0, alice_cap_, *oid, 0, ByteSpan(data)).ok());
  auto back = alice_->ReadObjectAlloc(0, alice_cap_, *oid, 0, 1000);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_P(VerifyModesTest, ForgedCapabilitiesRejectedInEveryMode) {
  security::Capability forged = alice_cap_;
  forged.ops = security::kOpAll;
  forged.uid = 999;  // breaks the tag in all modes
  EXPECT_FALSE(alice_->CreateObject(0, forged).ok());
}

TEST_P(VerifyModesTest, RevocationWorksOnlyInTheLwfsScheme) {
  // Grant bob write, let him warm the storage server, then chmod him out.
  ASSERT_TRUE(alice_->SetGrant(alice_cred_, cid_, 200,
                               security::kOpWrite | security::kOpCreate)
                  .ok());
  auto bob = runtime_->MakeClient();
  auto bob_cred = bob->Login("bob", "pw-b").value();
  auto bob_cap = bob->GetCap(*&bob_cred, cid_,
                             security::kOpWrite | security::kOpCreate)
                     .value();
  auto oid = bob->CreateObject(0, bob_cap);
  ASSERT_TRUE(oid.ok());

  ASSERT_TRUE(alice_->SetGrant(alice_cred_, cid_, 200, security::kOpNone).ok());
  const Status after = bob->CreateObject(0, bob_cap).status();

  switch (GetParam()) {
    case VerifyMode::kAuthzWithCache:
    case VerifyMode::kAuthzEveryRequest:
      // LWFS: the back-pointer invalidation (or the re-verify) kills the
      // capability immediately.
      EXPECT_EQ(after.code(), ErrorCode::kPermissionDenied);
      break;
    case VerifyMode::kSharedKey:
      // NASD/T10: the signature still checks out locally and the storage
      // server never hears about the policy change — bob keeps writing
      // until the capability *expires*.  This is the §3.1.4 revocation
      // problem, demonstrated.
      EXPECT_TRUE(after.ok());
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, VerifyModesTest,
    ::testing::Values(VerifyMode::kAuthzWithCache,
                      VerifyMode::kAuthzEveryRequest, VerifyMode::kSharedKey),
    [](const auto& info) {
      switch (info.param) {
        case VerifyMode::kAuthzWithCache: return "LwfsCached";
        case VerifyMode::kAuthzEveryRequest: return "LwfsEveryRequest";
        case VerifyMode::kSharedKey: return "NasdSharedKey";
      }
      return "Unknown";
    });

TEST(SharedKeyTrustTest, KeyHolderCanMintCapabilities) {
  // The trust flaw itself: any entity holding the shared key — which in
  // the NASD scheme includes every storage server — can fabricate a
  // capability the servers will accept.  In the LWFS scheme the same
  // fabrication fails because only the authorization service can verify.
  RuntimeOptions options;
  options.storage_servers = 1;
  options.storage.verify_mode = VerifyMode::kSharedKey;
  auto runtime = ServiceRuntime::Start(options).value();
  runtime->AddUser("alice", "pw", 100);
  auto client = runtime->MakeClient();
  auto cred = client->Login("alice", "pw").value();
  auto cid = client->CreateContainer(cred).value();

  // "Mallory" (a compromised storage server) mints an all-ops capability
  // for alice's container using the shared key it legitimately holds.
  // The key below mirrors the runtime's internal authz key — which is the
  // point: in shared-key deployments that key is *distributed*.
  const security::SipKey leaked{0xFEDCBA0987654321ULL, 0x13579BDF2468ACE0ULL};
  security::Capability minted;
  minted.cap_id = 424242;  // never issued by the authz service
  minted.cid = cid;
  minted.ops = security::kOpAll;
  minted.uid = 31337;
  minted.instance = 0;
  minted.expires_us = security::SystemNowUs() + 3600LL * 1000 * 1000;
  minted.tag = security::SipTag(leaked, ByteSpan(minted.SignedBytes()));

  // The storage server accepts the fabricated capability...
  EXPECT_TRUE(client->CreateObject(0, minted).ok());

  // ...whereas an LWFS-mode deployment rejects the identical fabrication
  // because the id was never issued.
  RuntimeOptions lwfs_options;
  lwfs_options.storage_servers = 1;
  auto lwfs_runtime = ServiceRuntime::Start(lwfs_options).value();
  lwfs_runtime->AddUser("alice", "pw", 100);
  auto lwfs_client = lwfs_runtime->MakeClient();
  auto lwfs_cred = lwfs_client->Login("alice", "pw").value();
  auto lwfs_cid = lwfs_client->CreateContainer(lwfs_cred).value();
  security::Capability minted2 = minted;
  minted2.cid = lwfs_cid;
  minted2.tag = security::SipTag(leaked, ByteSpan(minted2.SignedBytes()));
  EXPECT_FALSE(lwfs_client->CreateObject(0, minted2).ok());
}

}  // namespace
}  // namespace lwfs::core
