// Tests for the log-time collectives (Figure 4-a's scatter, Figure 8's
// gather): correctness over thread groups of varying size, tag isolation,
// out-of-order stashing, and message-count bounds.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "comm/collectives.h"
#include "util/clock.h"
#include "util/rng.h"

namespace lwfs::comm {
namespace {

/// Builds a group of n communicators over one fabric.
struct Group {
  explicit Group(int n) {
    std::vector<std::shared_ptr<portals::Nic>> nics;
    std::vector<portals::Nid> members;
    for (int i = 0; i < n; ++i) {
      nics.push_back(fabric.CreateNic());
      members.push_back(nics.back()->nid());
    }
    for (int i = 0; i < n; ++i) {
      comms.push_back(Communicator::Create(nics[static_cast<std::size_t>(i)],
                                           members, i)
                          .value());
    }
  }

  /// Run `body(rank)` on every rank concurrently; returns failure count.
  template <typename Body>
  int RunAll(Body body) {
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int r = 0; r < static_cast<int>(comms.size()); ++r) {
      threads.emplace_back([&, r] {
        if (!body(r)) failures.fetch_add(1);
      });
    }
    for (auto& t : threads) t.join();
    return failures.load();
  }

  portals::Fabric fabric;
  std::vector<std::unique_ptr<Communicator>> comms;
};

TEST(CommTest, SendRecvRoundTrip) {
  Group group(2);
  Buffer payload = PatternBuffer(1000, 1);
  EXPECT_EQ(0, group.RunAll([&](int rank) {
    if (rank == 0) {
      return group.comms[0]->Send(1, 7, ByteSpan(payload)).ok();
    }
    auto got = group.comms[1]->Recv(0, 7);
    return got.ok() && *got == payload;
  }));
}

TEST(CommTest, TagsAndSourcesAreIsolated) {
  Group group(3);
  EXPECT_EQ(0, group.RunAll([&](int rank) {
    Communicator& comm = *group.comms[static_cast<std::size_t>(rank)];
    if (rank != 2) {
      // Both senders send two tagged messages, reverse order per sender.
      Buffer a = {static_cast<std::uint8_t>(rank), 0xA};
      Buffer b = {static_cast<std::uint8_t>(rank), 0xB};
      return comm.Send(2, 20, ByteSpan(b)).ok() &&
             comm.Send(2, 10, ByteSpan(a)).ok();
    }
    // The receiver asks for them in a fixed (src, tag) order; the stash
    // must hand each request exactly the matching message.
    for (int src : {0, 1}) {
      auto a = comm.Recv(src, 10);
      auto b = comm.Recv(src, 20);
      if (!a.ok() || !b.ok()) return false;
      if ((*a)[1] != 0xA || (*b)[1] != 0xB) return false;
      if ((*a)[0] != src || (*b)[0] != src) return false;
    }
    return true;
  }));
}

class CommSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(CommSizeTest, BcastDeliversToEveryRank) {
  Group group(GetParam());
  Buffer data = PatternBuffer(5000, 9);
  EXPECT_EQ(0, group.RunAll([&](int rank) {
    Buffer local = rank == 1 % GetParam() ? data : Buffer{};
    const int root = 1 % GetParam();
    Status s = group.comms[static_cast<std::size_t>(rank)]->Bcast(root, 3,
                                                                  local);
    return s.ok() && local == data;
  }));
}

TEST_P(CommSizeTest, GatherCollectsInRankOrder) {
  Group group(GetParam());
  const int root = GetParam() - 1;  // non-zero root exercises rotation
  EXPECT_EQ(0, group.RunAll([&](int rank) {
    Buffer mine = PatternBuffer(100 + static_cast<std::size_t>(rank) * 10,
                                static_cast<std::uint64_t>(rank));
    auto gathered = group.comms[static_cast<std::size_t>(rank)]->Gather(
        root, 5, ByteSpan(mine));
    if (!gathered.ok()) return false;
    if (rank != root) return gathered->empty();
    if (gathered->size() != static_cast<std::size_t>(GetParam())) return false;
    for (int r = 0; r < GetParam(); ++r) {
      Buffer expect = PatternBuffer(100 + static_cast<std::size_t>(r) * 10,
                                    static_cast<std::uint64_t>(r));
      if ((*gathered)[static_cast<std::size_t>(r)] != expect) return false;
    }
    return true;
  }));
}

TEST_P(CommSizeTest, ScatterDeliversEachPiece) {
  Group group(GetParam());
  const int n = GetParam();
  std::vector<Buffer> pieces;
  for (int r = 0; r < n; ++r) {
    pieces.push_back(PatternBuffer(64, static_cast<std::uint64_t>(r) + 77));
  }
  EXPECT_EQ(0, group.RunAll([&](int rank) {
    auto mine = group.comms[static_cast<std::size_t>(rank)]->Scatter(
        0, 6, rank == 0 ? pieces : std::vector<Buffer>{});
    return mine.ok() && *mine == pieces[static_cast<std::size_t>(rank)];
  }));
}

TEST_P(CommSizeTest, BarrierSynchronizes) {
  Group group(GetParam());
  std::atomic<int> arrived{0};
  std::atomic<bool> violation{false};
  EXPECT_EQ(0, group.RunAll([&](int rank) {
    // Stagger arrivals; nobody may pass the barrier before all arrived.
    util::RealClockInstance()->SleepFor(std::chrono::milliseconds(rank * 3));
    arrived.fetch_add(1);
    Status s = group.comms[static_cast<std::size_t>(rank)]->Barrier(100);
    if (arrived.load() != GetParam()) violation.store(true);
    return s.ok();
  }));
  EXPECT_FALSE(violation.load());
}

INSTANTIATE_TEST_SUITE_P(Sizes, CommSizeTest, ::testing::Values(1, 2, 3, 5, 8));

TEST(CommTest, BcastUsesExactlyNMinusOneMessages) {
  Group group(8);
  group.fabric.ResetStats();
  Buffer data = PatternBuffer(100, 1);
  ASSERT_EQ(0, group.RunAll([&](int rank) {
    Buffer local = rank == 0 ? data : Buffer{};
    return group.comms[static_cast<std::size_t>(rank)]->Bcast(0, 1, local).ok();
  }));
  // A binomial broadcast moves exactly n-1 messages (the "logarithmic"
  // refers to rounds, not messages).
  EXPECT_EQ(group.fabric.Stats().puts, 7u);
}

TEST(CommTest, RecvTimesOutCleanly) {
  Group group(2);
  auto got = group.comms[0]->Recv(1, 9, std::chrono::milliseconds(30));
  EXPECT_EQ(got.status().code(), ErrorCode::kTimeout);
}

TEST(CommTest, CreateValidatesArguments) {
  portals::Fabric fabric;
  auto nic = fabric.CreateNic();
  EXPECT_FALSE(Communicator::Create(nic, {}, 0).ok());
  EXPECT_FALSE(Communicator::Create(nic, {nic->nid()}, 1).ok());
  EXPECT_FALSE(Communicator::Create(nic, {nic->nid() + 99}, 0).ok());
}

TEST(CommTest, StressManyRandomCollectives) {
  Group group(4);
  Rng seed_rng(12);
  const std::uint64_t base_seed = seed_rng.NextU64();
  EXPECT_EQ(0, group.RunAll([&](int rank) {
    Communicator& comm = *group.comms[static_cast<std::size_t>(rank)];
    for (std::uint32_t round = 0; round < 50; ++round) {
      // All ranks derive the same schedule from the round number.
      Rng rng(base_seed + round);
      const int root = static_cast<int>(rng.NextBelow(4));
      const auto op = rng.NextBelow(3);
      const std::uint32_t tag = 1000 + round * 10;
      if (op == 0) {
        Buffer data = PatternBuffer(rng.NextBelow(2000), round);
        Buffer local = rank == root ? data : Buffer{};
        if (!comm.Bcast(root, tag, local).ok() || local != data) return false;
      } else if (op == 1) {
        Buffer mine = PatternBuffer(10, static_cast<std::uint64_t>(rank));
        auto gathered = comm.Gather(root, tag, ByteSpan(mine));
        if (!gathered.ok()) return false;
        if (rank == root && gathered->size() != 4) return false;
      } else {
        std::vector<Buffer> pieces;
        for (int r = 0; r < 4; ++r) {
          pieces.push_back(PatternBuffer(8, round * 4 + static_cast<std::uint64_t>(r)));
        }
        auto mine = comm.Scatter(root, tag,
                                 rank == root ? pieces : std::vector<Buffer>{});
        if (!mine.ok() || *mine != pieces[static_cast<std::size_t>(rank)]) {
          return false;
        }
      }
    }
    return true;
  }));
}

}  // namespace
}  // namespace lwfs::comm
