// Replication layer (DESIGN.md §15): rack-aware placement, chain-replicated
// writes, hedged/failover reads, restart re-registration, and background
// repair — each invariant checked end to end over the real RPC stack:
//
//  * placement is a pure function of registry state (deterministic) and
//    spreads chains across racks;
//  * a chain write commits on every member byte-exactly, and applies
//    exactly once however often the fabric duplicates its messages;
//  * a restarting server re-registers what it actually holds before taking
//    traffic, so a racing repair scan never sees a phantom-empty server;
//  * the repair scanner restores lost replicas from survivors and catches
//    version-diverged members up (the audit goes back to fully replicated);
//  * reads survive a dead chain head via failover and hedging.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "core/client.h"
#include "core/runtime.h"
#include "naming/replica_map.h"
#include "storage/ids.h"
#include "util/clock.h"
#include "util/shared_buffer.h"

namespace lwfs {
namespace {

std::vector<Buffer> MakeStates(std::uint32_t nranks, std::size_t bytes,
                               std::uint64_t salt) {
  std::vector<Buffer> states;
  states.reserve(nranks);
  for (std::uint32_t r = 0; r < nranks; ++r) {
    states.push_back(PatternBuffer(bytes, salt * 1000 + r));
  }
  return states;
}

// ---------------------------------------------------------------------------
// Placement: deterministic, rack-aware
// ---------------------------------------------------------------------------

TEST(ReplicaMapTest, PlacementIsDeterministicAndRackAware) {
  naming::ReplicaMapOptions options;
  options.servers = 6;
  options.default_factor = 3;
  options.rack_size = 2;
  naming::ReplicaMap a(options);
  naming::ReplicaMap b(options);
  for (std::uint32_t i = 0; i < 16; ++i) {
    const std::uint32_t preferred = i % options.servers;
    auto pa = a.Place(storage::ContainerId{7}, preferred, 0);
    auto pb = b.Place(storage::ContainerId{7}, preferred, 0);
    ASSERT_TRUE(pa.ok() && pb.ok());
    // Same registry state => same oid and same chain: the placement is a
    // pure function, which is what keeps VirtualClock runs bit-identical.
    EXPECT_EQ(pa->oid, pb->oid);
    EXPECT_EQ(pa->chain, pb->chain);
    EXPECT_TRUE(storage::IsReplicatedOid(pa->oid));
    ASSERT_EQ(pa->chain.size(), 3u);
    EXPECT_EQ(pa->chain.front(), preferred);
    const std::set<std::uint32_t> members(pa->chain.begin(), pa->chain.end());
    EXPECT_EQ(members.size(), 3u) << "chain repeats a server";
    std::set<std::uint32_t> racks;
    for (std::uint32_t s : pa->chain) racks.insert(s / options.rack_size);
    EXPECT_EQ(racks.size(), 3u) << "chain does not spread across racks";
  }
}

// ---------------------------------------------------------------------------
// Full-stack fixture
// ---------------------------------------------------------------------------

class ReplicationTest : public ::testing::Test {
 protected:
  void StartRuntime(int servers, std::uint32_t factor,
                    std::uint64_t hedge_after_us = 0) {
    core::RuntimeOptions options;
    options.storage_servers = servers;
    options.replication.replication_factor = factor;
    options.replication.hedge_after_us = hedge_after_us;
    // Small repair chunks so multi-chunk repairs (and the final-chunk
    // version stamp) are exercised by modest objects.
    options.replication.repair_chunk_bytes = 64 << 10;
    options.client_options.default_timeout = std::chrono::milliseconds(100);
    options.client_options.max_retransmits = 4;
    auto rt = core::ServiceRuntime::Start(options);
    ASSERT_TRUE(rt.ok()) << rt.status().ToString();
    client_.reset();
    runtime_ = std::move(*rt);
    runtime_->AddUser("app", "secret", 100);
    client_ = runtime_->MakeClient();
    auto cred = client_->Login("app", "secret");
    ASSERT_TRUE(cred.ok());
    auto cid = client_->CreateContainer(*cred);
    ASSERT_TRUE(cid.ok());
    cid_ = *cid;
    auto cap = client_->GetCap(*cred, *cid, security::kOpAll);
    ASSERT_TRUE(cap.ok());
    cap_ = *cap;
  }

  void ExpectAllMembersHold(const core::ReplicaChain& chain,
                            const Buffer& data) {
    for (std::uint32_t s : chain.servers) {
      auto back =
          runtime_->store(static_cast<int>(s)).Read(chain.oid, 0, data.size());
      ASSERT_TRUE(back.ok()) << "server " << s << ": "
                             << back.status().ToString();
      EXPECT_EQ(*back, data) << "server " << s;
    }
  }

  std::unique_ptr<core::ServiceRuntime> runtime_;
  std::unique_ptr<core::Client> client_;
  storage::ContainerId cid_{};
  security::Capability cap_;
};

// ---------------------------------------------------------------------------
// Chain writes
// ---------------------------------------------------------------------------

TEST_F(ReplicationTest, ChainWriteReachesEveryMember) {
  StartRuntime(/*servers=*/4, /*factor=*/3);
  auto chain = client_->CreateReplicatedObject(cap_, 0, 3);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  ASSERT_EQ(chain->servers.size(), 3u);

  Buffer data = PatternBuffer(96 << 10, 42);
  ASSERT_TRUE(client_->WriteReplicated(cap_, *chain, 0, ByteSpan(data)).ok());
  ExpectAllMembersHold(*chain, data);

  Buffer out(data.size(), 0);
  auto n = client_->ReadReplicated(cap_, *chain, 0, MutableByteSpan(out));
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(out, data);

  auto audit = client_->AuditReplicas();
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->objects, 1u);
  EXPECT_EQ(audit->fully_replicated, 1u);
  EXPECT_EQ(audit->stale_members, 0u);
}

// Satellite: replica-push and repair ops stay idempotent under the
// at-most-once reply cache.  A duplicated chain-hop delivery must not apply
// twice (appends would double the object) or re-forward down the chain.
TEST_F(ReplicationTest, ChainWritesApplyOnceUnderDuplicateDelivery) {
  StartRuntime(/*servers=*/4, /*factor=*/3);
  runtime_->fabric().injector().Seed(0xD0BBED);
  const core::Deployment& d = runtime_->deployment();
  auto& injector = runtime_->fabric().injector();
  const portals::FaultSpec spec{.duplicate = 0.3};
  injector.SetNode(d.naming, spec);
  for (portals::Nid nid : d.storage) injector.SetNode(nid, spec);

  auto chain = client_->CreateReplicatedObject(cap_, 1, 3);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  Buffer first = PatternBuffer(4096, 1);
  Buffer second = PatternBuffer(4096, 2);
  ASSERT_TRUE(client_->WriteReplicated(cap_, *chain, 0, ByteSpan(first)).ok());
  ASSERT_TRUE(
      client_->WriteReplicated(cap_, *chain, first.size(), ByteSpan(second))
          .ok());
  Buffer whole = first;
  whole.insert(whole.end(), second.begin(), second.end());
  for (std::uint32_t s : chain->servers) {
    auto attr = runtime_->store(static_cast<int>(s)).GetAttr(chain->oid);
    ASSERT_TRUE(attr.ok()) << "server " << s;
    EXPECT_EQ(attr->size, whole.size()) << "a write applied twice on " << s;
  }
  ExpectAllMembersHold(*chain, whole);

  // Repair ops under the same duplication: force a scan that probes and
  // repairs, then a second scan — both must converge without damage.
  ASSERT_TRUE(runtime_->replica_map()
                  .ReportStale(chain->oid, 2, {chain->servers.back()})
                  .ok());
  auto scan = runtime_->replicator().RunScan();
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->failed, 0u);
  auto again = runtime_->replicator().RunScan();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->failed, 0u);
  ExpectAllMembersHold(*chain, whole);

  const auto robustness = runtime_->TotalRobustnessStats();
  EXPECT_GT(robustness.faults.duplicates, 0u) << "fabric was not hostile";
  EXPECT_GT(robustness.rpc.dedup_hits, 0u) << "reply cache never engaged";
}

// ---------------------------------------------------------------------------
// Restart re-registration (no phantom-empty server)
// ---------------------------------------------------------------------------

// Satellite: StorageServer::Restart reports the store's actual holdings to
// the registry before serving traffic.  A stale mark the registry holds in
// error (the member really has the bytes) is corrected by the restart, and
// a racing repair scan finds nothing to do.
TEST_F(ReplicationTest, RestartReRegistersHoldingsWithRegistry) {
  StartRuntime(/*servers=*/4, /*factor=*/3);
  auto chain = client_->CreateReplicatedObject(cap_, 0, 3);
  ASSERT_TRUE(chain.ok());
  Buffer data = PatternBuffer(8192, 5);
  ASSERT_TRUE(client_->WriteReplicated(cap_, *chain, 0, ByteSpan(data)).ok());

  const auto member = static_cast<int>(chain->servers.front());
  ASSERT_TRUE(runtime_->replica_map()
                  .ReportStale(chain->oid, 1, {chain->servers.front()})
                  .ok());
  EXPECT_EQ(runtime_->replica_map().Audit().stale_members, 1u);

  runtime_->storage_server(member).Restart();
  EXPECT_EQ(runtime_->replica_map().Audit().stale_members, 0u)
      << "restart did not re-register the store's holdings";

  auto scan = runtime_->replicator().RunScan();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->repaired, 0u);
  EXPECT_EQ(scan->failed, 0u);
  EXPECT_EQ(scan->bytes_copied, 0u);
  ExpectAllMembersHold(*chain, data);
}

// The inverse phantom: the store really lost the object across the restart.
// The holdings report marks it stale and the next scan re-replicates it
// from a survivor, byte-exactly, restoring the audit to fully replicated.
TEST_F(ReplicationTest, RepairRestoresReplicaLostAcrossRestart) {
  StartRuntime(/*servers=*/4, /*factor=*/3);
  auto chain = client_->CreateReplicatedObject(cap_, 2, 3);
  ASSERT_TRUE(chain.ok());
  // Three repair chunks at the fixture's 64 KiB repair_chunk_bytes, so the
  // final-chunk version stamp is exercised.
  Buffer data = PatternBuffer(192 << 10, 9);
  ASSERT_TRUE(client_->WriteReplicated(cap_, *chain, 0, ByteSpan(data)).ok());

  const auto victim = static_cast<int>(chain->servers.back());
  ASSERT_TRUE(runtime_->store(victim).Remove(chain->oid).ok());
  runtime_->storage_server(victim).Restart();
  auto audit = runtime_->replica_map().Audit();
  EXPECT_EQ(audit.under_replicated, 1u);
  EXPECT_EQ(audit.stale_members, 1u);

  auto scan = runtime_->replicator().RunScan();
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->repaired, 1u);
  EXPECT_EQ(scan->failed, 0u);
  EXPECT_GE(scan->bytes_copied, data.size());

  ExpectAllMembersHold(*chain, data);
  audit = runtime_->replica_map().Audit();
  EXPECT_EQ(audit.objects, 1u);
  EXPECT_EQ(audit.fully_replicated, 1u);
  EXPECT_EQ(audit.stale_members, 0u);
}

// ---------------------------------------------------------------------------
// Degraded writes and version catch-up
// ---------------------------------------------------------------------------

TEST_F(ReplicationTest, DegradedWriteReportsStaleAndRepairCatchesUp) {
  StartRuntime(/*servers=*/4, /*factor=*/3);
  auto chain = client_->CreateReplicatedObject(cap_, 0, 3);
  ASSERT_TRUE(chain.ok());
  Buffer first = PatternBuffer(4096, 10);
  ASSERT_TRUE(client_->WriteReplicated(cap_, *chain, 0, ByteSpan(first)).ok());

  // The tail goes dark mid-object: the next write still succeeds (degraded)
  // and reports the unreachable member to the registry.
  const std::uint32_t victim = chain->servers.back();
  const portals::Nid victim_nid = runtime_->deployment().storage[victim];
  runtime_->fabric().SetNodeDown(victim_nid, true);
  Buffer second = PatternBuffer(4096, 11);
  ASSERT_TRUE(
      client_->WriteReplicated(cap_, *chain, first.size(), ByteSpan(second))
          .ok());
  const auto stats = client_->replication_stats();
  EXPECT_GT(stats.degraded_writes, 0u);
  EXPECT_GT(stats.stale_reports, 0u);
  auto audit = client_->AuditReplicas();
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->under_replicated, 1u);

  // Victim comes back holding version 1 while the chain committed version
  // 2: the scan must copy the survivor bytes *and* catch the version up,
  // or the member would probe stale forever.
  runtime_->fabric().SetNodeDown(victim_nid, false);
  auto scan = runtime_->replicator().RunScan();
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->repaired, 1u);
  EXPECT_EQ(scan->failed, 0u);

  Buffer whole = first;
  whole.insert(whole.end(), second.begin(), second.end());
  ExpectAllMembersHold(*chain, whole);
  audit = client_->AuditReplicas();
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->fully_replicated, 1u);
  EXPECT_EQ(audit->stale_members, 0u);

  // And the registry stays converged: a second scan is a no-op.
  auto again = runtime_->replicator().RunScan();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->repaired, 0u);
  EXPECT_EQ(again->bytes_copied, 0u);
}

// A dead *middle* hop must be skipped, not allowed to sever the chain: the
// head forwards past it straight to the tail, so the write commits on every
// reachable member and only the dead one goes stale.  (Regression: the
// forwarder used to drop everything downstream of an unreachable hop,
// leaving a live, created-but-empty tail that reads would then trust.)
TEST_F(ReplicationTest, DeadMiddleHopIsSkippedNotSevered) {
  StartRuntime(/*servers=*/4, /*factor=*/3);
  auto chain = client_->CreateReplicatedObject(cap_, 0, 3);
  ASSERT_TRUE(chain.ok());

  const std::uint32_t middle = chain->servers[1];
  const std::uint32_t tail = chain->servers[2];
  runtime_->fabric().SetNodeDown(runtime_->deployment().storage[middle], true);

  Buffer data = PatternBuffer(32 << 10, 31);
  ASSERT_TRUE(client_->WriteReplicated(cap_, *chain, 0, ByteSpan(data)).ok());

  // The tail holds the full bytes even though the hop before it was dark.
  auto held = runtime_->store(static_cast<int>(tail))
                  .Read(chain->oid, 0, data.size());
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  EXPECT_EQ(*held, data);

  // Exactly the dead member is stale; the survivors are current.
  auto audit = client_->AuditReplicas();
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->under_replicated, 1u);
  EXPECT_EQ(audit->stale_members, 1u);
}

// ---------------------------------------------------------------------------
// Hedged / failover reads
// ---------------------------------------------------------------------------

TEST_F(ReplicationTest, ReadsSurviveDownHeadViaFailoverAndHedging) {
  StartRuntime(/*servers=*/4, /*factor=*/3, /*hedge_after_us=*/500);
  auto chain = client_->CreateReplicatedObject(cap_, 0, 3);
  ASSERT_TRUE(chain.ok());
  Buffer data = PatternBuffer(16 << 10, 21);
  ASSERT_TRUE(client_->WriteReplicated(cap_, *chain, 0, ByteSpan(data)).ok());

  const std::uint32_t head = chain->servers.front();
  const portals::Nid head_nid = runtime_->deployment().storage[head];

  // Latency hedge: the head answers, but every message touching it is
  // delayed 5 ms.  The hedge fires at 500 us, lands on a healthy member,
  // and its reply wins the race.
  runtime_->fabric().injector().SetNode(head_nid,
                                        {.delay = 1.0, .delay_us = 5000});
  Buffer out(data.size(), 0);
  auto n = client_->ReadReplicated(cap_, *chain, 0, MutableByteSpan(out));
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(out, data);
  auto stats = client_->replication_stats();
  EXPECT_GT(stats.hedged_reads, 0u);
  EXPECT_GT(stats.hedge_wins, 0u);
  runtime_->fabric().injector().Reset();

  // Dead head: the read fails over to a surviving member.
  runtime_->fabric().SetNodeDown(head_nid, true);
  std::fill(out.begin(), out.end(), 0);
  n = client_->ReadReplicated(cap_, *chain, 0, MutableByteSpan(out));
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(out, data);
  stats = client_->replication_stats();
  EXPECT_GT(stats.read_failovers, 0u);

  // Tripped breaker: the hedge fires immediately at issue time instead of
  // waiting out hedge_after_us.
  for (int i = 0; i < 10 && !client_->BreakerOpen(head_nid); ++i) {
    (void)client_->GetAttr(head, cap_, chain->oid);
  }
  ASSERT_TRUE(client_->BreakerOpen(head_nid));
  const std::uint64_t hedged_before = stats.hedged_reads;
  std::fill(out.begin(), out.end(), 0);
  n = client_->ReadReplicated(cap_, *chain, 0, MutableByteSpan(out));
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(out, data);
  stats = client_->replication_stats();
  EXPECT_GT(stats.hedged_reads, hedged_before);
}

// Satellite regression: a losing hedge must not strand its payload.  Before
// the slice read path, the loser's reply pushed a full object into a pinned
// landing buffer that was then thrown away; now the loser resolves to a
// ref-counted slice whose arrival is tallied (hedge_loser_bytes) and whose
// only cost is a refcount drop.
TEST_F(ReplicationTest, LosingHedgeReplyIsTalliedAndReleased) {
  StartRuntime(/*servers=*/4, /*factor=*/3, /*hedge_after_us=*/500);
  auto chain = client_->CreateReplicatedObject(cap_, 0, 3);
  ASSERT_TRUE(chain.ok());
  Buffer data = PatternBuffer(32 << 10, 23);
  ASSERT_TRUE(client_->WriteReplicated(cap_, *chain, 0, ByteSpan(data)).ok());

  // The head still answers, just 5 ms late: the hedge wins the race and the
  // head's full-payload reply lands as a loser after the read returned.
  const portals::Nid head_nid =
      runtime_->deployment().storage[chain->servers.front()];
  runtime_->fabric().injector().SetNode(head_nid,
                                        {.delay = 1.0, .delay_us = 5000});

  auto slice = client_->ReadReplicatedSlice(cap_, *chain, 0, data.size());
  ASSERT_TRUE(slice.ok()) << slice.status().ToString();
  ASSERT_EQ(slice->size(), data.size());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), slice->span().begin()));
  auto stats = client_->replication_stats();
  EXPECT_GT(stats.hedged_reads, 0u);
  EXPECT_GT(stats.hedge_wins, 0u);

  // The loser's late reply carries the whole object; poll until the tally
  // proves it was received, counted, and released rather than stranded.
  std::uint64_t tallied = 0;
  for (int i = 0; i < 500 && tallied < data.size(); ++i) {
    tallied = client_->replication_stats().hedge_loser_bytes;
    util::RealClockInstance()->SleepFor(std::chrono::milliseconds(1));
  }
  EXPECT_GE(tallied, data.size())
      << "the losing hedge's payload was never tallied (stranded or lost)";
}

// ---------------------------------------------------------------------------
// Replicated checkpoints end to end
// ---------------------------------------------------------------------------

TEST_F(ReplicationTest, ReplicatedCheckpointRoundTripsAndSurvivesOutage) {
  StartRuntime(/*servers=*/4, /*factor=*/3);
  ASSERT_TRUE(client_->Mkdir("/ckpt", true).ok());
  checkpoint::LwfsCheckpoint::Config config;
  config.path = "/ckpt/rep";
  config.cid = cid_;
  config.cap = cap_;
  config.replication_factor = 3;
  auto states = MakeStates(6, 2048, 77);
  auto stats = checkpoint::LwfsCheckpoint::Run(*runtime_, config, states);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->creates, 7u);  // 6 rank objects + the metadata object

  auto restored =
      checkpoint::LwfsCheckpoint::Restore(*runtime_, cap_, config.path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), states.size());
  for (std::size_t r = 0; r < states.size(); ++r) {
    EXPECT_EQ((*restored)[r], states[r]) << "rank " << r;
  }

  // The zero-copy restore returns every rank as a store-owned slice (the
  // hedged replicated reads ride the slice path too), byte-equal to Restore.
  auto slices =
      checkpoint::LwfsCheckpoint::RestoreSlices(*runtime_, cap_, config.path);
  ASSERT_TRUE(slices.ok()) << slices.status().ToString();
  ASSERT_EQ(slices->size(), states.size());
  for (std::size_t r = 0; r < states.size(); ++r) {
    ASSERT_EQ((*slices)[r].size(), states[r].size()) << "rank " << r;
    EXPECT_TRUE(std::equal(states[r].begin(), states[r].end(),
                           (*slices)[r].span().begin()))
        << "rank " << r;
  }

  auto audit = client_->AuditReplicas();
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->objects, 7u);
  EXPECT_EQ(audit->fully_replicated, 7u);

  // The whole checkpoint is still restorable with one server dark.
  runtime_->fabric().SetNodeDown(runtime_->deployment().storage[0], true);
  restored = checkpoint::LwfsCheckpoint::Restore(*runtime_, cap_, config.path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (std::size_t r = 0; r < states.size(); ++r) {
    EXPECT_EQ((*restored)[r], states[r]) << "rank " << r;
  }
}

}  // namespace
}  // namespace lwfs
