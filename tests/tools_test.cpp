// Tests for the operational tooling: the auto-refreshing capability
// holder (§5's expiry/refresh contrast with NASD) and the LwfsFs
// consistency checker.
#include <gtest/gtest.h>

#include "core/cap_holder.h"
#include "core/runtime.h"
#include "lwfsfs/lwfsfs.h"

namespace lwfs {
namespace {

class CapHolderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::RuntimeOptions options;
    options.storage_servers = 1;
    options.authn.now = [this] { return now_us_; };
    options.authn.credential_ttl_us = 1000LL * 1000 * 1000;  // long-lived
    options.authz.now = [this] { return now_us_; };
    options.authz.capability_ttl_us = 60LL * 1000 * 1000;  // 60 s caps
    runtime_ = core::ServiceRuntime::Start(options).value();
    runtime_->AddUser("u", "p", 1);
    client_ = runtime_->MakeClient();
    cred_ = client_->Login("u", "p").value();
    cid_ = client_->CreateContainer(cred_).value();
    cap_ = client_->GetCap(cred_, cid_, security::kOpAll).value();
  }

  std::int64_t now_us_ = 0;
  std::unique_ptr<core::ServiceRuntime> runtime_;
  std::unique_ptr<core::Client> client_;
  security::Credential cred_;
  storage::ContainerId cid_;
  security::Capability cap_;
};

TEST_F(CapHolderTest, NoRefreshWhileFresh) {
  core::CapHolder holder(client_.get(), cred_, cap_, [this] { return now_us_; });
  auto cap = holder.Get();
  ASSERT_TRUE(cap.ok());
  EXPECT_EQ(cap->cap_id, cap_.cap_id);
  EXPECT_EQ(holder.refreshes(), 0u);
}

TEST_F(CapHolderTest, RefreshesNearExpiry) {
  core::CapHolder holder(client_.get(), cred_, cap_, [this] { return now_us_; });
  // Advance time to within the 5 s default margin of the 60 s TTL.
  now_us_ = 56LL * 1000 * 1000;
  auto cap = holder.Get();
  ASSERT_TRUE(cap.ok()) << cap.status().ToString();
  EXPECT_NE(cap->cap_id, cap_.cap_id);  // a new issuance
  EXPECT_GT(cap->expires_us, cap_.expires_us);
  EXPECT_EQ(holder.refreshes(), 1u);
  // The refreshed capability actually works at the storage server.
  EXPECT_TRUE(client_->CreateObject(0, *cap).ok());
}

TEST_F(CapHolderTest, CheckpointGapSurvivesManyExpiries) {
  // The §5 scenario: long compute gaps between I/O bursts.  Each Get()
  // after a gap silently renews; the application never sees an expired
  // capability.
  core::CapHolder holder(client_.get(), cred_, cap_, [this] { return now_us_; });
  for (int burst = 1; burst <= 5; ++burst) {
    now_us_ += 120LL * 1000 * 1000;  // two full TTLs of computation
    auto cap = holder.Get();
    ASSERT_TRUE(cap.ok()) << "burst " << burst;
    ASSERT_TRUE(client_->CreateObject(0, *cap).ok()) << "burst " << burst;
  }
  EXPECT_EQ(holder.refreshes(), 5u);
}

TEST_F(CapHolderTest, RefreshDeniedAfterPolicyChangeSurfacesCleanly) {
  runtime_->AddUser("bob", "pw", 2);
  auto bob = runtime_->MakeClient();
  auto bob_cred = bob->Login("bob", "pw").value();
  ASSERT_TRUE(client_->SetGrant(cred_, cid_, 2, security::kOpWrite).ok());
  auto bob_cap = bob->GetCap(bob_cred, cid_, security::kOpWrite).value();
  core::CapHolder holder(bob.get(), bob_cred, bob_cap, [this] { return now_us_; });

  ASSERT_TRUE(client_->SetGrant(cred_, cid_, 2, security::kOpNone).ok());
  now_us_ = 58LL * 1000 * 1000;  // force a refresh attempt
  auto cap = holder.Get();
  EXPECT_EQ(cap.status().code(), ErrorCode::kPermissionDenied);
}

class FsckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::RuntimeOptions options;
    options.storage_servers = 3;
    runtime_ = core::ServiceRuntime::Start(options).value();
    runtime_->AddUser("u", "p", 1);
    client_ = runtime_->MakeClient();
    auto cred = client_->Login("u", "p").value();
    auto cid = client_->CreateContainer(cred).value();
    cap_ = client_->GetCap(cred, cid, security::kOpAll).value();
    fs_ = fs::LwfsFs::Mount(client_.get(), cap_, "/fs", {}).value();
  }

  std::unique_ptr<core::ServiceRuntime> runtime_;
  std::unique_ptr<core::Client> client_;
  security::Capability cap_;
  std::unique_ptr<fs::LwfsFs> fs_;
};

TEST_F(FsckTest, CleanFileSystemIsClean) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  auto a = fs_->Create("/d/a").value();
  ASSERT_TRUE(fs_->Write(a, 0, ByteSpan(Buffer(1000, 1))).ok());
  ASSERT_TRUE(fs_->Create("/b").ok());
  auto report = fs_->Fsck().value();
  EXPECT_EQ(report.files, 2u);
  EXPECT_EQ(report.directories, 2u);  // root + /d
  EXPECT_TRUE(report.orphans.empty());
  EXPECT_TRUE(report.broken_files.empty());
  // 2 files x (inode + 3 stripes) reachable.
  EXPECT_EQ(report.reachable_objects, 2u * 4u);
}

TEST_F(FsckTest, DetectsAndRemovesOrphans) {
  ASSERT_TRUE(fs_->Create("/kept").ok());
  // Debris: objects created outside the file system (a crashed writer
  // that never linked a name).
  ASSERT_TRUE(client_->CreateObject(1, cap_).ok());
  ASSERT_TRUE(client_->CreateObject(2, cap_).ok());

  auto report = fs_->Fsck().value();
  EXPECT_EQ(report.orphans.size(), 2u);

  auto cleaned = fs_->Fsck(/*remove_orphans=*/true).value();
  EXPECT_EQ(cleaned.orphans.size(), 2u);
  auto again = fs_->Fsck().value();
  EXPECT_TRUE(again.orphans.empty());
  // The kept file is untouched.
  EXPECT_TRUE(fs_->Open("/kept").ok());
}

TEST_F(FsckTest, DetectsBrokenInode) {
  auto file = fs_->Create("/victim").value();
  // Corrupt the inode object directly.
  ASSERT_TRUE(client_
                  ->WriteObject(file.inode.server_index, cap_, file.inode.oid,
                                0, ByteSpan(Buffer(4, 0xFF)))
                  .ok());
  auto report = fs_->Fsck().value();
  ASSERT_EQ(report.broken_files.size(), 1u);
  EXPECT_EQ(report.broken_files[0], "/victim");
  EXPECT_EQ(report.files, 0u);
  // Its stripe objects are now unreachable debris.
  EXPECT_FALSE(report.orphans.empty());
}

TEST_F(FsckTest, AbortedTransactionLeavesNothingForFsck) {
  // The paper's transactional checkpoint never leaks: create objects in a
  // txn, abort, fsck finds no orphans.
  core::TxnParticipants participants;
  participants.storage_servers = {0, 1, 2};
  auto txn = client_->BeginTxn(0, cap_, participants).value();
  ASSERT_TRUE(client_->CreateObject(1, cap_, txn->id()).ok());
  ASSERT_TRUE(client_->CreateObject(2, cap_, txn->id()).ok());
  ASSERT_TRUE(txn->Abort().ok());
  auto report = fs_->Fsck().value();
  // Only the journal object remains (created outside the fs namespace).
  EXPECT_LE(report.orphans.size(), 1u);
}

}  // namespace
}  // namespace lwfs
