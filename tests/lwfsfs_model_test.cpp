// Model-checking LwfsFs: long random operation sequences compared against
// a trivially-correct in-memory reference file, across a parameter grid of
// consistency mode × stripe size × server count.
#include <gtest/gtest.h>

#include <map>

#include "core/runtime.h"
#include "lwfsfs/lwfsfs.h"
#include "util/rng.h"

namespace lwfs::fs {
namespace {

struct ModelParams {
  FsConsistency consistency;
  std::uint32_t stripe_size;
  int servers;
};

std::string ParamName(const ::testing::TestParamInfo<ModelParams>& info) {
  std::string name = info.param.consistency == FsConsistency::kPosix
                         ? "Posix"
                         : "Relaxed";
  name += "S" + std::to_string(info.param.stripe_size);
  name += "N" + std::to_string(info.param.servers);
  return name;
}

class LwfsFsModelTest : public ::testing::TestWithParam<ModelParams> {
 protected:
  void SetUp() override {
    core::RuntimeOptions options;
    options.storage_servers = GetParam().servers;
    runtime_ = core::ServiceRuntime::Start(options).value();
    runtime_->AddUser("u", "p", 1);
    client_ = runtime_->MakeClient();
    auto cred = client_->Login("u", "p").value();
    auto cid = client_->CreateContainer(cred).value();
    auto cap = client_->GetCap(cred, cid, security::kOpAll).value();
    FsOptions fs_options;
    fs_options.consistency = GetParam().consistency;
    fs_options.stripe_size = GetParam().stripe_size;
    fs_ = LwfsFs::Mount(client_.get(), cap, "/m", fs_options).value();
  }

  std::unique_ptr<core::ServiceRuntime> runtime_;
  std::unique_ptr<core::Client> client_;
  std::unique_ptr<LwfsFs> fs_;
};

TEST_P(LwfsFsModelTest, RandomOpsMatchReferenceModel) {
  Rng rng(GetParam().stripe_size * 31 +
          static_cast<std::uint64_t>(GetParam().servers));
  auto file = fs_->Create("/model").value();
  Buffer model;  // the reference file content

  constexpr int kSteps = 250;
  constexpr std::uint64_t kMaxOffset = 60000;
  for (int step = 0; step < kSteps; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.45) {
      // Random write.
      const std::uint64_t offset = rng.NextBelow(kMaxOffset);
      Buffer data = PatternBuffer(1 + rng.NextBelow(8000), rng.NextU64());
      ASSERT_TRUE(fs_->Write(file, offset, ByteSpan(data)).ok())
          << "step " << step;
      if (model.size() < offset + data.size()) {
        model.resize(offset + data.size(), 0);
      }
      std::copy(data.begin(), data.end(),
                model.begin() + static_cast<std::ptrdiff_t>(offset));
    } else if (roll < 0.85) {
      // Random read, compared byte for byte.
      const std::uint64_t offset = rng.NextBelow(kMaxOffset + 5000);
      const std::uint64_t len = 1 + rng.NextBelow(10000);
      Buffer out(len, 0xEE);
      auto n = fs_->Read(file, offset, MutableByteSpan(out));
      ASSERT_TRUE(n.ok()) << "step " << step;
      Buffer expect;
      if (offset < model.size()) {
        const std::uint64_t m = std::min<std::uint64_t>(len, model.size() - offset);
        expect.assign(model.begin() + static_cast<std::ptrdiff_t>(offset),
                      model.begin() + static_cast<std::ptrdiff_t>(offset + m));
      }
      ASSERT_EQ(*n, expect.size()) << "step " << step;
      out.resize(static_cast<std::size_t>(*n));
      ASSERT_EQ(out, expect) << "step " << step;
    } else if (roll < 0.95) {
      // Truncate (shrink or grow).
      const std::uint64_t size = rng.NextBelow(kMaxOffset);
      ASSERT_TRUE(fs_->Truncate(file, size).ok()) << "step " << step;
      model.resize(size, 0);
    } else {
      // Size check (flush first so POSIX mode publishes).
      ASSERT_TRUE(fs_->Flush(file).ok());
      auto size = fs_->Size(file);
      ASSERT_TRUE(size.ok());
      ASSERT_EQ(*size, model.size()) << "step " << step;
    }
  }

  // Final: full-content equality.
  ASSERT_TRUE(fs_->Flush(file).ok());
  Buffer out(model.size() + 100, 0);
  auto n = fs_->Read(file, 0, MutableByteSpan(out));
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, model.size());
  out.resize(model.size());
  EXPECT_EQ(out, model);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LwfsFsModelTest,
    ::testing::Values(ModelParams{FsConsistency::kPosix, 512, 4},
                      ModelParams{FsConsistency::kPosix, 4096, 2},
                      ModelParams{FsConsistency::kPosix, 1 << 16, 3},
                      ModelParams{FsConsistency::kRelaxed, 512, 4},
                      ModelParams{FsConsistency::kRelaxed, 4096, 1},
                      ModelParams{FsConsistency::kRelaxed, 1000, 5}),
    ParamName);

// Placement policy unit coverage.
class PlacementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::RuntimeOptions options;
    options.storage_servers = 4;
    runtime_ = core::ServiceRuntime::Start(options).value();
    runtime_->AddUser("u", "p", 1);
    client_ = runtime_->MakeClient();
    auto cred = client_->Login("u", "p").value();
    auto cid = client_->CreateContainer(cred).value();
    cap_ = client_->GetCap(cred, cid, security::kOpAll).value();
    fs_ = LwfsFs::Mount(client_.get(), cap_, "/p", {}).value();
  }

  std::unique_ptr<core::ServiceRuntime> runtime_;
  std::unique_ptr<core::Client> client_;
  security::Capability cap_;
  std::unique_ptr<LwfsFs> fs_;
};

TEST_F(PlacementTest, ExplicitPlacementIsHonoured) {
  const std::uint32_t placement[] = {3, 1, 3};
  auto file = fs_->CreateWithPlacement("/placed", placement).value();
  ASSERT_EQ(file.stripes.size(), 3u);
  EXPECT_EQ(file.stripes[0].ost_index, 3u);
  EXPECT_EQ(file.stripes[1].ost_index, 1u);
  EXPECT_EQ(file.stripes[2].ost_index, 3u);
  // Round-trip through the inode.
  auto reopened = fs_->Open("/placed").value();
  EXPECT_EQ(reopened.stripes[2].ost_index, 3u);
  // I/O still works with repeated servers in the layout.
  Buffer data = PatternBuffer(50000, 1);
  ASSERT_TRUE(fs_->Write(file, 0, ByteSpan(data)).ok());
  Buffer out(50000, 0);
  auto n = fs_->Read(file, 0, MutableByteSpan(out));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, data);
}

TEST_F(PlacementTest, BadPlacementRejected) {
  EXPECT_FALSE(fs_->CreateWithPlacement("/bad", {}).ok());
  const std::uint32_t out_of_range[] = {0, 9};
  EXPECT_FALSE(fs_->CreateWithPlacement("/bad", out_of_range).ok());
}

}  // namespace
}  // namespace lwfs::fs
