// Tests for the transaction substrate: range locks, journal, and
// two-phase commit with failure injection (§3.4).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "storage/object_store.h"
#include "txn/journal.h"
#include "util/bytes.h"
#include "txn/lock_table.h"
#include "txn/two_phase.h"
#include "util/clock.h"

namespace lwfs::txn {
namespace {

// ---- LockTable ----------------------------------------------------------------

TEST(LockTableTest, SharedLocksCoexist) {
  LockTable table;
  LockKey key{1, 10};
  auto a = table.TryAcquire(key, {0, 100}, LockMode::kShared, 1);
  auto b = table.TryAcquire(key, {0, 100}, LockMode::kShared, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(table.held_count(), 2u);
}

TEST(LockTableTest, ExclusiveConflictsWithShared) {
  LockTable table;
  LockKey key{1, 10};
  ASSERT_TRUE(table.TryAcquire(key, {0, 100}, LockMode::kShared, 1).ok());
  auto b = table.TryAcquire(key, {50, 150}, LockMode::kExclusive, 2);
  EXPECT_EQ(b.status().code(), ErrorCode::kResourceExhausted);
}

TEST(LockTableTest, DisjointRangesDoNotConflict) {
  LockTable table;
  LockKey key{1, 10};
  ASSERT_TRUE(table.TryAcquire(key, {0, 100}, LockMode::kExclusive, 1).ok());
  EXPECT_TRUE(table.TryAcquire(key, {100, 200}, LockMode::kExclusive, 2).ok());
}

TEST(LockTableTest, DifferentResourcesAreIndependent) {
  LockTable table;
  ASSERT_TRUE(
      table.TryAcquire({1, 10}, {0, 100}, LockMode::kExclusive, 1).ok());
  EXPECT_TRUE(
      table.TryAcquire({1, 11}, {0, 100}, LockMode::kExclusive, 2).ok());
  EXPECT_TRUE(
      table.TryAcquire({2, 10}, {0, 100}, LockMode::kExclusive, 3).ok());
}

TEST(LockTableTest, SameOwnerIsReentrant) {
  LockTable table;
  LockKey key{1, 10};
  ASSERT_TRUE(table.TryAcquire(key, {0, 100}, LockMode::kExclusive, 1).ok());
  EXPECT_TRUE(table.TryAcquire(key, {0, 100}, LockMode::kExclusive, 1).ok());
}

TEST(LockTableTest, ReleaseWakesConflictingRequest) {
  LockTable table;
  LockKey key{1, 10};
  auto a = table.TryAcquire(key, {0, 100}, LockMode::kExclusive, 1);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(table.TryAcquire(key, {0, 100}, LockMode::kExclusive, 2).ok());
  ASSERT_TRUE(table.Release(*a).ok());
  EXPECT_TRUE(table.TryAcquire(key, {0, 100}, LockMode::kExclusive, 2).ok());
}

TEST(LockTableTest, ReleaseUnknownLockFails) {
  LockTable table;
  EXPECT_EQ(table.Release(12345).code(), ErrorCode::kNotFound);
}

TEST(LockTableTest, BlockingAcquireWaitsForRelease) {
  LockTable table;
  LockKey key{1, 10};
  auto held = table.TryAcquire(key, {0, 100}, LockMode::kExclusive, 1);
  ASSERT_TRUE(held.ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    LockId id = table.AcquireBlocking(key, {0, 100}, LockMode::kExclusive, 2);
    acquired.store(true);
    ASSERT_TRUE(table.Release(id).ok());
  });
  util::RealClockInstance()->SleepFor(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  ASSERT_TRUE(table.Release(*held).ok());
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(LockTableTest, FairnessBlocksLateArrivals) {
  LockTable table;
  LockKey key{1, 10};
  auto held = table.TryAcquire(key, {0, 100}, LockMode::kExclusive, 1);
  ASSERT_TRUE(held.ok());
  std::thread waiter([&] {
    LockId id = table.AcquireBlocking(key, {0, 100}, LockMode::kExclusive, 2);
    ASSERT_TRUE(table.Release(id).ok());
  });
  // Give the waiter time to enqueue, then a third owner tries a disjoint?
  // No — same range: TryAcquire must refuse while owner 2 is queued, even
  // after release makes the range technically free.
  util::RealClockInstance()->SleepFor(std::chrono::milliseconds(20));
  EXPECT_EQ(table.waiting_count(), 1u);
  EXPECT_FALSE(table.TryAcquire(key, {200, 300}, LockMode::kExclusive, 3).ok());
  ASSERT_TRUE(table.Release(*held).ok());
  waiter.join();
}

TEST(LockTableTest, ReleaseAllForOwner) {
  LockTable table;
  ASSERT_TRUE(table.TryAcquire({1, 1}, {0, 10}, LockMode::kExclusive, 7).ok());
  ASSERT_TRUE(table.TryAcquire({1, 2}, {0, 10}, LockMode::kExclusive, 7).ok());
  ASSERT_TRUE(table.TryAcquire({1, 3}, {0, 10}, LockMode::kExclusive, 8).ok());
  table.ReleaseAllForOwner(7);
  EXPECT_EQ(table.held_count(), 1u);
}

TEST(LockTableTest, ManyThreadsNeverDoubleGrant) {
  LockTable table;
  LockKey key{1, 1};
  std::atomic<int> inside{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        LockId id = table.AcquireBlocking(key, {0, 10}, LockMode::kExclusive,
                                          static_cast<LockOwner>(t + 1));
        if (inside.fetch_add(1) != 0) violation.store(true);
        std::this_thread::yield();
        inside.fetch_sub(1);
        ASSERT_TRUE(table.Release(id).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(table.held_count(), 0u);
}

// ---- Journal -------------------------------------------------------------------

class JournalTest : public ::testing::Test {
 protected:
  storage::MemObjectStore store_;
};

TEST_F(JournalTest, AppendAndReadBack) {
  auto journal = Journal::Create(&store_, storage::ContainerId{1});
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->Append({RecordType::kBegin, 7, Buffer{1, 2}}).ok());
  ASSERT_TRUE(journal->Append({RecordType::kCommit, 7, {}}).ok());
  auto records = journal->ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].type, RecordType::kBegin);
  EXPECT_EQ((*records)[0].txid, 7u);
  EXPECT_EQ((*records)[0].payload, (Buffer{1, 2}));
  EXPECT_EQ((*records)[1].type, RecordType::kCommit);
}

TEST_F(JournalTest, OutcomeProgression) {
  auto journal = Journal::Create(&store_, storage::ContainerId{1});
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(*journal->Outcome(9), TxnOutcome::kUnknown);
  ASSERT_TRUE(journal->Append({RecordType::kBegin, 9, {}}).ok());
  EXPECT_EQ(*journal->Outcome(9), TxnOutcome::kInDoubt);
  ASSERT_TRUE(journal->Append({RecordType::kPrepared, 9, {}}).ok());
  EXPECT_EQ(*journal->Outcome(9), TxnOutcome::kInDoubt);
  ASSERT_TRUE(journal->Append({RecordType::kCommit, 9, {}}).ok());
  EXPECT_EQ(*journal->Outcome(9), TxnOutcome::kCommitted);
  ASSERT_TRUE(journal->Append({RecordType::kEnd, 9, {}}).ok());
  EXPECT_EQ(*journal->Outcome(9), TxnOutcome::kFinished);
}

TEST_F(JournalTest, ToleratesTornTail) {
  auto journal = Journal::Create(&store_, storage::ContainerId{1});
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->Append({RecordType::kBegin, 1, {}}).ok());
  // Simulate a crash mid-append: write a partial record at the end.
  auto attr = store_.GetAttr(journal->oid());
  ASSERT_TRUE(attr.ok());
  Buffer partial = {3, 0, 0};  // half of a record type field
  ASSERT_TRUE(store_.Write(journal->oid(), attr->size, ByteSpan(partial)).ok());
  auto records = journal->ReadAll();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);
}

TEST_F(JournalTest, DetectsCorruptRecord) {
  auto journal = Journal::Create(&store_, storage::ContainerId{1});
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->Append({RecordType::kBegin, 1, Buffer{7, 7, 7}}).ok());
  ASSERT_TRUE(journal->Append({RecordType::kCommit, 1, {}}).ok());
  // Flip a byte inside the first record's txid field.  The type-range check
  // cannot catch this — only the per-record checksum can.
  Buffer flip = {0xFF};
  ASSERT_TRUE(store_.Write(journal->oid(), 5, ByteSpan(flip)).ok());
  auto records = journal->ReadAll();
  EXPECT_EQ(records.status().code(), ErrorCode::kDataLoss);
}

TEST_F(JournalTest, ToleratesTruncatedChecksum) {
  auto journal = Journal::Create(&store_, storage::ContainerId{1});
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->Append({RecordType::kBegin, 1, {}}).ok());
  // A crash can tear a record anywhere, including inside the trailing
  // checksum.  Hand-encode a full record body but cut the crc short.
  Encoder enc;
  enc.PutU32(static_cast<std::uint32_t>(RecordType::kCommit));
  enc.PutU64(1);
  enc.PutBytes({});
  enc.PutU16(0xBEEF);  // two bytes where four bytes of crc should be
  auto attr = store_.GetAttr(journal->oid());
  ASSERT_TRUE(attr.ok());
  ASSERT_TRUE(
      store_.Write(journal->oid(), attr->size, ByteSpan(enc.buffer())).ok());
  auto records = journal->ReadAll();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);  // torn tail dropped, prefix intact
}

TEST_F(JournalTest, UnfinishedListsPendingTxns) {
  auto journal = Journal::Create(&store_, storage::ContainerId{1});
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->Append({RecordType::kBegin, 1, {}}).ok());
  ASSERT_TRUE(journal->Append({RecordType::kBegin, 2, {}}).ok());
  ASSERT_TRUE(journal->Append({RecordType::kCommit, 2, {}}).ok());
  ASSERT_TRUE(journal->Append({RecordType::kBegin, 3, {}}).ok());
  ASSERT_TRUE(journal->Append({RecordType::kCommit, 3, {}}).ok());
  ASSERT_TRUE(journal->Append({RecordType::kEnd, 3, {}}).ok());
  auto pending = journal->Unfinished();
  ASSERT_TRUE(pending.ok());
  EXPECT_EQ(*pending, (std::vector<TxnId>{1, 2}));
}

// ---- Two-phase commit -------------------------------------------------------------

class TwoPhaseTest : public ::testing::Test {
 protected:
  TwoPhaseTest() {
    auto journal = Journal::Create(&store_, storage::ContainerId{1});
    journal_ = std::make_unique<Journal>(*journal);
  }

  storage::MemObjectStore store_;
  std::unique_ptr<Journal> journal_;
};

TEST_F(TwoPhaseTest, CommitRunsApplies) {
  StagedParticipant a("a"), b("b");
  Coordinator coord(journal_.get());
  auto txid = coord.Begin({&a, &b});
  ASSERT_TRUE(txid.ok());
  int applied = 0;
  a.StageApply(*txid, [&] {
    ++applied;
    return OkStatus();
  });
  b.StageApply(*txid, [&] {
    ++applied;
    return OkStatus();
  });
  ASSERT_TRUE(coord.Commit(*txid).ok());
  EXPECT_EQ(applied, 2);
  EXPECT_EQ(*journal_->Outcome(*txid), TxnOutcome::kFinished);
  EXPECT_EQ(a.open_txns(), 0u);
}

TEST_F(TwoPhaseTest, AbortRunsUndosInReverse) {
  StagedParticipant a("a");
  Coordinator coord(journal_.get());
  auto txid = coord.Begin({&a});
  ASSERT_TRUE(txid.ok());
  std::vector<int> undone;
  a.AddUndo(*txid, [&] { undone.push_back(1); });
  a.AddUndo(*txid, [&] { undone.push_back(2); });
  int applied = 0;
  a.StageApply(*txid, [&] {
    ++applied;
    return OkStatus();
  });
  ASSERT_TRUE(coord.Abort(*txid).ok());
  EXPECT_EQ(applied, 0);
  EXPECT_EQ(undone, (std::vector<int>{2, 1}));  // reverse order
  EXPECT_EQ(*journal_->Outcome(*txid), TxnOutcome::kFinished);
}

TEST_F(TwoPhaseTest, NoVoteAborts) {
  StagedParticipant a("a"), b("b");
  Coordinator coord(journal_.get());
  auto txid = coord.Begin({&a, &b});
  ASSERT_TRUE(txid.ok());
  bool b_undone = false;
  b.AddUndo(*txid, [&] { b_undone = true; });
  a.Join(*txid);
  a.FailNextPrepare(*txid);
  Status s = coord.Commit(*txid);
  EXPECT_EQ(s.code(), ErrorCode::kAborted);
  EXPECT_TRUE(b_undone);
}

TEST_F(TwoPhaseTest, ParticipantOpsAreIdempotent) {
  StagedParticipant a("a");
  EXPECT_TRUE(a.Commit(999).ok());
  EXPECT_TRUE(a.Abort(999).ok());
  EXPECT_TRUE(*a.Prepare(999));
}

TEST_F(TwoPhaseTest, CrashAfterPrepareRecoversToAbort) {
  StagedParticipant a("a");
  Coordinator coord(journal_.get());
  auto txid = coord.Begin({&a});
  ASSERT_TRUE(txid.ok());
  bool undone = false;
  int applied = 0;
  a.AddUndo(*txid, [&] { undone = true; });
  a.StageApply(*txid, [&] {
    ++applied;
    return OkStatus();
  });
  coord.SetCrashPoint(CrashPoint::kAfterPrepare);
  EXPECT_EQ(coord.Commit(*txid).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(applied, 0);

  // Recovery: no COMMIT decision in the journal => presumed abort.
  std::map<std::string, Participant*> registry = {{"a", &a}};
  ASSERT_TRUE(Coordinator::Recover(journal_.get(), registry).ok());
  EXPECT_TRUE(undone);
  EXPECT_EQ(applied, 0);
  EXPECT_EQ(*journal_->Outcome(*txid), TxnOutcome::kFinished);
}

TEST_F(TwoPhaseTest, CrashAfterCommitRecordRecoversToCommit) {
  StagedParticipant a("a");
  Coordinator coord(journal_.get());
  auto txid = coord.Begin({&a});
  ASSERT_TRUE(txid.ok());
  int applied = 0;
  a.StageApply(*txid, [&] {
    ++applied;
    return OkStatus();
  });
  coord.SetCrashPoint(CrashPoint::kAfterCommitRecord);
  EXPECT_EQ(coord.Commit(*txid).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(applied, 0);  // decision durable but never delivered

  std::map<std::string, Participant*> registry = {{"a", &a}};
  ASSERT_TRUE(Coordinator::Recover(journal_.get(), registry).ok());
  EXPECT_EQ(applied, 1);  // recovery delivered the commit
  EXPECT_EQ(*journal_->Outcome(*txid), TxnOutcome::kFinished);
}

TEST_F(TwoPhaseTest, RecoverySkipsFinishedTransactions) {
  StagedParticipant a("a");
  Coordinator coord(journal_.get());
  auto txid = coord.Begin({&a});
  ASSERT_TRUE(txid.ok());
  int applied = 0;
  a.StageApply(*txid, [&] {
    ++applied;
    return OkStatus();
  });
  ASSERT_TRUE(coord.Commit(*txid).ok());
  std::map<std::string, Participant*> registry = {{"a", &a}};
  ASSERT_TRUE(Coordinator::Recover(journal_.get(), registry).ok());
  EXPECT_EQ(applied, 1);  // not applied twice
}

TEST_F(TwoPhaseTest, RecoveryFailsOnMissingParticipant) {
  StagedParticipant a("a");
  Coordinator coord(journal_.get());
  auto txid = coord.Begin({&a});
  ASSERT_TRUE(txid.ok());
  coord.SetCrashPoint(CrashPoint::kAfterPrepare);
  (void)coord.Commit(*txid);
  std::map<std::string, Participant*> registry;  // empty!
  EXPECT_EQ(Coordinator::Recover(journal_.get(), registry).code(),
            ErrorCode::kUnavailable);
}

TEST_F(TwoPhaseTest, DistinctTxnIds) {
  StagedParticipant a("a");
  Coordinator coord(journal_.get());
  auto t1 = coord.Begin({&a});
  auto t2 = coord.Begin({&a});
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_NE(*t1, *t2);
}

TEST_F(TwoPhaseTest, CommitUnknownTxnFails) {
  Coordinator coord(journal_.get());
  EXPECT_EQ(coord.Commit(424242).code(), ErrorCode::kNotFound);
  EXPECT_EQ(coord.Abort(424242).code(), ErrorCode::kNotFound);
}

// ---- Crash-point × recovery matrix ----------------------------------------
//
// One harness drives every CrashPoint through the same commit-then-recover
// sequence and asserts the transaction converges to exactly one durable
// outcome: committed work applied once, aborted work undone once, never both.

struct CrashMatrixCase {
  const char* name;
  CrashPoint crash;
  bool commit_fails;   // does Commit() report the simulated crash?
  int applied_after;   // staged applies delivered after recovery
  bool undone_after;   // undo log ran after recovery
};

class TwoPhaseCrashMatrixTest
    : public TwoPhaseTest,
      public ::testing::WithParamInterface<CrashMatrixCase> {};

TEST_P(TwoPhaseCrashMatrixTest, RecoveryConvergesToSingleOutcome) {
  const CrashMatrixCase& c = GetParam();
  SCOPED_TRACE(c.name);
  StagedParticipant a("a"), b("b");
  Coordinator coord(journal_.get());
  auto txid = coord.Begin({&a, &b});
  ASSERT_TRUE(txid.ok());
  int applied = 0;
  bool undone = false;
  for (StagedParticipant* p : {&a, &b}) {
    p->AddUndo(*txid, [&] { undone = true; });
    p->StageApply(*txid, [&] {
      ++applied;
      return OkStatus();
    });
  }

  coord.SetCrashPoint(c.crash);
  Status commit = coord.Commit(*txid);
  if (c.commit_fails) {
    EXPECT_EQ(commit.code(), ErrorCode::kUnavailable);
    EXPECT_EQ(applied, 0);  // crash struck before any delivery
  } else {
    ASSERT_TRUE(commit.ok());
  }

  // Recovery must be safe to run whether or not a crash happened.
  std::map<std::string, Participant*> registry = {{"a", &a}, {"b", &b}};
  ASSERT_TRUE(Coordinator::Recover(journal_.get(), registry).ok());

  EXPECT_EQ(applied, c.applied_after);
  EXPECT_EQ(undone, c.undone_after);
  EXPECT_FALSE(c.applied_after > 0 && c.undone_after);  // never both
  EXPECT_EQ(*journal_->Outcome(*txid), TxnOutcome::kFinished);
  EXPECT_EQ(a.open_txns(), 0u);
  EXPECT_EQ(b.open_txns(), 0u);

  // Recovery is idempotent: a second pass changes nothing.
  ASSERT_TRUE(Coordinator::Recover(journal_.get(), registry).ok());
  EXPECT_EQ(applied, c.applied_after);
  EXPECT_EQ(undone, c.undone_after);
}

INSTANTIATE_TEST_SUITE_P(
    AllCrashPoints, TwoPhaseCrashMatrixTest,
    ::testing::Values(
        CrashMatrixCase{"NoCrash", CrashPoint::kNone, false, 2, false},
        CrashMatrixCase{"AfterPrepare", CrashPoint::kAfterPrepare, true, 0,
                        true},
        CrashMatrixCase{"AfterCommitRecord", CrashPoint::kAfterCommitRecord,
                        true, 2, false}),
    [](const ::testing::TestParamInfo<CrashMatrixCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace lwfs::txn
