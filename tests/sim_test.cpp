// Tests for the discrete-event engine and its queued resources.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/resources.h"

namespace lwfs::sim {
namespace {

TEST(EngineTest, EventsFireInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.At(3.0, [&] { order.push_back(3); });
  eng.At(1.0, [&] { order.push_back(1); });
  eng.At(2.0, [&] { order.push_back(2); });
  eng.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.Now(), 3.0);
}

TEST(EngineTest, TiesBreakFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.At(1.0, [&, i] { order.push_back(i); });
  }
  eng.RunUntilIdle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EngineTest, NestedSchedulingAdvancesTime) {
  Engine eng;
  double fired_at = -1;
  eng.After(1.0, [&] { eng.After(2.0, [&] { fired_at = eng.Now(); }); });
  eng.RunUntilIdle();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine eng;
  int fired = 0;
  eng.At(1.0, [&] { ++fired; });
  eng.At(5.0, [&] { ++fired; });
  eng.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(eng.Now(), 2.0);
  eng.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, CoroutineDelayAccumulates) {
  Engine eng;
  double done_at = -1;
  eng.Spawn([](Engine& e, double& out) -> Task {
    co_await e.Delay(1.5);
    co_await e.Delay(0.25);
    out = e.Now();
  }(eng, done_at));
  eng.RunUntilIdle();
  EXPECT_DOUBLE_EQ(done_at, 1.75);
  EXPECT_EQ(eng.live_processes(), 0u);
}

TEST(EngineTest, SubTaskAwaitResumesParent) {
  Engine eng;
  std::vector<int> order;
  struct Helper {
    static Task Child(Engine& e, std::vector<int>& ord) {
      ord.push_back(1);
      co_await e.Delay(1.0);
      ord.push_back(2);
    }
    static Task Parent(Engine& e, std::vector<int>& ord) {
      co_await Child(e, ord);
      ord.push_back(3);
    }
  };
  eng.Spawn(Helper::Parent(eng, order));
  eng.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(FifoResourceTest, SingleSlotSerializes) {
  Engine eng;
  FifoResource res(&eng, 1);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    eng.Spawn([](Engine& e, FifoResource& r, std::vector<double>& d) -> Task {
      co_await r.Use(2.0);
      d.push_back(e.Now());
    }(eng, res, done));
  }
  eng.RunUntilIdle();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 4.0);
  EXPECT_DOUBLE_EQ(done[2], 6.0);
  EXPECT_EQ(res.served(), 3u);
  EXPECT_DOUBLE_EQ(res.busy_time(), 6.0);
  EXPECT_DOUBLE_EQ(res.Utilization(6.0), 1.0);
}

TEST(FifoResourceTest, MultiSlotRunsConcurrently) {
  Engine eng;
  FifoResource res(&eng, 2);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) {
    eng.Spawn([](Engine& e, FifoResource& r, std::vector<double>& d) -> Task {
      co_await r.Use(1.0);
      d.push_back(e.Now());
    }(eng, res, done));
  }
  eng.RunUntilIdle();
  ASSERT_EQ(done.size(), 4u);
  // Two at a time: finish at t=1,1,2,2.
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 1.0);
  EXPECT_DOUBLE_EQ(done[2], 2.0);
  EXPECT_DOUBLE_EQ(done[3], 2.0);
}

TEST(PipeTest, TransferTimeIsBandwidthPlusLatency) {
  Engine eng;
  Pipe pipe(&eng, /*bytes_per_sec=*/100.0, /*latency=*/0.5);
  double done_at = -1;
  eng.Spawn([](Engine& e, Pipe& p, double& out) -> Task {
    co_await p.Transfer(200);  // 2s of bandwidth + 0.5s latency
    out = e.Now();
  }(eng, pipe, done_at));
  eng.RunUntilIdle();
  EXPECT_DOUBLE_EQ(done_at, 2.5);
}

TEST(PipeTest, BandwidthIsSharedSerially) {
  Engine eng;
  Pipe pipe(&eng, 100.0, 0.0);
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    eng.Spawn([](Engine& e, Pipe& p, std::vector<double>& d) -> Task {
      co_await p.Transfer(100);
      d.push_back(e.Now());
    }(eng, pipe, done));
  }
  eng.RunUntilIdle();
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Engine eng;
  Semaphore sem(&eng, 1);
  std::vector<double> acquired_at;
  for (int i = 0; i < 2; ++i) {
    eng.Spawn([](Engine& e, Semaphore& s, std::vector<double>& d) -> Task {
      co_await s.Acquire();
      d.push_back(e.Now());
      co_await e.Delay(1.0);
      s.Release();
    }(eng, sem, acquired_at));
  }
  eng.RunUntilIdle();
  ASSERT_EQ(acquired_at.size(), 2u);
  EXPECT_DOUBLE_EQ(acquired_at[0], 0.0);
  EXPECT_DOUBLE_EQ(acquired_at[1], 1.0);
}

TEST(SemaphoreTest, ReleaseWithoutWaitersRestoresCount) {
  Engine eng;
  Semaphore sem(&eng, 0);
  sem.Release();
  EXPECT_EQ(sem.available(), 1u);
}

TEST(LatchTest, WaitersResumeAtZero) {
  Engine eng;
  Latch latch(&eng, 2);
  double resumed_at = -1;
  eng.Spawn([](Engine& e, Latch& l, double& out) -> Task {
    co_await l.Wait();
    out = e.Now();
  }(eng, latch, resumed_at));
  eng.After(1.0, [&] { latch.CountDown(); });
  eng.After(2.0, [&] { latch.CountDown(); });
  eng.RunUntilIdle();
  EXPECT_DOUBLE_EQ(resumed_at, 2.0);
}

TEST(LatchTest, WaitAfterZeroIsImmediate) {
  Engine eng;
  Latch latch(&eng, 0);
  bool resumed = false;
  eng.Spawn([](Latch& l, bool& out) -> Task {
    co_await l.Wait();
    out = true;
  }(latch, resumed));
  eng.RunUntilIdle();
  EXPECT_TRUE(resumed);
}

TEST(EngineTest, DeterministicAcrossRuns) {
  auto run = [] {
    Engine eng;
    FifoResource res(&eng, 2);
    double last = 0;
    for (int i = 0; i < 50; ++i) {
      eng.Spawn([](Engine& e, FifoResource& r, double& out, int i) -> Task {
        co_await e.Delay(0.1 * i);
        co_await r.Use(0.37);
        out = e.Now();
      }(eng, res, last, i));
    }
    eng.RunUntilIdle();
    return last;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace lwfs::sim
