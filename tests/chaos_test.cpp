// Chaos soak (§3.2, §3.4): checkpoints, naming, and two-phase commit must
// survive a lossy, corrupting fabric with their invariants intact:
//
//  * no double-apply — a transaction's effects land exactly once however
//    many times its messages are retransmitted;
//  * no torn commits — a name is either fully published with byte-exact
//    data behind it, or cleanly absent;
//  * crash + restart converges — journal replay finishes every in-doubt
//    transaction and the circuit breaker opens and closes around the outage.
//
// The soak runs at 1% message drop + 0.1% corruption over three fixed seeds
// (override with LWFS_CHAOS_SEED=<n> to run one seed, as CI does).  Every
// assertion is wrapped in a SCOPED_TRACE carrying the seed so a failure
// names the reproducer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "core/client.h"
#include "core/runtime.h"
#include "util/clock.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/shared_buffer.h"

namespace lwfs {
namespace {

// Per-seed workload sizes.  Three seeds give >= 210 checkpoint epochs and
// >= 105 distributed transactions per soak in default (all-seed) runs.
constexpr int kEpochsPerSeed = 70;
constexpr int kTxnsPerSeed = 35;

std::vector<std::uint64_t> ChaosSeeds() {
  if (const char* env = std::getenv("LWFS_CHAOS_SEED")) {
    return {std::strtoull(env, nullptr, 0)};
  }
  return {0xC0FFEE01, 0xDEADF00D, 0x5EEDBEEF};
}

std::vector<Buffer> MakeStates(std::uint32_t nranks, std::size_t bytes,
                               std::uint64_t salt) {
  std::vector<Buffer> states;
  states.reserve(nranks);
  for (std::uint32_t r = 0; r < nranks; ++r) {
    states.push_back(PatternBuffer(bytes, salt * 1000 + r));
  }
  return states;
}

class ChaosTest : public ::testing::Test {
 protected:
  /// Start a deployment tuned for fault soaking: short reply deadlines so
  /// injected losses resolve in milliseconds, and a deep retransmit budget
  /// so a 1% drop rate essentially never exhausts a call.
  void StartRuntime(int servers, std::uint64_t seed) {
    core::RuntimeOptions options;
    options.storage_servers = servers;
    options.client_options.default_timeout = std::chrono::milliseconds(50);
    options.client_options.max_retransmits = 8;
    auto rt = core::ServiceRuntime::Start(options);
    ASSERT_TRUE(rt.ok()) << rt.status().ToString();
    client_.reset();
    runtime_ = std::move(*rt);
    runtime_->AddUser("app", "secret", 100);

    client_ = runtime_->MakeClient();
    auto cred = client_->Login("app", "secret");
    ASSERT_TRUE(cred.ok());
    auto cid = client_->CreateContainer(*cred);
    ASSERT_TRUE(cid.ok());
    cid_ = *cid;
    auto cap = client_->GetCap(*cred, *cid, security::kOpAll);
    ASSERT_TRUE(cap.ok());
    cap_ = *cap;

    runtime_->fabric().injector().Seed(seed);
  }

  /// Make every message touching a *service* lossy.  Client<->client links
  /// (none here) and the checkpoint library's internal communicators stay
  /// clean: the collectives are not fault-tolerant, the services are.
  void InjectServiceFaults(const portals::FaultSpec& spec) {
    const core::Deployment& d = runtime_->deployment();
    auto& injector = runtime_->fabric().injector();
    injector.SetNode(d.authn, spec);
    injector.SetNode(d.authz, spec);
    injector.SetNode(d.naming, spec);
    injector.SetNode(d.locks, spec);
    for (portals::Nid nid : d.storage) injector.SetNode(nid, spec);
  }

  std::unique_ptr<core::ServiceRuntime> runtime_;
  std::unique_ptr<core::Client> client_;
  storage::ContainerId cid_{};
  security::Capability cap_;
};

// ---------------------------------------------------------------------------
// Checkpoint soak: every epoch fully readable or cleanly absent
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, CheckpointSoakUnderLossAndCorruption) {
  for (std::uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("LWFS_CHAOS_SEED=" + std::to_string(seed));
    StartRuntime(/*servers=*/3, seed);
    ASSERT_TRUE(client_->Mkdir("/ckpt", true).ok());
    InjectServiceFaults({.drop = 0.01, .corrupt = 0.001});

    int succeeded = 0;
    for (int epoch = 0; epoch < kEpochsPerSeed; ++epoch) {
      SCOPED_TRACE("epoch " + std::to_string(epoch));
      checkpoint::LwfsCheckpoint::Config config;
      config.path = "/ckpt/run" + std::to_string(epoch);
      config.cid = cid_;
      config.cap = cap_;
      auto states =
          MakeStates(4, 512 + 128 * (epoch % 3), seed ^ (std::uint64_t)epoch);
      auto stats = checkpoint::LwfsCheckpoint::Run(*runtime_, config, states);
      if (stats.ok()) {
        // Fully readable: restore through the same lossy fabric and compare
        // byte for byte.  The restore itself can hit injected corruption —
        // surfacing as a clean kDataLoss is the detection machinery working,
        // so retry; what must never happen is an *accepted* wrong byte or a
        // half-applied commit, which the comparison below would catch.
        auto restored = checkpoint::LwfsCheckpoint::Restore(
            *runtime_, cap_, config.path);
        for (int attempt = 0; attempt < 5 && !restored.ok(); ++attempt) {
          restored =
              checkpoint::LwfsCheckpoint::Restore(*runtime_, cap_, config.path);
        }
        ASSERT_TRUE(restored.ok()) << restored.status().ToString();
        ASSERT_EQ(restored->size(), states.size());
        for (std::size_t r = 0; r < states.size(); ++r) {
          ASSERT_EQ((*restored)[r], states[r]) << "rank " << r;
        }
        ++succeeded;
      } else {
        // Cleanly absent: a failed checkpoint must not leave the name
        // behind (the 2PC abort dropped the staged link).
        EXPECT_EQ(client_->LookupName(config.path).status().code(),
                  ErrorCode::kNotFound);
      }
    }
    // A 1% drop rate against an 8-retransmit budget should essentially
    // always converge; require a substantial majority so the soak can't
    // silently degrade into testing nothing but the failure path.
    EXPECT_GE(succeeded, kEpochsPerSeed * 3 / 4);

    // The fabric really was hostile, and the recovery machinery really ran.
    auto robustness = runtime_->TotalRobustnessStats();
    EXPECT_GT(robustness.faults.drops, 0u);
    EXPECT_GT(robustness.rpc.served, 0u);

    // System is not wedged: with faults cleared, one more checkpoint runs
    // end to end.
    runtime_->fabric().injector().Reset();
    checkpoint::LwfsCheckpoint::Config final_config;
    final_config.path = "/ckpt/final";
    final_config.cid = cid_;
    final_config.cap = cap_;
    auto states = MakeStates(4, 512, seed);
    ASSERT_TRUE(
        checkpoint::LwfsCheckpoint::Run(*runtime_, final_config, states).ok());
    auto restored =
        checkpoint::LwfsCheckpoint::Restore(*runtime_, cap_, "/ckpt/final");
    ASSERT_TRUE(restored.ok());
  }
}

// ---------------------------------------------------------------------------
// Zero-copy budget under chaos: payload bytes are never staged
// ---------------------------------------------------------------------------

// Run slice-based checkpoints through a lossy, corrupting fabric and check
// the zero-copy invariant survives retransmits, dedup replays, and
// injected corruption: rank payloads cross the stack without one staging
// copy.  Staging bytes observed during the soak can only come from the
// small control-plane writes (metadata object, transaction journal), so
// they must stay a sliver of the payload volume — if slices silently fell
// back to the staged path, kStage would jump by ~100% of payload.
void SliceCheckpointBudgetSoak(core::ServiceRuntime& runtime,
                               core::Client& client,
                               storage::ContainerId cid,
                               const security::Capability& cap,
                               std::uint64_t seed) {
  constexpr int kEpochs = 6;
  constexpr std::uint32_t kRanks = 4;
  constexpr std::size_t kStateBytes = 64 << 10;

  ASSERT_TRUE(client.Mkdir("/zc", true).ok());
  const util::CopySnapshot base = util::CopyStats::Snapshot();
  std::uint64_t payload_bytes = 0;
  int succeeded = 0;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    SCOPED_TRACE("epoch " + std::to_string(epoch));
    checkpoint::LwfsCheckpoint::Config config;
    config.path = "/zc/run" + std::to_string(epoch);
    config.cid = cid;
    config.cap = cap;
    std::vector<util::SharedSlice> states;
    std::vector<Buffer> plain;  // reference copies for the byte comparison
    for (std::uint32_t r = 0; r < kRanks; ++r) {
      plain.push_back(PatternBuffer(kStateBytes, seed * 100 + r));
      states.push_back(util::SharedSlice::FromBuffer(Buffer(plain.back())));
    }
    payload_bytes += kRanks * kStateBytes;
    auto stats = checkpoint::LwfsCheckpoint::Run(runtime, config, states);
    if (!stats.ok()) continue;
    ++succeeded;
    auto restored = checkpoint::LwfsCheckpoint::Restore(runtime, cap,
                                                        config.path);
    for (int attempt = 0; attempt < 5 && !restored.ok(); ++attempt) {
      restored = checkpoint::LwfsCheckpoint::Restore(runtime, cap,
                                                     config.path);
    }
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    ASSERT_EQ(restored->size(), plain.size());
    for (std::size_t r = 0; r < plain.size(); ++r) {
      ASSERT_EQ((*restored)[r], plain[r]) << "rank " << r;
    }
  }
  EXPECT_GE(succeeded, kEpochs / 2);
  if (util::CopyStats::Enabled()) {
    const util::CopySnapshot d = util::CopyStats::Snapshot().Since(base);
    EXPECT_LT(d.bytes_of(util::CopyKind::kStage), payload_bytes / 8)
        << "payload bytes are being staged on the zero-copy path";
    // Every successful epoch's payload did reach the stores' medium.
    EXPECT_GE(d.bytes_of(util::CopyKind::kStore),
              static_cast<std::uint64_t>(succeeded) * kRanks * kStateBytes);
  }
}

TEST_F(ChaosTest, SliceCheckpointNeverStagesPayloadUnderFaults) {
  const std::uint64_t seed = ChaosSeeds().front();
  SCOPED_TRACE("LWFS_CHAOS_SEED=" + std::to_string(seed));
  StartRuntime(/*servers=*/3, seed);
  InjectServiceFaults({.drop = 0.01, .corrupt = 0.001});
  SliceCheckpointBudgetSoak(*runtime_, *client_, cid_, cap_, seed);
}

TEST(VirtualChaosTest, SliceCheckpointNeverStagesPayloadOnVirtualTime) {
  const std::uint64_t seed = ChaosSeeds().front();
  SCOPED_TRACE("LWFS_CHAOS_SEED=" + std::to_string(seed));
  util::VirtualClock clock;
  util::Clock::ThreadGuard guard(&clock);
  core::RuntimeOptions options;
  options.storage_servers = 3;
  options.clock = &clock;
  options.client_options.default_timeout = std::chrono::milliseconds(50);
  options.client_options.max_retransmits = 8;
  options.authn.credential_ttl_us = 365LL * 24 * 3600 * 1000 * 1000;
  options.authz.capability_ttl_us = 365LL * 24 * 3600 * 1000 * 1000;
  auto rt = core::ServiceRuntime::Start(options);
  ASSERT_TRUE(rt.ok());
  core::ServiceRuntime& runtime = **rt;
  runtime.AddUser("app", "secret", 100);
  auto client = runtime.MakeClient();
  auto cred = client->Login("app", "secret");
  ASSERT_TRUE(cred.ok());
  auto cid = client->CreateContainer(*cred);
  ASSERT_TRUE(cid.ok());
  auto cap = client->GetCap(*cred, *cid, security::kOpAll);
  ASSERT_TRUE(cap.ok());
  runtime.fabric().injector().Seed(seed);
  const core::Deployment& d = runtime.deployment();
  auto& injector = runtime.fabric().injector();
  const portals::FaultSpec spec{.drop = 0.01, .corrupt = 0.001};
  injector.SetNode(d.authn, spec);
  injector.SetNode(d.authz, spec);
  injector.SetNode(d.naming, spec);
  injector.SetNode(d.locks, spec);
  for (portals::Nid nid : d.storage) injector.SetNode(nid, spec);
  SliceCheckpointBudgetSoak(runtime, *client, *cid, *cap, seed);
}

// ---------------------------------------------------------------------------
// Two-phase commit soak: exactly-once effects under loss and duplication
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, TwoPhaseCommitSoakAppliesExactlyOnce) {
  for (std::uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("LWFS_CHAOS_SEED=" + std::to_string(seed));
    StartRuntime(/*servers=*/2, seed);
    ASSERT_TRUE(client_->Mkdir("/txn", true).ok());
    InjectServiceFaults({.drop = 0.01, .corrupt = 0.001});

    Rng rng(seed);
    core::TxnParticipants participants;
    participants.storage_servers = {0, 1};
    participants.naming = true;

    for (int i = 0; i < kTxnsPerSeed; ++i) {
      SCOPED_TRACE("txn " + std::to_string(i));
      const std::string path = "/txn/t" + std::to_string(i);
      auto txn = client_->BeginTxn(0, cap_, participants);
      if (!txn.ok()) continue;  // journal create lost; nothing staged yet

      // The object count probe is direct memory access (no RPC), so it is
      // exact even while the fabric is lossy.
      const std::uint64_t objects_before = runtime_->store(1).ObjectCount();
      auto oid = client_->CreateObject(1, cap_, (*txn)->id());
      if (!oid.ok()) {
        EXPECT_TRUE((*txn)->Abort().ok() || true);  // best-effort cleanup
        continue;
      }
      Buffer payload = PatternBuffer(64 + (i % 5) * 32, seed + (unsigned)i);
      Status wrote = client_->WriteObject(1, cap_, *oid, 0, ByteSpan(payload));
      Status staged = client_->StageLinkName(
          (*txn)->id(), path, storage::ObjectRef{cid_, 1, *oid});

      const bool want_commit = wrote.ok() && staged.ok() && rng.NextBelow(10) < 7;
      Status outcome = want_commit ? (*txn)->Commit() : (*txn)->Abort();
      if (!outcome.ok() && want_commit) {
        // Ambiguous commit (a 2PC message exhausted its retransmit budget):
        // replay the journal until the transaction converges, exactly as a
        // restarted coordinator would.  The fabric is still lossy, so the
        // recovery client gets the same deep retransmit budget.
        rpc::ClientOptions ropts;
        ropts.default_timeout = std::chrono::milliseconds(50);
        ropts.max_retransmits = 8;
        rpc::RpcClient recovery_rpc(runtime_->fabric().CreateNic(), ropts);
        core::RemoteParticipant s0(&recovery_rpc,
                                   runtime_->deployment().storage[0],
                                   "storage:0");
        core::RemoteParticipant s1(&recovery_rpc,
                                   runtime_->deployment().storage[1],
                                   "storage:1");
        core::RemoteParticipant nm(&recovery_rpc, runtime_->deployment().naming,
                                   "naming");
        std::map<std::string, txn::Participant*> registry = {
            {"storage:0", &s0}, {"storage:1", &s1}, {"naming", &nm}};
        Status recovered = txn::Coordinator::Recover((*txn)->journal(), registry);
        for (int attempt = 0; attempt < 10 && !recovered.ok(); ++attempt) {
          recovered = txn::Coordinator::Recover((*txn)->journal(), registry);
        }
        ASSERT_TRUE(recovered.ok()) << recovered.ToString();
      }

      // Converged state must be all-or-nothing, never torn.  The verify
      // reads run through the still-lossy fabric, so transient detected
      // failures (kDataLoss / kTimeout) retry; a wrong *accepted* byte or a
      // torn name can never be retried away and fails below.
      auto ref = client_->LookupName(path);
      for (int attempt = 0;
           attempt < 5 && !ref.ok() &&
           ref.status().code() != ErrorCode::kNotFound;
           ++attempt) {
        ref = client_->LookupName(path);
      }
      if (ref.ok()) {
        auto back =
            client_->ReadObjectAlloc(1, cap_, *oid, 0, payload.size());
        for (int attempt = 0; attempt < 5 && !back.ok(); ++attempt) {
          back = client_->ReadObjectAlloc(1, cap_, *oid, 0, payload.size());
        }
        ASSERT_TRUE(back.ok()) << back.status().ToString();
        EXPECT_EQ(*back, payload);  // applied exactly once, byte-exact
      } else {
        EXPECT_EQ(ref.status().code(), ErrorCode::kNotFound);
        if (!want_commit && outcome.ok()) {
          // A clean abort must have compensated the eager create away.
          EXPECT_EQ(runtime_->store(1).ObjectCount(), objects_before);
        }
      }
    }

    // Dedup absorbed duplicated requests somewhere in the soak (at 1% drop
    // across thousands of messages, retransmission is a certainty).
    auto robustness = runtime_->TotalRobustnessStats();
    EXPECT_GT(robustness.faults.drops, 0u);
    EXPECT_GT(robustness.rpc.dedup_hits, 0u);
  }
}

// ---------------------------------------------------------------------------
// Crash mid-transaction: journal replay + circuit breaker open/close
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, StorageCrashMidTxnRecoversViaJournalReplay) {
  StartRuntime(/*servers=*/2, /*seed=*/1);
  ASSERT_TRUE(client_->Mkdir("/txn", true).ok());
  const portals::Nid victim = runtime_->deployment().storage[1];

  // A client with a hair-trigger breaker so the outage is observable fast.
  core::Deployment deployment = runtime_->deployment();
  rpc::ClientOptions copts;
  copts.default_timeout = std::chrono::milliseconds(30);
  copts.max_retransmits = 1;
  copts.breaker_threshold = 3;
  copts.breaker_cooldown = std::chrono::milliseconds(100);
  core::Client client(runtime_->fabric().CreateNic(), deployment, copts);

  core::TxnParticipants participants;
  participants.storage_servers = {0, 1};
  participants.naming = true;
  auto txn = client.BeginTxn(0, cap_, participants);
  ASSERT_TRUE(txn.ok()) << txn.status().ToString();
  auto oid = client.CreateObject(1, cap_, (*txn)->id());
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(client
                  .StageLinkName((*txn)->id(), "/txn/crash",
                                 storage::ObjectRef{cid_, 1, *oid})
                  .ok());

  // Kill storage server 1 mid-transaction: the commit cannot complete.
  runtime_->fabric().SetNodeDown(victim, true);
  EXPECT_FALSE((*txn)->Commit().ok());

  // Repeated contact failures open the breaker; once open, calls are
  // refused instantly instead of burning a timeout each.
  for (int i = 0; i < 10 && !client.BreakerOpen(victim); ++i) {
    (void)client.GetAttr(1, cap_, *oid);
  }
  EXPECT_TRUE(client.BreakerOpen(victim));
  EXPECT_EQ(client.GetAttr(1, cap_, *oid).status().code(),
            ErrorCode::kUnavailable);
  EXPECT_GT(client.rpc_stats().breaker_fast_fails, 0u);

  // Crash recovery: bring the node back, rebuild its volatile state, and
  // replay the coordinator journal.  No COMMIT record was written, so
  // presumed abort finishes the transaction everywhere (including the
  // naming server, which drops the staged link).
  runtime_->fabric().SetNodeDown(victim, false);
  runtime_->storage_server(1).Restart();
  rpc::RpcClient recovery_rpc(runtime_->fabric().CreateNic());
  core::RemoteParticipant s0(&recovery_rpc, deployment.storage[0],
                             "storage:0");
  core::RemoteParticipant s1(&recovery_rpc, deployment.storage[1],
                             "storage:1");
  core::RemoteParticipant nm(&recovery_rpc, deployment.naming, "naming");
  std::map<std::string, txn::Participant*> registry = {
      {"storage:0", &s0}, {"storage:1", &s1}, {"naming", &nm}};
  ASSERT_TRUE(txn::Coordinator::Recover((*txn)->journal(), registry).ok());
  EXPECT_EQ(*(*txn)->journal()->Outcome((*txn)->id()),
            txn::TxnOutcome::kFinished);
  EXPECT_EQ(client_->LookupName("/txn/crash").status().code(),
            ErrorCode::kNotFound);

  // Breaker closes via a half-open probe once the server answers again.
  util::RealClockInstance()->SleepFor(copts.breaker_cooldown +
                              std::chrono::milliseconds(20));
  EXPECT_TRUE(client.GetAttr(1, cap_, *oid).ok());  // probe succeeds
  EXPECT_FALSE(client.BreakerOpen(victim));

  // Full end-to-end recovery: a fresh transaction commits cleanly.
  auto txn2 = client.BeginTxn(0, cap_, participants);
  ASSERT_TRUE(txn2.ok());
  auto oid2 = client.CreateObject(1, cap_, (*txn2)->id());
  ASSERT_TRUE(oid2.ok());
  Buffer data = {1, 2, 3};
  ASSERT_TRUE(client.WriteObject(1, cap_, *oid2, 0, ByteSpan(data)).ok());
  ASSERT_TRUE(client
                  .StageLinkName((*txn2)->id(), "/txn/after",
                                 storage::ObjectRef{cid_, 1, *oid2})
                  .ok());
  ASSERT_TRUE((*txn2)->Commit().ok());
  auto ref = client.LookupName("/txn/after");
  ASSERT_TRUE(ref.ok());
  auto back = client.ReadObjectAlloc(1, cap_, *oid2, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(ChaosTest, NamingServerRestartPreservesCommittedNames) {
  StartRuntime(/*servers=*/2, /*seed=*/2);
  ASSERT_TRUE(client_->Mkdir("/dir", true).ok());
  auto oid = client_->CreateObject(0, cap_);
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(
      client_->LinkName("/dir/a", storage::ObjectRef{cid_, 0, *oid}).ok());

  // Restart rebuilds the service from its own snapshot: committed names
  // survive, staged (uncommitted) links and the reply cache do not.
  ASSERT_TRUE(runtime_->naming_server().Restart().ok());

  auto ref = client_->LookupName("/dir/a");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->oid, *oid);
  EXPECT_TRUE(client_->Mkdir("/dir/deeper", true).ok());  // still writable
}

// ---------------------------------------------------------------------------
// Partition: both sides degrade cleanly and heal
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, PartitionHealsWithoutStateDamage) {
  StartRuntime(/*servers=*/2, /*seed=*/3);
  auto oid = client_->CreateObject(0, cap_);
  ASSERT_TRUE(oid.ok());
  Buffer data = PatternBuffer(256, 7);
  ASSERT_TRUE(client_->WriteObject(0, cap_, *oid, 0, ByteSpan(data)).ok());

  // Cut the client off from storage server 0 only: every message between
  // the two vanishes until the partition heals.
  const portals::Nid storage0 = runtime_->deployment().storage[0];
  runtime_->fabric().injector().Partition(client_->nid(), storage0, true);
  Buffer out(data.size(), 0);
  EXPECT_FALSE(client_->ReadObject(0, cap_, *oid, 0, MutableByteSpan(out)).ok());

  // Other services are unaffected during the partition.
  EXPECT_TRUE(client_->Mkdir("/during-partition", true).ok());

  runtime_->fabric().injector().Partition(client_->nid(), storage0, false);
  auto bytes = client_->ReadObject(0, cap_, *oid, 0, MutableByteSpan(out));
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, data.size());
  EXPECT_EQ(out, data);  // nothing was torn by the outage
}

// ---------------------------------------------------------------------------
// Replica kill mid-epoch: zero data loss at replication >= 2
// ---------------------------------------------------------------------------

// The kill-a-replica matrix: for each chaos seed, one storage server is
// crashed in the middle of every checkpoint epoch — either *before* its
// next delivery is applied and acked (the message dies with the node) or
// *after* it (the replica commits, acks, then dies).  At replication
// factor 3 both arms must lose nothing: the epoch completes, restores
// byte-exactly while the victim is still dark, and after heal + restart
// the repair scanner restores full replication (replica-count audit).
TEST_F(ChaosTest, ReplicatedCheckpointSurvivesReplicaKillMidEpoch) {
  constexpr int kReplicatedEpochs = 6;
  for (std::uint64_t seed : ChaosSeeds()) {
    for (const bool crash_after : {false, true}) {
      SCOPED_TRACE("LWFS_CHAOS_SEED=" + std::to_string(seed) +
                   (crash_after ? " crash=after-ack" : " crash=before-ack"));
      StartRuntime(/*servers=*/4, seed);
      ASSERT_TRUE(client_->Mkdir("/rep", true).ok());
      Rng rng(seed);
      for (int epoch = 0; epoch < kReplicatedEpochs; ++epoch) {
        SCOPED_TRACE("epoch " + std::to_string(epoch));
        const auto victim = static_cast<std::uint32_t>(rng.NextBelow(4));
        const portals::Nid victim_nid = runtime_->deployment().storage[victim];
        if (crash_after) {
          runtime_->fabric().injector().CrashAfterDelivery(victim_nid);
        } else {
          runtime_->fabric().injector().CrashBeforeDelivery(victim_nid);
        }

        checkpoint::LwfsCheckpoint::Config config;
        config.path = "/rep/run" + std::to_string(epoch);
        config.cid = cid_;
        config.cap = cap_;
        config.replication_factor = 3;
        auto states =
            MakeStates(4, 1024 + 256 * (epoch % 3), seed ^ (std::uint64_t)epoch);
        auto stats = checkpoint::LwfsCheckpoint::Run(*runtime_, config, states);
        // Zero data loss: every epoch commits despite the mid-epoch crash
        // (a chain is 3 of 4 servers; one victim can never take out all
        // members, so writes degrade instead of failing)...
        ASSERT_TRUE(stats.ok()) << stats.status().ToString();

        // ...and restores byte-exactly while the victim is still dark.
        auto restored =
            checkpoint::LwfsCheckpoint::Restore(*runtime_, cap_, config.path);
        ASSERT_TRUE(restored.ok()) << restored.status().ToString();
        ASSERT_EQ(restored->size(), states.size());
        for (std::size_t r = 0; r < states.size(); ++r) {
          ASSERT_EQ((*restored)[r], states[r]) << "rank " << r;
        }

        // Heal: the victim restarts (re-registering its real holdings) and
        // the repair scan restores full replication before the next epoch.
        runtime_->fabric().SetNodeDown(victim_nid, false);
        runtime_->storage_server(static_cast<int>(victim)).Restart();
        auto scan = runtime_->replicator().RunScan();
        ASSERT_TRUE(scan.ok()) << scan.status().ToString();
        EXPECT_EQ(scan->failed, 0u);
        const auto audit = runtime_->replica_map().Audit();
        EXPECT_EQ(audit.under_replicated, 0u) << "repair did not converge";
        EXPECT_EQ(audit.stale_members, 0u);
        EXPECT_EQ(audit.fully_replicated, audit.objects);
      }
      // The matrix really killed nodes.
      EXPECT_GT(runtime_->TotalRobustnessStats().faults.crashes, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Virtual time: same seed => bit-identical chaos runs
// ---------------------------------------------------------------------------

// One reduced chaos soak on a fresh deployment driven entirely by a
// VirtualClock, returning a trace of everything observable about the run:
// per-epoch checkpoint outcomes, virtual timestamps, robustness and
// scheduler counters, and a CRC digest of every object left in every store.
// Two traces are equal iff the two runs were indistinguishable.
std::string VirtualSoakTrace(std::uint64_t seed) {
  constexpr int kEpochs = 8;
  util::VirtualClock clock;
  std::ostringstream trace;
  {
    util::Clock::ThreadGuard guard(&clock);
    core::RuntimeOptions options;
    options.storage_servers = 3;
    options.clock = &clock;
    options.client_options.default_timeout = std::chrono::milliseconds(50);
    options.client_options.max_retransmits = 8;
    // Idle virtual waits jump time by hours in one step; stretch credential
    // and capability lifetimes so the modeled run can never expire them.
    options.authn.credential_ttl_us = 365LL * 24 * 3600 * 1000 * 1000;
    options.authz.capability_ttl_us = 365LL * 24 * 3600 * 1000 * 1000;
    auto rt = core::ServiceRuntime::Start(options);
    if (!rt.ok()) return "start: " + rt.status().ToString();
    core::ServiceRuntime& runtime = **rt;
    runtime.AddUser("app", "secret", 100);
    auto client = runtime.MakeClient();
    auto cred = client->Login("app", "secret");
    if (!cred.ok()) return "login: " + cred.status().ToString();
    auto cid = client->CreateContainer(*cred);
    if (!cid.ok()) return "container: " + cid.status().ToString();
    auto cap = client->GetCap(*cred, *cid, security::kOpAll);
    if (!cap.ok()) return "cap: " + cap.status().ToString();
    if (!client->Mkdir("/ckpt", true).ok()) return "mkdir failed";

    runtime.fabric().injector().Seed(seed);
    const core::Deployment& d = runtime.deployment();
    auto& injector = runtime.fabric().injector();
    const portals::FaultSpec spec{.drop = 0.01, .corrupt = 0.001};
    injector.SetNode(d.authn, spec);
    injector.SetNode(d.authz, spec);
    injector.SetNode(d.naming, spec);
    injector.SetNode(d.locks, spec);
    for (portals::Nid nid : d.storage) injector.SetNode(nid, spec);

    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      checkpoint::LwfsCheckpoint::Config config;
      config.path = "/ckpt/run" + std::to_string(epoch);
      config.cid = *cid;
      config.cap = *cap;
      auto states =
          MakeStates(4, 512 + 128 * (epoch % 3), seed ^ (std::uint64_t)epoch);
      auto stats = checkpoint::LwfsCheckpoint::Run(runtime, config, states);
      trace << "epoch " << epoch << ": ";
      if (stats.ok()) {
        trace << "ok creates=" << stats->creates << " bytes=" << stats->bytes;
      } else {
        trace << "err " << stats.status().ToString();
      }
      trace << " t_us=" << clock.NowUs() << "\n";
    }

    auto rob = runtime.TotalRobustnessStats();
    trace << "rpc served=" << rob.rpc.served
          << " dedup=" << rob.rpc.dedup_hits
          << " crc_drops=" << rob.rpc.crc_drops << "\n";
    trace << "faults drops=" << rob.faults.drops
          << " dup=" << rob.faults.duplicates
          << " corrupt=" << rob.faults.corruptions
          << " delays=" << rob.faults.delays
          << " partition=" << rob.faults.partition_drops
          << " crashes=" << rob.faults.crashes << "\n";
    auto sched = runtime.TotalSchedStats();
    trace << "sched requests=" << sched.requests << " runs=" << sched.runs
          << " merges=" << sched.merges
          << " coalesced=" << sched.coalesced_bytes
          << " hwm=" << sched.queue_depth_hwm << "\n";

    for (int i = 0; i < runtime.storage_count(); ++i) {
      auto oids = runtime.store(i).List(*cid);
      if (!oids.ok()) return "list: " + oids.status().ToString();
      std::sort(oids->begin(), oids->end());
      for (storage::ObjectId oid : *oids) {
        auto attr = runtime.store(i).GetAttr(oid);
        if (!attr.ok()) return "getattr: " + attr.status().ToString();
        auto data = runtime.store(i).Read(oid, 0, attr->size);
        if (!data.ok()) return "read: " + data.status().ToString();
        trace << "store " << i << " oid=" << oid.value
              << " size=" << attr->size << " crc=" << Crc32(ByteSpan(*data))
              << "\n";
      }
    }
    trace << "t_end_us=" << clock.NowUs() << "\n";
  }
  return trace.str();
}

TEST(VirtualChaosTest, SameSeedRunsAreBitDeterministic) {
  const std::uint64_t seed = ChaosSeeds().front();
  SCOPED_TRACE("LWFS_CHAOS_SEED=" + std::to_string(seed));
  const std::string golden = VirtualSoakTrace(seed);
  // Sanity: the run actually did work on virtual time before comparing.
  ASSERT_NE(golden.find("t_end_us="), std::string::npos) << golden;
  EXPECT_NE(golden.find("epoch 0: ok"), std::string::npos) << golden;
  for (int run = 1; run < 3; ++run) {
    SCOPED_TRACE("run " + std::to_string(run));
    EXPECT_EQ(VirtualSoakTrace(seed), golden);
  }
}

// Replicated soak on the virtual clock: replication factor 3, a replica
// crashed in the middle of every epoch (alternating crash-before-delivery
// and crash-after-delivery), then heal + restart + repair scan.  The trace
// records every epoch outcome, restore digest, scan summary, audit counts,
// replication counters, and the per-store object CRCs, so bit-identical
// traces mean the whole write/crash/repair cycle is deterministic.
std::string VirtualReplicatedSoakTrace(std::uint64_t seed) {
  constexpr int kEpochs = 6;
  constexpr int kServers = 4;
  util::VirtualClock clock;
  std::ostringstream trace;
  {
    util::Clock::ThreadGuard guard(&clock);
    core::RuntimeOptions options;
    options.storage_servers = kServers;
    options.clock = &clock;
    options.client_options.default_timeout = std::chrono::milliseconds(50);
    options.client_options.max_retransmits = 8;
    options.authn.credential_ttl_us = 365LL * 24 * 3600 * 1000 * 1000;
    options.authz.capability_ttl_us = 365LL * 24 * 3600 * 1000 * 1000;
    options.replication.replication_factor = 3;
    auto rt = core::ServiceRuntime::Start(options);
    if (!rt.ok()) return "start: " + rt.status().ToString();
    core::ServiceRuntime& runtime = **rt;
    runtime.AddUser("app", "secret", 100);
    auto client = runtime.MakeClient();
    auto cred = client->Login("app", "secret");
    if (!cred.ok()) return "login: " + cred.status().ToString();
    auto cid = client->CreateContainer(*cred);
    if (!cid.ok()) return "container: " + cid.status().ToString();
    auto cap = client->GetCap(*cred, *cid, security::kOpAll);
    if (!cap.ok()) return "cap: " + cap.status().ToString();
    if (!client->Mkdir("/rep", true).ok()) return "mkdir failed";

    runtime.fabric().injector().Seed(seed);
    const core::Deployment& d = runtime.deployment();

    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      const int victim = epoch % kServers;
      const portals::Nid victim_nid = d.storage[victim];
      if (epoch % 2 == 0) {
        runtime.fabric().injector().CrashBeforeDelivery(victim_nid);
      } else {
        runtime.fabric().injector().CrashAfterDelivery(victim_nid);
      }

      checkpoint::LwfsCheckpoint::Config config;
      config.path = "/rep/run" + std::to_string(epoch);
      config.cid = *cid;
      config.cap = *cap;
      config.replication_factor = 3;
      auto states =
          MakeStates(4, 512 + 128 * (epoch % 3), seed ^ (std::uint64_t)epoch);
      auto stats = checkpoint::LwfsCheckpoint::Run(runtime, config, states);
      trace << "epoch " << epoch << ": ";
      if (stats.ok()) {
        trace << "ok creates=" << stats->creates << " bytes=" << stats->bytes;
      } else {
        trace << "err " << stats.status().ToString();
      }

      // Restore with the victim still dark: zero data loss means every
      // rank comes back byte-exact from the surviving replicas.
      auto restored =
          checkpoint::LwfsCheckpoint::Restore(runtime, *cap, config.path);
      if (!restored.ok()) {
        trace << " restore=err:" << restored.status().ToString();
      } else {
        bool exact = restored->size() == states.size();
        for (std::size_t r = 0; exact && r < states.size(); ++r) {
          exact = (*restored)[r] == states[r];
        }
        trace << (exact ? " restore=exact" : " restore=MISMATCH");
      }

      // Heal and repair before the next epoch.
      runtime.fabric().SetNodeDown(victim_nid, false);
      runtime.storage_server(victim).Restart();
      auto scan = runtime.replicator().RunScan();
      if (!scan.ok()) {
        trace << " scan=err:" << scan.status().ToString();
      } else {
        trace << " scan stale=" << scan->stale_members
              << " repaired=" << scan->repaired << " failed=" << scan->failed
              << " copied=" << scan->bytes_copied;
      }
      const auto audit = runtime.replica_map().Audit();
      trace << " audit=" << audit.fully_replicated << "/" << audit.objects
            << " under=" << audit.under_replicated
            << " stale=" << audit.stale_members;
      trace << " t_us=" << clock.NowUs() << "\n";
    }

    const auto rep = client->replication_stats();
    trace << "replication writes=" << rep.replicated_writes
          << " wfail=" << rep.write_failovers
          << " degraded=" << rep.degraded_writes
          << " reports=" << rep.stale_reports
          << " rfail=" << rep.read_failovers << "\n";
    auto rob = runtime.TotalRobustnessStats();
    trace << "faults drops=" << rob.faults.drops
          << " crashes=" << rob.faults.crashes
          << " dedup=" << rob.rpc.dedup_hits << "\n";

    for (int i = 0; i < runtime.storage_count(); ++i) {
      auto oids = runtime.store(i).List(*cid);
      if (!oids.ok()) return "list: " + oids.status().ToString();
      std::sort(oids->begin(), oids->end());
      for (storage::ObjectId oid : *oids) {
        auto attr = runtime.store(i).GetAttr(oid);
        if (!attr.ok()) return "getattr: " + attr.status().ToString();
        auto data = runtime.store(i).Read(oid, 0, attr->size);
        if (!data.ok()) return "read: " + data.status().ToString();
        trace << "store " << i << " oid=" << oid.value
              << " size=" << attr->size << " crc=" << Crc32(ByteSpan(*data))
              << "\n";
      }
    }
    trace << "t_end_us=" << clock.NowUs() << "\n";
  }
  return trace.str();
}

TEST(VirtualChaosTest, ReplicatedKillRepairSoakIsBitDeterministic) {
  const std::uint64_t seed = ChaosSeeds().front();
  SCOPED_TRACE("LWFS_CHAOS_SEED=" + std::to_string(seed));
  const std::string golden = VirtualReplicatedSoakTrace(seed);
  ASSERT_NE(golden.find("t_end_us="), std::string::npos) << golden;
  // Zero data loss and full repair convergence inside the soak itself.
  EXPECT_EQ(golden.find("restore=MISMATCH"), std::string::npos) << golden;
  EXPECT_EQ(golden.find("restore=err"), std::string::npos) << golden;
  EXPECT_EQ(golden.find("err "), std::string::npos) << golden;
  EXPECT_NE(golden.find(" under=0 stale=0"), std::string::npos) << golden;
  for (int run = 1; run < 3; ++run) {
    SCOPED_TRACE("run " + std::to_string(run));
    EXPECT_EQ(VirtualReplicatedSoakTrace(seed), golden);
  }
}

}  // namespace
}  // namespace lwfs
