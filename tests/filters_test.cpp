// Tests for active-storage filters: the pure kernels and the end-to-end
// server-side execution path (§6 "remote filtering").
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/filters.h"
#include "core/runtime.h"
#include "util/rng.h"

namespace lwfs::core {
namespace {

Buffer DoublesToBytes(const std::vector<double>& values) {
  Buffer out(values.size() * 8);
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

std::vector<double> BytesToDoubles(const Buffer& raw) {
  std::vector<double> out(raw.size() / 8);
  std::memcpy(out.data(), raw.data(), out.size() * 8);
  return out;
}

// ---- Pure kernels ------------------------------------------------------------

TEST(FilterKernelTest, MinMaxSumCount) {
  FilterSpec spec;
  spec.kind = FilterKind::kMinMaxSumCount;
  auto result = ApplyFilter(spec, ByteSpan(DoublesToBytes({3, -1, 4, 1.5})));
  ASSERT_TRUE(result.ok());
  auto values = BytesToDoubles(*result);
  ASSERT_EQ(values.size(), 4u);
  EXPECT_DOUBLE_EQ(values[0], -1);
  EXPECT_DOUBLE_EQ(values[1], 4);
  EXPECT_DOUBLE_EQ(values[2], 7.5);
  EXPECT_DOUBLE_EQ(values[3], 4);
}

TEST(FilterKernelTest, MinMaxSumCountEmpty) {
  FilterSpec spec;
  spec.kind = FilterKind::kMinMaxSumCount;
  auto result = ApplyFilter(spec, {});
  ASSERT_TRUE(result.ok());
  auto values = BytesToDoubles(*result);
  EXPECT_DOUBLE_EQ(values[3], 0);
}

TEST(FilterKernelTest, Subsample) {
  FilterSpec spec;
  spec.kind = FilterKind::kSubsample;
  spec.stride = 3;
  auto result =
      ApplyFilter(spec, ByteSpan(DoublesToBytes({0, 1, 2, 3, 4, 5, 6, 7})));
  ASSERT_TRUE(result.ok());
  auto values = BytesToDoubles(*result);
  EXPECT_EQ(values, (std::vector<double>{0, 3, 6}));
}

TEST(FilterKernelTest, SubsampleStrideOneIsIdentity) {
  FilterSpec spec;
  spec.kind = FilterKind::kSubsample;
  spec.stride = 1;
  Buffer input = DoublesToBytes({5, 6, 7});
  auto result = ApplyFilter(spec, ByteSpan(input));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, input);
}

TEST(FilterKernelTest, SelectGreater) {
  FilterSpec spec;
  spec.kind = FilterKind::kSelectGreater;
  spec.threshold = 2.5;
  auto result =
      ApplyFilter(spec, ByteSpan(DoublesToBytes({1, 3, 2, 4, 2.5, 5})));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u * 8);
  Decoder dec(*result);
  EXPECT_EQ(*dec.GetU64(), 1u);
  EXPECT_EQ(*dec.GetU64(), 3u);
  EXPECT_EQ(*dec.GetU64(), 5u);
}

TEST(FilterKernelTest, Histogram) {
  FilterSpec spec;
  spec.kind = FilterKind::kHistogram;
  spec.lo = 0;
  spec.hi = 10;
  spec.bins = 5;
  auto result = ApplyFilter(
      spec, ByteSpan(DoublesToBytes({0, 1.9, 2, 5, 9.99, 10, -1, 4})));
  ASSERT_TRUE(result.ok());
  auto counts = BytesToDoubles(*result);
  // Bins [0,2) [2,4) [4,6) [6,8) [8,10); 10 and -1 fall outside.
  EXPECT_EQ(counts, (std::vector<double>{2, 1, 2, 0, 1}));
}

TEST(FilterKernelTest, RejectsBadInput) {
  FilterSpec spec;
  Buffer odd(13, 0);  // not a multiple of 8
  EXPECT_FALSE(ApplyFilter(spec, ByteSpan(odd)).ok());
  spec.kind = FilterKind::kSubsample;
  spec.stride = 0;
  EXPECT_FALSE(ApplyFilter(spec, {}).ok());
  spec.kind = FilterKind::kHistogram;
  spec.lo = 5;
  spec.hi = 5;
  EXPECT_FALSE(ApplyFilter(spec, {}).ok());
}

TEST(FilterKernelTest, SpecWireRoundTrip) {
  FilterSpec spec;
  spec.kind = FilterKind::kHistogram;
  spec.stride = 7;
  spec.threshold = 1.25;
  spec.lo = -3;
  spec.hi = 9;
  spec.bins = 12;
  Encoder enc;
  spec.Encode(enc);
  Decoder dec(enc.buffer());
  auto back = FilterSpec::Decode(dec).value();
  EXPECT_EQ(back.kind, spec.kind);
  EXPECT_EQ(back.stride, spec.stride);
  EXPECT_DOUBLE_EQ(back.threshold, spec.threshold);
  EXPECT_DOUBLE_EQ(back.lo, spec.lo);
  EXPECT_DOUBLE_EQ(back.hi, spec.hi);
  EXPECT_EQ(back.bins, spec.bins);
}

// ---- End-to-end through the storage server ---------------------------------------

class ActiveFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_ = core::ServiceRuntime::Start({}).value();
    runtime_->AddUser("u", "p", 1);
    client_ = runtime_->MakeClient();
    auto cred = client_->Login("u", "p").value();
    auto cid = client_->CreateContainer(cred).value();
    cap_ = client_->GetCap(cred, cid, security::kOpAll).value();
    read_cap_ = client_->GetCap(cred, cid, security::kOpRead).value();
    oid_ = client_->CreateObject(0, cap_).value();

    Rng rng(17);
    values_.resize(100000);
    for (double& v : values_) v = rng.NextDouble() * 100 - 50;
    ASSERT_TRUE(client_
                    ->WriteObject(0, cap_, oid_, 0,
                                  ByteSpan(DoublesToBytes(values_)))
                    .ok());
  }

  std::unique_ptr<ServiceRuntime> runtime_;
  std::unique_ptr<Client> client_;
  security::Capability cap_;
  security::Capability read_cap_;
  storage::ObjectId oid_;
  std::vector<double> values_;
};

TEST_F(ActiveFilterTest, RemoteReductionMatchesLocal) {
  FilterSpec spec;
  spec.kind = FilterKind::kMinMaxSumCount;
  auto result =
      client_->FilterObjectAlloc(0, read_cap_, oid_, 0, values_.size() * 8, spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto remote = BytesToDoubles(*result);

  double mn = values_[0], mx = values_[0], sum = 0;
  for (double v : values_) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    sum += v;
  }
  EXPECT_DOUBLE_EQ(remote[0], mn);
  EXPECT_DOUBLE_EQ(remote[1], mx);
  EXPECT_NEAR(remote[2], sum, 1e-6);
  EXPECT_DOUBLE_EQ(remote[3], static_cast<double>(values_.size()));
}

TEST_F(ActiveFilterTest, OnlyTheResultCrossesTheWire) {
  FilterSpec spec;
  spec.kind = FilterKind::kMinMaxSumCount;
  runtime_->fabric().ResetStats();
  auto result =
      client_->FilterObjectAlloc(0, read_cap_, oid_, 0, values_.size() * 8, spec);
  ASSERT_TRUE(result.ok());
  auto stats = runtime_->fabric().Stats();
  // 800 KB reduced to 32 bytes: total wire traffic stays tiny.
  EXPECT_LT(stats.put_bytes + stats.get_bytes, 2000u);
}

TEST_F(ActiveFilterTest, SubsampleOverRangeWindow) {
  FilterSpec spec;
  spec.kind = FilterKind::kSubsample;
  spec.stride = 10;
  // Filter only elements [1000, 2000).
  auto result =
      client_->FilterObjectAlloc(0, read_cap_, oid_, 1000 * 8, 1000 * 8, spec);
  ASSERT_TRUE(result.ok());
  auto remote = BytesToDoubles(*result);
  ASSERT_EQ(remote.size(), 100u);
  for (std::size_t i = 0; i < remote.size(); ++i) {
    EXPECT_DOUBLE_EQ(remote[i], values_[1000 + i * 10]);
  }
}

TEST_F(ActiveFilterTest, FilterRequiresReadCapability) {
  // A write-only capability on the right container: the op check fails.
  auto cred = client_->Login("u", "p").value();
  auto write_only =
      client_->GetCap(cred, cap_.cid, security::kOpWrite).value();
  FilterSpec spec;
  EXPECT_EQ(client_->FilterObjectAlloc(0, write_only, oid_, 0, 800, spec)
                .status()
                .code(),
            ErrorCode::kPermissionDenied);
  // A full capability on a *different* container: the object is not even
  // acknowledged to exist.
  auto other_cid = client_->CreateContainer(cred).value();
  auto other_cap = client_->GetCap(cred, other_cid, security::kOpAll).value();
  EXPECT_EQ(client_->FilterObjectAlloc(0, other_cap, oid_, 0, 800, spec)
                .status()
                .code(),
            ErrorCode::kNotFound);
}

TEST_F(ActiveFilterTest, TooSmallResultRegionIsRejected) {
  FilterSpec spec;
  spec.kind = FilterKind::kSubsample;
  spec.stride = 1;  // result as large as the input
  Buffer tiny(16, 0);
  auto outcome = client_->FilterObject(0, read_cap_, oid_, 0,
                                       values_.size() * 8, spec,
                                       MutableByteSpan(tiny));
  EXPECT_EQ(outcome.status().code(), ErrorCode::kResourceExhausted);
}

}  // namespace
}  // namespace lwfs::core
