// Unit tests for src/util: error model, wire format, stats, rng, queues,
// and the paper-derived machine tables.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "util/bytes.h"
#include "util/machines.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/sync_queue.h"

namespace lwfs {
namespace {

// ---- Status / Result -------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("object 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: object 7");
}

TEST(StatusTest, EveryErrorCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgument("negative");
  return OkStatus();
}

Result<int> DoubleIfOk(int x) {
  LWFS_RETURN_IF_ERROR(FailIfNegative(x));
  return x * 2;
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(*DoubleIfOk(3), 6);
  EXPECT_EQ(DoubleIfOk(-1).status().code(), ErrorCode::kInvalidArgument);
}

// ---- Encoder / Decoder ------------------------------------------------------

TEST(BytesTest, ScalarRoundTrip) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutU16(0x1234);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFULL);
  enc.PutI64(-77);
  enc.PutBool(true);
  enc.PutDouble(3.5);

  Decoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetU8(), 0xAB);
  EXPECT_EQ(*dec.GetU16(), 0x1234);
  EXPECT_EQ(*dec.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*dec.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*dec.GetI64(), -77);
  EXPECT_TRUE(*dec.GetBool());
  EXPECT_DOUBLE_EQ(*dec.GetDouble(), 3.5);
  EXPECT_TRUE(dec.exhausted());
}

TEST(BytesTest, StringAndBytesRoundTrip) {
  Encoder enc;
  enc.PutString("hello lwfs");
  Buffer blob = {1, 2, 3, 4, 5};
  enc.PutBytes(ByteSpan(blob));
  enc.PutString("");

  Decoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetString(), "hello lwfs");
  EXPECT_EQ(*dec.GetBytes(), blob);
  EXPECT_EQ(*dec.GetString(), "");
}

TEST(BytesTest, TruncatedIntegerFails) {
  Buffer b = {1, 2, 3};
  Decoder dec(b);
  EXPECT_FALSE(dec.GetU64().ok());
}

TEST(BytesTest, TruncatedByteStringFails) {
  Encoder enc;
  enc.PutU32(100);  // claims 100 bytes follow
  enc.PutU8(1);
  Decoder dec(enc.buffer());
  EXPECT_FALSE(dec.GetBytes().ok());
}

TEST(BytesTest, RawAndRest) {
  Encoder enc;
  enc.PutU32(7);
  enc.PutRaw(Buffer{9, 8, 7});
  Decoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetU32(), 7u);
  EXPECT_EQ(dec.Rest().size(), 3u);
  auto raw = dec.GetRaw(3);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ((*raw)[0], 9);
  EXPECT_FALSE(dec.GetRaw(1).ok());
}

class BytesSizesTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BytesSizesTest, PayloadRoundTripsAtAnySize) {
  const std::size_t n = GetParam();
  Buffer payload = PatternBuffer(n, /*seed=*/n + 1);
  Encoder enc;
  enc.PutBytes(ByteSpan(payload));
  Decoder dec(enc.buffer());
  auto out = dec.GetBytes();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BytesSizesTest,
                         ::testing::Values(0, 1, 7, 8, 255, 4096, 65537));

TEST(BytesTest, PatternBufferIsDeterministicAndSeedSensitive) {
  EXPECT_EQ(PatternBuffer(64, 1), PatternBuffer(64, 1));
  EXPECT_NE(PatternBuffer(64, 1), PatternBuffer(64, 2));
}

// ---- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(1);
  Rng child = a.Split();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, ExponentialHasRoughlyRightMean) {
  Rng rng(42);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

// ---- Stats -------------------------------------------------------------------

TEST(StatsTest, MeanAndStddev) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 10;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(StatsTest, PercentilesSorted) {
  Percentiles p;
  for (int i = 100; i >= 1; --i) p.Add(i);
  EXPECT_DOUBLE_EQ(p.Get(0), 1.0);
  EXPECT_DOUBLE_EQ(p.Get(100), 100.0);
  EXPECT_NEAR(p.Get(50), 50.5, 1e-9);
  // Adding after a query keeps results correct.
  p.Add(1000);
  EXPECT_DOUBLE_EQ(p.Get(100), 1000.0);
}

// ---- SyncQueue -----------------------------------------------------------------

TEST(SyncQueueTest, FifoOrder) {
  SyncQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
}

TEST(SyncQueueTest, BoundedTryPushRejectsWhenFull) {
  SyncQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: the "I/O node rejects" path
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(SyncQueueTest, CloseDrainsThenSignalsEnd) {
  SyncQueue<int> q;
  q.Push(5);
  q.Close();
  EXPECT_FALSE(q.Push(6));
  EXPECT_EQ(*q.Pop(), 5);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(SyncQueueTest, PopForTimesOut) {
  SyncQueue<int> q;
  EXPECT_FALSE(q.PopFor(std::chrono::milliseconds(10)).has_value());
  q.Push(1);
  EXPECT_EQ(*q.PopFor(std::chrono::milliseconds(10)), 1);
}

TEST(SyncQueueTest, ManyProducersManyConsumers) {
  SyncQueue<int> q(64);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.Push(i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&q, &sum] {
      while (auto v = q.Pop()) sum.fetch_add(*v);
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.Close();
  for (std::size_t c = kProducers; c < threads.size(); ++c) threads[c].join();
  EXPECT_EQ(sum.load(), kProducers * kPerProducer * (kPerProducer + 1) / 2);
}

// ---- Machine tables (Table 1 / Table 2) ------------------------------------------

TEST(MachinesTest, Table1MatchesPaper) {
  auto machines = Table1Machines();
  ASSERT_EQ(machines.size(), 4u);
  EXPECT_EQ(machines[0].name, "SNL Intel Paragon");
  EXPECT_EQ(machines[0].compute_nodes, 1840u);
  EXPECT_EQ(machines[0].io_nodes, 32u);
  EXPECT_EQ(machines[1].compute_nodes, 4510u);
  EXPECT_EQ(machines[2].compute_nodes, 10368u);
  EXPECT_EQ(machines[2].io_nodes, 256u);
  EXPECT_EQ(machines[3].compute_nodes, 65536u);
  EXPECT_EQ(machines[3].io_nodes, 1024u);
}

TEST(MachinesTest, Table1RatiosMatchPaper) {
  auto machines = Table1Machines();
  // Paper reports 58:1, 62:1, 41:1, 64:1 (rounded).
  EXPECT_EQ(std::lround(machines[0].Ratio()), 58);
  EXPECT_EQ(std::lround(machines[1].Ratio()), 62);
  EXPECT_EQ(std::lround(machines[2].Ratio()), 41);
  EXPECT_EQ(std::lround(machines[3].Ratio()), 64);
}

TEST(MachinesTest, RedStormTable2Values) {
  const RedStormSpec& rs = RedStorm();
  EXPECT_DOUBLE_EQ(rs.mpi_latency_1hop, 2.0e-6);
  EXPECT_DOUBLE_EQ(rs.link_bw, 6.0e9);
  EXPECT_DOUBLE_EQ(rs.bisection_bw, 2.3e12);
  EXPECT_DOUBLE_EQ(rs.io_node_raid_bw, 400e6);
  EXPECT_DOUBLE_EQ(rs.aggregate_io_bw, 50e9);
  // The §3.2 imbalance: ingress 15x faster than drain.
  EXPECT_NEAR(rs.link_bw / rs.io_node_raid_bw, 15.0, 1e-9);
}

TEST(MachinesTest, DevClusterMatchesSection4) {
  const DevClusterSpec& dc = DevCluster();
  EXPECT_EQ(dc.total_nodes, 40);
  EXPECT_EQ(dc.metadata_nodes, 1);
  EXPECT_EQ(dc.storage_nodes, 8);
  EXPECT_EQ(dc.compute_nodes, 31);
  EXPECT_EQ(dc.servers_per_storage_node, 2);
  EXPECT_EQ(dc.bytes_per_client, 512ull << 20);
}

TEST(MachinesTest, PetaflopExtrapolationConfig) {
  EXPECT_EQ(Petaflop().compute_nodes, 100000u);
  EXPECT_EQ(Petaflop().io_nodes, 2000u);
}

}  // namespace
}  // namespace lwfs
