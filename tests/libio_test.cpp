// Tests for the high-level I/O library: datasets/hyperslabs, two-phase
// collective writes, data sieving, and prefetching.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/runtime.h"
#include "libio/collective.h"
#include "libio/dataset.h"
#include "libio/prefetch.h"
#include "libio/sieve.h"
#include "util/rng.h"

namespace lwfs::io {
namespace {

class LibIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::RuntimeOptions options;
    options.storage_servers = 4;
    runtime_ = core::ServiceRuntime::Start(options).value();
    runtime_->AddUser("u", "p", 1);
    client_ = runtime_->MakeClient();
    auto cred = client_->Login("u", "p").value();
    auto cid = client_->CreateContainer(cred).value();
    cap_ = client_->GetCap(cred, cid, security::kOpAll).value();
    fs::FsOptions fs_options;
    fs_options.consistency = fs::FsConsistency::kRelaxed;
    fs_options.stripe_size = 4096;
    fs_ = fs::LwfsFs::Mount(client_.get(), cap_, "/io", fs_options).value();
  }

  std::unique_ptr<core::ServiceRuntime> runtime_;
  std::unique_ptr<core::Client> client_;
  security::Capability cap_;
  std::unique_ptr<fs::LwfsFs> fs_;
};

// ---- MapHyperslab (pure) -------------------------------------------------------

TEST(MapHyperslabTest, FullArrayIsOneRun) {
  DatasetSpec spec{{4, 6}, 8};
  std::uint64_t start[] = {0, 0};
  std::uint64_t count[] = {4, 6};
  auto runs = MapHyperslab(spec, start, count).value();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].file_offset, 0u);
  EXPECT_EQ(runs[0].length, 4u * 6 * 8);
}

TEST(MapHyperslabTest, RowSliceIsOneRunPerRow) {
  DatasetSpec spec{{4, 6}, 8};
  std::uint64_t start[] = {1, 2};
  std::uint64_t count[] = {2, 3};
  auto runs = MapHyperslab(spec, start, count).value();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].file_offset, (1 * 6 + 2) * 8u);
  EXPECT_EQ(runs[0].length, 3u * 8);
  EXPECT_EQ(runs[1].file_offset, (2 * 6 + 2) * 8u);
}

TEST(MapHyperslabTest, ThreeDeeFoldsFullTrailingDims) {
  DatasetSpec spec{{3, 4, 5}, 4};
  std::uint64_t start[] = {1, 0, 0};
  std::uint64_t count[] = {2, 4, 5};  // full planes
  auto runs = MapHyperslab(spec, start, count).value();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].file_offset, 1u * 4 * 5 * 4);
  EXPECT_EQ(runs[0].length, 2u * 4 * 5 * 4);
}

TEST(MapHyperslabTest, ErrorsAndEdges) {
  DatasetSpec spec{{4, 6}, 8};
  std::uint64_t start[] = {3, 0};
  std::uint64_t count[] = {2, 6};
  EXPECT_EQ(MapHyperslab(spec, start, count).status().code(),
            ErrorCode::kOutOfRange);
  std::uint64_t zero[] = {0, 0};
  EXPECT_TRUE(MapHyperslab(spec, zero, zero)->empty());
  std::uint64_t short_rank[] = {0};
  EXPECT_FALSE(
      MapHyperslab(spec, short_rank, std::span<const std::uint64_t>(short_rank, 1))
          .ok());
}

TEST(MapHyperslabTest, RunsPartitionSlabExactly) {
  // Property: runs are disjoint, in increasing offset order, and their
  // total equals the slab volume — over a sweep of random slabs.
  DatasetSpec spec{{7, 5, 9}, 3};
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint64_t start[3], count[3];
    std::uint64_t volume = 1;
    for (int d = 0; d < 3; ++d) {
      start[d] = rng.NextBelow(spec.dims[static_cast<std::size_t>(d)]);
      count[d] = 1 + rng.NextBelow(spec.dims[static_cast<std::size_t>(d)] -
                                   start[d]);
      volume *= count[d];
    }
    auto runs = MapHyperslab(spec, start, count).value();
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      total += runs[i].length;
      if (i > 0) {
        ASSERT_GE(runs[i].file_offset,
                  runs[i - 1].file_offset + runs[i - 1].length);
      }
    }
    ASSERT_EQ(total, volume * spec.elem_size) << "trial " << trial;
  }
}

// ---- Dataset ----------------------------------------------------------------------

TEST_F(LibIoTest, DatasetCreateOpenPreservesSpecAndAttrs) {
  DatasetSpec spec{{10, 20}, 8};
  auto ds = Dataset::Create(fs_.get(), "/temps", spec,
                            {{"units", "kelvin"}, {"source", "sim"}});
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  auto reopened = Dataset::Open(fs_.get(), "/temps").value();
  EXPECT_EQ(reopened.spec().dims, spec.dims);
  EXPECT_EQ(reopened.spec().elem_size, 8u);
  EXPECT_EQ(reopened.attributes().at("units"), "kelvin");
  EXPECT_EQ(reopened.attributes().at("source"), "sim");
}

TEST_F(LibIoTest, HyperslabWriteReadRoundTrip) {
  DatasetSpec spec{{8, 8}, 8};
  auto ds = Dataset::Create(fs_.get(), "/grid", spec).value();
  // Write the whole grid, then read back an interior slab.
  Buffer all = PatternBuffer(static_cast<std::size_t>(spec.ByteSize()), 5);
  std::uint64_t zero[] = {0, 0};
  std::uint64_t full[] = {8, 8};
  ASSERT_TRUE(ds.WriteSlab(zero, full, ByteSpan(all)).ok());
  std::uint64_t start[] = {2, 3};
  std::uint64_t count[] = {3, 4};
  auto slab = ds.ReadSlab(start, count).value();
  ASSERT_EQ(slab.size(), 3u * 4 * 8);
  for (std::uint64_t r = 0; r < 3; ++r) {
    for (std::uint64_t c = 0; c < 4; ++c) {
      const std::uint64_t src = ((r + 2) * 8 + (c + 3)) * 8;
      const std::uint64_t dst = (r * 4 + c) * 8;
      for (int b = 0; b < 8; ++b) {
        ASSERT_EQ(slab[dst + static_cast<std::uint64_t>(b)],
                  all[src + static_cast<std::uint64_t>(b)]);
      }
    }
  }
}

TEST_F(LibIoTest, ReadSlabSliceMatchesReadSlab) {
  DatasetSpec spec{{8, 8}, 8};
  auto ds = Dataset::Create(fs_.get(), "/gridslice", spec).value();
  Buffer all = PatternBuffer(static_cast<std::size_t>(spec.ByteSize()), 6);
  std::uint64_t zero[] = {0, 0};
  std::uint64_t full[] = {8, 8};
  ASSERT_TRUE(ds.WriteSlab(zero, full, ByteSpan(all)).ok());

  // Fragmented interior slab: one run per row, gathered into one slice.
  std::uint64_t start[] = {2, 3};
  std::uint64_t count[] = {3, 4};
  auto slab = ds.ReadSlab(start, count).value();
  auto slice = ds.ReadSlabSlice(start, count);
  ASSERT_TRUE(slice.ok()) << slice.status().ToString();
  ASSERT_EQ(slice->size(), slab.size());
  EXPECT_TRUE(std::equal(slab.begin(), slab.end(), slice->span().begin()));

  // Contiguous slab (full trailing dimension): single run, so the file
  // system's store-owned slice passes straight through.
  std::uint64_t rows_start[] = {1, 0};
  std::uint64_t rows_count[] = {4, 8};
  auto rows = ds.ReadSlabSlice(rows_start, rows_count);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 4u * 8 * 8);
  EXPECT_TRUE(std::equal(rows->span().begin(), rows->span().end(),
                         all.begin() + 1 * 8 * 8));
}

TEST_F(LibIoTest, SlabSizeMismatchRejected) {
  auto ds = Dataset::Create(fs_.get(), "/strict", DatasetSpec{{4, 4}, 4}).value();
  std::uint64_t start[] = {0, 0};
  std::uint64_t count[] = {2, 2};
  EXPECT_EQ(ds.WriteSlab(start, count, ByteSpan(Buffer(15, 0))).code(),
            ErrorCode::kInvalidArgument);
}

// ---- Collective writes ---------------------------------------------------------------

TEST_F(LibIoTest, CollectiveMatchesIndependentContent) {
  auto file_c = fs_->Create("/collective").value();
  auto file_i = fs_->Create("/independent").value();

  // 8 ranks, each owning every-8th 1 KiB block of a 512 KiB file — the
  // classic interleaved pattern.
  constexpr std::uint64_t kBlock = 1024;
  constexpr int kRanks = 8;
  constexpr int kBlocksPerRank = 64;
  std::vector<std::vector<WriteFragment>> per_rank(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    for (int b = 0; b < kBlocksPerRank; ++b) {
      const std::uint64_t offset =
          (static_cast<std::uint64_t>(b) * kRanks + static_cast<std::uint64_t>(r)) * kBlock;
      per_rank[static_cast<std::size_t>(r)].push_back(WriteFragment{
          offset, PatternBuffer(kBlock, offset)});
    }
  }

  auto collective = CollectiveWrite(*fs_, file_c, per_rank).value();
  auto independent = IndependentWrite(*fs_, file_i, per_rank).value();

  EXPECT_EQ(collective.fragments_in, independent.fragments_in);
  EXPECT_EQ(collective.bytes, independent.bytes);
  // The point of two-phase I/O: far fewer writes hit the I/O system.
  EXPECT_LT(collective.writes_issued, independent.writes_issued / 10);

  Buffer out_c(kRanks * kBlocksPerRank * kBlock, 0);
  Buffer out_i(out_c.size(), 0);
  ASSERT_TRUE(fs_->Read(file_c, 0, MutableByteSpan(out_c)).ok());
  ASSERT_TRUE(fs_->Read(file_i, 0, MutableByteSpan(out_i)).ok());
  EXPECT_EQ(out_c, out_i);
}

TEST_F(LibIoTest, CollectiveRejectsOverlaps) {
  auto file = fs_->Create("/overlap").value();
  std::vector<std::vector<WriteFragment>> per_rank(2);
  per_rank[0].push_back(WriteFragment{0, Buffer(100, 1)});
  per_rank[1].push_back(WriteFragment{50, Buffer(100, 2)});
  EXPECT_EQ(CollectiveWrite(*fs_, file, per_rank).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(LibIoTest, CollectiveRespectsBufferCap) {
  auto file = fs_->Create("/capped").value();
  std::vector<std::vector<WriteFragment>> per_rank(1);
  for (int b = 0; b < 16; ++b) {
    per_rank[0].push_back(WriteFragment{
        static_cast<std::uint64_t>(b) * 1024, PatternBuffer(1024, b)});
  }
  CollectiveOptions options;
  options.aggregators = 1;
  options.cb_buffer_bytes = 4096;  // forces one write per 4 blocks
  auto stats = CollectiveWrite(*fs_, file, per_rank, options).value();
  EXPECT_EQ(stats.writes_issued, 4u);
}

TEST_F(LibIoTest, CollectiveEmptyIsNoop) {
  auto file = fs_->Create("/empty").value();
  auto stats = CollectiveWrite(*fs_, file, {}).value();
  EXPECT_EQ(stats.writes_issued, 0u);
}

// ---- Data sieving -----------------------------------------------------------------------

TEST_F(LibIoTest, SievedReadMatchesDirectRead) {
  auto file = fs_->Create("/sieve").value();
  Buffer data = PatternBuffer(256 << 10, 7);
  ASSERT_TRUE(fs_->Write(file, 0, ByteSpan(data)).ok());
  ASSERT_TRUE(fs_->Flush(file).ok());

  // Dense strided pattern: 256 bytes of every 1 KiB.
  std::vector<Fragment> fragments;
  std::uint64_t total = 0;
  for (std::uint64_t off = 0; off + 256 <= data.size(); off += 1024) {
    fragments.emplace_back(off, 256);
    total += 256;
  }
  Buffer direct(total, 0), sieved(total, 0);
  auto dstats = DirectRead(*fs_, file, fragments, MutableByteSpan(direct)).value();
  auto sstats = SievedRead(*fs_, file, fragments, MutableByteSpan(sieved)).value();
  EXPECT_EQ(direct, sieved);
  EXPECT_EQ(dstats.requests, fragments.size());
  EXPECT_LT(sstats.requests, dstats.requests / 4);  // sieving collapses them
  EXPECT_GT(sstats.bytes_transferred, sstats.bytes_needed);  // the trade
}

TEST_F(LibIoTest, SparseFragmentsAreNotSieved) {
  auto file = fs_->Create("/sparse-sieve").value();
  Buffer data = PatternBuffer(1 << 20, 8);
  ASSERT_TRUE(fs_->Write(file, 0, ByteSpan(data)).ok());
  ASSERT_TRUE(fs_->Flush(file).ok());

  // 64 bytes out of every 64 KiB: density ~0.1% — sieving would waste the
  // wire, so each fragment goes direct.
  std::vector<Fragment> fragments;
  std::uint64_t total = 0;
  for (std::uint64_t off = 0; off + 64 <= data.size(); off += 64 << 10) {
    fragments.emplace_back(off, 64);
    total += 64;
  }
  Buffer out(total, 0);
  auto stats = SievedRead(*fs_, file, fragments, MutableByteSpan(out)).value();
  EXPECT_EQ(stats.requests, fragments.size());
  EXPECT_EQ(stats.bytes_transferred, stats.bytes_needed);
}

TEST_F(LibIoTest, SieveValidatesInput) {
  auto file = fs_->Create("/validate").value();
  std::vector<Fragment> overlapping = {{0, 100}, {50, 100}};
  Buffer out(200, 0);
  EXPECT_FALSE(SievedRead(*fs_, file, overlapping, MutableByteSpan(out)).ok());
  std::vector<Fragment> ok_frags = {{0, 100}};
  Buffer wrong_size(50, 0);
  EXPECT_FALSE(
      SievedRead(*fs_, file, ok_frags, MutableByteSpan(wrong_size)).ok());
}

// ---- Prefetching ----------------------------------------------------------------------------

TEST_F(LibIoTest, SequentialScanHitsThePrefetchWindow) {
  auto file = fs_->Create("/scan").value();
  Buffer data = PatternBuffer(1 << 20, 9);
  ASSERT_TRUE(fs_->Write(file, 0, ByteSpan(data)).ok());
  ASSERT_TRUE(fs_->Flush(file).ok());

  PrefetchOptions options;
  options.window_bytes = 256 << 10;
  PrefetchReader reader(fs_.get(), fs_->Open("/scan").value(), options);
  Buffer chunk(4096, 0);
  Buffer assembled;
  std::uint64_t offset = 0;
  while (offset < data.size()) {
    auto n = reader.Read(offset, MutableByteSpan(chunk)).value();
    if (n == 0) break;
    assembled.insert(assembled.end(), chunk.begin(),
                     chunk.begin() + static_cast<std::ptrdiff_t>(n));
    offset += n;
  }
  EXPECT_EQ(assembled, data);
  // 256 sequential 4 KiB reads served by ~4 window fetches.
  EXPECT_LE(reader.stats().fetches, 8u);
  EXPECT_GT(reader.stats().hits, 200u);
}

TEST_F(LibIoTest, RandomSmallReadsBypassTheWindow) {
  auto file = fs_->Create("/random").value();
  Buffer data = PatternBuffer(1 << 20, 10);
  ASSERT_TRUE(fs_->Write(file, 0, ByteSpan(data)).ok());
  ASSERT_TRUE(fs_->Flush(file).ok());

  PrefetchReader reader(fs_.get(), fs_->Open("/random").value(), {});
  Rng rng(3);
  Buffer chunk(512, 0);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t offset = rng.NextBelow(data.size() - 512);
    auto n = reader.Read(offset, MutableByteSpan(chunk)).value();
    ASSERT_EQ(n, 512u);
    ASSERT_TRUE(std::equal(chunk.begin(), chunk.end(),
                           data.begin() + static_cast<std::ptrdiff_t>(offset)));
  }
  // Random access must not blow up bytes fetched to window-size each.
  EXPECT_LT(reader.stats().bytes_fetched, 50u * 512 * 8);
}

}  // namespace
}  // namespace lwfs::io
