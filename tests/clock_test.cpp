// Clock layer: RealClock epoch anchoring and the VirtualClock token
// protocol (zero-wall-clock sleeps, deadline-ordered wake-ups, notify vs.
// timeout, spawn/join, determinism of the interleaving).
#include "util/clock.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace lwfs::util {
namespace {

using namespace std::chrono_literals;

TEST(RealClockTest, AnchoredToUnixEpochAndMonotonic) {
  RealClock* clock = RealClockInstance();
  const std::int64_t t0 = clock->NowUs();
  // 2020-01-01 in microseconds — any sane wall clock is past this.
  EXPECT_GT(t0, 1577836800LL * 1000000LL);
  const std::int64_t t1 = clock->NowUs();
  EXPECT_GE(t1, t0);
}

TEST(RealClockTest, TimedWaitTimesOut) {
  RealClock* clock = RealClockInstance();
  std::mutex m;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lk(m);
  const bool pred_result =
      clock->WaitFor(cv, lk, 5ms, [] { return false; });
  EXPECT_FALSE(pred_result);
}

TEST(VirtualClockTest, SleepAdvancesModeledTimeWithoutWallClock) {
  VirtualClock vclock;
  Clock::ThreadGuard guard(&vclock);
  const auto wall_start = std::chrono::steady_clock::now();  // time-hygiene: wall
  const auto virt_start = vclock.Now();
  vclock.SleepFor(10s);
  EXPECT_EQ(vclock.Now() - virt_start, std::chrono::nanoseconds(10s));
  const auto wall_elapsed =
      std::chrono::steady_clock::now() - wall_start;  // time-hygiene: wall
  EXPECT_LT(wall_elapsed, 1s);
}

TEST(VirtualClockTest, WakeOrderFollowsDeadlinesNotSpawnOrder) {
  VirtualClock vclock;
  Clock::ThreadGuard guard(&vclock);
  std::mutex m;
  std::vector<int> order;
  // Spawned in order 0,1,2 but sleeping 30ms,10ms,20ms.
  const int sleeps_ms[] = {30, 10, 20};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.push_back(vclock.SpawnThread([&, i] {
      vclock.SleepFor(std::chrono::milliseconds(sleeps_ms[i]));
      std::lock_guard<std::mutex> lock(m);
      order.push_back(i);
    }));
  }
  for (auto& t : threads) vclock.Join(t);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 0);
}

TEST(VirtualClockTest, NotifyBeatsDeadlineAndReportsNoTimeout) {
  VirtualClock vclock;
  Clock::ThreadGuard guard(&vclock);
  std::mutex m;
  std::condition_variable cv;
  bool flag = false;
  std::cv_status waiter_status = std::cv_status::no_timeout;
  std::thread waiter = vclock.SpawnThread([&] {
    std::unique_lock<std::mutex> lk(m);
    const auto deadline = vclock.Now() + std::chrono::nanoseconds(1h);
    while (!flag) {
      waiter_status = vclock.WaitUntil(cv, lk, deadline);
      if (waiter_status == std::cv_status::timeout) break;
    }
  });
  vclock.SleepFor(5ms);
  {
    std::lock_guard<std::mutex> lock(m);
    flag = true;
  }
  vclock.NotifyAll(cv);
  vclock.Join(waiter);
  EXPECT_EQ(waiter_status, std::cv_status::no_timeout);
  // The notify happened at virtual +5ms, nowhere near the 1h deadline.
  EXPECT_LT(vclock.Now().count(), std::chrono::nanoseconds(1s).count());
}

TEST(VirtualClockTest, TimedWaitExpiresAtExactDeadline) {
  VirtualClock vclock;
  Clock::ThreadGuard guard(&vclock);
  std::mutex m;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lk(m);
  const auto deadline = vclock.Now() + std::chrono::nanoseconds(250ms);
  const bool pred_result =
      vclock.WaitUntil(cv, lk, deadline, [] { return false; });
  EXPECT_FALSE(pred_result);
  EXPECT_EQ(vclock.Now(), deadline);
}

TEST(VirtualClockTest, ProducerConsumerHandoffIsDeterministic) {
  // A little producer/consumer pipeline with modeled delays, run twice;
  // the full event trace (virtual timestamps included) must match.
  auto run = [] {
    VirtualClock vclock;
    Clock::ThreadGuard guard(&vclock);
    std::ostringstream trace;
    std::mutex m;
    std::condition_variable cv;
    std::vector<int> queue;
    bool done = false;
    std::thread consumer = vclock.SpawnThread([&] {
      for (;;) {
        std::unique_lock<std::mutex> lk(m);
        vclock.Wait(cv, lk, [&] { return done || !queue.empty(); });
        if (queue.empty()) break;
        const int item = queue.front();
        queue.erase(queue.begin());
        lk.unlock();
        vclock.SleepFor(3ms);  // modeled processing cost
        trace << "c" << item << "@" << vclock.NowUs() << ";";
      }
    });
    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p) {
      producers.push_back(vclock.SpawnThread([&, p] {
        for (int i = 0; i < 3; ++i) {
          vclock.SleepFor(std::chrono::milliseconds(1 + p));
          {
            std::lock_guard<std::mutex> lock(m);
            queue.push_back(p * 10 + i);
          }
          vclock.NotifyAll(cv);
        }
      }));
    }
    for (auto& t : producers) vclock.Join(t);
    {
      std::lock_guard<std::mutex> lock(m);
      done = true;
    }
    vclock.NotifyAll(cv);
    vclock.Join(consumer);
    trace << "end@" << vclock.NowUs();
    return trace.str();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(VirtualClockTest, LogicalWaiterDeadlineDrivesAdvanceAndIsOneShot) {
  // A carrier thread parks in an UNTIMED Wait but registers the earliest
  // deadline of its logical clients as a logical waiter.  No thread holds
  // a timed wait at that deadline — the clock must still treat it as the
  // next event, advance to it, and notify the carrier's cv.
  VirtualClock vclock;
  Clock::ThreadGuard guard(&vclock);
  std::mutex m;
  std::condition_variable cv;
  const std::uint64_t waiter = vclock.RegisterLogicalWaiter(&cv);
  ASSERT_NE(waiter, 0u);

  // A peer sleeping far later must not be what wakes us.
  std::thread peer = vclock.SpawnThread([&] { vclock.SleepFor(1h); });

  const auto deadline = vclock.Now() + std::chrono::nanoseconds(10ms);
  {
    std::unique_lock<std::mutex> lk(m);
    vclock.SetLogicalDeadline(waiter, deadline);
    vclock.Wait(cv, lk);  // single-shot, untimed — the carrier idiom
  }
  EXPECT_EQ(vclock.Now(), deadline);

  // Firing disarmed the waiter: a later advance must not re-notify, so a
  // timed wait (with no re-arm) runs to its own deadline undisturbed.
  {
    std::unique_lock<std::mutex> lk(m);
    const auto t2 = vclock.Now() + std::chrono::nanoseconds(5ms);
    EXPECT_EQ(vclock.WaitUntil(cv, lk, t2), std::cv_status::timeout);
    EXPECT_EQ(vclock.Now(), t2);
  }

  // Re-arm then disarm with max(): the deadline must no longer exist, so
  // the next timed wait again expires on its own schedule.
  {
    std::unique_lock<std::mutex> lk(m);
    vclock.SetLogicalDeadline(waiter, vclock.Now() + std::chrono::nanoseconds(1ms));
    vclock.SetLogicalDeadline(waiter, Clock::TimePoint::max());
    const auto t3 = vclock.Now() + std::chrono::nanoseconds(5ms);
    EXPECT_EQ(vclock.WaitUntil(cv, lk, t3), std::cv_status::timeout);
    EXPECT_EQ(vclock.Now(), t3);
  }

  vclock.UnregisterLogicalWaiter(waiter);
  vclock.Join(peer);
}

TEST(VirtualClockTest, JoinAlreadyFinishedChildDoesNotDeadlock) {
  VirtualClock vclock;
  Clock::ThreadGuard guard(&vclock);
  std::thread child = vclock.SpawnThread([&] { vclock.SleepFor(1ms); });
  // Let the child run to completion before joining: the join must take
  // the finished-unjoined fast path.
  vclock.SleepFor(10ms);
  vclock.Join(child);
  EXPECT_EQ(vclock.participants(), 1u);
}

}  // namespace
}  // namespace lwfs::util
