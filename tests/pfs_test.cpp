// Tests for the traditional-PFS baseline: striping math, MDS behaviour,
// and the full client/MDS/OST stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>

#include "pfs/layout.h"
#include "pfs/pfs_runtime.h"
#include "util/rng.h"

namespace lwfs::pfs {
namespace {

// ---- MapExtent ----------------------------------------------------------------

TEST(LayoutTest, SingleStripeIsIdentity) {
  auto chunks = MapExtent(1 << 20, 1, 12345, 9999);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].stripe_index, 0u);
  EXPECT_EQ(chunks[0].object_offset, 12345u);
  EXPECT_EQ(chunks[0].length, 9999u);
}

TEST(LayoutTest, RoundRobinAcrossStripes) {
  // stripe_size=10, 3 stripes; extent [5, 35) crosses three stripes.
  auto chunks = MapExtent(10, 3, 5, 30);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0].stripe_index, 0u);
  EXPECT_EQ(chunks[0].object_offset, 5u);
  EXPECT_EQ(chunks[0].length, 5u);
  EXPECT_EQ(chunks[1].stripe_index, 1u);
  EXPECT_EQ(chunks[1].object_offset, 0u);
  EXPECT_EQ(chunks[1].length, 10u);
  EXPECT_EQ(chunks[2].stripe_index, 2u);
  EXPECT_EQ(chunks[2].length, 10u);
  // Wraps to stripe 0, second "row" of the round-robin.
  EXPECT_EQ(chunks[3].stripe_index, 0u);
  EXPECT_EQ(chunks[3].object_offset, 10u);
  EXPECT_EQ(chunks[3].length, 5u);
}

TEST(LayoutTest, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(MapExtent(10, 3, 0, 0).empty());
  EXPECT_TRUE(MapExtent(0, 3, 0, 10).empty());
  EXPECT_TRUE(MapExtent(10, 0, 0, 10).empty());
}

struct MapExtentCase {
  std::uint32_t stripe_size;
  std::uint32_t stripe_count;
  std::uint64_t offset;
  std::uint64_t length;
};

class MapExtentPropertyTest : public ::testing::TestWithParam<MapExtentCase> {};

TEST_P(MapExtentPropertyTest, ChunksPartitionTheExtent) {
  const auto& c = GetParam();
  auto chunks = MapExtent(c.stripe_size, c.stripe_count, c.offset, c.length);
  // 1. Lengths sum to the extent length and file offsets are contiguous.
  std::uint64_t sum = 0;
  std::uint64_t expect_offset = c.offset;
  for (const StripeChunk& chunk : chunks) {
    EXPECT_EQ(chunk.file_offset, expect_offset);
    EXPECT_GT(chunk.length, 0u);
    EXPECT_LE(chunk.length, c.stripe_size);
    EXPECT_LT(chunk.stripe_index, c.stripe_count);
    // Chunks never straddle a stripe boundary within the object.
    EXPECT_EQ(chunk.object_offset / c.stripe_size,
              (chunk.object_offset + chunk.length - 1) / c.stripe_size);
    expect_offset += chunk.length;
    sum += chunk.length;
  }
  EXPECT_EQ(sum, c.length);
  // 2. The mapping is injective: no two chunks overlap in any object.
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    for (std::size_t j = i + 1; j < chunks.size(); ++j) {
      if (chunks[i].stripe_index != chunks[j].stripe_index) continue;
      const bool disjoint =
          chunks[i].object_offset + chunks[i].length <= chunks[j].object_offset ||
          chunks[j].object_offset + chunks[j].length <= chunks[i].object_offset;
      EXPECT_TRUE(disjoint);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MapExtentPropertyTest,
    ::testing::Values(MapExtentCase{64, 4, 0, 1000},
                      MapExtentCase{64, 4, 63, 2},
                      MapExtentCase{64, 1, 1000, 10000},
                      MapExtentCase{1, 7, 3, 100},
                      MapExtentCase{4096, 16, 123456789, 7654321},
                      MapExtentCase{1 << 20, 8, 512ull << 20, 512ull << 20},
                      MapExtentCase{512, 3, 511, 1026}));

// ---- Full PFS stack --------------------------------------------------------------

class PfsTest : public ::testing::Test {
 protected:
  void StartRuntime(PfsRuntimeOptions options = {}) {
    auto rt = PfsRuntime::Start(&fabric_, options);
    ASSERT_TRUE(rt.ok()) << rt.status().ToString();
    runtime_ = std::move(*rt);
  }

  portals::Fabric fabric_;
  std::unique_ptr<PfsRuntime> runtime_;
};

TEST_F(PfsTest, CreateAllocatesStripeObjectsOnOsts) {
  StartRuntime();
  auto client = runtime_->MakeClient();
  auto file = client->Create("/data", 4);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->attr.layout.stripes.size(), 4u);
  // One stripe object on each OST.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(runtime_->ost_store(i).ObjectCount(), 1u);
  }
  EXPECT_EQ(runtime_->mds().creates_served(), 1u);
}

TEST_F(PfsTest, CreateExistingFails) {
  StartRuntime();
  auto client = runtime_->MakeClient();
  ASSERT_TRUE(client->Create("/data", 1).ok());
  EXPECT_EQ(client->Create("/data", 1).status().code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(PfsTest, OpenReturnsSameLayout) {
  StartRuntime();
  auto client = runtime_->MakeClient();
  auto created = client->Create("/data", 2);
  ASSERT_TRUE(created.ok());
  auto opened = client->Open("/data");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->attr.ino, created->attr.ino);
  ASSERT_EQ(opened->attr.layout.stripes.size(), 2u);
  EXPECT_EQ(opened->attr.layout.stripes[0].oid,
            created->attr.layout.stripes[0].oid);
  EXPECT_EQ(client->Open("/ghost").status().code(), ErrorCode::kNotFound);
}

class PfsStripingTest
    : public PfsTest,
      public ::testing::WithParamInterface<std::pair<std::uint32_t, std::size_t>> {};

TEST_P(PfsStripingTest, WriteReadRoundTripAcrossStripes) {
  PfsRuntimeOptions options;
  options.ost_count = 4;
  options.mds.default_stripe_size = 4096;
  StartRuntime(options);
  auto [stripe_count, total_bytes] = GetParam();
  auto client = runtime_->MakeClient(ConsistencyMode::kRelaxed);
  auto file = client->Create("/striped", stripe_count);
  ASSERT_TRUE(file.ok());
  Buffer data = PatternBuffer(total_bytes, 42);
  ASSERT_TRUE(client->Write(*file, 0, ByteSpan(data)).ok());
  Buffer back(total_bytes, 0);
  auto n = client->Read(*file, 0, MutableByteSpan(back));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, total_bytes);
  EXPECT_EQ(back, data);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PfsStripingTest,
    ::testing::Values(std::make_pair(1u, std::size_t{10000}),
                      std::make_pair(2u, std::size_t{4096}),
                      std::make_pair(4u, std::size_t{100000}),
                      std::make_pair(3u, std::size_t{4095}),
                      std::make_pair(4u, std::size_t{4097})));

TEST_F(PfsTest, WriteAtOffsetAndSparseRead) {
  PfsRuntimeOptions options;
  options.mds.default_stripe_size = 1024;
  StartRuntime(options);
  auto client = runtime_->MakeClient(ConsistencyMode::kRelaxed);
  auto file = client->Create("/sparse", 2);
  ASSERT_TRUE(file.ok());
  Buffer data = PatternBuffer(3000, 7);
  ASSERT_TRUE(client->Write(*file, 5000, ByteSpan(data)).ok());
  Buffer back(3000, 0);
  auto n = client->Read(*file, 5000, MutableByteSpan(back));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3000u);
  EXPECT_EQ(back, data);
}

TEST_F(PfsTest, ReadSliceRoundTripsAndClampsAtEof) {
  PfsRuntimeOptions options;
  options.ost_count = 4;
  options.mds.default_stripe_size = 4096;
  StartRuntime(options);
  // Default (POSIX-locking) client: the slice read takes and releases the
  // MDS extent lock like the span path does.
  auto client = runtime_->MakeClient();
  auto file = client->Create("/slices", 4);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  Buffer data = PatternBuffer(100000, 23);
  ASSERT_TRUE(client->Write(*file, 0, ByteSpan(data)).ok());

  // Striped read: per-OST slices gather into one payload.
  auto whole = client->ReadSlice(*file, 0, data.size());
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  ASSERT_EQ(whole->size(), data.size());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), whole->span().begin()));

  // Single-stripe read: the OST's store-owned slice passes through.
  auto one = client->ReadSlice(*file, 4096, 2048);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  ASSERT_EQ(one->size(), 2048u);
  EXPECT_TRUE(std::equal(data.begin() + 4096, data.begin() + 4096 + 2048,
                         one->span().begin()));

  // Short at EOF, like the span Read.
  auto tail = client->ReadSlice(*file, 99000, 5000);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->size(), 1000u);
}

TEST_F(PfsTest, SyncPublishesSize) {
  StartRuntime();
  auto client = runtime_->MakeClient();
  auto file = client->Create("/sized", 1);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(client->Write(*file, 0, ByteSpan(Buffer(500, 1))).ok());
  ASSERT_TRUE(client->Sync(*file, 500).ok());
  auto attr = client->GetAttr("/sized");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 500u);
}

TEST_F(PfsTest, UnlinkRemovesStripeObjects) {
  StartRuntime();
  auto client = runtime_->MakeClient();
  auto file = client->Create("/gone", 4);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(client->Unlink("/gone").ok());
  EXPECT_EQ(client->Open("/gone").status().code(), ErrorCode::kNotFound);
  for (int i = 0; i < runtime_->ost_count(); ++i) {
    EXPECT_EQ(runtime_->ost_store(i).ObjectCount(), 0u);
  }
}

TEST_F(PfsTest, PosixLockingSerializesOverlappingRegions) {
  PfsRuntimeOptions options;
  options.mds.lock_granularity = 1 << 20;
  StartRuntime(options);
  auto client = runtime_->MakeClient(ConsistencyMode::kPosixLocking);
  auto file = client->Create("/locked", 2);
  ASSERT_TRUE(file.ok());

  // Two threads write overlapping regions under POSIX locking; both must
  // complete (serialized, not deadlocked) and the file must contain one of
  // the two writes in the overlap, not a mix at lock granularity.
  std::atomic<int> failures{0};
  auto writer = [&](std::uint8_t fill) {
    auto c = runtime_->MakeClient(ConsistencyMode::kPosixLocking);
    Buffer data(200000, fill);
    for (int i = 0; i < 3; ++i) {
      if (!c->Write(*file, 0, ByteSpan(data)).ok()) failures.fetch_add(1);
    }
  };
  std::thread t1(writer, 0xAA), t2(writer, 0xBB);
  t1.join();
  t2.join();
  EXPECT_EQ(failures.load(), 0);
  Buffer back(200000, 0);
  auto n = runtime_->MakeClient()->Read(*file, 0, MutableByteSpan(back));
  ASSERT_TRUE(n.ok());
  EXPECT_TRUE(back[0] == 0xAA || back[0] == 0xBB);
  for (std::size_t i = 1; i < back.size(); ++i) {
    ASSERT_EQ(back[i], back[0]) << "torn write at byte " << i;
  }
}

TEST_F(PfsTest, MdsLockGranularityMakesNearbyWritesConflict) {
  // The Figure 9 shared-file effect in miniature: disjoint ranges within
  // one lock granule conflict at the MDS.
  MdsService mds(
      1, [](std::uint32_t) { return storage::ObjectId{1}; },
      [](std::uint32_t, storage::ObjectId) { return OkStatus(); },
      MdsOptions{.default_stripe_size = 1 << 20,
                 .lock_granularity = 64ull << 20,
                 .create_delay_hook = {}});
  auto file = mds.Create("/f", 1);
  ASSERT_TRUE(file.ok());
  auto l1 = mds.TryLock(file->ino, 0, 1 << 20, txn::LockMode::kExclusive, 1);
  ASSERT_TRUE(l1.ok());
  // A disjoint byte range, but the same 64 MB granule: conflict.
  auto l2 = mds.TryLock(file->ino, 10ull << 20, 11ull << 20,
                        txn::LockMode::kExclusive, 2);
  EXPECT_EQ(l2.status().code(), ErrorCode::kResourceExhausted);
  // A range in a different granule: no conflict.
  auto l3 = mds.TryLock(file->ino, 128ull << 20, 129ull << 20,
                        txn::LockMode::kExclusive, 2);
  EXPECT_TRUE(l3.ok());
}

TEST_F(PfsTest, RelaxedModeSkipsLockTraffic) {
  StartRuntime();
  auto client = runtime_->MakeClient(ConsistencyMode::kRelaxed);
  auto file = client->Create("/relaxed", 2);
  ASSERT_TRUE(file.ok());
  const std::uint64_t ops_before = runtime_->mds().metadata_ops();
  ASSERT_TRUE(client->Write(*file, 0, ByteSpan(Buffer(1000, 1))).ok());
  // No lock acquire/release round trips hit the MDS.
  EXPECT_EQ(runtime_->mds().metadata_ops(), ops_before);
}

TEST_F(PfsTest, EveryCreateHitsTheMds) {
  StartRuntime();
  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto c = runtime_->MakeClient();
      ASSERT_TRUE(c->Create("/f" + std::to_string(i), 1).ok());
    });
  }
  for (auto& t : threads) t.join();
  // The centralized-create bottleneck, observable: m creates, all through
  // one MDS.
  EXPECT_EQ(runtime_->mds().creates_served(), static_cast<std::uint64_t>(kClients));
  auto names = runtime_->mds().List();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), static_cast<std::size_t>(kClients));
}

}  // namespace
}  // namespace lwfs::pfs
