// Decoder fuzzing: every wire-format decoder in the system is fed random
// and mutated byte streams.  Decoders must return clean errors or valid
// objects — never crash, loop, or read out of bounds.  (Run under ASan in
// CI for full effect; the assertions here catch logic-level failures.)
#include <gtest/gtest.h>

#include "core/filters.h"
#include "core/protocol.h"
#include "core/runtime.h"
#include "naming/naming.h"
#include "pfs/pfs_runtime.h"
#include "pfs/protocol.h"
#include "rpc/rpc.h"
#include "security/types.h"
#include "txn/journal.h"
#include "util/rng.h"

namespace lwfs {
namespace {

/// Random buffers, sizes biased toward "almost right".
std::vector<Buffer> FuzzCases(std::uint64_t seed, std::size_t typical_size) {
  Rng rng(seed);
  std::vector<Buffer> cases;
  cases.push_back({});  // empty
  for (int i = 0; i < 400; ++i) {
    std::size_t n;
    const double roll = rng.NextDouble();
    if (roll < 0.3) {
      n = rng.NextBelow(typical_size + 1);  // short
    } else if (roll < 0.8) {
      n = typical_size + rng.NextBelow(8) - 4;  // near-exact
    } else {
      n = typical_size + rng.NextBelow(200);  // long
    }
    cases.push_back(PatternBuffer(n, rng.NextU64()));
  }
  return cases;
}

TEST(WireFuzzTest, CredentialDecoder) {
  for (const Buffer& raw : FuzzCases(1, 48)) {
    Decoder dec(raw);
    auto result = security::Credential::Decode(dec);
    if (result.ok()) {
      // Valid shape: re-encoding must reproduce the consumed bytes.
      Encoder enc;
      result->Encode(enc);
      EXPECT_EQ(enc.size(), 48u);
    }
  }
}

TEST(WireFuzzTest, CapabilityDecoder) {
  for (const Buffer& raw : FuzzCases(2, 60)) {
    Decoder dec(raw);
    auto result = security::Capability::Decode(dec);
    if (result.ok()) {
      Encoder enc;
      result->Encode(enc);
      EXPECT_EQ(enc.size(), 60u);
    }
  }
}

TEST(WireFuzzTest, FilterSpecDecoder) {
  for (const Buffer& raw : FuzzCases(3, 40)) {
    Decoder dec(raw);
    (void)core::FilterSpec::Decode(dec);
  }
}

TEST(WireFuzzTest, ObjectRefAndAttrDecoders) {
  for (const Buffer& raw : FuzzCases(4, 20)) {
    Decoder d1(raw);
    (void)core::DecodeObjectRef(d1);
    Decoder d2(raw);
    (void)core::DecodeObjAttr(d2);
  }
}

TEST(WireFuzzTest, PfsLayoutDecoder) {
  for (const Buffer& raw : FuzzCases(5, 32)) {
    Decoder dec(raw);
    auto layout = pfs::DecodeLayout(dec);
    if (layout.ok()) {
      // A "valid" random layout must still have a sane stripe count (the
      // count field is bounds-checked against the remaining bytes).
      EXPECT_LE(layout->stripes.size(), raw.size());
    }
  }
}

TEST(WireFuzzTest, JournalToleratesArbitraryObjectContents) {
  storage::MemObjectStore store;
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    auto oid = store.Create(storage::ContainerId{1}).value();
    Buffer garbage = PatternBuffer(rng.NextBelow(400), rng.NextU64());
    ASSERT_TRUE(store.Write(oid, 0, ByteSpan(garbage)).ok());
    txn::Journal journal(&store, oid);
    // Reads either parse a prefix or report corruption; both are fine.
    (void)journal.ReadAll();
    (void)journal.Outcome(1);
    (void)journal.Unfinished();
  }
}

TEST(WireFuzzTest, NamespaceSnapshotDecoder) {
  Rng rng(7);
  naming::NamingService victim;
  ASSERT_TRUE(victim.Mkdir("/live").ok());
  for (int i = 0; i < 300; ++i) {
    Buffer garbage = PatternBuffer(rng.NextBelow(300), rng.NextU64());
    (void)victim.Restore(ByteSpan(garbage));
    // A failed restore must never damage the live namespace.
    ASSERT_TRUE(victim.Exists("/live")) << "iteration " << i;
  }
  // Mutated valid snapshots: flip bytes of a real one.
  naming::NamingService source;
  ASSERT_TRUE(source.Mkdir("/a").ok());
  ASSERT_TRUE(source.Link("/a/x", storage::ObjectRef{storage::ContainerId{1},
                                                     0, storage::ObjectId{2}})
                  .ok());
  Buffer snapshot = source.Serialize();
  for (std::size_t b = 0; b < snapshot.size(); ++b) {
    Buffer mutated = snapshot;
    mutated[b] ^= 0xFF;
    naming::NamingService target;
    ASSERT_TRUE(target.Mkdir("/keep").ok());
    Status s = target.Restore(ByteSpan(mutated));
    if (!s.ok()) {
      ASSERT_TRUE(target.Exists("/keep"));
    }
  }
}

/// One live RPC endpoint to fuzz: where it is, what it serves, which portal.
struct FuzzEndpoint {
  const char* name;
  portals::Nid nid;
  std::vector<rpc::Opcode> opcodes;
  portals::PortalIndex portal = rpc::kRequestPortal;
};

/// Fire random and truncated bodies at every opcode a live deployment
/// actually registered — the op registry itself enumerates the fuzz
/// surface, so a newly added op is fuzzed the day it appears.  Every call
/// must resolve to a clean status (almost always kInvalidArgument from the
/// dispatch middleware, or a denial), and the deployment must stay
/// functional afterwards.
TEST(WireFuzzTest, LiveDispatchSurvivesRandomRequestBodies) {
  core::RuntimeOptions options;
  options.storage_servers = 1;
  auto runtime = core::ServiceRuntime::Start(options);
  ASSERT_TRUE(runtime.ok());
  pfs::PfsRuntimeOptions pfs_options;
  pfs_options.ost_count = 1;
  auto pfs_runtime =
      pfs::PfsRuntime::Start(&(*runtime)->fabric(), pfs_options);
  ASSERT_TRUE(pfs_runtime.ok());

  const core::Deployment& dep = (*runtime)->deployment();
  std::vector<FuzzEndpoint> endpoints;
  endpoints.push_back(
      {"authn", dep.authn, (*runtime)->authn_server().registered_opcodes()});
  endpoints.push_back(
      {"authz", dep.authz, (*runtime)->authz_server().registered_opcodes()});
  endpoints.push_back(
      {"naming", dep.naming,
       (*runtime)->naming_server().registered_opcodes()});
  endpoints.push_back(
      {"locks", dep.locks, (*runtime)->lock_server().registered_opcodes()});
  endpoints.push_back(
      {"storage", dep.storage[0],
       (*runtime)->storage_server(0).registered_data_opcodes()});
  endpoints.push_back(
      {"storage_ctl", dep.storage[0],
       (*runtime)->storage_server(0).registered_control_opcodes(),
       rpc::kControlPortal});
  const pfs::PfsDeployment& pfs_dep = (*pfs_runtime)->deployment();
  endpoints.push_back({"mds", pfs_dep.mds,
                       (*pfs_runtime)->mds_server().registered_opcodes()});
  endpoints.push_back({"ost", pfs_dep.osts[0],
                       (*pfs_runtime)->ost_server(0).registered_opcodes()});

  rpc::RpcClient raw((*runtime)->fabric().CreateNic());
  Rng rng(8);
  std::size_t total_ops = 0;
  for (const FuzzEndpoint& ep : endpoints) {
    EXPECT_FALSE(ep.opcodes.empty()) << ep.name;
    for (rpc::Opcode op : ep.opcodes) {
      ++total_ops;
      for (const Buffer& body : FuzzCases(rng.NextU64(), 64)) {
        rpc::CallOptions call;
        call.request_portal = ep.portal;
        auto reply = raw.Call(ep.nid, op, ByteSpan(body), call);
        if (!reply.ok()) {
          // Transport-level failure modes (timeouts, circuit breaker) would
          // mean the fuzz crashed or wedged the server; a clean dispatch
          // rejection never looks like one.
          EXPECT_NE(reply.status().code(), ErrorCode::kTimeout)
              << ep.name << " op " << op;
          EXPECT_NE(reply.status().code(), ErrorCode::kUnavailable)
              << ep.name << " op " << op;
        }
      }
    }
  }
  // The registry spans both stacks (sanity check on the enumeration).
  EXPECT_GE(total_ops, 40u);

  // Everything still works end to end after the storm.
  (*runtime)->AddUser("fuzz", "pw", 1);
  auto client = (*runtime)->MakeClient();
  auto cred = client->Login("fuzz", "pw");
  ASSERT_TRUE(cred.ok());
  auto cid = client->CreateContainer(*cred);
  ASSERT_TRUE(cid.ok());
  auto pfs_client = (*pfs_runtime)->MakeClient();
  auto file = pfs_client->Create("/fuzz-after", 1);
  ASSERT_TRUE(file.ok());
}

TEST(WireFuzzTest, DecoderNeverReadsPastEnd) {
  // Adversarial length prefixes: claim huge payloads.
  Encoder enc;
  enc.PutU32(0xFFFFFFFF);
  enc.PutU8(1);
  Decoder dec(enc.buffer());
  EXPECT_FALSE(dec.GetBytes().ok());
  EXPECT_FALSE(dec.GetRaw(1u << 30).ok());
}

}  // namespace
}  // namespace lwfs
