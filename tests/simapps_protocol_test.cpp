// Protocol-constant pinning: the simulator's cost model assumes specific
// message sequences per operation (one small request per create, bulk data
// moved by server-directed chunks, every PFS create touching the MDS).
// These tests measure the *real stack's* wire traffic with fabric counters
// and pin those constants, so the sim and the implementation cannot drift
// apart silently.
#include <gtest/gtest.h>

#include "core/runtime.h"
#include "pfs/pfs_runtime.h"

namespace lwfs {
namespace {

class LwfsProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::RuntimeOptions options;
    options.storage_servers = 2;
    options.storage.bulk_chunk_bytes = kChunk;
    auto rt = core::ServiceRuntime::Start(options);
    ASSERT_TRUE(rt.ok());
    runtime_ = std::move(*rt);
    runtime_->AddUser("u", "p", 1);
    client_ = runtime_->MakeClient();
    auto cred = client_->Login("u", "p");
    ASSERT_TRUE(cred.ok());
    auto cid = client_->CreateContainer(*cred);
    ASSERT_TRUE(cid.ok());
    cid_ = *cid;
    auto cap = client_->GetCap(*cred, *cid, security::kOpAll);
    ASSERT_TRUE(cap.ok());
    cap_ = *cap;
    // Warm the capability cache on both servers so steady-state counts
    // below contain no verify traffic — matching the simulator, which
    // (like Figure 8) acquires capabilities once, outside the timed loop.
    ASSERT_TRUE(client_->CreateObject(0, cap_).ok());
    ASSERT_TRUE(client_->CreateObject(1, cap_).ok());
  }

  static constexpr std::size_t kChunk = 64 << 10;

  std::unique_ptr<core::ServiceRuntime> runtime_;
  std::unique_ptr<core::Client> client_;
  storage::ContainerId cid_;
  security::Capability cap_;
};

TEST_F(LwfsProtocolTest, SteadyStateCreateIsOneRoundTripToTheStorageServer) {
  runtime_->fabric().ResetStats();
  ASSERT_TRUE(client_->CreateObject(0, cap_).ok());
  auto stats = runtime_->fabric().Stats();
  // Request + reply; no metadata server, no authorization traffic.
  EXPECT_EQ(stats.puts, 2u);
  EXPECT_EQ(stats.gets, 0u);
}

TEST_F(LwfsProtocolTest, FirstUseOfACapabilityAddsExactlyOneVerifyRoundTrip) {
  auto cap2 = client_->GetCap(client_->Login("u", "p").value(), cid_,
                              security::kOpCreate);
  ASSERT_TRUE(cap2.ok());
  runtime_->fabric().ResetStats();
  ASSERT_TRUE(client_->CreateObject(0, *cap2).ok());
  auto stats = runtime_->fabric().Stats();
  // create req/reply + verify req/reply (Figure 4-b).
  EXPECT_EQ(stats.puts, 4u);
}

TEST_F(LwfsProtocolTest, WritePullsExactlyCeilChunks) {
  auto oid = client_->CreateObject(0, cap_);
  ASSERT_TRUE(oid.ok());
  const std::size_t bytes = 3 * kChunk + 100;  // -> 4 pulls
  Buffer data = PatternBuffer(bytes, 1);
  runtime_->fabric().ResetStats();
  ASSERT_TRUE(client_->WriteObject(0, cap_, *oid, 0, ByteSpan(data)).ok());
  auto stats = runtime_->fabric().Stats();
  EXPECT_EQ(stats.puts, 2u);  // small request + small reply only
  EXPECT_EQ(stats.gets, 4u);  // server-directed pulls
  EXPECT_EQ(stats.get_bytes, bytes);
  // The requests really are small: the paper's whole point is that bulk
  // data never rides the request channel.
  EXPECT_LT(stats.put_bytes, 1000u);
}

TEST_F(LwfsProtocolTest, ReadPushesExactlyCeilChunks) {
  auto oid = client_->CreateObject(0, cap_);
  ASSERT_TRUE(oid.ok());
  const std::size_t bytes = 2 * kChunk + 1;  // -> 3 pushes
  Buffer data = PatternBuffer(bytes, 2);
  ASSERT_TRUE(client_->WriteObject(0, cap_, *oid, 0, ByteSpan(data)).ok());
  runtime_->fabric().ResetStats();
  auto back = client_->ReadObjectAlloc(0, cap_, *oid, 0, bytes);
  ASSERT_TRUE(back.ok());
  auto stats = runtime_->fabric().Stats();
  EXPECT_EQ(stats.gets, 0u);
  // 2 small messages + 3 data pushes; only request/reply framing on top of
  // the payload bytes.
  EXPECT_EQ(stats.puts, 5u) << "back=" << back->size() << " put_bytes="
                            << stats.put_bytes << " obj_size="
                            << client_->GetAttr(0, cap_, *oid)->size;
  EXPECT_GE(stats.put_bytes, bytes);
  EXPECT_LT(stats.put_bytes, bytes + 1000);
}

class PfsProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pfs::PfsRuntimeOptions options;
    options.ost_count = 4;
    auto rt = pfs::PfsRuntime::Start(&fabric_, options);
    ASSERT_TRUE(rt.ok());
    runtime_ = std::move(*rt);
  }

  portals::Fabric fabric_;
  std::unique_ptr<pfs::PfsRuntime> runtime_;
};

TEST_F(PfsProtocolTest, CreateCostsClientMdsPlusMdsOstRoundTrips) {
  auto client = runtime_->MakeClient();
  fabric_.ResetStats();
  ASSERT_TRUE(client->Create("/one-stripe", 1).ok());
  auto stats = fabric_.Stats();
  // client->MDS req/reply + MDS->OST create req/reply: the serialized MDS
  // path the simulator charges mds_create_time + stripe time for.
  EXPECT_EQ(stats.puts, 4u);

  fabric_.ResetStats();
  ASSERT_TRUE(client->Create("/four-stripes", 4).ok());
  stats = fabric_.Stats();
  EXPECT_EQ(stats.puts, 2u + 2u * 4u);  // one OST round trip per stripe
}

TEST_F(PfsProtocolTest, RelaxedWriteTouchesOnlyOsts) {
  auto client = runtime_->MakeClient(pfs::ConsistencyMode::kRelaxed);
  auto file = client->Create("/f", 1);
  ASSERT_TRUE(file.ok());
  Buffer data = PatternBuffer(100000, 1);
  fabric_.ResetStats();
  ASSERT_TRUE(client->Write(*file, 0, ByteSpan(data)).ok());
  auto stats = fabric_.Stats();
  EXPECT_EQ(stats.puts, 2u);  // OST req/reply
  EXPECT_EQ(stats.gets, 1u);  // one pull (single chunk)
}

TEST_F(PfsProtocolTest, PosixWriteAddsTwoMdsLockRoundTrips) {
  auto client = runtime_->MakeClient(pfs::ConsistencyMode::kPosixLocking);
  auto file = client->Create("/locked", 1);
  ASSERT_TRUE(file.ok());
  Buffer data = PatternBuffer(1000, 1);
  fabric_.ResetStats();
  ASSERT_TRUE(client->Write(*file, 0, ByteSpan(data)).ok());
  auto stats = fabric_.Stats();
  // lock try + reply, OST write + reply, unlock + reply — the 2-extra-MDS-
  // round-trips-per-write the simulator charges the shared-file model.
  EXPECT_EQ(stats.puts, 6u);
}

}  // namespace
}  // namespace lwfs
