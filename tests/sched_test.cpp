// Server-side I/O scheduler: extent-merge planning (adjacent, overlapping,
// out-of-order, cross-object), per-run medium accounting pinned through the
// scheduler counters, staging-pool flow control, and the scheduled data
// path end to end on a live runtime.
#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "core/io_scheduler.h"
#include "core/runtime.h"
#include "util/clock.h"

namespace lwfs {
namespace {

using core::IoScheduler;
using core::MergedRun;
using core::PendingExtent;
using core::PlanRuns;
using core::StagingPool;

PendingExtent Write(std::uint64_t oid, std::uint64_t offset,
                    std::uint64_t length) {
  return PendingExtent{storage::ObjectId{oid}, true, offset, length};
}

PendingExtent Read(std::uint64_t oid, std::uint64_t offset,
                   std::uint64_t length) {
  return PendingExtent{storage::ObjectId{oid}, false, offset, length};
}

TEST(PlanRunsTest, AdjacentExtentsMergeIntoOneRun) {
  const std::vector<PendingExtent> batch = {Write(1, 0, 100),
                                            Write(1, 100, 50)};
  auto runs = PlanRuns(batch);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].offset, 0u);
  EXPECT_EQ(runs[0].end, 150u);
  EXPECT_EQ(runs[0].bytes(), 150u);
  EXPECT_EQ(runs[0].members, (std::vector<std::size_t>{0, 1}));
}

TEST(PlanRunsTest, OverlappingExtentsMergeAndRunCoversTheUnion) {
  const std::vector<PendingExtent> batch = {Write(1, 0, 100),
                                            Write(1, 50, 100)};
  auto runs = PlanRuns(batch);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].offset, 0u);
  EXPECT_EQ(runs[0].end, 150u);  // union, not the 200-byte sum
}

TEST(PlanRunsTest, OutOfOrderExtentsAreElevatorSortedThenMerged) {
  // Arrival order 200, 0, 100 — the elevator pass services 0, 100, 200 and
  // the three touching extents collapse into one contiguous run.
  const std::vector<PendingExtent> batch = {Write(7, 200, 100),
                                            Write(7, 0, 100),
                                            Write(7, 100, 100)};
  auto runs = PlanRuns(batch);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].offset, 0u);
  EXPECT_EQ(runs[0].end, 300u);
  // Members come back in offset order (input indices 1, 2, 0).
  EXPECT_EQ(runs[0].members, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(PlanRunsTest, GapsSplitRuns) {
  const std::vector<PendingExtent> batch = {Write(1, 0, 10), Write(1, 20, 10)};
  auto runs = PlanRuns(batch);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].end, 10u);
  EXPECT_EQ(runs[1].offset, 20u);
}

TEST(PlanRunsTest, CrossObjectExtentsNeverMerge) {
  // Byte-adjacent offsets on different objects are different media regions.
  const std::vector<PendingExtent> batch = {Write(1, 0, 100), Write(2, 100, 100),
                                            Write(1, 100, 100)};
  auto runs = PlanRuns(batch);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].oid.value, 1u);
  EXPECT_EQ(runs[0].bytes(), 200u);
  EXPECT_EQ(runs[1].oid.value, 2u);
}

TEST(PlanRunsTest, ReadsAndWritesOnTheSameBytesStaySeparateRuns) {
  const std::vector<PendingExtent> batch = {Write(1, 0, 100), Read(1, 100, 100)};
  auto runs = PlanRuns(batch);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_NE(runs[0].is_write, runs[1].is_write);
}

// The remote_verifies_-style pin for merging: stall the scheduler inside a
// first batch, queue strided extents behind it, and check the counters —
// the medium is charged exactly `runs` times, never once per extent, and
// the merged members execute in offset order.
TEST(IoSchedulerTest, ChargesMediumOncePerMergedRun) {
  IoScheduler sched(core::IoSchedulerOptions{});
  sched.Start();

  std::promise<void> started;
  std::promise<void> release;
  auto released = release.get_future().share();
  auto first = sched.Submit(storage::ObjectId{1}, true, 0, 64, [&] {
    started.set_value();
    released.wait();
    return OkStatus();
  });
  started.get_future().wait();  // scheduler is now inside batch 1

  std::mutex order_mutex;
  std::vector<std::uint64_t> service_order;
  auto tracked = [&](std::uint64_t offset) {
    return [&, offset] {
      std::lock_guard<std::mutex> lock(order_mutex);
      service_order.push_back(offset);
      return OkStatus();
    };
  };
  // Three touching extents on object 2, submitted out of order, plus one
  // disjoint extent on object 3 — batch 2 must plan two runs.
  auto a = sched.Submit(storage::ObjectId{2}, true, 8192, 4096, tracked(8192));
  auto b = sched.Submit(storage::ObjectId{2}, true, 0, 4096, tracked(0));
  auto c = sched.Submit(storage::ObjectId{2}, true, 4096, 4096, tracked(4096));
  auto d = sched.Submit(storage::ObjectId{3}, true, 0, 4096, tracked(0));
  release.set_value();

  EXPECT_TRUE(first->Await().ok());
  EXPECT_TRUE(a->Await().ok());
  EXPECT_TRUE(b->Await().ok());
  EXPECT_TRUE(c->Await().ok());
  EXPECT_TRUE(d->Await().ok());

  const auto stats = sched.stats();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.runs, 3u);    // batch 1, the merged object-2 run, object 3
  EXPECT_EQ(stats.merges, 2u);  // two extents absorbed into the object-2 run
  EXPECT_EQ(stats.coalesced_bytes, 12288u);
  EXPECT_GE(stats.queue_depth_hwm, 4u);
  {
    std::lock_guard<std::mutex> lock(order_mutex);
    ASSERT_EQ(service_order.size(), 4u);
    // Object 2's merged run services 0, 4096, 8192 ascending; object 3 last.
    EXPECT_EQ(service_order[0], 0u);
    EXPECT_EQ(service_order[1], 4096u);
    EXPECT_EQ(service_order[2], 8192u);
  }
  sched.Stop();
}

TEST(IoSchedulerTest, ResetStatsZeroesCountersIncludingHighWaterMark) {
  IoScheduler sched(core::IoSchedulerOptions{});
  sched.Start();
  auto ticket = sched.Submit(storage::ObjectId{1}, true, 0, 10,
                             [] { return OkStatus(); });
  EXPECT_TRUE(ticket->Await().ok());
  EXPECT_GT(sched.stats().requests, 0u);
  EXPECT_GE(sched.stats().queue_depth_hwm, 1u);
  sched.ResetStats();
  const auto stats = sched.stats();
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.runs, 0u);
  EXPECT_EQ(stats.queue_depth_hwm, 0u);
  sched.Stop();
}

TEST(IoSchedulerTest, StopDrainsQueuedExtentsAndRejectsNewOnes) {
  auto sched = std::make_unique<IoScheduler>(core::IoSchedulerOptions{});
  sched->Start();
  std::atomic<int> serviced{0};
  std::vector<std::shared_ptr<core::IoTicket>> tickets;
  for (int i = 0; i < 16; ++i) {
    tickets.push_back(sched->Submit(storage::ObjectId{1}, true,
                                    static_cast<std::uint64_t>(i) * 10, 10,
                                    [&] {
                                      serviced.fetch_add(1);
                                      return OkStatus();
                                    }));
  }
  sched->Stop();
  for (auto& t : tickets) EXPECT_TRUE(t->Await().ok());
  EXPECT_EQ(serviced.load(), 16);
  auto late = sched->Submit(storage::ObjectId{1}, true, 0, 10,
                            [] { return OkStatus(); });
  EXPECT_EQ(late->Await().code(), ErrorCode::kUnavailable);
}

TEST(StagingPoolTest, AcquireBlocksUntilSpaceIsReleased) {
  StagingPool pool(100);
  ASSERT_TRUE(pool.Acquire(80).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    EXPECT_TRUE(pool.Acquire(50).ok());
    acquired.store(true);
  });
  util::RealClockInstance()->SleepFor(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  pool.Release(80);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(pool.waits(), 1u);
  pool.Release(50);
}

TEST(StagingPoolTest, TryAcquireNeverBlocksAndTakesOnlyFreeSpace) {
  StagingPool pool(100);
  EXPECT_TRUE(pool.TryAcquire(80));
  EXPECT_FALSE(pool.TryAcquire(50));  // would exceed capacity: no wait
  pool.Release(80);
  EXPECT_TRUE(pool.TryAcquire(50));
  pool.Release(50);
}

// The shutdown hook: Close must wake a blocked Acquire with kUnavailable
// and fail all later acquires, so StorageServer::Stop never hangs joining
// a worker stalled on the pool.
TEST(StagingPoolTest, CloseWakesBlockedAcquireWithUnavailable) {
  StagingPool pool(100);
  ASSERT_TRUE(pool.Acquire(100).ok());
  std::promise<Status> woke;
  std::thread waiter([&] { woke.set_value(pool.Acquire(50)); });
  auto result = woke.get_future();
  util::RealClockInstance()->SleepFor(std::chrono::milliseconds(20));
  pool.Close();
  waiter.join();
  EXPECT_EQ(result.get().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(pool.Acquire(1).code(), ErrorCode::kUnavailable);
  EXPECT_FALSE(pool.TryAcquire(1));
  pool.Release(100);  // outstanding reservations still drain
}

// End to end on the live stack: concurrent strided writes through the
// async window land intact and the server reports scheduler activity.
TEST(SchedServerTest, ConcurrentStridedWritesRoundTripThroughScheduler) {
  core::RuntimeOptions options;
  options.storage_servers = 1;
  options.storage.worker_threads = 4;
  // A small op cost keeps the medium busy enough for extents to queue up
  // behind it and merge; small enough to keep the test fast.
  options.storage.modeled_op_latency_us = 20;
  auto runtime = core::ServiceRuntime::Start(options).value();
  runtime->AddUser("u", "pw", 1);
  auto client = runtime->MakeClient();
  auto cred = client->Login("u", "pw").value();
  auto cid = client->CreateContainer(cred).value();
  auto cap = client->GetCap(cred, cid, security::kOpAll).value();
  auto oid = client->CreateObject(0, cap).value();

  constexpr std::size_t kExtent = 4096;
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint32_t kPerThread = 32;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto worker = runtime->MakeClient();
      const Buffer payload(kExtent, static_cast<std::uint8_t>('A' + t));
      core::Batch batch(worker.get(), /*window=*/8);
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        // Interleaved stride: consecutive offsets come from different
        // threads, so only server-side coalescing can join them.
        const std::uint64_t offset = (i * kThreads + t) * kExtent;
        if (!batch.Write(0, cap, oid, offset, ByteSpan(payload)).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
      if (!batch.Drain().ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Every extent reads back all-from-its-writer.
  for (std::uint32_t i = 0; i < kPerThread; ++i) {
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      const std::uint64_t offset = (i * kThreads + t) * kExtent;
      auto back = client->ReadObjectAlloc(0, cap, oid, offset, kExtent);
      ASSERT_TRUE(back.ok());
      ASSERT_EQ(back->size(), kExtent);
      for (std::uint8_t byte : *back) {
        ASSERT_EQ(byte, static_cast<std::uint8_t>('A' + t));
      }
    }
  }

  const auto stats = runtime->storage_server(0).sched_stats();
  EXPECT_GE(stats.requests, kThreads * kPerThread);  // plus the reads
  EXPECT_GT(stats.runs, 0u);
  EXPECT_LE(stats.runs, stats.requests);
  EXPECT_GE(stats.queue_depth_hwm, 2u);  // concurrency actually queued
}

// The scheduler-off path must stay intact: it is the bench baseline and
// the fallback configuration.
TEST(SchedServerTest, SchedulerOffPathStillRoundTrips) {
  core::RuntimeOptions options;
  options.storage_servers = 1;
  options.storage.scheduler = false;
  options.storage.modeled_op_latency_us = 10;
  auto runtime = core::ServiceRuntime::Start(options).value();
  runtime->AddUser("u", "pw", 1);
  auto client = runtime->MakeClient();
  auto cred = client->Login("u", "pw").value();
  auto cid = client->CreateContainer(cred).value();
  auto cap = client->GetCap(cred, cid, security::kOpAll).value();
  auto oid = client->CreateObject(0, cap).value();

  const Buffer payload = PatternBuffer(10000, 42);
  ASSERT_TRUE(client->WriteObject(0, cap, oid, 0, ByteSpan(payload)).ok());
  auto back = client->ReadObjectAlloc(0, cap, oid, 0, payload.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
  EXPECT_EQ(runtime->storage_server(0).sched_stats().requests, 0u);
}

// Multi-chunk requests squeeze through a staging pool clamped to the
// two-chunk minimum: per-request memory stays bounded and data is intact.
TEST(SchedServerTest, LargeWriteSurvivesTinyStagingPool) {
  core::RuntimeOptions options;
  options.storage_servers = 1;
  options.storage.bulk_chunk_bytes = 4096;
  options.storage.staging_bytes = 1;  // clamped up to 2 chunks
  auto runtime = core::ServiceRuntime::Start(options).value();
  runtime->AddUser("u", "pw", 1);
  auto client = runtime->MakeClient();
  auto cred = client->Login("u", "pw").value();
  auto cid = client->CreateContainer(cred).value();
  auto cap = client->GetCap(cred, cid, security::kOpAll).value();
  auto oid = client->CreateObject(0, cap).value();

  const Buffer payload = PatternBuffer(64 << 10, 7);  // 16 chunks
  ASSERT_TRUE(client->WriteObject(0, cap, oid, 0, ByteSpan(payload)).ok());
  auto back = client->ReadObjectAlloc(0, cap, oid, 0, payload.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
}

// Regression: concurrent multi-chunk reads through a staging pool clamped
// to the two-chunk minimum.  A read worker used to hold chunk N's
// reservation while blocking for chunk N+1's space — with more than one
// reader in flight, every worker held one chunk and waited forever for a
// second.  Workers now retire their own pipeline before blocking, so all
// readers complete at any pool size.
TEST(SchedServerTest, ConcurrentLargeReadsSurviveTinyStagingPool) {
  core::RuntimeOptions options;
  options.storage_servers = 1;
  options.storage.worker_threads = 4;
  options.storage.bulk_chunk_bytes = 4096;
  options.storage.staging_bytes = 1;  // clamped up to 2 chunks
  auto runtime = core::ServiceRuntime::Start(options).value();
  runtime->AddUser("u", "pw", 1);
  auto client = runtime->MakeClient();
  auto cred = client->Login("u", "pw").value();
  auto cid = client->CreateContainer(cred).value();
  auto cap = client->GetCap(cred, cid, security::kOpAll).value();
  auto oid = client->CreateObject(0, cap).value();

  const Buffer payload = PatternBuffer(64 << 10, 5);  // 16 chunks each read
  ASSERT_TRUE(client->WriteObject(0, cap, oid, 0, ByteSpan(payload)).ok());

  constexpr int kReaders = 4;
  std::atomic<int> intact{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      auto worker = runtime->MakeClient();
      auto back = worker->ReadObjectAlloc(0, cap, oid, 0, payload.size());
      if (back.ok() && *back == payload) intact.fetch_add(1);
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(intact.load(), kReaders);
}

}  // namespace
}  // namespace lwfs
