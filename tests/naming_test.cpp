// Tests for the naming service, including transactional name creation.
#include <gtest/gtest.h>

#include "naming/naming.h"
#include "storage/object_store.h"
#include "txn/journal.h"
#include "txn/two_phase.h"

namespace lwfs::naming {
namespace {

storage::ObjectRef Ref(std::uint64_t oid) {
  return storage::ObjectRef{storage::ContainerId{1}, 0, storage::ObjectId{oid}};
}

TEST(SplitPathTest, ValidPaths) {
  EXPECT_EQ(SplitPath("/")->size(), 0u);
  auto p = SplitPath("/a/b/c");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitPath("/a/")->size(), 1u);  // trailing slash ok
}

TEST(SplitPathTest, InvalidPaths) {
  EXPECT_FALSE(SplitPath("").ok());
  EXPECT_FALSE(SplitPath("relative/path").ok());
  EXPECT_FALSE(SplitPath("/a//b").ok());
  EXPECT_FALSE(SplitPath("/a/./b").ok());
  EXPECT_FALSE(SplitPath("/a/../b").ok());
}

class NamingTest : public ::testing::Test {
 protected:
  NamingService ns_;
};

TEST_F(NamingTest, MkdirAndList) {
  ASSERT_TRUE(ns_.Mkdir("/ckpt").ok());
  ASSERT_TRUE(ns_.Mkdir("/ckpt/run1").ok());
  auto entries = ns_.List("/");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "ckpt");
  EXPECT_TRUE((*entries)[0].is_directory);
}

TEST_F(NamingTest, MkdirRecursive) {
  EXPECT_FALSE(ns_.Mkdir("/a/b/c").ok());
  EXPECT_TRUE(ns_.Mkdir("/a/b/c", /*recursive=*/true).ok());
  EXPECT_TRUE(ns_.Exists("/a/b"));
}

TEST_F(NamingTest, MkdirExistingFails) {
  ASSERT_TRUE(ns_.Mkdir("/a").ok());
  EXPECT_EQ(ns_.Mkdir("/a").code(), ErrorCode::kAlreadyExists);
}

TEST_F(NamingTest, LinkAndLookup) {
  ASSERT_TRUE(ns_.Mkdir("/d").ok());
  ASSERT_TRUE(ns_.Link("/d/obj", Ref(42)).ok());
  auto ref = ns_.Lookup("/d/obj");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->oid.value, 42u);
  EXPECT_EQ(ns_.link_count(), 1u);
}

TEST_F(NamingTest, LinkRequiresParentAndUniqueName) {
  EXPECT_EQ(ns_.Link("/missing/obj", Ref(1)).code(), ErrorCode::kNotFound);
  ASSERT_TRUE(ns_.Mkdir("/d").ok());
  ASSERT_TRUE(ns_.Link("/d/x", Ref(1)).ok());
  EXPECT_EQ(ns_.Link("/d/x", Ref(2)).code(), ErrorCode::kAlreadyExists);
}

TEST_F(NamingTest, LookupErrors) {
  EXPECT_EQ(ns_.Lookup("/nope").status().code(), ErrorCode::kNotFound);
  ASSERT_TRUE(ns_.Mkdir("/d").ok());
  EXPECT_EQ(ns_.Lookup("/d").status().code(), ErrorCode::kInvalidArgument);
}

TEST_F(NamingTest, UnlinkAndRmdir) {
  ASSERT_TRUE(ns_.Mkdir("/d").ok());
  ASSERT_TRUE(ns_.Link("/d/x", Ref(1)).ok());
  EXPECT_EQ(ns_.Rmdir("/d").code(), ErrorCode::kFailedPrecondition);  // not empty
  EXPECT_EQ(ns_.Unlink("/d").code(), ErrorCode::kInvalidArgument);    // directory
  ASSERT_TRUE(ns_.Unlink("/d/x").ok());
  EXPECT_FALSE(ns_.Exists("/d/x"));
  EXPECT_TRUE(ns_.Rmdir("/d").ok());
  EXPECT_FALSE(ns_.Exists("/d"));
}

TEST_F(NamingTest, Rename) {
  ASSERT_TRUE(ns_.Mkdir("/a").ok());
  ASSERT_TRUE(ns_.Mkdir("/b").ok());
  ASSERT_TRUE(ns_.Link("/a/x", Ref(5)).ok());
  ASSERT_TRUE(ns_.Rename("/a/x", "/b/y").ok());
  EXPECT_FALSE(ns_.Exists("/a/x"));
  EXPECT_EQ(ns_.Lookup("/b/y")->oid.value, 5u);
  EXPECT_EQ(ns_.Rename("/a/ghost", "/b/z").code(), ErrorCode::kNotFound);
  ASSERT_TRUE(ns_.Link("/a/w", Ref(6)).ok());
  EXPECT_EQ(ns_.Rename("/a/w", "/b/y").code(), ErrorCode::kAlreadyExists);
}

TEST_F(NamingTest, StagedLinkInvisibleUntilCommit) {
  storage::MemObjectStore store;
  auto journal = txn::Journal::Create(&store, storage::ContainerId{1});
  ASSERT_TRUE(journal.ok());
  txn::Coordinator coord(&*journal);
  auto txid = coord.Begin({ns_.participant()});
  ASSERT_TRUE(txid.ok());

  ASSERT_TRUE(ns_.Mkdir("/ckpt").ok());
  ASSERT_TRUE(ns_.StageLink(*txid, "/ckpt/run1", Ref(9)).ok());
  // Figure 8: the name appears only when the transaction commits.
  EXPECT_FALSE(ns_.Exists("/ckpt/run1"));
  ASSERT_TRUE(coord.Commit(*txid).ok());
  EXPECT_TRUE(ns_.Exists("/ckpt/run1"));
  EXPECT_EQ(ns_.Lookup("/ckpt/run1")->oid.value, 9u);
}

TEST_F(NamingTest, StagedLinkDiscardedOnAbort) {
  storage::MemObjectStore store;
  auto journal = txn::Journal::Create(&store, storage::ContainerId{1});
  ASSERT_TRUE(journal.ok());
  txn::Coordinator coord(&*journal);
  auto txid = coord.Begin({ns_.participant()});
  ASSERT_TRUE(txid.ok());

  ASSERT_TRUE(ns_.Mkdir("/ckpt").ok());
  ASSERT_TRUE(ns_.StageLink(*txid, "/ckpt/run1", Ref(9)).ok());
  ASSERT_TRUE(coord.Abort(*txid).ok());
  EXPECT_FALSE(ns_.Exists("/ckpt/run1"));
}

TEST_F(NamingTest, StagedLinkValidatesPathEagerly) {
  EXPECT_FALSE(ns_.StageLink(1, "bad-path", Ref(1)).ok());
}

TEST_F(NamingTest, ListEntriesCarryRefs) {
  ASSERT_TRUE(ns_.Mkdir("/d").ok());
  ASSERT_TRUE(ns_.Link("/d/x", Ref(11)).ok());
  ASSERT_TRUE(ns_.Mkdir("/d/sub").ok());
  auto entries = ns_.List("/d");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  // Map order: "sub" < "x".
  EXPECT_EQ((*entries)[0].name, "sub");
  EXPECT_TRUE((*entries)[0].is_directory);
  EXPECT_EQ((*entries)[1].name, "x");
  ASSERT_TRUE((*entries)[1].ref.has_value());
  EXPECT_EQ((*entries)[1].ref->oid.value, 11u);
}

}  // namespace
}  // namespace lwfs::naming
