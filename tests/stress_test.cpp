// Whole-stack concurrency stress: many client threads exercising every
// service at once — object I/O, file-system ops, checkpoints, policy
// changes with revocation, transactions — while invariants are checked at
// the end.  No operation may crash, wedge, or corrupt unrelated state.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>

#include "checkpoint/checkpoint.h"
#include "core/runtime.h"
#include "lwfsfs/lwfsfs.h"
#include "util/clock.h"
#include "util/rng.h"

namespace lwfs {
namespace {

TEST(StressTest, MixedWorkloadAcrossAllServices) {
  core::RuntimeOptions options;
  options.storage_servers = 4;
  options.storage.worker_threads = 2;
  auto runtime = core::ServiceRuntime::Start(options).value();
  runtime->AddUser("owner", "pw", 1);
  runtime->AddUser("guest", "pw", 2);

  auto owner = runtime->MakeClient();
  auto owner_cred = owner->Login("owner", "pw").value();
  auto cid = owner->CreateContainer(owner_cred).value();
  auto owner_cap = owner->GetCap(owner_cred, cid, security::kOpAll).value();
  ASSERT_TRUE(owner->Mkdir("/stress", true).ok());
  ASSERT_TRUE(owner->SetGrant(owner_cred, cid, 2,
                              security::kOpRead | security::kOpWrite |
                                  security::kOpCreate)
                  .ok());

  std::atomic<int> hard_failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  // Writer threads: object create/write/read round trips.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      auto client = runtime->MakeClient();
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      while (!stop.load()) {
        const auto server = static_cast<std::uint32_t>(rng.NextBelow(4));
        auto oid = client->CreateObject(server, owner_cap);
        if (!oid.ok()) {
          hard_failures.fetch_add(1);
          continue;
        }
        Buffer data = PatternBuffer(1 + rng.NextBelow(20000), rng.NextU64());
        if (!client->WriteObject(server, owner_cap, *oid, 0, ByteSpan(data))
                 .ok()) {
          hard_failures.fetch_add(1);
          continue;
        }
        auto back =
            client->ReadObjectAlloc(server, owner_cap, *oid, 0, data.size());
        if (!back.ok() || *back != data) hard_failures.fetch_add(1);
        (void)client->RemoveObject(server, owner_cap, *oid);
      }
    });
  }

  // Guest thread: reads/writes under a grant that keeps flipping — denials
  // are expected (the policy-change race), crashes/corruption are not.
  threads.emplace_back([&] {
    auto client = runtime->MakeClient();
    auto cred = client->Login("guest", "pw").value();
    Rng rng(99);
    while (!stop.load()) {
      auto cap = client->GetCap(cred, cid,
                                security::kOpWrite | security::kOpCreate);
      if (!cap.ok()) continue;  // grant currently revoked: fine
      auto oid = client->CreateObject(0, *cap);
      if (oid.ok()) {
        Buffer data = PatternBuffer(100, rng.NextU64());
        (void)client->WriteObject(0, *cap, *oid, 0, ByteSpan(data));
      }
    }
  });

  // Policy churn thread: chmod the guest in and out (drives revocation
  // and cache invalidation continuously).
  threads.emplace_back([&] {
    auto client = runtime->MakeClient();
    auto cred = client->Login("owner", "pw").value();
    bool granted = true;
    while (!stop.load()) {
      granted = !granted;
      Status s = client->SetGrant(
          cred, cid, 2,
          granted ? (security::kOpRead | security::kOpWrite |
                     security::kOpCreate)
                  : security::kOpRead);
      if (!s.ok()) hard_failures.fetch_add(1);
      util::RealClockInstance()->SleepFor(std::chrono::milliseconds(2));
    }
  });

  // File-system thread: create/write/read/remove through LwfsFs.
  threads.emplace_back([&] {
    auto client = runtime->MakeClient();
    auto fs = fs::LwfsFs::Mount(client.get(), owner_cap, "/stress",
                                fs::FsOptions{4096, 0,
                                              fs::FsConsistency::kRelaxed})
                  .value();
    Rng rng(7);
    int seq = 0;
    while (!stop.load()) {
      const std::string path = "/f" + std::to_string(seq++ % 8);
      if (fs->Exists(path)) {
        (void)fs->Remove(path);
        continue;
      }
      auto file = fs->Create(path);
      if (!file.ok()) {
        hard_failures.fetch_add(1);
        continue;
      }
      Buffer data = PatternBuffer(1 + rng.NextBelow(30000), rng.NextU64());
      if (!fs->Write(*file, 0, ByteSpan(data)).ok()) {
        hard_failures.fetch_add(1);
        continue;
      }
      Buffer out(data.size(), 0);
      auto n = fs->Read(*file, 0, MutableByteSpan(out));
      if (!n.ok() || *n != data.size() || out != data) {
        hard_failures.fetch_add(1);
      }
    }
  });

  // Transaction thread: commit/abort alternation.
  threads.emplace_back([&] {
    auto client = runtime->MakeClient();
    bool commit = false;
    while (!stop.load()) {
      commit = !commit;
      core::TxnParticipants participants;
      participants.storage_servers = {1, 2};
      auto txn = client->BeginTxn(3, owner_cap, participants);
      if (!txn.ok()) {
        hard_failures.fetch_add(1);
        continue;
      }
      auto oid = client->CreateObject(1, owner_cap, (*txn)->id());
      if (!oid.ok()) {
        hard_failures.fetch_add(1);
        (void)(*txn)->Abort();
        continue;
      }
      Status s = commit ? (*txn)->Commit() : (*txn)->Abort();
      if (!s.ok()) hard_failures.fetch_add(1);
    }
  });

  // Periodic checkpoints over the same container while everything churns.
  int checkpoints_ok = 0;
  for (int round = 0; round < 3; ++round) {
    std::vector<Buffer> states;
    for (int r = 0; r < 4; ++r) {
      states.push_back(PatternBuffer(5000, static_cast<std::uint64_t>(round * 4 + r)));
    }
    checkpoint::LwfsCheckpoint::Config config{
        "/stress/ckpt" + std::to_string(round), cid, owner_cap, 3};
    auto stats = checkpoint::LwfsCheckpoint::Run(*runtime, config, states);
    if (stats.ok()) {
      auto restored = checkpoint::LwfsCheckpoint::Restore(*runtime, owner_cap,
                                                          config.path);
      if (restored.ok() && (*restored)[2] == states[2]) ++checkpoints_ok;
    }
    util::RealClockInstance()->SleepFor(std::chrono::milliseconds(30));
  }

  stop.store(true);
  for (auto& t : threads) t.join();

  EXPECT_EQ(hard_failures.load(), 0);
  EXPECT_EQ(checkpoints_ok, 3);
  // The services are all still healthy.
  EXPECT_TRUE(owner->CreateObject(0, owner_cap).ok());
  EXPECT_TRUE(owner->LookupName("/stress/ckpt2").ok());
}

// A windowed write burst must cost exactly what the serial protocol costs:
// per write one request put, one server-directed bulk pull, one reply put —
// overlap buys wall-clock, never extra messages, and the engine's internal
// wakeups stay off the fabric.  Pinning the counts here keeps the async
// path honest under load.
TEST(StressTest, WindowedWriteBurstWireCountsAreExact) {
  core::RuntimeOptions options;
  options.storage_servers = 4;
  options.storage.worker_threads = 2;
  auto runtime = core::ServiceRuntime::Start(options).value();
  runtime->AddUser("owner", "pw", 1);

  auto client = runtime->MakeClient();
  auto cred = client->Login("owner", "pw").value();
  auto cid = client->CreateContainer(cred).value();
  auto cap = client->GetCap(cred, cid, security::kOpAll).value();

  // Pre-create the targets; this also warms every server's capability
  // cache so the measured burst carries no verify traffic (the Figure 8
  // setup: capabilities acquired once, outside the timed loop).
  constexpr std::uint32_t kWrites = 24;
  constexpr std::size_t kBytes = 16000;  // < one bulk chunk -> 1 get each
  std::vector<std::pair<std::uint32_t, storage::ObjectId>> objects;
  for (std::uint32_t i = 0; i < kWrites; ++i) {
    const auto server = i % 4;
    auto oid = client->CreateObject(server, cap);
    ASSERT_TRUE(oid.ok()) << oid.status().ToString();
    objects.emplace_back(server, *oid);
  }

  const Buffer payload = PatternBuffer(kBytes, 77);
  runtime->fabric().ResetStats();
  {
    core::Batch batch(client.get(), /*window=*/8);
    for (const auto& [server, oid] : objects) {
      ASSERT_TRUE(batch.Write(server, cap, oid, 0, ByteSpan(payload)).ok());
    }
    ASSERT_TRUE(batch.Drain().ok()) << batch.first_error().ToString();
  }
  const auto stats = runtime->fabric().Stats();
  EXPECT_EQ(stats.puts, 2u * kWrites);  // request + reply per write
  EXPECT_EQ(stats.gets, 1u * kWrites);  // one server-directed pull each
  EXPECT_EQ(stats.get_bytes, kWrites * kBytes);
  EXPECT_LT(stats.put_bytes, kWrites * 1000u);  // requests stay small

  // And the data really landed.
  for (std::uint32_t i = 0; i < kWrites; ++i) {
    auto back = client->ReadObjectAlloc(objects[i].first, cap,
                                        objects[i].second, 0, kBytes);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(*back, payload);
  }
}

// TSan target for the multi-worker data plane + I/O scheduler: many client
// threads push mixed reads and writes at the same and different objects
// through the async window.  Every write fills its whole extent with one
// byte value, so a torn extent (bytes from two writers interleaved) is
// detectable by a single scan: each extent must read back
// all-from-one-writer, whichever writer won.
TEST(StressTest, ConcurrentExtentWritesAreNeverTorn) {
  constexpr std::uint32_t kServers = 2;
  constexpr std::uint32_t kThreads = 6;
  constexpr std::uint32_t kOpsPerThread = 48;
  constexpr std::size_t kExtent = 512;
  constexpr std::uint64_t kSlots = 16;  // shared extents contended for

  core::RuntimeOptions options;
  options.storage_servers = kServers;
  options.storage.worker_threads = 4;
  // A small per-op cost keeps extents queued at the scheduler so batches
  // actually merge while the workers race.
  options.storage.modeled_op_latency_us = 10;
  auto runtime = core::ServiceRuntime::Start(options).value();
  runtime->AddUser("owner", "pw", 1);

  auto owner = runtime->MakeClient();
  auto cred = owner->Login("owner", "pw").value();
  auto cid = owner->CreateContainer(cred).value();
  auto cap = owner->GetCap(cred, cid, security::kOpAll).value();

  // One contended object per server, plus one private object per thread.
  std::vector<storage::ObjectId> shared(kServers);
  for (std::uint32_t s = 0; s < kServers; ++s) {
    shared[s] = owner->CreateObject(s, cap).value();
  }
  std::vector<storage::ObjectId> private_oids(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    private_oids[t] = owner->CreateObject(t % kServers, cap).value();
  }

  std::atomic<int> hard_failures{0};
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = runtime->MakeClient();
      Rng rng(1000 + t);
      const std::uint8_t fill = static_cast<std::uint8_t>(1 + t);
      const Buffer payload(kExtent, fill);
      // One read buffer per window slot: concurrent in-flight reads into a
      // single shared buffer would race, and the client-side bulk checksum
      // now detects exactly that as kDataLoss.  Slot i%window is free by
      // the time op i issues (the batch retires the oldest op first).
      constexpr std::size_t kWindow = 8;
      std::array<Buffer, kWindow> read_back;
      read_back.fill(Buffer(kExtent, 0));
      core::Batch batch(client.get(), kWindow);
      for (std::uint32_t i = 0; i < kOpsPerThread; ++i) {
        const bool use_shared = rng.NextBelow(2) == 0;
        const std::uint32_t server =
            use_shared ? static_cast<std::uint32_t>(rng.NextBelow(kServers))
                       : t % kServers;
        const storage::ObjectId oid =
            use_shared ? shared[server] : private_oids[t];
        const std::uint64_t offset = rng.NextBelow(kSlots) * kExtent;
        Status s = rng.NextBelow(3) == 0
                       ? batch.Read(server, cap, oid, offset,
                                    MutableByteSpan(read_back[i % kWindow]))
                       : batch.Write(server, cap, oid, offset,
                                     ByteSpan(payload));
        if (!s.ok()) {
          hard_failures.fetch_add(1);
          break;
        }
      }
      if (!batch.Drain().ok()) hard_failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(hard_failures.load(), 0);

  // Shared extents: all-from-one-writer (any writer, or untouched zeros).
  for (std::uint32_t s = 0; s < kServers; ++s) {
    for (std::uint64_t slot = 0; slot < kSlots; ++slot) {
      auto back =
          owner->ReadObjectAlloc(s, cap, shared[s], slot * kExtent, kExtent);
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      if (back->empty()) continue;  // slot never written (short object)
      const std::uint8_t first = (*back)[0];
      for (std::uint8_t byte : *back) {
        ASSERT_EQ(byte, first) << "torn extent on server " << s << " slot "
                               << slot;
      }
    }
  }
  // Private extents: exactly the owner's fill everywhere they exist.
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    auto attr = owner->GetAttr(t % kServers, cap, private_oids[t]).value();
    auto back = owner->ReadObjectAlloc(t % kServers, cap, private_oids[t], 0,
                                       attr.size);
    ASSERT_TRUE(back.ok());
    const std::uint8_t fill = static_cast<std::uint8_t>(1 + t);
    for (std::size_t i = 0; i < back->size(); ++i) {
      const std::uint8_t byte = (*back)[i];
      // Holes between written slots read as zero.
      ASSERT_TRUE(byte == fill || byte == 0)
          << "foreign byte in private object of thread " << t;
    }
  }
}

}  // namespace
}  // namespace lwfs
