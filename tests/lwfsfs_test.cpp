// Tests for LwfsFs — the §6 file system layered above the LWFS-core, in
// both POSIX and relaxed consistency flavours.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/runtime.h"
#include "lwfsfs/lwfsfs.h"

namespace lwfs::fs {
namespace {

class LwfsFsTest : public ::testing::Test {
 protected:
  void Mount(FsConsistency consistency = FsConsistency::kPosix,
             std::uint32_t stripe_size = 4096, int servers = 4) {
    core::RuntimeOptions options;
    options.storage_servers = servers;
    runtime_ = core::ServiceRuntime::Start(options).value();
    runtime_->AddUser("u", "p", 1);
    client_ = runtime_->MakeClient();
    auto cred = client_->Login("u", "p").value();
    auto cid = client_->CreateContainer(cred).value();
    cap_ = client_->GetCap(cred, cid, security::kOpAll).value();
    FsOptions fs_options;
    fs_options.consistency = consistency;
    fs_options.stripe_size = stripe_size;
    auto fs = LwfsFs::Mount(client_.get(), cap_, "/fs", fs_options);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(*fs);
  }

  std::unique_ptr<core::ServiceRuntime> runtime_;
  std::unique_ptr<core::Client> client_;
  security::Capability cap_;
  std::unique_ptr<LwfsFs> fs_;
};

TEST_F(LwfsFsTest, CreateOpenRoundTrip) {
  Mount();
  auto created = fs_->Create("/data");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(created->stripes.size(), 4u);
  auto opened = fs_->Open("/data");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->stripes.size(), created->stripes.size());
  EXPECT_EQ(opened->stripes[0].oid, created->stripes[0].oid);
  EXPECT_EQ(fs_->Open("/ghost").status().code(), ErrorCode::kNotFound);
}

TEST_F(LwfsFsTest, CreateNeedsNoMetadataServer) {
  // The whole point of the layer: file creation talks only to storage
  // servers and the naming service, never to a centralized MDS.
  Mount();
  // Warm the capability caches so steady-state counts carry no verify
  // round trips.
  ASSERT_TRUE(fs_->Create("/warm").ok());
  runtime_->fabric().ResetStats();
  ASSERT_TRUE(fs_->Create("/scalable").ok());
  // 4 stripe creates + 1 inode create + 1 inode write + 1 name link, each
  // a small round trip (the inode write adds one bulk get).
  auto stats = runtime_->fabric().Stats();
  EXPECT_LE(stats.puts, 2u * 7u);
}

TEST_F(LwfsFsTest, WriteReadAcrossStripes) {
  Mount(FsConsistency::kPosix, /*stripe_size=*/512);
  auto file = fs_->Create("/striped");
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  Buffer data = PatternBuffer(10000, 3);
  ASSERT_TRUE(fs_->Write(*file, 0, ByteSpan(data)).ok());
  Buffer back(10000, 0);
  auto n = fs_->Read(*file, 0, MutableByteSpan(back));
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 10000u);
  EXPECT_EQ(back, data);
  // The stripes really are spread: every server holds a piece.
  for (int s = 0; s < runtime_->storage_count(); ++s) {
    auto list = runtime_->store(s).List(cap_.cid);
    ASSERT_TRUE(list.ok()) << list.status().ToString();
    std::uint64_t bytes = 0;
    for (auto oid : *list) {
      auto attr = runtime_->store(s).GetAttr(oid);
      ASSERT_TRUE(attr.ok()) << attr.status().ToString();
      bytes += attr->size;
    }
    EXPECT_GT(bytes, 0u) << "server " << s;
  }
}

TEST_F(LwfsFsTest, ReadAtEofAndBeyond) {
  Mount();
  auto file = fs_->Create("/small").value();
  ASSERT_TRUE(fs_->Write(file, 0, ByteSpan(Buffer(100, 7))).ok());
  ASSERT_TRUE(fs_->Flush(file).ok());
  Buffer out(200, 0xFF);
  auto n = fs_->Read(file, 0, MutableByteSpan(out));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 100u);  // clamped at EOF
  auto beyond = fs_->Read(file, 500, MutableByteSpan(out));
  ASSERT_TRUE(beyond.ok());
  EXPECT_EQ(*beyond, 0u);
}

TEST_F(LwfsFsTest, ReadSliceRoundTripsAcrossStripesAndAtEof) {
  Mount(FsConsistency::kPosix, /*stripe_size=*/512);
  auto file = fs_->Create("/sliced").value();
  Buffer data = PatternBuffer(10000, 3);
  ASSERT_TRUE(fs_->Write(file, 0, ByteSpan(data)).ok());
  ASSERT_TRUE(fs_->Flush(file).ok());

  // Spanning read: per-extent slices gathered into one, byte-equal to the
  // span path.
  auto whole = fs_->ReadSlice(file, 0, data.size());
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  ASSERT_EQ(whole->size(), data.size());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), whole->span().begin()));

  // Single-extent read: the store-owned slice passes through unchanged.
  auto one = fs_->ReadSlice(file, 512, 256);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  ASSERT_EQ(one->size(), 256u);
  EXPECT_TRUE(std::equal(data.begin() + 512, data.begin() + 768,
                         one->span().begin()));

  // Short at EOF, empty past it — same clamping as the span Read.
  auto tail = fs_->ReadSlice(file, 9000, 5000);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->size(), 1000u);
  auto beyond = fs_->ReadSlice(file, 50000, 100);
  ASSERT_TRUE(beyond.ok());
  EXPECT_EQ(beyond->size(), 0u);
}

TEST_F(LwfsFsTest, ReadSliceFillsHolesWithZeros) {
  Mount(FsConsistency::kRelaxed, 512);
  auto file = fs_->Create("/sparseslice").value();
  Buffer data = {1, 2, 3};
  ASSERT_TRUE(fs_->Write(file, 5000, ByteSpan(data)).ok());
  auto got = fs_->ReadSlice(file, 0, 5003);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), 5003u);
  for (std::size_t i = 0; i < 5000; ++i) ASSERT_EQ(got->span()[i], 0) << i;
  EXPECT_EQ(got->span()[5000], 1);
  EXPECT_EQ(got->span()[5002], 3);
}

TEST_F(LwfsFsTest, SparseWriteReadsZeros) {
  Mount(FsConsistency::kRelaxed, 512);
  auto file = fs_->Create("/sparse").value();
  Buffer data = {1, 2, 3};
  ASSERT_TRUE(fs_->Write(file, 5000, ByteSpan(data)).ok());
  Buffer out(5003, 0xFF);
  auto n = fs_->Read(file, 0, MutableByteSpan(out));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5003u);
  for (std::size_t i = 0; i < 5000; ++i) ASSERT_EQ(out[i], 0) << i;
  EXPECT_EQ(out[5000], 1);
  EXPECT_EQ(out[5002], 3);
}

TEST_F(LwfsFsTest, PosixSizeVisibleAfterFlush) {
  Mount(FsConsistency::kPosix);
  auto writer = fs_->Create("/shared-size").value();
  ASSERT_TRUE(fs_->Write(writer, 0, ByteSpan(Buffer(1234, 1))).ok());
  // Another opener sees size 0 until the writer flushes.
  auto reader = fs_->Open("/shared-size").value();
  EXPECT_EQ(fs_->Size(reader).value(), 0u);
  ASSERT_TRUE(fs_->Flush(writer).ok());
  EXPECT_EQ(fs_->Size(reader).value(), 1234u);
}

TEST_F(LwfsFsTest, RelaxedSizeDerivedFromStripes) {
  Mount(FsConsistency::kRelaxed, 512);
  auto file = fs_->Create("/derived").value();
  ASSERT_TRUE(fs_->Write(file, 0, ByteSpan(Buffer(3000, 1))).ok());
  // No flush: another opener still sees the size from stripe attributes.
  auto other = fs_->Open("/derived").value();
  EXPECT_EQ(fs_->Size(other).value(), 3000u);
}

TEST_F(LwfsFsTest, TruncateShrinkAndGrow) {
  Mount(FsConsistency::kPosix, 512);
  auto file = fs_->Create("/trunc").value();
  Buffer data = PatternBuffer(4000, 9);
  ASSERT_TRUE(fs_->Write(file, 0, ByteSpan(data)).ok());
  ASSERT_TRUE(fs_->Truncate(file, 1500).ok());
  EXPECT_EQ(fs_->Size(file).value(), 1500u);
  Buffer out(4000, 0xFF);
  auto n = fs_->Read(file, 0, MutableByteSpan(out));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1500u);
  EXPECT_TRUE(std::equal(out.begin(), out.begin() + 1500, data.begin()));
  ASSERT_TRUE(fs_->Truncate(file, 2000).ok());
  auto regrown = fs_->Read(file, 1500, MutableByteSpan(out));
  ASSERT_TRUE(regrown.ok());
  EXPECT_EQ(*regrown, 500u);
  for (int i = 0; i < 500; ++i) ASSERT_EQ(out[static_cast<std::size_t>(i)], 0);
}

TEST_F(LwfsFsTest, RemoveReleasesAllObjects) {
  Mount();
  const std::uint64_t before = [&] {
    std::uint64_t n = 0;
    for (int s = 0; s < runtime_->storage_count(); ++s) {
      n += runtime_->store(s).ObjectCount();
    }
    return n;
  }();
  auto file = fs_->Create("/gone").value();
  ASSERT_TRUE(fs_->Write(file, 0, ByteSpan(Buffer(100, 1))).ok());
  ASSERT_TRUE(fs_->Remove("/gone").ok());
  EXPECT_FALSE(fs_->Exists("/gone"));
  std::uint64_t after = 0;
  for (int s = 0; s < runtime_->storage_count(); ++s) {
    after += runtime_->store(s).ObjectCount();
  }
  EXPECT_EQ(after, before);
}

TEST_F(LwfsFsTest, NamespaceOps) {
  Mount();
  ASSERT_TRUE(fs_->Mkdir("/dir").ok());
  ASSERT_TRUE(fs_->Create("/dir/a").ok());
  ASSERT_TRUE(fs_->Create("/dir/b").ok());
  auto names = fs_->Readdir("/dir").value();
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(fs_->Rename("/dir/a", "/dir/c").ok());
  EXPECT_FALSE(fs_->Exists("/dir/a"));
  EXPECT_TRUE(fs_->Exists("/dir/c"));
}

TEST_F(LwfsFsTest, PosixConcurrentOverlappingWritesAreAtomic) {
  Mount(FsConsistency::kPosix, 1024);
  auto file = fs_->Create("/atomic").value();
  constexpr std::size_t kLen = 50000;
  std::atomic<int> failures{0};
  auto writer = [&](std::uint8_t fill) {
    auto client = runtime_->MakeClient();
    auto fs = LwfsFs::Mount(client.get(), cap_, "/fs",
                            FsOptions{1024, 0, FsConsistency::kPosix})
                  .value();
    auto handle = fs->Open("/atomic").value();
    Buffer data(kLen, fill);
    for (int i = 0; i < 3; ++i) {
      if (!fs->Write(handle, 0, ByteSpan(data)).ok()) failures.fetch_add(1);
    }
  };
  std::thread t1(writer, 0xAA), t2(writer, 0xBB);
  t1.join();
  t2.join();
  EXPECT_EQ(failures.load(), 0);
  Buffer out(kLen, 0);
  ASSERT_TRUE(fs_->Write(file, kLen, ByteSpan(Buffer{0})).ok());  // extend
  auto n = fs_->Read(file, 0, MutableByteSpan(out));
  ASSERT_TRUE(n.ok());
  // POSIX locking: the overlap is one writer's bytes, never interleaved.
  for (std::size_t i = 1; i < kLen; ++i) {
    ASSERT_EQ(out[i], out[0]) << "torn write at " << i;
  }
}

TEST_F(LwfsFsTest, RelaxedDisjointParallelWrites) {
  Mount(FsConsistency::kRelaxed, 4096);
  auto file = fs_->Create("/parallel").value();
  constexpr int kRanks = 6;
  constexpr std::size_t kSlice = 20000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      auto client = runtime_->MakeClient();
      auto fs = LwfsFs::Mount(client.get(), cap_, "/fs",
                              FsOptions{4096, 0, FsConsistency::kRelaxed})
                    .value();
      auto handle = fs->Open("/parallel").value();
      Buffer data = PatternBuffer(kSlice, static_cast<std::uint64_t>(r));
      if (!fs->Write(handle, static_cast<std::uint64_t>(r) * kSlice,
                     ByteSpan(data))
               .ok()) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  Buffer out(kRanks * kSlice, 0);
  auto n = fs_->Read(file, 0, MutableByteSpan(out));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, kRanks * kSlice);
  for (int r = 0; r < kRanks; ++r) {
    Buffer expect = PatternBuffer(kSlice, static_cast<std::uint64_t>(r));
    EXPECT_TRUE(std::equal(expect.begin(), expect.end(),
                           out.begin() + static_cast<std::ptrdiff_t>(r) * kSlice))
        << "rank " << r;
  }
}

TEST_F(LwfsFsTest, StripeCountOneStaysOnOneServer) {
  Mount();
  auto file = fs_->Create("/one-stripe", 1).value();
  EXPECT_EQ(file.stripes.size(), 1u);
  Buffer data = PatternBuffer(9000, 1);
  ASSERT_TRUE(fs_->Write(file, 0, ByteSpan(data)).ok());
  Buffer out(9000, 0);
  auto n = fs_->Read(file, 0, MutableByteSpan(out));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, data);
}

TEST_F(LwfsFsTest, MountRequiresAbsoluteRoot) {
  Mount();
  auto bad = LwfsFs::Mount(client_.get(), cap_, "relative", {});
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace lwfs::fs
