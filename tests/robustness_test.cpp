// Wire-level robustness: malformed, truncated, and random-garbage requests
// thrown at every service must produce clean errors (or clean drops),
// never crashes or hangs.  A storage server on an MPP faces thousands of
// clients; one buggy client must not take it down.
#include <gtest/gtest.h>

#include "core/protocol.h"
#include "core/runtime.h"
#include "pfs/pfs_runtime.h"
#include "util/rng.h"

namespace lwfs {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::RuntimeOptions options;
    options.storage_servers = 2;
    runtime_ = core::ServiceRuntime::Start(options).value();
    runtime_->AddUser("u", "p", 1);
    client_ = runtime_->MakeClient();
    auto cred = client_->Login("u", "p").value();
    auto cid = client_->CreateContainer(cred).value();
    cap_ = client_->GetCap(cred, cid, security::kOpAll).value();
    rpc_ = std::make_unique<rpc::RpcClient>(runtime_->fabric().CreateNic());
  }

  /// The nid of storage server 0.
  [[nodiscard]] portals::Nid storage_nid() const {
    return runtime_->deployment().storage[0];
  }

  std::unique_ptr<core::ServiceRuntime> runtime_;
  std::unique_ptr<core::Client> client_;
  security::Capability cap_;
  std::unique_ptr<rpc::RpcClient> rpc_;
};

TEST_F(RobustnessTest, EmptyRequestBodiesRejectedCleanly) {
  for (rpc::Opcode op : {core::kOpObjCreate, core::kOpObjWrite,
                         core::kOpObjRead, core::kOpObjRemove,
                         core::kOpObjGetAttr, core::kOpObjList,
                         core::kOpObjTruncate, core::kOpObjFilter,
                         core::kOpTxnPrepare, core::kOpTxnCommit}) {
    auto reply = rpc_->Call(storage_nid(), op, {});
    EXPECT_FALSE(reply.ok()) << "opcode " << op;
  }
}

TEST_F(RobustnessTest, RandomGarbageRequestsNeverKillTheServer) {
  Rng rng(55);
  for (int trial = 0; trial < 500; ++trial) {
    const rpc::Opcode op =
        static_cast<rpc::Opcode>(rng.NextBelow(100));  // incl. unknown ops
    Buffer garbage = PatternBuffer(rng.NextBelow(200), rng.NextU64());
    rpc::CallOptions options;
    options.timeout = std::chrono::milliseconds(2000);
    auto reply = rpc_->Call(storage_nid(), op, ByteSpan(garbage), options);
    // Any clean error is fine; a timeout would mean a worker wedged.
    if (!reply.ok()) {
      ASSERT_NE(reply.status().code(), ErrorCode::kTimeout)
          << "server wedged at trial " << trial << " opcode " << op;
    }
  }
  // The server still works.
  EXPECT_TRUE(client_->CreateObject(0, cap_).ok());
}

TEST_F(RobustnessTest, TruncatedValidRequestsRejected) {
  // Take a well-formed create request and replay every truncation of it.
  Encoder req;
  cap_.Encode(req);
  req.PutU64(0);  // txid
  const Buffer& full = req.buffer();
  for (std::size_t keep = 0; keep < full.size(); keep += 5) {
    Buffer cut(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(keep));
    auto reply = rpc_->Call(storage_nid(), core::kOpObjCreate, ByteSpan(cut));
    EXPECT_FALSE(reply.ok()) << "kept " << keep;
  }
  EXPECT_TRUE(client_->CreateObject(0, cap_).ok());
}

TEST_F(RobustnessTest, GarbageAtAuthServicesRejected) {
  Rng rng(66);
  for (int trial = 0; trial < 200; ++trial) {
    Buffer garbage = PatternBuffer(rng.NextBelow(150), rng.NextU64());
    auto a = rpc_->Call(runtime_->deployment().authn,
                        static_cast<rpc::Opcode>(rng.NextBelow(20)),
                        ByteSpan(garbage));
    EXPECT_FALSE(a.ok());
    auto z = rpc_->Call(runtime_->deployment().authz,
                        static_cast<rpc::Opcode>(10 + rng.NextBelow(10)),
                        ByteSpan(garbage));
    EXPECT_FALSE(z.ok());
  }
  // Both services still answer legitimate requests.
  EXPECT_TRUE(client_->Login("u", "p").ok());
}

TEST_F(RobustnessTest, GarbageAtNamingAndLocksRejected) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    Buffer garbage = PatternBuffer(rng.NextBelow(100), rng.NextU64());
    (void)rpc_->Call(runtime_->deployment().naming,
                     static_cast<rpc::Opcode>(60 + rng.NextBelow(10)),
                     ByteSpan(garbage));
    (void)rpc_->Call(runtime_->deployment().locks,
                     static_cast<rpc::Opcode>(80 + rng.NextBelow(3)),
                     ByteSpan(garbage));
  }
  EXPECT_TRUE(client_->Mkdir("/still-alive", true).ok());
  auto lock = client_->TryLock(txn::LockKey{1, 1}, {0, 10},
                               txn::LockMode::kShared);
  EXPECT_TRUE(lock.ok());
}

TEST_F(RobustnessTest, RawPortalGarbageToRequestQueue) {
  // Bypass the RPC framing entirely: raw puts with junk match bits and
  // payloads straight into the request portal.
  auto nic = runtime_->fabric().CreateNic();
  Rng rng(88);
  for (int trial = 0; trial < 300; ++trial) {
    Buffer junk = PatternBuffer(rng.NextBelow(64), rng.NextU64());
    (void)nic->Put(storage_nid(), rpc::kRequestPortal, rng.NextU64(),
                   ByteSpan(junk), 0, rng.NextU64());
  }
  // Give workers a moment to chew through the junk, then verify health.
  EXPECT_TRUE(client_->CreateObject(0, cap_).ok());
}

TEST_F(RobustnessTest, PfsServersSurviveGarbage) {
  portals::Fabric fabric;
  auto pfs = pfs::PfsRuntime::Start(&fabric, {}).value();
  rpc::RpcClient raw(fabric.CreateNic());
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Buffer garbage = PatternBuffer(rng.NextBelow(120), rng.NextU64());
    (void)raw.Call(pfs->deployment().mds,
                   static_cast<rpc::Opcode>(100 + rng.NextBelow(10)),
                   ByteSpan(garbage));
    (void)raw.Call(pfs->deployment().osts[0],
                   static_cast<rpc::Opcode>(120 + rng.NextBelow(5)),
                   ByteSpan(garbage));
  }
  auto client = pfs->MakeClient();
  EXPECT_TRUE(client->Create("/alive", 1).ok());
}

}  // namespace
}  // namespace lwfs
