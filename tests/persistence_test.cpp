// Durability across deployment restarts: file-backed object stores plus
// namespace snapshots let a *new* ServiceRuntime (a "rebooted cluster")
// serve data written by a previous one — completing the checkpoint story:
// a restart after a crash finds the checkpoint by name and restores it.
#include <gtest/gtest.h>

#include <filesystem>

#include "checkpoint/checkpoint.h"
#include "core/runtime.h"
#include "naming/naming.h"

namespace lwfs {
namespace {

namespace fsys = std::filesystem;

TEST(NamingSnapshotTest, SerializeRestoreRoundTrip) {
  naming::NamingService ns;
  ASSERT_TRUE(ns.Mkdir("/a").ok());
  ASSERT_TRUE(ns.Mkdir("/a/b").ok());
  storage::ObjectRef ref{storage::ContainerId{7}, 3, storage::ObjectId{42}};
  ASSERT_TRUE(ns.Link("/a/b/obj", ref).ok());
  ASSERT_TRUE(ns.Link("/top", storage::ObjectRef{storage::ContainerId{1}, 0,
                                                 storage::ObjectId{2}})
                  .ok());

  Buffer snapshot = ns.Serialize();
  naming::NamingService restored;
  ASSERT_TRUE(restored.Restore(ByteSpan(snapshot)).ok());
  EXPECT_TRUE(restored.Exists("/a/b"));
  EXPECT_EQ(restored.Lookup("/a/b/obj").value(), ref);
  EXPECT_EQ(restored.link_count(), 2u);
  auto listing = restored.List("/").value();
  EXPECT_EQ(listing.size(), 2u);
}

TEST(NamingSnapshotTest, EmptyNamespaceRoundTrips) {
  naming::NamingService ns;
  naming::NamingService restored;
  ASSERT_TRUE(restored.Restore(ByteSpan(ns.Serialize())).ok());
  EXPECT_EQ(restored.link_count(), 0u);
}

TEST(NamingSnapshotTest, CorruptSnapshotLeavesNamespaceIntact) {
  naming::NamingService ns;
  ASSERT_TRUE(ns.Mkdir("/keep").ok());
  Buffer garbage = {1, 2, 3, 4};
  EXPECT_FALSE(ns.Restore(ByteSpan(garbage)).ok());
  EXPECT_TRUE(ns.Exists("/keep"));

  // Truncated-but-valid-magic snapshot also rejected without damage.
  naming::NamingService big;
  ASSERT_TRUE(big.Mkdir("/x").ok());
  Buffer truncated = big.Serialize();
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(ns.Restore(ByteSpan(truncated)).ok());
  EXPECT_TRUE(ns.Exists("/keep"));
}

TEST(NamingSnapshotTest, RestoreReplacesExistingTree) {
  naming::NamingService a;
  ASSERT_TRUE(a.Mkdir("/from-a").ok());
  naming::NamingService b;
  ASSERT_TRUE(b.Mkdir("/from-b").ok());
  ASSERT_TRUE(b.Restore(ByteSpan(a.Serialize())).ok());
  EXPECT_TRUE(b.Exists("/from-a"));
  EXPECT_FALSE(b.Exists("/from-b"));
}

class RestartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fsys::temp_directory_path() /
            ("lwfs_restart_" + std::to_string(::getpid()));
    fsys::remove_all(root_);
    fsys::create_directories(root_);
  }
  void TearDown() override { fsys::remove_all(root_); }

  core::RuntimeOptions Options() {
    core::RuntimeOptions options;
    options.storage_servers = 2;
    options.backend = core::RuntimeOptions::Backend::kFile;
    options.file_store_root = (root_ / "stores").string();
    options.naming_snapshot_file = (root_ / "namespace.snap").string();
    return options;
  }

  fsys::path root_;
};

TEST_F(RestartTest, DataAndNamesSurviveRuntimeRestart) {
  Buffer data = PatternBuffer(5000, 31);
  security::Capability cap;
  storage::ObjectRef ref;
  {
    auto runtime = core::ServiceRuntime::Start(Options()).value();
    runtime->AddUser("u", "p", 1);
    auto client = runtime->MakeClient();
    auto cred = client->Login("u", "p").value();
    auto cid = client->CreateContainer(cred).value();
    cap = client->GetCap(cred, cid, security::kOpAll).value();
    auto oid = client->CreateObject(1, cap).value();
    ASSERT_TRUE(client->WriteObject(1, cap, oid, 0, ByteSpan(data)).ok());
    ref = storage::ObjectRef{cid, 1, oid};
    ASSERT_TRUE(client->Mkdir("/saved", true).ok());
    ASSERT_TRUE(client->LinkName("/saved/blob", ref).ok());
    ASSERT_TRUE(runtime->SaveNamingSnapshot().ok());
  }  // runtime dies ("machine reboots")

  {
    auto runtime = core::ServiceRuntime::Start(Options()).value();
    runtime->AddUser("u", "p", 1);
    auto client = runtime->MakeClient();
    ASSERT_TRUE(client->Login("u", "p").ok());
    // Caps from the previous authz instance are dead (instance-bound);
    // re-acquire.  The container policy itself is not persisted — the
    // paper's container policies live at the authorization service, so a
    // production deployment would persist that service's tables; here we
    // recreate the grant by re-creating a container with the same id
    // space and reading through a fresh cap is not possible.  Instead the
    // object data is read back through the *store* directly to prove
    // durability, and the name through the restored namespace.
    auto back_ref = client->LookupName("/saved/blob");
    ASSERT_TRUE(back_ref.ok()) << back_ref.status().ToString();
    EXPECT_EQ(*back_ref, ref);

    auto& store = runtime->store(1);
    auto raw = store.Read(back_ref->oid, 0, data.size());
    ASSERT_TRUE(raw.ok());
    EXPECT_EQ(*raw, data);
  }
}

TEST_F(RestartTest, CheckpointRestoredAfterRestartViaNewGrant) {
  // Full checkpoint/restart across a runtime restart: the new instance
  // re-authorizes (new container grant over the *existing* container id)
  // and restores through the normal client path.
  auto states = std::vector<Buffer>{PatternBuffer(2000, 1),
                                    PatternBuffer(2000, 2)};
  storage::ContainerId cid;
  {
    auto runtime = core::ServiceRuntime::Start(Options()).value();
    runtime->AddUser("u", "p", 1);
    auto client = runtime->MakeClient();
    auto cred = client->Login("u", "p").value();
    cid = client->CreateContainer(cred).value();
    auto cap = client->GetCap(cred, cid, security::kOpAll).value();
    ASSERT_TRUE(client->Mkdir("/ckpt", true).ok());
    checkpoint::LwfsCheckpoint::Config config{"/ckpt/run", cid, cap, 0};
    ASSERT_TRUE(checkpoint::LwfsCheckpoint::Run(*runtime, config, states).ok());
    ASSERT_TRUE(runtime->SaveNamingSnapshot().ok());
  }

  {
    auto runtime = core::ServiceRuntime::Start(Options()).value();
    runtime->AddUser("u", "p", 1);
    auto client = runtime->MakeClient();
    auto cred = client->Login("u", "p").value();
    // Recreate authorization for the surviving container: the fresh authz
    // instance hands out container ids from 1, so the first create yields
    // the same cid and the owner regains access to the persisted objects.
    auto new_cid = client->CreateContainer(cred).value();
    ASSERT_EQ(new_cid, cid);
    auto cap = client->GetCap(cred, new_cid, security::kOpAll).value();
    auto restored =
        checkpoint::LwfsCheckpoint::Restore(*runtime, cap, "/ckpt/run");
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    ASSERT_EQ(restored->size(), states.size());
    EXPECT_EQ((*restored)[0], states[0]);
    EXPECT_EQ((*restored)[1], states[1]);
  }
}

}  // namespace
}  // namespace lwfs
