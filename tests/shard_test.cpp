// Sharded metadata plane with warm-standby failover (DESIGN.md §16):
//
//  * the consistent-hash shard map is deterministic (same config => same
//    placement) and minimal-movement (growing the ring only moves keys to
//    the new shard);
//  * striped replicated-oid minting decodes ownership statelessly;
//  * the replica registry demotes known-stale members to the back of
//    looked-up chains (hedged reads try healthy members first);
//  * namespace ops route across shards end to end over the real RPC stack,
//    and cross-shard renames are atomic under 2PC at every crash point;
//  * killing a shard primary mid-workload fails the shard over to its warm
//    standby with zero committed namespace ops lost, bit-deterministically
//    across same-seed virtual-clock runs;
//  * the PFS baseline's MDS gets the same warm-standby treatment.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/runtime.h"
#include "naming/replica_map.h"
#include "naming/shard_map.h"
#include "pfs/client.h"
#include "pfs/pfs_runtime.h"
#include "storage/ids.h"
#include "txn/two_phase.h"
#include "util/clock.h"

namespace lwfs {
namespace {

// ---------------------------------------------------------------------------
// Shard map: determinism, distribution, minimal movement
// ---------------------------------------------------------------------------

std::vector<std::string> TestKeys(int n) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    keys.push_back("/app/run" + std::to_string(i % 7) + "/rank" +
                   std::to_string(i));
  }
  return keys;
}

TEST(ShardMapTest, PlacementIsDeterministicAndCoversEveryShard) {
  const auto keys = TestKeys(512);
  std::vector<int> hits(4, 0);
  for (const std::string& key : keys) {
    const std::uint64_t hash = naming::ShardMap::HashPath(key);
    const std::uint32_t shard = naming::ShardMap::ShardForHash(hash, 4);
    ASSERT_LT(shard, 4u);
    // Pure function: recomputing places the key identically.
    EXPECT_EQ(naming::ShardMap::ShardForHash(hash, 4), shard);
    EXPECT_EQ(naming::ShardMap::HashPath(key), hash);
    ++hits[shard];
  }
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_GT(hits[shard], 0) << "shard " << shard << " owns no keys";
  }
}

TEST(ShardMapTest, GrowingTheRingOnlyMovesKeysToTheNewShard) {
  const auto keys = TestKeys(512);
  for (std::uint32_t from = 1; from <= 7; ++from) {
    const std::uint32_t to = from + 1;
    int moved = 0;
    for (const std::string& key : keys) {
      const std::uint64_t hash = naming::ShardMap::HashPath(key);
      const std::uint32_t before = naming::ShardMap::ShardForHash(hash, from);
      const std::uint32_t after = naming::ShardMap::ShardForHash(hash, to);
      if (before != after) {
        // Minimal movement: a key that moves at all moves to the shard the
        // grow added, never between surviving shards.
        EXPECT_EQ(after, to - 1)
            << key << " moved " << before << "->" << after << " at " << from
            << "->" << to << " shards";
        ++moved;
      }
    }
    // The new shard takes roughly 1/to of the keyspace (with vnode-count
    // variance); anything near a full reshuffle means the ring is not
    // consistent.
    EXPECT_LE(moved, 2 * static_cast<int>(keys.size()) / static_cast<int>(to))
        << "grow " << from << "->" << to << " moved far more than 1/" << to
        << " of the keyspace";
    EXPECT_GT(moved, 0) << "grow " << from << "->" << to << " moved nothing";
  }
}

TEST(ShardMapTest, StripedOidMintingDecodesOwnership) {
  naming::ShardMap map;
  map.AddShard(101);
  map.AddShard(102);
  map.AddShard(103);
  for (std::uint32_t shard = 0; shard < 3; ++shard) {
    naming::ReplicaMapOptions options;
    options.servers = 4;
    options.shard_index = shard;
    options.shard_count = 3;
    naming::ReplicaMap registry(options);
    for (int i = 0; i < 8; ++i) {
      auto placed = registry.Place(storage::ContainerId{1}, 0, 2);
      ASSERT_TRUE(placed.ok());
      EXPECT_TRUE(storage::IsReplicatedOid(placed->oid));
      EXPECT_EQ(map.ShardForOid(placed->oid), shard);
    }
  }
}

TEST(ShardMapTest, PromoteSwapsPrimaryAndStandbyAndBumpsEpoch) {
  naming::ShardMap map;
  map.AddShard(/*primary=*/11, /*standby=*/21);
  map.AddShard(/*primary=*/12, /*standby=*/22);
  const std::uint64_t epoch0 = map.epoch();
  EXPECT_TRUE(map.IsActivePrimary(1, 12));
  EXPECT_TRUE(map.IsStandby(1, 22));

  ASSERT_TRUE(map.Promote(1, 22).ok());
  EXPECT_TRUE(map.IsActivePrimary(1, 22));
  EXPECT_FALSE(map.IsActivePrimary(1, 12));
  EXPECT_GT(map.epoch(), epoch0);
  // Shard 0 is untouched.
  EXPECT_TRUE(map.IsActivePrimary(0, 11));
  // Only the registered standby may be promoted.
  EXPECT_FALSE(map.Promote(0, 99).ok());
}

// ---------------------------------------------------------------------------
// Replica registry: stale members demoted on lookup
// ---------------------------------------------------------------------------

TEST(ReplicaMapStaleTest, LookupDemotesStaleMembersToTheBack) {
  naming::ReplicaMapOptions options;
  options.servers = 6;
  options.default_factor = 3;
  naming::ReplicaMap registry(options);
  auto placed = registry.Place(storage::ContainerId{5}, 0, 3);
  ASSERT_TRUE(placed.ok());
  ASSERT_EQ(placed->chain.size(), 3u);
  const std::uint32_t head = placed->chain[0];

  EXPECT_EQ(registry.stale_demotions(), 0u);
  auto clean = registry.Lookup(placed->oid);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->chain, placed->chain);  // no stale member, no reorder
  EXPECT_EQ(registry.stale_demotions(), 0u);

  // The head missed a committed write: lookups must stop preferring it.
  ASSERT_TRUE(registry.ReportStale(placed->oid, 2, {head}).ok());
  auto demoted = registry.Lookup(placed->oid);
  ASSERT_TRUE(demoted.ok());
  ASSERT_EQ(demoted->chain.size(), 3u);
  EXPECT_EQ(demoted->chain.back(), head);  // stale member at the back
  EXPECT_EQ(demoted->chain[0], placed->chain[1]);  // healthy order preserved
  EXPECT_EQ(demoted->chain[1], placed->chain[2]);
  EXPECT_EQ(registry.stale_demotions(), 1u);

  // The repair scanner wants registry order, not the read preference.
  auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].chain, placed->chain);
}

// ---------------------------------------------------------------------------
// Sharded namespace end to end
// ---------------------------------------------------------------------------

class ShardedRuntimeTest : public ::testing::Test {
 protected:
  void StartRuntime(std::uint32_t shards, bool standby) {
    core::RuntimeOptions options;
    options.storage_servers = 2;
    options.naming_shards = shards;
    options.naming_standby = standby;
    auto rt = core::ServiceRuntime::Start(options);
    ASSERT_TRUE(rt.ok()) << rt.status().ToString();
    runtime_ = std::move(*rt);
    runtime_->AddUser("app", "secret", 100);
    client_ = runtime_->MakeClient();
    auto cred = client_->Login("app", "secret");
    ASSERT_TRUE(cred.ok());
    auto cid = client_->CreateContainer(*cred);
    ASSERT_TRUE(cid.ok());
    cid_ = *cid;
    auto cap = client_->GetCap(*cred, *cid, security::kOpAll);
    ASSERT_TRUE(cap.ok());
    cap_ = *cap;
  }

  std::unique_ptr<core::ServiceRuntime> runtime_;
  std::unique_ptr<core::Client> client_;
  storage::ContainerId cid_{};
  security::Capability cap_{};
};

TEST_F(ShardedRuntimeTest, NamespaceOpsRouteAcrossFourShards) {
  StartRuntime(/*shards=*/4, /*standby=*/false);
  ASSERT_EQ(client_->naming_shard_count(), 4u);
  ASSERT_TRUE(client_->Mkdir("/data").ok());

  constexpr int kFiles = 48;
  std::set<std::uint32_t> owners;
  for (int i = 0; i < kFiles; ++i) {
    const std::string path = "/data/f" + std::to_string(i);
    auto oid = client_->CreateObject(0, cap_);
    ASSERT_TRUE(oid.ok());
    ASSERT_TRUE(client_->LinkName(path, storage::ObjectRef{cid_, 0, *oid}).ok())
        << path;
    const std::uint32_t owner = runtime_->shard_map()->ShardForPath(path);
    owners.insert(owner);
    // The owning shard resolves its leaf directly; every other shard must
    // not know the name (the namespace is partitioned, not replicated).
    EXPECT_TRUE(runtime_->naming_server(owner).service()->Lookup(path).ok());
    for (std::uint32_t other = 0; other < 4; ++other) {
      if (other == owner) continue;
      EXPECT_FALSE(runtime_->naming_server(other).service()->Lookup(path).ok());
    }
  }
  EXPECT_GT(owners.size(), 1u) << "all keys landed on one shard";

  // Every link resolves through the routed client path.
  for (int i = 0; i < kFiles; ++i) {
    EXPECT_TRUE(client_->LookupName("/data/f" + std::to_string(i)).ok());
  }
  EXPECT_EQ(client_->wrong_shard_retries(), 0u);  // the cached map was right

  // List merges the per-shard partitions into one sorted directory.
  auto listed = client_->ListNames("/data");
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), static_cast<std::size_t>(kFiles));
  for (std::size_t i = 1; i < listed->size(); ++i) {
    EXPECT_LT((*listed)[i - 1].name, (*listed)[i].name);
  }

  // Rmdir refuses while any shard still holds a leaf, then succeeds.
  EXPECT_EQ(client_->RmdirName("/data").code(), ErrorCode::kFailedPrecondition);
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(client_->UnlinkName("/data/f" + std::to_string(i)).ok());
  }
  EXPECT_TRUE(client_->RmdirName("/data").ok());
}

TEST_F(ShardedRuntimeTest, SingleShardKeepsLegacyBehavior) {
  StartRuntime(/*shards=*/1, /*standby=*/false);
  EXPECT_EQ(client_->naming_shard_count(), 1u);
  ASSERT_TRUE(client_->Mkdir("/d").ok());
  auto oid = client_->CreateObject(0, cap_);
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(
      client_->LinkName("/d/x", storage::ObjectRef{cid_, 0, *oid}).ok());
  // Same-shard rename stays the one-server atomic op.
  ASSERT_TRUE(client_->RenameName("/d/x", "/d/y").ok());
  EXPECT_TRUE(client_->LookupName("/d/y").ok());
  EXPECT_EQ(client_->LookupName("/d/x").status().code(), ErrorCode::kNotFound);
}

// Find two sibling paths owned by different shards.
std::pair<std::string, std::string> CrossShardPair(
    const naming::ShardMap& map) {
  const std::string base = "/move/src";
  const std::uint32_t src_shard = map.ShardForPath(base);
  for (int i = 0; i < 1024; ++i) {
    const std::string dst = "/move/dst" + std::to_string(i);
    if (map.ShardForPath(dst) != src_shard) return {base, dst};
  }
  return {base, base};  // unreachable with a sane ring
}

TEST_F(ShardedRuntimeTest, CrossShardRenameIsAtomic) {
  StartRuntime(/*shards=*/4, /*standby=*/false);
  ASSERT_TRUE(client_->Mkdir("/move").ok());
  const auto [from, to] = CrossShardPair(*runtime_->shard_map());
  ASSERT_NE(runtime_->shard_map()->ShardForPath(from),
            runtime_->shard_map()->ShardForPath(to));

  auto oid = client_->CreateObject(0, cap_);
  ASSERT_TRUE(oid.ok());
  const storage::ObjectRef ref{cid_, 0, *oid};
  ASSERT_TRUE(client_->LinkName(from, ref).ok());

  // The plain rename refuses to span shards.
  EXPECT_EQ(client_->RenameName(from, to).code(),
            ErrorCode::kFailedPrecondition);

  // The transactional rename moves the link atomically.
  ASSERT_TRUE(client_->RenameNameTxn(from, to, 0, cap_).ok());
  auto moved = client_->LookupName(to);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, ref);
  EXPECT_EQ(client_->LookupName(from).status().code(), ErrorCode::kNotFound);
}

TEST_F(ShardedRuntimeTest, CrossShardRenameSurvivesEveryCrashPoint) {
  StartRuntime(/*shards=*/4, /*standby=*/false);
  ASSERT_TRUE(client_->Mkdir("/move").ok());
  const auto [from, to] = CrossShardPair(*runtime_->shard_map());
  const std::uint32_t src = runtime_->shard_map()->ShardForPath(from);
  const std::uint32_t dst = runtime_->shard_map()->ShardForPath(to);
  ASSERT_NE(src, dst);

  auto oid = client_->CreateObject(0, cap_);
  ASSERT_TRUE(oid.ok());
  const storage::ObjectRef ref{cid_, 0, *oid};

  struct Case {
    txn::CrashPoint crash;
    bool commits;  // rename visible after recovery?
  };
  const Case kMatrix[] = {
      {txn::CrashPoint::kAfterPrepare, false},
      {txn::CrashPoint::kAfterCommitRecord, true},
  };
  for (const Case& c : kMatrix) {
    SCOPED_TRACE(c.commits ? "kAfterCommitRecord" : "kAfterPrepare");
    // (Re)establish the starting state: `from` linked, `to` absent.
    if (!client_->LookupName(from).ok()) {
      ASSERT_TRUE(client_->LinkName(from, ref).ok());
    }
    if (client_->LookupName(to).ok()) {
      ASSERT_TRUE(client_->UnlinkName(to).ok());
    }

    core::TxnParticipants participants;
    participants.naming_shards = {src, dst};
    auto txn = client_->BeginTxn(0, cap_, participants);
    ASSERT_TRUE(txn.ok()) << txn.status().ToString();
    ASSERT_TRUE(client_->StageLinkName((*txn)->id(), to, ref).ok());
    ASSERT_TRUE(client_->StageUnlinkName((*txn)->id(), from).ok());

    // The coordinator dies at the chosen point in the protocol.
    (*txn)->coordinator()->SetCrashPoint(c.crash);
    EXPECT_EQ((*txn)->Commit().code(), ErrorCode::kUnavailable);

    // Nothing is torn while the transaction is in doubt: either both names
    // reflect the old state or the staged ops are simply not applied yet.
    EXPECT_TRUE(client_->LookupName(from).ok());
    EXPECT_EQ(client_->LookupName(to).status().code(), ErrorCode::kNotFound);

    // A restarted coordinator replays the journal against the per-shard
    // participants (recovery matches them by name).
    rpc::RpcClient recovery_rpc(runtime_->fabric().CreateNic());
    const core::Deployment& d = client_->deployment();
    std::vector<std::unique_ptr<core::RemoteParticipant>> stubs;
    std::map<std::string, txn::Participant*> registry;
    for (std::uint32_t shard : {src, dst}) {
      auto stub = std::make_unique<core::RemoteParticipant>(
          &recovery_rpc, d.naming_shards[shard],
          "naming" + std::to_string(shard));
      registry[stub->name()] = stub.get();
      stubs.push_back(std::move(stub));
    }
    ASSERT_TRUE(txn::Coordinator::Recover((*txn)->journal(), registry).ok());

    if (c.commits) {
      auto moved = client_->LookupName(to);
      ASSERT_TRUE(moved.ok());
      EXPECT_EQ(*moved, ref);
      EXPECT_EQ(client_->LookupName(from).status().code(),
                ErrorCode::kNotFound);
    } else {
      EXPECT_TRUE(client_->LookupName(from).ok());
      EXPECT_EQ(client_->LookupName(to).status().code(), ErrorCode::kNotFound);
    }
  }
}

// ---------------------------------------------------------------------------
// Warm-standby failover on the virtual clock
// ---------------------------------------------------------------------------

/// One seeded failover run: link names across 2 shards, kill shard 0's
/// primary mid-workload, keep linking, then dump every observable fact.
/// Two equal traces mean two indistinguishable runs.
std::string FailoverTrace(std::uint64_t seed) {
  util::VirtualClock clock;
  std::ostringstream trace;
  util::Clock::ThreadGuard guard(&clock);
  core::RuntimeOptions options;
  options.storage_servers = 2;
  options.naming_shards = 2;
  options.naming_standby = true;
  options.clock = &clock;
  options.client_options.default_timeout = std::chrono::milliseconds(50);
  options.client_options.max_retransmits = 2;
  options.authn.credential_ttl_us = 365LL * 24 * 3600 * 1000 * 1000;
  options.authz.capability_ttl_us = 365LL * 24 * 3600 * 1000 * 1000;
  auto rt = core::ServiceRuntime::Start(options);
  if (!rt.ok()) return "start: " + rt.status().ToString();
  core::ServiceRuntime& runtime = **rt;
  runtime.fabric().injector().Seed(seed);
  runtime.AddUser("app", "secret", 100);
  auto client = runtime.MakeClient();
  auto cred = client->Login("app", "secret");
  if (!cred.ok()) return "login: " + cred.status().ToString();
  auto cid = client->CreateContainer(*cred);
  if (!cid.ok()) return "container: " + cid.status().ToString();
  auto cap = client->GetCap(*cred, *cid, security::kOpAll);
  if (!cap.ok()) return "cap: " + cap.status().ToString();
  if (!client->Mkdir("/ckpt").ok()) return "mkdir failed";

  constexpr int kBefore = 24;
  constexpr int kAfter = 24;
  std::vector<std::string> committed;
  auto link = [&](int i) -> Status {
    const std::string path = "/ckpt/rank" + std::to_string(i);
    auto oid = client->CreateObject(0, *cap);
    if (!oid.ok()) return oid.status();
    Status linked = client->LinkName(path, storage::ObjectRef{*cid, 0, *oid});
    if (linked.ok()) committed.push_back(path);
    return linked;
  };
  for (int i = 0; i < kBefore; ++i) {
    Status linked = link(i);
    if (!linked.ok()) return "pre-kill link: " + linked.ToString();
  }

  // Kill shard 0's primary.  The next op owned by shard 0 times out there,
  // retries the warm standby, and the standby's first admitted request
  // replays the op log and claims the shard.
  const portals::Nid victim = client->deployment().naming_shards[0];
  runtime.fabric().SetNodeDown(victim, true);
  for (int i = kBefore; i < kBefore + kAfter; ++i) {
    Status linked = link(i);
    if (!linked.ok()) return "post-kill link: " + linked.ToString();
  }

  // Zero committed ops lost: every link acknowledged before or after the
  // kill resolves, and resolves to the right object.
  for (const std::string& path : committed) {
    auto ref = client->LookupName(path);
    trace << path << " -> ";
    if (ref.ok()) {
      trace << ref->server_index << ":" << ref->oid.value;
    } else {
      trace << ref.status().ToString();
    }
    trace << "\n";
  }
  auto takeovers = runtime.TotalTakeoverStats();
  trace << "committed=" << committed.size() << " takeovers="
        << takeovers.takeovers << " replayed=" << takeovers.replayed
        << " replay_errors=" << takeovers.replay_errors
        << " failovers=" << client->naming_failovers()
        << " epoch=" << runtime.shard_map()->epoch()
        << " t_us=" << clock.NowUs() << "\n";
  return trace.str();
}

TEST(ShardFailoverTest, StandbyTakesOverWithZeroLostCommittedOps) {
  const std::string trace = FailoverTrace(/*seed=*/7);
  SCOPED_TRACE(trace);
  // Every committed link resolved (no "NOT_FOUND" in the dump)...
  EXPECT_EQ(trace.find("NOT_FOUND"), std::string::npos);
  EXPECT_NE(trace.find("committed=48"), std::string::npos);
  // ...exactly one takeover happened, it replayed the shard's log, and the
  // client failed over (at least once; follow-up ops go straight to the
  // promoted standby via the refreshed map).
  EXPECT_NE(trace.find("takeovers=1"), std::string::npos);
  EXPECT_NE(trace.find("replay_errors=0"), std::string::npos);
  EXPECT_EQ(trace.find("failovers=0"), std::string::npos);
  EXPECT_EQ(trace.find("epoch=1 "), std::string::npos);  // epoch advanced
}

TEST(ShardFailoverTest, SameSeedFailoverRunsAreBitDeterministic) {
  const std::string golden = FailoverTrace(/*seed=*/11);
  ASSERT_NE(golden.find("takeovers=1"), std::string::npos) << golden;
  EXPECT_EQ(FailoverTrace(/*seed=*/11), golden);
}

// ---------------------------------------------------------------------------
// PFS baseline: MDS warm standby
// ---------------------------------------------------------------------------

TEST(MdsFailoverTest, StandbyServesCommittedNamespaceAfterPrimaryDeath) {
  util::VirtualClock clock;
  util::Clock::ThreadGuard guard(&clock);
  portals::Fabric fabric;
  fabric.SetClock(&clock);
  pfs::PfsRuntimeOptions options;
  options.ost_count = 2;
  options.mds_standby = true;
  options.clock = &clock;
  options.client_options.default_timeout = std::chrono::milliseconds(50);
  options.client_options.max_retransmits = 2;
  auto rt = pfs::PfsRuntime::Start(&fabric, options);
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  pfs::PfsRuntime& runtime = **rt;
  ASSERT_NE(runtime.deployment().mds_standby, portals::kInvalidNid);
  auto client = runtime.MakeClient(pfs::ConsistencyMode::kRelaxed);

  // Commit some namespace state through the primary.
  std::vector<pfs::OpenFile> files;
  for (int i = 0; i < 6; ++i) {
    auto file = client->Create("/f" + std::to_string(i), 2);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    files.push_back(*file);
  }
  const Buffer payload = PatternBuffer(256, 3);
  ASSERT_TRUE(client->Write(files[0], 0, ByteSpan(payload)).ok());
  ASSERT_TRUE(client->Sync(files[0], payload.size()).ok());

  // Kill the primary MDS: metadata ops time out there, fail over to the
  // standby, and its first admitted request replays the shared op log.
  fabric.SetNodeDown(runtime.deployment().mds, true);

  for (int i = 0; i < 6; ++i) {
    auto attr = client->GetAttr("/f" + std::to_string(i));
    ASSERT_TRUE(attr.ok()) << "file " << i << ": "
                           << attr.status().ToString();
    if (i == 0) {
      EXPECT_EQ(attr->size, payload.size());  // SetSize replayed
    }
  }
  EXPECT_GT(client->mds_failovers(), 0u);
  ASSERT_NE(runtime.mds_standby_server(), nullptr);
  EXPECT_EQ(runtime.mds_standby_server()->takeovers(), 1u);
  EXPECT_GT(runtime.mds_standby_server()->takeover_replayed(), 0u);
  EXPECT_EQ(runtime.mds_standby_server()->takeover_replay_errors(), 0u);

  // The promoted standby serves new work: creates keep striping over the
  // OSTs, and the data written before the failover reads back byte-exact.
  auto fresh = client->Create("/after", 2);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  Buffer back(payload.size());
  auto reopened = client->Open("/f0");
  ASSERT_TRUE(reopened.ok());
  auto n = client->Read(*reopened, 0, MutableByteSpan(back));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, payload.size());
  EXPECT_EQ(back, payload);
}

}  // namespace
}  // namespace lwfs
