// Integration tests: the full LWFS-core stack (Figure 3) over the portals
// fabric — authentication, authorization, capability-checked object I/O,
// caching, immediate revocation, naming, locks, and distributed txns.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/runtime.h"
#include "util/clock.h"
#include "util/shared_buffer.h"

namespace lwfs::core {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  void StartRuntime(RuntimeOptions options = {}) {
    auto rt = ServiceRuntime::Start(options);
    ASSERT_TRUE(rt.ok()) << rt.status().ToString();
    runtime_ = std::move(*rt);
    runtime_->AddUser("alice", "pw-a", 100);
    runtime_->AddUser("bob", "pw-b", 200);
    client_ = runtime_->MakeClient();
  }

  /// Login + container + full cap, the Figure 8 MAIN() prologue.
  void SetupAliceWorkspace() {
    auto cred = client_->Login("alice", "pw-a");
    ASSERT_TRUE(cred.ok()) << cred.status().ToString();
    cred_ = *cred;
    auto cid = client_->CreateContainer(cred_);
    ASSERT_TRUE(cid.ok()) << cid.status().ToString();
    cid_ = *cid;
    auto cap = client_->GetCap(cred_, cid_, security::kOpAll);
    ASSERT_TRUE(cap.ok()) << cap.status().ToString();
    cap_ = *cap;
  }

  std::unique_ptr<ServiceRuntime> runtime_;
  std::unique_ptr<Client> client_;
  security::Credential cred_;
  storage::ContainerId cid_;
  security::Capability cap_;
};

TEST_F(CoreTest, LoginOverRpc) {
  StartRuntime();
  auto cred = client_->Login("alice", "pw-a");
  ASSERT_TRUE(cred.ok());
  EXPECT_EQ(cred->uid, 100u);
  EXPECT_EQ(client_->Login("alice", "bad").status().code(),
            ErrorCode::kUnauthenticated);
}

TEST_F(CoreTest, ObjectCrudRoundTrip) {
  StartRuntime();
  SetupAliceWorkspace();
  auto oid = client_->CreateObject(0, cap_);
  ASSERT_TRUE(oid.ok());
  Buffer data = PatternBuffer(100000, 9);
  ASSERT_TRUE(client_->WriteObject(0, cap_, *oid, 0, ByteSpan(data)).ok());
  auto attr = client_->GetAttr(0, cap_, *oid);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, data.size());
  EXPECT_EQ(attr->cid, cid_);
  auto back = client_->ReadObjectAlloc(0, cap_, *oid, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
  ASSERT_TRUE(client_->RemoveObject(0, cap_, *oid).ok());
  EXPECT_EQ(client_->GetAttr(0, cap_, *oid).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(CoreTest, LargeWriteMovesInChunks) {
  RuntimeOptions options;
  options.storage.bulk_chunk_bytes = 64 << 10;  // force many pulls
  StartRuntime(options);
  SetupAliceWorkspace();
  auto oid = client_->CreateObject(1, cap_);
  ASSERT_TRUE(oid.ok());
  Buffer data = PatternBuffer((1 << 20) + 123, 4);  // not chunk-aligned
  ASSERT_TRUE(client_->WriteObject(1, cap_, *oid, 0, ByteSpan(data)).ok());
  auto back = client_->ReadObjectAlloc(1, cap_, *oid, 0, data.size() + 50);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(CoreTest, ObjectsLandOnTheAddressedServer) {
  StartRuntime();
  SetupAliceWorkspace();
  ASSERT_TRUE(client_->CreateObject(0, cap_).ok());
  ASSERT_TRUE(client_->CreateObject(2, cap_).ok());
  EXPECT_EQ(runtime_->store(0).ObjectCount(), 1u);
  EXPECT_EQ(runtime_->store(1).ObjectCount(), 0u);
  EXPECT_EQ(runtime_->store(2).ObjectCount(), 1u);
  EXPECT_FALSE(client_->CreateObject(99, cap_).ok());  // no such server
}

TEST_F(CoreTest, CapabilityOpsAreEnforced) {
  StartRuntime();
  SetupAliceWorkspace();
  auto read_only = client_->GetCap(cred_, cid_, security::kOpRead);
  ASSERT_TRUE(read_only.ok());
  EXPECT_EQ(client_->CreateObject(0, *read_only).status().code(),
            ErrorCode::kPermissionDenied);
  auto oid = client_->CreateObject(0, cap_);
  ASSERT_TRUE(oid.ok());
  Buffer data = {1, 2, 3};
  EXPECT_EQ(client_->WriteObject(0, *read_only, *oid, 0, ByteSpan(data)).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_TRUE(client_->ReadObjectAlloc(0, *read_only, *oid, 0, 1).ok());
}

TEST_F(CoreTest, ForgedCapabilityRejectedOverTheWire) {
  StartRuntime();
  SetupAliceWorkspace();
  security::Capability forged = cap_;
  forged.cid = storage::ContainerId{cid_.value + 1};  // another container
  EXPECT_EQ(client_->CreateObject(0, forged).status().code(),
            ErrorCode::kPermissionDenied);
  forged = cap_;
  forged.expires_us += 12345;  // tampered expiry breaks the tag
  EXPECT_EQ(client_->CreateObject(0, forged).status().code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(CoreTest, CrossContainerAccessDenied) {
  StartRuntime();
  SetupAliceWorkspace();
  auto oid = client_->CreateObject(0, cap_);
  ASSERT_TRUE(oid.ok());
  // A valid capability for a *different* container must not reach alice's
  // object — and must not even learn it exists.
  auto other_cid = client_->CreateContainer(cred_);
  ASSERT_TRUE(other_cid.ok());
  auto other_cap = client_->GetCap(cred_, *other_cid, security::kOpAll);
  ASSERT_TRUE(other_cap.ok());
  EXPECT_EQ(client_->ReadObjectAlloc(0, *other_cap, *oid, 0, 1).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(CoreTest, CapCacheEliminatesRepeatVerifies) {
  StartRuntime();
  SetupAliceWorkspace();
  auto& server = runtime_->storage_server(0);
  const std::uint64_t before = server.remote_verifies();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client_->CreateObject(0, cap_).ok());
  }
  // One miss (first use), nine hits (Figure 4-b caching).
  EXPECT_EQ(server.remote_verifies(), before + 1);
  EXPECT_GE(server.cap_cache().hits(), 9u);
}

TEST_F(CoreTest, CapCacheDisabledVerifiesEveryRequest) {
  RuntimeOptions options;
  options.storage.verify_mode = VerifyMode::kAuthzEveryRequest;
  StartRuntime(options);
  SetupAliceWorkspace();
  auto& server = runtime_->storage_server(0);
  const std::uint64_t before = server.remote_verifies();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client_->CreateObject(0, cap_).ok());
  }
  EXPECT_EQ(server.remote_verifies(), before + 10);
}

TEST_F(CoreTest, ChmodRevokesImmediatelyAcrossTheWire) {
  StartRuntime();
  runtime_->AddUser("carol", "pw-c", 300);
  SetupAliceWorkspace();
  auto carol_client = runtime_->MakeClient();
  auto carol = carol_client->Login("carol", "pw-c");
  ASSERT_TRUE(carol.ok());
  ASSERT_TRUE(client_->SetGrant(cred_, cid_, 300,
                                security::kOpRead | security::kOpWrite |
                                    security::kOpCreate)
                  .ok());
  auto write_cap = carol_client->GetCap(*carol, cid_,
                                        security::kOpWrite | security::kOpCreate);
  auto read_cap = carol_client->GetCap(*carol, cid_, security::kOpRead);
  ASSERT_TRUE(write_cap.ok() && read_cap.ok());

  // Warm both caps into server 0's cache.
  auto oid = carol_client->CreateObject(0, *write_cap);
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(carol_client->ReadObjectAlloc(0, *read_cap, *oid, 0, 1).ok());

  // Alice chmods carol to read-only: the server's cached write cap must be
  // invalidated before SetGrant returns ("immediate revocation", §2.4).
  ASSERT_TRUE(client_->SetGrant(cred_, cid_, 300, security::kOpRead).ok());
  Buffer data = {1};
  EXPECT_EQ(
      carol_client->WriteObject(0, *write_cap, *oid, 0, ByteSpan(data)).code(),
      ErrorCode::kPermissionDenied);
  // Partial revocation: the read capability still works.
  EXPECT_TRUE(carol_client->ReadObjectAlloc(0, *read_cap, *oid, 0, 1).ok());
}

TEST_F(CoreTest, RefreshCapOverRpc) {
  StartRuntime();
  SetupAliceWorkspace();
  auto fresh = client_->RefreshCap(cred_, cap_);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->ops, cap_.ops);
  EXPECT_TRUE(client_->CreateObject(0, *fresh).ok());
}

TEST_F(CoreTest, NamingOverRpc) {
  StartRuntime();
  SetupAliceWorkspace();
  ASSERT_TRUE(client_->Mkdir("/ckpt", true).ok());
  auto oid = client_->CreateObject(1, cap_);
  ASSERT_TRUE(oid.ok());
  storage::ObjectRef ref{cid_, 1, *oid};
  ASSERT_TRUE(client_->LinkName("/ckpt/state", ref).ok());
  auto back = client_->LookupName("/ckpt/state");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, ref);
  auto entries = client_->ListNames("/ckpt");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "state");
  ASSERT_TRUE(client_->RenameName("/ckpt/state", "/ckpt/state2").ok());
  ASSERT_TRUE(client_->UnlinkName("/ckpt/state2").ok());
  EXPECT_EQ(client_->LookupName("/ckpt/state2").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(CoreTest, LocksOverRpc) {
  StartRuntime();
  SetupAliceWorkspace();
  txn::LockKey key{cid_.value, 1};
  auto lock = client_->TryLock(key, {0, 100}, txn::LockMode::kExclusive);
  ASSERT_TRUE(lock.ok());
  auto second_client = runtime_->MakeClient();
  EXPECT_EQ(second_client->TryLock(key, {0, 100}, txn::LockMode::kExclusive)
                .status()
                .code(),
            ErrorCode::kResourceExhausted);
  // Blocking acquire on another thread completes once we release.
  std::thread other([&] {
    auto got = second_client->LockBlocking(key, {0, 100},
                                           txn::LockMode::kExclusive);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(second_client->Unlock(*got).ok());
  });
  util::RealClockInstance()->SleepFor(std::chrono::milliseconds(20));
  ASSERT_TRUE(client_->Unlock(*lock).ok());
  other.join();
}

TEST_F(CoreTest, TransactionCommitPublishesName) {
  StartRuntime();
  SetupAliceWorkspace();
  ASSERT_TRUE(client_->Mkdir("/ckpt", true).ok());
  TxnParticipants participants;
  participants.storage_servers = {0, 1};
  participants.naming = true;
  auto txn = client_->BeginTxn(0, cap_, participants);
  ASSERT_TRUE(txn.ok()) << txn.status().ToString();

  auto oid = client_->CreateObject(1, cap_, (*txn)->id());
  ASSERT_TRUE(oid.ok());
  Buffer data = {1, 2, 3};
  ASSERT_TRUE(client_->WriteObject(1, cap_, *oid, 0, ByteSpan(data)).ok());
  ASSERT_TRUE(client_->StageLinkName((*txn)->id(), "/ckpt/run",
                                     storage::ObjectRef{cid_, 1, *oid})
                  .ok());
  EXPECT_EQ(client_->LookupName("/ckpt/run").status().code(),
            ErrorCode::kNotFound);  // invisible before commit
  ASSERT_TRUE((*txn)->Commit().ok());
  auto ref = client_->LookupName("/ckpt/run");
  ASSERT_TRUE(ref.ok());
  auto back = client_->ReadObjectAlloc(ref->server_index, cap_, ref->oid, 0, 3);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
  EXPECT_EQ(*(*txn)->journal()->Outcome((*txn)->id()), txn::TxnOutcome::kFinished);
}

TEST_F(CoreTest, TransactionAbortRollsBackCreates) {
  StartRuntime();
  SetupAliceWorkspace();
  ASSERT_TRUE(client_->Mkdir("/ckpt", true).ok());
  TxnParticipants participants;
  participants.storage_servers = {1};
  participants.naming = true;
  auto txn = client_->BeginTxn(0, cap_, participants);
  ASSERT_TRUE(txn.ok());
  auto oid = client_->CreateObject(1, cap_, (*txn)->id());
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(client_->StageLinkName((*txn)->id(), "/ckpt/run",
                                     storage::ObjectRef{cid_, 1, *oid})
                  .ok());
  const std::uint64_t objects_before = runtime_->store(1).ObjectCount();
  ASSERT_TRUE((*txn)->Abort().ok());
  // The created object was compensated away and the name never appeared.
  EXPECT_EQ(runtime_->store(1).ObjectCount(), objects_before - 1);
  EXPECT_EQ(client_->LookupName("/ckpt/run").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(CoreTest, RemoveInTransactionIsDeferred) {
  StartRuntime();
  SetupAliceWorkspace();
  auto oid = client_->CreateObject(0, cap_);
  ASSERT_TRUE(oid.ok());
  TxnParticipants participants;
  participants.storage_servers = {0};
  auto txn = client_->BeginTxn(0, cap_, participants);
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(client_->RemoveObject(0, cap_, *oid, (*txn)->id()).ok());
  EXPECT_TRUE(client_->GetAttr(0, cap_, *oid).ok());  // still there
  ASSERT_TRUE((*txn)->Commit().ok());
  EXPECT_EQ(client_->GetAttr(0, cap_, *oid).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(CoreTest, BlockBackendWorksEndToEnd) {
  RuntimeOptions options;
  options.backend = RuntimeOptions::Backend::kBlock;
  options.device_blocks = 4096;
  options.block_size = 4096;
  StartRuntime(options);
  SetupAliceWorkspace();
  auto oid = client_->CreateObject(0, cap_);
  ASSERT_TRUE(oid.ok());
  Buffer data = PatternBuffer(100000, 2);
  ASSERT_TRUE(client_->WriteObject(0, cap_, *oid, 0, ByteSpan(data)).ok());
  auto back = client_->ReadObjectAlloc(0, cap_, *oid, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(CoreTest, ListObjectsSeesOnlyOwnContainer) {
  StartRuntime();
  SetupAliceWorkspace();
  auto a = client_->CreateObject(0, cap_);
  auto b = client_->CreateObject(0, cap_);
  ASSERT_TRUE(a.ok() && b.ok());
  auto other_cid = client_->CreateContainer(cred_);
  auto other_cap = client_->GetCap(cred_, *other_cid, security::kOpAll);
  ASSERT_TRUE(other_cap.ok());
  ASSERT_TRUE(client_->CreateObject(0, *other_cap).ok());
  auto list = client_->ListObjects(0, cap_);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);
}

TEST_F(CoreTest, ConcurrentClientsOnDistinctServers) {
  RuntimeOptions options;
  options.storage_servers = 4;
  StartRuntime(options);
  SetupAliceWorkspace();
  constexpr int kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto c = runtime_->MakeClient();
      const auto server = static_cast<std::uint32_t>(i % 4);
      auto oid = c->CreateObject(server, cap_);
      if (!oid.ok()) {
        failures.fetch_add(1);
        return;
      }
      Buffer data = PatternBuffer(50000, static_cast<std::uint64_t>(i));
      if (!c->WriteObject(server, cap_, *oid, 0, ByteSpan(data)).ok()) {
        failures.fetch_add(1);
        return;
      }
      auto back = c->ReadObjectAlloc(server, cap_, *oid, 0, data.size());
      if (!back.ok() || *back != data) failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// TSan target: many clients pull overlapping sub-ranges of one object as
// store-owned slices concurrently.  Every reply aliases the same backing
// store buffer while refcounts churn across threads; each reader also keeps
// its previous slice alive one iteration so lifetimes overlap and the last
// drop happens on an arbitrary thread.
TEST_F(CoreTest, ConcurrentSliceReadersShareOneStoreBuffer) {
  StartRuntime();
  SetupAliceWorkspace();
  auto oid = client_->CreateObject(0, cap_);
  ASSERT_TRUE(oid.ok());
  const Buffer data = PatternBuffer(256 << 10, 37);
  ASSERT_TRUE(client_->WriteObject(0, cap_, *oid, 0, ByteSpan(data)).ok());

  constexpr int kReaders = 8;
  constexpr int kIterations = 24;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      auto c = runtime_->MakeClient();
      util::SharedSlice held;  // overlaps this iteration's slice lifetime
      for (int i = 0; i < kIterations; ++i) {
        // Overlapping, shifting windows: every pair of readers shares bytes.
        const std::uint64_t offset =
            static_cast<std::uint64_t>((t * 13 + i * 7) % 128) << 10;
        const std::uint64_t length = 64 << 10;
        auto slice = c->ReadObjectSlice(0, cap_, *oid, offset, length);
        if (!slice.ok() || slice->size() != length ||
            !std::equal(slice->span().begin(), slice->span().end(),
                        data.begin() + static_cast<std::ptrdiff_t>(offset))) {
          failures.fetch_add(1);
          return;
        }
        held = std::move(*slice);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(CoreTest, BatchPipelinesWritesAndReadsAcrossServers) {
  RuntimeOptions options;
  options.storage_servers = 4;
  StartRuntime(options);
  SetupAliceWorkspace();

  constexpr std::uint32_t kObjects = 16;
  constexpr std::size_t kBytes = 20000;
  std::vector<std::pair<std::uint32_t, storage::ObjectId>> objects;
  std::vector<Buffer> payloads;
  for (std::uint32_t i = 0; i < kObjects; ++i) {
    const auto server = i % 4;
    auto oid = client_->CreateObject(server, cap_);
    ASSERT_TRUE(oid.ok()) << oid.status().ToString();
    objects.emplace_back(server, *oid);
    payloads.push_back(PatternBuffer(kBytes, i));
  }

  {
    Batch batch(client_.get(), /*window=*/4);
    for (std::uint32_t i = 0; i < kObjects; ++i) {
      ASSERT_TRUE(batch
                      .Write(objects[i].first, cap_, objects[i].second, 0,
                             ByteSpan(payloads[i]))
                      .ok());
      EXPECT_LE(batch.inflight(), batch.window());
    }
    ASSERT_TRUE(batch.Drain().ok()) << batch.first_error().ToString();
    EXPECT_EQ(batch.inflight(), 0u);
  }

  // Read everything back through a window, asking for more than was
  // written so the short-read counts prove each retire decoded its own
  // reply (not a neighbour's).
  std::vector<Buffer> back(kObjects);
  std::vector<std::uint64_t> bytes_read(kObjects, 0);
  {
    Batch batch(client_.get(), /*window=*/4);
    for (std::uint32_t i = 0; i < kObjects; ++i) {
      back[i] = Buffer(kBytes + 100);
      ASSERT_TRUE(batch
                      .Read(objects[i].first, cap_, objects[i].second, 0,
                            MutableByteSpan(back[i]), &bytes_read[i])
                      .ok());
    }
    ASSERT_TRUE(batch.Drain().ok()) << batch.first_error().ToString();
  }
  for (std::uint32_t i = 0; i < kObjects; ++i) {
    EXPECT_EQ(bytes_read[i], kBytes) << "object " << i;
    back[i].resize(kBytes);
    EXPECT_EQ(back[i], payloads[i]) << "object " << i;
  }
}

TEST_F(CoreTest, BatchStickyErrorStopsIssuingButStillDrains) {
  StartRuntime();
  SetupAliceWorkspace();
  auto oid = client_->CreateObject(0, cap_);
  ASSERT_TRUE(oid.ok());
  Buffer data = PatternBuffer(1000, 3);

  Batch batch(client_.get(), /*window=*/2);
  ASSERT_TRUE(batch.Write(0, cap_, *oid, 0, ByteSpan(data)).ok());
  // Writing a nonexistent object surfaces the error either at issue (when
  // the window forces a retire) or at Drain(); it must stick either way.
  storage::ObjectId bogus{0xdeadbeef};
  for (int i = 0; i < 4; ++i) {
    if (!batch.Write(0, cap_, bogus, 0, ByteSpan(data)).ok()) break;
  }
  EXPECT_FALSE(batch.Drain().ok());
  EXPECT_FALSE(batch.first_error().ok());
  EXPECT_EQ(batch.inflight(), 0u);
  // The first (valid) write still landed.
  auto back = client_->ReadObjectAlloc(0, cap_, *oid, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(CoreTest, AsyncHandlesRetireInAnyOrder) {
  RuntimeOptions options;
  options.storage_servers = 4;
  StartRuntime(options);
  SetupAliceWorkspace();

  // Issue creates on all four servers, then await them newest-first: the
  // completion queue hands results to whichever handle asks, regardless of
  // issue order.
  std::vector<PendingCreate> creates;
  for (std::uint32_t s = 0; s < 4; ++s) {
    auto pending = client_->CreateObjectAsync(s, cap_);
    ASSERT_TRUE(pending.ok()) << pending.status().ToString();
    creates.push_back(std::move(*pending));
  }
  std::vector<storage::ObjectId> oids(4);
  for (std::uint32_t s = 4; s-- > 0;) {
    auto oid = creates[s].Await();
    ASSERT_TRUE(oid.ok()) << oid.status().ToString();
    oids[s] = *oid;
  }

  std::vector<Buffer> payloads;
  std::vector<PendingIo> writes;
  for (std::uint32_t s = 0; s < 4; ++s) {
    payloads.push_back(PatternBuffer(30000, 40 + s));
    auto io = client_->WriteObjectAsync(s, cap_, oids[s], 0,
                                        ByteSpan(payloads[s]));
    ASSERT_TRUE(io.ok()) << io.status().ToString();
    writes.push_back(std::move(*io));
  }
  for (std::uint32_t s = 4; s-- > 0;) {
    auto n = writes[s].Await();
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    EXPECT_EQ(*n, payloads[s].size());
  }

  std::vector<Buffer> back(4);
  std::vector<PendingIo> reads;
  for (std::uint32_t s = 0; s < 4; ++s) {
    back[s] = Buffer(payloads[s].size());
    auto io =
        client_->ReadObjectAsync(s, cap_, oids[s], 0, MutableByteSpan(back[s]));
    ASSERT_TRUE(io.ok()) << io.status().ToString();
    reads.push_back(std::move(*io));
  }
  for (std::uint32_t s = 4; s-- > 0;) {
    auto n = reads[s].Await();
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    EXPECT_EQ(*n, payloads[s].size());
    EXPECT_EQ(back[s], payloads[s]);
  }
}

TEST_F(CoreTest, RevokedCredentialStopsAuthzOperations) {
  StartRuntime();
  SetupAliceWorkspace();
  ASSERT_TRUE(client_->RevokeCred(cred_.cred_id).ok());
  EXPECT_EQ(client_->CreateContainer(cred_).status().code(),
            ErrorCode::kUnauthenticated);
  EXPECT_EQ(client_->GetCap(cred_, cid_, security::kOpRead).status().code(),
            ErrorCode::kUnauthenticated);
}

}  // namespace
}  // namespace lwfs::core
