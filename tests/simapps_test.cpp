// Shape tests for the simulated experiments: these encode the *claims* of
// the paper's evaluation (Figures 9-10, the petaflop extrapolation, and
// the §3.2 flow-control argument) as assertions, so a calibration change
// that breaks a headline shape fails CI.
#include <gtest/gtest.h>

#include "simapps/checkpoint_sim.h"
#include "simapps/flow_sim.h"
#include "util/machines.h"
#include "util/stats.h"

namespace lwfs::simapps {
namespace {

constexpr std::uint64_t kMB512 = 512ull << 20;

double Throughput(CheckpointKind kind, int n, int m,
                  std::uint64_t bytes = kMB512, std::uint64_t seed = 1) {
  return SimulateCheckpoint(kind, ClusterParams::DevCluster(n, m), bytes, seed)
      .throughput_mb_s();
}

// ---- Figure 9 shapes ---------------------------------------------------------

TEST(Figure9Test, FilePerProcessAndLwfsDumpAtTheSameRate) {
  // §4: in the dump phase, file-per-process and LWFS track each other.
  for (int m : {2, 8, 16}) {
    const double lwfs = Throughput(CheckpointKind::kLwfsObjectPerProcess, 32, m);
    const double fpp = Throughput(CheckpointKind::kPfsFilePerProcess, 32, m);
    EXPECT_NEAR(lwfs / fpp, 1.0, 0.05) << "m=" << m;
  }
}

TEST(Figure9Test, SharedFileIsRoughlyHalfAtSaturation) {
  // §4: "the throughput of the shared-file case is roughly half that of
  // the file-per-process and the lightweight checkpoint implementations."
  for (int m : {2, 4, 8, 16}) {
    const double fpp = Throughput(CheckpointKind::kPfsFilePerProcess, 64, m);
    const double shared = Throughput(CheckpointKind::kPfsSharedFile, 64, m);
    EXPECT_NEAR(shared / fpp, 0.5, 0.1) << "m=" << m;
  }
}

TEST(Figure9Test, ThroughputScalesWithServerCount) {
  const double t2 = Throughput(CheckpointKind::kLwfsObjectPerProcess, 64, 2);
  const double t4 = Throughput(CheckpointKind::kLwfsObjectPerProcess, 64, 4);
  const double t8 = Throughput(CheckpointKind::kLwfsObjectPerProcess, 64, 8);
  const double t16 = Throughput(CheckpointKind::kLwfsObjectPerProcess, 64, 16);
  EXPECT_NEAR(t4 / t2, 2.0, 0.15);
  EXPECT_NEAR(t8 / t2, 4.0, 0.3);
  EXPECT_NEAR(t16 / t2, 8.0, 0.6);
}

TEST(Figure9Test, ThroughputRampsWithClientsThenSaturates) {
  const double n1 = Throughput(CheckpointKind::kLwfsObjectPerProcess, 1, 16);
  const double n8 = Throughput(CheckpointKind::kLwfsObjectPerProcess, 8, 16);
  const double n32 = Throughput(CheckpointKind::kLwfsObjectPerProcess, 32, 16);
  const double n64 = Throughput(CheckpointKind::kLwfsObjectPerProcess, 64, 16);
  EXPECT_GT(n8, 4 * n1);              // ramp region
  EXPECT_NEAR(n64 / n32, 1.0, 0.05);  // plateau
}

TEST(Figure9Test, AbsoluteScaleMatchesTheDevCluster) {
  // Paper's Figure 9 peaks: ~1400-1600 MB/s for 16 servers, ~750 per 8.
  const double t16 = Throughput(CheckpointKind::kLwfsObjectPerProcess, 64, 16);
  EXPECT_GT(t16, 1300.0);
  EXPECT_LT(t16, 1700.0);
  const double s16 = Throughput(CheckpointKind::kPfsSharedFile, 64, 16);
  EXPECT_GT(s16, 600.0);
  EXPECT_LT(s16, 900.0);
}

TEST(Figure9Test, TrialsJitterButStayTight) {
  lwfs::RunningStats stats;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    stats.Add(Throughput(CheckpointKind::kLwfsObjectPerProcess, 16, 8, kMB512,
                         seed));
  }
  EXPECT_GT(stats.stddev(), 0.0);               // error bars exist
  EXPECT_LT(stats.stddev() / stats.mean(), 0.05);  // ...and are small
}

// ---- Figure 10 shapes ---------------------------------------------------------

double CreateRate(CheckpointKind kind, int n, int m) {
  return SimulateCreates(kind, ClusterParams::DevCluster(n, m), 32, 1)
      .ops_per_sec();
}

TEST(Figure10Test, LustreCreateRateIsFlatInServerCount) {
  const double m2 = CreateRate(CheckpointKind::kPfsFilePerProcess, 64, 2);
  const double m16 = CreateRate(CheckpointKind::kPfsFilePerProcess, 64, 16);
  EXPECT_NEAR(m16 / m2, 1.0, 0.05);
  // Paper's Figure 10-b: hundreds of ops/sec.
  EXPECT_GT(m16, 200.0);
  EXPECT_LT(m16, 900.0);
}

TEST(Figure10Test, LwfsCreateRateScalesWithServers) {
  const double m2 = CreateRate(CheckpointKind::kLwfsObjectPerProcess, 64, 2);
  const double m16 = CreateRate(CheckpointKind::kLwfsObjectPerProcess, 64, 16);
  EXPECT_GT(m16 / m2, 6.0);
  // Paper's Figure 10-c: tens of thousands of ops/sec at 16 servers.
  EXPECT_GT(m16, 40000.0);
}

TEST(Figure10Test, TwoOrdersOfMagnitudeGapAtSixteenServers) {
  // Figure 10-a is a log plot precisely because of this gap.
  const double lwfs = CreateRate(CheckpointKind::kLwfsObjectPerProcess, 64, 16);
  const double lustre = CreateRate(CheckpointKind::kPfsFilePerProcess, 64, 16);
  EXPECT_GT(lwfs / lustre, 50.0);
}

TEST(Figure10Test, LwfsCreateRateGrowsWithClientsUntilServersSaturate) {
  const double n4 = CreateRate(CheckpointKind::kLwfsObjectPerProcess, 4, 16);
  const double n64 = CreateRate(CheckpointKind::kLwfsObjectPerProcess, 64, 16);
  EXPECT_GT(n64, 2 * n4);
}

// ---- Petaflop extrapolation (§4 closing paragraph) ------------------------------

TEST(PetaflopTest, CreatePhaseTakesMinutesAndTenPercentOfCheckpoint) {
  const PetaflopSpec& spec = Petaflop();
  ClusterParams params = ClusterParams::DevCluster(
      static_cast<int>(spec.compute_nodes), static_cast<int>(spec.io_nodes));
  params.chunk_bytes = 256ull << 20;  // coarse chunks keep the event count sane
  params.jitter = 0;
  const std::uint64_t bytes_per_client = 5ull << 30;  // 5 GB of state per node

  auto result = SimulateCheckpoint(CheckpointKind::kPfsFilePerProcess, params,
                                   bytes_per_client, 1);
  // "creating the files will require multiple minutes to complete"
  EXPECT_GT(result.create_time, 120.0);
  // "roughly 10% of the total time for the checkpoint operation"
  const double fraction = result.create_time / result.total_time;
  EXPECT_GT(fraction, 0.04);
  EXPECT_LT(fraction, 0.25);

  // The LWFS create phase on the same machine is negligible.
  auto lwfs = SimulateCheckpoint(CheckpointKind::kLwfsObjectPerProcess, params,
                                 bytes_per_client, 1);
  EXPECT_LT(lwfs.create_time / lwfs.total_time, 0.01);
}

// ---- Flow-control ablation (E7) ---------------------------------------------------

TEST(FlowControlTest, ServerDirectedNeverResends) {
  FlowParams params;
  auto directed = SimulateServerDirected(params, 1);
  EXPECT_EQ(directed.resends, 0u);
  EXPECT_EQ(directed.wasted_bytes, 0u);
}

TEST(FlowControlTest, EagerPushWastesTheWire) {
  FlowParams params;
  auto eager = SimulateEagerPush(params, 1);
  EXPECT_GT(eager.resends, 1000u);
  // Rejected-and-resent traffic dwarfs the goodput: the ingress link can
  // carry 15x the drain rate, so ~14/15 of attempts bounce.
  EXPECT_GT(eager.wire_overhead(), 5.0);
}

TEST(FlowControlTest, BothDrainAtRaidRate) {
  // The RAID is the bottleneck either way; the *cost* of eager push is the
  // wasted network and client work, not elapsed time (§3.2).
  FlowParams params;
  auto eager = SimulateEagerPush(params, 1);
  auto directed = SimulateServerDirected(params, 1);
  EXPECT_NEAR(directed.goodput_mb_s(), params.drain_bw / 1e6, 30.0);
  EXPECT_NEAR(eager.goodput_mb_s() / directed.goodput_mb_s(), 1.0, 0.1);
}

TEST(FlowControlTest, BiggerBufferReducesEagerWaste) {
  FlowParams small;
  small.buffer_bytes = 64ull << 20;
  FlowParams big;
  big.buffer_bytes = 1024ull << 20;
  auto w_small = SimulateEagerPush(small, 1).wire_overhead();
  auto w_big = SimulateEagerPush(big, 1).wire_overhead();
  EXPECT_LT(w_big, w_small);
}

TEST(FlowControlTest, DeterministicForFixedSeed) {
  FlowParams params;
  auto a = SimulateEagerPush(params, 7);
  auto b = SimulateEagerPush(params, 7);
  EXPECT_EQ(a.resends, b.resends);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
}

// ---- Simulator hygiene ---------------------------------------------------------------

TEST(SimShapeTest, CheckpointScalesLinearlyInBytes) {
  auto params = ClusterParams::DevCluster(8, 4);
  params.jitter = 0;
  auto half = SimulateCheckpoint(CheckpointKind::kLwfsObjectPerProcess, params,
                                 kMB512 / 2, 1);
  auto full = SimulateCheckpoint(CheckpointKind::kLwfsObjectPerProcess, params,
                                 kMB512, 1);
  EXPECT_NEAR(full.total_time / half.total_time, 2.0, 0.05);
}

TEST(SimShapeTest, DeterministicForFixedSeed) {
  auto params = ClusterParams::DevCluster(16, 8);
  auto a = SimulateCheckpoint(CheckpointKind::kPfsSharedFile, params, kMB512, 3);
  auto b = SimulateCheckpoint(CheckpointKind::kPfsSharedFile, params, kMB512, 3);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
}

TEST(SimShapeTest, PhaseTimesAddUp) {
  auto params = ClusterParams::DevCluster(8, 4);
  auto r = SimulateCheckpoint(CheckpointKind::kPfsFilePerProcess, params,
                              kMB512, 1);
  EXPECT_GT(r.create_time, 0.0);
  EXPECT_GT(r.dump_time, 0.0);
  EXPECT_NEAR(r.create_time + r.dump_time, r.total_time, 1e-9);
}

}  // namespace
}  // namespace lwfs::simapps
