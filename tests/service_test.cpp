// Tests for the typed op-spec service framework (rpc/service.h): codec
// round-trips and truncation rejection for every registered wire message,
// duplicate-registration fail-fast, opcode-family hygiene, middleware
// metrics, and authorization-before-handler ordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/protocol.h"
#include "core/runtime.h"
#include "core/wire.h"
#include "pfs/pfs_runtime.h"
#include "pfs/wire.h"
#include "rpc/rpc.h"
#include "rpc/service.h"
#include "util/clock.h"
#include "util/shared_buffer.h"

namespace lwfs {
namespace {

std::vector<rpc::CodecCase> AllCases() {
  std::vector<rpc::CodecCase> cases = core::wire::CoreWireCases();
  std::vector<rpc::CodecCase> pfs_cases = pfs::wire::PfsWireCases();
  cases.insert(cases.end(), std::make_move_iterator(pfs_cases.begin()),
               std::make_move_iterator(pfs_cases.end()));
  return cases;
}

// ---------------------------------------------------------------------------
// Table-driven codecs
// ---------------------------------------------------------------------------

TEST(ServiceCodecTest, EveryMessageRoundTripsByteIdentical) {
  for (const rpc::CodecCase& c : AllCases()) {
    ASSERT_FALSE(c.encoded.empty()) << c.name;
    auto reencoded = c.decode_reencode(ByteSpan(c.encoded));
    ASSERT_TRUE(reencoded.ok())
        << c.name << ": " << reencoded.status().ToString();
    EXPECT_EQ(*reencoded, c.encoded) << c.name;
  }
}

TEST(ServiceCodecTest, EveryTruncationIsRejectedAsInvalidArgument) {
  for (const rpc::CodecCase& c : AllCases()) {
    for (std::size_t len = 0; len < c.encoded.size(); ++len) {
      auto decoded = c.decode_reencode(ByteSpan(c.encoded.data(), len));
      ASSERT_FALSE(decoded.ok())
          << c.name << " decoded from a " << len << "-byte truncation";
      EXPECT_EQ(decoded.status().code(), ErrorCode::kInvalidArgument)
          << c.name << " at " << len << ": " << decoded.status().ToString();
    }
  }
}

TEST(ServiceCodecTest, CaseNamesAreUnique) {
  std::vector<std::string> names;
  for (const rpc::CodecCase& c : AllCases()) names.push_back(c.name);
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end());
}

// ---------------------------------------------------------------------------
// Registration hygiene
// ---------------------------------------------------------------------------

TEST(ServiceRegistrationTest, DuplicateOpcodeFailsFast) {
  portals::Fabric fabric;
  rpc::RpcServer server(fabric.CreateNic(), {});
  rpc::Service ops(&server, "dup");
  ops.On<rpc::Void, rpc::Void>(
      core::wire::kLoginOp,
      [](rpc::ServerContext&, rpc::Void&) -> Result<rpc::Void> {
        return rpc::Void{};
      });
  EXPECT_TRUE(ops.init_status().ok());
  ops.On<rpc::Void, rpc::Void>(
      core::wire::kLoginOp,
      [](rpc::ServerContext&, rpc::Void&) -> Result<rpc::Void> {
        return rpc::Void{};
      });
  EXPECT_EQ(ops.init_status().code(), ErrorCode::kAlreadyExists);
  // The underlying server refuses to start with a poisoned handler table.
  EXPECT_FALSE(server.Start().ok());
}

TEST(ServiceRegistrationTest, OpcodeFamiliesAreDisjoint) {
  static_assert(rpc::OpcodeRangesDisjoint());
  core::RuntimeOptions options;
  options.storage_servers = 1;
  auto runtime = core::ServiceRuntime::Start(options);
  ASSERT_TRUE(runtime.ok());
  pfs::PfsRuntimeOptions pfs_options;
  pfs_options.ost_count = 1;
  auto pfs_runtime =
      pfs::PfsRuntime::Start(&(*runtime)->fabric(), pfs_options);
  ASSERT_TRUE(pfs_runtime.ok());

  auto in_range = [](const std::vector<rpc::Opcode>& ops,
                     rpc::OpcodeRange range) {
    return std::all_of(ops.begin(), ops.end(),
                       [range](rpc::Opcode op) { return range.Contains(op); });
  };
  EXPECT_TRUE(in_range((*runtime)->authn_server().registered_opcodes(),
                       rpc::kCoreOpcodeRange));
  EXPECT_TRUE(in_range((*runtime)->authz_server().registered_opcodes(),
                       rpc::kCoreOpcodeRange));
  EXPECT_TRUE(in_range((*runtime)->naming_server().registered_opcodes(),
                       rpc::kCoreOpcodeRange));
  EXPECT_TRUE(in_range((*runtime)->lock_server().registered_opcodes(),
                       rpc::kCoreOpcodeRange));
  EXPECT_TRUE(
      in_range((*runtime)->storage_server(0).registered_data_opcodes(),
               rpc::kCoreOpcodeRange));
  EXPECT_TRUE(
      in_range((*runtime)->storage_server(0).registered_control_opcodes(),
               rpc::kCoreOpcodeRange));
  EXPECT_TRUE(in_range((*pfs_runtime)->mds_server().registered_opcodes(),
                       rpc::kPfsOpcodeRange));
  EXPECT_TRUE(in_range((*pfs_runtime)->ost_server(0).registered_opcodes(),
                       rpc::kPfsOpcodeRange));
}

// ---------------------------------------------------------------------------
// Middleware behaviour on a live deployment
// ---------------------------------------------------------------------------

class ServiceMiddlewareTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::RuntimeOptions options;
    options.storage_servers = 1;
    auto runtime = core::ServiceRuntime::Start(options);
    ASSERT_TRUE(runtime.ok());
    runtime_ = std::move(*runtime);
    runtime_->AddUser("alice", "pw", 1);
    client_ = runtime_->MakeClient();
    auto cred = client_->Login("alice", "pw");
    ASSERT_TRUE(cred.ok());
    cred_ = *cred;
    auto cid = client_->CreateContainer(cred_);
    ASSERT_TRUE(cid.ok());
    cid_ = *cid;
  }

  rpc::OpStats FindOp(const std::string& name) {
    for (const rpc::OpStats& s : runtime_->TotalOpStats()) {
      if (s.name == name) return s;
    }
    ADD_FAILURE() << "op " << name << " not in TotalOpStats()";
    return {};
  }

  std::unique_ptr<core::ServiceRuntime> runtime_;
  std::unique_ptr<core::Client> client_;
  security::Credential cred_;
  storage::ContainerId cid_;
};

TEST_F(ServiceMiddlewareTest, PerOpMetricsCountCallsLatencyAndBulk) {
  auto cap = client_->GetCap(cred_, cid_, security::kOpAll);
  ASSERT_TRUE(cap.ok());
  auto oid = client_->CreateObject(0, *cap);
  ASSERT_TRUE(oid.ok());
  Buffer data = PatternBuffer(64 << 10, 7);
  ASSERT_TRUE(client_->WriteObject(0, *cap, *oid, 0, ByteSpan(data)).ok());
  Buffer out(data.size());
  auto n = client_->ReadObject(0, *cap, *oid, 0, MutableByteSpan(out));
  ASSERT_TRUE(n.ok());

  const rpc::OpStats create = FindOp("storage.obj_create");
  EXPECT_EQ(create.calls, 1u);
  EXPECT_EQ(create.errors, 0u);
  const rpc::OpStats write = FindOp("storage.obj_write");
  EXPECT_EQ(write.calls, 1u);
  EXPECT_EQ(write.bulk_bytes, data.size());
  const rpc::OpStats read = FindOp("storage.obj_read");
  EXPECT_EQ(read.calls, 1u);
  EXPECT_EQ(read.bulk_bytes, data.size());
  const rpc::OpStats login = FindOp("authn.login");
  EXPECT_EQ(login.calls, 1u);
  // Client-side mirror: the instrumented stubs tally the same traffic.
  const auto tallies = client_->rpc_op_tallies();
  ASSERT_TRUE(tallies.count(core::kOpObjWrite));
  EXPECT_EQ(tallies.at(core::kOpObjWrite).calls, 1u);
  EXPECT_EQ(tallies.at(core::kOpObjWrite).errors, 0u);
}

TEST_F(ServiceMiddlewareTest, MalformedRequestIsRejectedUniformly) {
  // Truncated garbage straight at the naming server: the framework must
  // refuse it before any handler runs, with the uniform message shape.
  rpc::RpcClient raw(runtime_->fabric().CreateNic());
  Buffer junk{0xde, 0xad};
  auto reply = raw.Call(runtime_->deployment().naming, core::kOpNameMkdir,
                        ByteSpan(junk));
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(reply.status().message(), "malformed name_mkdir request");

  const rpc::OpStats mkdir = FindOp("naming.name_mkdir");
  EXPECT_EQ(mkdir.calls, 1u);
  EXPECT_EQ(mkdir.rejected, 1u);
  EXPECT_EQ(mkdir.errors, 1u);
}

TEST_F(ServiceMiddlewareTest, AuthorizationRunsBeforeHandlerBody) {
  auto read_only = client_->GetCap(cred_, cid_, security::kOpRead);
  ASSERT_TRUE(read_only.ok());
  const std::uint64_t before = runtime_->store(0).ObjectCount();
  auto oid = client_->CreateObject(0, *read_only);
  ASSERT_FALSE(oid.ok());
  EXPECT_EQ(oid.status().code(), ErrorCode::kPermissionDenied);
  // The handler body never ran: no object appeared.
  EXPECT_EQ(runtime_->store(0).ObjectCount(), before);

  const rpc::OpStats create = FindOp("storage.obj_create");
  EXPECT_EQ(create.calls, 1u);
  EXPECT_EQ(create.denied, 1u);
  EXPECT_EQ(create.errors, 1u);
}

TEST(ServiceStatsTest, MergeOpStatsSumsCountersAndTakesLatencyMax) {
  std::vector<rpc::OpStats> total;
  rpc::OpStats a;
  a.opcode = 7;
  a.name = "svc.op";
  a.calls = 2;
  a.errors = 1;
  a.latency_us_total = 100;
  a.latency_us_max = 80;
  a.bulk_bytes = 10;
  rpc::OpStats b = a;
  b.calls = 3;
  b.latency_us_max = 40;
  rpc::MergeOpStats(total, {a});
  rpc::MergeOpStats(total, {b});
  ASSERT_EQ(total.size(), 1u);
  EXPECT_EQ(total[0].calls, 5u);
  EXPECT_EQ(total[0].errors, 2u);
  EXPECT_EQ(total[0].latency_us_total, 200u);
  EXPECT_EQ(total[0].latency_us_max, 80u);
  EXPECT_EQ(total[0].bulk_bytes, 20u);
}

// ---------------------------------------------------------------------------
// Copy budget: the zero-copy data path's "at most one copy" invariant
// ---------------------------------------------------------------------------

// Drives one write+read through a live deployment and asserts the budget
// (staging + store copies) byte-for-byte.  Runs on both time sources: the
// copy count is a data-path property and must not depend on the clock.
void ExerciseCopyBudget(util::Clock* clock) {
  if (!util::CopyStats::Enabled()) {
    GTEST_SKIP() << "built without LWFS_COUNT_COPIES";
  }
  core::RuntimeOptions options;
  options.storage_servers = 1;
  options.clock = clock;
  auto runtime = core::ServiceRuntime::Start(options);
  ASSERT_TRUE(runtime.ok());
  (*runtime)->AddUser("alice", "pw", 1);
  auto client = (*runtime)->MakeClient();
  auto cred = client->Login("alice", "pw");
  ASSERT_TRUE(cred.ok());
  auto cid = client->CreateContainer(*cred);
  ASSERT_TRUE(cid.ok());
  auto cap = client->GetCap(*cred, *cid, security::kOpAll);
  ASSERT_TRUE(cap.ok());
  auto oid = client->CreateObject(0, *cap);
  ASSERT_TRUE(oid.ok());

  const std::size_t n = 256 << 10;
  util::SharedSlice payload =
      util::SharedSlice::FromBuffer(PatternBuffer(n, 42));

  // Zero-copy write: the store-medium copy is the only budgeted copy.
  util::CopySnapshot base = util::CopyStats::Snapshot();
  ASSERT_TRUE(client->WriteObjectSlice(0, *cap, *oid, 0, payload).ok());
  util::CopySnapshot d = util::CopyStats::Snapshot().Since(base);
  EXPECT_EQ(d.bytes_of(util::CopyKind::kStage), 0u) << "write path staged";
  EXPECT_EQ(d.bytes_of(util::CopyKind::kStore), n);
  EXPECT_EQ(d.budget_bytes(), n);  // exactly one copy per byte written

  // Slice read: medium -> store slice is the only budgeted copy; the
  // reply frame hands those same bytes to the client by reference.
  base = util::CopyStats::Snapshot();
  auto slice_read = client->ReadObjectSlice(0, *cap, *oid, 0, n);
  ASSERT_TRUE(slice_read.ok());
  ASSERT_EQ(slice_read->size(), n);
  d = util::CopyStats::Snapshot().Since(base);
  EXPECT_EQ(d.bytes_of(util::CopyKind::kStage), 0u) << "slice read staged";
  EXPECT_EQ(d.bytes_of(util::CopyKind::kStore), n);
  EXPECT_EQ(d.budget_bytes(), n);  // exactly one copy per byte read
  EXPECT_EQ(slice_read->ToBuffer(util::CopyKind::kDeliver),
            payload.ToBuffer(util::CopyKind::kDeliver));

  // Legacy span read for contrast: the server stages the payload into the
  // push buffer before the wire transfer, doubling the budget.
  Buffer out(n);
  base = util::CopyStats::Snapshot();
  auto read = client->ReadObject(0, *cap, *oid, 0, MutableByteSpan(out));
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(*read, n);
  d = util::CopyStats::Snapshot().Since(base);
  EXPECT_EQ(d.bytes_of(util::CopyKind::kStage), n) << "span read must stage";
  EXPECT_EQ(d.bytes_of(util::CopyKind::kStore), n);
  EXPECT_EQ(d.budget_bytes(), 2 * n);
  EXPECT_EQ(out, payload.ToBuffer(util::CopyKind::kDeliver));

  // Legacy span write for contrast: staging doubles the budget.
  base = util::CopyStats::Snapshot();
  Buffer legacy = PatternBuffer(n, 43);
  ASSERT_TRUE(client->WriteObject(0, *cap, *oid, 0, ByteSpan(legacy)).ok());
  d = util::CopyStats::Snapshot().Since(base);
  EXPECT_EQ(d.bytes_of(util::CopyKind::kStage), n);
  EXPECT_EQ(d.bytes_of(util::CopyKind::kStore), n);
  EXPECT_EQ(d.budget_bytes(), 2 * n);
}

TEST(CopyBudgetTest, WriteAndReadPayOneCopyPerByteOnRealTime) {
  ExerciseCopyBudget(nullptr);
}

TEST(CopyBudgetTest, WriteAndReadPayOneCopyPerByteOnVirtualTime) {
  util::VirtualClock clock;
  util::Clock::ThreadGuard guard(&clock);
  ExerciseCopyBudget(&clock);
}

}  // namespace
}  // namespace lwfs
