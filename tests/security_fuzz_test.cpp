// Adversarial sweeps over the security tokens: any single-bit or multi-bit
// tamper of a credential or capability must be rejected by its issuing
// service.  This is the property the paper's whole access-control story
// rests on: tokens are "sufficiently difficult to guess" and verifiable
// only by their issuer (§3.1.2).
#include <gtest/gtest.h>

#include "security/authn.h"
#include "security/authz.h"
#include "util/rng.h"

namespace lwfs::security {
namespace {

class SecurityFuzzTest : public ::testing::Test {
 protected:
  SecurityFuzzTest()
      : authn_(&users_, SipKey{0xAA, 0xBB}, AuthnOptions{}),
        authz_(&authn_, SipKey{0xCC, 0xDD}, AuthzOptions{}) {
    users_.AddPrincipal("alice", "pw", 100);
    cred_ = authn_.Login("alice", "pw").value();
    cid_ = authz_.CreateContainer(cred_).value();
    cap_ = authz_.GetCap(cred_, cid_, kOpRead | kOpWrite).value();
  }

  TableAuthenticator users_;
  AuthnService authn_;
  AuthzService authz_;
  Credential cred_;
  storage::ContainerId cid_;
  Capability cap_;
};

// ---- Single-bit flips, exhaustive over the token bytes -----------------------

class CapabilityBitFlipTest : public SecurityFuzzTest,
                              public ::testing::WithParamInterface<int> {};

TEST_P(CapabilityBitFlipTest, EverySingleBitFlipIsRejected) {
  Encoder enc;
  cap_.Encode(enc);
  Buffer wire = std::move(enc).Take();
  // Each parameter covers one byte: flip all 8 of its bits in turn.
  const auto byte_index = static_cast<std::size_t>(GetParam());
  ASSERT_LT(byte_index, wire.size());
  for (int bit = 0; bit < 8; ++bit) {
    Buffer tampered = wire;
    tampered[byte_index] ^= static_cast<std::uint8_t>(1u << bit);
    Decoder dec(tampered);
    auto decoded = Capability::Decode(dec);
    ASSERT_TRUE(decoded.ok());  // still parses — but must not verify
    EXPECT_FALSE(authz_.VerifyForServer(1, *decoded).ok())
        << "byte " << byte_index << " bit " << bit;
  }
}

// A capability encodes to 60 bytes (4 u64 + u32 + i64 + 16-byte tag);
// cover every byte.
INSTANTIATE_TEST_SUITE_P(AllBytes, CapabilityBitFlipTest,
                         ::testing::Range(0, 60));

class CredentialBitFlipTest : public SecurityFuzzTest,
                              public ::testing::WithParamInterface<int> {};

TEST_P(CredentialBitFlipTest, EverySingleBitFlipIsRejected) {
  Encoder enc;
  cred_.Encode(enc);
  Buffer wire = std::move(enc).Take();
  const auto byte_index = static_cast<std::size_t>(GetParam());
  ASSERT_LT(byte_index, wire.size());
  for (int bit = 0; bit < 8; ++bit) {
    Buffer tampered = wire;
    tampered[byte_index] ^= static_cast<std::uint8_t>(1u << bit);
    Decoder dec(tampered);
    auto decoded = Credential::Decode(dec);
    ASSERT_TRUE(decoded.ok());
    EXPECT_FALSE(authn_.Verify(*decoded).ok())
        << "byte " << byte_index << " bit " << bit;
  }
}

// A credential encodes to 48 bytes (4 u64 + 16-byte tag).
INSTANTIATE_TEST_SUITE_P(AllBytes, CredentialBitFlipTest,
                         ::testing::Range(0, 48));

// ---- Random multi-field forgeries ---------------------------------------------

TEST_F(SecurityFuzzTest, RandomCapabilityForgeriesRejected) {
  Rng rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    Capability forged = cap_;
    // Randomize 1-4 fields.
    const int mutations = 1 + static_cast<int>(rng.NextBelow(4));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.NextBelow(7)) {
        case 0: forged.cap_id = rng.NextU64(); break;
        case 1: forged.cid.value = rng.NextU64(); break;
        case 2: forged.ops = static_cast<std::uint32_t>(rng.NextBelow(32)); break;
        case 3: forged.uid = rng.NextU64(); break;
        case 4: forged.instance = rng.NextU64(); break;
        case 5: forged.expires_us = static_cast<std::int64_t>(rng.NextU64()); break;
        case 6: forged.tag = Tag128{rng.NextU64(), rng.NextU64()}; break;
      }
    }
    if (forged.cap_id == cap_.cap_id && forged.cid == cap_.cid &&
        forged.ops == cap_.ops && forged.uid == cap_.uid &&
        forged.instance == cap_.instance &&
        forged.expires_us == cap_.expires_us && forged.tag == cap_.tag) {
      continue;  // astronomically unlikely: mutated back to the original
    }
    ASSERT_FALSE(authz_.VerifyForServer(1, forged).ok()) << "trial " << trial;
  }
}

TEST_F(SecurityFuzzTest, GuessedCapabilitiesNeverVerify) {
  // An attacker who knows the *format* but not the key mints random tags.
  Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    Capability guess;
    guess.cap_id = cap_.cap_id;      // a real, issued id
    guess.cid = cid_;                // the real container
    guess.ops = kOpAll;              // maximum privilege
    guess.uid = 100;
    guess.instance = cap_.instance;  // correct instance
    guess.expires_us = cap_.expires_us;
    guess.tag = Tag128{rng.NextU64(), rng.NextU64()};
    ASSERT_FALSE(authz_.VerifyForServer(1, guess).ok()) << "trial " << trial;
  }
}

TEST_F(SecurityFuzzTest, TruncatedWireTokensFailToDecode) {
  Encoder enc;
  cap_.Encode(enc);
  Buffer wire = std::move(enc).Take();
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    Buffer cut(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(keep));
    Decoder dec(cut);
    EXPECT_FALSE(Capability::Decode(dec).ok()) << "kept " << keep;
  }
}

TEST_F(SecurityFuzzTest, CrossServiceTokensRejected) {
  // A capability signed by one authorization service must not verify at
  // another, even with identical policy (independent keys + instances).
  AuthzService other(&authn_, SipKey{0xCC, 0xDD}, AuthzOptions{});
  auto other_cid = other.CreateContainer(cred_).value();
  auto other_cap = other.GetCap(cred_, other_cid, kOpRead).value();
  EXPECT_FALSE(authz_.VerifyForServer(1, other_cap).ok());
  EXPECT_FALSE(other.VerifyForServer(1, cap_).ok());
}

TEST_F(SecurityFuzzTest, SipHashAvalanche) {
  // Flipping any input bit flips ~half the output bits — a sanity check
  // that the tag actually binds every byte it covers.
  SipKey key{123, 456};
  Buffer base = PatternBuffer(64, 1);
  const std::uint64_t h0 = SipHash24(key, ByteSpan(base));
  double total_flips = 0;
  int cases = 0;
  for (std::size_t byte = 0; byte < base.size(); byte += 3) {
    for (int bit = 0; bit < 8; bit += 3) {
      Buffer mutated = base;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const std::uint64_t h1 = SipHash24(key, ByteSpan(mutated));
      total_flips += __builtin_popcountll(h0 ^ h1);
      ++cases;
    }
  }
  const double mean_flips = total_flips / cases;
  EXPECT_GT(mean_flips, 24.0);  // ideal is 32 of 64
  EXPECT_LT(mean_flips, 40.0);
}

}  // namespace
}  // namespace lwfs::security
