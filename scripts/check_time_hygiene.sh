#!/usr/bin/env bash
# Time hygiene: every time read and every sleep in src/, bench/, and tests/
# must go through util::Clock — util/clock.{h,cpp} are the only files allowed
# to touch the raw std::chrono clocks and std::this_thread sleeps.  A raw
# call anywhere else bypasses VirtualClock silently: the run still passes on
# real time but loses determinism and modeled-time accounting (DESIGN.md
# "Time model").  Benches and tests are covered because they are exactly the
# code we rerun under --virtual expecting bit-identical results.
#
# A line that *intentionally* reads the wall clock (e.g. the clock test that
# proves virtual sleeps cost no wall time) may carry a `time-hygiene: wall`
# comment to waive the check for that line only.
#
# CI runs this on every push; run it locally before sending a change that
# touches timing.
set -u
cd "$(dirname "$0")/.."

pattern='steady_clock::now|system_clock::now|this_thread::sleep_for|this_thread::sleep_until'
hits=$(grep -rnE "$pattern" src/ bench/ tests/ --include='*.h' --include='*.cpp' \
       | grep -vE '^src/util/clock\.(h|cpp):' \
       | grep -v 'time-hygiene: wall' || true)

if [ -n "$hits" ]; then
  echo "time-hygiene violation: raw clock reads or sleeps outside util/clock*." >&2
  echo "Route them through util::Clock (RuntimeOptions::clock reaches every layer)," >&2
  echo "or tag a deliberate wall-clock read with '// time-hygiene: wall':" >&2
  echo "$hits" >&2
  exit 1
fi
echo "time hygiene OK: no raw clock reads or sleeps in src/, bench/, tests/ outside util/clock*"
