// WritePipeline: one rank's checkpoint dump as a resumable state machine.
//
// The Figure 8 per-rank sequence — authenticate, acquire a capability,
// create the state object, stream the payload, verify — expressed as a
// driver::LogicalClient so that one carrier thread can interleave
// thousands of ranks' pipelines over the asynchronous RPC engine.  The
// blocking LwfsCheckpoint::Run is a thin wrapper: it builds one pipeline
// per rank and drives them on a single-carrier engine whose in-flight cap
// is the checkpoint window.
//
// Stages (each entered only when the previous one's reply resolved):
//
//   kLogin       — authn RPC; skipped when Spec carries a credential.
//   kAcquireCap  — authz RPC; skipped when Spec carries a capability
//                  (the checkpoint's broadcast cap, §3.1.2 / Figure 4-a).
//   kCreate      — object create on the chosen storage server; the resolve
//                  timestamp is recorded (create_done_time) so callers can
//                  split create-phase from dump-phase time (Figure 10).
//   kStream      — payload written in chunk_bytes pieces through a bounded
//                  per-rank window; chunk_bytes = 0 dumps in one write.
//   kVerify      — optional GetAttr check that the object covers the
//                  payload (Spec::verify_attr).
//   kDone        — result() holds the first error, or OK.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/client.h"
#include "driver/driver.h"
#include "security/types.h"
#include "storage/ids.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/shared_buffer.h"
#include "util/status.h"

namespace lwfs::checkpoint {

class WritePipeline final : public driver::LogicalClient {
 public:
  struct Spec {
    /// Shared RPC endpoint.  Many pipelines multiplex one client; callers
    /// shard clients across carriers (driver's id % carriers contract).
    core::Client* client = nullptr;
    std::uint32_t server = 0;  // storage server for this rank's object

    /// Pre-acquired identity/rights.  When absent the pipeline runs the
    /// corresponding acquisition stage itself.
    std::optional<security::Credential> cred;
    std::optional<security::Capability> cap;
    std::string principal, secret;    // kLogin inputs (when cred is absent)
    storage::ContainerId cid{0};      // kAcquireCap container
    std::uint32_t cap_ops = 0;        // kAcquireCap rights mask

    /// >= 2 switches the pipeline to the replicated path: placement via
    /// the naming registry (kPlace, with `server` as the placement
    /// preference), object-create fan-out to every chain member, chain
    /// writes with head failover, and a verify that fails over through the
    /// chain.  0 or 1 keeps the direct single-server path.
    std::uint32_t replication_factor = 0;

    txn::TxnId txid = 0;              // create joins this transaction
    ByteSpan payload{};               // must stay valid until kDone
    /// Zero-copy alternative to `payload`: an owned ref-counted slice.
    /// Chunks go out as O(1) sub-slices registered by reference, the slice
    /// keeps the state buffer alive, and the server's store-medium copy is
    /// the only copy.  Takes precedence over `payload` when owned().
    util::SharedSlice payload_slice{};
    std::uint64_t chunk_bytes = 0;    // 0 = whole payload in one write
    std::size_t window = 1;           // outstanding chunk writes per rank
    bool create_only = false;         // stop after kCreate (Figure 10 sweep)
    bool verify_attr = false;         // run kVerify
  };

  explicit WritePipeline(Spec spec) : spec_(std::move(spec)) {}

  driver::Step Poll(driver::Context& ctx) override;
  [[nodiscard]] Status result() const override { return result_; }

  /// Valid once the machine passed kCreate.
  [[nodiscard]] bool created() const { return created_; }
  [[nodiscard]] storage::ObjectId oid() const { return oid_; }
  [[nodiscard]] util::Clock::TimePoint create_done_time() const {
    return create_done_;
  }
  /// True once the payload was fully written (and verified, if requested).
  [[nodiscard]] bool dumped() const { return dumped_; }
  /// The replica placement (valid once created(), replicated mode only).
  [[nodiscard]] const core::ReplicaChain& replica_chain() const {
    return chain_;
  }

 private:
  enum class Stage {
    kStart,
    kLogin,
    kAcquireCap,
    kCreate,
    kPlace,           // replicated: registry placement RPC in flight
    kCreateReplicas,  // replicated: create fan-out in flight
    kStream,
    kVerify,
    kDone,
  };

  [[nodiscard]] bool replicated() const {
    return spec_.replication_factor >= 2;
  }

  /// Issue the next acquisition/create/verify call for `stage` and arm its
  /// completion wake.  Returns kBlocked, or fails the machine.
  driver::Step Issue(driver::Context& ctx, Stage stage);
  driver::Step Fail(Status status);

  Spec spec_;
  Stage stage_ = Stage::kStart;

  rpc::CallHandle call_;             // login / getcap / getattr in flight
  core::PendingCreate create_;       // create in flight
  std::deque<core::PendingIo> writes_;  // chunk window, retired from front
  std::uint64_t offset_ = 0;         // next payload byte to issue

  // Replicated-path state.  A chain write's handle changes when head
  // failover reissues it, so each window entry remembers the generation it
  // armed its wake for and re-arms when the generation moves.
  core::ReplicaChain chain_;
  std::vector<rpc::CallHandle> creates_;  // fan-out, one per chain member
  std::vector<int> create_states_;        // 0 pending, 1 created, -1 failed
  Status create_error_ = OkStatus();      // first create failure
  struct RepWrite {
    core::PendingReplicatedWrite io;
    std::uint64_t armed = 0;
  };
  std::deque<RepWrite> rep_writes_;
  std::size_t verify_member_ = 0;  // chain index the verify targets
  int place_retries_ = 0;  // kWrongShard re-issues (bounded)

  security::Credential cred_{};
  security::Capability cap_{};
  bool created_ = false;
  bool dumped_ = false;
  storage::ObjectId oid_{};
  util::Clock::TimePoint create_done_{};
  Status result_ = OkStatus();
};

}  // namespace lwfs::checkpoint
