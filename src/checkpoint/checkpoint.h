// Checkpoint case study (§4, Figure 8).
//
// Three functionally equivalent checkpoint implementations:
//
//  * LwfsCheckpoint       — the paper's lightweight checkpoint: each rank
//                           creates and dumps its own object, rank 0
//                           gathers metadata into a metadata object and
//                           names it, all inside one distributed
//                           transaction (Figure 8 pseudocode, line for
//                           line).  Each rank's create+dump runs as a
//                           WritePipeline state machine on the driver
//                           engine — a bounded window of asynchronous
//                           calls, not one OS thread per rank.
//  * PfsFilePerProcess    — one PFS file per rank: dump bandwidth scales,
//                           but every create funnels through the MDS.
//  * PfsSharedFile        — one striped PFS file, rank r writes its
//                           disjoint slice; POSIX extent locking serializes.
//
// Each returns CheckpointStats and can be restored and verified, which is
// how the tests prove the three produce identical application state.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/runtime.h"
#include "pfs/client.h"
#include "pfs/pfs_runtime.h"
#include "util/bytes.h"
#include "util/shared_buffer.h"
#include "util/status.h"

namespace lwfs::checkpoint {

struct CheckpointStats {
  double seconds = 0;          // wall time of the whole checkpoint
  double create_seconds = 0;   // file/object creation phase only
  double dump_seconds = 0;     // data dump phase only
  std::uint64_t bytes = 0;     // application bytes written
  std::uint64_t creates = 0;   // files/objects created
  [[nodiscard]] double throughput_mb_s() const {
    return seconds > 0 ? static_cast<double>(bytes) / 1e6 / seconds : 0;
  }
};

// ---------------------------------------------------------------------------
// LWFS lightweight checkpoint
// ---------------------------------------------------------------------------

class LwfsCheckpoint {
 public:
  struct Config {
    std::string path;               // name registered for the checkpoint
    storage::ContainerId cid;       // checkpoint container (MAIN line 2)
    security::Capability cap;       // caps for create+write (MAIN line 3)
    std::uint32_t journal_server = 0;
    std::uint32_t window = 8;       // outstanding async creates/writes
    /// >= 2 checkpoints into N-way replicated objects (DESIGN.md §15):
    /// every rank's state and the metadata object live on a replica chain,
    /// and the distributed transaction is skipped — redundancy replaces
    /// 2PC, and the single LinkName publishing the metadata object is the
    /// commit point.  0 or 1 keeps the transactional single-copy path.
    std::uint32_t replication_factor = 0;
  };

  /// Run the CHECKPOINT() operation of Figure 8; `states[r]` is rank r's
  /// process state.  Each rank places its object on storage server r % m
  /// (application-chosen distribution policy).  Creates and dumps are
  /// pipelined through a window of `config.window` outstanding requests.
  static Result<CheckpointStats> Run(core::ServiceRuntime& runtime,
                                     const Config& config,
                                     const std::vector<Buffer>& states);
  /// Zero-copy variant: owned() slices are registered for the servers'
  /// pulls by reference, so each rank's state crosses the stack without a
  /// staging copy (the store-medium copy is the only one).  Non-owned
  /// (External) slices take the legacy staged path, like the Buffer
  /// overload — which wraps its spans this way and delegates here.
  static Result<CheckpointStats> Run(
      core::ServiceRuntime& runtime, const Config& config,
      const std::vector<util::SharedSlice>& states);

  /// Restore: look up `path`, read the metadata object, read every state
  /// object through a windowed async batch.  Delegates to RestoreSlices
  /// and copies each rank's slice into a caller-owned Buffer.
  static Result<std::vector<Buffer>> Restore(core::ServiceRuntime& runtime,
                                             const security::Capability& cap,
                                             const std::string& path);
  /// Zero-copy restore: each rank's state comes back as the store-owned
  /// slice the reply frame carried — no landing buffer anywhere on the
  /// client, so a full restore holds exactly one payload per rank.
  static Result<std::vector<util::SharedSlice>> RestoreSlices(
      core::ServiceRuntime& runtime, const security::Capability& cap,
      const std::string& path);
};

// ---------------------------------------------------------------------------
// Traditional-PFS checkpoints
// ---------------------------------------------------------------------------

class PfsFilePerProcess {
 public:
  struct Config {
    std::string base_path;  // rank r writes <base_path>.<r>
    std::uint32_t stripes_per_file = 1;
  };

  static Result<CheckpointStats> Run(pfs::PfsRuntime& runtime,
                                     const Config& config,
                                     const std::vector<Buffer>& states);

  static Result<std::vector<Buffer>> Restore(pfs::PfsRuntime& runtime,
                                             const Config& config,
                                             std::uint32_t nranks);
};

class PfsSharedFile {
 public:
  struct Config {
    std::string path;
    std::uint32_t stripe_count = 0;  // 0 = stripe over all OSTs
    pfs::ConsistencyMode mode = pfs::ConsistencyMode::kPosixLocking;
  };

  /// Rank r writes states[r] at offset sum(sizes[0..r)).
  static Result<CheckpointStats> Run(pfs::PfsRuntime& runtime,
                                     const Config& config,
                                     const std::vector<Buffer>& states);

  static Result<std::vector<Buffer>> Restore(pfs::PfsRuntime& runtime,
                                             const Config& config,
                                             const std::vector<std::uint64_t>&
                                                 sizes);
};

}  // namespace lwfs::checkpoint
