#include "checkpoint/checkpoint.h"

#include <atomic>
#include <barrier>
#include <chrono>
#include <mutex>
#include <thread>

#include "comm/collectives.h"
#include "core/protocol.h"

namespace lwfs::checkpoint {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Collects the first error any rank hits.
class ErrorCollector {
 public:
  void Record(const Status& status) {
    if (status.ok()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (first_.ok()) first_ = status;
  }
  [[nodiscard]] Status first() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return first_;
  }

 private:
    mutable std::mutex mutex_;
  Status first_;
};

}  // namespace

// ---------------------------------------------------------------------------
// LwfsCheckpoint
// ---------------------------------------------------------------------------

Result<CheckpointStats> LwfsCheckpoint::Run(core::ServiceRuntime& runtime,
                                            const Config& config,
                                            const std::vector<Buffer>& states) {
  const auto nranks = static_cast<std::uint32_t>(states.size());
  if (nranks == 0) return InvalidArgument("no ranks");
  const auto nservers =
      static_cast<std::uint32_t>(runtime.deployment().storage.size());

  // Rank 0's client coordinates the transaction (Figure 8 line 1).
  auto coordinator_client = runtime.MakeClient();
  core::TxnParticipants participants;
  for (std::uint32_t s = 0; s < nservers; ++s) {
    participants.storage_servers.push_back(s);
  }
  participants.naming = true;
  auto txn = coordinator_client->BeginTxn(config.journal_server, config.cap,
                                          participants);
  if (!txn.ok()) return txn.status();

  ErrorCollector errors;
  std::atomic<std::uint64_t> created{0};

  // Rank clients and the communicator group they share (the checkpoint's
  // collectives run over the same fabric as its I/O).
  std::vector<std::unique_ptr<core::Client>> clients;
  std::vector<std::unique_ptr<comm::Communicator>> comms;
  {
    std::vector<std::shared_ptr<portals::Nic>> nics;
    std::vector<portals::Nid> members;
    for (std::uint32_t r = 0; r < nranks; ++r) {
      clients.push_back(runtime.MakeClient());
      nics.push_back(runtime.fabric().CreateNic());
      members.push_back(nics.back()->nid());
    }
    for (std::uint32_t r = 0; r < nranks; ++r) {
      auto comm = comm::Communicator::Create(nics[r], members,
                                             static_cast<int>(r));
      if (!comm.ok()) return comm.status();
      comms.push_back(std::move(*comm));
    }
  }
  constexpr std::uint32_t kCapTag = 1;
  constexpr std::uint32_t kMetaTag = 10;

  const auto t_start = Clock::now();
  std::atomic<double> create_phase_s{0};

  // CHECKPOINT() body, one thread per rank.  Rank 0 distributes the
  // capability with the logarithmic broadcast of §3.1.2 / Figure 4-a;
  // every rank creates and dumps its own object (Figure 8 lines 2-3);
  // rank 0 gathers the metadata (line 7), writes the metadata object and
  // stages the name (lines 5, 9).
  {
    std::vector<std::thread> ranks;
    ranks.reserve(nranks);
    for (std::uint32_t r = 0; r < nranks; ++r) {
      ranks.emplace_back([&, r] {
        core::Client& client = *clients[r];
        comm::Communicator& comm = *comms[r];

        // Capability distribution: transferable bytes over the wire.
        Buffer cap_wire;
        if (r == 0) {
          Encoder enc;
          config.cap.Encode(enc);
          cap_wire = std::move(enc).Take();
        }
        Status distributed = comm.Bcast(0, kCapTag, cap_wire);
        if (!distributed.ok()) {
          errors.Record(distributed);
          return;
        }
        Decoder cap_dec(cap_wire);
        auto cap = security::Capability::Decode(cap_dec);
        if (!cap.ok()) {
          errors.Record(cap.status());
          return;
        }

        const std::uint32_t server = r % nservers;
        const auto t_create = Clock::now();
        auto oid = client.CreateObject(server, *cap, (*txn)->id());
        if (!oid.ok()) {
          errors.Record(oid.status());
          (void)comm.Gather(0, kMetaTag, {});  // keep the collective whole
          return;
        }
        created.fetch_add(1, std::memory_order_relaxed);
        // Track the longest create among ranks as the create-phase time.
        const double dt = Seconds(t_create, Clock::now());
        double cur = create_phase_s.load();
        while (dt > cur && !create_phase_s.compare_exchange_weak(cur, dt)) {
        }
        Status written = client.WriteObject(server, *cap, *oid, 0,
                                            ByteSpan(states[r]));
        if (!written.ok()) errors.Record(written);

        // Contribute (ref, size) to the rank-0 gather.
        Encoder contribution;
        core::EncodeObjectRef(contribution,
                              storage::ObjectRef{config.cid, server, *oid});
        contribution.PutU64(states[r].size());
        auto gathered = comm.Gather(0, kMetaTag,
                                    written.ok() ? ByteSpan(contribution.buffer())
                                                 : ByteSpan{});
        if (!gathered.ok()) {
          errors.Record(gathered.status());
          return;
        }

        if (r == 0) {
          // Figure 8 lines 4-10 on rank 0 proper.
          Encoder metadata;
          metadata.PutU32(nranks);
          for (const Buffer& entry : *gathered) {
            if (entry.empty()) {
              errors.Record(Aborted("a rank failed to dump"));
              return;
            }
            metadata.PutRaw(ByteSpan(entry));
          }
          const std::uint32_t md_server = 0;
          auto mdobj = client.CreateObject(md_server, *cap, (*txn)->id());
          if (!mdobj.ok()) {
            errors.Record(mdobj.status());
            return;
          }
          created.fetch_add(1, std::memory_order_relaxed);
          Status md_written = client.WriteObject(md_server, *cap, *mdobj, 0,
                                                 ByteSpan(metadata.buffer()));
          if (!md_written.ok()) {
            errors.Record(md_written);
            return;
          }
          errors.Record(client.StageLinkName(
              (*txn)->id(), config.path,
              storage::ObjectRef{config.cid, md_server, *mdobj}));
        }
      });
    }
    for (std::thread& t : ranks) t.join();
  }
  LWFS_RETURN_IF_ERROR(errors.first());

  LWFS_RETURN_IF_ERROR((*txn)->Commit());
  const auto t_end = Clock::now();

  CheckpointStats stats;
  stats.seconds = Seconds(t_start, t_end);
  stats.create_seconds = create_phase_s.load();
  stats.dump_seconds = stats.seconds - stats.create_seconds;
  for (const Buffer& s : states) stats.bytes += s.size();
  stats.creates = created.load();
  return stats;
}

Result<std::vector<Buffer>> LwfsCheckpoint::Restore(
    core::ServiceRuntime& runtime, const security::Capability& cap,
    const std::string& path) {
  auto client = runtime.MakeClient();
  auto md_ref = client->LookupName(path);
  if (!md_ref.ok()) return md_ref.status();

  auto md_attr = client->GetAttr(md_ref->server_index, cap, md_ref->oid);
  if (!md_attr.ok()) return md_attr.status();
  auto metadata = client->ReadObjectAlloc(md_ref->server_index, cap,
                                          md_ref->oid, 0, md_attr->size);
  if (!metadata.ok()) return metadata.status();

  Decoder dec(*metadata);
  auto nranks = dec.GetU32();
  if (!nranks.ok()) return nranks.status();
  struct Entry {
    storage::ObjectRef ref;
    std::uint64_t size;
  };
  // Each entry occupies 28 metadata bytes; a corrupt count must not drive
  // allocation.
  if (*nranks > dec.remaining() / 28) {
    return DataLoss("corrupt checkpoint metadata (rank count)");
  }
  std::vector<Entry> entries;
  entries.reserve(*nranks);
  for (std::uint32_t r = 0; r < *nranks; ++r) {
    auto ref = core::DecodeObjectRef(dec);
    auto size = dec.GetU64();
    if (!ref.ok() || !size.ok()) return DataLoss("corrupt checkpoint metadata");
    entries.push_back(Entry{*ref, *size});
  }

  std::vector<Buffer> states(*nranks);
  ErrorCollector errors;
  std::vector<std::thread> ranks;
  ranks.reserve(*nranks);
  for (std::uint32_t r = 0; r < *nranks; ++r) {
    ranks.emplace_back([&, r] {
      auto rank_client = runtime.MakeClient();
      auto data = rank_client->ReadObjectAlloc(entries[r].ref.server_index,
                                               cap, entries[r].ref.oid, 0,
                                               entries[r].size);
      if (!data.ok()) {
        errors.Record(data.status());
        return;
      }
      states[r] = std::move(*data);
    });
  }
  for (std::thread& t : ranks) t.join();
  LWFS_RETURN_IF_ERROR(errors.first());
  return states;
}

// ---------------------------------------------------------------------------
// PfsFilePerProcess
// ---------------------------------------------------------------------------

Result<CheckpointStats> PfsFilePerProcess::Run(
    pfs::PfsRuntime& runtime, const Config& config,
    const std::vector<Buffer>& states) {
  const auto nranks = static_cast<std::uint32_t>(states.size());
  if (nranks == 0) return InvalidArgument("no ranks");

  ErrorCollector errors;
  std::atomic<double> create_phase_s{0};
  const auto t_start = Clock::now();
  {
    std::vector<std::thread> ranks;
    ranks.reserve(nranks);
    for (std::uint32_t r = 0; r < nranks; ++r) {
      ranks.emplace_back([&, r] {
        auto client = runtime.MakeClient(pfs::ConsistencyMode::kRelaxed);
        const std::string path =
            config.base_path + "." + std::to_string(r);
        const auto t_create = Clock::now();
        // Every rank's create funnels through the centralized MDS.
        auto file = client->Create(path, config.stripes_per_file);
        if (!file.ok()) {
          errors.Record(file.status());
          return;
        }
        const double dt = Seconds(t_create, Clock::now());
        double cur = create_phase_s.load();
        while (dt > cur && !create_phase_s.compare_exchange_weak(cur, dt)) {
        }
        Status written = client->Write(*file, 0, ByteSpan(states[r]));
        if (!written.ok()) {
          errors.Record(written);
          return;
        }
        errors.Record(client->Sync(*file, states[r].size()));
      });
    }
    for (std::thread& t : ranks) t.join();
  }
  LWFS_RETURN_IF_ERROR(errors.first());
  const auto t_end = Clock::now();

  CheckpointStats stats;
  stats.seconds = Seconds(t_start, t_end);
  stats.create_seconds = create_phase_s.load();
  stats.dump_seconds = stats.seconds - stats.create_seconds;
  for (const Buffer& s : states) stats.bytes += s.size();
  stats.creates = nranks;
  return stats;
}

Result<std::vector<Buffer>> PfsFilePerProcess::Restore(
    pfs::PfsRuntime& runtime, const Config& config, std::uint32_t nranks) {
  std::vector<Buffer> states(nranks);
  ErrorCollector errors;
  std::vector<std::thread> ranks;
  ranks.reserve(nranks);
  for (std::uint32_t r = 0; r < nranks; ++r) {
    ranks.emplace_back([&, r] {
      auto client = runtime.MakeClient(pfs::ConsistencyMode::kRelaxed);
      const std::string path = config.base_path + "." + std::to_string(r);
      auto file = client->Open(path);
      if (!file.ok()) {
        errors.Record(file.status());
        return;
      }
      Buffer data(file->attr.size, 0);
      auto n = client->Read(*file, 0, MutableByteSpan(data));
      if (!n.ok()) {
        errors.Record(n.status());
        return;
      }
      data.resize(static_cast<std::size_t>(*n));
      states[r] = std::move(data);
    });
  }
  for (std::thread& t : ranks) t.join();
  LWFS_RETURN_IF_ERROR(errors.first());
  return states;
}

// ---------------------------------------------------------------------------
// PfsSharedFile
// ---------------------------------------------------------------------------

Result<CheckpointStats> PfsSharedFile::Run(pfs::PfsRuntime& runtime,
                                           const Config& config,
                                           const std::vector<Buffer>& states) {
  const auto nranks = static_cast<std::uint32_t>(states.size());
  if (nranks == 0) return InvalidArgument("no ranks");

  // Rank offsets: disjoint slices of one file.
  std::vector<std::uint64_t> offsets(nranks, 0);
  std::uint64_t total = 0;
  for (std::uint32_t r = 0; r < nranks; ++r) {
    offsets[r] = total;
    total += states[r].size();
  }

  const auto t_start = Clock::now();
  // Rank 0 creates the single shared file (one MDS create).
  auto rank0 = runtime.MakeClient(config.mode);
  auto file = rank0->Create(config.path, config.stripe_count);
  if (!file.ok()) return file.status();
  const double create_s = Seconds(t_start, Clock::now());

  ErrorCollector errors;
  {
    std::vector<std::thread> ranks;
    ranks.reserve(nranks);
    for (std::uint32_t r = 0; r < nranks; ++r) {
      ranks.emplace_back([&, r] {
        auto client = runtime.MakeClient(config.mode);
        Status written =
            client->Write(*file, offsets[r], ByteSpan(states[r]));
        errors.Record(written);
      });
    }
    for (std::thread& t : ranks) t.join();
  }
  LWFS_RETURN_IF_ERROR(errors.first());
  LWFS_RETURN_IF_ERROR(rank0->Sync(*file, total));
  const auto t_end = Clock::now();

  CheckpointStats stats;
  stats.seconds = Seconds(t_start, t_end);
  stats.create_seconds = create_s;
  stats.dump_seconds = stats.seconds - stats.create_seconds;
  stats.bytes = total;
  stats.creates = 1;
  return stats;
}

Result<std::vector<Buffer>> PfsSharedFile::Restore(
    pfs::PfsRuntime& runtime, const Config& config,
    const std::vector<std::uint64_t>& sizes) {
  auto client = runtime.MakeClient(config.mode);
  auto file = client->Open(config.path);
  if (!file.ok()) return file.status();
  std::vector<Buffer> states(sizes.size());
  std::uint64_t offset = 0;
  for (std::size_t r = 0; r < sizes.size(); ++r) {
    Buffer data(sizes[r], 0);
    auto n = client->Read(*file, offset, MutableByteSpan(data));
    if (!n.ok()) return n.status();
    if (*n != sizes[r]) return DataLoss("short read restoring shared file");
    states[r] = std::move(data);
    offset += sizes[r];
  }
  return states;
}

}  // namespace lwfs::checkpoint
