#include "checkpoint/checkpoint.h"

#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "checkpoint/write_pipeline.h"
#include "comm/collectives.h"
#include "core/protocol.h"
#include "driver/driver.h"
#include "storage/ids.h"

namespace lwfs::checkpoint {

namespace {

double Seconds(util::Clock::TimePoint a, util::Clock::TimePoint b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Collects the first error seen across a checkpoint's operations.
class ErrorCollector {
 public:
  void Record(const Status& status) {
    if (!status.ok() && first_.ok()) first_ = status;
  }
  [[nodiscard]] const Status& first() const { return first_; }

 private:
  Status first_;
};

/// Read a whole replicated object: resolve its chain, size it via the first
/// member that answers GetAttr, then read-from-any (hedged when the client
/// has hedging enabled).
Result<Buffer> ReadReplicatedAlloc(core::Client& client,
                                   const security::Capability& cap,
                                   storage::ObjectId oid) {
  auto chain = client.LookupReplicas(oid);
  if (!chain.ok()) return chain.status();
  std::optional<storage::ObjAttr> attr;
  Status last = Unavailable("replica chain is empty");
  for (std::uint32_t member : chain->servers) {
    auto got = client.GetAttr(member, cap, oid);
    if (got.ok()) {
      attr = *got;
      break;
    }
    last = got.status();
  }
  if (!attr.has_value()) return last;
  Buffer data(attr->size, 0);
  auto n = client.ReadReplicated(cap, *chain, 0, MutableByteSpan(data));
  if (!n.ok()) return n.status();
  data.resize(static_cast<std::size_t>(*n));
  return data;
}

}  // namespace

// ---------------------------------------------------------------------------
// LwfsCheckpoint
// ---------------------------------------------------------------------------

Result<CheckpointStats> LwfsCheckpoint::Run(core::ServiceRuntime& runtime,
                                            const Config& config,
                                            const std::vector<Buffer>& states) {
  // Legacy span-based entry: wrap without copying.  External slices are
  // not owned, so the servers stage each pulled chunk exactly as before.
  std::vector<util::SharedSlice> slices;
  slices.reserve(states.size());
  for (const Buffer& s : states) {
    slices.push_back(util::SharedSlice::External(ByteSpan(s)));
  }
  return Run(runtime, config, slices);
}

Result<CheckpointStats> LwfsCheckpoint::Run(
    core::ServiceRuntime& runtime, const Config& config,
    const std::vector<util::SharedSlice>& states) {
  const auto nranks = static_cast<std::uint32_t>(states.size());
  if (nranks == 0) return InvalidArgument("no ranks");
  const auto nservers =
      static_cast<std::uint32_t>(runtime.deployment().storage.size());
  const std::size_t window = config.window == 0 ? 1 : config.window;

  // Rank 0's client coordinates the transaction (Figure 8 line 1).  A
  // replicated checkpoint skips the distributed transaction: redundancy
  // replaces 2PC — a torn checkpoint is invisible until the final LinkName
  // publishes the metadata object, and that one naming update is the
  // commit point (DESIGN.md §15).
  const bool replicated = config.replication_factor >= 2;
  auto coordinator_client = runtime.MakeClient();
  std::unique_ptr<core::Transaction> txn;
  if (!replicated) {
    core::TxnParticipants participants;
    for (std::uint32_t s = 0; s < nservers; ++s) {
      participants.storage_servers.push_back(s);
    }
    participants.naming = true;
    auto begun = coordinator_client->BeginTxn(config.journal_server,
                                              config.cap, participants);
    if (!begun.ok()) return begun.status();
    txn = std::move(*begun);
  }
  const txn::TxnId txid = txn ? txn->id() : 0;

  util::Clock* clock = runtime.clock();
  ErrorCollector errors;
  std::uint64_t created = 0;

  // Rank clients and the communicator group they share (the checkpoint's
  // collectives run over the same fabric as its I/O).
  std::vector<std::unique_ptr<core::Client>> clients;
  std::vector<std::unique_ptr<comm::Communicator>> comms;
  {
    std::vector<std::shared_ptr<portals::Nic>> nics;
    std::vector<portals::Nid> members;
    for (std::uint32_t r = 0; r < nranks; ++r) {
      clients.push_back(runtime.MakeClient());
      nics.push_back(runtime.fabric().CreateNic());
      members.push_back(nics.back()->nid());
    }
    for (std::uint32_t r = 0; r < nranks; ++r) {
      auto comm = comm::Communicator::Create(nics[r], members,
                                             static_cast<int>(r), clock);
      if (!comm.ok()) return comm.status();
      comms.push_back(std::move(*comm));
    }
  }
  constexpr std::uint32_t kCapTag = 1;
  constexpr std::uint32_t kMetaTag = 10;

  const util::Clock::TimePoint t_start = clock->Now();

  // Capability distribution: the logarithmic broadcast of §3.1.2 /
  // Figure 4-a, as transferable bytes over the wire.  The binomial tree is
  // driven sequentially in increasing rank order — a parent rank is always
  // lower than its children, so its forwards are already buffered in the
  // children's event queues by the time they Recv.
  std::vector<security::Capability> caps;
  caps.reserve(nranks);
  for (std::uint32_t r = 0; r < nranks; ++r) {
    Buffer cap_wire;
    if (r == 0) {
      Encoder enc;
      config.cap.Encode(enc);
      cap_wire = std::move(enc).Take();
    }
    Status distributed = comms[r]->Bcast(0, kCapTag, cap_wire);
    if (!distributed.ok()) return distributed;
    Decoder cap_dec(cap_wire);
    auto cap = security::Capability::Decode(cap_dec);
    if (!cap.ok()) return cap.status();
    caps.push_back(std::move(*cap));
  }

  // CHECKPOINT() body (Figure 8 lines 2-3): every rank creates and dumps
  // its own object on server r % m.  Each rank is a WritePipeline state
  // machine (create → stream → done); one carrier thread drives them all
  // over the asynchronous RPC engine with `window` armed completions in
  // flight — the blocking API is a thin wrapper over the same event-driven
  // path the petascale harness scales to a million ranks.
  std::vector<storage::ObjectId> oids(nranks);
  std::vector<std::uint32_t> heads(nranks, 0);  // metadata server_index
  std::vector<bool> dumped(nranks, false);
  auto t_creates_done = t_start;

  driver::EngineOptions eng_options;
  eng_options.carriers = 1;
  eng_options.max_inflight_per_carrier = window;
  eng_options.clock = clock;
  driver::Engine engine(eng_options);
  std::vector<WritePipeline*> machines;
  machines.reserve(nranks);
  for (std::uint32_t r = 0; r < nranks; ++r) {
    WritePipeline::Spec spec;
    spec.client = clients[r].get();
    spec.server = r % nservers;
    spec.cap = caps[r];
    spec.txid = txid;
    spec.replication_factor = config.replication_factor;
    if (states[r].owned()) {
      spec.payload_slice = states[r];
    } else {
      spec.payload = states[r].span();
    }
    auto machine = std::make_unique<WritePipeline>(std::move(spec));
    machines.push_back(machine.get());
    engine.Add(std::move(machine));
  }
  const Status engine_status = engine.Run();
  for (std::uint32_t r = 0; r < nranks; ++r) {
    const WritePipeline& m = *machines[r];
    heads[r] = r % nservers;
    if (m.created()) {
      ++created;
      oids[r] = m.oid();
      // A replicated ref names the chain head; Restore re-resolves the
      // chain from the oid's replicated bit anyway, so the head is a hint.
      if (replicated) heads[r] = m.replica_chain().servers.front();
    }
    if (m.create_done_time() > t_creates_done) {
      t_creates_done = m.create_done_time();
    }
    dumped[r] = m.dumped();
    errors.Record(m.result());
  }
  errors.Record(engine_status);  // carrier-level failures (stalled machine)
  const double create_phase_s = Seconds(t_start, t_creates_done);

  // Metadata gather (Figure 8 line 7): each rank contributes (ref, size),
  // or an empty piece if its dump failed.  The gather tree is driven in
  // decreasing rank order — children are always higher-ranked than their
  // parent, so their bundles are in flight before the parent Recvs.
  std::vector<Buffer> gathered;
  for (std::uint32_t i = nranks; i-- > 0;) {
    Encoder contribution;
    ByteSpan piece{};
    if (dumped[i]) {
      core::EncodeObjectRef(
          contribution, storage::ObjectRef{config.cid, heads[i], oids[i]});
      contribution.PutU64(states[i].size());
      piece = ByteSpan(contribution.buffer());
    }
    auto result = comms[i]->Gather(0, kMetaTag, piece);
    if (!result.ok()) return result.status();
    if (i == 0) gathered = std::move(*result);
  }

  // Figure 8 lines 4-10 on rank 0 proper: build the metadata object, dump
  // it, and stage the checkpoint name — skipped if anything already failed
  // so the first error (e.g. a denied create) is what the caller sees.
  if (errors.first().ok()) {
    Encoder metadata;
    metadata.PutU32(nranks);
    bool complete = true;
    for (const Buffer& entry : gathered) {
      if (entry.empty()) {
        errors.Record(Aborted("a rank failed to dump"));
        complete = false;
        break;
      }
      metadata.PutRaw(ByteSpan(entry));
    }
    if (complete && replicated) {
      // The metadata object is replicated too — losing it would orphan the
      // whole checkpoint.  LinkName is the commit: nothing written above is
      // visible until this name resolves.
      auto mdchain = clients[0]->CreateReplicatedObject(
          caps[0], 0, config.replication_factor);
      if (!mdchain.ok()) {
        errors.Record(mdchain.status());
      } else {
        ++created;
        Status md_written = clients[0]->WriteReplicated(
            caps[0], *mdchain, 0, ByteSpan(metadata.buffer()));
        if (!md_written.ok()) {
          errors.Record(md_written);
        } else {
          errors.Record(clients[0]->LinkName(
              config.path, storage::ObjectRef{config.cid,
                                              mdchain->servers.front(),
                                              mdchain->oid}));
        }
      }
    } else if (complete) {
      const std::uint32_t md_server = 0;
      auto mdobj = clients[0]->CreateObject(md_server, caps[0], txid);
      if (!mdobj.ok()) {
        errors.Record(mdobj.status());
      } else {
        ++created;
        Status md_written = clients[0]->WriteObject(
            md_server, caps[0], *mdobj, 0, ByteSpan(metadata.buffer()));
        if (!md_written.ok()) {
          errors.Record(md_written);
        } else {
          errors.Record(clients[0]->StageLinkName(
              txid, config.path,
              storage::ObjectRef{config.cid, md_server, *mdobj}));
        }
      }
    }
  }
  LWFS_RETURN_IF_ERROR(errors.first());

  if (txn) LWFS_RETURN_IF_ERROR(txn->Commit());
  const util::Clock::TimePoint t_end = clock->Now();

  CheckpointStats stats;
  stats.seconds = Seconds(t_start, t_end);
  stats.create_seconds = create_phase_s;
  stats.dump_seconds = stats.seconds - stats.create_seconds;
  for (const util::SharedSlice& s : states) stats.bytes += s.size();
  stats.creates = created;
  return stats;
}

Result<std::vector<Buffer>> LwfsCheckpoint::Restore(
    core::ServiceRuntime& runtime, const security::Capability& cap,
    const std::string& path) {
  auto slices = RestoreSlices(runtime, cap, path);
  if (!slices.ok()) return slices.status();
  // Final delivery into caller-owned buffers (kDeliver — outside the
  // staging budget); callers wanting the slices themselves use
  // RestoreSlices directly.
  std::vector<Buffer> states;
  states.reserve(slices->size());
  for (const util::SharedSlice& s : *slices) {
    Buffer state(s.span().begin(), s.span().end());
    LWFS_COUNT_COPY(util::CopyKind::kDeliver, state.size());
    states.push_back(std::move(state));
  }
  return states;
}

Result<std::vector<util::SharedSlice>> LwfsCheckpoint::RestoreSlices(
    core::ServiceRuntime& runtime, const security::Capability& cap,
    const std::string& path) {
  auto client = runtime.MakeClient();
  auto md_ref = client->LookupName(path);
  if (!md_ref.ok()) return md_ref.status();

  // The replicated bit in the oid says how the object was written; a
  // replicated metadata object survives the loss of its ref's head server.
  Result<Buffer> metadata = Buffer{};
  if (storage::IsReplicatedOid(md_ref->oid)) {
    metadata = ReadReplicatedAlloc(*client, cap, md_ref->oid);
  } else {
    auto md_attr = client->GetAttr(md_ref->server_index, cap, md_ref->oid);
    if (!md_attr.ok()) return md_attr.status();
    metadata = client->ReadObjectAlloc(md_ref->server_index, cap, md_ref->oid,
                                       0, md_attr->size);
  }
  if (!metadata.ok()) return metadata.status();

  Decoder dec(*metadata);
  auto nranks = dec.GetU32();
  if (!nranks.ok()) return nranks.status();
  struct Entry {
    storage::ObjectRef ref;
    std::uint64_t size;
  };
  // Each entry occupies 28 metadata bytes; a corrupt count must not drive
  // allocation.
  if (*nranks > dec.remaining() / 28) {
    return DataLoss("corrupt checkpoint metadata (rank count)");
  }
  std::vector<Entry> entries;
  entries.reserve(*nranks);
  for (std::uint32_t r = 0; r < *nranks; ++r) {
    auto ref = core::DecodeObjectRef(dec);
    auto size = dec.GetU64();
    if (!ref.ok() || !size.ok()) return DataLoss("corrupt checkpoint metadata");
    entries.push_back(Entry{*ref, *size});
  }

  // Rank-state reads flow through one windowed batch over one client; the
  // RPC engine overlaps the per-server transfers, and every rank's payload
  // lands as the reply frame's store-owned slice — no per-rank landing
  // buffer is allocated here.
  std::vector<util::SharedSlice> states(*nranks);
  core::Batch batch(client.get());
  std::vector<std::uint32_t> replicated_ranks;
  for (std::uint32_t r = 0; r < *nranks; ++r) {
    if (storage::IsReplicatedOid(entries[r].ref.oid)) {
      replicated_ranks.push_back(r);
      continue;
    }
    Status issued =
        batch.ReadSlice(entries[r].ref.server_index, cap, entries[r].ref.oid,
                        0, entries[r].size, &states[r]);
    if (!issued.ok()) break;
  }
  LWFS_RETURN_IF_ERROR(batch.Drain());
  // Replicated rank objects read from any chain member — hedged when the
  // client has hedging enabled, with failover if a member is down.
  for (std::uint32_t r : replicated_ranks) {
    auto chain = client->LookupReplicas(entries[r].ref.oid);
    if (!chain.ok()) return chain.status();
    auto got = client->ReadReplicatedSlice(cap, *chain, 0, entries[r].size);
    if (!got.ok()) return got.status();
    states[r] = std::move(*got);
  }
  return states;
}

// ---------------------------------------------------------------------------
// PfsFilePerProcess
// ---------------------------------------------------------------------------

Result<CheckpointStats> PfsFilePerProcess::Run(
    pfs::PfsRuntime& runtime, const Config& config,
    const std::vector<Buffer>& states) {
  const auto nranks = static_cast<std::uint32_t>(states.size());
  if (nranks == 0) return InvalidArgument("no ranks");

  auto client = runtime.MakeClient(pfs::ConsistencyMode::kRelaxed);
  util::Clock* clock = runtime.clock();
  const util::Clock::TimePoint t_start = clock->Now();

  // Every rank's create funnels through the centralized MDS; the serial
  // loop is exactly the serialization the paper charges this model with.
  std::vector<pfs::OpenFile> files;
  files.reserve(nranks);
  for (std::uint32_t r = 0; r < nranks; ++r) {
    const std::string path = config.base_path + "." + std::to_string(r);
    auto file = client->Create(path, config.stripes_per_file);
    if (!file.ok()) return file.status();
    files.push_back(std::move(*file));
  }
  const double create_phase_s = Seconds(t_start, clock->Now());

  // Dumps overlap through a window of per-file striped writes.
  ErrorCollector errors;
  std::deque<pfs::PfsIo> writes;
  auto retire = [&] {
    auto n = writes.front().Await();
    writes.pop_front();
    if (!n.ok()) errors.Record(n.status());
  };
  for (std::uint32_t r = 0; r < nranks; ++r) {
    while (writes.size() >= pfs::PfsClient::kDefaultOstWindow) retire();
    auto io = client->WriteAsync(files[r], 0, ByteSpan(states[r]));
    if (!io.ok()) {
      errors.Record(io.status());
      continue;
    }
    writes.push_back(std::move(*io));
  }
  while (!writes.empty()) retire();
  LWFS_RETURN_IF_ERROR(errors.first());

  for (std::uint32_t r = 0; r < nranks; ++r) {
    LWFS_RETURN_IF_ERROR(client->Sync(files[r], states[r].size()));
  }
  const util::Clock::TimePoint t_end = clock->Now();

  CheckpointStats stats;
  stats.seconds = Seconds(t_start, t_end);
  stats.create_seconds = create_phase_s;
  stats.dump_seconds = stats.seconds - stats.create_seconds;
  for (const Buffer& s : states) stats.bytes += s.size();
  stats.creates = nranks;
  return stats;
}

Result<std::vector<Buffer>> PfsFilePerProcess::Restore(
    pfs::PfsRuntime& runtime, const Config& config, std::uint32_t nranks) {
  auto client = runtime.MakeClient(pfs::ConsistencyMode::kRelaxed);

  std::vector<pfs::OpenFile> files;
  files.reserve(nranks);
  std::vector<Buffer> states(nranks);
  for (std::uint32_t r = 0; r < nranks; ++r) {
    const std::string path = config.base_path + "." + std::to_string(r);
    auto file = client->Open(path);
    if (!file.ok()) return file.status();
    states[r] = Buffer(file->attr.size, 0);
    files.push_back(std::move(*file));
  }

  ErrorCollector errors;
  std::deque<std::pair<std::uint32_t, pfs::PfsIo>> reads;
  auto retire = [&] {
    auto [r, io] = std::move(reads.front());
    reads.pop_front();
    auto n = io.Await();
    if (!n.ok()) {
      errors.Record(n.status());
      return;
    }
    states[r].resize(static_cast<std::size_t>(*n));
  };
  for (std::uint32_t r = 0; r < nranks; ++r) {
    while (reads.size() >= pfs::PfsClient::kDefaultOstWindow) retire();
    auto io = client->ReadAsync(files[r], 0, MutableByteSpan(states[r]));
    if (!io.ok()) {
      errors.Record(io.status());
      continue;
    }
    reads.emplace_back(r, std::move(*io));
  }
  while (!reads.empty()) retire();
  LWFS_RETURN_IF_ERROR(errors.first());
  return states;
}

// ---------------------------------------------------------------------------
// PfsSharedFile
// ---------------------------------------------------------------------------

Result<CheckpointStats> PfsSharedFile::Run(pfs::PfsRuntime& runtime,
                                           const Config& config,
                                           const std::vector<Buffer>& states) {
  const auto nranks = static_cast<std::uint32_t>(states.size());
  if (nranks == 0) return InvalidArgument("no ranks");

  // Rank offsets: disjoint slices of one file.
  std::vector<std::uint64_t> offsets(nranks, 0);
  std::uint64_t total = 0;
  for (std::uint32_t r = 0; r < nranks; ++r) {
    offsets[r] = total;
    total += states[r].size();
  }

  util::Clock* clock = runtime.clock();
  const util::Clock::TimePoint t_start = clock->Now();
  // Rank 0 creates the single shared file (one MDS create).
  auto rank0 = runtime.MakeClient(config.mode);
  auto file = rank0->Create(config.path, config.stripe_count);
  if (!file.ok()) return file.status();
  const double create_s = Seconds(t_start, clock->Now());

  // Each rank keeps its own client (its own lock-holder identity in
  // kPosixLocking mode) but the slice writes overlap through a bounded
  // window.  The extents are disjoint, so the per-write extent locks do
  // not deadlock — they just add the Figure 9 lock round trips.
  std::vector<std::unique_ptr<pfs::PfsClient>> clients;
  clients.reserve(nranks);
  for (std::uint32_t r = 0; r < nranks; ++r) {
    clients.push_back(runtime.MakeClient(config.mode));
  }

  ErrorCollector errors;
  std::deque<pfs::PfsIo> writes;
  auto retire = [&] {
    auto n = writes.front().Await();
    writes.pop_front();
    if (!n.ok()) errors.Record(n.status());
  };
  for (std::uint32_t r = 0; r < nranks; ++r) {
    while (writes.size() >= pfs::PfsClient::kDefaultOstWindow) retire();
    auto io = clients[r]->WriteAsync(*file, offsets[r], ByteSpan(states[r]));
    if (!io.ok()) {
      errors.Record(io.status());
      continue;
    }
    writes.push_back(std::move(*io));
  }
  while (!writes.empty()) retire();
  LWFS_RETURN_IF_ERROR(errors.first());
  LWFS_RETURN_IF_ERROR(rank0->Sync(*file, total));
  const util::Clock::TimePoint t_end = clock->Now();

  CheckpointStats stats;
  stats.seconds = Seconds(t_start, t_end);
  stats.create_seconds = create_s;
  stats.dump_seconds = stats.seconds - stats.create_seconds;
  stats.bytes = total;
  stats.creates = 1;
  return stats;
}

Result<std::vector<Buffer>> PfsSharedFile::Restore(
    pfs::PfsRuntime& runtime, const Config& config,
    const std::vector<std::uint64_t>& sizes) {
  auto client = runtime.MakeClient(config.mode);
  auto file = client->Open(config.path);
  if (!file.ok()) return file.status();
  std::vector<Buffer> states(sizes.size());
  std::uint64_t offset = 0;
  for (std::size_t r = 0; r < sizes.size(); ++r) {
    Buffer data(sizes[r], 0);
    auto n = client->Read(*file, offset, MutableByteSpan(data));
    if (!n.ok()) return n.status();
    if (*n != sizes[r]) return DataLoss("short read restoring shared file");
    states[r] = std::move(data);
    offset += sizes[r];
  }
  return states;
}

}  // namespace lwfs::checkpoint
