#include "checkpoint/write_pipeline.h"

#include <algorithm>
#include <utility>

namespace lwfs::checkpoint {

driver::Step WritePipeline::Fail(Status status) {
  result_ = std::move(status);
  stage_ = Stage::kDone;
  return driver::Step::kDone;
}

driver::Step WritePipeline::Issue(driver::Context& ctx, Stage stage) {
  switch (stage) {
    case Stage::kLogin: {
      auto handle = spec_.client->LoginAsync(spec_.principal, spec_.secret);
      if (!handle.ok()) return Fail(handle.status());
      call_ = std::move(*handle);
      break;
    }
    case Stage::kAcquireCap: {
      auto handle = spec_.client->GetCapAsync(cred_, spec_.cid, spec_.cap_ops);
      if (!handle.ok()) return Fail(handle.status());
      call_ = std::move(*handle);
      break;
    }
    case Stage::kCreate: {
      auto pending =
          spec_.client->CreateObjectAsync(spec_.server, cap_, spec_.txid);
      if (!pending.ok()) return Fail(pending.status());
      create_ = std::move(*pending);
      stage_ = stage;
      ctx.WakeOnComplete(create_.handle());
      return driver::Step::kBlocked;
    }
    case Stage::kVerify: {
      auto handle = spec_.client->GetAttrAsync(spec_.server, cap_, oid_);
      if (!handle.ok()) return Fail(handle.status());
      call_ = std::move(*handle);
      break;
    }
    default:
      return Fail(Internal("WritePipeline: not an issuable stage"));
  }
  stage_ = stage;
  ctx.WakeOnComplete(call_);
  return driver::Step::kBlocked;
}

driver::Step WritePipeline::Poll(driver::Context& ctx) {
  for (;;) {
    switch (stage_) {
      case Stage::kStart: {
        if (spec_.client == nullptr) {
          return Fail(InvalidArgument("WritePipeline: no client"));
        }
        if (spec_.window == 0) spec_.window = 1;
        if (spec_.cap.has_value()) {
          cap_ = *spec_.cap;
          return Issue(ctx, Stage::kCreate);
        }
        if (spec_.cred.has_value()) {
          cred_ = *spec_.cred;
          return Issue(ctx, Stage::kAcquireCap);
        }
        return Issue(ctx, Stage::kLogin);
      }

      case Stage::kLogin: {
        Result<Buffer> reply = Buffer{};
        if (!call_.TryAwait(&reply)) return driver::Step::kBlocked;
        auto cred = core::Client::ResolveLogin(std::move(reply));
        if (!cred.ok()) return Fail(cred.status());
        cred_ = *cred;
        return Issue(ctx, Stage::kAcquireCap);
      }

      case Stage::kAcquireCap: {
        Result<Buffer> reply = Buffer{};
        if (!call_.TryAwait(&reply)) return driver::Step::kBlocked;
        auto cap = core::Client::ResolveGetCap(std::move(reply));
        if (!cap.ok()) return Fail(cap.status());
        cap_ = *cap;
        return Issue(ctx, Stage::kCreate);
      }

      case Stage::kCreate: {
        Result<storage::ObjectId> oid = storage::ObjectId{};
        if (!create_.TryAwait(&oid)) return driver::Step::kBlocked;
        // Timestamped on failure too: the create phase ends when the last
        // create *resolves*, matching the blocking implementation.
        create_done_ = ctx.clock()->Now();
        if (!oid.ok()) return Fail(oid.status());
        oid_ = *oid;
        created_ = true;
        if (spec_.create_only) {
          stage_ = Stage::kDone;
          return driver::Step::kDone;
        }
        stage_ = Stage::kStream;
        continue;
      }

      case Stage::kStream: {
        // Retire completed chunk writes from the front of the window.
        while (!writes_.empty()) {
          Result<std::uint64_t> n = std::uint64_t{0};
          if (!writes_.front().TryAwait(&n)) break;
          writes_.pop_front();
          if (!n.ok()) return Fail(n.status());
        }
        // Refill the window.
        const bool sliced = spec_.payload_slice.owned();
        const std::uint64_t total =
            sliced ? spec_.payload_slice.size() : spec_.payload.size();
        const std::uint64_t chunk =
            spec_.chunk_bytes == 0 ? total : spec_.chunk_bytes;
        while (offset_ < total && writes_.size() < spec_.window) {
          const std::uint64_t n = std::min(chunk, total - offset_);
          auto io =
              sliced ? spec_.client->WriteObjectSliceAsync(
                           spec_.server, cap_, oid_, offset_,
                           spec_.payload_slice.Slice(
                               static_cast<std::size_t>(offset_),
                               static_cast<std::size_t>(n)))
                     : spec_.client->WriteObjectAsync(
                           spec_.server, cap_, oid_, offset_,
                           spec_.payload.subspan(
                               static_cast<std::size_t>(offset_),
                               static_cast<std::size_t>(n)));
          if (!io.ok()) return Fail(io.status());
          writes_.push_back(std::move(*io));
          ctx.WakeOnComplete(writes_.back().handle());
          offset_ += n;
        }
        if (!writes_.empty()) return driver::Step::kBlocked;
        dumped_ = true;
        if (spec_.verify_attr) return Issue(ctx, Stage::kVerify);
        stage_ = Stage::kDone;
        return driver::Step::kDone;
      }

      case Stage::kVerify: {
        Result<Buffer> reply = Buffer{};
        if (!call_.TryAwait(&reply)) return driver::Step::kBlocked;
        auto attr = core::Client::ResolveGetAttr(std::move(reply));
        if (!attr.ok()) return Fail(attr.status());
        const std::uint64_t expect = spec_.payload_slice.owned()
                                         ? spec_.payload_slice.size()
                                         : spec_.payload.size();
        if (attr->size < expect) {
          return Fail(DataLoss("dump verification: object short"));
        }
        stage_ = Stage::kDone;
        return driver::Step::kDone;
      }

      case Stage::kDone:
        return driver::Step::kDone;
    }
  }
}

}  // namespace lwfs::checkpoint
