#include "checkpoint/write_pipeline.h"

#include <algorithm>
#include <utility>

#include "rpc/service.h"

namespace lwfs::checkpoint {

namespace {

// Errors worth retrying on a different replica: the member (or the path to
// it) failed.  Authorization/argument errors would fail identically on every
// member, so failing over on them only hides bugs.
bool FailoverWorthy(const Status& status) {
  switch (status.code()) {
    case ErrorCode::kTimeout:
    case ErrorCode::kUnavailable:
    case ErrorCode::kNotFound:
    case ErrorCode::kDataLoss:
      return true;
    default:
      return false;
  }
}

}  // namespace

driver::Step WritePipeline::Fail(Status status) {
  result_ = std::move(status);
  stage_ = Stage::kDone;
  return driver::Step::kDone;
}

driver::Step WritePipeline::Issue(driver::Context& ctx, Stage stage) {
  switch (stage) {
    case Stage::kLogin: {
      auto handle = spec_.client->LoginAsync(spec_.principal, spec_.secret);
      if (!handle.ok()) return Fail(handle.status());
      call_ = std::move(*handle);
      break;
    }
    case Stage::kAcquireCap: {
      auto handle = spec_.client->GetCapAsync(cred_, spec_.cid, spec_.cap_ops);
      if (!handle.ok()) return Fail(handle.status());
      call_ = std::move(*handle);
      break;
    }
    case Stage::kCreate: {
      auto pending =
          spec_.client->CreateObjectAsync(spec_.server, cap_, spec_.txid);
      if (!pending.ok()) return Fail(pending.status());
      create_ = std::move(*pending);
      stage_ = stage;
      ctx.WakeOnComplete(create_.handle());
      return driver::Step::kBlocked;
    }
    case Stage::kPlace: {
      auto handle = spec_.client->PlaceReplicatedAsync(
          cap_.cid, spec_.server, spec_.replication_factor);
      if (!handle.ok()) return Fail(handle.status());
      call_ = std::move(*handle);
      break;
    }
    case Stage::kVerify: {
      for (;;) {
        const std::uint32_t target =
            replicated() ? chain_.servers[verify_member_] : spec_.server;
        auto handle = spec_.client->GetAttrAsync(target, cap_, oid_);
        if (handle.ok()) {
          call_ = std::move(*handle);
          break;
        }
        // Replicated verify fails over through the chain on issue-time
        // unreachability, same as on an errored reply.
        if (replicated() && FailoverWorthy(handle.status()) &&
            verify_member_ + 1 < chain_.servers.size()) {
          ++verify_member_;
          continue;
        }
        return Fail(handle.status());
      }
      break;
    }
    default:
      return Fail(Internal("WritePipeline: not an issuable stage"));
  }
  stage_ = stage;
  ctx.WakeOnComplete(call_);
  return driver::Step::kBlocked;
}

driver::Step WritePipeline::Poll(driver::Context& ctx) {
  for (;;) {
    switch (stage_) {
      case Stage::kStart: {
        if (spec_.client == nullptr) {
          return Fail(InvalidArgument("WritePipeline: no client"));
        }
        if (spec_.window == 0) spec_.window = 1;
        if (spec_.cap.has_value()) {
          cap_ = *spec_.cap;
          return Issue(ctx, replicated() ? Stage::kPlace : Stage::kCreate);
        }
        if (spec_.cred.has_value()) {
          cred_ = *spec_.cred;
          return Issue(ctx, Stage::kAcquireCap);
        }
        return Issue(ctx, Stage::kLogin);
      }

      case Stage::kLogin: {
        Result<Buffer> reply = Buffer{};
        if (!call_.TryAwait(&reply)) return driver::Step::kBlocked;
        auto cred = core::Client::ResolveLogin(std::move(reply));
        if (!cred.ok()) return Fail(cred.status());
        cred_ = *cred;
        return Issue(ctx, Stage::kAcquireCap);
      }

      case Stage::kAcquireCap: {
        Result<Buffer> reply = Buffer{};
        if (!call_.TryAwait(&reply)) return driver::Step::kBlocked;
        auto cap = core::Client::ResolveGetCap(std::move(reply));
        if (!cap.ok()) return Fail(cap.status());
        cap_ = *cap;
        return Issue(ctx, replicated() ? Stage::kPlace : Stage::kCreate);
      }

      case Stage::kCreate: {
        Result<storage::ObjectId> oid = storage::ObjectId{};
        if (!create_.TryAwait(&oid)) return driver::Step::kBlocked;
        // Timestamped on failure too: the create phase ends when the last
        // create *resolves*, matching the blocking implementation.
        create_done_ = ctx.clock()->Now();
        if (!oid.ok()) return Fail(oid.status());
        oid_ = *oid;
        created_ = true;
        if (spec_.create_only) {
          stage_ = Stage::kDone;
          return driver::Step::kDone;
        }
        stage_ = Stage::kStream;
        continue;
      }

      case Stage::kPlace: {
        Result<Buffer> reply = Buffer{};
        if (!call_.TryAwait(&reply)) return driver::Step::kBlocked;
        auto chain = core::Client::ResolvePlaceReplicated(std::move(reply));
        if (!chain.ok()) {
          // Sharded metadata: a mis-routed or deposed-primary placement
          // comes back kWrongShard — refresh the client's shard map and
          // re-issue to the shard's current primary (bounded so a broken
          // map cannot loop forever).
          constexpr int kMaxPlaceRetries = 3;
          if (chain.status().code() == ErrorCode::kWrongShard &&
              place_retries_ < kMaxPlaceRetries) {
            ++place_retries_;
            (void)spec_.client->RefreshShardRoute();
            return Issue(ctx, Stage::kPlace);
          }
          return Fail(chain.status());
        }
        chain_ = std::move(*chain);
        oid_ = chain_.oid;
        // Fan the create out to every chain member at once.  An issue-time
        // failure (down node, open breaker) is a failed *member*, not a
        // failed write — the survivors carry the epoch.
        creates_.clear();
        create_states_.assign(chain_.servers.size(), 0);
        for (std::size_t i = 0; i < chain_.servers.size(); ++i) {
          auto handle = spec_.client->CreateObjectAtAsync(chain_.servers[i],
                                                          cap_, oid_,
                                                          spec_.txid);
          creates_.emplace_back();
          if (!handle.ok()) {
            create_states_[i] = -1;
            if (create_error_.ok()) create_error_ = handle.status();
            continue;
          }
          creates_.back() = std::move(*handle);
          ctx.WakeOnComplete(creates_.back());
        }
        stage_ = Stage::kCreateReplicas;
        continue;
      }

      case Stage::kCreateReplicas: {
        bool pending = false;
        for (std::size_t i = 0; i < creates_.size(); ++i) {
          if (create_states_[i] != 0) continue;
          Result<Buffer> reply = Buffer{};
          if (!creates_[i].TryAwait(&reply)) {
            pending = true;
            continue;
          }
          auto done = rpc::ResolveTyped<rpc::Void>(std::move(reply));
          if (done.ok()) {
            create_states_[i] = 1;
          } else {
            create_states_[i] = -1;
            if (create_error_.ok()) create_error_ = done.status();
          }
        }
        if (pending) return driver::Step::kBlocked;
        // The create phase ends when the last fan-out create resolves.
        create_done_ = ctx.clock()->Now();
        std::vector<std::uint32_t> failed;
        std::size_t created = 0;
        for (std::size_t i = 0; i < creates_.size(); ++i) {
          if (create_states_[i] == 1) {
            ++created;
          } else {
            failed.push_back(chain_.servers[i]);
          }
        }
        if (created == 0) return Fail(create_error_);
        // Members unreachable at create time start out stale; the background
        // replicator brings them back.  Best-effort: a failed report only
        // delays repair until the first degraded write re-reports.
        if (!failed.empty()) {
          (void)spec_.client->ReportStaleReplicas(chain_.oid, 0, failed);
        }
        created_ = true;
        if (spec_.create_only) {
          stage_ = Stage::kDone;
          return driver::Step::kDone;
        }
        stage_ = Stage::kStream;
        continue;
      }

      case Stage::kStream: {
        if (replicated()) {
          // Retire completed chain writes from the front of the window.  A
          // write whose head failed over has a fresh handle; its generation
          // moved, so re-arm the wake before blocking on it.
          while (!rep_writes_.empty()) {
            RepWrite& front = rep_writes_.front();
            Result<std::uint64_t> n = std::uint64_t{0};
            if (!front.io.TryAwait(&n)) {
              if (front.io.generation() != front.armed) {
                front.armed = front.io.generation();
                ctx.WakeOnComplete(front.io.handle());
              }
              break;
            }
            rep_writes_.pop_front();
            if (!n.ok()) return Fail(n.status());
          }
          const bool sliced = spec_.payload_slice.owned();
          const std::uint64_t total =
              sliced ? spec_.payload_slice.size() : spec_.payload.size();
          const std::uint64_t chunk =
              spec_.chunk_bytes == 0 ? total : spec_.chunk_bytes;
          while (offset_ < total && rep_writes_.size() < spec_.window) {
            const std::uint64_t n = std::min(chunk, total - offset_);
            // Spec::payload stays valid until kDone, so a borrowed External
            // slice is safe for the unsliced path.
            util::SharedSlice piece =
                sliced ? spec_.payload_slice.Slice(
                             static_cast<std::size_t>(offset_),
                             static_cast<std::size_t>(n))
                       : util::SharedSlice::External(spec_.payload.subspan(
                             static_cast<std::size_t>(offset_),
                             static_cast<std::size_t>(n)));
            auto io = spec_.client->WriteReplicatedSliceAsync(
                cap_, chain_, offset_, piece);
            if (!io.ok()) return Fail(io.status());
            rep_writes_.push_back(RepWrite{std::move(*io), 0});
            RepWrite& back = rep_writes_.back();
            back.armed = back.io.generation();
            ctx.WakeOnComplete(back.io.handle());
            offset_ += n;
          }
          if (!rep_writes_.empty()) return driver::Step::kBlocked;
          dumped_ = true;
          if (spec_.verify_attr) return Issue(ctx, Stage::kVerify);
          stage_ = Stage::kDone;
          return driver::Step::kDone;
        }
        // Retire completed chunk writes from the front of the window.
        while (!writes_.empty()) {
          Result<std::uint64_t> n = std::uint64_t{0};
          if (!writes_.front().TryAwait(&n)) break;
          writes_.pop_front();
          if (!n.ok()) return Fail(n.status());
        }
        // Refill the window.
        const bool sliced = spec_.payload_slice.owned();
        const std::uint64_t total =
            sliced ? spec_.payload_slice.size() : spec_.payload.size();
        const std::uint64_t chunk =
            spec_.chunk_bytes == 0 ? total : spec_.chunk_bytes;
        while (offset_ < total && writes_.size() < spec_.window) {
          const std::uint64_t n = std::min(chunk, total - offset_);
          auto io =
              sliced ? spec_.client->WriteObjectSliceAsync(
                           spec_.server, cap_, oid_, offset_,
                           spec_.payload_slice.Slice(
                               static_cast<std::size_t>(offset_),
                               static_cast<std::size_t>(n)))
                     : spec_.client->WriteObjectAsync(
                           spec_.server, cap_, oid_, offset_,
                           spec_.payload.subspan(
                               static_cast<std::size_t>(offset_),
                               static_cast<std::size_t>(n)));
          if (!io.ok()) return Fail(io.status());
          writes_.push_back(std::move(*io));
          ctx.WakeOnComplete(writes_.back().handle());
          offset_ += n;
        }
        if (!writes_.empty()) return driver::Step::kBlocked;
        dumped_ = true;
        if (spec_.verify_attr) return Issue(ctx, Stage::kVerify);
        stage_ = Stage::kDone;
        return driver::Step::kDone;
      }

      case Stage::kVerify: {
        Result<Buffer> reply = Buffer{};
        if (!call_.TryAwait(&reply)) return driver::Step::kBlocked;
        auto attr = core::Client::ResolveGetAttr(std::move(reply));
        if (!attr.ok()) {
          // Replicated verify fails over through the chain: any surviving
          // member can vouch for the committed bytes.
          if (replicated() && FailoverWorthy(attr.status()) &&
              verify_member_ + 1 < chain_.servers.size()) {
            ++verify_member_;
            return Issue(ctx, Stage::kVerify);
          }
          return Fail(attr.status());
        }
        const std::uint64_t expect = spec_.payload_slice.owned()
                                         ? spec_.payload_slice.size()
                                         : spec_.payload.size();
        if (attr->size < expect) {
          return Fail(DataLoss("dump verification: object short"));
        }
        stage_ = Stage::kDone;
        return driver::Step::kDone;
      }

      case Stage::kDone:
        return driver::Step::kDone;
    }
  }
}

}  // namespace lwfs::checkpoint
