// In-process deployment of the traditional-PFS baseline: one MDS, m OSTs.
#pragma once

#include <memory>
#include <vector>

#include "pfs/client.h"
#include "pfs/mds_server.h"
#include "pfs/ost_server.h"
#include "portals/portals.h"
#include "storage/object_store.h"

namespace lwfs::pfs {

struct PfsRuntimeOptions {
  int ost_count = 4;
  /// Start a warm-standby MDS next to the primary.  The pair shares a
  /// commit-before-ack MdsLog; the standby replays it and claims the
  /// namespace when a failed-over client first reaches it.
  bool mds_standby = false;
  MdsOptions mds;
  OstOptions ost;
  rpc::ServerOptions mds_rpc;
  /// RPC client options for MakeClient() endpoints and the MDS's outbound
  /// OST client.
  rpc::ClientOptions client_options;
  /// Time source for every server and client in the deployment (nullptr =
  /// real time).  The shared fabric's clock is the ServiceRuntime's (or
  /// caller's) concern — set it there when co-hosting.
  util::Clock* clock = nullptr;
};

class PfsRuntime {
 public:
  /// `fabric` must outlive the runtime (share one fabric with an LWFS
  /// ServiceRuntime to host both stacks side by side).
  static Result<std::unique_ptr<PfsRuntime>> Start(portals::Fabric* fabric,
                                                   PfsRuntimeOptions options);

  ~PfsRuntime();
  PfsRuntime(const PfsRuntime&) = delete;
  PfsRuntime& operator=(const PfsRuntime&) = delete;

  std::unique_ptr<PfsClient> MakeClient(
      ConsistencyMode mode = ConsistencyMode::kPosixLocking);

  [[nodiscard]] const PfsDeployment& deployment() const { return deployment_; }
  [[nodiscard]] util::Clock* clock() const { return clock_; }
  [[nodiscard]] MdsService& mds() { return mds_server_->service(); }
  [[nodiscard]] MdsServer& mds_server() { return *mds_server_; }
  /// nullptr unless started with mds_standby.
  [[nodiscard]] MdsServer* mds_standby_server() {
    return mds_standby_server_.get();
  }
  [[nodiscard]] OstServer& ost_server(int i) {
    return *ost_servers_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int ost_count() const {
    return static_cast<int>(ost_servers_.size());
  }
  [[nodiscard]] storage::ObjectStore& ost_store(int i) {
    return *stores_[static_cast<std::size_t>(i)];
  }

 private:
  PfsRuntime() = default;

  util::Clock* clock_ = util::RealClockInstance();
  portals::Fabric* fabric_ = nullptr;
  rpc::ClientOptions client_options_;
  PfsDeployment deployment_;
  std::vector<std::unique_ptr<storage::ObjectStore>> stores_;
  std::vector<std::unique_ptr<OstServer>> ost_servers_;
  std::unique_ptr<MdsLog> mds_log_;  // shared primary -> standby
  std::unique_ptr<MdsServer> mds_server_;
  std::unique_ptr<MdsServer> mds_standby_server_;
};

}  // namespace lwfs::pfs
