// Typed wire messages for the traditional-PFS baseline ops.
//
// Same shape as core/wire.h: each request/reply carries its own codec and an
// OpDef names the opcode, metric name, and bulk direction.  No op requires
// capability bits — the baseline trusts any client on the network, which is
// exactly the trust model §5 criticizes.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pfs/mds.h"
#include "pfs/protocol.h"
#include "rpc/service.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lwfs::pfs::wire {

using rpc::Void;

// ---------------------------------------------------------------------------
// Metadata server
// ---------------------------------------------------------------------------

struct PfsCreateReq {
  std::string path;
  std::uint32_t stripes = 0;

  void Encode(Encoder& enc) const {
    enc.PutString(path);
    enc.PutU32(stripes);
  }
  static Result<PfsCreateReq> Decode(Decoder& dec) {
    auto path = dec.GetString();
    auto stripes = dec.GetU32();
    if (!path.ok() || !stripes.ok()) {
      return InvalidArgument("malformed create fields");
    }
    return PfsCreateReq{std::move(*path), *stripes};
  }
};

/// Open, getattr, and unlink requests are all just a path.
struct PfsPathReq {
  std::string path;

  void Encode(Encoder& enc) const { enc.PutString(path); }
  static Result<PfsPathReq> Decode(Decoder& dec) {
    auto path = dec.GetString();
    if (!path.ok()) return path.status();
    return PfsPathReq{std::move(*path)};
  }
};

struct FileAttrRep {
  FileAttr attr;

  void Encode(Encoder& enc) const {
    enc.PutU64(attr.ino);
    enc.PutU64(attr.size);
    EncodeLayout(enc, attr.layout);
  }
  static Result<FileAttrRep> Decode(Decoder& dec) {
    auto ino = dec.GetU64();
    auto size = dec.GetU64();
    auto layout = DecodeLayout(dec);
    if (!ino.ok() || !size.ok() || !layout.ok()) {
      return InvalidArgument("malformed attr fields");
    }
    FileAttrRep rep;
    rep.attr.ino = *ino;
    rep.attr.size = *size;
    rep.attr.layout = std::move(*layout);
    return rep;
  }
};

struct PfsSetSizeReq {
  std::string path;
  std::uint64_t size = 0;

  void Encode(Encoder& enc) const {
    enc.PutString(path);
    enc.PutU64(size);
  }
  static Result<PfsSetSizeReq> Decode(Decoder& dec) {
    auto path = dec.GetString();
    auto size = dec.GetU64();
    if (!path.ok() || !size.ok()) {
      return InvalidArgument("malformed setsize fields");
    }
    return PfsSetSizeReq{std::move(*path), *size};
  }
};

struct PfsListRep {
  std::vector<std::string> names;

  void Encode(Encoder& enc) const {
    enc.PutU32(static_cast<std::uint32_t>(names.size()));
    for (const std::string& n : names) enc.PutString(n);
  }
  static Result<PfsListRep> Decode(Decoder& dec) {
    auto count = dec.GetU32();
    if (!count.ok()) return count.status();
    if (*count > dec.remaining()) {
      return InvalidArgument("name count exceeds payload");
    }
    PfsListRep rep;
    rep.names.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto name = dec.GetString();
      if (!name.ok()) return name.status();
      rep.names.push_back(std::move(*name));
    }
    return rep;
  }
};

struct PfsLockTryReq {
  std::uint64_t ino = 0;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  bool exclusive = false;

  void Encode(Encoder& enc) const {
    enc.PutU64(ino);
    enc.PutU64(start);
    enc.PutU64(end);
    enc.PutBool(exclusive);
  }
  static Result<PfsLockTryReq> Decode(Decoder& dec) {
    auto ino = dec.GetU64();
    auto start = dec.GetU64();
    auto end = dec.GetU64();
    auto exclusive = dec.GetBool();
    if (!ino.ok() || !start.ok() || !end.ok() || !exclusive.ok()) {
      return InvalidArgument("malformed lock fields");
    }
    return PfsLockTryReq{*ino, *start, *end, *exclusive};
  }
};

struct PfsLockIdRep {
  std::uint64_t id = 0;

  void Encode(Encoder& enc) const { enc.PutU64(id); }
  static Result<PfsLockIdRep> Decode(Decoder& dec) {
    auto id = dec.GetU64();
    if (!id.ok()) return id.status();
    return PfsLockIdRep{*id};
  }
};

struct PfsLockReleaseReq {
  std::uint64_t id = 0;

  void Encode(Encoder& enc) const { enc.PutU64(id); }
  static Result<PfsLockReleaseReq> Decode(Decoder& dec) {
    auto id = dec.GetU64();
    if (!id.ok()) return id.status();
    return PfsLockReleaseReq{*id};
  }
};

inline constexpr rpc::OpDef kPfsCreateOp{kPfsCreate, "pfs_create"};
inline constexpr rpc::OpDef kPfsOpenOp{kPfsOpen, "pfs_open"};
inline constexpr rpc::OpDef kPfsUnlinkOp{kPfsUnlink, "pfs_unlink"};
inline constexpr rpc::OpDef kPfsGetAttrOp{kPfsGetAttr, "pfs_getattr"};
inline constexpr rpc::OpDef kPfsSetSizeOp{kPfsSetSize, "pfs_setsize"};
inline constexpr rpc::OpDef kPfsLockTryOp{kPfsLockTry, "pfs_lock_try"};
inline constexpr rpc::OpDef kPfsLockReleaseOp{kPfsLockRelease,
                                              "pfs_lock_release"};
inline constexpr rpc::OpDef kPfsListOp{kPfsList, "pfs_list"};

// ---------------------------------------------------------------------------
// Object storage targets
// ---------------------------------------------------------------------------

struct OstCreateRep {
  std::uint64_t oid = 0;

  void Encode(Encoder& enc) const { enc.PutU64(oid); }
  static Result<OstCreateRep> Decode(Decoder& dec) {
    auto oid = dec.GetU64();
    if (!oid.ok()) return oid.status();
    return OstCreateRep{*oid};
  }
};

struct OstWriteReq {
  std::uint64_t oid = 0;
  std::uint64_t offset = 0;

  void Encode(Encoder& enc) const {
    enc.PutU64(oid);
    enc.PutU64(offset);
  }
  static Result<OstWriteReq> Decode(Decoder& dec) {
    auto oid = dec.GetU64();
    auto offset = dec.GetU64();
    if (!oid.ok() || !offset.ok()) {
      return InvalidArgument("malformed ost-write fields");
    }
    return OstWriteReq{*oid, *offset};
  }
};

struct OstReadReq {
  std::uint64_t oid = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  void Encode(Encoder& enc) const {
    enc.PutU64(oid);
    enc.PutU64(offset);
    enc.PutU64(length);
  }
  static Result<OstReadReq> Decode(Decoder& dec) {
    auto oid = dec.GetU64();
    auto offset = dec.GetU64();
    auto length = dec.GetU64();
    if (!oid.ok() || !offset.ok() || !length.ok()) {
      return InvalidArgument("malformed ost-read fields");
    }
    return OstReadReq{*oid, *offset, *length};
  }
};

/// Bytes actually moved through the bulk path (OST reads and writes).
struct OstMovedRep {
  std::uint64_t moved = 0;

  void Encode(Encoder& enc) const { enc.PutU64(moved); }
  static Result<OstMovedRep> Decode(Decoder& dec) {
    auto moved = dec.GetU64();
    if (!moved.ok()) return moved.status();
    return OstMovedRep{*moved};
  }
};

/// Remove and getattr requests are just an object id.
struct OstOidReq {
  std::uint64_t oid = 0;

  void Encode(Encoder& enc) const { enc.PutU64(oid); }
  static Result<OstOidReq> Decode(Decoder& dec) {
    auto oid = dec.GetU64();
    if (!oid.ok()) return oid.status();
    return OstOidReq{*oid};
  }
};

struct OstAttrRep {
  std::uint64_t size = 0;
  std::uint64_t version = 0;

  void Encode(Encoder& enc) const {
    enc.PutU64(size);
    enc.PutU64(version);
  }
  static Result<OstAttrRep> Decode(Decoder& dec) {
    auto size = dec.GetU64();
    auto version = dec.GetU64();
    if (!size.ok() || !version.ok()) {
      return InvalidArgument("malformed ost-attr fields");
    }
    return OstAttrRep{*size, *version};
  }
};

inline constexpr rpc::OpDef kOstCreateOp{kOstCreate, "ost_create"};
inline constexpr rpc::OpDef kOstWriteOp{kOstWrite, "ost_write", 0,
                                        rpc::BulkDir::kPull};
inline constexpr rpc::OpDef kOstReadOp{kOstRead, "ost_read", 0,
                                       rpc::BulkDir::kPush};
inline constexpr rpc::OpDef kOstRemoveOp{kOstRemove, "ost_remove"};
inline constexpr rpc::OpDef kOstGetAttrOp{kOstGetAttr, "ost_getattr"};
/// Slice read shares OstReadReq/OstMovedRep with the legacy read; the
/// payload travels as store-owned slices in the reply frame itself
/// (BulkDir::kReply), so the client registers no bulk-in region.
inline constexpr rpc::OpDef kOstReadSliceOp{kOstReadSlice, "ost_read_slice", 0,
                                            rpc::BulkDir::kReply};

// ---------------------------------------------------------------------------
// Codec registry for table-driven tests
// ---------------------------------------------------------------------------

/// One CodecCase per pfs request/reply message (see rpc::CodecCase).
std::vector<rpc::CodecCase> PfsWireCases();

}  // namespace lwfs::pfs::wire
