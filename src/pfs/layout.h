// Striping arithmetic for the traditional-PFS baseline.
//
// A file is striped round-robin in `stripe_size` units across N stripe
// objects, one per OST — the classic Lustre/PVFS layout the paper's
// baseline uses.  MapExtent decomposes a byte extent into per-stripe-object
// chunks; it is pure and exhaustively property-tested.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/ids.h"

namespace lwfs::pfs {

/// One stripe object of a file.
struct StripeTarget {
  std::uint32_t ost_index = 0;
  storage::ObjectId oid;
};

struct Layout {
  std::uint32_t stripe_size = 1 << 20;
  std::vector<StripeTarget> stripes;
};

/// A piece of a file extent that lands in one stripe object.
struct StripeChunk {
  std::uint32_t stripe_index = 0;  // index into Layout::stripes
  std::uint64_t object_offset = 0; // offset within the stripe object
  std::uint64_t file_offset = 0;   // offset within the file
  std::uint64_t length = 0;
};

/// Decompose file extent [offset, offset+length) into stripe chunks, in
/// file order.
std::vector<StripeChunk> MapExtent(std::uint32_t stripe_size,
                                   std::uint32_t stripe_count,
                                   std::uint64_t offset, std::uint64_t length);

}  // namespace lwfs::pfs
