#include "pfs/wire.h"

namespace lwfs::pfs::wire {

std::vector<rpc::CodecCase> PfsWireCases() {
  Layout layout;
  layout.stripe_size = 1 << 16;
  layout.stripes.push_back(StripeTarget{0, storage::ObjectId{11}});
  layout.stripes.push_back(StripeTarget{1, storage::ObjectId{12}});

  FileAttrRep attr;
  attr.attr.ino = 9001;
  attr.attr.size = 1 << 20;
  attr.attr.layout = layout;

  std::vector<rpc::CodecCase> cases;
  // Metadata server.
  cases.push_back(
      rpc::MakeCodecCase("pfs_create_req", PfsCreateReq{"/data/run1", 2}));
  cases.push_back(rpc::MakeCodecCase("pfs_path_req", PfsPathReq{"/data/run1"}));
  cases.push_back(rpc::MakeCodecCase("file_attr_rep", attr));
  cases.push_back(rpc::MakeCodecCase("pfs_set_size_req",
                                     PfsSetSizeReq{"/data/run1", 1 << 20}));
  cases.push_back(rpc::MakeCodecCase("pfs_list_rep",
                                     PfsListRep{{"run1", "run2", "ckpt"}}));
  cases.push_back(rpc::MakeCodecCase(
      "pfs_lock_try_req", PfsLockTryReq{9001, 0, 65536, true}));
  cases.push_back(rpc::MakeCodecCase("pfs_lock_id_rep", PfsLockIdRep{41}));
  cases.push_back(
      rpc::MakeCodecCase("pfs_lock_release_req", PfsLockReleaseReq{41}));
  // OSTs.
  cases.push_back(rpc::MakeCodecCase("ost_create_rep", OstCreateRep{11}));
  cases.push_back(rpc::MakeCodecCase("ost_write_req", OstWriteReq{11, 4096}));
  cases.push_back(
      rpc::MakeCodecCase("ost_read_req", OstReadReq{11, 0, 65536}));
  cases.push_back(rpc::MakeCodecCase("ost_moved_rep", OstMovedRep{65536}));
  cases.push_back(rpc::MakeCodecCase("ost_oid_req", OstOidReq{11}));
  cases.push_back(rpc::MakeCodecCase("ost_attr_rep", OstAttrRep{65536, 3}));
  return cases;
}

}  // namespace lwfs::pfs::wire
