#include "pfs/pfs_runtime.h"

namespace lwfs::pfs {

Result<std::unique_ptr<PfsRuntime>> PfsRuntime::Start(
    portals::Fabric* fabric, PfsRuntimeOptions options) {
  auto rt = std::unique_ptr<PfsRuntime>(new PfsRuntime());
  rt->fabric_ = fabric;
  if (options.clock != nullptr) {
    if (options.mds_rpc.clock == nullptr) options.mds_rpc.clock = options.clock;
    if (options.ost.rpc.clock == nullptr) options.ost.rpc.clock = options.clock;
    if (options.client_options.clock == nullptr) {
      options.client_options.clock = options.clock;
    }
  }
  rt->clock_ = util::OrReal(options.clock);
  rt->client_options_ = options.client_options;

  std::vector<portals::Nid> ost_nids;
  for (int i = 0; i < options.ost_count; ++i) {
    rt->stores_.push_back(std::make_unique<storage::MemObjectStore>());
    auto ost = std::make_unique<OstServer>(fabric->CreateNic(),
                                           rt->stores_.back().get(),
                                           options.ost);
    LWFS_RETURN_IF_ERROR(ost->Start());
    ost_nids.push_back(ost->nid());
    rt->ost_servers_.push_back(std::move(ost));
  }

  MdsStandbyConfig primary_cfg;
  MdsOptions primary_options = options.mds;
  if (options.mds_standby) {
    rt->mds_log_ = std::make_unique<MdsLog>();
    primary_options.oplog = rt->mds_log_.get();
    primary_cfg.active = std::make_shared<std::atomic<int>>(0);
    primary_cfg.self = 0;
  }
  rt->mds_server_ = std::make_unique<MdsServer>(
      fabric->CreateNic(), ost_nids, primary_options, options.mds_rpc,
      options.client_options, primary_cfg);
  LWFS_RETURN_IF_ERROR(rt->mds_server_->Start());

  if (options.mds_standby) {
    // The standby owns no log (nothing tails it) and replays the primary's
    // at takeover; until then every request it receives runs the takeover
    // path, so only failed-over clients can wake it.
    MdsStandbyConfig standby_cfg;
    standby_cfg.standby = true;
    standby_cfg.log = rt->mds_log_.get();
    standby_cfg.active = primary_cfg.active;
    standby_cfg.self = 1;
    rt->mds_standby_server_ = std::make_unique<MdsServer>(
        fabric->CreateNic(), ost_nids, options.mds, options.mds_rpc,
        options.client_options, standby_cfg);
    LWFS_RETURN_IF_ERROR(rt->mds_standby_server_->Start());
    rt->deployment_.mds_standby = rt->mds_standby_server_->nid();
  }

  rt->deployment_.mds = rt->mds_server_->nid();
  rt->deployment_.osts = std::move(ost_nids);
  return rt;
}

PfsRuntime::~PfsRuntime() {
  if (mds_standby_server_) mds_standby_server_->Stop();
  if (mds_server_) mds_server_->Stop();
  for (auto& ost : ost_servers_) ost->Stop();
}

std::unique_ptr<PfsClient> PfsRuntime::MakeClient(ConsistencyMode mode) {
  return std::make_unique<PfsClient>(fabric_->CreateNic(), deployment_, mode,
                                     client_options_);
}

}  // namespace lwfs::pfs
