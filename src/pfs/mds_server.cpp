#include "pfs/mds_server.h"

#include "pfs/wire.h"
#include "rpc/service.h"

namespace lwfs::pfs {

MdsServer::MdsServer(std::shared_ptr<portals::Nic> nic,
                     std::vector<portals::Nid> ost_nids,
                     MdsOptions mds_options, rpc::ServerOptions rpc_options,
                     rpc::ClientOptions ost_client_options,
                     MdsStandbyConfig standby)
    : ost_nids_(std::move(ost_nids)),
      ost_client_(nic, ost_client_options),
      server_(std::move(nic), rpc_options),
      ops_(&server_, "mds"),
      standby_cfg_(std::move(standby)) {
  auto create_on_ost =
      [this](std::uint32_t ost) -> Result<storage::ObjectId> {
    if (ost >= ost_nids_.size()) return InvalidArgument("bad ost index");
    auto rep = rpc::CallTyped<wire::OstCreateRep>(ost_client_, ost_nids_[ost],
                                                  kOstCreate, rpc::Void{});
    if (!rep.ok()) return rep.status();
    return storage::ObjectId{rep->oid};
  };
  auto remove_on_ost = [this](std::uint32_t ost,
                              storage::ObjectId oid) -> Status {
    if (ost >= ost_nids_.size()) return InvalidArgument("bad ost index");
    return rpc::CallTyped<rpc::Void>(ost_client_, ost_nids_[ost], kOstRemove,
                                     wire::OstOidReq{oid.value})
        .status();
  };
  service_ = std::make_unique<MdsService>(
      static_cast<std::uint32_t>(ost_nids_.size()), create_on_ost,
      remove_on_ost, mds_options);

  ops_.On<wire::PfsCreateReq, wire::FileAttrRep>(
      wire::kPfsCreateOp,
      [this](rpc::ServerContext&,
             wire::PfsCreateReq& req) -> Result<wire::FileAttrRep> {
        LWFS_RETURN_IF_ERROR(Admit());
        auto attr = service_->Create(req.path, req.stripes);
        if (!attr.ok()) return attr.status();
        return wire::FileAttrRep{std::move(*attr)};
      });

  ops_.On<wire::PfsPathReq, wire::FileAttrRep>(
      wire::kPfsOpenOp,
      [this](rpc::ServerContext&,
             wire::PfsPathReq& req) -> Result<wire::FileAttrRep> {
        LWFS_RETURN_IF_ERROR(Admit());
        auto attr = service_->Open(req.path);
        if (!attr.ok()) return attr.status();
        return wire::FileAttrRep{std::move(*attr)};
      });

  ops_.On<wire::PfsPathReq, wire::FileAttrRep>(
      wire::kPfsGetAttrOp,
      [this](rpc::ServerContext&,
             wire::PfsPathReq& req) -> Result<wire::FileAttrRep> {
        LWFS_RETURN_IF_ERROR(Admit());
        auto attr = service_->GetAttr(req.path);
        if (!attr.ok()) return attr.status();
        return wire::FileAttrRep{std::move(*attr)};
      });

  ops_.On<wire::PfsPathReq, rpc::Void>(
      wire::kPfsUnlinkOp,
      [this](rpc::ServerContext&, wire::PfsPathReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(Admit());
        LWFS_RETURN_IF_ERROR(service_->Unlink(req.path));
        return rpc::Void{};
      });

  ops_.On<wire::PfsSetSizeReq, rpc::Void>(
      wire::kPfsSetSizeOp,
      [this](rpc::ServerContext&,
             wire::PfsSetSizeReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(Admit());
        LWFS_RETURN_IF_ERROR(service_->SetSize(req.path, req.size));
        return rpc::Void{};
      });

  ops_.On<rpc::Void, wire::PfsListRep>(
      wire::kPfsListOp,
      [this](rpc::ServerContext&, rpc::Void&) -> Result<wire::PfsListRep> {
        LWFS_RETURN_IF_ERROR(Admit());
        auto names = service_->List();
        if (!names.ok()) return names.status();
        return wire::PfsListRep{std::move(*names)};
      });

  ops_.On<wire::PfsLockTryReq, wire::PfsLockIdRep>(
      wire::kPfsLockTryOp,
      [this](rpc::ServerContext& ctx,
             wire::PfsLockTryReq& req) -> Result<wire::PfsLockIdRep> {
        LWFS_RETURN_IF_ERROR(Admit());
        auto id = service_->TryLock(
            req.ino, req.start, req.end,
            req.exclusive ? txn::LockMode::kExclusive : txn::LockMode::kShared,
            ctx.client());
        if (!id.ok()) return id.status();
        return wire::PfsLockIdRep{*id};
      });

  ops_.On<wire::PfsLockReleaseReq, rpc::Void>(
      wire::kPfsLockReleaseOp,
      [this](rpc::ServerContext&,
             wire::PfsLockReleaseReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(Admit());
        LWFS_RETURN_IF_ERROR(service_->ReleaseLock(req.id));
        return rpc::Void{};
      });
}

Status MdsServer::Admit() {
  if (!standby_cfg_.active) return OkStatus();  // standalone MDS
  if (standby_cfg_.active->load() == standby_cfg_.self) return OkStatus();
  if (!standby_cfg_.standby) {
    // Deposed primary: the standby already claimed the namespace.  Refuse
    // so a lagging client fails over instead of reading stale state.
    return Unavailable("mds deposed: standby took over");
  }
  return Takeover();
}

Status MdsServer::Takeover() {
  std::lock_guard<std::mutex> lock(takeover_mutex_);
  if (standby_cfg_.active->load() == standby_cfg_.self) return OkStatus();
  if (standby_cfg_.log != nullptr) {
    for (const MdsOpRecord& rec : standby_cfg_.log->ReadFrom(0)) {
      if (service_->Replay(rec).ok()) {
        ++takeover_replayed_;
      } else {
        ++takeover_replay_errors_;
      }
    }
  }
  standby_cfg_.active->store(standby_cfg_.self);
  ++takeovers_;
  return OkStatus();
}

Status MdsServer::Start() {
  LWFS_RETURN_IF_ERROR(ops_.init_status());
  return server_.Start();
}

}  // namespace lwfs::pfs
