#include "pfs/mds_server.h"

namespace lwfs::pfs {

MdsServer::MdsServer(std::shared_ptr<portals::Nic> nic,
                     std::vector<portals::Nid> ost_nids,
                     MdsOptions mds_options, rpc::ServerOptions rpc_options)
    : ost_nids_(std::move(ost_nids)),
      ost_client_(nic),
      server_(std::move(nic), rpc_options) {
  auto create_on_ost =
      [this](std::uint32_t ost) -> Result<storage::ObjectId> {
    if (ost >= ost_nids_.size()) return InvalidArgument("bad ost index");
    auto reply = ost_client_.Call(ost_nids_[ost], kOstCreate, {});
    if (!reply.ok()) return reply.status();
    Decoder dec(*reply);
    auto oid = dec.GetU64();
    if (!oid.ok()) return oid.status();
    return storage::ObjectId{*oid};
  };
  auto remove_on_ost = [this](std::uint32_t ost,
                              storage::ObjectId oid) -> Status {
    if (ost >= ost_nids_.size()) return InvalidArgument("bad ost index");
    Encoder req;
    req.PutU64(oid.value);
    auto reply = ost_client_.Call(ost_nids_[ost], kOstRemove,
                                  ByteSpan(req.buffer()));
    return reply.ok() ? OkStatus() : reply.status();
  };
  service_ = std::make_unique<MdsService>(
      static_cast<std::uint32_t>(ost_nids_.size()), create_on_ost,
      remove_on_ost, mds_options);

  auto encode_attr = [](const FileAttr& attr) {
    Encoder reply;
    reply.PutU64(attr.ino);
    reply.PutU64(attr.size);
    EncodeLayout(reply, attr.layout);
    return std::move(reply).Take();
  };

  server_.RegisterHandler(
      kPfsCreate, [this, encode_attr](rpc::ServerContext&,
                                      Decoder& req) -> Result<Buffer> {
        auto path = req.GetString();
        auto stripes = req.GetU32();
        if (!path.ok() || !stripes.ok()) {
          return InvalidArgument("malformed create");
        }
        auto attr = service_->Create(*path, *stripes);
        if (!attr.ok()) return attr.status();
        return encode_attr(*attr);
      });

  server_.RegisterHandler(
      kPfsOpen, [this, encode_attr](rpc::ServerContext&,
                                    Decoder& req) -> Result<Buffer> {
        auto path = req.GetString();
        if (!path.ok()) return path.status();
        auto attr = service_->Open(*path);
        if (!attr.ok()) return attr.status();
        return encode_attr(*attr);
      });

  server_.RegisterHandler(
      kPfsGetAttr, [this, encode_attr](rpc::ServerContext&,
                                       Decoder& req) -> Result<Buffer> {
        auto path = req.GetString();
        if (!path.ok()) return path.status();
        auto attr = service_->GetAttr(*path);
        if (!attr.ok()) return attr.status();
        return encode_attr(*attr);
      });

  server_.RegisterHandler(
      kPfsUnlink, [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto path = req.GetString();
        if (!path.ok()) return path.status();
        LWFS_RETURN_IF_ERROR(service_->Unlink(*path));
        return Buffer{};
      });

  server_.RegisterHandler(
      kPfsSetSize, [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto path = req.GetString();
        auto size = req.GetU64();
        if (!path.ok() || !size.ok()) {
          return InvalidArgument("malformed setsize");
        }
        LWFS_RETURN_IF_ERROR(service_->SetSize(*path, *size));
        return Buffer{};
      });

  server_.RegisterHandler(
      kPfsList, [this](rpc::ServerContext&, Decoder&) -> Result<Buffer> {
        auto names = service_->List();
        if (!names.ok()) return names.status();
        Encoder reply;
        reply.PutU32(static_cast<std::uint32_t>(names->size()));
        for (const std::string& n : *names) reply.PutString(n);
        return std::move(reply).Take();
      });

  server_.RegisterHandler(
      kPfsLockTry, [this](rpc::ServerContext& ctx,
                          Decoder& req) -> Result<Buffer> {
        auto ino = req.GetU64();
        auto start = req.GetU64();
        auto end = req.GetU64();
        auto exclusive = req.GetBool();
        if (!ino.ok() || !start.ok() || !end.ok() || !exclusive.ok()) {
          return InvalidArgument("malformed lock request");
        }
        auto id = service_->TryLock(
            *ino, *start, *end,
            *exclusive ? txn::LockMode::kExclusive : txn::LockMode::kShared,
            ctx.client());
        if (!id.ok()) return id.status();
        Encoder reply;
        reply.PutU64(*id);
        return std::move(reply).Take();
      });

  server_.RegisterHandler(
      kPfsLockRelease,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto id = req.GetU64();
        if (!id.ok()) return id.status();
        LWFS_RETURN_IF_ERROR(service_->ReleaseLock(*id));
        return Buffer{};
      });
}

}  // namespace lwfs::pfs
