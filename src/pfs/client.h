// Client of the traditional-PFS baseline.
//
// Provides the POSIX-ish file model the paper's alternative checkpoint
// implementations use: open/create a striped file, write/read byte extents,
// close.  In kPosixLocking mode every write takes an exclusive extent lock
// at the MDS first — the consistency machinery that halves shared-file
// checkpoint throughput in Figure 9.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pfs/mds.h"
#include "pfs/protocol.h"
#include "rpc/rpc.h"
#include "txn/lock_table.h"
#include "util/shared_buffer.h"
#include "util/status.h"

namespace lwfs::pfs {

/// Consistency behaviour of PfsClient::Write.
enum class ConsistencyMode {
  /// POSIX-style: exclusive extent lock around every write.
  kPosixLocking,
  /// Relaxed: no locks; the application coordinates (what PVFS does, §6).
  kRelaxed,
};

struct PfsDeployment {
  portals::Nid mds = portals::kInvalidNid;
  /// Warm standby for the MDS; kInvalidNid = none.  On a transport-level
  /// failure of the active MDS (timeout / unavailable) the client retries
  /// the op against the other endpoint and sticks with whichever answered.
  portals::Nid mds_standby = portals::kInvalidNid;
  std::vector<portals::Nid> osts;
};

struct OpenFile {
  std::string path;
  FileAttr attr;
};

class PfsClient;

/// A pending striped file write or read.  The per-stripe OST calls are
/// issued through a bounded in-flight window and overlap each other;
/// Await() drives the remaining issuance and retires every chunk.  In
/// kPosixLocking mode the extent lock is acquired inside Await() (before
/// any chunk goes out) and released after the drain — deferring the lock
/// keeps a driver that pipelines many handles from deadlocking against
/// its own window, at the price of serializing locked I/O, which is the
/// consistency cost the paper measures.  The data span handed to
/// WriteAsync/ReadAsync must stay valid until Await() returns (the
/// destructor drains as a backstop).
class PfsIo {
 public:
  PfsIo();
  PfsIo(PfsIo&&) noexcept;
  PfsIo& operator=(PfsIo&&) noexcept;
  ~PfsIo();

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// Writes resolve to bytes written; reads to bytes read (short at EOF).
  Result<std::uint64_t> Await();

 private:
  friend class PfsClient;
  struct State;
  std::unique_ptr<State> state_;
};

/// A pending zero-copy striped read.  Per-stripe OST calls register no
/// bulk-in region: each reply arrives as store-owned slices in the reply
/// frame.  A single-stripe extent resolves to that slice unchanged; a
/// multi-stripe extent gathers the per-stripe slices into one freshly
/// allocated slice.  Short at EOF (first short stripe chunk ends the
/// extent, matching PfsIo's read accounting).
class PfsSliceIo {
 public:
  PfsSliceIo();
  PfsSliceIo(PfsSliceIo&&) noexcept;
  PfsSliceIo& operator=(PfsSliceIo&&) noexcept;
  ~PfsSliceIo();

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  Result<util::SharedSlice> Await();

 private:
  friend class PfsClient;
  struct State;
  std::unique_ptr<State> state_;
};

class PfsClient {
 public:
  /// Default bound on overlapped per-stripe OST calls within one PfsIo.
  static constexpr std::size_t kDefaultOstWindow = 8;

  PfsClient(std::shared_ptr<portals::Nic> nic, PfsDeployment deployment,
            ConsistencyMode mode = ConsistencyMode::kPosixLocking,
            rpc::ClientOptions client_options = {});

  Result<OpenFile> Create(const std::string& path, std::uint32_t stripe_count);
  Result<OpenFile> Open(const std::string& path);
  Status Unlink(const std::string& path);
  Result<FileAttr> GetAttr(const std::string& path);

  /// Write `data` at `offset`, striping across OSTs.  Takes/releases the
  /// extent lock in kPosixLocking mode.  Thin WriteAsync+Await wrapper.
  Status Write(const OpenFile& file, std::uint64_t offset, ByteSpan data);

  /// Read into `out`; returns bytes read.  Thin ReadAsync+Await wrapper.
  Result<std::uint64_t> Read(const OpenFile& file, std::uint64_t offset,
                             MutableByteSpan out);

  /// Asynchronous striped I/O: plans the per-stripe chunks and starts
  /// issuing OST calls through a window of `window` outstanding requests.
  /// In kPosixLocking mode issuance is deferred to PfsIo::Await(), which
  /// takes the extent lock first.
  Result<PfsIo> WriteAsync(const OpenFile& file, std::uint64_t offset,
                           ByteSpan data,
                           std::size_t window = kDefaultOstWindow);
  /// Zero-copy write: each per-stripe chunk registers an O(1) sub-slice of
  /// `data` for the OST's server-directed pull, so the payload is never
  /// staged on either side — the slice must be owned() (ref-counted).
  /// Non-owned slices fall back to the span path at the OST.
  Result<PfsIo> WriteSliceAsync(const OpenFile& file, std::uint64_t offset,
                                const util::SharedSlice& data,
                                std::size_t window = kDefaultOstWindow);
  Result<PfsIo> ReadAsync(const OpenFile& file, std::uint64_t offset,
                          MutableByteSpan out,
                          std::size_t window = kDefaultOstWindow);
  /// Zero-copy read: no client landing buffer is registered; the payload
  /// arrives as store-owned slices in the OST reply frames.  Thin
  /// ReadSliceAsync+Await wrapper.
  Result<util::SharedSlice> ReadSlice(const OpenFile& file,
                                      std::uint64_t offset,
                                      std::uint64_t length);
  Result<PfsSliceIo> ReadSliceAsync(const OpenFile& file, std::uint64_t offset,
                                    std::uint64_t length,
                                    std::size_t window = kDefaultOstWindow);

  /// Publish the file size to the MDS (close/sync semantics).
  Status Sync(const OpenFile& file, std::uint64_t size_hint);

  [[nodiscard]] ConsistencyMode mode() const { return mode_; }
  [[nodiscard]] rpc::ClientStats rpc_stats() const { return rpc_.stats(); }

  /// Times a metadata op was retried against the other MDS endpoint.
  [[nodiscard]] std::uint64_t mds_failovers() const {
    return mds_failovers_.load();
  }

  /// Per-opcode call/error tallies of the underlying RPC client.
  [[nodiscard]] std::map<rpc::Opcode, rpc::ClientOpTally> rpc_op_tallies()
      const {
    return rpc_.OpTallies();
  }

 private:
  friend class PfsIo;
  friend class PfsSliceIo;

  /// One MDS metadata round trip with standby failover: call the active
  /// endpoint; on timeout/unavailable try the other one and remember
  /// whichever answers.  Defined in client.cpp (all uses are local).
  template <typename Rep, typename Req>
  Result<Rep> CallMds(rpc::Opcode op, const Req& req);

  Result<txn::LockId> LockExtent(Ino ino, std::uint64_t start,
                                 std::uint64_t end);
  Status UnlockExtent(txn::LockId id);
  /// Plan the per-stripe chunks shared by WriteAsync/ReadAsync.
  Result<PfsIo> PlanIo(const OpenFile& file, std::uint64_t offset,
                       std::uint64_t length, bool is_read, std::size_t window);
  /// Issue the next planned chunk of `s` asynchronously.
  Status IssueChunk(PfsIo::State& s);

  PfsDeployment deployment_;
  ConsistencyMode mode_;
  rpc::RpcClient rpc_;
  std::atomic<portals::Nid> active_mds_;
  std::atomic<std::uint64_t> mds_failovers_{0};
};

}  // namespace lwfs::pfs
