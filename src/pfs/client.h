// Client of the traditional-PFS baseline.
//
// Provides the POSIX-ish file model the paper's alternative checkpoint
// implementations use: open/create a striped file, write/read byte extents,
// close.  In kPosixLocking mode every write takes an exclusive extent lock
// at the MDS first — the consistency machinery that halves shared-file
// checkpoint throughput in Figure 9.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "pfs/mds.h"
#include "pfs/protocol.h"
#include "rpc/rpc.h"
#include "txn/lock_table.h"
#include "util/status.h"

namespace lwfs::pfs {

/// Consistency behaviour of PfsClient::Write.
enum class ConsistencyMode {
  /// POSIX-style: exclusive extent lock around every write.
  kPosixLocking,
  /// Relaxed: no locks; the application coordinates (what PVFS does, §6).
  kRelaxed,
};

struct PfsDeployment {
  portals::Nid mds = portals::kInvalidNid;
  std::vector<portals::Nid> osts;
};

struct OpenFile {
  std::string path;
  FileAttr attr;
};

class PfsClient {
 public:
  PfsClient(std::shared_ptr<portals::Nic> nic, PfsDeployment deployment,
            ConsistencyMode mode = ConsistencyMode::kPosixLocking);

  Result<OpenFile> Create(const std::string& path, std::uint32_t stripe_count);
  Result<OpenFile> Open(const std::string& path);
  Status Unlink(const std::string& path);
  Result<FileAttr> GetAttr(const std::string& path);

  /// Write `data` at `offset`, striping across OSTs.  Takes/releases the
  /// extent lock in kPosixLocking mode.
  Status Write(const OpenFile& file, std::uint64_t offset, ByteSpan data);

  /// Read into `out`; returns bytes read.
  Result<std::uint64_t> Read(const OpenFile& file, std::uint64_t offset,
                             MutableByteSpan out);

  /// Publish the file size to the MDS (close/sync semantics).
  Status Sync(const OpenFile& file, std::uint64_t size_hint);

  [[nodiscard]] ConsistencyMode mode() const { return mode_; }
  [[nodiscard]] rpc::ClientStats rpc_stats() const { return rpc_.stats(); }

 private:
  Result<txn::LockId> LockExtent(Ino ino, std::uint64_t start,
                                 std::uint64_t end);
  Status UnlockExtent(txn::LockId id);
  Result<FileAttr> DecodeAttrReply(const Buffer& reply) const;

  PfsDeployment deployment_;
  ConsistencyMode mode_;
  rpc::RpcClient rpc_;
};

}  // namespace lwfs::pfs
