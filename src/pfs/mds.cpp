#include "pfs/mds.h"

#include <algorithm>

namespace lwfs::pfs {

MdsService::MdsService(std::uint32_t ost_count, OstCreateFn ost_create,
                       OstRemoveFn ost_remove, MdsOptions options)
    : ost_count_(ost_count),
      ost_create_(std::move(ost_create)),
      ost_remove_(std::move(ost_remove)),
      options_(std::move(options)) {}

Result<FileAttr> MdsService::Create(const std::string& path,
                                    std::uint32_t stripe_count) {
  if (path.empty() || path.front() != '/') {
    return InvalidArgument("path must be absolute");
  }
  if (stripe_count == 0 || stripe_count > ost_count_) {
    stripe_count = ost_count_;
  }

  // The whole create — namespace insert plus every stripe-object create —
  // happens under the MDS lock.  This serialization *is* the baseline's
  // create bottleneck; do not "fix" it.
  std::lock_guard<std::mutex> lock(mutex_);
  ++ops_;
  if (files_.contains(path)) return AlreadyExists("file exists");
  if (options_.create_delay_hook) options_.create_delay_hook();

  FileAttr attr;
  attr.ino = next_ino_++;
  attr.layout.stripe_size = options_.default_stripe_size;
  attr.layout.stripes.reserve(stripe_count);
  for (std::uint32_t i = 0; i < stripe_count; ++i) {
    const std::uint32_t ost = next_ost_;
    next_ost_ = (next_ost_ + 1) % ost_count_;
    auto oid = ost_create_(ost);
    if (!oid.ok()) {
      // Roll back already-created stripe objects.
      for (const StripeTarget& t : attr.layout.stripes) {
        (void)ost_remove_(t.ost_index, t.oid);
      }
      return oid.status();
    }
    attr.layout.stripes.push_back(StripeTarget{ost, *oid});
  }
  files_[path] = attr;
  ++creates_;
  if (options_.oplog != nullptr) {
    MdsOpRecord rec;
    rec.kind = MdsOpRecord::Kind::kCreate;
    rec.path = path;
    rec.attr = attr;
    options_.oplog->Append(std::move(rec));
  }
  return attr;
}

Result<FileAttr> MdsService::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++ops_;
  auto it = files_.find(path);
  if (it == files_.end()) return NotFound("no such file");
  return it->second;
}

Status MdsService::Unlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++ops_;
  auto it = files_.find(path);
  if (it == files_.end()) return NotFound("no such file");
  for (const StripeTarget& t : it->second.layout.stripes) {
    (void)ost_remove_(t.ost_index, t.oid);
  }
  files_.erase(it);
  if (options_.oplog != nullptr) {
    MdsOpRecord rec;
    rec.kind = MdsOpRecord::Kind::kUnlink;
    rec.path = path;
    options_.oplog->Append(std::move(rec));
  }
  return OkStatus();
}

Result<FileAttr> MdsService::GetAttr(const std::string& path) {
  return Open(path);
}

Status MdsService::SetSize(const std::string& path, std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++ops_;
  auto it = files_.find(path);
  if (it == files_.end()) return NotFound("no such file");
  it->second.size = std::max(it->second.size, size);
  if (options_.oplog != nullptr) {
    MdsOpRecord rec;
    rec.kind = MdsOpRecord::Kind::kSetSize;
    rec.path = path;
    rec.size = size;
    options_.oplog->Append(std::move(rec));
  }
  return OkStatus();
}

Status MdsService::Replay(const MdsOpRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (record.kind) {
    case MdsOpRecord::Kind::kCreate: {
      // Install the logged attr verbatim; the stripe objects already exist
      // on the OSTs.  Advance the mint cursors so post-takeover creates
      // continue the primary's sequences.
      files_[record.path] = record.attr;
      next_ino_ = std::max(next_ino_, record.attr.ino + 1);
      if (!record.attr.layout.stripes.empty() && ost_count_ > 0) {
        next_ost_ =
            (record.attr.layout.stripes.back().ost_index + 1) % ost_count_;
      }
      return OkStatus();
    }
    case MdsOpRecord::Kind::kSetSize: {
      auto it = files_.find(record.path);
      if (it == files_.end()) return NotFound("no such file");
      it->second.size = std::max(it->second.size, record.size);
      return OkStatus();
    }
    case MdsOpRecord::Kind::kUnlink: {
      // Namespace-only: the primary already removed the stripe objects.
      files_.erase(record.path);
      return OkStatus();
    }
  }
  return InvalidArgument("unknown MDS log record");
}

Result<std::vector<std::string>> MdsService::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ++ops_;
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, attr] : files_) out.push_back(path);
  return out;
}

Result<txn::LockId> MdsService::TryLock(Ino ino, std::uint64_t start,
                                        std::uint64_t end, txn::LockMode mode,
                                        std::uint64_t owner) {
  if (start >= end) return InvalidArgument("empty lock range");
  // Round the range out to the DLM granularity: this is what makes
  // disjoint-but-nearby shared-file writes conflict.
  const std::uint64_t g = options_.lock_granularity;
  const std::uint64_t rounded_start = (start / g) * g;
  std::uint64_t rounded_end = ((end + g - 1) / g) * g;
  if (rounded_end == rounded_start) rounded_end = rounded_start + g;
  return locks_.TryAcquire(txn::LockKey{0, ino},
                           txn::LockRange{rounded_start, rounded_end}, mode,
                           owner);
}

Status MdsService::ReleaseLock(txn::LockId id) { return locks_.Release(id); }

std::uint64_t MdsService::creates_served() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return creates_;
}

std::uint64_t MdsService::metadata_ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ops_;
}

}  // namespace lwfs::pfs
