#include "pfs/mds.h"

#include <algorithm>

namespace lwfs::pfs {

MdsService::MdsService(std::uint32_t ost_count, OstCreateFn ost_create,
                       OstRemoveFn ost_remove, MdsOptions options)
    : ost_count_(ost_count),
      ost_create_(std::move(ost_create)),
      ost_remove_(std::move(ost_remove)),
      options_(std::move(options)) {}

Result<FileAttr> MdsService::Create(const std::string& path,
                                    std::uint32_t stripe_count) {
  if (path.empty() || path.front() != '/') {
    return InvalidArgument("path must be absolute");
  }
  if (stripe_count == 0 || stripe_count > ost_count_) {
    stripe_count = ost_count_;
  }

  // The whole create — namespace insert plus every stripe-object create —
  // happens under the MDS lock.  This serialization *is* the baseline's
  // create bottleneck; do not "fix" it.
  std::lock_guard<std::mutex> lock(mutex_);
  ++ops_;
  if (files_.contains(path)) return AlreadyExists("file exists");
  if (options_.create_delay_hook) options_.create_delay_hook();

  FileAttr attr;
  attr.ino = next_ino_++;
  attr.layout.stripe_size = options_.default_stripe_size;
  attr.layout.stripes.reserve(stripe_count);
  for (std::uint32_t i = 0; i < stripe_count; ++i) {
    const std::uint32_t ost = next_ost_;
    next_ost_ = (next_ost_ + 1) % ost_count_;
    auto oid = ost_create_(ost);
    if (!oid.ok()) {
      // Roll back already-created stripe objects.
      for (const StripeTarget& t : attr.layout.stripes) {
        (void)ost_remove_(t.ost_index, t.oid);
      }
      return oid.status();
    }
    attr.layout.stripes.push_back(StripeTarget{ost, *oid});
  }
  files_[path] = attr;
  ++creates_;
  return attr;
}

Result<FileAttr> MdsService::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++ops_;
  auto it = files_.find(path);
  if (it == files_.end()) return NotFound("no such file");
  return it->second;
}

Status MdsService::Unlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++ops_;
  auto it = files_.find(path);
  if (it == files_.end()) return NotFound("no such file");
  for (const StripeTarget& t : it->second.layout.stripes) {
    (void)ost_remove_(t.ost_index, t.oid);
  }
  files_.erase(it);
  return OkStatus();
}

Result<FileAttr> MdsService::GetAttr(const std::string& path) {
  return Open(path);
}

Status MdsService::SetSize(const std::string& path, std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++ops_;
  auto it = files_.find(path);
  if (it == files_.end()) return NotFound("no such file");
  it->second.size = std::max(it->second.size, size);
  return OkStatus();
}

Result<std::vector<std::string>> MdsService::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ++ops_;
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, attr] : files_) out.push_back(path);
  return out;
}

Result<txn::LockId> MdsService::TryLock(Ino ino, std::uint64_t start,
                                        std::uint64_t end, txn::LockMode mode,
                                        std::uint64_t owner) {
  if (start >= end) return InvalidArgument("empty lock range");
  // Round the range out to the DLM granularity: this is what makes
  // disjoint-but-nearby shared-file writes conflict.
  const std::uint64_t g = options_.lock_granularity;
  const std::uint64_t rounded_start = (start / g) * g;
  std::uint64_t rounded_end = ((end + g - 1) / g) * g;
  if (rounded_end == rounded_start) rounded_end = rounded_start + g;
  return locks_.TryAcquire(txn::LockKey{0, ino},
                           txn::LockRange{rounded_start, rounded_end}, mode,
                           owner);
}

Status MdsService::ReleaseLock(txn::LockId id) { return locks_.Release(id); }

std::uint64_t MdsService::creates_served() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return creates_;
}

std::uint64_t MdsService::metadata_ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ops_;
}

}  // namespace lwfs::pfs
