// RPC binding of the PFS metadata server.
//
// The MDS creates stripe objects on the OSTs itself (over RPC), so every
// file create costs one client->MDS round trip plus `stripe_count`
// MDS->OST round trips, all serialized at the MDS — the Figure 10 create
// bottleneck.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "pfs/mds.h"
#include "pfs/protocol.h"
#include "rpc/rpc.h"
#include "rpc/service.h"

namespace lwfs::pfs {

/// Warm-standby wiring for an MDS pair.  Primary and standby share one
/// `active` cell (initialized to the primary's `self`) and one MdsLog; the
/// standby stays passive until a client, having seen the primary time out,
/// sends it a request — its first admitted op replays the log and flips
/// `active` to itself.  The deposed primary then answers kUnavailable, so a
/// lagging client refreshes instead of split-braining the namespace.
struct MdsStandbyConfig {
  bool standby = false;  ///< start passive, take over on first request
  MdsLog* log = nullptr; ///< primary's commit-before-ack log (takeover source)
  std::shared_ptr<std::atomic<int>> active;  ///< index of the live MDS
  int self = 0;          ///< this server's index in `active`
};

class MdsServer {
 public:
  /// `ost_nids[i]` is the OST for stripe placement index i.
  MdsServer(std::shared_ptr<portals::Nic> nic,
            std::vector<portals::Nid> ost_nids, MdsOptions mds_options = {},
            rpc::ServerOptions rpc_options = {},
            rpc::ClientOptions ost_client_options = {},
            MdsStandbyConfig standby = {});

  Status Start();
  void Stop() { server_.Stop(); }

  [[nodiscard]] portals::Nid nid() const { return server_.nid(); }
  [[nodiscard]] MdsService& service() { return *service_; }

  /// Per-op middleware metrics.
  [[nodiscard]] std::vector<rpc::OpStats> op_stats() const {
    return ops_.Stats();
  }
  [[nodiscard]] std::vector<rpc::Opcode> registered_opcodes() const {
    return server_.RegisteredOpcodes();
  }

  /// Standby takeover stats (0 on a standalone or never-promoted server).
  [[nodiscard]] std::uint64_t takeovers() const { return takeovers_; }
  [[nodiscard]] std::uint64_t takeover_replayed() const {
    return takeover_replayed_;
  }
  [[nodiscard]] std::uint64_t takeover_replay_errors() const {
    return takeover_replay_errors_;
  }

 private:
  /// Role gate run at the top of every handler.  Active server: OK.
  /// Passive standby: replay the log, claim `active`, then OK.  Deposed
  /// primary: kUnavailable (fencing).
  Status Admit();
  Status Takeover();

  std::vector<portals::Nid> ost_nids_;
  rpc::RpcClient ost_client_;
  std::unique_ptr<MdsService> service_;
  rpc::RpcServer server_;
  rpc::Service ops_;

  MdsStandbyConfig standby_cfg_;
  std::mutex takeover_mutex_;
  std::atomic<std::uint64_t> takeovers_{0};
  std::atomic<std::uint64_t> takeover_replayed_{0};
  std::atomic<std::uint64_t> takeover_replay_errors_{0};
};

}  // namespace lwfs::pfs
