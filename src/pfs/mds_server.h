// RPC binding of the PFS metadata server.
//
// The MDS creates stripe objects on the OSTs itself (over RPC), so every
// file create costs one client->MDS round trip plus `stripe_count`
// MDS->OST round trips, all serialized at the MDS — the Figure 10 create
// bottleneck.
#pragma once

#include <memory>
#include <vector>

#include "pfs/mds.h"
#include "pfs/protocol.h"
#include "rpc/rpc.h"
#include "rpc/service.h"

namespace lwfs::pfs {

class MdsServer {
 public:
  /// `ost_nids[i]` is the OST for stripe placement index i.
  MdsServer(std::shared_ptr<portals::Nic> nic,
            std::vector<portals::Nid> ost_nids, MdsOptions mds_options = {},
            rpc::ServerOptions rpc_options = {},
            rpc::ClientOptions ost_client_options = {});

  Status Start();
  void Stop() { server_.Stop(); }

  [[nodiscard]] portals::Nid nid() const { return server_.nid(); }
  [[nodiscard]] MdsService& service() { return *service_; }

  /// Per-op middleware metrics.
  [[nodiscard]] std::vector<rpc::OpStats> op_stats() const {
    return ops_.Stats();
  }
  [[nodiscard]] std::vector<rpc::Opcode> registered_opcodes() const {
    return server_.RegisteredOpcodes();
  }

 private:
  std::vector<portals::Nid> ost_nids_;
  rpc::RpcClient ost_client_;
  std::unique_ptr<MdsService> service_;
  rpc::RpcServer server_;
  rpc::Service ops_;
};

}  // namespace lwfs::pfs
