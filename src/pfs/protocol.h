// Wire protocol of the traditional-PFS baseline.
//
// Opcode space is disjoint from the LWFS core's so a process could host
// both stacks on one NIC without ambiguity.
#pragma once

#include <cstdint>

#include "pfs/layout.h"
#include "rpc/rpc.h"
#include "rpc/service.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lwfs::pfs {

enum PfsOp : rpc::Opcode {
  // Metadata server.
  kPfsCreate = 100,   // create file + stripe objects (via the MDS!)
  kPfsOpen = 101,
  kPfsUnlink = 102,
  kPfsGetAttr = 103,
  kPfsSetSize = 104,
  kPfsLockTry = 105,
  kPfsLockRelease = 106,
  kPfsList = 107,

  // Object storage targets (no capability checks: the baseline trusts
  // clients, which §5 calls out as the PVFS/Lustre trust model).
  kOstCreate = 120,
  kOstWrite = 121,
  kOstRead = 122,
  kOstRemove = 123,
  kOstGetAttr = 124,
  kOstReadSlice = 125,  // read whose payload rides the reply frame as slices
};

// Every pfs opcode must live inside the pfs protocol family's range so the
// two stacks can never collide on a shared NIC (the core side asserts the
// mirror-image property in core/protocol.h).
static_assert(rpc::kPfsOpcodeRange.Contains(kPfsCreate) &&
                  rpc::kPfsOpcodeRange.Contains(kPfsOpen) &&
                  rpc::kPfsOpcodeRange.Contains(kPfsUnlink) &&
                  rpc::kPfsOpcodeRange.Contains(kPfsGetAttr) &&
                  rpc::kPfsOpcodeRange.Contains(kPfsSetSize) &&
                  rpc::kPfsOpcodeRange.Contains(kPfsLockTry) &&
                  rpc::kPfsOpcodeRange.Contains(kPfsLockRelease) &&
                  rpc::kPfsOpcodeRange.Contains(kPfsList) &&
                  rpc::kPfsOpcodeRange.Contains(kOstCreate) &&
                  rpc::kPfsOpcodeRange.Contains(kOstWrite) &&
                  rpc::kPfsOpcodeRange.Contains(kOstRead) &&
                  rpc::kPfsOpcodeRange.Contains(kOstRemove) &&
                  rpc::kPfsOpcodeRange.Contains(kOstGetAttr) &&
                  rpc::kPfsOpcodeRange.Contains(kOstReadSlice),
              "pfs opcode outside the pfs protocol family's range");

inline void EncodeLayout(Encoder& enc, const Layout& layout) {
  enc.PutU32(layout.stripe_size);
  enc.PutU32(static_cast<std::uint32_t>(layout.stripes.size()));
  for (const StripeTarget& t : layout.stripes) {
    enc.PutU32(t.ost_index);
    enc.PutU64(t.oid.value);
  }
}

inline Result<Layout> DecodeLayout(Decoder& dec) {
  Layout layout;
  auto stripe_size = dec.GetU32();
  auto count = dec.GetU32();
  if (!stripe_size.ok() || !count.ok()) {
    return InvalidArgument("malformed layout");
  }
  layout.stripe_size = *stripe_size;
  // Adversarial counts must not drive allocation: each stripe entry needs
  // 12 wire bytes, so anything beyond remaining()/12 cannot parse anyway.
  if (*count > dec.remaining() / 12) {
    return InvalidArgument("layout stripe count exceeds payload");
  }
  layout.stripes.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto ost = dec.GetU32();
    auto oid = dec.GetU64();
    if (!ost.ok() || !oid.ok()) return InvalidArgument("malformed layout");
    layout.stripes.push_back(StripeTarget{*ost, storage::ObjectId{*oid}});
  }
  return layout;
}

}  // namespace lwfs::pfs
