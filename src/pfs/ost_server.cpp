#include "pfs/ost_server.h"

#include <algorithm>

#include "pfs/wire.h"

namespace lwfs::pfs {

OstServer::OstServer(std::shared_ptr<portals::Nic> nic,
                     storage::ObjectStore* store, OstOptions options)
    : store_(store),
      options_(options),
      server_(std::move(nic), options.rpc),
      ops_(&server_, "ost") {
  ops_.On<rpc::Void, wire::OstCreateRep>(
      wire::kOstCreateOp,
      [this](rpc::ServerContext&, rpc::Void&) -> Result<wire::OstCreateRep> {
        auto oid = store_->Create(kOstContainer);
        if (!oid.ok()) return oid.status();
        return wire::OstCreateRep{oid->value};
      });

  ops_.On<wire::OstWriteReq, wire::OstMovedRep>(
      wire::kOstWriteOp,
      [this](rpc::ServerContext& ctx,
             wire::OstWriteReq& req) -> Result<wire::OstMovedRep> {
        const std::uint64_t total = ctx.bulk_out_size();
        std::uint64_t moved = 0;
        while (moved < total) {
          const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
              options_.bulk_chunk_bytes, total - moved));
          // Zero-copy pull: the slice references the client's registered
          // payload; the store's WriteSlice is the only copy.
          auto chunk = ctx.PullBulkSlice(n, moved);
          if (!chunk.ok()) return chunk.status();
          LWFS_RETURN_IF_ERROR(store_->WriteSlice(storage::ObjectId{req.oid},
                                                  req.offset + moved,
                                                  *chunk));
          moved += n;
        }
        // Pulled payload must match the client's request-header checksum;
        // a mismatch surfaces as kDataLoss and the PFS client retries.
        LWFS_RETURN_IF_ERROR(ctx.VerifyPulledPayload());
        return wire::OstMovedRep{moved};
      });

  ops_.On<wire::OstReadReq, wire::OstMovedRep>(
      wire::kOstReadOp,
      [this](rpc::ServerContext& ctx,
             wire::OstReadReq& req) -> Result<wire::OstMovedRep> {
        const std::uint64_t want =
            std::min<std::uint64_t>(req.length, ctx.bulk_in_size());
        std::uint64_t moved = 0;
        while (moved < want) {
          const std::uint64_t n =
              std::min<std::uint64_t>(options_.bulk_chunk_bytes, want - moved);
          auto data =
              store_->Read(storage::ObjectId{req.oid}, req.offset + moved, n);
          if (!data.ok()) return data.status();
          if (data->empty()) break;
          LWFS_RETURN_IF_ERROR(ctx.PushBulk(ByteSpan(*data), moved));
          moved += data->size();
          if (data->size() < n) break;
        }
        return wire::OstMovedRep{moved};
      });

  ops_.On<wire::OstReadReq, wire::OstMovedRep>(
      wire::kOstReadSliceOp,
      [this](rpc::ServerContext& ctx,
             wire::OstReadReq& req) -> Result<wire::OstMovedRep> {
        // Zero-copy read: the store's slice is attached to the reply frame
        // itself and stays alive through retransmits via the reply cache.
        auto slice =
            store_->ReadSlice(storage::ObjectId{req.oid}, req.offset,
                              req.length);
        if (!slice.ok()) return slice.status();
        const std::uint64_t moved = slice->size();
        if (moved > 0) {
          LWFS_RETURN_IF_ERROR(ctx.PushBulkSlice(std::move(*slice)));
        }
        return wire::OstMovedRep{moved};
      });

  ops_.On<wire::OstOidReq, rpc::Void>(
      wire::kOstRemoveOp,
      [this](rpc::ServerContext&, wire::OstOidReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(store_->Remove(storage::ObjectId{req.oid}));
        return rpc::Void{};
      });

  ops_.On<wire::OstOidReq, wire::OstAttrRep>(
      wire::kOstGetAttrOp,
      [this](rpc::ServerContext&,
             wire::OstOidReq& req) -> Result<wire::OstAttrRep> {
        auto attr = store_->GetAttr(storage::ObjectId{req.oid});
        if (!attr.ok()) return attr.status();
        return wire::OstAttrRep{attr->size, attr->version};
      });
}

Status OstServer::Start() {
  LWFS_RETURN_IF_ERROR(ops_.init_status());
  return server_.Start();
}

}  // namespace lwfs::pfs
