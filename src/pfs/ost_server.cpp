#include "pfs/ost_server.h"

#include <algorithm>

namespace lwfs::pfs {

OstServer::OstServer(std::shared_ptr<portals::Nic> nic,
                     storage::ObjectStore* store, OstOptions options)
    : store_(store), options_(options), server_(std::move(nic), options.rpc) {
  server_.RegisterHandler(
      kOstCreate, [this](rpc::ServerContext&, Decoder&) -> Result<Buffer> {
        auto oid = store_->Create(kOstContainer);
        if (!oid.ok()) return oid.status();
        Encoder reply;
        reply.PutU64(oid->value);
        return std::move(reply).Take();
      });

  server_.RegisterHandler(
      kOstWrite,
      [this](rpc::ServerContext& ctx, Decoder& req) -> Result<Buffer> {
        auto oid = req.GetU64();
        auto offset = req.GetU64();
        if (!oid.ok() || !offset.ok()) {
          return InvalidArgument("malformed ost write");
        }
        const std::uint64_t total = ctx.bulk_out_size();
        Buffer chunk;
        std::uint64_t moved = 0;
        while (moved < total) {
          const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
              options_.bulk_chunk_bytes, total - moved));
          chunk.resize(n);
          LWFS_RETURN_IF_ERROR(ctx.PullBulk(MutableByteSpan(chunk), moved));
          LWFS_RETURN_IF_ERROR(store_->Write(storage::ObjectId{*oid},
                                             *offset + moved, ByteSpan(chunk)));
          moved += n;
        }
        // Pulled payload must match the client's request-header checksum;
        // a mismatch surfaces as kDataLoss and the PFS client retries.
        LWFS_RETURN_IF_ERROR(ctx.VerifyPulledPayload());
        Encoder reply;
        reply.PutU64(moved);
        return std::move(reply).Take();
      });

  server_.RegisterHandler(
      kOstRead,
      [this](rpc::ServerContext& ctx, Decoder& req) -> Result<Buffer> {
        auto oid = req.GetU64();
        auto offset = req.GetU64();
        auto length = req.GetU64();
        if (!oid.ok() || !offset.ok() || !length.ok()) {
          return InvalidArgument("malformed ost read");
        }
        const std::uint64_t want =
            std::min<std::uint64_t>(*length, ctx.bulk_in_size());
        std::uint64_t moved = 0;
        while (moved < want) {
          const std::uint64_t n =
              std::min<std::uint64_t>(options_.bulk_chunk_bytes, want - moved);
          auto data = store_->Read(storage::ObjectId{*oid}, *offset + moved, n);
          if (!data.ok()) return data.status();
          if (data->empty()) break;
          LWFS_RETURN_IF_ERROR(ctx.PushBulk(ByteSpan(*data), moved));
          moved += data->size();
          if (data->size() < n) break;
        }
        Encoder reply;
        reply.PutU64(moved);
        return std::move(reply).Take();
      });

  server_.RegisterHandler(
      kOstRemove, [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto oid = req.GetU64();
        if (!oid.ok()) return oid.status();
        LWFS_RETURN_IF_ERROR(store_->Remove(storage::ObjectId{*oid}));
        return Buffer{};
      });

  server_.RegisterHandler(
      kOstGetAttr, [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto oid = req.GetU64();
        if (!oid.ok()) return oid.status();
        auto attr = store_->GetAttr(storage::ObjectId{*oid});
        if (!attr.ok()) return attr.status();
        Encoder reply;
        reply.PutU64(attr->size);
        reply.PutU64(attr->version);
        return std::move(reply).Take();
      });
}

}  // namespace lwfs::pfs
