#include "pfs/client.h"

#include <algorithm>
#include <thread>

namespace lwfs::pfs {

PfsClient::PfsClient(std::shared_ptr<portals::Nic> nic,
                     PfsDeployment deployment, ConsistencyMode mode)
    : deployment_(std::move(deployment)), mode_(mode), rpc_(std::move(nic)) {}

Result<FileAttr> PfsClient::DecodeAttrReply(const Buffer& reply) const {
  Decoder dec(reply);
  auto ino = dec.GetU64();
  auto size = dec.GetU64();
  auto layout = DecodeLayout(dec);
  if (!ino.ok() || !size.ok() || !layout.ok()) {
    return InvalidArgument("malformed attr reply");
  }
  FileAttr attr;
  attr.ino = *ino;
  attr.size = *size;
  attr.layout = std::move(*layout);
  return attr;
}

Result<OpenFile> PfsClient::Create(const std::string& path,
                                   std::uint32_t stripe_count) {
  Encoder req;
  req.PutString(path);
  req.PutU32(stripe_count);
  auto reply = rpc_.Call(deployment_.mds, kPfsCreate, ByteSpan(req.buffer()));
  if (!reply.ok()) return reply.status();
  auto attr = DecodeAttrReply(*reply);
  if (!attr.ok()) return attr.status();
  return OpenFile{path, std::move(*attr)};
}

Result<OpenFile> PfsClient::Open(const std::string& path) {
  Encoder req;
  req.PutString(path);
  auto reply = rpc_.Call(deployment_.mds, kPfsOpen, ByteSpan(req.buffer()));
  if (!reply.ok()) return reply.status();
  auto attr = DecodeAttrReply(*reply);
  if (!attr.ok()) return attr.status();
  return OpenFile{path, std::move(*attr)};
}

Status PfsClient::Unlink(const std::string& path) {
  Encoder req;
  req.PutString(path);
  auto reply = rpc_.Call(deployment_.mds, kPfsUnlink, ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

Result<FileAttr> PfsClient::GetAttr(const std::string& path) {
  Encoder req;
  req.PutString(path);
  auto reply = rpc_.Call(deployment_.mds, kPfsGetAttr, ByteSpan(req.buffer()));
  if (!reply.ok()) return reply.status();
  return DecodeAttrReply(*reply);
}

Result<txn::LockId> PfsClient::LockExtent(Ino ino, std::uint64_t start,
                                          std::uint64_t end) {
  // Poll with backoff: the MDS lock manager is try-based over RPC.
  int backoff_us = 50;
  for (;;) {
    Encoder req;
    req.PutU64(ino);
    req.PutU64(start);
    req.PutU64(end);
    req.PutBool(true);  // exclusive
    auto reply =
        rpc_.Call(deployment_.mds, kPfsLockTry, ByteSpan(req.buffer()));
    if (reply.ok()) {
      Decoder dec(*reply);
      return dec.GetU64();
    }
    if (reply.status().code() != ErrorCode::kResourceExhausted) {
      return reply.status();
    }
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    backoff_us = std::min(backoff_us * 2, 5000);
  }
}

Status PfsClient::UnlockExtent(txn::LockId id) {
  Encoder req;
  req.PutU64(id);
  auto reply =
      rpc_.Call(deployment_.mds, kPfsLockRelease, ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

Status PfsClient::Write(const OpenFile& file, std::uint64_t offset,
                        ByteSpan data) {
  std::optional<txn::LockId> lock;
  if (mode_ == ConsistencyMode::kPosixLocking) {
    auto id = LockExtent(file.attr.ino, offset, offset + data.size());
    if (!id.ok()) return id.status();
    lock = *id;
  }

  Status result = OkStatus();
  const auto chunks = MapExtent(
      file.attr.layout.stripe_size,
      static_cast<std::uint32_t>(file.attr.layout.stripes.size()), offset,
      data.size());
  for (const StripeChunk& chunk : chunks) {
    const StripeTarget& target = file.attr.layout.stripes[chunk.stripe_index];
    if (target.ost_index >= deployment_.osts.size()) {
      result = Internal("layout names unknown OST");
      break;
    }
    Encoder req;
    req.PutU64(target.oid.value);
    req.PutU64(chunk.object_offset);
    rpc::CallOptions options;
    options.bulk_out =
        data.subspan(static_cast<std::size_t>(chunk.file_offset - offset),
                     static_cast<std::size_t>(chunk.length));
    auto reply = rpc_.Call(deployment_.osts[target.ost_index], kOstWrite,
                           ByteSpan(req.buffer()), options);
    if (!reply.ok()) {
      result = reply.status();
      break;
    }
  }

  if (lock) {
    Status unlock = UnlockExtent(*lock);
    if (result.ok()) result = unlock;
  }
  return result;
}

Result<std::uint64_t> PfsClient::Read(const OpenFile& file,
                                      std::uint64_t offset,
                                      MutableByteSpan out) {
  std::uint64_t total = 0;
  const auto chunks = MapExtent(
      file.attr.layout.stripe_size,
      static_cast<std::uint32_t>(file.attr.layout.stripes.size()), offset,
      out.size());
  for (const StripeChunk& chunk : chunks) {
    const StripeTarget& target = file.attr.layout.stripes[chunk.stripe_index];
    if (target.ost_index >= deployment_.osts.size()) {
      return Internal("layout names unknown OST");
    }
    Encoder req;
    req.PutU64(target.oid.value);
    req.PutU64(chunk.object_offset);
    req.PutU64(chunk.length);
    rpc::CallOptions options;
    options.bulk_in =
        out.subspan(static_cast<std::size_t>(chunk.file_offset - offset),
                    static_cast<std::size_t>(chunk.length));
    auto reply = rpc_.Call(deployment_.osts[target.ost_index], kOstRead,
                           ByteSpan(req.buffer()), options);
    if (!reply.ok()) return reply.status();
    Decoder dec(*reply);
    auto moved = dec.GetU64();
    if (!moved.ok()) return moved.status();
    total += *moved;
    if (*moved < chunk.length) break;  // EOF within this stripe object
  }
  return total;
}

Status PfsClient::Sync(const OpenFile& file, std::uint64_t size_hint) {
  Encoder req;
  req.PutString(file.path);
  req.PutU64(size_hint);
  auto reply = rpc_.Call(deployment_.mds, kPfsSetSize, ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

}  // namespace lwfs::pfs
