#include "pfs/client.h"

#include <algorithm>
#include <deque>
#include <optional>

#include "pfs/wire.h"
#include "rpc/service.h"
#include "txn/lock_retry.h"

namespace lwfs::pfs {

// ---------------------------------------------------------------------------
// PfsIo
// ---------------------------------------------------------------------------

/// One planned OST transfer (a StripeChunk resolved against the layout).
struct PfsIo::State {
  PfsClient* client = nullptr;
  bool is_read = false;
  std::size_t window = PfsClient::kDefaultOstWindow;

  // kPosixLocking: the extent lock is acquired lazily in Await(), not at
  // issue time.  A driver pipelining many PfsIo handles would otherwise
  // deadlock against itself — the DLM rounds ranges to its granularity, so
  // disjoint-but-nearby extents conflict, and a blocking acquire at issue
  // time would wait on a lock held by a not-yet-retired handle in the same
  // window.  The cost is the paper's point: locking serializes the I/O.
  bool need_lock = false;
  Ino lock_ino = 0;
  std::uint64_t lock_start = 0;
  std::uint64_t lock_end = 0;
  std::optional<txn::LockId> lock;

  struct Chunk {
    portals::Nid ost = portals::kInvalidNid;
    std::uint64_t oid = 0;
    std::uint64_t object_offset = 0;
    std::uint64_t length = 0;
    std::size_t span_offset = 0;  // into `data` / `out`
  };
  std::vector<Chunk> chunks;
  std::size_t next_chunk = 0;
  ByteSpan data{};          // write payload
  // Ref-counted write payload (WriteSliceAsync): chunks register O(1)
  // sub-slices of this for the OST pull instead of raw spans, and the
  // slice keeps the payload alive past caller scope.
  util::SharedSlice data_slice{};
  MutableByteSpan out{};    // read destination

  struct Issued {
    rpc::CallHandle handle;
    std::uint64_t length = 0;
  };
  std::deque<Issued> inflight;

  bool completed = false;
  Result<std::uint64_t> result = std::uint64_t{0};
};

PfsIo::PfsIo() = default;
PfsIo::PfsIo(PfsIo&&) noexcept = default;
PfsIo& PfsIo::operator=(PfsIo&&) noexcept = default;

PfsIo::~PfsIo() {
  // Drain so the caller's span is quiescent before it can be freed.
  if (state_ && !state_->completed) (void)Await();
}

Result<std::uint64_t> PfsIo::Await() {
  if (!state_) return FailedPrecondition("awaiting an empty pfs io handle");
  State& s = *state_;
  if (s.completed) return s.result;

  if (s.need_lock && !s.lock) {
    auto id = s.client->LockExtent(s.lock_ino, s.lock_start, s.lock_end);
    if (!id.ok()) {
      s.completed = true;
      s.result = id.status();
      return s.result;
    }
    s.lock = *id;
  }

  Status error = OkStatus();
  std::uint64_t total = 0;
  bool eof = false;  // a short chunk read: later chunk counts are ignored
  for (;;) {
    while (error.ok() && !eof && s.inflight.size() < s.window &&
           s.next_chunk < s.chunks.size()) {
      Status issued = s.client->IssueChunk(s);
      if (!issued.ok()) error = issued;
    }
    if (s.inflight.empty()) break;
    State::Issued op = std::move(s.inflight.front());
    s.inflight.pop_front();
    auto reply = op.handle.Await();
    if (!reply.ok()) {
      if (error.ok()) error = reply.status();
      continue;
    }
    if (!s.is_read || eof || !error.ok()) continue;
    auto moved = rpc::ResolveTyped<wire::OstMovedRep>(std::move(reply));
    if (!moved.ok()) {
      error = moved.status();
      continue;
    }
    total += moved->moved;
    if (moved->moved < op.length) eof = true;  // EOF within this stripe object
  }

  if (s.lock) {
    Status unlock = s.client->UnlockExtent(*s.lock);
    if (error.ok()) error = unlock;
    s.lock.reset();
  }
  s.completed = true;
  if (!error.ok()) {
    s.result = error;
  } else {
    s.result = s.is_read ? total : static_cast<std::uint64_t>(s.data.size());
  }
  return s.result;
}

// ---------------------------------------------------------------------------
// PfsSliceIo
// ---------------------------------------------------------------------------

struct PfsSliceIo::State {
  PfsClient* client = nullptr;
  std::size_t window = PfsClient::kDefaultOstWindow;

  // Same deferred-lock discipline as PfsIo (see the comment there).
  bool need_lock = false;
  Ino lock_ino = 0;
  std::uint64_t lock_start = 0;
  std::uint64_t lock_end = 0;
  std::optional<txn::LockId> lock;

  struct Chunk {
    portals::Nid ost = portals::kInvalidNid;
    std::uint64_t oid = 0;
    std::uint64_t object_offset = 0;
    std::uint64_t length = 0;
    std::size_t span_offset = 0;  // into the gathered extent
  };
  std::vector<Chunk> chunks;
  std::size_t next_chunk = 0;

  struct Issued {
    rpc::CallHandle handle;
    std::uint64_t length = 0;
    std::size_t span_offset = 0;
  };
  std::deque<Issued> inflight;

  bool completed = false;
  Result<util::SharedSlice> result = util::SharedSlice();
};

PfsSliceIo::PfsSliceIo() = default;
PfsSliceIo::PfsSliceIo(PfsSliceIo&&) noexcept = default;
PfsSliceIo& PfsSliceIo::operator=(PfsSliceIo&&) noexcept = default;

PfsSliceIo::~PfsSliceIo() {
  if (state_ && !state_->completed) (void)Await();
}

Result<util::SharedSlice> PfsSliceIo::Await() {
  if (!state_) return FailedPrecondition("awaiting an empty pfs slice handle");
  State& s = *state_;
  if (s.completed) return s.result;

  if (s.need_lock && !s.lock) {
    auto id = s.client->LockExtent(s.lock_ino, s.lock_start, s.lock_end);
    if (!id.ok()) {
      s.completed = true;
      s.result = id.status();
      return s.result;
    }
    s.lock = *id;
  }

  // Retired per-stripe slices in chunk order; assembled after the drain.
  struct Piece {
    util::SharedSlice slice;
    std::uint64_t length = 0;      // what the chunk asked for
    std::size_t span_offset = 0;
  };
  std::vector<Piece> pieces;
  pieces.reserve(s.chunks.size());
  Status error = OkStatus();
  bool eof = false;
  for (;;) {
    while (error.ok() && !eof && s.inflight.size() < s.window &&
           s.next_chunk < s.chunks.size()) {
      const State::Chunk& chunk = s.chunks[s.next_chunk++];
      auto handle = rpc::CallTypedAsync(
          s.client->rpc_, chunk.ost, kOstReadSlice,
          wire::OstReadReq{chunk.oid, chunk.object_offset, chunk.length});
      if (!handle.ok()) {
        error = handle.status();
        break;
      }
      s.inflight.push_back(
          State::Issued{std::move(*handle), chunk.length, chunk.span_offset});
    }
    if (s.inflight.empty()) break;
    State::Issued op = std::move(s.inflight.front());
    s.inflight.pop_front();
    auto reply = op.handle.Await();
    if (!reply.ok()) {
      if (error.ok()) error = reply.status();
      continue;
    }
    if (eof || !error.ok()) continue;
    auto moved = rpc::ResolveTyped<wire::OstMovedRep>(std::move(reply));
    if (!moved.ok()) {
      error = moved.status();
      continue;
    }
    util::SharedSlice bulk = op.handle.ReplyBulk();
    if (bulk.size() != moved->moved) {
      error = DataLoss("ost slice read bulk does not match reported count");
      continue;
    }
    if (moved->moved < op.length) eof = true;  // EOF within this stripe object
    pieces.push_back(Piece{std::move(bulk), op.length, op.span_offset});
  }

  if (s.lock) {
    Status unlock = s.client->UnlockExtent(*s.lock);
    if (error.ok()) error = unlock;
    s.lock.reset();
  }
  s.completed = true;
  if (!error.ok()) {
    s.result = error;
    return s.result;
  }

  // Fast path: one stripe chunk — hand the OST's slice straight through
  // (short at EOF by construction).
  if (pieces.size() == 1 && pieces[0].span_offset == 0) {
    s.result = std::move(pieces[0].slice);
    return s.result;
  }

  // Gather: the extent ends at the first short chunk (retired in chunk
  // order).  One delivery copy per byte — final delivery, outside the
  // staging budget.
  std::uint64_t total = 0;
  for (const Piece& p : pieces) {
    total = p.span_offset + p.slice.size();
    if (p.slice.size() < p.length) break;
  }
  Buffer out(static_cast<std::size_t>(total), std::uint8_t{0});
  for (const Piece& p : pieces) {
    if (p.span_offset >= total) break;
    const std::size_t n = std::min<std::size_t>(
        p.slice.size(), static_cast<std::size_t>(total) - p.span_offset);
    std::copy_n(p.slice.span().begin(), n,
                out.begin() + static_cast<std::ptrdiff_t>(p.span_offset));
    LWFS_COUNT_COPY(util::CopyKind::kDeliver, n);
  }
  s.result = util::SharedSlice::FromBuffer(std::move(out));
  return s.result;
}

// ---------------------------------------------------------------------------
// PfsClient
// ---------------------------------------------------------------------------

namespace {

/// Only transport-level failures move a metadata op to the other MDS
/// endpoint.  Application-level answers (kNotFound, kAlreadyExists, ...)
/// are real results and must not wake the standby.
bool MdsFailoverWorthy(ErrorCode code) {
  return code == ErrorCode::kTimeout || code == ErrorCode::kUnavailable;
}

}  // namespace

PfsClient::PfsClient(std::shared_ptr<portals::Nic> nic,
                     PfsDeployment deployment, ConsistencyMode mode,
                     rpc::ClientOptions client_options)
    : deployment_(std::move(deployment)),
      mode_(mode),
      rpc_(std::move(nic), client_options),
      active_mds_(deployment_.mds) {}

template <typename Rep, typename Req>
Result<Rep> PfsClient::CallMds(rpc::Opcode op, const Req& req) {
  const portals::Nid first = active_mds_.load();
  auto rep = rpc::CallTyped<Rep>(rpc_, first, op, req);
  if (rep.ok() || !MdsFailoverWorthy(rep.status().code())) return rep;
  const portals::Nid other =
      first == deployment_.mds ? deployment_.mds_standby : deployment_.mds;
  if (other == portals::kInvalidNid || other == first) return rep;
  auto retry = rpc::CallTyped<Rep>(rpc_, other, op, req);
  if (retry.ok() || !MdsFailoverWorthy(retry.status().code())) {
    active_mds_.store(other);  // stick with the endpoint that answered
    ++mds_failovers_;
  }
  return retry;
}

Result<OpenFile> PfsClient::Create(const std::string& path,
                                   std::uint32_t stripe_count) {
  auto attr = CallMds<wire::FileAttrRep>(kPfsCreate,
                                         wire::PfsCreateReq{path, stripe_count});
  if (!attr.ok()) return attr.status();
  return OpenFile{path, std::move(attr->attr)};
}

Result<OpenFile> PfsClient::Open(const std::string& path) {
  auto attr = CallMds<wire::FileAttrRep>(kPfsOpen, wire::PfsPathReq{path});
  if (!attr.ok()) return attr.status();
  return OpenFile{path, std::move(attr->attr)};
}

Status PfsClient::Unlink(const std::string& path) {
  return CallMds<rpc::Void>(kPfsUnlink, wire::PfsPathReq{path}).status();
}

Result<FileAttr> PfsClient::GetAttr(const std::string& path) {
  auto attr = CallMds<wire::FileAttrRep>(kPfsGetAttr, wire::PfsPathReq{path});
  if (!attr.ok()) return attr.status();
  return std::move(attr->attr);
}

Result<txn::LockId> PfsClient::LockExtent(Ino ino, std::uint64_t start,
                                          std::uint64_t end) {
  // Poll on the shared retry schedule: the MDS lock manager is try-based
  // over RPC.  The schedule is deadline-bounded (one RPC default_timeout of
  // polling) so a holder that died without releasing cannot park this
  // thread forever — the caller gets kTimeout and decides whether to retry.
  util::Clock* clock = rpc_.clock();
  txn::LockRetrySchedule retry(
      clock->Now(),
      std::chrono::duration_cast<std::chrono::milliseconds>(
          rpc_.options().default_timeout));
  for (;;) {
    auto rep = CallMds<wire::PfsLockIdRep>(
        kPfsLockTry, wire::PfsLockTryReq{ino, start, end, /*exclusive=*/true});
    if (rep.ok()) return rep->id;
    if (rep.status().code() != ErrorCode::kResourceExhausted) {
      return rep.status();
    }
    const auto next = retry.Next(clock->Now());
    if (!next.has_value()) {
      return Timeout("extent lock acquisition deadline exceeded");
    }
    clock->SleepUntil(*next);
  }
}

Status PfsClient::UnlockExtent(txn::LockId id) {
  return CallMds<rpc::Void>(kPfsLockRelease, wire::PfsLockReleaseReq{id})
      .status();
}

Status PfsClient::Write(const OpenFile& file, std::uint64_t offset,
                        ByteSpan data) {
  auto io = WriteAsync(file, offset, data);
  if (!io.ok()) return io.status();
  auto n = io->Await();
  return n.ok() ? OkStatus() : n.status();
}

Result<std::uint64_t> PfsClient::Read(const OpenFile& file,
                                      std::uint64_t offset,
                                      MutableByteSpan out) {
  auto io = ReadAsync(file, offset, out);
  if (!io.ok()) return io.status();
  return io->Await();
}

Result<PfsIo> PfsClient::PlanIo(const OpenFile& file, std::uint64_t offset,
                                std::uint64_t length, bool is_read,
                                std::size_t window) {
  PfsIo io;
  io.state_ = std::make_unique<PfsIo::State>();
  PfsIo::State& s = *io.state_;
  s.client = this;
  s.is_read = is_read;
  s.window = window == 0 ? 1 : window;

  const auto chunks = MapExtent(
      file.attr.layout.stripe_size,
      static_cast<std::uint32_t>(file.attr.layout.stripes.size()), offset,
      length);
  s.chunks.reserve(chunks.size());
  for (const StripeChunk& chunk : chunks) {
    const StripeTarget& target = file.attr.layout.stripes[chunk.stripe_index];
    if (target.ost_index >= deployment_.osts.size()) {
      return Internal("layout names unknown OST");
    }
    PfsIo::State::Chunk planned;
    planned.ost = deployment_.osts[target.ost_index];
    planned.oid = target.oid.value;
    planned.object_offset = chunk.object_offset;
    planned.length = chunk.length;
    planned.span_offset = static_cast<std::size_t>(chunk.file_offset - offset);
    s.chunks.push_back(planned);
  }

  if (mode_ == ConsistencyMode::kPosixLocking) {
    s.need_lock = true;
    s.lock_ino = file.attr.ino;
    s.lock_start = offset;
    s.lock_end = offset + length;
  }
  return io;
}

Status PfsClient::IssueChunk(PfsIo::State& s) {
  const PfsIo::State::Chunk& chunk = s.chunks[s.next_chunk++];
  rpc::CallOptions options;
  Result<rpc::CallHandle> handle = InvalidArgument("unplanned chunk");
  if (s.is_read) {
    options.bulk_in = s.out.subspan(chunk.span_offset,
                                    static_cast<std::size_t>(chunk.length));
    handle = rpc::CallTypedAsync(
        rpc_, chunk.ost, kOstRead,
        wire::OstReadReq{chunk.oid, chunk.object_offset, chunk.length},
        options);
  } else {
    if (s.data_slice.owned()) {
      options.bulk_out_slice = s.data_slice.Slice(
          chunk.span_offset, static_cast<std::size_t>(chunk.length));
    } else {
      options.bulk_out = s.data.subspan(
          chunk.span_offset, static_cast<std::size_t>(chunk.length));
    }
    handle = rpc::CallTypedAsync(rpc_, chunk.ost, kOstWrite,
                                 wire::OstWriteReq{chunk.oid,
                                                   chunk.object_offset},
                                 options);
  }
  if (!handle.ok()) return handle.status();
  s.inflight.push_back(
      PfsIo::State::Issued{std::move(*handle), chunk.length});
  return OkStatus();
}

Result<PfsIo> PfsClient::WriteAsync(const OpenFile& file, std::uint64_t offset,
                                    ByteSpan data, std::size_t window) {
  auto io = PlanIo(file, offset, data.size(), /*is_read=*/false, window);
  if (!io.ok()) return io;
  io->state_->data = data;
  // Prime the window; Await() keeps it full as chunks retire.  When an
  // extent lock is required no chunk may go out before it is held, so the
  // whole issue is deferred to Await() (which takes the lock first).
  PfsIo::State& s = *io->state_;
  while (!s.need_lock && s.inflight.size() < s.window &&
         s.next_chunk < s.chunks.size()) {
    Status issued = IssueChunk(s);
    if (!issued.ok()) {
      (void)io->Await();  // drain + unlock before reporting
      return issued;
    }
  }
  return io;
}

Result<PfsIo> PfsClient::WriteSliceAsync(const OpenFile& file,
                                         std::uint64_t offset,
                                         const util::SharedSlice& data,
                                         std::size_t window) {
  auto io = PlanIo(file, offset, data.size(), /*is_read=*/false, window);
  if (!io.ok()) return io;
  io->state_->data = data.span();
  io->state_->data_slice = data;
  PfsIo::State& s = *io->state_;
  while (!s.need_lock && s.inflight.size() < s.window &&
         s.next_chunk < s.chunks.size()) {
    Status issued = IssueChunk(s);
    if (!issued.ok()) {
      (void)io->Await();  // drain + unlock before reporting
      return issued;
    }
  }
  return io;
}

Result<PfsIo> PfsClient::ReadAsync(const OpenFile& file, std::uint64_t offset,
                                   MutableByteSpan out, std::size_t window) {
  auto io = PlanIo(file, offset, out.size(), /*is_read=*/true, window);
  if (!io.ok()) return io;
  io->state_->out = out;
  PfsIo::State& s = *io->state_;
  while (!s.need_lock && s.inflight.size() < s.window &&
         s.next_chunk < s.chunks.size()) {
    Status issued = IssueChunk(s);
    if (!issued.ok()) {
      (void)io->Await();
      return issued;
    }
  }
  return io;
}

Result<util::SharedSlice> PfsClient::ReadSlice(const OpenFile& file,
                                               std::uint64_t offset,
                                               std::uint64_t length) {
  auto io = ReadSliceAsync(file, offset, length);
  if (!io.ok()) return io.status();
  return io->Await();
}

Result<PfsSliceIo> PfsClient::ReadSliceAsync(const OpenFile& file,
                                             std::uint64_t offset,
                                             std::uint64_t length,
                                             std::size_t window) {
  PfsSliceIo io;
  io.state_ = std::make_unique<PfsSliceIo::State>();
  PfsSliceIo::State& s = *io.state_;
  s.client = this;
  s.window = window == 0 ? 1 : window;

  const auto chunks = MapExtent(
      file.attr.layout.stripe_size,
      static_cast<std::uint32_t>(file.attr.layout.stripes.size()), offset,
      length);
  s.chunks.reserve(chunks.size());
  for (const StripeChunk& chunk : chunks) {
    const StripeTarget& target = file.attr.layout.stripes[chunk.stripe_index];
    if (target.ost_index >= deployment_.osts.size()) {
      return Internal("layout names unknown OST");
    }
    PfsSliceIo::State::Chunk planned;
    planned.ost = deployment_.osts[target.ost_index];
    planned.oid = target.oid.value;
    planned.object_offset = chunk.object_offset;
    planned.length = chunk.length;
    planned.span_offset = static_cast<std::size_t>(chunk.file_offset - offset);
    s.chunks.push_back(planned);
  }

  if (mode_ == ConsistencyMode::kPosixLocking) {
    s.need_lock = true;
    s.lock_ino = file.attr.ino;
    s.lock_start = offset;
    s.lock_end = offset + length;
  }
  // Issuance happens inside Await() for both modes: kPosixLocking must
  // take the extent lock first, and the slice path has no caller-owned
  // landing span to protect, so there is nothing to gain from priming.
  return io;
}

Status PfsClient::Sync(const OpenFile& file, std::uint64_t size_hint) {
  return CallMds<rpc::Void>(kPfsSetSize,
                            wire::PfsSetSizeReq{file.path, size_hint})
      .status();
}

}  // namespace lwfs::pfs
