#include "pfs/layout.h"

#include <algorithm>

namespace lwfs::pfs {

std::vector<StripeChunk> MapExtent(std::uint32_t stripe_size,
                                   std::uint32_t stripe_count,
                                   std::uint64_t offset,
                                   std::uint64_t length) {
  std::vector<StripeChunk> chunks;
  if (stripe_size == 0 || stripe_count == 0 || length == 0) return chunks;
  std::uint64_t pos = offset;
  std::uint64_t remaining = length;
  while (remaining > 0) {
    const std::uint64_t stripe_number = pos / stripe_size;    // global stripe
    const std::uint64_t in_stripe = pos % stripe_size;
    const auto stripe_index =
        static_cast<std::uint32_t>(stripe_number % stripe_count);
    const std::uint64_t row = stripe_number / stripe_count;   // stripe "row"
    const std::uint64_t chunk =
        std::min<std::uint64_t>(stripe_size - in_stripe, remaining);
    chunks.push_back(StripeChunk{stripe_index, row * stripe_size + in_stripe,
                                 pos, chunk});
    pos += chunk;
    remaining -= chunk;
  }
  return chunks;
}

}  // namespace lwfs::pfs
