// Object storage target of the traditional-PFS baseline.
//
// Same data path mechanics as the LWFS storage server (server-directed bulk
// movement over the shared substrate) but *no* capability checks: the
// baseline trusts any client on the network, the trust model §5 criticizes
// in Lustre/PVFS.  Keeping the data path identical is what makes the
// LWFS-vs-PFS comparison about architecture, not implementation quality.
#pragma once

#include <memory>

#include "pfs/protocol.h"
#include "rpc/rpc.h"
#include "rpc/service.h"
#include "storage/object_store.h"

namespace lwfs::pfs {

struct OstOptions {
  rpc::ServerOptions rpc;
  std::size_t bulk_chunk_bytes = 1 << 20;
};

class OstServer {
 public:
  /// All OST objects live in this fixed container (the baseline has no
  /// container concept; access control is the MDS's problem).
  static constexpr storage::ContainerId kOstContainer{1};

  OstServer(std::shared_ptr<portals::Nic> nic, storage::ObjectStore* store,
            OstOptions options = {});

  Status Start();
  void Stop() { server_.Stop(); }

  [[nodiscard]] portals::Nid nid() const { return server_.nid(); }
  [[nodiscard]] storage::ObjectStore* store() { return store_; }

  /// Per-op middleware metrics.
  [[nodiscard]] std::vector<rpc::OpStats> op_stats() const {
    return ops_.Stats();
  }
  [[nodiscard]] std::vector<rpc::Opcode> registered_opcodes() const {
    return server_.RegisteredOpcodes();
  }

 private:
  storage::ObjectStore* store_;
  OstOptions options_;
  rpc::RpcServer server_;
  rpc::Service ops_;
};

}  // namespace lwfs::pfs
