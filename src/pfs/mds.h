// Metadata server of the traditional-PFS baseline.
//
// Everything the paper blames for the baseline's bottlenecks lives here by
// design: file creation allocates *all* stripe objects through this one
// service (Figure 10's flat create curve), and POSIX consistency is
// provided by extent locks whose ranges are rounded out to a coarse
// granularity — so "non-overlapping" shared-file writes still collide
// (Figure 9's halved shared-file throughput).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "pfs/layout.h"
#include "txn/lock_table.h"
#include "util/status.h"

namespace lwfs::pfs {

using Ino = std::uint64_t;

struct FileAttr {
  Ino ino = 0;
  std::uint64_t size = 0;
  Layout layout;
};

/// One committed MDS mutation, as logged for the warm standby.  kCreate
/// carries the full resulting attr (ino + layout), so replay installs the
/// file without re-running the OST creates — the stripe objects already
/// exist.
struct MdsOpRecord {
  enum class Kind : std::uint8_t { kCreate, kSetSize, kUnlink };
  Kind kind = Kind::kCreate;
  std::string path;
  FileAttr attr;           // kCreate
  std::uint64_t size = 0;  // kSetSize
};

/// Commit-before-ack log shared between an MDS primary and its warm
/// standby: the primary appends every committed mutation before the call
/// returns, the standby replays the log at takeover.  Thread-safe.
class MdsLog {
 public:
  void Append(MdsOpRecord record) {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(std::move(record));
  }
  [[nodiscard]] std::uint64_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_.size();
  }
  [[nodiscard]] std::vector<MdsOpRecord> ReadFrom(std::uint64_t cursor) const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cursor >= records_.size()) return {};
    return {records_.begin() + static_cast<std::ptrdiff_t>(cursor),
            records_.end()};
  }

 private:
  mutable std::mutex mutex_;
  std::vector<MdsOpRecord> records_;
};

struct MdsOptions {
  std::uint32_t default_stripe_size = 1 << 20;
  /// Extent-lock ranges are rounded out to multiples of this (Lustre-style
  /// coarse DLM extents).  Large values serialize shared-file writers.
  std::uint64_t lock_granularity = 64ull << 20;
  /// Simulated per-metadata-op service cost; 0 in unit tests.  Models the
  /// MDS CPU+disk work that bounds create throughput on real systems.
  std::function<void()> create_delay_hook;
  /// When set, every committed namespace mutation is appended before the
  /// call returns (the standby's takeover source).
  MdsLog* oplog = nullptr;
};

/// Creates stripe objects on an OST; the MDS is wired to the OST servers
/// through this (RPC in production, direct store calls in tests).
using OstCreateFn =
    std::function<Result<storage::ObjectId>(std::uint32_t ost_index)>;
using OstRemoveFn =
    std::function<Status(std::uint32_t ost_index, storage::ObjectId oid)>;

/// Pure metadata logic; thread-safe.  All namespace and layout decisions —
/// the "policy decisions" box of Figure 7-a — are centralized here.
class MdsService {
 public:
  MdsService(std::uint32_t ost_count, OstCreateFn ost_create,
             OstRemoveFn ost_remove, MdsOptions options = {});

  /// Create a file striped over `stripe_count` OSTs (0 = all).  The MDS
  /// performs the object creates itself, serially.
  Result<FileAttr> Create(const std::string& path, std::uint32_t stripe_count);

  Result<FileAttr> Open(const std::string& path);
  Status Unlink(const std::string& path);
  Result<FileAttr> GetAttr(const std::string& path);
  /// Size updates flow through the MDS (clients report on close/sync).
  Status SetSize(const std::string& path, std::uint64_t size);
  Result<std::vector<std::string>> List() const;

  /// Extent locks for POSIX consistency.  Ranges are rounded to
  /// lock_granularity before matching.
  Result<txn::LockId> TryLock(Ino ino, std::uint64_t start, std::uint64_t end,
                              txn::LockMode mode, std::uint64_t owner);
  Status ReleaseLock(txn::LockId id);

  [[nodiscard]] std::uint64_t creates_served() const;
  [[nodiscard]] std::uint64_t metadata_ops() const;

  /// Apply one logged mutation (standby takeover).  kCreate installs the
  /// logged attr without touching the OSTs; kUnlink drops the namespace
  /// entry only (the primary already removed the stripe objects).
  Status Replay(const MdsOpRecord& record);

 private:
  const std::uint32_t ost_count_;
  OstCreateFn ost_create_;
  OstRemoveFn ost_remove_;
  MdsOptions options_;

  mutable std::mutex mutex_;
  Ino next_ino_ = 1;
  std::uint32_t next_ost_ = 0;  // round-robin stripe placement cursor
  std::map<std::string, FileAttr> files_;
  std::uint64_t creates_ = 0;
  mutable std::uint64_t ops_ = 0;
  txn::LockTable locks_;
};

}  // namespace lwfs::pfs
