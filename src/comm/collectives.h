// Log-time collectives over the portals fabric.
//
// The paper's client-side protocols lean on MPI-style collectives: "Once
// the initiating client has the capability, it can use a logarithmic
// 'scatter' routine to distribute capabilities to other client
// processors" (§3.1.2, Figure 4-a), and the checkpoint's metadata gather
// (Figure 8 line 7).  This module provides those primitives — point-to-
// point send/recv with tag matching plus binomial-tree barrier /
// broadcast / gather / scatter — so the application layers above the
// LWFS-core are built the way the paper describes, not with shared
// memory.
//
// A Communicator is owned by exactly one thread (like an MPI rank).  All
// members of a group must be constructed before any collective starts.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "portals/portals.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/shared_buffer.h"
#include "util/status.h"

namespace lwfs::comm {

/// Portal index used by collectives (0-3 belong to the RPC layer).
inline constexpr portals::PortalIndex kCollectivePortal = 5;

class Communicator {
 public:
  /// Join a group: `members[i]` is the NIC id of rank i; `rank` is ours.
  /// The NIC may be shared with an rpc client (different portals).
  /// `clock` drives backoff sleeps and receive deadlines (nullptr = real).
  static Result<std::unique_ptr<Communicator>> Create(
      std::shared_ptr<portals::Nic> nic, std::vector<portals::Nid> members,
      int rank, util::Clock* clock = nullptr);
  ~Communicator();

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }

  // ---- Point to point -----------------------------------------------------
  Status Send(int dest, std::uint32_t tag, ByteSpan data);
  /// Slice send: an *owned* slice is delivered by reference (zero-copy);
  /// an external slice is copied at delivery like Send().
  Status SendSlice(int dest, std::uint32_t tag,
                   const util::SharedSlice& data);
  /// Blocking receive of the next message with (src, tag); out-of-order
  /// arrivals are stashed.
  Result<Buffer> Recv(int src, std::uint32_t tag,
                      std::chrono::milliseconds timeout =
                          std::chrono::milliseconds(10000));
  /// Receive primitive: the delivered payload as an owned slice, no copy.
  /// Recv() is this plus one materialize.
  Result<util::SharedSlice> RecvSlice(int src, std::uint32_t tag,
                                      std::chrono::milliseconds timeout =
                                          std::chrono::milliseconds(10000));

  // ---- Collectives (binomial trees, O(log n) rounds) ------------------------
  /// All ranks must call with the same tag; returns when everyone arrived.
  Status Barrier(std::uint32_t tag);

  /// Root's `data` is delivered into every rank's `data`.
  Status Bcast(int root, std::uint32_t tag, Buffer& data);

  /// Every rank contributes `mine`; root receives all contributions
  /// ordered by rank (non-roots get an empty vector).
  Result<std::vector<Buffer>> Gather(int root, std::uint32_t tag,
                                     ByteSpan mine);

  /// Root provides size() pieces; every rank returns its own.  This is
  /// the Figure 4-a capability-distribution primitive.
  Result<Buffer> Scatter(int root, std::uint32_t tag,
                         const std::vector<Buffer>& pieces);

 private:
  Communicator(std::shared_ptr<portals::Nic> nic,
               std::vector<portals::Nid> members, int rank, util::Clock* clock)
      : nic_(std::move(nic)),
        members_(std::move(members)),
        rank_(rank),
        clock_(util::OrReal(clock)),
        eq_(4096, clock) {}

  /// rank relative to `root` (binomial trees are rooted at 0).
  [[nodiscard]] int Relative(int rank, int root) const {
    return (rank - root + size()) % size();
  }
  [[nodiscard]] int Absolute(int relative, int root) const {
    return (relative + root) % size();
  }

  static portals::MatchBits MakeMatch(int src, std::uint32_t tag) {
    return (static_cast<portals::MatchBits>(tag) << 16) |
           static_cast<portals::MatchBits>(src & 0xFFFF);
  }

  /// Retry `put` with exponential backoff while the peer's bounded receive
  /// queue rejects it (the RPC layer's flow-control discipline).
  Status PutWithBackoff(const std::function<Status()>& put);
  /// Ship a scatter-gather frame to `dest` (gathered once, at delivery).
  Status SendFrame(int dest, std::uint32_t tag, const util::Frame& frame);

  std::shared_ptr<portals::Nic> nic_;
  std::vector<portals::Nid> members_;
  int rank_;
  util::Clock* const clock_;
  portals::EventQueue eq_;
  portals::MeHandle me_ = portals::kInvalidMeHandle;
  // Out-of-order stash: (src, tag) -> FIFO of payload slices (refs, not
  // clones — a stashed payload is never copied until the caller asks for
  // a Buffer).
  std::map<std::pair<int, std::uint32_t>, std::deque<util::SharedSlice>>
      stash_;
};

}  // namespace lwfs::comm
