#include "comm/collectives.h"

namespace lwfs::comm {

Result<std::unique_ptr<Communicator>> Communicator::Create(
    std::shared_ptr<portals::Nic> nic, std::vector<portals::Nid> members,
    int rank, util::Clock* clock) {
  if (members.empty()) return InvalidArgument("empty group");
  if (rank < 0 || rank >= static_cast<int>(members.size())) {
    return InvalidArgument("rank out of range");
  }
  if (members[static_cast<std::size_t>(rank)] != nic->nid()) {
    return InvalidArgument("members[rank] must be this NIC");
  }
  auto comm = std::unique_ptr<Communicator>(
      new Communicator(std::move(nic), std::move(members), rank, clock));
  portals::MeOptions options;
  options.allow_put = true;
  options.message_mode = true;
  auto me = comm->nic_->Attach(kCollectivePortal, 0, ~0ULL, {}, options,
                               &comm->eq_);
  if (!me.ok()) return me.status();
  comm->me_ = *me;
  return comm;
}

Communicator::~Communicator() {
  if (me_ != portals::kInvalidMeHandle) (void)nic_->Detach(me_);
  eq_.Close();
}

Status Communicator::PutWithBackoff(const std::function<Status()>& put) {
  // Bounded receiver queues: back off and resend on overflow, like the
  // RPC layer.
  int backoff_us = 10;
  for (int attempt = 0; attempt < 10000; ++attempt) {
    Status s = put();
    if (s.ok() || s.code() != ErrorCode::kResourceExhausted) return s;
    clock_->SleepFor(std::chrono::microseconds(backoff_us));
    backoff_us = std::min(backoff_us * 2, 2000);
  }
  return ResourceExhausted("peer receive queue stayed full");
}

Status Communicator::Send(int dest, std::uint32_t tag, ByteSpan data) {
  if (dest < 0 || dest >= size()) return InvalidArgument("bad destination");
  return PutWithBackoff([&] {
    return nic_->Put(members_[static_cast<std::size_t>(dest)],
                     kCollectivePortal, MakeMatch(rank_, tag), data);
  });
}

Status Communicator::SendSlice(int dest, std::uint32_t tag,
                               const util::SharedSlice& data) {
  if (dest < 0 || dest >= size()) return InvalidArgument("bad destination");
  return PutWithBackoff([&] {
    return nic_->Put(members_[static_cast<std::size_t>(dest)],
                     kCollectivePortal, MakeMatch(rank_, tag), data);
  });
}

Status Communicator::SendFrame(int dest, std::uint32_t tag,
                               const util::Frame& frame) {
  if (dest < 0 || dest >= size()) return InvalidArgument("bad destination");
  return PutWithBackoff([&] {
    return nic_->PutFrame(members_[static_cast<std::size_t>(dest)],
                          kCollectivePortal, MakeMatch(rank_, tag), frame);
  });
}

Result<Buffer> Communicator::Recv(int src, std::uint32_t tag,
                                  std::chrono::milliseconds timeout) {
  auto got = RecvSlice(src, tag, timeout);
  if (!got.ok()) return got.status();
  return got->ToBuffer(util::CopyKind::kDeliver);
}

Result<util::SharedSlice> Communicator::RecvSlice(
    int src, std::uint32_t tag, std::chrono::milliseconds timeout) {
  if (src < 0 || src >= size()) return InvalidArgument("bad source");
  const auto key = std::make_pair(src, tag);
  const util::Clock::TimePoint deadline = clock_->Now() + timeout;
  for (;;) {
    auto it = stash_.find(key);
    if (it != stash_.end() && !it->second.empty()) {
      util::SharedSlice out = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) stash_.erase(it);
      return out;
    }
    const util::Clock::TimePoint now = clock_->Now();
    if (now >= deadline) return Timeout("collective receive timed out");
    auto event = eq_.WaitFor(deadline - now);
    if (!event) return Timeout("collective receive timed out");
    const int event_src = static_cast<int>(event->match_bits & 0xFFFF);
    const auto event_tag =
        static_cast<std::uint32_t>(event->match_bits >> 16);
    stash_[std::make_pair(event_src, event_tag)].push_back(
        std::move(event->payload));
  }
}

Status Communicator::Barrier(std::uint32_t tag) {
  // Gather a zero-byte token to rank 0, then broadcast one back.
  auto gathered = Gather(0, tag, {});
  if (!gathered.ok()) return gathered.status();
  Buffer token;
  return Bcast(0, tag + 1, token);
}

Status Communicator::Bcast(int root, std::uint32_t tag, Buffer& data) {
  const int relative = Relative(rank_, root);
  // Interior nodes forward the *received slice* by reference: the payload
  // is copied once per subtree delivery, never re-copied per hop.
  util::SharedSlice payload = util::SharedSlice::External(ByteSpan(data));
  bool received = false;
  int mask = 1;
  // Receive phase: wait for the parent (if any).
  while (mask < size()) {
    if (relative & mask) {
      auto got = RecvSlice(Absolute(relative - mask, root), tag);
      if (!got.ok()) return got.status();
      payload = std::move(*got);
      received = true;
      break;
    }
    mask <<= 1;
  }
  // Forward phase: send to children at decreasing distances.
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < size()) {
      LWFS_RETURN_IF_ERROR(
          SendSlice(Absolute(relative + mask, root), tag, payload));
    }
    mask >>= 1;
  }
  if (received) data = payload.ToBuffer(util::CopyKind::kDeliver);
  return OkStatus();
}

Result<std::vector<Buffer>> Communicator::Gather(int root, std::uint32_t tag,
                                                 ByteSpan mine) {
  const int relative = Relative(rank_, root);
  // Accumulate (relative rank -> contribution) for our subtree.  Received
  // contributions are zero-copy sub-slices of their bundle frames.
  std::map<int, util::SharedSlice> bundle;
  bundle.emplace(relative, util::SharedSlice::External(mine));

  int mask = 1;
  while (mask < size()) {
    if ((relative & mask) == 0) {
      // We are a parent at this level: absorb the child's subtree.
      if (relative + mask < size()) {
        auto packed = RecvSlice(Absolute(relative + mask, root), tag);
        if (!packed.ok()) return packed.status();
        Decoder dec(*packed);
        auto count = dec.GetU32();
        if (!count.ok()) return count.status();
        for (std::uint32_t i = 0; i < *count; ++i) {
          auto vrank = dec.GetU32();
          auto payload = dec.TakeSlice();
          if (!vrank.ok() || !payload.ok()) {
            return Internal("malformed gather bundle");
          }
          bundle.emplace(static_cast<int>(*vrank), std::move(*payload));
        }
      }
      mask <<= 1;
    } else {
      // We are a child: ship the whole subtree as one scatter-gather frame
      // — contribution slices ride by reference — and stop.
      util::FrameBuilder fb;
      fb.header().PutU32(static_cast<std::uint32_t>(bundle.size()));
      for (const auto& [vrank, payload] : bundle) {
        fb.header().PutU32(static_cast<std::uint32_t>(vrank));
        fb.header().PutU32(static_cast<std::uint32_t>(payload.size()));
        fb.Append(payload);
      }
      util::Frame frame = fb.Build();
      LWFS_RETURN_IF_ERROR(
          SendFrame(Absolute(relative - mask, root), tag, frame));
      return std::vector<Buffer>{};
    }
  }

  // Root: reorder by absolute rank and materialize for the caller.
  std::vector<Buffer> out(static_cast<std::size_t>(size()));
  for (auto& [vrank, payload] : bundle) {
    out[static_cast<std::size_t>(Absolute(vrank, root))] =
        payload.ToBuffer(util::CopyKind::kDeliver);
  }
  return out;
}

Result<Buffer> Communicator::Scatter(int root, std::uint32_t tag,
                                     const std::vector<Buffer>& pieces) {
  const int relative = Relative(rank_, root);
  // relative rank -> piece, for our subtree; received pieces are zero-copy
  // sub-slices of the parent's bundle frame and are re-forwarded by
  // reference.
  std::map<int, util::SharedSlice> bundle;
  int recv_mask = 1;

  if (rank_ == root) {
    if (pieces.size() != static_cast<std::size_t>(size())) {
      return InvalidArgument("scatter needs one piece per rank");
    }
    for (int r = 0; r < size(); ++r) {
      bundle.emplace(
          Relative(r, root),
          util::SharedSlice::External(
              ByteSpan(pieces[static_cast<std::size_t>(r)])));
    }
    while (recv_mask < size()) recv_mask <<= 1;
  } else {
    // Receive our subtree's bundle from the parent.
    while (recv_mask < size()) {
      if (relative & recv_mask) {
        auto packed = RecvSlice(Absolute(relative - recv_mask, root), tag);
        if (!packed.ok()) return packed.status();
        Decoder dec(*packed);
        auto count = dec.GetU32();
        if (!count.ok()) return count.status();
        for (std::uint32_t i = 0; i < *count; ++i) {
          auto vrank = dec.GetU32();
          auto payload = dec.TakeSlice();
          if (!vrank.ok() || !payload.ok()) {
            return Internal("malformed scatter bundle");
          }
          bundle.emplace(static_cast<int>(*vrank), std::move(*payload));
        }
        break;
      }
      recv_mask <<= 1;
    }
  }

  // Forward sub-bundles to children: child at relative+m owns relative
  // ranks [relative+m, relative+2m).
  for (int m = recv_mask >> 1; m > 0; m >>= 1) {
    const int child = relative + m;
    if (child >= size()) continue;
    std::uint32_t count = 0;
    for (int v = child; v < child + m && v < size(); ++v) ++count;
    util::FrameBuilder fb;
    fb.header().PutU32(count);
    for (int v = child; v < child + m && v < size(); ++v) {
      auto it = bundle.find(v);
      if (it == bundle.end()) return Internal("scatter bundle hole");
      fb.header().PutU32(static_cast<std::uint32_t>(v));
      fb.header().PutU32(static_cast<std::uint32_t>(it->second.size()));
      fb.Append(it->second);
    }
    util::Frame frame = fb.Build();
    LWFS_RETURN_IF_ERROR(SendFrame(Absolute(child, root), tag, frame));
    // Drop what we forwarded.
    for (int v = child; v < child + m && v < size(); ++v) bundle.erase(v);
  }

  auto mine = bundle.find(relative);
  if (mine == bundle.end()) return Internal("scatter lost own piece");
  return mine->second.ToBuffer(util::CopyKind::kDeliver);
}

}  // namespace lwfs::comm
