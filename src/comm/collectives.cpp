#include "comm/collectives.h"

namespace lwfs::comm {

Result<std::unique_ptr<Communicator>> Communicator::Create(
    std::shared_ptr<portals::Nic> nic, std::vector<portals::Nid> members,
    int rank, util::Clock* clock) {
  if (members.empty()) return InvalidArgument("empty group");
  if (rank < 0 || rank >= static_cast<int>(members.size())) {
    return InvalidArgument("rank out of range");
  }
  if (members[static_cast<std::size_t>(rank)] != nic->nid()) {
    return InvalidArgument("members[rank] must be this NIC");
  }
  auto comm = std::unique_ptr<Communicator>(
      new Communicator(std::move(nic), std::move(members), rank, clock));
  portals::MeOptions options;
  options.allow_put = true;
  options.message_mode = true;
  auto me = comm->nic_->Attach(kCollectivePortal, 0, ~0ULL, {}, options,
                               &comm->eq_);
  if (!me.ok()) return me.status();
  comm->me_ = *me;
  return comm;
}

Communicator::~Communicator() {
  if (me_ != portals::kInvalidMeHandle) (void)nic_->Detach(me_);
  eq_.Close();
}

Status Communicator::Send(int dest, std::uint32_t tag, ByteSpan data) {
  if (dest < 0 || dest >= size()) return InvalidArgument("bad destination");
  // Bounded receiver queues: back off and resend on overflow, like the
  // RPC layer.
  int backoff_us = 10;
  for (int attempt = 0; attempt < 10000; ++attempt) {
    Status s = nic_->Put(members_[static_cast<std::size_t>(dest)],
                         kCollectivePortal, MakeMatch(rank_, tag), data);
    if (s.ok() || s.code() != ErrorCode::kResourceExhausted) return s;
    clock_->SleepFor(std::chrono::microseconds(backoff_us));
    backoff_us = std::min(backoff_us * 2, 2000);
  }
  return ResourceExhausted("peer receive queue stayed full");
}

Result<Buffer> Communicator::Recv(int src, std::uint32_t tag,
                                  std::chrono::milliseconds timeout) {
  if (src < 0 || src >= size()) return InvalidArgument("bad source");
  const auto key = std::make_pair(src, tag);
  const util::Clock::TimePoint deadline = clock_->Now() + timeout;
  for (;;) {
    auto it = stash_.find(key);
    if (it != stash_.end() && !it->second.empty()) {
      Buffer out = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) stash_.erase(it);
      return out;
    }
    const util::Clock::TimePoint now = clock_->Now();
    if (now >= deadline) return Timeout("collective receive timed out");
    auto event = eq_.WaitFor(deadline - now);
    if (!event) return Timeout("collective receive timed out");
    const int event_src = static_cast<int>(event->match_bits & 0xFFFF);
    const auto event_tag =
        static_cast<std::uint32_t>(event->match_bits >> 16);
    stash_[std::make_pair(event_src, event_tag)].push_back(
        std::move(event->payload));
  }
}

Status Communicator::Barrier(std::uint32_t tag) {
  // Gather a zero-byte token to rank 0, then broadcast one back.
  auto gathered = Gather(0, tag, {});
  if (!gathered.ok()) return gathered.status();
  Buffer token;
  return Bcast(0, tag + 1, token);
}

Status Communicator::Bcast(int root, std::uint32_t tag, Buffer& data) {
  const int relative = Relative(rank_, root);
  int mask = 1;
  // Receive phase: wait for the parent (if any).
  while (mask < size()) {
    if (relative & mask) {
      auto got = Recv(Absolute(relative - mask, root), tag);
      if (!got.ok()) return got.status();
      data = std::move(*got);
      break;
    }
    mask <<= 1;
  }
  // Forward phase: send to children at decreasing distances.
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < size()) {
      LWFS_RETURN_IF_ERROR(
          Send(Absolute(relative + mask, root), tag, ByteSpan(data)));
    }
    mask >>= 1;
  }
  return OkStatus();
}

Result<std::vector<Buffer>> Communicator::Gather(int root, std::uint32_t tag,
                                                 ByteSpan mine) {
  const int relative = Relative(rank_, root);
  // Accumulate (relative rank -> contribution) for our subtree.
  std::map<int, Buffer> bundle;
  bundle.emplace(relative, Buffer(mine.begin(), mine.end()));

  int mask = 1;
  while (mask < size()) {
    if ((relative & mask) == 0) {
      // We are a parent at this level: absorb the child's subtree.
      if (relative + mask < size()) {
        auto packed = Recv(Absolute(relative + mask, root), tag);
        if (!packed.ok()) return packed.status();
        Decoder dec(*packed);
        auto count = dec.GetU32();
        if (!count.ok()) return count.status();
        for (std::uint32_t i = 0; i < *count; ++i) {
          auto vrank = dec.GetU32();
          auto payload = dec.GetBytes();
          if (!vrank.ok() || !payload.ok()) {
            return Internal("malformed gather bundle");
          }
          bundle.emplace(static_cast<int>(*vrank), std::move(*payload));
        }
      }
      mask <<= 1;
    } else {
      // We are a child: ship the whole subtree to the parent and stop.
      Encoder enc;
      enc.PutU32(static_cast<std::uint32_t>(bundle.size()));
      for (const auto& [vrank, payload] : bundle) {
        enc.PutU32(static_cast<std::uint32_t>(vrank));
        enc.PutBytes(ByteSpan(payload));
      }
      LWFS_RETURN_IF_ERROR(
          Send(Absolute(relative - mask, root), tag, ByteSpan(enc.buffer())));
      return std::vector<Buffer>{};
    }
  }

  // Root: reorder by absolute rank.
  std::vector<Buffer> out(static_cast<std::size_t>(size()));
  for (auto& [vrank, payload] : bundle) {
    out[static_cast<std::size_t>(Absolute(vrank, root))] = std::move(payload);
  }
  return out;
}

Result<Buffer> Communicator::Scatter(int root, std::uint32_t tag,
                                     const std::vector<Buffer>& pieces) {
  const int relative = Relative(rank_, root);
  std::map<int, Buffer> bundle;  // relative rank -> piece, for our subtree
  int recv_mask = 1;

  if (rank_ == root) {
    if (pieces.size() != static_cast<std::size_t>(size())) {
      return InvalidArgument("scatter needs one piece per rank");
    }
    for (int r = 0; r < size(); ++r) {
      bundle.emplace(Relative(r, root), pieces[static_cast<std::size_t>(r)]);
    }
    while (recv_mask < size()) recv_mask <<= 1;
  } else {
    // Receive our subtree's bundle from the parent.
    while (recv_mask < size()) {
      if (relative & recv_mask) {
        auto packed = Recv(Absolute(relative - recv_mask, root), tag);
        if (!packed.ok()) return packed.status();
        Decoder dec(*packed);
        auto count = dec.GetU32();
        if (!count.ok()) return count.status();
        for (std::uint32_t i = 0; i < *count; ++i) {
          auto vrank = dec.GetU32();
          auto payload = dec.GetBytes();
          if (!vrank.ok() || !payload.ok()) {
            return Internal("malformed scatter bundle");
          }
          bundle.emplace(static_cast<int>(*vrank), std::move(*payload));
        }
        break;
      }
      recv_mask <<= 1;
    }
  }

  // Forward sub-bundles to children: child at relative+m owns relative
  // ranks [relative+m, relative+2m).
  for (int m = recv_mask >> 1; m > 0; m >>= 1) {
    const int child = relative + m;
    if (child >= size()) continue;
    Encoder enc;
    std::uint32_t count = 0;
    Encoder entries;
    for (int v = child; v < child + m && v < size(); ++v) {
      auto it = bundle.find(v);
      if (it == bundle.end()) return Internal("scatter bundle hole");
      entries.PutU32(static_cast<std::uint32_t>(v));
      entries.PutBytes(ByteSpan(it->second));
      ++count;
    }
    enc.PutU32(count);
    enc.PutRaw(ByteSpan(entries.buffer()));
    LWFS_RETURN_IF_ERROR(
        Send(Absolute(child, root), tag, ByteSpan(enc.buffer())));
    // Drop what we forwarded.
    for (int v = child; v < child + m && v < size(); ++v) bundle.erase(v);
  }

  auto mine = bundle.find(relative);
  if (mine == bundle.end()) return Internal("scatter lost own piece");
  return std::move(mine->second);
}

}  // namespace lwfs::comm
