// Replica-placement map: which storage servers hold each replicated object.
//
// The naming server hosts this registry (the paper's storage servers are
// policy-free, so placement — a policy — lives with the other client-side
// metadata).  Placement is a pure function of the registry's own allocation
// counter and the deployment shape: no clock reads, no randomness, so a
// VirtualClock run replays bit-identically.  Chains are rack-aware — each
// additional replica prefers a server in a rack none of the chain occupies
// yet (rack = index / rack_size) — which is what makes a single-rack outage
// survivable at replication_factor >= 2.
//
// Staleness model: every chain member is either *current* or *stale*.
// Clients report members that missed a committed write (with the committed
// version); restarted servers report what they actually hold so a repair
// scan racing a restart never sees a phantom-empty server; the background
// chunk replicator clears stale marks once it has copied survivor bytes at
// (or past) the committed version.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "naming/op_log.h"
#include "storage/ids.h"
#include "util/status.h"

namespace lwfs::naming {

struct ReplicaMapOptions {
  /// Storage servers in the deployment.
  std::uint32_t servers = 1;
  /// Default chain length when a placement request passes factor = 0.
  std::uint32_t default_factor = 1;
  /// Servers per rack for placement spread; <= 1 disables rack awareness.
  std::uint32_t rack_size = 2;
  /// Identity of the metadata shard hosting this registry.  Shard i of N
  /// mints oids of the form bit62 | (seq * N + i), so every replicated oid
  /// names its owning shard statelessly (ShardMap::ShardForOid is a modulo)
  /// and shards never collide.  The defaults reproduce the unsharded oid
  /// sequence exactly.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
};

/// One registry entry, snapshot form.
struct ReplicaPlacement {
  storage::ObjectId oid;
  storage::ContainerId cid;
  std::vector<std::uint32_t> chain;  // server indices, head first
  /// Highest version any member is known to have committed (0 until a
  /// degraded write forces the registry to start tracking it).
  std::uint64_t committed_version = 0;
  std::vector<std::uint32_t> stale;  // members needing repair, ascending
};

struct ReplicaAuditCounts {
  std::uint64_t objects = 0;
  std::uint64_t fully_replicated = 0;
  std::uint64_t under_replicated = 0;
  std::uint64_t stale_members = 0;
};

class ReplicaMap {
 public:
  /// `oplog`, when set, records every committed registry mutation before
  /// the mutating call returns (see NamingService: commit-before-ack, so a
  /// warm standby replaying the log loses nothing acknowledged).
  explicit ReplicaMap(ReplicaMapOptions options, OpLog* oplog = nullptr);

  /// Allocate a replicated oid (kReplicatedOidBit | counter) and its chain.
  /// The chain starts at `preferred % servers` and spreads across racks.
  Result<ReplicaPlacement> Place(storage::ContainerId cid,
                                 std::uint32_t preferred,
                                 std::uint32_t factor);

  /// Registry read path.  Known-stale members are demoted to the back of
  /// the returned chain (stable order within each group) so hedged and
  /// failover reads try current members first; `stale_demotions()` counts
  /// lookups that reordered.  Snapshot()/UnderReplicated() keep registry
  /// order — the repair scanner wants the truth, not the read preference.
  Result<ReplicaPlacement> Lookup(storage::ObjectId oid) const;

  /// Degraded-write report: `stale` members missed the write committed at
  /// `version` on the rest of the chain.
  Status ReportStale(storage::ObjectId oid, std::uint64_t version,
                     const std::vector<std::uint32_t>& stale);

  /// Repair completion: `member` now holds the object at `version`.  The
  /// stale mark clears only if that catches the committed version.
  Status MarkRepaired(storage::ObjectId oid, std::uint32_t member,
                      std::uint64_t version);

  /// Restart re-registration: `held` maps oid -> version for every
  /// replicated object `server` still holds.  Entries placing the server
  /// that are missing from `held` are marked stale (the store lost them);
  /// held-at-committed-version entries are marked current.
  void ReportHoldings(
      std::uint32_t server,
      const std::vector<std::pair<storage::ObjectId, std::uint64_t>>& held);

  [[nodiscard]] ReplicaAuditCounts Audit() const;

  /// Entries with at least one stale member, for the repair scanner.
  [[nodiscard]] std::vector<ReplicaPlacement> UnderReplicated() const;
  /// Every entry (the scanner's full-scan mode).
  [[nodiscard]] std::vector<ReplicaPlacement> Snapshot() const;

  [[nodiscard]] const ReplicaMapOptions& options() const { return options_; }

  /// Lookups whose chain was reordered because a member was stale.
  [[nodiscard]] std::uint64_t stale_demotions() const;

  /// Standby replay: apply one registry op-log record without re-logging
  /// (call only while no op log is attached; see SetOpLog).
  Status Replay(const OpRecord& record);

  /// Attach (or detach) the committed-mutation log; a standby attaches it
  /// only after catching up so replay never re-logs.
  void SetOpLog(OpLog* oplog);

 private:
  struct Entry {
    storage::ContainerId cid;
    std::vector<std::uint32_t> chain;
    std::uint64_t committed_version = 0;
    std::set<std::uint32_t> stale;
  };

  [[nodiscard]] ReplicaPlacement ToPlacement(storage::ObjectId oid,
                                             const Entry& entry) const;

  const ReplicaMapOptions options_;
  mutable std::mutex mutex_;
  std::uint64_t next_seq_ = 1;
  std::map<storage::ObjectId, Entry> entries_;
  OpLog* oplog_ = nullptr;  // guarded by mutex_; appended under the lock
  mutable std::uint64_t stale_demotions_ = 0;
};

}  // namespace lwfs::naming
