#include "naming/naming.h"

namespace lwfs::naming {

Result<std::vector<std::string>> SplitPath(std::string_view path) {
  if (path.empty() || path.front() != '/') {
    return InvalidArgument("path must be absolute");
  }
  std::vector<std::string> parts;
  std::size_t pos = 1;
  while (pos <= path.size()) {
    const std::size_t next = path.find('/', pos);
    const std::string_view part =
        path.substr(pos, next == std::string_view::npos ? std::string_view::npos
                                                        : next - pos);
    if (next == std::string_view::npos && part.empty()) break;  // trailing '/'
    if (part.empty() || part == "." || part == "..") {
      return InvalidArgument("invalid path component");
    }
    parts.emplace_back(part);
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  return parts;
}

NamingService::NamingService(std::string participant_name, OpLog* oplog)
    : root_(std::make_unique<Node>()),
      participant_(std::move(participant_name)),
      oplog_(oplog) {}

void NamingService::SetOpLog(OpLog* oplog) {
  std::lock_guard<std::mutex> lock(mutex_);
  oplog_ = oplog;
}

NamingService::Node* NamingService::WalkLocked(
    const std::vector<std::string>& parts) const {
  Node* node = root_.get();
  for (const std::string& part : parts) {
    auto it = node->children.find(part);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

Status NamingService::Mkdir(std::string_view path, bool recursive) {
  auto parts = SplitPath(path);
  if (!parts.ok()) return parts.status();
  if (parts->empty()) return AlreadyExists("root exists");
  std::lock_guard<std::mutex> lock(mutex_);
  Node* node = root_.get();
  for (std::size_t i = 0; i < parts->size(); ++i) {
    const std::string& part = (*parts)[i];
    auto it = node->children.find(part);
    const bool last = i + 1 == parts->size();
    if (it == node->children.end()) {
      if (!last && !recursive) return NotFound("missing parent directory");
      auto child = std::make_unique<Node>();
      Node* raw = child.get();
      node->children.emplace(part, std::move(child));
      node = raw;
    } else {
      if (!it->second->is_directory) return AlreadyExists("path is a link");
      if (last) return AlreadyExists("directory exists");
      node = it->second.get();
    }
  }
  if (oplog_ != nullptr) {
    OpRecord rec;
    rec.kind = OpRecord::Kind::kMkdir;
    rec.a = std::string(path);
    rec.flag = recursive;
    oplog_->Append(std::move(rec));
  }
  return OkStatus();
}

Status NamingService::Link(std::string_view path,
                           const storage::ObjectRef& ref) {
  auto parts = SplitPath(path);
  if (!parts.ok()) return parts.status();
  if (parts->empty()) return InvalidArgument("cannot link root");
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> parent(parts->begin(), parts->end() - 1);
  Node* dir = WalkLocked(parent);
  if (dir == nullptr || !dir->is_directory) {
    return NotFound("parent directory missing");
  }
  const std::string& leaf = parts->back();
  if (dir->children.contains(leaf)) return AlreadyExists("name exists");
  auto node = std::make_unique<Node>();
  node->is_directory = false;
  node->ref = ref;
  dir->children.emplace(leaf, std::move(node));
  ++links_;
  if (oplog_ != nullptr) {
    OpRecord rec;
    rec.kind = OpRecord::Kind::kLink;
    rec.a = std::string(path);
    rec.ref = ref;
    oplog_->Append(std::move(rec));
  }
  return OkStatus();
}

Status NamingService::StageLink(txn::TxnId txid, std::string_view path,
                                const storage::ObjectRef& ref) {
  // Validate eagerly so obvious errors surface before commit time.
  auto parts = SplitPath(path);
  if (!parts.ok()) return parts.status();
  if (parts->empty()) return InvalidArgument("cannot link root");
  participant_.Join(txid);
  std::string owned_path(path);
  participant_.StageApply(
      txid, [this, owned_path, ref] { return Link(owned_path, ref); });
  return OkStatus();
}

Status NamingService::StageUnlink(txn::TxnId txid, std::string_view path) {
  // Validate eagerly so obvious errors surface before commit time; the name
  // stays visible (and unlinked-able by others) until the decision lands —
  // the coordinator's prepare vote is what fences concurrent writers.
  auto parts = SplitPath(path);
  if (!parts.ok()) return parts.status();
  if (parts->empty()) return InvalidArgument("cannot unlink root");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Node* node = WalkLocked(*parts);
    if (node == nullptr) return NotFound("no such name");
    if (node->is_directory) return InvalidArgument("is a directory");
  }
  participant_.Join(txid);
  std::string owned_path(path);
  participant_.StageApply(txid,
                          [this, owned_path] { return Unlink(owned_path); });
  return OkStatus();
}

Result<storage::ObjectRef> NamingService::Lookup(std::string_view path) const {
  auto parts = SplitPath(path);
  if (!parts.ok()) return parts.status();
  std::lock_guard<std::mutex> lock(mutex_);
  Node* node = WalkLocked(*parts);
  if (node == nullptr) return NotFound("no such name");
  if (node->is_directory || !node->ref) return InvalidArgument("not a link");
  return *node->ref;
}

Status NamingService::Unlink(std::string_view path) {
  auto parts = SplitPath(path);
  if (!parts.ok()) return parts.status();
  if (parts->empty()) return InvalidArgument("cannot unlink root");
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> parent(parts->begin(), parts->end() - 1);
  Node* dir = WalkLocked(parent);
  if (dir == nullptr) return NotFound("no such path");
  auto it = dir->children.find(parts->back());
  if (it == dir->children.end()) return NotFound("no such name");
  if (it->second->is_directory) return InvalidArgument("is a directory");
  dir->children.erase(it);
  if (oplog_ != nullptr) {
    OpRecord rec;
    rec.kind = OpRecord::Kind::kUnlink;
    rec.a = std::string(path);
    oplog_->Append(std::move(rec));
  }
  return OkStatus();
}

Status NamingService::Rmdir(std::string_view path) {
  auto parts = SplitPath(path);
  if (!parts.ok()) return parts.status();
  if (parts->empty()) return InvalidArgument("cannot remove root");
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> parent(parts->begin(), parts->end() - 1);
  Node* dir = WalkLocked(parent);
  if (dir == nullptr) return NotFound("no such path");
  auto it = dir->children.find(parts->back());
  if (it == dir->children.end()) return NotFound("no such directory");
  if (!it->second->is_directory) return InvalidArgument("not a directory");
  if (!it->second->children.empty()) {
    return FailedPrecondition("directory not empty");
  }
  dir->children.erase(it);
  if (oplog_ != nullptr) {
    OpRecord rec;
    rec.kind = OpRecord::Kind::kRmdir;
    rec.a = std::string(path);
    oplog_->Append(std::move(rec));
  }
  return OkStatus();
}

Status NamingService::Rename(std::string_view from, std::string_view to) {
  auto from_parts = SplitPath(from);
  if (!from_parts.ok()) return from_parts.status();
  auto to_parts = SplitPath(to);
  if (!to_parts.ok()) return to_parts.status();
  if (from_parts->empty() || to_parts->empty()) {
    return InvalidArgument("cannot rename root");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> from_parent(from_parts->begin(),
                                       from_parts->end() - 1);
  std::vector<std::string> to_parent(to_parts->begin(), to_parts->end() - 1);
  Node* src_dir = WalkLocked(from_parent);
  Node* dst_dir = WalkLocked(to_parent);
  if (src_dir == nullptr || dst_dir == nullptr) {
    return NotFound("missing parent directory");
  }
  auto src = src_dir->children.find(from_parts->back());
  if (src == src_dir->children.end()) return NotFound("no such name");
  if (dst_dir->children.contains(to_parts->back())) {
    return AlreadyExists("destination exists");
  }
  dst_dir->children.emplace(to_parts->back(), std::move(src->second));
  src_dir->children.erase(src);
  if (oplog_ != nullptr) {
    OpRecord rec;
    rec.kind = OpRecord::Kind::kRename;
    rec.a = std::string(from);
    rec.b = std::string(to);
    oplog_->Append(std::move(rec));
  }
  return OkStatus();
}

Result<std::vector<DirEntry>> NamingService::List(
    std::string_view dir_path) const {
  auto parts = SplitPath(dir_path);
  if (!parts.ok()) return parts.status();
  std::lock_guard<std::mutex> lock(mutex_);
  Node* node = WalkLocked(*parts);
  if (node == nullptr) return NotFound("no such path");
  if (!node->is_directory) return InvalidArgument("not a directory");
  std::vector<DirEntry> out;
  out.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    out.push_back(DirEntry{name, child->is_directory, child->ref});
  }
  return out;
}

bool NamingService::Exists(std::string_view path) const {
  auto parts = SplitPath(path);
  if (!parts.ok()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return WalkLocked(*parts) != nullptr;
}

bool NamingService::IsDirectory(std::string_view path) const {
  auto parts = SplitPath(path);
  if (!parts.ok()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  Node* node = WalkLocked(*parts);
  return node != nullptr && node->is_directory;
}

Status NamingService::Replay(const OpRecord& record) {
  switch (record.kind) {
    case OpRecord::Kind::kMkdir:
      return Mkdir(record.a, record.flag);
    case OpRecord::Kind::kLink:
      return Link(record.a, record.ref);
    case OpRecord::Kind::kUnlink:
      return Unlink(record.a);
    case OpRecord::Kind::kRmdir:
      return Rmdir(record.a);
    case OpRecord::Kind::kRename:
      return Rename(record.a, record.b);
    default:
      return InvalidArgument("not a namespace record");
  }
}

std::uint64_t NamingService::link_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return links_;
}

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x4C4E414D;  // "LNAM"

// Pre-order encoding: each node is (name, is_directory, [ref]), directories
// followed by their child count.
void EncodeNode(Encoder& enc, const std::string& name, bool is_directory,
                const std::optional<storage::ObjectRef>& ref) {
  enc.PutString(name);
  enc.PutBool(is_directory);
  enc.PutBool(ref.has_value());
  if (ref) {
    enc.PutU64(ref->cid.value);
    enc.PutU32(ref->server_index);
    enc.PutU64(ref->oid.value);
  }
}

}  // namespace

Buffer NamingService::Serialize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Encoder enc;
  enc.PutU32(kSnapshotMagic);
  // Iterative pre-order walk; each frame emits one node + child count.
  struct Frame {
    const Node* node;
    std::string name;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{root_.get(), ""});
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    EncodeNode(enc, frame.name, frame.node->is_directory, frame.node->ref);
    enc.PutU32(static_cast<std::uint32_t>(frame.node->children.size()));
    // Reverse order so children pop in forward order (cosmetic).
    for (auto it = frame.node->children.rbegin();
         it != frame.node->children.rend(); ++it) {
      stack.push_back(Frame{it->second.get(), it->first});
    }
  }
  return std::move(enc).Take();
}

Status NamingService::Restore(ByteSpan snapshot) {
  Decoder dec(snapshot);
  auto magic = dec.GetU32();
  if (!magic.ok() || *magic != kSnapshotMagic) {
    return InvalidArgument("bad namespace snapshot");
  }

  // Rebuild into a staging tree first so a corrupt snapshot cannot destroy
  // the live namespace.
  struct Pending {
    Node* node;
    std::uint32_t children_left;
  };
  auto new_root = std::make_unique<Node>();
  std::uint64_t links = 0;
  std::vector<Pending> stack;

  // Root frame.
  auto root_name = dec.GetString();
  auto root_is_dir = dec.GetBool();
  auto root_has_ref = dec.GetBool();
  if (!root_name.ok() || !root_is_dir.ok() || !root_has_ref.ok() ||
      *root_has_ref) {
    return InvalidArgument("corrupt snapshot root");
  }
  auto root_children = dec.GetU32();
  if (!root_children.ok()) return InvalidArgument("corrupt snapshot root");
  stack.push_back(Pending{new_root.get(), *root_children});

  while (!stack.empty()) {
    if (stack.back().children_left == 0) {
      stack.pop_back();
      continue;
    }
    --stack.back().children_left;
    Node* parent = stack.back().node;

    auto name = dec.GetString();
    auto is_dir = dec.GetBool();
    auto has_ref = dec.GetBool();
    if (!name.ok() || !is_dir.ok() || !has_ref.ok() || name->empty()) {
      return InvalidArgument("corrupt snapshot node");
    }
    auto child = std::make_unique<Node>();
    child->is_directory = *is_dir;
    if (*has_ref) {
      auto cid = dec.GetU64();
      auto server = dec.GetU32();
      auto oid = dec.GetU64();
      if (!cid.ok() || !server.ok() || !oid.ok()) {
        return InvalidArgument("corrupt snapshot ref");
      }
      child->ref = storage::ObjectRef{storage::ContainerId{*cid}, *server,
                                      storage::ObjectId{*oid}};
      ++links;
    }
    auto children = dec.GetU32();
    if (!children.ok()) return InvalidArgument("corrupt snapshot count");
    Node* raw = child.get();
    if (parent->children.contains(*name)) {
      return InvalidArgument("duplicate name in snapshot");
    }
    parent->children.emplace(std::move(*name), std::move(child));
    stack.push_back(Pending{raw, *children});
  }
  if (!dec.exhausted()) return InvalidArgument("trailing snapshot bytes");

  std::lock_guard<std::mutex> lock(mutex_);
  root_ = std::move(new_root);
  links_ = links;
  return OkStatus();
}

}  // namespace lwfs::naming
