// Consistent-hash shard map for the metadata plane.
//
// Partitions the namespace across N naming-server shards with a fixed
// virtual-node hash ring: shard i owns every key whose hash lands on one of
// its ring arcs.  The ring points are a pure function of (shard index,
// vnode index), so two maps built with the same shard count place every key
// identically (bit-determinism), and growing from N to N+1 shards only adds
// points — keys move *to* the new shard or not at all (minimal movement).
//
// Each shard entry carries the active primary's nid plus an optional warm
// standby.  `Promote` swaps them and bumps the epoch; clients cache
// epoch-stamped snapshots and refresh on kWrongShard.
//
// Directory placement: directories are replicated on every shard (clients
// fan Mkdir/Rmdir/List out), only leaf links are partitioned by full-path
// hash — so any shard can resolve its own links without remote parent
// lookups.
#pragma once

#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "portals/portals.h"
#include "storage/ids.h"
#include "util/status.h"

namespace lwfs::naming {

class ShardMap {
 public:
  static constexpr std::uint32_t kDefaultVnodes = 64;

  struct Shard {
    portals::Nid primary = portals::kInvalidNid;
    portals::Nid standby = portals::kInvalidNid;
  };

  struct Snapshot {
    std::uint64_t epoch = 0;
    std::vector<Shard> shards;
  };

  explicit ShardMap(std::uint32_t vnodes = kDefaultVnodes);

  /// Register the next shard (build time, before traffic).
  void AddShard(portals::Nid primary,
                portals::Nid standby = portals::kInvalidNid);

  [[nodiscard]] std::uint32_t shard_count() const;
  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] Snapshot snapshot() const;

  /// Owning shard for a full path (leaf links; directories live everywhere).
  [[nodiscard]] std::uint32_t ShardForPath(std::string_view path) const;

  /// Owning shard for a replicated oid.  Shards mint disjoint oid spaces
  /// (seq * shard_count + shard_index under bit 62), so ownership decodes
  /// statelessly from the oid itself.
  [[nodiscard]] std::uint32_t ShardForOid(storage::ObjectId oid) const;

  [[nodiscard]] bool IsActivePrimary(std::uint32_t shard,
                                     portals::Nid nid) const;
  [[nodiscard]] bool IsStandby(std::uint32_t shard, portals::Nid nid) const;

  /// Fail the shard over to `nid` (its registered standby): the standby
  /// becomes primary, the deposed primary becomes the (dead) standby, and
  /// the epoch advances so cached client snapshots go stale.
  Status Promote(std::uint32_t shard, portals::Nid nid);

  /// FNV-1a 64 of the path bytes (deterministic, seed-free).
  static std::uint64_t HashPath(std::string_view path);

  /// Ring lookup for `hash` over `shard_count` shards — pure function, used
  /// by the determinism/minimal-movement tests and the instance methods.
  static std::uint32_t ShardForHash(std::uint64_t hash,
                                    std::uint32_t shard_count,
                                    std::uint32_t vnodes = kDefaultVnodes);

 private:
  const std::uint32_t vnodes_;
  mutable std::mutex mutex_;
  std::uint64_t epoch_ = 1;
  std::vector<Shard> shards_;
};

}  // namespace lwfs::naming
