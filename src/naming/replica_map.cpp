#include "naming/replica_map.h"

#include <algorithm>

namespace lwfs::naming {

namespace {
ReplicaMapOptions Sanitize(ReplicaMapOptions options) {
  if (options.servers == 0) options.servers = 1;
  if (options.default_factor == 0) options.default_factor = 1;
  if (options.shard_count == 0) options.shard_count = 1;
  if (options.shard_index >= options.shard_count) options.shard_index = 0;
  return options;
}
}  // namespace

ReplicaMap::ReplicaMap(ReplicaMapOptions options, OpLog* oplog)
    : options_(Sanitize(options)), oplog_(oplog) {}

void ReplicaMap::SetOpLog(OpLog* oplog) {
  std::lock_guard<std::mutex> lock(mutex_);
  oplog_ = oplog;
}

Result<ReplicaPlacement> ReplicaMap::Place(storage::ContainerId cid,
                                           std::uint32_t preferred,
                                           std::uint32_t factor) {
  if (factor == 0) factor = options_.default_factor;
  factor = std::min(factor, options_.servers);

  // Greedy rack-aware chain: start at the preferred server, then repeatedly
  // take the next server around the ring whose rack the chain does not
  // occupy yet, falling back to plain ring order once every rack is used.
  const std::uint32_t n = options_.servers;
  const std::uint32_t rack_size = std::max<std::uint32_t>(options_.rack_size, 1);
  auto rack_of = [rack_size](std::uint32_t server) { return server / rack_size; };

  std::vector<std::uint32_t> chain;
  chain.reserve(factor);
  chain.push_back(preferred % n);
  while (chain.size() < factor) {
    std::uint32_t pick = n;  // sentinel: nothing found yet
    for (std::uint32_t off = 1; off < n && pick == n; ++off) {
      const std::uint32_t candidate = (chain.front() + off) % n;
      if (std::find(chain.begin(), chain.end(), candidate) != chain.end()) {
        continue;
      }
      bool rack_clash = false;
      for (std::uint32_t member : chain) {
        rack_clash |= rack_of(member) == rack_of(candidate);
      }
      if (!rack_clash) pick = candidate;
    }
    if (pick == n) {
      // Every unused server shares a rack with the chain; take ring order.
      for (std::uint32_t off = 1; off < n && pick == n; ++off) {
        const std::uint32_t candidate = (chain.front() + off) % n;
        if (std::find(chain.begin(), chain.end(), candidate) == chain.end()) {
          pick = candidate;
        }
      }
    }
    if (pick == n) break;  // factor > distinct servers; clamped above
    chain.push_back(pick);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  // Shard-striped sequence: shard i of N mints seq*N+i, so oid % N names
  // the owning shard and shards never collide (N=1 degenerates to the
  // original dense sequence).
  const storage::ObjectId oid{
      storage::kReplicatedOidBit |
      (next_seq_ * options_.shard_count + options_.shard_index)};
  ++next_seq_;
  Entry entry;
  entry.cid = cid;
  entry.chain = chain;
  auto [it, inserted] = entries_.emplace(oid, std::move(entry));
  if (!inserted) return Internal("replica id collision");
  if (oplog_ != nullptr) {
    OpRecord rec;
    rec.kind = OpRecord::Kind::kReplicaPlace;
    rec.u0 = cid.value;
    rec.s0 = preferred;
    rec.s1 = factor;
    rec.u1 = oid.value;
    oplog_->Append(std::move(rec));
  }
  return ToPlacement(oid, it->second);
}

Result<ReplicaPlacement> ReplicaMap::Lookup(storage::ObjectId oid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(oid);
  if (it == entries_.end()) return NotFound("unknown replicated object");
  ReplicaPlacement placement = ToPlacement(oid, it->second);
  // Read-path ordering: demote known-stale members to the back (stable
  // within each group) so hedged/failover readers try current bytes first.
  if (!it->second.stale.empty()) {
    std::stable_partition(placement.chain.begin(), placement.chain.end(),
                          [&](std::uint32_t member) {
                            return it->second.stale.count(member) == 0;
                          });
    if (placement.chain != it->second.chain) ++stale_demotions_;
  }
  return placement;
}

Status ReplicaMap::ReportStale(storage::ObjectId oid, std::uint64_t version,
                               const std::vector<std::uint32_t>& stale) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(oid);
  if (it == entries_.end()) return NotFound("unknown replicated object");
  Entry& entry = it->second;
  entry.committed_version = std::max(entry.committed_version, version);
  for (std::uint32_t member : stale) {
    if (std::find(entry.chain.begin(), entry.chain.end(), member) !=
        entry.chain.end()) {
      entry.stale.insert(member);
    }
  }
  if (oplog_ != nullptr) {
    OpRecord rec;
    rec.kind = OpRecord::Kind::kReplicaReportStale;
    rec.u0 = oid.value;
    rec.u1 = version;
    rec.members = stale;
    oplog_->Append(std::move(rec));
  }
  return OkStatus();
}

Status ReplicaMap::MarkRepaired(storage::ObjectId oid, std::uint32_t member,
                                std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(oid);
  if (it == entries_.end()) return NotFound("unknown replicated object");
  Entry& entry = it->second;
  if (version >= entry.committed_version) entry.stale.erase(member);
  if (oplog_ != nullptr) {
    OpRecord rec;
    rec.kind = OpRecord::Kind::kReplicaMarkRepaired;
    rec.u0 = oid.value;
    rec.u1 = version;
    rec.s0 = member;
    oplog_->Append(std::move(rec));
  }
  return OkStatus();
}

void ReplicaMap::ReportHoldings(
    std::uint32_t server,
    const std::vector<std::pair<storage::ObjectId, std::uint64_t>>& held) {
  std::map<storage::ObjectId, std::uint64_t> by_oid;
  for (const auto& [oid, version] : held) by_oid[oid] = version;

  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [oid, entry] : entries_) {
    if (std::find(entry.chain.begin(), entry.chain.end(), server) ==
        entry.chain.end()) {
      continue;
    }
    auto it = by_oid.find(oid);
    if (it == by_oid.end()) {
      // The store lost the object outright (or never created it).
      entry.stale.insert(server);
    } else if (it->second >= entry.committed_version) {
      entry.stale.erase(server);
    } else {
      entry.stale.insert(server);
    }
  }
  if (oplog_ != nullptr) {
    OpRecord rec;
    rec.kind = OpRecord::Kind::kReplicaHoldings;
    rec.s0 = server;
    rec.pairs.reserve(held.size());
    for (const auto& [oid, version] : held) {
      rec.pairs.emplace_back(oid.value, version);
    }
    oplog_->Append(std::move(rec));
  }
}

ReplicaAuditCounts ReplicaMap::Audit() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ReplicaAuditCounts counts;
  counts.objects = entries_.size();
  for (const auto& [oid, entry] : entries_) {
    (void)oid;
    if (entry.stale.empty()) {
      ++counts.fully_replicated;
    } else {
      ++counts.under_replicated;
      counts.stale_members += entry.stale.size();
    }
  }
  return counts;
}

std::vector<ReplicaPlacement> ReplicaMap::UnderReplicated() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ReplicaPlacement> out;
  for (const auto& [oid, entry] : entries_) {
    if (!entry.stale.empty()) out.push_back(ToPlacement(oid, entry));
  }
  return out;
}

std::vector<ReplicaPlacement> ReplicaMap::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ReplicaPlacement> out;
  out.reserve(entries_.size());
  for (const auto& [oid, entry] : entries_) out.push_back(ToPlacement(oid, entry));
  return out;
}

std::uint64_t ReplicaMap::stale_demotions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stale_demotions_;
}

Status ReplicaMap::Replay(const OpRecord& record) {
  switch (record.kind) {
    case OpRecord::Kind::kReplicaPlace: {
      auto placement = Place(storage::ContainerId{record.u0}, record.s0,
                             record.s1);
      if (!placement.ok()) return placement.status();
      if (placement->oid.value != record.u1) {
        return Internal("replayed placement minted a different oid");
      }
      return OkStatus();
    }
    case OpRecord::Kind::kReplicaReportStale:
      return ReportStale(storage::ObjectId{record.u0}, record.u1,
                         record.members);
    case OpRecord::Kind::kReplicaMarkRepaired:
      return MarkRepaired(storage::ObjectId{record.u0}, record.s0, record.u1);
    case OpRecord::Kind::kReplicaHoldings: {
      std::vector<std::pair<storage::ObjectId, std::uint64_t>> held;
      held.reserve(record.pairs.size());
      for (const auto& [oid, version] : record.pairs) {
        held.emplace_back(storage::ObjectId{oid}, version);
      }
      ReportHoldings(record.s0, held);
      return OkStatus();
    }
    default:
      return InvalidArgument("not a registry record");
  }
}

ReplicaPlacement ReplicaMap::ToPlacement(storage::ObjectId oid,
                                         const Entry& entry) const {
  ReplicaPlacement placement;
  placement.oid = oid;
  placement.cid = entry.cid;
  placement.chain = entry.chain;
  placement.committed_version = entry.committed_version;
  placement.stale.assign(entry.stale.begin(), entry.stale.end());
  return placement;
}

}  // namespace lwfs::naming
