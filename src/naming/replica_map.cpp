#include "naming/replica_map.h"

#include <algorithm>

namespace lwfs::naming {

namespace {
ReplicaMapOptions Sanitize(ReplicaMapOptions options) {
  if (options.servers == 0) options.servers = 1;
  if (options.default_factor == 0) options.default_factor = 1;
  return options;
}
}  // namespace

ReplicaMap::ReplicaMap(ReplicaMapOptions options)
    : options_(Sanitize(options)) {}

Result<ReplicaPlacement> ReplicaMap::Place(storage::ContainerId cid,
                                           std::uint32_t preferred,
                                           std::uint32_t factor) {
  if (factor == 0) factor = options_.default_factor;
  factor = std::min(factor, options_.servers);

  // Greedy rack-aware chain: start at the preferred server, then repeatedly
  // take the next server around the ring whose rack the chain does not
  // occupy yet, falling back to plain ring order once every rack is used.
  const std::uint32_t n = options_.servers;
  const std::uint32_t rack_size = std::max<std::uint32_t>(options_.rack_size, 1);
  auto rack_of = [rack_size](std::uint32_t server) { return server / rack_size; };

  std::vector<std::uint32_t> chain;
  chain.reserve(factor);
  chain.push_back(preferred % n);
  while (chain.size() < factor) {
    std::uint32_t pick = n;  // sentinel: nothing found yet
    for (std::uint32_t off = 1; off < n && pick == n; ++off) {
      const std::uint32_t candidate = (chain.front() + off) % n;
      if (std::find(chain.begin(), chain.end(), candidate) != chain.end()) {
        continue;
      }
      bool rack_clash = false;
      for (std::uint32_t member : chain) {
        rack_clash |= rack_of(member) == rack_of(candidate);
      }
      if (!rack_clash) pick = candidate;
    }
    if (pick == n) {
      // Every unused server shares a rack with the chain; take ring order.
      for (std::uint32_t off = 1; off < n && pick == n; ++off) {
        const std::uint32_t candidate = (chain.front() + off) % n;
        if (std::find(chain.begin(), chain.end(), candidate) == chain.end()) {
          pick = candidate;
        }
      }
    }
    if (pick == n) break;  // factor > distinct servers; clamped above
    chain.push_back(pick);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const storage::ObjectId oid{storage::kReplicatedOidBit | next_seq_++};
  Entry entry;
  entry.cid = cid;
  entry.chain = chain;
  auto [it, inserted] = entries_.emplace(oid, std::move(entry));
  if (!inserted) return Internal("replica id collision");
  return ToPlacement(oid, it->second);
}

Result<ReplicaPlacement> ReplicaMap::Lookup(storage::ObjectId oid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(oid);
  if (it == entries_.end()) return NotFound("unknown replicated object");
  return ToPlacement(oid, it->second);
}

Status ReplicaMap::ReportStale(storage::ObjectId oid, std::uint64_t version,
                               const std::vector<std::uint32_t>& stale) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(oid);
  if (it == entries_.end()) return NotFound("unknown replicated object");
  Entry& entry = it->second;
  entry.committed_version = std::max(entry.committed_version, version);
  for (std::uint32_t member : stale) {
    if (std::find(entry.chain.begin(), entry.chain.end(), member) !=
        entry.chain.end()) {
      entry.stale.insert(member);
    }
  }
  return OkStatus();
}

Status ReplicaMap::MarkRepaired(storage::ObjectId oid, std::uint32_t member,
                                std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(oid);
  if (it == entries_.end()) return NotFound("unknown replicated object");
  Entry& entry = it->second;
  if (version >= entry.committed_version) entry.stale.erase(member);
  return OkStatus();
}

void ReplicaMap::ReportHoldings(
    std::uint32_t server,
    const std::vector<std::pair<storage::ObjectId, std::uint64_t>>& held) {
  std::map<storage::ObjectId, std::uint64_t> by_oid;
  for (const auto& [oid, version] : held) by_oid[oid] = version;

  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [oid, entry] : entries_) {
    if (std::find(entry.chain.begin(), entry.chain.end(), server) ==
        entry.chain.end()) {
      continue;
    }
    auto it = by_oid.find(oid);
    if (it == by_oid.end()) {
      // The store lost the object outright (or never created it).
      entry.stale.insert(server);
    } else if (it->second >= entry.committed_version) {
      entry.stale.erase(server);
    } else {
      entry.stale.insert(server);
    }
  }
}

ReplicaAuditCounts ReplicaMap::Audit() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ReplicaAuditCounts counts;
  counts.objects = entries_.size();
  for (const auto& [oid, entry] : entries_) {
    (void)oid;
    if (entry.stale.empty()) {
      ++counts.fully_replicated;
    } else {
      ++counts.under_replicated;
      counts.stale_members += entry.stale.size();
    }
  }
  return counts;
}

std::vector<ReplicaPlacement> ReplicaMap::UnderReplicated() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ReplicaPlacement> out;
  for (const auto& [oid, entry] : entries_) {
    if (!entry.stale.empty()) out.push_back(ToPlacement(oid, entry));
  }
  return out;
}

std::vector<ReplicaPlacement> ReplicaMap::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ReplicaPlacement> out;
  out.reserve(entries_.size());
  for (const auto& [oid, entry] : entries_) out.push_back(ToPlacement(oid, entry));
  return out;
}

ReplicaPlacement ReplicaMap::ToPlacement(storage::ObjectId oid,
                                         const Entry& entry) const {
  ReplicaPlacement placement;
  placement.oid = oid;
  placement.cid = entry.cid;
  placement.chain = entry.chain;
  placement.committed_version = entry.committed_version;
  placement.stale.assign(entry.stale.begin(), entry.stale.end());
  return placement;
}

}  // namespace lwfs::naming
