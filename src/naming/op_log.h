// Metadata operation log: the journal a warm standby tails.
//
// Every *committed* namespace or replica-registry mutation on a shard
// primary is appended here before the operation is acknowledged, so a
// standby that replays the log to its end reconstructs exactly the
// committed state — nothing a client saw succeed can be lost across a
// takeover.  Prepared-but-undecided 2PC state is deliberately NOT logged:
// it is volatile by the participant contract and resolves via the
// coordinator's presumed-abort recovery, the same way a primary restart
// resolves it.
//
// The log is an in-process structure (the deployment's shared memory);
// a durable deployment would back it with a journal object the same way
// txn::Journal is an object on a storage server.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "storage/ids.h"

namespace lwfs::naming {

/// One committed mutation.  A single record type covers both the namespace
/// tree and the replica registry so a shard's standby replays one ordered
/// stream; unused fields stay at their defaults.
struct OpRecord {
  enum class Kind : std::uint8_t {
    kMkdir,               // a = path, flag = recursive
    kLink,                // a = path, ref
    kUnlink,              // a = path
    kRmdir,               // a = path
    kRename,              // a = from, b = to
    kReplicaPlace,        // u0 = cid, s0 = preferred, s1 = factor, u1 = oid
    kReplicaReportStale,  // u0 = oid, u1 = version, members = stale
    kReplicaMarkRepaired, // u0 = oid, u1 = version, s0 = member
    kReplicaHoldings,     // s0 = server, pairs = (oid, version)
  };

  Kind kind = Kind::kMkdir;
  std::string a;
  std::string b;
  bool flag = false;
  storage::ObjectRef ref{};
  std::uint64_t u0 = 0;
  std::uint64_t u1 = 0;
  std::uint32_t s0 = 0;
  std::uint32_t s1 = 0;
  std::vector<std::uint32_t> members;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
};

class OpLog {
 public:
  void Append(OpRecord record) {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(std::move(record));
  }

  [[nodiscard]] std::uint64_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_.size();
  }

  /// Copy of every record at index >= `cursor`, in append order.
  [[nodiscard]] std::vector<OpRecord> ReadFrom(std::uint64_t cursor) const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cursor >= records_.size()) return {};
    return {records_.begin() + static_cast<std::ptrdiff_t>(cursor),
            records_.end()};
  }

 private:
  mutable std::mutex mutex_;
  std::vector<OpRecord> records_;
};

}  // namespace lwfs::naming
