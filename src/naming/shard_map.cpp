#include "naming/shard_map.h"

namespace lwfs::naming {

namespace {

// SplitMix64 finalizer: the ring-point generator.  Seed-free and
// platform-independent, so placement is bit-identical everywhere.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Ring point for (shard, vnode): a pure function independent of the total
// shard count, which is what makes growth minimal-movement — new shards add
// points, existing points never move.
std::uint64_t RingPoint(std::uint32_t shard, std::uint32_t vnode) {
  return Mix64((static_cast<std::uint64_t>(shard) << 32) |
               (static_cast<std::uint64_t>(vnode) + 1));
}

}  // namespace

ShardMap::ShardMap(std::uint32_t vnodes)
    : vnodes_(vnodes == 0 ? 1 : vnodes) {}

void ShardMap::AddShard(portals::Nid primary, portals::Nid standby) {
  std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(Shard{primary, standby});
}

std::uint32_t ShardMap::shard_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::uint32_t>(shards_.size());
}

std::uint64_t ShardMap::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

ShardMap::Snapshot ShardMap::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Snapshot{epoch_, shards_};
}

std::uint32_t ShardMap::ShardForPath(std::string_view path) const {
  return ShardForHash(HashPath(path), shard_count(), vnodes_);
}

std::uint32_t ShardMap::ShardForOid(storage::ObjectId oid) const {
  const std::uint32_t count = shard_count();
  if (count <= 1) return 0;
  return static_cast<std::uint32_t>((oid.value & ~storage::kReplicatedOidBit) %
                                    count);
}

bool ShardMap::IsActivePrimary(std::uint32_t shard, portals::Nid nid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shard < shards_.size() && shards_[shard].primary == nid;
}

bool ShardMap::IsStandby(std::uint32_t shard, portals::Nid nid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shard < shards_.size() && shards_[shard].standby == nid &&
         nid != portals::kInvalidNid;
}

Status ShardMap::Promote(std::uint32_t shard, portals::Nid nid) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shard >= shards_.size()) return InvalidArgument("no such shard");
  Shard& entry = shards_[shard];
  if (entry.primary == nid) return OkStatus();  // already promoted
  if (entry.standby != nid || nid == portals::kInvalidNid) {
    return FailedPrecondition("nid is not this shard's standby");
  }
  entry.standby = entry.primary;  // the deposed (likely dead) primary
  entry.primary = nid;
  ++epoch_;
  return OkStatus();
}

std::uint64_t ShardMap::HashPath(std::string_view path) {
  // FNV-1a 64.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : path) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x00000100000001B3ULL;
  }
  return h;
}

std::uint32_t ShardMap::ShardForHash(std::uint64_t hash,
                                     std::uint32_t shard_count,
                                     std::uint32_t vnodes) {
  if (shard_count <= 1) return 0;
  if (vnodes == 0) vnodes = 1;
  // Smallest ring point >= hash owns the key; wrap to the global minimum
  // when the hash lies past every point.
  std::uint32_t best_shard = 0;
  std::uint64_t best_point = 0;
  bool have_best = false;
  std::uint32_t min_shard = 0;
  std::uint64_t min_point = 0;
  bool have_min = false;
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    for (std::uint32_t v = 0; v < vnodes; ++v) {
      const std::uint64_t p = RingPoint(s, v);
      if (!have_min || p < min_point) {
        min_point = p;
        min_shard = s;
        have_min = true;
      }
      if (p >= hash && (!have_best || p < best_point)) {
        best_point = p;
        best_shard = s;
        have_best = true;
      }
    }
  }
  return have_best ? best_shard : min_shard;
}

}  // namespace lwfs::naming
