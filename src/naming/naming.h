// Naming service: paths -> object references.
//
// Naming is deliberately *not* part of the LWFS-core (Figure 3): it is one
// of the optional client services layered above it.  The checkpoint library
// uses it to bind a human-readable checkpoint path to the metadata object
// that describes a checkpoint's data objects, and the PFS-over-LWFS layer
// uses it as its namespace.
//
// Names can be created transactionally: a staged link only becomes visible
// when the surrounding two-phase transaction commits (Figure 8 line 9 runs
// inside a transaction).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "naming/op_log.h"
#include "storage/ids.h"
#include "txn/two_phase.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lwfs::naming {

/// Split "/a/b/c" into {"a","b","c"}.  Rejects empty components, "." and
/// "..", and paths not starting with '/'.
Result<std::vector<std::string>> SplitPath(std::string_view path);

struct DirEntry {
  std::string name;
  bool is_directory = false;
  std::optional<storage::ObjectRef> ref;  // set for links
};

class NamingService {
 public:
  /// `participant_name` is this service's identity at the 2PC coordinator
  /// ("naming" for a single-shard deployment, "naming<i>" for shard i —
  /// recovery matches journal records to participants by name).  `oplog`,
  /// when set, receives a record for every committed mutation *before* the
  /// mutating call returns, so a warm standby replaying the log loses no
  /// acknowledged operation.
  explicit NamingService(std::string participant_name = "naming",
                         OpLog* oplog = nullptr);

  /// Create a directory (and parents with `recursive`).
  Status Mkdir(std::string_view path, bool recursive = false);

  /// Bind `path` to an object reference.  Parent directory must exist;
  /// the name must not.
  Status Link(std::string_view path, const storage::ObjectRef& ref);

  /// Stage a link inside transaction `txid`: invisible until commit, gone
  /// on abort.
  Status StageLink(txn::TxnId txid, std::string_view path,
                   const storage::ObjectRef& ref);

  /// Stage an unlink inside transaction `txid`: the name stays visible
  /// until commit.  The other half of an atomic cross-shard rename (the
  /// destination shard stages the link, the source shard stages the
  /// unlink, and the journalled 2PC decision flips both together).
  Status StageUnlink(txn::TxnId txid, std::string_view path);

  Result<storage::ObjectRef> Lookup(std::string_view path) const;

  Status Unlink(std::string_view path);

  /// Remove an empty directory.
  Status Rmdir(std::string_view path);

  Status Rename(std::string_view from, std::string_view to);

  Result<std::vector<DirEntry>> List(std::string_view dir_path) const;

  [[nodiscard]] bool Exists(std::string_view path) const;

  /// True iff `path` exists and is a directory (used by shard servers to
  /// reject directory renames that cannot be atomic under partitioning).
  [[nodiscard]] bool IsDirectory(std::string_view path) const;

  /// Standby replay: apply one op-log record through the normal mutators.
  /// Call only while no op log is attached (a standby attaches the log via
  /// SetOpLog *after* catching up, so replay never re-logs).
  Status Replay(const OpRecord& record);

  /// Attach (or detach) the committed-mutation log.  A shard primary is
  /// constructed with the log; its standby starts detached, replays, then
  /// attaches before taking traffic.
  void SetOpLog(OpLog* oplog);

  /// The two-phase-commit participant representing this service.
  [[nodiscard]] txn::Participant* participant() { return &participant_; }

  /// Crash simulation: drop staged (uncommitted) links and prepared-but-
  /// undecided transaction state, as a process restart would.  Committed
  /// links survive (they are what Serialize() snapshots).  The
  /// coordinator's journal replay re-delivers outstanding decisions; Abort
  /// of a forgotten transaction is a no-op by the participant contract.
  void ResetStagedState() { participant_.Reset(); }

  [[nodiscard]] std::uint64_t link_count() const;

  /// Serialize the whole namespace (for snapshots: the naming service is a
  /// client-extension service, so durability is the deployment's choice —
  /// e.g. ServiceRuntime persists snapshots next to a file-backed store).
  [[nodiscard]] Buffer Serialize() const;

  /// Replace the namespace with a serialized snapshot.  Staged
  /// (uncommitted) links are not part of snapshots.
  Status Restore(ByteSpan snapshot);

 private:
  struct Node {
    bool is_directory = true;
    std::optional<storage::ObjectRef> ref;
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  /// Walk to the node at `parts`; nullptr if absent.  Lock held by caller.
  Node* WalkLocked(const std::vector<std::string>& parts) const;

  mutable std::mutex mutex_;
  std::unique_ptr<Node> root_;
  std::uint64_t links_ = 0;
  txn::StagedParticipant participant_;
  OpLog* oplog_ = nullptr;  // guarded by mutex_; appended under the lock
};

}  // namespace lwfs::naming
