#include "txn/lock_table.h"

#include <algorithm>

namespace lwfs::txn {

bool LockTable::ConflictsLocked(const KeyState& state, const LockRange& range,
                                LockMode mode, LockOwner owner) {
  for (const Held& h : state.held) {
    if (h.owner == owner) continue;
    if (!Overlaps(h.range, range)) continue;
    if (mode == LockMode::kExclusive || h.mode == LockMode::kExclusive) {
      return true;
    }
  }
  return false;
}

Result<LockId> LockTable::TryAcquire(const LockKey& key,
                                     const LockRange& range, LockMode mode,
                                     LockOwner owner) {
  if (range.start >= range.end) return InvalidArgument("empty lock range");
  std::lock_guard<std::mutex> lock(mutex_);
  KeyState& state = keys_[key];
  // Fairness: queued waiters (other owners) go first.
  const bool blocked_by_waiter =
      std::any_of(state.waiters.begin(), state.waiters.end(),
                  [&](const Waiter& w) { return w.owner != owner; });
  if (blocked_by_waiter || ConflictsLocked(state, range, mode, owner)) {
    return ResourceExhausted("lock busy");
  }
  LockId id = next_lock_id_++;
  state.held.push_back(Held{id, range, mode, owner});
  lock_index_[id] = key;
  ++grants_;
  return id;
}

LockId LockTable::AcquireBlocking(const LockKey& key, const LockRange& range,
                                  LockMode mode, LockOwner owner) {
  std::unique_lock<std::mutex> lock(mutex_);
  KeyState& state = keys_[key];
  const std::uint64_t ticket = next_ticket_++;
  state.waiters.push_back(Waiter{ticket, range, mode, owner});
  cv_.wait(lock, [&] {
    // Grantable when we are the frontmost waiter whose request fits.
    // (Simple FIFO: strictly wait until we are at the front, then until
    // the range is free.)
    KeyState& s = keys_[key];
    return !s.waiters.empty() && s.waiters.front().ticket == ticket &&
           !ConflictsLocked(s, range, mode, owner);
  });
  KeyState& s = keys_[key];
  s.waiters.pop_front();
  LockId id = next_lock_id_++;
  s.held.push_back(Held{id, range, mode, owner});
  lock_index_[id] = key;
  ++grants_;
  // Another waiter may now be grantable (e.g. a shared reader behind us).
  cv_.notify_all();
  return id;
}

Status LockTable::Release(LockId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto idx = lock_index_.find(id);
  if (idx == lock_index_.end()) return NotFound("no such lock");
  KeyState& state = keys_[idx->second];
  state.held.erase(std::remove_if(state.held.begin(), state.held.end(),
                                  [&](const Held& h) { return h.id == id; }),
                   state.held.end());
  if (state.held.empty() && state.waiters.empty()) keys_.erase(idx->second);
  lock_index_.erase(idx);
  cv_.notify_all();
  return OkStatus();
}

void LockTable::ReleaseAllForOwner(LockOwner owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = keys_.begin(); it != keys_.end();) {
    KeyState& state = it->second;
    state.held.erase(
        std::remove_if(state.held.begin(), state.held.end(),
                       [&](const Held& h) {
                         if (h.owner != owner) return false;
                         lock_index_.erase(h.id);
                         return true;
                       }),
        state.held.end());
    state.waiters.erase(
        std::remove_if(state.waiters.begin(), state.waiters.end(),
                       [&](const Waiter& w) { return w.owner == owner; }),
        state.waiters.end());
    if (state.held.empty() && state.waiters.empty()) {
      it = keys_.erase(it);
    } else {
      ++it;
    }
  }
  cv_.notify_all();
}

std::size_t LockTable::held_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lock_index_.size();
}

std::size_t LockTable::waiting_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, state] : keys_) n += state.waiters.size();
  return n;
}

std::uint64_t LockTable::grants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return grants_;
}

}  // namespace lwfs::txn
