// Byte-range read/write locks (§3.4).
//
// Locks are an *optional* LWFS client service: applications that need
// isolation (or a PFS layered above the core that needs POSIX consistency)
// acquire them; the checkpoint case study deliberately does not.  The table
// grants locks FIFO-fair per (container, resource) so writers cannot starve
// behind a stream of readers — the same discipline a Lustre DLM applies to
// extent locks, which is what makes the shared-file baseline serialize.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/ids.h"
#include "util/status.h"

namespace lwfs::txn {

enum class LockMode : std::uint8_t { kShared, kExclusive };

/// A lockable entity: a resource (object, file, ...) within a container.
struct LockKey {
  std::uint64_t container = 0;
  std::uint64_t resource = 0;
  auto operator<=>(const LockKey&) const = default;
};

/// Byte range [start, end); use kWholeResource for full-resource locks.
struct LockRange {
  std::uint64_t start = 0;
  std::uint64_t end = ~0ULL;
};
inline constexpr LockRange kWholeResource{0, ~0ULL};

using LockId = std::uint64_t;
using LockOwner = std::uint64_t;  // client identity (nid or uid)

class LockTable {
 public:
  /// Grant immediately or fail with kResourceExhausted ("would block").
  /// Fairness: fails when earlier waiters are queued on the same key, even
  /// if the requested range is currently free.
  Result<LockId> TryAcquire(const LockKey& key, const LockRange& range,
                            LockMode mode, LockOwner owner);

  /// Block until granted (in-process callers; RPC callers poll TryAcquire).
  LockId AcquireBlocking(const LockKey& key, const LockRange& range,
                         LockMode mode, LockOwner owner);

  Status Release(LockId id);

  /// Release everything held by `owner` (client death cleanup).
  void ReleaseAllForOwner(LockOwner owner);

  [[nodiscard]] std::size_t held_count() const;
  [[nodiscard]] std::size_t waiting_count() const;
  [[nodiscard]] std::uint64_t grants() const;

 private:
  struct Held {
    LockId id;
    LockRange range;
    LockMode mode;
    LockOwner owner;
  };
  struct Waiter {
    std::uint64_t ticket;
    LockRange range;
    LockMode mode;
    LockOwner owner;
  };
  struct KeyState {
    std::vector<Held> held;
    std::deque<Waiter> waiters;
  };

  /// True if (range, mode, owner) conflicts with a held lock.  A single
  /// owner never conflicts with itself (re-entrant by range).
  static bool ConflictsLocked(const KeyState& state, const LockRange& range,
                              LockMode mode, LockOwner owner);
  static bool Overlaps(const LockRange& a, const LockRange& b) {
    return a.start < b.end && b.start < a.end;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t next_lock_id_ = 1;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t grants_ = 0;
  std::map<LockKey, KeyState> keys_;
  std::unordered_map<LockId, LockKey> lock_index_;
};

}  // namespace lwfs::txn
