#include "txn/two_phase.h"

#include <algorithm>
#include <atomic>

#include "util/logging.h"

namespace lwfs::txn {

// ---------------------------------------------------------------------------
// StagedParticipant
// ---------------------------------------------------------------------------

void StagedParticipant::Join(TxnId txid) {
  std::lock_guard<std::mutex> lock(mutex_);
  txns_.try_emplace(txid);
}

void StagedParticipant::StageApply(TxnId txid, std::function<Status()> apply) {
  std::lock_guard<std::mutex> lock(mutex_);
  txns_[txid].applies.push_back(std::move(apply));
}

void StagedParticipant::AddUndo(TxnId txid, std::function<void()> undo) {
  std::lock_guard<std::mutex> lock(mutex_);
  txns_[txid].undos.push_back(std::move(undo));
}

void StagedParticipant::FailNextPrepare(TxnId txid) {
  std::lock_guard<std::mutex> lock(mutex_);
  txns_[txid].fail_prepare = true;
}

Result<bool> StagedParticipant::Prepare(TxnId txid) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = txns_.find(txid);
  if (it == txns_.end()) {
    // Never saw an operation for this transaction: nothing to commit, so a
    // yes-vote is always safe.
    return true;
  }
  if (it->second.fail_prepare) {
    it->second.fail_prepare = false;
    return false;
  }
  it->second.prepared = true;
  return true;
}

Status StagedParticipant::Commit(TxnId txid) {
  std::vector<std::function<Status()>> applies;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = txns_.find(txid);
    if (it == txns_.end()) return OkStatus();  // idempotent
    applies = std::move(it->second.applies);
    txns_.erase(it);
  }
  for (auto& apply : applies) {
    Status s = apply();
    if (!s.ok()) {
      // A prepared participant promised commit would succeed; a failure
      // here is a broken promise and surfaces loudly.
      LWFS_ERROR << name_ << ": commit apply failed: " << s.ToString();
      return s;
    }
  }
  return OkStatus();
}

Status StagedParticipant::Abort(TxnId txid) {
  std::vector<std::function<void()>> undos;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = txns_.find(txid);
    if (it == txns_.end()) return OkStatus();  // idempotent
    undos = std::move(it->second.undos);
    txns_.erase(it);
  }
  // Compensate in reverse order of application.
  for (auto it = undos.rbegin(); it != undos.rend(); ++it) (*it)();
  return OkStatus();
}

void StagedParticipant::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  txns_.clear();
}

std::size_t StagedParticipant::open_txns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return txns_.size();
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

namespace {
std::uint64_t NextTxnBase() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

Result<TxnId> Coordinator::Begin(std::vector<Participant*> participants) {
  TxnId txid;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    txid = (NextTxnBase() << 16) | (next_txid_++ & 0xFFFF);
    active_[txid] = participants;
  }
  Encoder payload;
  payload.PutU32(static_cast<std::uint32_t>(participants.size()));
  for (Participant* p : participants) payload.PutString(p->name());
  LWFS_RETURN_IF_ERROR(journal_->Append(
      JournalRecord{RecordType::kBegin, txid, std::move(payload).Take()}));
  return txid;
}

Status Coordinator::Commit(TxnId txid) {
  std::vector<Participant*> participants;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = active_.find(txid);
    if (it == active_.end()) return NotFound("no such active transaction");
    participants = it->second;
  }

  // Phase 1: collect votes.
  bool all_yes = true;
  for (Participant* p : participants) {
    auto vote = p->Prepare(txid);
    if (!vote.ok() || !*vote) {
      all_yes = false;
      break;
    }
  }

  if (!all_yes) {
    LWFS_RETURN_IF_ERROR(Decide(txid, /*commit=*/false, participants));
    return Aborted("participant voted no");
  }

  LWFS_RETURN_IF_ERROR(
      journal_->Append(JournalRecord{RecordType::kPrepared, txid, {}}));

  if (crash_point_ == CrashPoint::kAfterPrepare) {
    // Simulated coordinator death: no decision was journaled; recovery will
    // presume abort.
    return Unavailable("coordinator crashed after prepare");
  }

  LWFS_RETURN_IF_ERROR(
      journal_->Append(JournalRecord{RecordType::kCommit, txid, {}}));

  if (crash_point_ == CrashPoint::kAfterCommitRecord) {
    // Decision is durable but undelivered; recovery must re-commit.
    return Unavailable("coordinator crashed after commit record");
  }

  for (Participant* p : participants) {
    LWFS_RETURN_IF_ERROR(p->Commit(txid));
  }
  LWFS_RETURN_IF_ERROR(
      journal_->Append(JournalRecord{RecordType::kEnd, txid, {}}));
  std::lock_guard<std::mutex> lock(mutex_);
  active_.erase(txid);
  return OkStatus();
}

Status Coordinator::Abort(TxnId txid) {
  std::vector<Participant*> participants;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = active_.find(txid);
    if (it == active_.end()) return NotFound("no such active transaction");
    participants = it->second;
  }
  return Decide(txid, /*commit=*/false, participants);
}

Status Coordinator::Decide(TxnId txid, bool commit,
                           const std::vector<Participant*>& participants) {
  LWFS_RETURN_IF_ERROR(journal_->Append(JournalRecord{
      commit ? RecordType::kCommit : RecordType::kAbort, txid, {}}));
  for (Participant* p : participants) {
    Status s = commit ? p->Commit(txid) : p->Abort(txid);
    if (!s.ok()) return s;
  }
  LWFS_RETURN_IF_ERROR(
      journal_->Append(JournalRecord{RecordType::kEnd, txid, {}}));
  std::lock_guard<std::mutex> lock(mutex_);
  active_.erase(txid);
  return OkStatus();
}

Status Coordinator::Recover(
    Journal* journal, const std::map<std::string, Participant*>& registry) {
  auto records = journal->ReadAll();
  if (!records.ok()) return records.status();

  // Reconstruct per-transaction state and participant lists.
  struct State {
    TxnOutcome outcome = TxnOutcome::kUnknown;
    std::vector<std::string> participants;
  };
  std::map<TxnId, State> txns;
  for (const JournalRecord& r : *records) {
    State& st = txns[r.txid];
    switch (r.type) {
      case RecordType::kBegin: {
        st.outcome = TxnOutcome::kInDoubt;
        Decoder dec(r.payload);
        auto count = dec.GetU32();
        if (count.ok()) {
          for (std::uint32_t i = 0; i < *count; ++i) {
            auto name = dec.GetString();
            if (!name.ok()) break;
            st.participants.push_back(std::move(*name));
          }
        }
        break;
      }
      case RecordType::kPrepared:
        break;
      case RecordType::kCommit:
        st.outcome = TxnOutcome::kCommitted;
        break;
      case RecordType::kAbort:
        st.outcome = TxnOutcome::kAborted;
        break;
      case RecordType::kEnd:
        st.outcome = TxnOutcome::kFinished;
        break;
    }
  }

  for (const auto& [txid, st] : txns) {
    if (st.outcome == TxnOutcome::kFinished) continue;
    // Presumed abort: only a journaled COMMIT decision commits.
    const bool commit = st.outcome == TxnOutcome::kCommitted;
    for (const std::string& name : st.participants) {
      auto it = registry.find(name);
      if (it == registry.end()) {
        return Unavailable("participant missing during recovery: " + name);
      }
      Status s = commit ? it->second->Commit(txid) : it->second->Abort(txid);
      if (!s.ok()) return s;
    }
    if (!commit && st.outcome != TxnOutcome::kAborted) {
      LWFS_RETURN_IF_ERROR(
          journal->Append(JournalRecord{RecordType::kAbort, txid, {}}));
    }
    LWFS_RETURN_IF_ERROR(
        journal->Append(JournalRecord{RecordType::kEnd, txid, {}}));
  }
  return OkStatus();
}

}  // namespace lwfs::txn
