// Two-phase commit (§3.4).
//
// "A two-phase commit protocol (part of the LWFS API) helps the client
// preserve the atomicity property because it requires all participating
// servers to agree on the final state of the system before changes become
// permanent."  The *client* coordinates: it drives prepare/commit/abort
// against the participating servers and journals each decision so that a
// recovery pass can finish interrupted transactions.
//
// Participant contract: Commit/Abort must be idempotent and must succeed
// for unknown transaction ids (recovery may re-deliver decisions).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "txn/journal.h"
#include "util/status.h"

namespace lwfs::txn {

class Participant {
 public:
  virtual ~Participant() = default;
  /// Phase 1: vote.  True = yes (the participant guarantees Commit will
  /// succeed), false = no.
  virtual Result<bool> Prepare(TxnId txid) = 0;
  /// Phase 2 decisions.  Idempotent; unknown txid is success.
  virtual Status Commit(TxnId txid) = 0;
  virtual Status Abort(TxnId txid) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Reusable participant: services register per-transaction apply actions
/// (run at commit) and compensation actions (run at abort, for effects the
/// service chose to apply eagerly).  Used by the storage and naming
/// servers.
class StagedParticipant : public Participant {
 public:
  explicit StagedParticipant(std::string name) : name_(std::move(name)) {}

  /// Make `txid` known (idempotent).  Services call this on the first
  /// operation they see for a transaction.
  void Join(TxnId txid);

  /// Defer `apply` until the commit decision.
  void StageApply(TxnId txid, std::function<Status()> apply);

  /// Register compensation for an eagerly-applied effect; runs on abort in
  /// reverse registration order.
  void AddUndo(TxnId txid, std::function<void()> undo);

  /// Force the next Prepare(txid) vote to "no" (fault injection).
  void FailNextPrepare(TxnId txid);

  /// Drop all staged state, as a crash would.  Restart paths call this
  /// before journal replay re-delivers the surviving decisions (staged
  /// applies/undos were volatile: a prepared-but-undecided transaction
  /// resolves via presumed abort, and Abort of an unknown txid succeeds).
  void Reset();

  Result<bool> Prepare(TxnId txid) override;
  Status Commit(TxnId txid) override;
  Status Abort(TxnId txid) override;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] std::size_t open_txns() const;

 private:
  struct TxnState {
    bool prepared = false;
    bool fail_prepare = false;
    std::vector<std::function<Status()>> applies;
    std::vector<std::function<void()>> undos;
  };

  const std::string name_;
  mutable std::mutex mutex_;
  std::unordered_map<TxnId, TxnState> txns_;
};

/// Coordinator crash points for failure-injection tests: Commit() abandons
/// the protocol at the given point, as if the client process died.
enum class CrashPoint {
  kNone,
  kAfterPrepare,       // all yes-votes collected, decision not journaled
  kAfterCommitRecord,  // decision journaled, participants not yet told
};

class Coordinator {
 public:
  explicit Coordinator(Journal* journal) : journal_(journal) {}

  /// Start a transaction over `participants`.  Journals BEGIN.
  Result<TxnId> Begin(std::vector<Participant*> participants);

  /// Run the full two-phase protocol.  Any "no" vote or prepare failure
  /// aborts; returns kAborted in that case.
  Status Commit(TxnId txid);

  /// Abort explicitly.
  Status Abort(TxnId txid);

  void SetCrashPoint(CrashPoint point) { crash_point_ = point; }

  /// Finish interrupted transactions found in `journal`: committed ones are
  /// re-committed, in-doubt ones aborted (presumed abort).  `registry` maps
  /// participant name -> live participant.
  static Status Recover(
      Journal* journal,
      const std::map<std::string, Participant*>& registry);

 private:
  Status Decide(TxnId txid, bool commit,
                const std::vector<Participant*>& participants);

  Journal* journal_;
  CrashPoint crash_point_ = CrashPoint::kNone;
  std::mutex mutex_;
  std::uint64_t next_txid_ = 1;
  std::unordered_map<TxnId, std::vector<Participant*>> active_;
};

}  // namespace lwfs::txn
