#include "txn/journal.h"

#include <map>

#include "util/crc32.h"

namespace lwfs::txn {
namespace {

/// Append retry budget: each attempt rewrites the same byte range, so
/// retrying is safe and only a sustained fault burst exhausts it.
constexpr int kAppendAttempts = 4;

}  // namespace

Result<Journal> Journal::Create(storage::ObjectStore* store,
                                storage::ContainerId cid) {
  auto oid = store->Create(cid);
  if (!oid.ok()) return oid.status();
  return Journal(store, *oid);
}

Status Journal::Append(const JournalRecord& record) {
  Encoder enc;
  enc.PutU32(static_cast<std::uint32_t>(record.type));
  enc.PutU64(record.txid);
  enc.PutBytes(ByteSpan(record.payload));
  // Per-record CRC32 over the encoded fields: media corruption surfaces as
  // kDataLoss at recovery instead of a silently wrong decision replay.
  enc.PutU32(Crc32(ByteSpan(enc.buffer())));
  auto attr = store_->GetAttr(oid_);
  if (!attr.ok()) return attr.status();
  // Write at a pinned offset and retry in place.  Over a remote store a
  // corrupted bulk pull can land bad bytes (and grow the object) before the
  // server's end-to-end checksum rejects the write with kDataLoss; appending
  // the retry at the *new* size would strand that corrupt record mid-journal
  // and poison every future ReadAll.  Rewriting the same offset replaces it
  // with the intact copy, and is idempotent if an ambiguous timeout actually
  // applied the first attempt.
  const std::uint64_t at = attr->size;
  Status s = OkStatus();
  for (int attempt = 0; attempt < kAppendAttempts; ++attempt) {
    s = store_->Write(oid_, at, ByteSpan(enc.buffer()));
    if (s.ok()) return s;
    if (s.code() != ErrorCode::kDataLoss && s.code() != ErrorCode::kTimeout &&
        s.code() != ErrorCode::kUnavailable) {
      return s;  // not a transport-shaped failure: retrying cannot help
    }
  }
  return s;
}

Result<std::vector<JournalRecord>> Journal::ReadAll() const {
  auto attr = store_->GetAttr(oid_);
  if (!attr.ok()) return attr.status();
  auto raw = store_->Read(oid_, 0, attr->size);
  if (!raw.ok()) return raw.status();
  Decoder dec(*raw);
  std::vector<JournalRecord> records;
  while (!dec.exhausted()) {
    const std::size_t record_start = raw->size() - dec.remaining();
    auto type = dec.GetU32();
    auto txid = dec.GetU64();
    auto payload = dec.GetBytes();
    if (!type.ok() || !txid.ok() || !payload.ok()) {
      break;  // torn tail record from a crash mid-append: ignore
    }
    const std::size_t record_end = raw->size() - dec.remaining();
    auto crc = dec.GetU32();
    if (!crc.ok()) {
      break;  // crash between record and its checksum: torn tail
    }
    if (Crc32(ByteSpan(raw->data() + record_start,
                       record_end - record_start)) != *crc) {
      // A complete record whose checksum doesn't match is media corruption,
      // not a torn append — refuse to trust anything decoded from it.
      return DataLoss("journal record failed checksum");
    }
    if (*type < static_cast<std::uint32_t>(RecordType::kBegin) ||
        *type > static_cast<std::uint32_t>(RecordType::kEnd)) {
      return DataLoss("corrupt journal record type");
    }
    records.push_back(JournalRecord{static_cast<RecordType>(*type), *txid,
                                    std::move(*payload)});
  }
  return records;
}

Result<TxnOutcome> Journal::Outcome(TxnId txid) const {
  auto records = ReadAll();
  if (!records.ok()) return records.status();
  TxnOutcome outcome = TxnOutcome::kUnknown;
  for (const JournalRecord& r : *records) {
    if (r.txid != txid) continue;
    switch (r.type) {
      case RecordType::kBegin:
        if (outcome == TxnOutcome::kUnknown) outcome = TxnOutcome::kInDoubt;
        break;
      case RecordType::kPrepared:
        break;  // informational
      case RecordType::kCommit:
        outcome = TxnOutcome::kCommitted;
        break;
      case RecordType::kAbort:
        outcome = TxnOutcome::kAborted;
        break;
      case RecordType::kEnd:
        outcome = TxnOutcome::kFinished;
        break;
    }
  }
  return outcome;
}

Result<std::vector<TxnId>> Journal::Unfinished() const {
  auto records = ReadAll();
  if (!records.ok()) return records.status();
  std::map<TxnId, TxnOutcome> state;
  for (const JournalRecord& r : *records) {
    switch (r.type) {
      case RecordType::kBegin:
        state.emplace(r.txid, TxnOutcome::kInDoubt);
        break;
      case RecordType::kPrepared:
        break;
      case RecordType::kCommit:
        state[r.txid] = TxnOutcome::kCommitted;
        break;
      case RecordType::kAbort:
        state[r.txid] = TxnOutcome::kAborted;
        break;
      case RecordType::kEnd:
        state[r.txid] = TxnOutcome::kFinished;
        break;
    }
  }
  std::vector<TxnId> out;
  for (const auto& [txid, outcome] : state) {
    if (outcome != TxnOutcome::kFinished) out.push_back(txid);
  }
  return out;
}

}  // namespace lwfs::txn
