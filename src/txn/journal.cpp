#include "txn/journal.h"

#include <map>

namespace lwfs::txn {

Result<Journal> Journal::Create(storage::ObjectStore* store,
                                storage::ContainerId cid) {
  auto oid = store->Create(cid);
  if (!oid.ok()) return oid.status();
  return Journal(store, *oid);
}

Status Journal::Append(const JournalRecord& record) {
  Encoder enc;
  enc.PutU32(static_cast<std::uint32_t>(record.type));
  enc.PutU64(record.txid);
  enc.PutBytes(ByteSpan(record.payload));
  auto attr = store_->GetAttr(oid_);
  if (!attr.ok()) return attr.status();
  return store_->Write(oid_, attr->size, ByteSpan(enc.buffer()));
}

Result<std::vector<JournalRecord>> Journal::ReadAll() const {
  auto attr = store_->GetAttr(oid_);
  if (!attr.ok()) return attr.status();
  auto raw = store_->Read(oid_, 0, attr->size);
  if (!raw.ok()) return raw.status();
  Decoder dec(*raw);
  std::vector<JournalRecord> records;
  while (!dec.exhausted()) {
    auto type = dec.GetU32();
    auto txid = dec.GetU64();
    auto payload = dec.GetBytes();
    if (!type.ok() || !txid.ok() || !payload.ok()) {
      break;  // torn tail record from a crash mid-append: ignore
    }
    if (*type < static_cast<std::uint32_t>(RecordType::kBegin) ||
        *type > static_cast<std::uint32_t>(RecordType::kEnd)) {
      return DataLoss("corrupt journal record type");
    }
    records.push_back(JournalRecord{static_cast<RecordType>(*type), *txid,
                                    std::move(*payload)});
  }
  return records;
}

Result<TxnOutcome> Journal::Outcome(TxnId txid) const {
  auto records = ReadAll();
  if (!records.ok()) return records.status();
  TxnOutcome outcome = TxnOutcome::kUnknown;
  for (const JournalRecord& r : *records) {
    if (r.txid != txid) continue;
    switch (r.type) {
      case RecordType::kBegin:
        if (outcome == TxnOutcome::kUnknown) outcome = TxnOutcome::kInDoubt;
        break;
      case RecordType::kPrepared:
        break;  // informational
      case RecordType::kCommit:
        outcome = TxnOutcome::kCommitted;
        break;
      case RecordType::kAbort:
        outcome = TxnOutcome::kAborted;
        break;
      case RecordType::kEnd:
        outcome = TxnOutcome::kFinished;
        break;
    }
  }
  return outcome;
}

Result<std::vector<TxnId>> Journal::Unfinished() const {
  auto records = ReadAll();
  if (!records.ok()) return records.status();
  std::map<TxnId, TxnOutcome> state;
  for (const JournalRecord& r : *records) {
    switch (r.type) {
      case RecordType::kBegin:
        state.emplace(r.txid, TxnOutcome::kInDoubt);
        break;
      case RecordType::kPrepared:
        break;
      case RecordType::kCommit:
        state[r.txid] = TxnOutcome::kCommitted;
        break;
      case RecordType::kAbort:
        state[r.txid] = TxnOutcome::kAborted;
        break;
      case RecordType::kEnd:
        state[r.txid] = TxnOutcome::kFinished;
        break;
    }
  }
  std::vector<TxnId> out;
  for (const auto& [txid, outcome] : state) {
    if (outcome != TxnOutcome::kFinished) out.push_back(txid);
  }
  return out;
}

}  // namespace lwfs::txn
