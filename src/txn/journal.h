// Transaction journal (§3.4).
//
// "Durability exists because a journal exists as a persistent object on the
// storage system."  A Journal appends fixed-format records to an object in
// any ObjectStore backend; recovery replays the records to decide each
// transaction's outcome.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/object_store.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lwfs::txn {

using TxnId = std::uint64_t;

enum class RecordType : std::uint32_t {
  kBegin = 1,     // transaction started; payload = participant names
  kPrepared = 2,  // all participants voted yes
  kCommit = 3,    // decision: commit
  kAbort = 4,     // decision: abort
  kEnd = 5,       // all participants acknowledged the decision
};

struct JournalRecord {
  RecordType type;
  TxnId txid;
  Buffer payload;
};

/// A transaction's fate as derivable from the journal.
enum class TxnOutcome {
  kUnknown,    // no BEGIN record
  kInDoubt,    // BEGIN but no decision: recovery must abort (presumed abort)
  kCommitted,  // COMMIT decision logged
  kAborted,    // ABORT decision logged
  kFinished,   // decision logged and END acknowledged
};

/// Appends/reads records on a journal object.  One writer at a time (the
/// coordinator owns its journal); readers may scan concurrently with the
/// store's own locking.
class Journal {
 public:
  Journal(storage::ObjectStore* store, storage::ObjectId oid)
      : store_(store), oid_(oid) {}

  /// Create a fresh journal object in `cid` and open it.
  static Result<Journal> Create(storage::ObjectStore* store,
                                storage::ContainerId cid);

  Status Append(const JournalRecord& record);

  /// All records in append order.  Tolerates a torn final record (crash
  /// mid-append): the tail is ignored.
  Result<std::vector<JournalRecord>> ReadAll() const;

  /// Outcome of `txid` per the journal contents.
  Result<TxnOutcome> Outcome(TxnId txid) const;

  /// Transactions that have a decision pending (BEGIN or COMMIT/ABORT
  /// without END) — the recovery worklist.
  Result<std::vector<TxnId>> Unfinished() const;

  [[nodiscard]] storage::ObjectId oid() const { return oid_; }

 private:
  storage::ObjectStore* store_;
  storage::ObjectId oid_;
};

}  // namespace lwfs::txn
