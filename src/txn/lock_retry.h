// Deterministic retry schedule for try-based lock acquisition over RPC.
//
// The lock services are try-based (kOpLockTry / kPfsLockTry return
// kResourceExhausted while held), so acquisition is client-side polling.
// One schedule — 50 µs doubling to a 5 ms cap, bounded by a deadline —
// is shared by every poller so blocking wrappers (core::Client::
// LockBlocking, pfs::PfsClient::LockExtent) and event-driven logical
// clients retry on identical timelines.  Blocking callers SleepUntil the
// returned instant; logical clients arm a scheduled timer wake instead,
// so a retry never blocks a carrier thread.
#pragma once

#include <algorithm>
#include <chrono>
#include <optional>

#include "util/clock.h"

namespace lwfs::txn {

class LockRetrySchedule {
 public:
  LockRetrySchedule(util::Clock::TimePoint now,
                    std::chrono::milliseconds max_wait)
      : deadline_(now + max_wait) {}

  /// Time of the next retry after a kResourceExhausted observed at `now`,
  /// or nullopt when the deadline has passed (caller reports Timeout).
  std::optional<util::Clock::TimePoint> Next(util::Clock::TimePoint now) {
    if (now >= deadline_) return std::nullopt;
    const auto next = now + std::chrono::microseconds(backoff_us_);
    backoff_us_ = std::min(backoff_us_ * 2, kCapUs);
    return next;
  }

  [[nodiscard]] util::Clock::TimePoint deadline() const { return deadline_; }

 private:
  static constexpr int kStartUs = 50;
  static constexpr int kCapUs = 5000;
  util::Clock::TimePoint deadline_;
  int backoff_us_ = kStartUs;
};

}  // namespace lwfs::txn
