// Event-driven logical-client engine: the scale harness for the paper's
// petaflop argument (§4, Figs 9–10).
//
// The thread-per-client model caps a real-stack deployment at a few
// thousand clients — each client pins an OS thread in CallHandle::Await.
// This engine inverts that: a small pool of *carrier* threads drives
// 100k–1M *logical clients*, each a resumable state machine
// (`LogicalClient`) multiplexed over the RPC layer's asynchronous
// CallAsync/CallHandle engine.  A logical client never blocks a carrier:
// when it has in-flight calls it parks and asks to be woken on completion
// (CallHandle::OnComplete) or at a deadline (a per-client timer slot), and
// the carrier moves on to the next runnable machine.
//
// Determinism: every logical client gets its own SplitMix64 stream seeded
// from (engine seed, global client id), and all waiting goes through the
// engine's Clock — under a VirtualClock a run is bit-reproducible.  While
// a carrier sleeps, it publishes the earliest deadline among its parked
// machines as a *logical waiter* on the clock, so virtual time can advance
// to a parked client's timer even though no OS thread holds that deadline.
//
// Flow control: each carrier caps the number of armed completion wakes
// (max_inflight_per_carrier).  At the cap the carrier stops polling
// runnable machines until completions drain — the same bounded-window
// argument as Figure 6, applied across machines — which also bounds the
// RPC engine's per-tick bookkeeping.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "rpc/rpc.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/status.h"

namespace lwfs::driver {

/// Global logical-client id (assigned by Engine::Add, starting at 0).
using ClientId = std::uint64_t;

/// What a Poll() step left the machine in.
enum class Step {
  kRunnable,  // made progress, can run again immediately
  kBlocked,   // parked: woken by an armed completion or timer
  kDone,      // finished; result() holds the outcome
};

class Engine;

/// Per-poll context handed to a logical client.  Valid only for the
/// duration of the Poll() call that received it.
class Context {
 public:
  [[nodiscard]] util::Clock* clock() const;
  [[nodiscard]] ClientId id() const { return id_; }
  /// The client's private deterministic stream.
  [[nodiscard]] Rng& rng() const;

  /// Arm a wake for when `handle` completes.  Arm each handle exactly once
  /// (at issue time); the wake fires even if the call already completed.
  /// Armed wakes count against the carrier's in-flight cap.
  void WakeOnComplete(rpc::CallHandle& handle) const;

  /// (Re)arm this client's single timer slot; a later WakeAt overwrites an
  /// earlier one.  Used for scheduled retries (lock polling) and pacing.
  void WakeAt(util::Clock::TimePoint tp) const;
  void WakeAfter(util::Clock::Duration d) const;

 private:
  friend class Engine;
  Context(Engine* engine, std::size_t carrier, std::uint32_t local)
      : engine_(engine), carrier_(carrier), local_(local) {}

  Engine* engine_;
  std::size_t carrier_;
  std::uint32_t local_;
  ClientId id_ = 0;
};

/// A resumable client state machine.  Poll() runs on a carrier thread and
/// must never block: issue asynchronous calls, arm wakes through the
/// Context, and return kBlocked.  A machine that returns kBlocked with no
/// completion wake armed and no timer set is reported as an Internal error
/// (it could never run again).
class LogicalClient {
 public:
  virtual ~LogicalClient() = default;
  virtual Step Poll(Context& ctx) = 0;
  /// Outcome; meaningful once Poll returned kDone.
  [[nodiscard]] virtual Status result() const { return OkStatus(); }
};

struct EngineOptions {
  /// Carrier threads.  Clients are sharded carrier = id % carriers (a
  /// stable contract — callers use it to give each shard its own
  /// core::Client endpoint).
  std::size_t carriers = 2;
  /// Root of every per-client RNG stream.
  std::uint64_t seed = 1;
  /// Cap on armed completion wakes per carrier (the outstanding-request
  /// window). Must be > 0.
  std::size_t max_inflight_per_carrier = 1024;
  util::Clock* clock = nullptr;  // nullptr = real time
};

struct EngineStats {
  std::uint64_t clients = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;          // finished with a non-OK result
  std::uint64_t polls = 0;           // Poll() invocations
  std::uint64_t completion_wakes = 0;
  std::uint64_t timer_fires = 0;
  std::uint64_t clients_per_carrier = 0;  // largest shard
};

/// Carrier-pool scheduler.  Add() all clients, then Run() once: it spawns
/// the carriers through the clock, drives every machine to kDone, and
/// returns the first non-OK client result (all machines run to completion
/// regardless).  Not reusable after Run().
class Engine {
 public:
  explicit Engine(EngineOptions options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Register a client; returns its global id.  Call before Run().
  ClientId Add(std::unique_ptr<LogicalClient> client);

  Status Run();

  [[nodiscard]] EngineStats stats() const;

 private:
  friend class Context;

  struct ClientRec {
    std::unique_ptr<LogicalClient> client;
    Rng rng{0};
    bool queued = false;      // in the carrier's ready deque
    bool done = false;
    std::uint32_t pending_wakes = 0;  // armed, unfired completion wakes
    bool timer_armed = false;
    util::Clock::TimePoint timer{};
  };

  struct Carrier {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::uint32_t> ready;  // local indices
    // (deadline, local) — one armed timer slot per client.
    std::set<std::pair<util::Clock::TimePoint, std::uint32_t>> timers;
    std::vector<ClientRec> clients;
    std::size_t inflight = 0;  // armed completion wakes
    std::size_t done_count = 0;
    Status first_error = OkStatus();
    std::uint64_t polls = 0;
    std::uint64_t completion_wakes = 0;
    std::uint64_t timer_fires = 0;
    std::uint64_t failed = 0;
    std::uint64_t logical_waiter = 0;  // clock logical-waiter id
    std::thread thread;
  };

  void CarrierLoop(std::size_t ci);
  /// Completion callback target: runs on an RpcClient engine thread (or
  /// inline on the carrier when the call had already completed).
  void CompletionWake(std::size_t ci, std::uint32_t local);

  EngineOptions options_;
  util::Clock* clock_;
  std::vector<std::unique_ptr<Carrier>> carriers_;
  std::uint64_t next_id_ = 0;
  bool ran_ = false;
};

}  // namespace lwfs::driver
