#include "driver/driver.h"

#include <algorithm>
#include <string>

namespace lwfs::driver {

namespace {

constexpr util::Clock::TimePoint kNever = util::Clock::TimePoint::max();

}  // namespace

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

util::Clock* Context::clock() const { return engine_->clock_; }

Rng& Context::rng() const {
  // Only the polled client touches its own stream, and only while its
  // carrier runs it — no lock needed.
  return engine_->carriers_[carrier_]->clients[local_].rng;
}

void Context::WakeOnComplete(rpc::CallHandle& handle) const {
  Engine::Carrier& c = *engine_->carriers_[carrier_];
  {
    std::lock_guard<std::mutex> g(c.mu);
    ++c.inflight;
    ++c.clients[local_].pending_wakes;
  }
  // Outside the carrier lock: the callback may run inline (call already
  // complete) and CompletionWake takes the lock itself.
  handle.OnComplete([engine = engine_, ci = carrier_,
                     local = local_](const Result<Buffer>&) {
    engine->CompletionWake(ci, local);
  });
}

void Context::WakeAt(util::Clock::TimePoint tp) const {
  Engine::Carrier& c = *engine_->carriers_[carrier_];
  std::lock_guard<std::mutex> g(c.mu);
  Engine::ClientRec& rec = c.clients[local_];
  if (rec.timer_armed) c.timers.erase({rec.timer, local_});
  rec.timer_armed = true;
  rec.timer = tp;
  c.timers.insert({tp, local_});
}

void Context::WakeAfter(util::Clock::Duration d) const {
  WakeAt(engine_->clock_->Now() + std::max(d, util::Clock::Duration::zero()));
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(EngineOptions options)
    : options_(options), clock_(util::OrReal(options.clock)) {
  if (options_.carriers == 0) options_.carriers = 1;
  if (options_.max_inflight_per_carrier == 0) {
    options_.max_inflight_per_carrier = 1;
  }
  carriers_.reserve(options_.carriers);
  for (std::size_t i = 0; i < options_.carriers; ++i) {
    carriers_.push_back(std::make_unique<Carrier>());
  }
}

Engine::~Engine() = default;

ClientId Engine::Add(std::unique_ptr<LogicalClient> client) {
  const ClientId id = next_id_++;
  Carrier& c = *carriers_[id % options_.carriers];
  ClientRec rec;
  rec.client = std::move(client);
  // Per-client deterministic stream: mix the engine seed with the global
  // client id through one SplitMix64 round so adjacent ids decorrelate.
  Rng mix(options_.seed ^ (0x9E3779B97F4A7C15ULL * (id + 1)));
  rec.rng = Rng(mix.NextU64());
  rec.queued = true;  // every machine starts runnable
  c.clients.push_back(std::move(rec));
  c.ready.push_back(static_cast<std::uint32_t>(c.clients.size() - 1));
  return id;
}

void Engine::CompletionWake(std::size_t ci, std::uint32_t local) {
  Carrier& c = *carriers_[ci];
  {
    std::lock_guard<std::mutex> g(c.mu);
    ClientRec& rec = c.clients[local];
    if (c.inflight > 0) --c.inflight;
    if (rec.pending_wakes > 0) --rec.pending_wakes;
    ++c.completion_wakes;
    if (!rec.queued && !rec.done) {
      rec.queued = true;
      c.ready.push_back(local);
    }
  }
  clock_->NotifyAll(c.cv);
}

void Engine::CarrierLoop(std::size_t ci) {
  Carrier& c = *carriers_[ci];
  std::unique_lock<std::mutex> lk(c.mu);
  for (;;) {
    // Fire due timers.
    const util::Clock::TimePoint now = clock_->Now();
    while (!c.timers.empty() && c.timers.begin()->first <= now) {
      const std::uint32_t local = c.timers.begin()->second;
      c.timers.erase(c.timers.begin());
      ClientRec& rec = c.clients[local];
      rec.timer_armed = false;
      ++c.timer_fires;
      if (!rec.queued && !rec.done) {
        rec.queued = true;
        c.ready.push_back(local);
      }
    }
    // Exit only when every machine finished AND every armed completion has
    // fired — callbacks capture this engine, so none may outlive Run().
    if (c.done_count == c.clients.size() && c.inflight == 0) return;
    const bool throttled = c.inflight >= options_.max_inflight_per_carrier;
    if (c.ready.empty() || throttled) {
      const util::Clock::TimePoint earliest =
          c.timers.empty() ? kNever : c.timers.begin()->first;
      // Publish the earliest parked deadline as this carrier's logical
      // waiter so a VirtualClock advance can reach it; the timed wait is
      // the belt-and-braces real-time path.  Single-shot waits, no
      // predicate loop: a logical-waiter fire notifies the cv without
      // changing any predicate, and the loop re-derives everything anyway.
      clock_->SetLogicalDeadline(c.logical_waiter, earliest);
      if (earliest == kNever) {
        clock_->Wait(c.cv, lk);
      } else {
        (void)clock_->WaitUntil(c.cv, lk, earliest);
      }
      clock_->SetLogicalDeadline(c.logical_waiter, kNever);
      continue;
    }
    const std::uint32_t local = c.ready.front();
    c.ready.pop_front();
    ClientRec& rec = c.clients[local];
    rec.queued = false;
    if (rec.done) continue;  // completed while still queued
    lk.unlock();  // Poll runs unlocked: it issues calls and arms wakes
    Context ctx(this, ci, local);
    ctx.id_ = static_cast<ClientId>(local) * options_.carriers + ci;
    const Step step = rec.client->Poll(ctx);
    lk.lock();
    ++c.polls;
    switch (step) {
      case Step::kRunnable:
        if (!rec.queued) {
          rec.queued = true;
          c.ready.push_back(local);
        }
        break;
      case Step::kBlocked:
        // A wake that raced in during Poll may have re-queued it already.
        if (rec.pending_wakes == 0 && !rec.timer_armed && !rec.queued) {
          rec.done = true;
          ++c.done_count;
          ++c.failed;
          if (c.first_error.ok()) {
            c.first_error = Internal(
                "logical client " + std::to_string(ctx.id_) +
                " blocked with no completion wake or timer armed");
          }
        }
        break;
      case Step::kDone: {
        rec.done = true;
        ++c.done_count;
        if (rec.timer_armed) {  // don't let a dead timer advance the clock
          c.timers.erase({rec.timer, local});
          rec.timer_armed = false;
        }
        const Status s = rec.client->result();
        if (!s.ok()) {
          ++c.failed;
          if (c.first_error.ok()) c.first_error = s;
        }
        break;
      }
    }
  }
}

Status Engine::Run() {
  if (ran_) return FailedPrecondition("driver engine is single-use");
  ran_ = true;
  for (auto& c : carriers_) {
    c->logical_waiter = clock_->RegisterLogicalWaiter(&c->cv);
  }
  // Spawn in index order: carrier registration order — and thus the
  // virtual-time interleaving — is deterministic.
  for (std::size_t ci = 0; ci < carriers_.size(); ++ci) {
    Carrier* c = carriers_[ci].get();
    c->thread = clock_->SpawnThread([this, ci] { CarrierLoop(ci); });
  }
  for (auto& c : carriers_) clock_->Join(c->thread);
  for (auto& c : carriers_) clock_->UnregisterLogicalWaiter(c->logical_waiter);
  for (auto& c : carriers_) {
    if (!c->first_error.ok()) return c->first_error;
  }
  return OkStatus();
}

EngineStats Engine::stats() const {
  // Valid once Run() returned (carriers joined — no concurrent writers).
  EngineStats s;
  for (const auto& c : carriers_) {
    s.clients += c->clients.size();
    s.done += c->done_count;
    s.failed += c->failed;
    s.polls += c->polls;
    s.completion_wakes += c->completion_wakes;
    s.timer_fires += c->timer_fires;
    s.clients_per_carrier = std::max(
        s.clients_per_carrier, static_cast<std::uint64_t>(c->clients.size()));
  }
  return s;
}

}  // namespace lwfs::driver
