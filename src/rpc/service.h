// Typed op-spec service framework (declarative codecs + dispatch middleware).
//
// LWFS servers *enforce* policy they do not decide (§3.1): every request is
// decoded, authorized against its capability, executed, and re-encoded.
// Before this layer existed that enforcement was hand-copied into ~46
// RegisterHandler lambdas; now an op is *data* — an OpDef names the opcode,
// the required security::OpMask, and the bulk direction, while the request
// and reply types carry their own codecs — and the framework runs the same
// middleware chain around every handler:
//
//   1. decode      — malformed input is rejected with a uniform
//                    InvalidArgument("malformed <op> request"); a handler
//                    never sees a truncated Decoder.
//   2. authorize   — ops whose OpDef requires capability bits run the
//                    service's Authorizer *before* the handler body.
//   3. execute     — the typed handler: Result<Rep>(ServerContext&, Req&).
//   4. encode      — the reply struct is encoded by its own codec.
//   5. account     — per-op metrics: calls, errors, malformed rejections,
//                    authorization denials, latency µs (total and max), and
//                    bulk bytes moved through the ServerContext.
//
// The client side reuses the same codecs via CallTyped<Rep>(…, request) /
// CallTypedAsync + ResolveTyped, so request/reply framing lives in exactly
// one place.  Because codecs hang off the message types, the registry can
// also emit CodecCase descriptors that table-driven tests iterate to prove
// every message round-trips and every codec rejects truncated input.
#pragma once

#include <atomic>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rpc/rpc.h"
#include "security/types.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lwfs::rpc {

// ---------------------------------------------------------------------------
// Opcode ranges
// ---------------------------------------------------------------------------

/// Half-open opcode range owned by one protocol family.
struct OpcodeRange {
  Opcode begin = 0;
  Opcode end = 0;  // exclusive

  [[nodiscard]] constexpr bool Contains(Opcode op) const {
    return op >= begin && op < end;
  }
};

/// The global opcode space is partitioned statically; a new protocol family
/// must claim a disjoint range here.  core/protocol.h and pfs/protocol.h
/// static_assert their enums stay inside their range.
inline constexpr OpcodeRange kCoreOpcodeRange{1, 100};
inline constexpr OpcodeRange kPfsOpcodeRange{100, 200};
inline constexpr OpcodeRange kOpcodeRanges[] = {kCoreOpcodeRange,
                                                kPfsOpcodeRange};

constexpr bool OpcodeRangesDisjoint() {
  for (std::size_t i = 0; i < std::size(kOpcodeRanges); ++i) {
    if (kOpcodeRanges[i].begin >= kOpcodeRanges[i].end) return false;
    for (std::size_t j = i + 1; j < std::size(kOpcodeRanges); ++j) {
      if (kOpcodeRanges[i].begin < kOpcodeRanges[j].end &&
          kOpcodeRanges[j].begin < kOpcodeRanges[i].end) {
        return false;
      }
    }
  }
  return true;
}
static_assert(OpcodeRangesDisjoint(),
              "protocol opcode ranges overlap: dispatch would be ambiguous");

// ---------------------------------------------------------------------------
// Wire messages
// ---------------------------------------------------------------------------

/// A typed wire message: knows how to append itself to an Encoder and how to
/// (bounds-checked) parse itself from a Decoder.  Decode failures must
/// surface as non-OK Results, never partial values.
template <typename T>
concept WireMessage = requires(const T& msg, Encoder& enc, Decoder& dec) {
  { msg.Encode(enc) } -> std::same_as<void>;
  { T::Decode(dec) } -> std::same_as<Result<T>>;
};

/// A request that carries the capability the op must be authorized against.
template <typename T>
concept CapabilityBearing = requires(const T& msg) {
  { msg.cap } -> std::convertible_to<const security::Capability&>;
};

/// The empty message (ops with no request fields or no reply payload).
struct Void {
  void Encode(Encoder&) const {}
  static Result<Void> Decode(Decoder&) { return Void{}; }
  friend bool operator==(const Void&, const Void&) { return true; }
};
static_assert(WireMessage<Void>);

template <WireMessage T>
Buffer EncodeMessage(const T& msg) {
  Encoder enc;
  msg.Encode(enc);
  return std::move(enc).Take();
}

template <WireMessage T>
Result<T> DecodeMessage(ByteSpan bytes) {
  Decoder dec(bytes);
  return T::Decode(dec);
}

// ---------------------------------------------------------------------------
// Op specs and per-op metrics
// ---------------------------------------------------------------------------

/// Which way bulk data moves for an op (server-directed, Figure 6).
enum class BulkDir : std::uint8_t {
  kNone,   // small request/reply only
  kPull,   // server pulls the client's write payload
  kPush,   // server pushes into the client's read region
  kReply,  // read payload rides the reply frame as store-owned slices
};

/// Declarative description of one op: everything the middleware needs that
/// is not encoded in the request/reply types themselves.
struct OpDef {
  Opcode opcode = 0;
  std::string_view name;           // e.g. "obj_write" (metrics + messages)
  std::uint32_t required_ops = 0;  // security::OpMask bits; 0 = no cap gate
  BulkDir bulk = BulkDir::kNone;
};

/// Snapshot of one op's server-side metrics.
struct OpStats {
  Opcode opcode = 0;
  std::string name;
  std::uint64_t calls = 0;     // dispatches that entered the middleware
  std::uint64_t errors = 0;    // non-OK outcomes (rejects/denials included)
  std::uint64_t rejected = 0;  // malformed requests refused before the body
  std::uint64_t denied = 0;    // capability authorization failures
  std::uint64_t latency_us_total = 0;  // wall time inside dispatch, summed
  std::uint64_t latency_us_max = 0;
  std::uint64_t bulk_bytes = 0;  // pulled + pushed through the ServerContext
};

/// Human-readable bulk direction ("none" / "pull" / "push").
std::string_view BulkDirName(BulkDir dir);

/// Merge per-op snapshots into an aggregate keyed by op name: counters sum,
/// latency maxima take the max.  Order of first appearance is preserved, so
/// aggregating several servers' Stats() yields a stable report.
void MergeOpStats(std::vector<OpStats>& into, const std::vector<OpStats>& add);

namespace detail {

/// Lock-free per-op counters.  Dispatch lambdas hold these by shared_ptr so
/// accounting stays valid regardless of Service lifetime.
struct OpCounters {
  OpCounters(Opcode op, std::string op_name)
      : opcode(op), name(std::move(op_name)) {}

  void Record(bool ok, bool was_rejected, bool was_denied,
              std::uint64_t latency_us, std::uint64_t bulk) {
    calls.fetch_add(1, std::memory_order_relaxed);
    if (!ok) errors.fetch_add(1, std::memory_order_relaxed);
    if (was_rejected) rejected.fetch_add(1, std::memory_order_relaxed);
    if (was_denied) denied.fetch_add(1, std::memory_order_relaxed);
    latency_us_total.fetch_add(latency_us, std::memory_order_relaxed);
    std::uint64_t prev = latency_us_max.load(std::memory_order_relaxed);
    while (prev < latency_us && !latency_us_max.compare_exchange_weak(
                                    prev, latency_us,
                                    std::memory_order_relaxed)) {
    }
    if (bulk > 0) bulk_bytes.fetch_add(bulk, std::memory_order_relaxed);
  }

  [[nodiscard]] OpStats Snapshot() const {
    OpStats s;
    s.opcode = opcode;
    s.name = name;
    s.calls = calls.load(std::memory_order_relaxed);
    s.errors = errors.load(std::memory_order_relaxed);
    s.rejected = rejected.load(std::memory_order_relaxed);
    s.denied = denied.load(std::memory_order_relaxed);
    s.latency_us_total = latency_us_total.load(std::memory_order_relaxed);
    s.latency_us_max = latency_us_max.load(std::memory_order_relaxed);
    s.bulk_bytes = bulk_bytes.load(std::memory_order_relaxed);
    return s;
  }

  const Opcode opcode;
  const std::string name;
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> denied{0};
  std::atomic<std::uint64_t> latency_us_total{0};
  std::atomic<std::uint64_t> latency_us_max{0};
  std::atomic<std::uint64_t> bulk_bytes{0};
};

}  // namespace detail

// ---------------------------------------------------------------------------
// Service: the dispatch middleware
// ---------------------------------------------------------------------------

/// Checks a decoded capability against the OpMask bits an op requires.
/// Installed once per service (e.g. StorageServer's verify-mode machinery);
/// runs *before* the handler body, so a handler never executes unauthorized.
using Authorizer = std::function<Status(ServerContext& ctx,
                                        const security::Capability& cap,
                                        std::uint32_t required_ops)>;

/// Registers typed ops on an RpcServer, wrapping every handler in the
/// decode → authorize → execute → encode → account middleware chain.
///
/// Registration failures (duplicate opcode, an op that requires capability
/// bits but whose request type carries no capability) are sticky and
/// surfaced by init_status(); callers check it once before Start().
class Service {
 public:
  Service(RpcServer* server, std::string name)
      : server_(server), name_(std::move(name)) {}

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Install the capability checker used for ops with required_ops != 0.
  /// Must be called before registering such ops.
  void SetAuthorizer(Authorizer authorizer) {
    *authorizer_ = std::move(authorizer);
  }

  /// Register a typed op.  Fn is Result<Rep>(ServerContext&, Req&).
  template <WireMessage Req, WireMessage Rep, typename Fn>
  void On(const OpDef& def, Fn handler) {
    if (def.required_ops != 0) {
      if constexpr (!CapabilityBearing<Req>) {
        Note(InvalidArgument("op " + std::string(def.name) +
                             " requires capability bits but its request "
                             "type carries no capability"));
        return;
      }
    }
    auto counters = std::make_shared<detail::OpCounters>(
        def.opcode, name_ + "." + std::string(def.name));
    counters_.push_back(counters);
    Note(server_->RegisterHandler(
        def.opcode,
        MakeHandler<Req, Rep>(std::move(counters), def.required_ops,
                              "malformed " + std::string(def.name) +
                                  " request",
                              std::move(handler))));
  }

  /// First registration error, if any (checked before RpcServer::Start —
  /// which also refuses to run after a duplicate registration).
  [[nodiscard]] Status init_status() const { return init_status_; }

  /// Snapshot of every registered op's metrics, registration order.
  [[nodiscard]] std::vector<OpStats> Stats() const {
    std::vector<OpStats> out;
    out.reserve(counters_.size());
    for (const auto& c : counters_) out.push_back(c->Snapshot());
    return out;
  }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  void Note(Status status) {
    if (!status.ok() && init_status_.ok()) init_status_ = std::move(status);
  }

  /// The middleware chain.  Captures everything by value (shared_ptrs for
  /// the counters and the authorizer slot) so the returned Handler outlives
  /// this Service: dispatch never touches `this`.
  template <WireMessage Req, WireMessage Rep, typename Fn>
  Handler MakeHandler(std::shared_ptr<detail::OpCounters> counters,
                      std::uint32_t required_ops, std::string malformed,
                      Fn handler) const {
    auto authorizer = authorizer_;
    util::Clock* clk = server_->clock();  // latency stamps follow the server
    return [counters = std::move(counters), authorizer = std::move(authorizer),
            required_ops, malformed = std::move(malformed), clk,
            handler = std::move(handler)](ServerContext& ctx,
                                          Decoder& request) -> Result<Buffer> {
      const std::int64_t start_us = clk->NowUs();
      auto account = [&](Result<Buffer> outcome, bool was_rejected,
                         bool was_denied) -> Result<Buffer> {
        const auto us = clk->NowUs() - start_us;
        counters->Record(outcome.ok(), was_rejected, was_denied,
                         static_cast<std::uint64_t>(us),
                         ctx.total_pulled_bytes() + ctx.total_pushed_bytes());
        return outcome;
      };

      // 1. decode: the handler body only ever sees a fully parsed request.
      Result<Req> req = Req::Decode(request);
      if (!req.ok()) {
        return account(InvalidArgument(malformed), /*was_rejected=*/true,
                       /*was_denied=*/false);
      }

      // 2. authorize: capability checks run before any handler effect.
      if (required_ops != 0) {
        if constexpr (CapabilityBearing<Req>) {
          Status admitted =
              *authorizer
                  ? (*authorizer)(ctx, req->cap, required_ops)
                  : PermissionDenied("no authorizer installed for service");
          if (!admitted.ok()) {
            return account(std::move(admitted), /*was_rejected=*/false,
                           /*was_denied=*/true);
          }
        }
      }

      // 3. execute + 4. encode.
      Result<Rep> reply = handler(ctx, *req);
      if (!reply.ok()) {
        return account(reply.status(), /*was_rejected=*/false,
                       /*was_denied=*/false);
      }
      return account(EncodeMessage(*reply), /*was_rejected=*/false,
                     /*was_denied=*/false);
    };
  }

  RpcServer* server_;
  std::string name_;
  /// Shared slot so handlers observe an authorizer installed after On()
  /// and so dispatch holds it independently of the Service's lifetime.
  std::shared_ptr<Authorizer> authorizer_ = std::make_shared<Authorizer>();
  std::vector<std::shared_ptr<detail::OpCounters>> counters_;
  Status init_status_ = OkStatus();
};

// ---------------------------------------------------------------------------
// Typed client stubs
// ---------------------------------------------------------------------------

/// Decode a completed call's reply body as Rep.  A reply the codec cannot
/// parse is a framing bug or wire damage, reported as kInvalidArgument.
template <WireMessage Rep>
Result<Rep> ResolveTyped(Result<Buffer> reply) {
  if (!reply.ok()) return reply.status();
  Result<Rep> decoded = DecodeMessage<Rep>(ByteSpan(*reply));
  if (!decoded.ok()) return InvalidArgument("malformed rpc reply body");
  return decoded;
}

/// Synchronous typed call: encode with the request's own codec, call, decode
/// with the reply's.  The mirror image of Service::On — one codec, two ends.
template <WireMessage Rep, WireMessage Req>
Result<Rep> CallTyped(RpcClient& rpc, portals::Nid server, Opcode opcode,
                      const Req& request, const CallOptions& options = {}) {
  Buffer body = EncodeMessage(request);
  return ResolveTyped<Rep>(rpc.Call(server, opcode, ByteSpan(body), options));
}

/// Asynchronous variant; resolve the handle with ResolveTyped<Rep>.
template <WireMessage Req>
Result<CallHandle> CallTypedAsync(RpcClient& rpc, portals::Nid server,
                                  Opcode opcode, const Req& request,
                                  const CallOptions& options = {}) {
  Buffer body = EncodeMessage(request);
  return rpc.CallAsync(server, opcode, ByteSpan(body), options);
}

// ---------------------------------------------------------------------------
// Codec test descriptors
// ---------------------------------------------------------------------------

/// One message type's encode/decode pair, reified for table-driven tests:
/// `encoded` is a representative sample; `decode_reencode` parses arbitrary
/// bytes and, on success, re-encodes the value so tests can check
/// byte-identical round-trips without requiring operator== on every struct.
struct CodecCase {
  std::string name;
  Buffer encoded;
  std::function<Result<Buffer>(ByteSpan)> decode_reencode;
};

/// Build a CodecCase from a sample message value.
template <WireMessage T>
CodecCase MakeCodecCase(std::string name, const T& sample) {
  CodecCase c;
  c.name = std::move(name);
  c.encoded = EncodeMessage(sample);
  c.decode_reencode = [](ByteSpan bytes) -> Result<Buffer> {
    Result<T> decoded = DecodeMessage<T>(bytes);
    if (!decoded.ok()) return decoded.status();
    return EncodeMessage(*decoded);
  };
  return c;
}

}  // namespace lwfs::rpc
