#include "rpc/service.h"

#include <algorithm>

namespace lwfs::rpc {

std::string_view BulkDirName(BulkDir dir) {
  switch (dir) {
    case BulkDir::kNone: return "none";
    case BulkDir::kPull: return "pull";
    case BulkDir::kPush: return "push";
    case BulkDir::kReply: return "reply";
  }
  return "unknown";
}

void MergeOpStats(std::vector<OpStats>& into, const std::vector<OpStats>& add) {
  for (const OpStats& s : add) {
    auto it = std::find_if(into.begin(), into.end(), [&](const OpStats& have) {
      return have.name == s.name;
    });
    if (it == into.end()) {
      into.push_back(s);
      continue;
    }
    it->calls += s.calls;
    it->errors += s.errors;
    it->rejected += s.rejected;
    it->denied += s.denied;
    it->latency_us_total += s.latency_us_total;
    it->latency_us_max = std::max(it->latency_us_max, s.latency_us_max);
    it->bulk_bytes += s.bulk_bytes;
  }
}

}  // namespace lwfs::rpc
