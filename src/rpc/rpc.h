// Request/response RPC with server-directed bulk data movement.
//
// This is the access protocol of Figure 6: a client sends a *small* request
// message to a server's bounded request portal and registers any bulk data
// it wants moved; the *server* then pulls (write) or pushes (read) the bulk
// bytes over the one-sided portals fabric when it has buffer space and
// device bandwidth, and finally sends a small reply.
//
// Flow control falls out of the bounded request portal: when an I/O node is
// saturated its request queue fills, new Puts fail with kResourceExhausted,
// and RpcClient backs off and resends — exactly the retry overhead the
// paper charges against client-pushed designs, but paid on tiny messages
// instead of the bulk payload.
//
// The client side is an asynchronous completion engine: CallAsync() issues
// the small request and returns a CallHandle immediately; a single engine
// thread per RpcClient drains a shared completion queue, tracks per-call
// deadlines, and retries rejected sends with decorrelated-jitter backoff.
// That lets any number of caller threads keep a *bounded window* of
// requests in flight — the "outstanding requests" knob Figure 6's
// flow-control argument is about — without one OS thread per request.
// Call() remains as a thin CallAsync+Await wrapper.
//
// Robustness (PR 3): every request/reply frame carries a CRC32 trailer and
// the request header carries a checksum of the registered write payload, so
// wire corruption surfaces as a clean drop/kDataLoss instead of a garbage
// decode.  A reply timeout triggers full request retransmission (budget:
// ClientOptions.max_retransmits); the server keeps an at-most-once
// dedup/reply cache keyed by (client nid, request id) so retransmitted
// mutating ops are never applied twice.  A per-server consecutive-failure
// circuit breaker fails calls fast while a server is dead and re-probes
// half-open after a cooldown.
//
// Portal layout (per NIC):
//   portal 0 — request queue (message mode, bounded)
//   portal 1 — replies       (message mode, matched by request id)
//   portal 2 — bulk regions  (region mode, matched by request id)
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "portals/portals.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/status.h"

namespace lwfs::rpc {

using Opcode = std::uint32_t;

inline constexpr portals::PortalIndex kRequestPortal = 0;
inline constexpr portals::PortalIndex kReplyPortal = 1;
inline constexpr portals::PortalIndex kBulkPortal = 2;
/// Control-plane requests (e.g. capability invalidation pushed from the
/// authorization service) use a separate portal served by its own worker,
/// so control traffic can never deadlock behind blocked data-plane
/// handlers.
inline constexpr portals::PortalIndex kControlPortal = 3;
/// Replica-chain forwarding between storage servers.  A chain head that
/// forwarded a hop on its own data portal could deadlock two servers whose
/// data workers all block awaiting each other's replies; the dedicated
/// portal (with its own workers) breaks the cycle for the forwarding hop.
inline constexpr portals::PortalIndex kReplicaPortal = 4;

/// Client-side statistics (retries are the §3.2 resend overhead).
struct ClientStats {
  std::uint64_t calls = 0;
  std::uint64_t resends = 0;  // request portal rejected the Put
  std::uint64_t failures = 0;
  std::uint64_t retransmits = 0;         // full re-sends after a lost reply
  std::uint64_t crc_rejects = 0;         // corrupt reply frames discarded
  std::uint64_t bulk_crc_failures = 0;   // pushed bulk payload failed its CRC
  std::uint64_t breaker_opens = 0;       // circuit transitions closed -> open
  std::uint64_t breaker_fast_fails = 0;  // calls refused while a breaker open
};

/// Per-opcode client-side tally: calls issued and calls that completed with
/// a non-OK status (transport failures and server error replies alike).
struct ClientOpTally {
  std::uint64_t calls = 0;
  std::uint64_t errors = 0;
};

/// Client-wide defaults and health-tracking knobs.  Per-call CallOptions
/// override the deadline/retransmit budget.
struct ClientOptions {
  /// Reply deadline per send attempt when CallOptions.timeout is zero.
  std::chrono::milliseconds default_timeout{5000};
  /// Full request retransmissions after a reply timeout or a corrupt reply
  /// (the §3.2 "resend small messages" recovery; the server's at-most-once
  /// reply cache absorbs the duplicates).  Worst-case call latency is
  /// therefore (1 + max_retransmits) * timeout.
  int max_retransmits = 2;
  /// Consecutive *transport* failures (timeout / unavailable / resends
  /// exhausted) against one server before its circuit breaker opens and
  /// calls fail fast with kUnavailable.  <= 0 disables the breaker.
  /// Decoded replies — even error replies — count as contact and close it.
  int breaker_threshold = 8;
  /// How long an open breaker fast-fails before admitting one half-open
  /// probe call.
  std::chrono::milliseconds breaker_cooldown{250};
  /// Time source for deadlines, backoff, breaker cooldowns, and the engine
  /// thread (nullptr = real time).
  util::Clock* clock = nullptr;
};

/// Decorrelated-jitter backoff for resends against a full request portal.
/// Plain exponential backoff keeps synchronized ranks retrying in lockstep
/// (they all got rejected at the same instant, so they all come back at the
/// same instant); drawing each sleep uniformly from [base, min(cap, 3×prev)]
/// spreads the retry times apart while still growing toward the cap.
class Backoff {
 public:
  static constexpr int kDefaultBaseUs = 10;
  static constexpr int kDefaultCapUs = 2000;

  explicit Backoff(std::uint64_t seed, int base_us = kDefaultBaseUs,
                   int cap_us = kDefaultCapUs)
      : rng_(seed), base_us_(base_us), cap_us_(cap_us), prev_us_(base_us) {}

  /// Next sleep in microseconds.
  int NextUs() {
    const auto lo = static_cast<std::uint64_t>(base_us_);
    const auto hi = static_cast<std::uint64_t>(
        std::min(static_cast<long long>(cap_us_),
                 3LL * static_cast<long long>(prev_us_)));
    const std::uint64_t span = hi > lo ? hi - lo : 0;
    prev_us_ = static_cast<int>(
        lo + (span > 0 ? rng_.NextBelow(span + 1) : 0));
    return prev_us_;
  }

 private:
  Rng rng_;
  int base_us_;
  int cap_us_;
  int prev_us_;
};

/// Per-call options.
struct CallOptions {
  /// Registered for server *pull* (a write payload).
  ByteSpan bulk_out{};
  /// Zero-copy alternative to `bulk_out`: an *owned* slice registered for
  /// server pull.  The NIC holds a reference for the life of the call, and
  /// the server's PullBulkSlice gets sub-slices of these very bytes — no
  /// staging copy, and the payload stays valid even if the call times out
  /// while the server is still reading.  Takes precedence over bulk_out.
  util::SharedSlice bulk_out_slice{};
  /// Registered for server *push* (a read destination).
  MutableByteSpan bulk_in{};
  /// Give up after this long without a reply (measured from the send that
  /// the server accepted).  Zero means "use ClientOptions.default_timeout".
  std::chrono::milliseconds timeout{0};
  /// Resend attempts when the request portal rejects us.
  int max_resends = 1000;
  /// Full retransmissions after a reply timeout; -1 means "use
  /// ClientOptions.max_retransmits".
  int max_retransmits = -1;
  /// Which portal to address the request to (kRequestPortal or
  /// kControlPortal).
  portals::PortalIndex request_portal = kRequestPortal;
};

namespace detail {

/// Shared state of one in-flight call.  The awaiting thread and the
/// client's engine thread both hold references; the registered reply/bulk
/// entries live here so the caller's memory stays attached to the fabric
/// until the completion event — never longer, never shorter.
struct CallState {
  // Immutable after issue.
  std::uint64_t request_id = 0;
  Opcode opcode = 0;  // for per-op client tallies
  portals::Nid server = portals::kInvalidNid;
  portals::PortalIndex request_portal = kRequestPortal;
  /// Encoded header + request body + CRC.  An owned slice, so retransmits
  /// re-send the same bytes by reference instead of re-encoding or cloning.
  util::SharedSlice wire;
  std::chrono::milliseconds timeout{5000};
  int max_resends = 0;
  int max_retransmits = 0;
  MutableByteSpan bulk_in{};  // for client-side bulk CRC verification

  /// Bulk payload that rode the reply frame itself (slice read path).  When
  /// the fabric delivered the frame's parts by reference this aliases the
  /// server-side bytes — store-owned memory on a first execution, the reply
  /// cache's frame on a retransmit.  Written by the engine before `done` is
  /// published; read through CallHandle::ReplyBulk() afterwards.
  util::SharedSlice reply_bulk;

  util::Clock* clock = nullptr;  // set at issue, used by Await/FinishCall

  // Engine bookkeeping; guarded by the owning RpcClient's mutex.
  bool accepted = false;  // the server's request portal took the Put
  bool sending = false;   // a Put is in flight outside the client mutex
  // A corrupt reply raced back and rescheduled a retransmit while the Put
  // was unwinding; PerformSend must not clobber that schedule.
  bool retransmit_pending = false;
  int resend_attempts = 0;
  int retransmits_used = 0;
  util::Clock::TimePoint next_send{};
  util::Clock::TimePoint deadline{};
  Backoff backoff{0};
  portals::RegisteredRegion reply_region;
  portals::RegisteredRegion out_region;
  portals::RegisteredRegion in_region;

  // Completion; guarded by `mutex` below (not the client's mutex, so
  // waiters never contend with the engine's send path).
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Result<Buffer> result = Buffer{};
  /// One-shot completion callback (CallHandle::OnComplete).  Stored while
  /// the call is pending; extracted and invoked exactly once when the
  /// result is published.
  std::function<void(const Result<Buffer>&)> on_complete;
};

}  // namespace detail

/// Completion handle for an asynchronous call.  Cheap to copy (shared
/// state) and safe to drop before completion — the engine keeps the call
/// alive until its completion event — but the memory behind
/// CallOptions::bulk_out / bulk_in must stay valid until the call
/// completes.
class CallHandle {
 public:
  CallHandle() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] std::uint64_t request_id() const {
    return state_ ? state_->request_id : 0;
  }

  /// Block until the call completes; returns the reply body or the error.
  Result<Buffer> Await();

  /// Non-blocking: if the call has completed, fill *out and return true.
  bool TryAwait(Result<Buffer>* out);

  /// Arrange for `fn` to run exactly once when the call completes — the
  /// completion-notification path that lets an event-driven carrier thread
  /// multiplex thousands of in-flight calls without pinning a thread per
  /// call in Await().
  ///
  /// Contract:
  ///  - If the call is already done, `fn` runs immediately on the calling
  ///    thread; otherwise it runs on the client's engine thread, after
  ///    `done` is set and before waiters blocked in Await() are released.
  ///    Either way, TryAwait() inside (or after) the callback succeeds.
  ///  - `fn` must be fast and must not block or issue blocking calls: it
  ///    runs on the completion engine, so a slow callback delays every
  ///    other in-flight call on the same client.  Typical use is "flip a
  ///    flag under a mutex and Notify a condition variable".
  ///  - At most one callback per call; a second OnComplete replaces an
  ///    unfired predecessor.
  void OnComplete(std::function<void(const Result<Buffer>&)> fn);

  /// The bulk payload that rode the reply frame (server PushBulkSlice).
  /// Empty until the call completes successfully.  Returns a ref-counted
  /// alias of the received bytes — zero-copy when the fabric delivered the
  /// reply's parts by reference — so it stays valid for as long as the
  /// caller holds it, independent of the handle.
  [[nodiscard]] util::SharedSlice ReplyBulk() const;

 private:
  friend class RpcClient;
  explicit CallHandle(std::shared_ptr<detail::CallState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::CallState> state_;
};

/// Issues calls from one client endpoint.  Thread-safe: any number of
/// threads may issue sync or async calls on one RpcClient; one lazily
/// started engine thread handles completions, deadlines, and resends.
class RpcClient {
 public:
  explicit RpcClient(std::shared_ptr<portals::Nic> nic,
                     ClientOptions options = {})
      : nic_(std::move(nic)),
        options_(options),
        clock_(util::OrReal(options.clock)),
        completions_(0, clock_) {}
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Asynchronous call: registers the reply slot and bulk regions, sends
  /// the (small) request, and returns without waiting for the reply.
  /// Returns an error only for immediate, non-retryable send failures;
  /// retryable rejections are resent in the background.
  Result<CallHandle> CallAsync(portals::Nid server, Opcode opcode,
                               ByteSpan request,
                               const CallOptions& options = {});

  /// Synchronous call: CallAsync + Await.  On success returns the reply
  /// body.
  Result<Buffer> Call(portals::Nid server, Opcode opcode, ByteSpan request,
                      const CallOptions& options = {});

  [[nodiscard]] portals::Nid nid() const { return nic_->nid(); }
  [[nodiscard]] const ClientOptions& options() const { return options_; }
  [[nodiscard]] ClientStats stats() const {
    return {calls_.load(),          resends_.load(),
            failures_.load(),       retransmits_.load(),
            crc_rejects_.load(),    bulk_crc_failures_.load(),
            breaker_opens_.load(),  breaker_fast_fails_.load()};
  }

  /// Per-opcode issue/error tallies, keyed by opcode.  Mirrors the server's
  /// per-op metrics so a stub that silently eats errors shows up on the
  /// client side of the ledger too.
  [[nodiscard]] std::map<Opcode, ClientOpTally> OpTallies() const;

  /// True while `server`'s circuit breaker is open (calls fail fast).
  [[nodiscard]] bool BreakerOpen(portals::Nid server);

  /// The client's time source (never null) — lock-poll loops built on this
  /// client (LockBlocking, extent-lock acquisition) wait through it.
  [[nodiscard]] util::Clock* clock() const { return clock_; }

 private:
  /// How a finished call reflects on the target server's health.
  enum class Contact {
    kReplied,           // a decodable reply arrived: the server is alive
    kTransportFailure,  // timeout / unavailable / resends exhausted
    kNeutral,           // client-side abort; says nothing about the server
  };

  void EngineLoop();
  void EnsureEngineLocked();
  void WakeEngine();
  /// Perform the Put for `state` — *outside* mutex_, because an injected
  /// fabric delay may sleep inside Put and the engine must never sleep
  /// holding the client lock — then reacquire it to apply the outcome.
  /// The caller marked `state.sending` under mutex_ first.  Returns false
  /// when the call failed terminally: the state has been removed from
  /// inflight_ and the caller must complete it with `*failure`.
  bool PerformSend(const std::shared_ptr<detail::CallState>& state,
                   Status* failure);
  /// Detach regions, record stats and breaker health, publish the result,
  /// wake waiters.
  void FinishCall(const std::shared_ptr<detail::CallState>& state,
                  Result<Buffer> result, Contact contact);
  /// Re-arm the (unlink_on_use) reply slot after a corrupt reply consumed it.
  Status ReattachReplySlot(detail::CallState& state);
  /// Decode a CRC-verified reply frame, delivered as one or more parts (the
  /// CRC trailer already stripped).  Region-push reads verify the pushed
  /// bulk payload against the checksum the server reported; a frame-carried
  /// bulk slice is extracted zero-copy into `state.reply_bulk` (the frame
  /// CRC already covered it).
  Result<Buffer> ResolveReply(detail::CallState& state,
                              std::span<const util::SharedSlice> parts);
  /// Admission check against `server`'s breaker; fails fast when open.
  Status AdmitLocked(portals::Nid server);
  void RecordContactLocked(portals::Nid server, Contact contact);

  std::shared_ptr<portals::Nic> nic_;
  ClientOptions options_;
  util::Clock* clock_;
  /// Shared completion queue: every reply match entry delivers here
  /// (unbounded — local completions, not a modeled NIC resource).
  portals::EventQueue completions_;

  mutable std::mutex mutex_;
  bool engine_running_ = false;
  bool stopping_ = false;
  std::thread engine_;
  std::unordered_map<std::uint64_t, std::shared_ptr<detail::CallState>>
      inflight_;

  /// Per-server health (guarded by mutex_): consecutive transport failures
  /// open the circuit; after the cooldown one half-open probe is admitted
  /// and a decoded reply closes it again.
  struct Breaker {
    int consecutive = 0;
    bool open = false;
    bool probing = false;
    util::Clock::TimePoint open_until{};
  };
  std::unordered_map<portals::Nid, Breaker> breakers_;
  /// Per-opcode tallies (guarded by mutex_; std::map so snapshots come out
  /// opcode-ordered).
  std::map<Opcode, ClientOpTally> op_tallies_;

  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> resends_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> retransmits_{0};
  std::atomic<std::uint64_t> crc_rejects_{0};
  std::atomic<std::uint64_t> bulk_crc_failures_{0};
  std::atomic<std::uint64_t> breaker_opens_{0};
  std::atomic<std::uint64_t> breaker_fast_fails_{0};
  /// Per-client (guarded by mutex_), not process-global: ids — and the
  /// backoff jitter seeded from them — must depend only on this client's
  /// own call sequence for virtual-time runs to be reproducible.  Replies
  /// and dedup keys are scoped to the client nid, so per-client uniqueness
  /// is all the protocol needs.
  std::uint64_t next_request_id_ = 1;
};

/// Handed to server handlers; carries the request and the bulk-transfer
/// hooks back to the initiating client.
class ServerContext {
 public:
  ServerContext(portals::Nic* nic, portals::Nid client,
                std::uint64_t request_id, std::uint64_t bulk_out_len,
                std::uint64_t bulk_in_len, std::uint32_t bulk_out_crc = 0)
      : nic_(nic),
        client_(client),
        request_id_(request_id),
        bulk_out_len_(bulk_out_len),
        bulk_in_len_(bulk_in_len),
        bulk_out_crc_(bulk_out_crc) {}

  [[nodiscard]] portals::Nid client() const { return client_; }
  [[nodiscard]] std::uint64_t request_id() const { return request_id_; }
  /// Size of the client's registered write payload (0 = none).
  [[nodiscard]] std::uint64_t bulk_out_size() const { return bulk_out_len_; }
  /// Size of the client's registered read region (0 = none).
  [[nodiscard]] std::uint64_t bulk_in_size() const { return bulk_in_len_; }

  /// Server-directed *pull*: fetch [offset, offset+out.size()) of the
  /// client's registered write payload into server memory.  Gets are
  /// idempotent, so injected losses (kTimeout) are retried a few times
  /// before surfacing.  Sequential pulls from offset 0 are CRC-accumulated
  /// for VerifyPulledPayload().
  Status PullBulk(MutableByteSpan out, std::size_t offset = 0);

  /// Zero-copy pull: when the client registered an owned slice
  /// (CallOptions::bulk_out_slice), the result is a sub-slice of the
  /// client's own payload bytes — no staging buffer, no copy, and the
  /// reference keeps the bytes alive however long the server holds them.
  /// A raw-span registration degrades to one counted staging copy.  Same
  /// retry and CRC-accumulation semantics as PullBulk.
  Result<util::SharedSlice> PullBulkSlice(std::size_t length,
                                          std::size_t offset = 0);

  /// Server-directed *push*: place `data` into the client's registered read
  /// region at `offset`.  Sequential pushes from offset 0 are
  /// CRC-accumulated; the reply frame carries the running checksum so the
  /// client can verify what landed in its region.
  Status PushBulk(ByteSpan data, std::size_t offset = 0);

  /// Zero-copy push: queue an *owned* slice to ride the reply frame itself
  /// as a scatter-gather part.  No staging buffer, no region registration:
  /// the client receives a sub-slice of these very bytes (store-owned
  /// memory), the reply cache holds the same slice by reference, and a
  /// retransmitted reply re-delivers the identical payload — closing the
  /// "bulk lost but reply cached" window the region-push path tolerates.
  /// Covered by the reply frame's CRC trailer, so no separate checksum.
  /// Multiple pushes concatenate in push order.
  Status PushBulkSlice(util::SharedSlice data);

  /// Drain the queued reply-frame bulk parts (dispatch assembles them into
  /// the reply frame after the handler returns).
  [[nodiscard]] std::vector<util::SharedSlice> TakeReplyBulk() {
    return std::move(reply_bulk_);
  }
  /// Total bytes queued via PushBulkSlice.
  [[nodiscard]] std::uint64_t reply_bulk_bytes() const {
    return reply_bulk_bytes_;
  }

  /// After pulling the client's entire payload: check it against the
  /// checksum the client sent in the request header.  Corruption on the
  /// bulk wire surfaces as kDataLoss (the client application retries).
  [[nodiscard]] Status VerifyPulledPayload() const;

  /// Checksum/length of everything pushed so far, in push order (0/0 when
  /// pushes were not sequential-from-zero and thus not client-verifiable).
  [[nodiscard]] std::uint32_t pushed_crc() const {
    return pushed_in_order_ ? pushed_.value() : 0;
  }
  [[nodiscard]] std::uint64_t pushed_bytes() const {
    return pushed_in_order_ ? pushed_.bytes() : 0;
  }

  /// Raw byte totals moved through this context, regardless of ordering —
  /// the dispatch middleware's bulk-bytes metric.
  [[nodiscard]] std::uint64_t total_pulled_bytes() const {
    return total_pulled_;
  }
  [[nodiscard]] std::uint64_t total_pushed_bytes() const {
    return total_pushed_;
  }

 private:
  portals::Nic* nic_;
  portals::Nid client_;
  std::uint64_t request_id_;
  std::uint64_t bulk_out_len_;
  std::uint64_t bulk_in_len_;
  std::uint32_t bulk_out_crc_;
  Crc32Accumulator pulled_;
  bool pulled_in_order_ = true;
  Crc32Accumulator pushed_;
  bool pushed_in_order_ = true;
  std::uint64_t total_pulled_ = 0;
  std::uint64_t total_pushed_ = 0;
  std::vector<util::SharedSlice> reply_bulk_;
  std::uint64_t reply_bulk_bytes_ = 0;
};

/// Handler: consume the request body, perform the op (using ctx for bulk
/// movement), return status + reply body.
using Handler =
    std::function<Result<Buffer>(ServerContext& ctx, Decoder& request)>;

struct ServerOptions {
  /// Bound on queued requests; overflow rejects the Put (client resends).
  std::size_t request_queue_depth = 4096;
  /// Worker threads servicing the queue.
  int worker_threads = 1;
  /// Portal this server listens on.  Several RpcServers can share one Nic
  /// as long as they listen on different portals.
  portals::PortalIndex request_portal = kRequestPortal;
  /// At-most-once dedup/reply cache: completed replies kept (FIFO bound) so
  /// a retransmitted request re-sends the recorded reply instead of
  /// re-running the handler.  0 disables dedup (at-least-once semantics).
  std::size_t reply_cache_entries = 1024;
  /// Separate, tighter bound on frame-carried bulk payload bytes pinned by
  /// the cache.  A slice-carrying read reply keeps its store-owned payload
  /// alive for as long as it sits in the cache; without a byte bound a
  /// burst of large reads pins payloads long after the client has consumed
  /// them (and starves the store's recycled read buffers).  Oldest
  /// bulk-carrying entries are evicted first once the bound is exceeded.
  /// Evicting one only forfeits the replay shortcut — a retransmit then
  /// re-runs the read handler, which is idempotent.
  std::size_t reply_cache_bulk_bytes = 2u << 20;
  /// Time source for the request queue, workers, and per-op latency
  /// metrics (nullptr = real time).
  util::Clock* clock = nullptr;
};

/// Server-side robustness counters.
struct ServerStats {
  std::uint64_t served = 0;      // requests that reached a handler
  std::uint64_t dedup_hits = 0;  // duplicate requests absorbed by the cache
  std::uint64_t crc_drops = 0;   // corrupt request frames discarded
};

/// Serves RPCs on a NIC.  Start() spawns workers; Stop() drains and joins.
class RpcServer {
 public:
  RpcServer(std::shared_ptr<portals::Nic> nic, ServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Register before Start().  Registering two handlers for one opcode is a
  /// wiring bug, never a feature: the collision is rejected with
  /// kAlreadyExists and recorded so Start() refuses to run a half-wired
  /// server.
  Status RegisterHandler(Opcode opcode, Handler handler);

  /// Opcodes with a registered handler, ascending.
  [[nodiscard]] std::vector<Opcode> RegisteredOpcodes() const;

  Status Start();
  void Stop();

  [[nodiscard]] portals::Nid nid() const { return nic_->nid(); }
  [[nodiscard]] std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] ServerStats stats() const {
    return {served_.load(std::memory_order_relaxed),
            dedup_hits_.load(std::memory_order_relaxed),
            crc_drops_.load(std::memory_order_relaxed)};
  }

  /// Drop the dedup/reply cache (volatile state lost in a crash; the
  /// Restart() paths call this).
  void ResetReplyCache();

  /// The server's time source (never null); Service middleware stamps
  /// per-op latency from it.
  [[nodiscard]] util::Clock* clock() const { return clock_; }

 private:
  /// Dedup key: (client nid, request id).
  using DedupKey = std::pair<std::uint64_t, std::uint64_t>;

  void WorkerLoop();
  void Dispatch(const portals::Event& event);
  /// Drop one cached reply, returning its pinned bulk bytes to the bound.
  /// No-op if the other eviction path already removed it.
  void EraseCacheEntryLocked(const DedupKey& key);

  std::shared_ptr<portals::Nic> nic_;
  ServerOptions options_;
  util::Clock* clock_;
  portals::EventQueue request_eq_;
  portals::MeHandle request_me_ = portals::kInvalidMeHandle;
  std::unordered_map<Opcode, Handler> handlers_;
  Status registration_error_ = OkStatus();  // first duplicate, sticky
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> dedup_hits_{0};
  std::atomic<std::uint64_t> crc_drops_{0};
  bool started_ = false;

  /// A cached reply plus the frame-carried bulk bytes it pins (0 for
  /// replies with no slice payload).
  struct CachedReply {
    util::Frame wire;
    std::uint64_t bulk_bytes = 0;
  };

  std::mutex cache_mutex_;
  /// Completed request -> wire reply frame.  Frames hold slice references,
  /// so caching and resending a reply never clones its body.
  std::map<DedupKey, CachedReply> reply_cache_;
  std::set<DedupKey> in_progress_;           // running now: drop duplicates
  std::deque<DedupKey> cache_fifo_;          // eviction order
  std::deque<DedupKey> bulk_fifo_;           // bulk-carrying entries only
  std::uint64_t cache_bulk_bytes_ = 0;       // bulk pinned by the cache
};

}  // namespace lwfs::rpc
