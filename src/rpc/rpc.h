// Request/response RPC with server-directed bulk data movement.
//
// This is the access protocol of Figure 6: a client sends a *small* request
// message to a server's bounded request portal and registers any bulk data
// it wants moved; the *server* then pulls (write) or pushes (read) the bulk
// bytes over the one-sided portals fabric when it has buffer space and
// device bandwidth, and finally sends a small reply.
//
// Flow control falls out of the bounded request portal: when an I/O node is
// saturated its request queue fills, new Puts fail with kResourceExhausted,
// and RpcClient backs off and resends — exactly the retry overhead the
// paper charges against client-pushed designs, but paid on tiny messages
// instead of the bulk payload.
//
// Portal layout (per NIC):
//   portal 0 — request queue (message mode, bounded)
//   portal 1 — replies       (message mode, matched by request id)
//   portal 2 — bulk regions  (region mode, matched by request id)
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "portals/portals.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lwfs::rpc {

using Opcode = std::uint32_t;

inline constexpr portals::PortalIndex kRequestPortal = 0;
inline constexpr portals::PortalIndex kReplyPortal = 1;
inline constexpr portals::PortalIndex kBulkPortal = 2;
/// Control-plane requests (e.g. capability invalidation pushed from the
/// authorization service) use a separate portal served by its own worker,
/// so control traffic can never deadlock behind blocked data-plane
/// handlers.
inline constexpr portals::PortalIndex kControlPortal = 3;

/// Client-side statistics (retries are the §3.2 resend overhead).
struct ClientStats {
  std::uint64_t calls = 0;
  std::uint64_t resends = 0;
  std::uint64_t failures = 0;
};

/// Per-call options.
struct CallOptions {
  /// Registered for server *pull* (a write payload).
  ByteSpan bulk_out{};
  /// Registered for server *push* (a read destination).
  MutableByteSpan bulk_in{};
  /// Give up after this long without a reply.
  std::chrono::milliseconds timeout{5000};
  /// Resend attempts when the request portal rejects us.
  int max_resends = 1000;
  /// Which portal to address the request to (kRequestPortal or
  /// kControlPortal).
  portals::PortalIndex request_portal = kRequestPortal;
};

/// Issues calls from one client endpoint.  Thread-compatible: use one
/// RpcClient per client thread (they can share a Nic).
class RpcClient {
 public:
  explicit RpcClient(std::shared_ptr<portals::Nic> nic) : nic_(std::move(nic)) {}

  /// Synchronous call.  On success returns the reply body.
  Result<Buffer> Call(portals::Nid server, Opcode opcode, ByteSpan request,
                      const CallOptions& options = {});

  [[nodiscard]] portals::Nid nid() const { return nic_->nid(); }
  [[nodiscard]] ClientStats stats() const {
    return {calls_.load(), resends_.load(), failures_.load()};
  }

 private:
  std::shared_ptr<portals::Nic> nic_;
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> resends_{0};
  std::atomic<std::uint64_t> failures_{0};
  static std::atomic<std::uint64_t> next_request_id_;
};

/// Handed to server handlers; carries the request and the bulk-transfer
/// hooks back to the initiating client.
class ServerContext {
 public:
  ServerContext(portals::Nic* nic, portals::Nid client,
                std::uint64_t request_id, std::uint64_t bulk_out_len,
                std::uint64_t bulk_in_len)
      : nic_(nic),
        client_(client),
        request_id_(request_id),
        bulk_out_len_(bulk_out_len),
        bulk_in_len_(bulk_in_len) {}

  [[nodiscard]] portals::Nid client() const { return client_; }
  [[nodiscard]] std::uint64_t request_id() const { return request_id_; }
  /// Size of the client's registered write payload (0 = none).
  [[nodiscard]] std::uint64_t bulk_out_size() const { return bulk_out_len_; }
  /// Size of the client's registered read region (0 = none).
  [[nodiscard]] std::uint64_t bulk_in_size() const { return bulk_in_len_; }

  /// Server-directed *pull*: fetch [offset, offset+out.size()) of the
  /// client's registered write payload into server memory.
  Status PullBulk(MutableByteSpan out, std::size_t offset = 0);

  /// Server-directed *push*: place `data` into the client's registered read
  /// region at `offset`.
  Status PushBulk(ByteSpan data, std::size_t offset = 0);

 private:
  portals::Nic* nic_;
  portals::Nid client_;
  std::uint64_t request_id_;
  std::uint64_t bulk_out_len_;
  std::uint64_t bulk_in_len_;
};

/// Handler: consume the request body, perform the op (using ctx for bulk
/// movement), return status + reply body.
using Handler =
    std::function<Result<Buffer>(ServerContext& ctx, Decoder& request)>;

struct ServerOptions {
  /// Bound on queued requests; overflow rejects the Put (client resends).
  std::size_t request_queue_depth = 4096;
  /// Worker threads servicing the queue.
  int worker_threads = 1;
  /// Portal this server listens on.  Several RpcServers can share one Nic
  /// as long as they listen on different portals.
  portals::PortalIndex request_portal = kRequestPortal;
};

/// Serves RPCs on a NIC.  Start() spawns workers; Stop() drains and joins.
class RpcServer {
 public:
  RpcServer(std::shared_ptr<portals::Nic> nic, ServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Register before Start().  Re-registering an opcode replaces it.
  void RegisterHandler(Opcode opcode, Handler handler);

  Status Start();
  void Stop();

  [[nodiscard]] portals::Nid nid() const { return nic_->nid(); }
  [[nodiscard]] std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();
  void Dispatch(const portals::Event& event);

  std::shared_ptr<portals::Nic> nic_;
  ServerOptions options_;
  portals::EventQueue request_eq_;
  portals::MeHandle request_me_ = portals::kInvalidMeHandle;
  std::unordered_map<Opcode, Handler> handlers_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> served_{0};
  bool started_ = false;
};

}  // namespace lwfs::rpc
