#include "rpc/rpc.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "util/logging.h"

namespace lwfs::rpc {

namespace {

/// Every frame (request and reply) ends in a 4-byte CRC32 of everything
/// before it; a receiver that sees a mismatch drops the frame and lets the
/// retransmission machinery recover.
constexpr std::size_t kCrcTrailerBytes = 4;

/// Bulk Gets are idempotent reads of registered client memory, so injected
/// losses (kTimeout) are retried in place this many times.
constexpr int kBulkGetRetries = 4;

void AppendCrcTrailer(Buffer& frame) {
  const std::uint32_t crc = Crc32(ByteSpan(frame));
  frame.push_back(static_cast<std::uint8_t>(crc & 0xFFu));
  frame.push_back(static_cast<std::uint8_t>((crc >> 8) & 0xFFu));
  frame.push_back(static_cast<std::uint8_t>((crc >> 16) & 0xFFu));
  frame.push_back(static_cast<std::uint8_t>((crc >> 24) & 0xFFu));
}

bool VerifyAndStripCrc(ByteSpan frame, ByteSpan* payload) {
  if (frame.size() < kCrcTrailerBytes) return false;
  const std::size_t n = frame.size() - kCrcTrailerBytes;
  const std::uint32_t stored = static_cast<std::uint32_t>(frame[n]) |
                               static_cast<std::uint32_t>(frame[n + 1]) << 8 |
                               static_cast<std::uint32_t>(frame[n + 2]) << 16 |
                               static_cast<std::uint32_t>(frame[n + 3]) << 24;
  if (Crc32(frame.first(n)) != stored) return false;
  *payload = frame.first(n);
  return true;
}

/// Slice flavor: *payload is a zero-copy sub-slice of the delivered frame,
/// so downstream TakeSlice() decodes alias the wire bytes directly.
bool VerifyAndStripCrc(const util::SharedSlice& frame,
                       util::SharedSlice* payload) {
  ByteSpan stripped;
  if (!VerifyAndStripCrc(frame.span(), &stripped)) return false;
  *payload = frame.Slice(0, stripped.size());
  return true;
}

/// Multi-part flavor for reply frames delivered by reference
/// (MeOptions::deliver_parts): verify the CRC trailer by streaming across
/// the part list — never gathering — and trim the trailing 4 bytes off the
/// list in place.  Returns false on a mismatch or a short frame.
bool VerifyAndStripCrcParts(std::vector<util::SharedSlice>& parts) {
  std::size_t total = 0;
  for (const util::SharedSlice& p : parts) total += p.size();
  if (total < kCrcTrailerBytes) return false;
  const std::size_t body = total - kCrcTrailerBytes;
  // Collect the trailer by walking parts back from the frame's tail — it
  // may straddle a part boundary, but never more than the last few parts,
  // so a bulk payload riding the frame is never rescanned here.
  std::uint8_t trailer[kCrcTrailerBytes];
  std::size_t end = total;
  for (auto it = parts.rbegin(); it != parts.rend() && end > body; ++it) {
    const std::size_t start = end - it->size();
    const std::size_t lo = std::max(start, body);
    for (std::size_t i = lo; i < end; ++i) {
      trailer[i - body] = it->data()[i - start];
    }
    end = start;
  }
  std::uint32_t crc = 0;  // CRC32 of the empty prefix
  std::size_t seen = 0;
  for (const util::SharedSlice& p : parts) {
    if (seen >= body) break;
    const std::size_t take = std::min(p.size(), body - seen);
    if (take == p.size() && p.has_cached_crc()) {
      // A bulk payload delivered by reference is the producer's own
      // immutable bytes, so its cached CRC folds in via Crc32Combine with
      // no second pass.  Anything rewritten in flight (a corruption
      // clone, a gather copy) arrives as a fresh cache-less slice and is
      // streamed for real below.
      crc = Crc32Combine(crc, p.cached_crc(), take);
    } else {
      crc = Crc32Combine(crc, Crc32(ByteSpan(p.data(), take)), take);
    }
    seen += take;
  }
  const std::uint32_t stored = static_cast<std::uint32_t>(trailer[0]) |
                               static_cast<std::uint32_t>(trailer[1]) << 8 |
                               static_cast<std::uint32_t>(trailer[2]) << 16 |
                               static_cast<std::uint32_t>(trailer[3]) << 24;
  if (crc != stored) return false;
  // Trim the trailer off the part list (it may span parts).
  std::size_t drop = kCrcTrailerBytes;
  while (drop > 0 && !parts.empty()) {
    util::SharedSlice& last = parts.back();
    if (last.size() <= drop) {
      drop -= last.size();
      parts.pop_back();
    } else {
      last = last.Slice(0, last.size() - drop);
      drop = 0;
    }
  }
  return true;
}

/// Sequential decoder over a reply frame's part list.  Scalars and small
/// strings are read byte-wise across part boundaries (tiny header memcpys,
/// uncounted); TakeSlice() hands back a zero-copy sub-slice whenever the
/// requested range lies within one owned part — which is exactly where
/// dispatch placed a PushBulkSlice payload.
class PartsCursor {
 public:
  explicit PartsCursor(std::span<const util::SharedSlice> parts)
      : parts_(parts) {
    for (const util::SharedSlice& p : parts_) remaining_ += p.size();
  }

  [[nodiscard]] std::size_t remaining() const { return remaining_; }

  bool ReadRaw(std::uint8_t* dst, std::size_t n) {
    if (n > remaining_) return false;
    while (n > 0) {
      const util::SharedSlice& p = parts_[part_];
      const std::size_t take = std::min(n, p.size() - off_);
      std::memcpy(dst, p.data() + off_, take);
      dst += take;
      Advance(take);
      n -= take;
    }
    return true;
  }

  Result<std::uint32_t> GetU32() {
    std::uint8_t b[4];
    if (!ReadRaw(b, 4)) return InvalidArgument("truncated reply frame");
    return static_cast<std::uint32_t>(b[0]) |
           static_cast<std::uint32_t>(b[1]) << 8 |
           static_cast<std::uint32_t>(b[2]) << 16 |
           static_cast<std::uint32_t>(b[3]) << 24;
  }

  Result<std::uint64_t> GetU64() {
    std::uint8_t b[8];
    if (!ReadRaw(b, 8)) return InvalidArgument("truncated reply frame");
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }

  Result<std::string> GetString() {
    auto len = GetU32();
    if (!len.ok()) return len.status();
    if (*len > remaining_) return InvalidArgument("truncated reply string");
    std::string out(*len, '\0');
    (void)ReadRaw(reinterpret_cast<std::uint8_t*>(out.data()), *len);
    return out;
  }

  Result<Buffer> GetBytes() {
    auto len = GetU32();
    if (!len.ok()) return len.status();
    if (*len > remaining_) return InvalidArgument("truncated reply bytes");
    Buffer out(*len, 0);
    (void)ReadRaw(out.data(), *len);
    return out;
  }

  /// The next `n` bytes as a slice.  Zero-copy (a ref-counted sub-slice of
  /// the delivered part) when the range sits inside one owned part; a
  /// boundary-straddling or unowned range gathers with one counted
  /// delivery copy.
  Result<util::SharedSlice> TakeSlice(std::size_t n) {
    if (n > remaining_) return InvalidArgument("truncated reply slice");
    if (n == 0) return util::SharedSlice{};
    if (part_ < parts_.size() && off_ + n <= parts_[part_].size() &&
        parts_[part_].owned()) {
      util::SharedSlice out = parts_[part_].Slice(off_, n);
      Advance(n);
      return out;
    }
    Buffer flat(n, 0);
    (void)ReadRaw(flat.data(), n);
    LWFS_COUNT_COPY(util::CopyKind::kDeliver, n);
    return util::SharedSlice::FromBuffer(std::move(flat));
  }

 private:
  void Advance(std::size_t n) {
    remaining_ -= n;
    off_ += n;
    while (part_ < parts_.size() && off_ >= parts_[part_].size()) {
      off_ -= parts_[part_].size();
      ++part_;
    }
  }

  std::span<const util::SharedSlice> parts_;
  std::size_t part_ = 0;
  std::size_t off_ = 0;
  std::size_t remaining_ = 0;
};

// Request header layout; see rpc.h for the portal conventions.
void EncodeHeader(Encoder& enc, Opcode opcode, std::uint64_t request_id,
                  portals::Nid client, std::uint64_t bulk_out_len,
                  std::uint64_t bulk_in_len, std::uint32_t bulk_out_crc) {
  enc.PutU32(opcode);
  enc.PutU64(request_id);
  enc.PutU32(client);
  enc.PutU64(bulk_out_len);
  enc.PutU64(bulk_in_len);
  enc.PutU32(bulk_out_crc);
}

struct Header {
  Opcode opcode;
  std::uint64_t request_id;
  portals::Nid client;
  std::uint64_t bulk_out_len;
  std::uint64_t bulk_in_len;
  std::uint32_t bulk_out_crc;
};

Result<Header> DecodeHeader(Decoder& dec) {
  Header h;
  auto opcode = dec.GetU32();
  auto request_id = dec.GetU64();
  auto client = dec.GetU32();
  auto bulk_out = dec.GetU64();
  auto bulk_in = dec.GetU64();
  auto bulk_out_crc = dec.GetU32();
  if (!opcode.ok() || !request_id.ok() || !client.ok() || !bulk_out.ok() ||
      !bulk_in.ok() || !bulk_out_crc.ok()) {
    return InvalidArgument("malformed rpc header");
  }
  h.opcode = *opcode;
  h.request_id = *request_id;
  h.client = *client;
  h.bulk_out_len = *bulk_out;
  h.bulk_in_len = *bulk_in;
  h.bulk_out_crc = *bulk_out_crc;
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// CallHandle
// ---------------------------------------------------------------------------

Result<Buffer> CallHandle::Await() {
  if (!state_) return FailedPrecondition("awaiting an empty call handle");
  util::Clock* clock = util::OrReal(state_->clock);
  std::unique_lock<std::mutex> lock(state_->mutex);
  clock->Wait(state_->cv, lock, [&] { return state_->done; });
  return state_->result;
}

bool CallHandle::TryAwait(Result<Buffer>* out) {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (!state_->done) return false;
  if (out != nullptr) *out = state_->result;
  return true;
}

util::SharedSlice CallHandle::ReplyBulk() const {
  if (!state_) return {};
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (!state_->done) return {};
  return state_->reply_bulk;  // refcount bump, no copy
}

void CallHandle::OnComplete(std::function<void(const Result<Buffer>&)> fn) {
  if (!state_ || !fn) return;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (!state_->done) {
      state_->on_complete = std::move(fn);  // replaces an unfired predecessor
      return;
    }
  }
  // Already complete: run on the caller's thread.  `result` is immutable
  // once `done` is set, so reading it outside the lock is safe.
  fn(state_->result);
}

// ---------------------------------------------------------------------------
// RpcClient
// ---------------------------------------------------------------------------

RpcClient::~RpcClient() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  WakeEngine();
  if (engine_.joinable()) clock_->Join(engine_);
  // Fail whatever was still in flight.  Regions detach before waiters wake,
  // so a late server push or reply hits no registered memory.
  std::vector<std::shared_ptr<detail::CallState>> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending.reserve(inflight_.size());
    for (auto& [id, state] : inflight_) pending.push_back(std::move(state));
    inflight_.clear();
  }
  for (auto& state : pending) {
    FinishCall(state, Aborted("rpc client destroyed with calls in flight"),
               Contact::kNeutral);
  }
}

void RpcClient::EnsureEngineLocked() {
  if (engine_running_) return;
  engine_running_ = true;
  engine_ = clock_->SpawnThread([this] { EngineLoop(); });
}

void RpcClient::WakeEngine() {
  portals::Event wake;
  wake.type = portals::EventType::kAck;  // replies arrive as kPut
  completions_.Inject(std::move(wake));
}

bool RpcClient::PerformSend(const std::shared_ptr<detail::CallState>& state,
                            Status* failure) {
  // No mutex_ here: an injected fabric delay may sleep inside Put, and
  // sleeping while holding the client lock would stall every caller (and
  // deadlock a virtual-time run, whose token holder must never block on a
  // lock owned by a sleeper).
  Status s = nic_->Put(state->server, state->request_portal, /*match_bits=*/0,
                       state->wire, 0, state->request_id);
  const auto now = clock_->Now();
  std::lock_guard<std::mutex> lock(mutex_);
  state->sending = false;
  auto it = inflight_.find(state->request_id);
  if (it == inflight_.end() || it->second != state) {
    // The reply raced back and completed the call while the Put was in
    // flight; there is nothing left to bookkeep.
    return true;
  }
  if (state->retransmit_pending) {
    // A corrupt reply raced back during this Put and already scheduled the
    // retransmit (accepted=false, next_send=now): keep that schedule
    // instead of re-arming the reply deadline for a reply that was
    // consumed.  The caller's WakeEngine() makes the timer pass send it.
    state->retransmit_pending = false;
    return true;
  }
  if (s.ok()) {
    state->accepted = true;
    state->deadline = now + state->timeout;
    return true;
  }
  if (s.code() != ErrorCode::kResourceExhausted) {
    *failure = std::move(s);
    inflight_.erase(it);
    return false;
  }
  if (++state->resend_attempts > state->max_resends) {
    *failure =
        ResourceExhausted("server request queue full, resends exhausted");
    inflight_.erase(it);
    return false;
  }
  resends_.fetch_add(1, std::memory_order_relaxed);
  state->next_send = now + std::chrono::microseconds(state->backoff.NextUs());
  return true;
}

Status RpcClient::ReattachReplySlot(detail::CallState& state) {
  portals::MeOptions reply_opts;
  reply_opts.allow_put = true;
  reply_opts.message_mode = true;
  reply_opts.unlink_on_use = true;
  reply_opts.deliver_parts = true;  // frame-carried bulk arrives zero-copy
  auto me = nic_->Attach(kReplyPortal, state.request_id, 0, {}, reply_opts,
                         &completions_);
  if (!me.ok()) return me.status();
  // Move-assign releases the consumed entry (Detach is idempotent for
  // already-unlinked handles).
  state.reply_region = portals::RegisteredRegion(nic_, *me);
  return OkStatus();
}

Status RpcClient::AdmitLocked(portals::Nid server) {
  if (options_.breaker_threshold <= 0) return OkStatus();
  auto it = breakers_.find(server);
  if (it == breakers_.end() || !it->second.open) return OkStatus();
  Breaker& b = it->second;
  if (clock_->Now() >= b.open_until && !b.probing) {
    // Half-open: let exactly one probe through; its outcome decides.
    b.probing = true;
    return OkStatus();
  }
  breaker_fast_fails_.fetch_add(1, std::memory_order_relaxed);
  return Unavailable("circuit breaker open for server " +
                     std::to_string(server));
}

void RpcClient::RecordContactLocked(portals::Nid server, Contact contact) {
  if (options_.breaker_threshold <= 0 || contact == Contact::kNeutral) return;
  Breaker& b = breakers_[server];
  if (contact == Contact::kReplied) {
    b = Breaker{};  // any decoded reply proves the server alive: close
    return;
  }
  ++b.consecutive;
  if (b.open) {
    // Failed half-open probe: stay open for another cooldown.
    b.open_until = clock_->Now() + options_.breaker_cooldown;
    b.probing = false;
  } else if (b.consecutive >= options_.breaker_threshold) {
    b.open = true;
    b.probing = false;
    b.open_until = clock_->Now() + options_.breaker_cooldown;
    breaker_opens_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool RpcClient::BreakerOpen(portals::Nid server) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = breakers_.find(server);
  return it != breakers_.end() && it->second.open;
}

void RpcClient::FinishCall(const std::shared_ptr<detail::CallState>& state,
                           Result<Buffer> result, Contact contact) {
  // Detach the reply slot and bulk regions *before* publishing the result:
  // the caller's buffers are guaranteed quiescent once Await() returns.
  state->reply_region.Release();
  state->out_region.Release();
  state->in_region.Release();
  if (!result.ok()) failures_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RecordContactLocked(state->server, contact);
    if (!result.ok()) ++op_tallies_[state->opcode].errors;
  }
  std::function<void(const Result<Buffer>&)> on_complete;
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->done = true;
    state->result = std::move(result);
    on_complete = std::move(state->on_complete);
    state->on_complete = nullptr;
  }
  // Callback before NotifyAll: an Await() that returns is guaranteed the
  // callback has already run.  No locks held — the callback may take its
  // own mutexes and call Notify* through the clock.
  if (on_complete) on_complete(state->result);
  clock_->NotifyAll(state->cv);
}

Result<CallHandle> RpcClient::CallAsync(portals::Nid server, Opcode opcode,
                                        ByteSpan request,
                                        const CallOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Status admitted = AdmitLocked(server);
    if (!admitted.ok()) {
      failures_.fetch_add(1, std::memory_order_relaxed);
      return admitted;
    }
  }
  calls_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t request_id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++op_tallies_[opcode].calls;
    request_id = next_request_id_++;
  }

  auto state = std::make_shared<detail::CallState>();
  state->request_id = request_id;
  state->clock = clock_;
  state->opcode = opcode;
  state->server = server;
  state->request_portal = options.request_portal;
  state->timeout = options.timeout.count() > 0 ? options.timeout
                                               : options_.default_timeout;
  state->max_resends = options.max_resends;
  state->max_retransmits = options.max_retransmits >= 0
                               ? options.max_retransmits
                               : options_.max_retransmits;
  state->bulk_in = options.bulk_in;
  // Seed from (nid, request id) so concurrent ranks draw uncorrelated
  // retry schedules against the same full portal.
  state->backoff =
      Backoff((static_cast<std::uint64_t>(nic_->nid()) << 32) ^ request_id);

  // Reply slot: one message-mode entry matched by request id, delivering
  // into the client-wide completion queue.  deliver_parts lets a reply
  // frame carrying a bulk slice arrive as the sender's part list by
  // reference — the zero-copy read delivery.
  portals::MeOptions reply_opts;
  reply_opts.allow_put = true;
  reply_opts.message_mode = true;
  reply_opts.unlink_on_use = true;
  reply_opts.deliver_parts = true;
  auto reply_me = nic_->Attach(kReplyPortal, request_id, 0, {}, reply_opts,
                               &completions_);
  if (!reply_me.ok()) return reply_me.status();
  state->reply_region = portals::RegisteredRegion(nic_, *reply_me);

  // Bulk registrations.  The server may move data in chunks at its own
  // pace, so the entries persist until the completion event (the engine
  // detaches them in FinishCall).  An owned bulk_out_slice registers as a
  // slice-backed entry: server pulls become zero-copy sub-slices and the
  // NIC's reference keeps the payload alive past client-side timeout.
  const ByteSpan bulk_out = options.bulk_out_slice.empty()
                                ? options.bulk_out
                                : options.bulk_out_slice.span();
  if (!options.bulk_out_slice.empty()) {
    auto me = nic_->AttachSlice(kBulkPortal, request_id, 0,
                                options.bulk_out_slice, nullptr);
    if (!me.ok()) return me.status();
    state->out_region = portals::RegisteredRegion(nic_, *me);
  } else if (!options.bulk_out.empty()) {
    portals::MeOptions opts;
    opts.allow_get = true;
    // Attach treats the span as mutable but a get-only entry never writes.
    MutableByteSpan span(const_cast<std::uint8_t*>(options.bulk_out.data()),
                         options.bulk_out.size());
    auto me = nic_->Attach(kBulkPortal, request_id, 0, span, opts, nullptr);
    if (!me.ok()) return me.status();
    state->out_region = portals::RegisteredRegion(nic_, *me);
  }
  if (!options.bulk_in.empty()) {
    portals::MeOptions opts;
    opts.allow_put = true;
    auto me = nic_->Attach(kBulkPortal, request_id, 0, options.bulk_in, opts,
                           nullptr);
    if (!me.ok()) return me.status();
    state->in_region = portals::RegisteredRegion(nic_, *me);
  }

  Encoder enc;
  EncodeHeader(enc, opcode, request_id, nic_->nid(), bulk_out.size(),
               options.bulk_in.size(),
               bulk_out.empty() ? 0 : Crc32(bulk_out));
  enc.PutRaw(request);
  Buffer wire = std::move(enc).Take();
  AppendCrcTrailer(wire);
  // Adopt, don't copy: retransmits re-Put this same slice by reference.
  state->wire = util::SharedSlice::FromBuffer(std::move(wire));

  Status send_failure = OkStatus();
  bool issued = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      send_failure = Aborted("rpc client shutting down");
    } else {
      EnsureEngineLocked();
      // Register before the first Put: the reply can race back from a
      // server worker before this thread takes another step.
      inflight_.emplace(request_id, state);
      state->next_send = clock_->Now();
      state->sending = true;
      issued = true;
    }
  }
  if (issued) {
    // First send, outside mutex_ (see PerformSend); a terminal failure has
    // already removed the call from inflight_ and surfaces synchronously.
    Status failure = OkStatus();
    if (!PerformSend(state, &failure)) send_failure = std::move(failure);
  }
  if (!send_failure.ok()) {
    state->reply_region.Release();
    state->out_region.Release();
    state->in_region.Release();
    failures_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      RecordContactLocked(server, send_failure.code() == ErrorCode::kAborted
                                      ? Contact::kNeutral
                                      : Contact::kTransportFailure);
      ++op_tallies_[opcode].errors;
    }
    return send_failure;
  }
  // The engine may be sleeping toward a far-off deadline; make it take
  // this call's deadline/resend schedule into account.
  WakeEngine();
  return CallHandle(state);
}

std::map<Opcode, ClientOpTally> RpcClient::OpTallies() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return op_tallies_;
}

Result<Buffer> RpcClient::Call(portals::Nid server, Opcode opcode,
                               ByteSpan request, const CallOptions& options) {
  auto handle = CallAsync(server, opcode, request, options);
  if (!handle.ok()) return handle.status();
  return handle->Await();
}

Result<Buffer> RpcClient::ResolveReply(
    detail::CallState& state, std::span<const util::SharedSlice> parts) {
  // Reply frame (CRC trailer already stripped), possibly multi-part:
  //   u32 code | string msg | bytes body | u64 bulk_len | bulk bytes
  //   | u32 push_crc | u64 push_bytes
  // The bulk bytes are a scatter-gather part of their own, so TakeSlice
  // aliases them zero-copy; the frame CRC already proved them intact.
  PartsCursor cur(parts);
  auto code = cur.GetU32();
  auto message = cur.GetString();
  auto body = cur.GetBytes();
  auto bulk_len = cur.GetU64();
  if (!code.ok() || !message.ok() || !body.ok() || !bulk_len.ok()) {
    return Internal("malformed rpc reply");
  }
  if (*bulk_len > 0) {
    auto bulk = cur.TakeSlice(static_cast<std::size_t>(*bulk_len));
    if (!bulk.ok()) return Internal("malformed rpc reply bulk");
    state.reply_bulk = std::move(*bulk);
  }
  auto push_crc = cur.GetU32();
  auto push_bytes = cur.GetU64();
  if (!push_crc.ok() || !push_bytes.ok()) {
    return Internal("malformed rpc reply");
  }
  if (*code != static_cast<std::uint32_t>(ErrorCode::kOk)) {
    return Status(static_cast<ErrorCode>(*code), std::move(*message));
  }
  if (*push_bytes > 0) {
    // Verify what the server pushed into our registered read region.  A
    // replayed (dedup-cached) reply carries the original push checksum, so
    // this also covers "bulk landed earlier, reply was retransmitted".
    if (*push_bytes > state.bulk_in.size()) {
      bulk_crc_failures_.fetch_add(1, std::memory_order_relaxed);
      return DataLoss("reply claims more pushed bytes than registered");
    }
    const std::uint32_t got =
        Crc32(ByteSpan(state.bulk_in.data(), *push_bytes));
    if (got != *push_crc) {
      bulk_crc_failures_.fetch_add(1, std::memory_order_relaxed);
      return DataLoss("bulk read payload failed checksum");
    }
  }
  return std::move(*body);
}

void RpcClient::EngineLoop() {
  for (;;) {
    // Timer pass: mark rejected sends whose backoff expired and calls whose
    // reply deadline passed for (re)transmission, fail calls out of budget,
    // and find the next wake-up.  The Puts themselves happen after the lock
    // is dropped — never under mutex_.
    util::Clock::TimePoint next_wake = util::Clock::TimePoint::max();
    std::vector<std::shared_ptr<detail::CallState>> to_send;
    std::vector<std::pair<std::shared_ptr<detail::CallState>, Status>> failed;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      const auto now = clock_->Now();
      for (auto it = inflight_.begin(); it != inflight_.end();) {
        detail::CallState& state = *it->second;
        if (state.sending) {
          // A Put for this call is in flight on another code path; its
          // outcome (and fresh deadline) lands when it returns.
          ++it;
          continue;
        }
        if (!state.accepted && now >= state.next_send) {
          state.sending = true;
          to_send.push_back(it->second);
          ++it;
          continue;
        }
        if (state.accepted && now >= state.deadline) {
          if (state.retransmits_used < state.max_retransmits) {
            // The reply never came (lost request, lost reply, or slow
            // server): retransmit the whole request.  Same request id, so
            // the server's dedup cache absorbs re-execution; the reply
            // slot is still attached (nothing consumed it).
            ++state.retransmits_used;
            retransmits_.fetch_add(1, std::memory_order_relaxed);
            state.accepted = false;
            state.next_send = now;
            state.sending = true;
            to_send.push_back(it->second);
            ++it;
            continue;
          }
          failed.emplace_back(std::move(it->second),
                              Timeout("no reply from server"));
          it = inflight_.erase(it);
          continue;
        }
        next_wake = std::min(next_wake,
                             state.accepted ? state.deadline : state.next_send);
        ++it;
      }
    }
    for (auto& state : to_send) {
      Status failure = OkStatus();
      if (!PerformSend(state, &failure)) {
        failed.emplace_back(state, std::move(failure));
      }
    }
    for (auto& [state, status] : failed) {
      FinishCall(state, std::move(status), Contact::kTransportFailure);
    }
    // Sends moved deadlines; recompute the wake-up before sleeping.
    if (!to_send.empty()) continue;

    std::optional<portals::Event> event;
    const auto now = clock_->Now();
    if (next_wake == util::Clock::TimePoint::max()) {
      // Nothing in flight: sleep until a new call wakes us.
      event = completions_.WaitFor(std::chrono::hours(1));
    } else if (next_wake > now) {
      event = completions_.WaitFor(next_wake - now);
    } else {
      event = completions_.Poll();
    }
    if (!event) continue;                                  // timer due
    if (event->type != portals::EventType::kPut) continue;  // wake-up ping

    // A reply: verify frame integrity, then route it to its call by request
    // id (completions for calls that already finished find no entry and are
    // dropped).  The frame arrives either as a referenced part list
    // (deliver_parts — zero-copy) or as one gathered/corruption-flattened
    // payload; both verify through the streaming multi-part path.
    std::vector<util::SharedSlice> reply_parts;
    if (!event->parts.empty()) {
      reply_parts = std::move(event->parts);
    } else {
      reply_parts.push_back(event->payload);
    }
    const bool frame_ok = VerifyAndStripCrcParts(reply_parts);
    std::shared_ptr<detail::CallState> state;
    Status corrupt_failure = OkStatus();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = inflight_.find(event->match_bits);
      if (it != inflight_.end()) {
        if (frame_ok) {
          state = std::move(it->second);
          inflight_.erase(it);
        } else {
          // Corrupt reply.  The delivery consumed the unlink_on_use reply
          // slot, so re-arm it and retransmit within budget; the server's
          // reply cache will re-send the intact frame.
          crc_rejects_.fetch_add(1, std::memory_order_relaxed);
          detail::CallState& s = *it->second;
          Status reattach = ReattachReplySlot(s);
          if (reattach.ok() && s.retransmits_used < s.max_retransmits) {
            ++s.retransmits_used;
            retransmits_.fetch_add(1, std::memory_order_relaxed);
            s.accepted = false;
            s.next_send = clock_->Now();
            // The corrupt reply can beat the sender's own Put-return (the
            // fabric delivers synchronously): flag the reschedule so
            // PerformSend does not overwrite it with accepted=true.
            if (s.sending) s.retransmit_pending = true;
            // The next timer pass performs the Put (sends never run under
            // mutex_).
          } else {
            state = std::move(it->second);
            inflight_.erase(it);
            corrupt_failure =
                reattach.ok()
                    ? DataLoss("corrupt reply, retransmits exhausted")
                    : std::move(reattach);
          }
        }
      }
    }
    if (state) {
      if (frame_ok) {
        FinishCall(state, ResolveReply(*state, reply_parts),
                   Contact::kReplied);
      } else {
        // Something did arrive, so the server is alive — but the call is
        // out of retransmit budget (or the slot could not be re-armed).
        FinishCall(state, std::move(corrupt_failure), Contact::kReplied);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ServerContext
// ---------------------------------------------------------------------------

Status ServerContext::PullBulk(MutableByteSpan out, std::size_t offset) {
  if (offset + out.size() > bulk_out_len_) {
    return OutOfRange("pull beyond client's registered payload");
  }
  Status s = OkStatus();
  for (int attempt = 0; attempt <= kBulkGetRetries; ++attempt) {
    s = nic_->Get(client_, kBulkPortal, request_id_, out, offset);
    if (s.code() != ErrorCode::kTimeout) break;  // only lost gets retry
  }
  if (!s.ok()) return s;
  // A span pull by definition stages the payload into server-side memory;
  // PullBulkSlice is the uncounted (zero-copy) alternative.
  LWFS_COUNT_COPY(util::CopyKind::kStage, out.size());
  total_pulled_ += out.size();
  if (pulled_in_order_ && offset == pulled_.bytes()) {
    pulled_.Update(ByteSpan(out.data(), out.size()));
  } else {
    pulled_in_order_ = false;
  }
  return s;
}

Result<util::SharedSlice> ServerContext::PullBulkSlice(std::size_t length,
                                                       std::size_t offset) {
  if (offset + length > bulk_out_len_) {
    return OutOfRange("pull beyond client's registered payload");
  }
  Result<util::SharedSlice> got = util::SharedSlice{};
  for (int attempt = 0; attempt <= kBulkGetRetries; ++attempt) {
    got = nic_->GetSlice(client_, kBulkPortal, request_id_, length, offset);
    if (got.ok() || got.status().code() != ErrorCode::kTimeout) break;
  }
  if (!got.ok()) return got.status();
  total_pulled_ += length;
  if (pulled_in_order_ && offset == pulled_.bytes()) {
    pulled_.Update(got->span());
  } else {
    pulled_in_order_ = false;
  }
  return got;
}

Status ServerContext::PushBulk(ByteSpan data, std::size_t offset) {
  if (offset + data.size() > bulk_in_len_) {
    return OutOfRange("push beyond client's registered region");
  }
  Status s = nic_->Put(client_, kBulkPortal, request_id_, data, offset);
  if (!s.ok()) return s;
  // A span push by definition pushes from volatile server-side staging
  // memory the read was copied into; PushBulkSlice is the uncounted
  // (zero-copy) alternative that rides store-owned bytes.
  LWFS_COUNT_COPY(util::CopyKind::kStage, data.size());
  total_pushed_ += data.size();
  if (pushed_in_order_ && offset == pushed_.bytes()) {
    pushed_.Update(data);
  } else {
    pushed_in_order_ = false;
  }
  return s;
}

Status ServerContext::PushBulkSlice(util::SharedSlice data) {
  if (!data.owned()) {
    return InvalidArgument("reply-frame bulk needs an owned slice");
  }
  if (data.empty()) return OkStatus();
  total_pushed_ += data.size();
  reply_bulk_bytes_ += data.size();
  reply_bulk_.push_back(std::move(data));
  return OkStatus();
}

Status ServerContext::VerifyPulledPayload() const {
  if (bulk_out_len_ == 0) return OkStatus();
  if (!pulled_in_order_ || pulled_.bytes() != bulk_out_len_) {
    return DataLoss("bulk payload not fully pulled in order, cannot verify");
  }
  if (pulled_.value() != bulk_out_crc_) {
    return DataLoss("bulk write payload failed checksum");
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// RpcServer
// ---------------------------------------------------------------------------

RpcServer::RpcServer(std::shared_ptr<portals::Nic> nic, ServerOptions options)
    : nic_(std::move(nic)),
      options_(options),
      clock_(util::OrReal(options.clock)),
      request_eq_(options.request_queue_depth, clock_) {}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::RegisterHandler(Opcode opcode, Handler handler) {
  auto [it, inserted] = handlers_.emplace(opcode, std::move(handler));
  if (!inserted) {
    Status collision =
        AlreadyExists("duplicate handler for opcode " + std::to_string(opcode));
    if (registration_error_.ok()) registration_error_ = collision;
    return collision;
  }
  return OkStatus();
}

std::vector<Opcode> RpcServer::RegisteredOpcodes() const {
  std::vector<Opcode> opcodes;
  opcodes.reserve(handlers_.size());
  for (const auto& [opcode, handler] : handlers_) opcodes.push_back(opcode);
  std::sort(opcodes.begin(), opcodes.end());
  return opcodes;
}

Status RpcServer::Start() {
  if (started_) return FailedPrecondition("server already started");
  if (!registration_error_.ok()) return registration_error_;
  portals::MeOptions opts;
  opts.allow_put = true;
  opts.message_mode = true;
  auto me = nic_->Attach(options_.request_portal, 0, ~0ULL, {}, opts,
                         &request_eq_);
  if (!me.ok()) return me.status();
  request_me_ = *me;
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.push_back(clock_->SpawnThread([this] { WorkerLoop(); }));
  }
  started_ = true;
  return OkStatus();
}

void RpcServer::Stop() {
  if (!started_) return;
  (void)nic_->Detach(request_me_);
  request_eq_.Close();
  for (std::thread& t : workers_) {
    if (t.joinable()) clock_->Join(t);
  }
  workers_.clear();
  started_ = false;
}

void RpcServer::ResetReplyCache() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  reply_cache_.clear();
  in_progress_.clear();
  cache_fifo_.clear();
  bulk_fifo_.clear();
  cache_bulk_bytes_ = 0;
}

void RpcServer::EraseCacheEntryLocked(const DedupKey& key) {
  auto it = reply_cache_.find(key);
  if (it == reply_cache_.end()) return;  // already evicted by the other bound
  cache_bulk_bytes_ -= it->second.bulk_bytes;
  reply_cache_.erase(it);
}

void RpcServer::WorkerLoop() {
  for (;;) {
    auto event = request_eq_.Wait();
    if (!event) return;  // queue closed
    Dispatch(*event);
  }
}

void RpcServer::Dispatch(const portals::Event& event) {
  // The frame slice aliases the delivered payload (zero-copy), so every
  // TakeSlice() a typed codec performs below shares the same owner.
  util::SharedSlice frame;
  if (!VerifyAndStripCrc(event.payload, &frame)) {
    // Corrupt on the wire: drop silently and let the client's retransmit
    // deliver an intact copy.
    crc_drops_.fetch_add(1, std::memory_order_relaxed);
    LWFS_DEBUG << "dropping corrupt request frame from nid "
               << event.initiator;
    return;
  }
  Decoder dec(frame);
  auto header = DecodeHeader(dec);
  if (!header.ok()) {
    LWFS_WARN << "dropping malformed request from nid " << event.initiator;
    return;
  }

  const DedupKey key{header->client, header->request_id};
  const bool dedup = options_.reply_cache_entries > 0;
  if (dedup) {
    util::Frame cached_reply;
    bool have_cached = false;
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      auto cached = reply_cache_.find(key);
      if (cached != reply_cache_.end()) {
        // At-most-once: a retransmitted request re-sends the recorded
        // reply; the handler does not run again.  (Region bulk pushes are
        // not replayed — the original execution already landed them, and
        // the reply's push checksum lets the client detect the rare case
        // it did not.  Frame-carried bulk *is* replayed: the cached frame
        // holds the payload slices by reference, so the resend aliases
        // the very same bytes.)  Copying the Frame only bumps slice
        // refcounts; the resend Put runs outside the lock because an
        // injected delivery delay may sleep inside it.
        have_cached = true;
        cached_reply = cached->second.wire;
      } else if (!in_progress_.insert(key).second) {
        // The original delivery is still executing; drop the duplicate —
        // the client's next retransmit will find the cached reply.
        dedup_hits_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    if (have_cached) {
      dedup_hits_.fetch_add(1, std::memory_order_relaxed);
      Status resent = nic_->PutFrame(header->client, kReplyPortal,
                                     header->request_id, cached_reply);
      if (!resent.ok()) {
        LWFS_DEBUG << "cached reply to nid " << header->client
                   << " dropped: " << resent.ToString();
      }
      return;
    }
  }

  // Only requests that reach a handler count as served: retransmits the
  // dedup cache absorbed and corrupt frames do not inflate the count, so
  // tests can pin served == unique requests even when timeouts retransmit.
  served_.fetch_add(1, std::memory_order_relaxed);

  Result<Buffer> result = Buffer{};
  std::uint32_t push_crc = 0;
  std::uint64_t push_bytes = 0;
  std::vector<util::SharedSlice> reply_bulk;
  std::uint64_t reply_bulk_bytes = 0;
  auto it = handlers_.find(header->opcode);
  if (it == handlers_.end()) {
    result = InvalidArgument("unknown opcode");
  } else {
    ServerContext ctx(nic_.get(), header->client, header->request_id,
                      header->bulk_out_len, header->bulk_in_len,
                      header->bulk_out_crc);
    result = it->second(ctx, dec);
    push_crc = ctx.pushed_crc();
    push_bytes = ctx.pushed_bytes();
    if (result.ok()) {
      // Frame-carried bulk (PushBulkSlice): the slices ride the reply as
      // scatter-gather parts.  On an error reply the payload is dropped —
      // bulk_len 0 — so the client never aliases bytes of a failed read.
      reply_bulk_bytes = ctx.reply_bulk_bytes();
      reply_bulk = ctx.TakeReplyBulk();
    }
  }

  // Assemble the reply as a scatter-gather frame: the handler's body buffer
  // and any PushBulkSlice payload are adopted as slices and never re-copied
  // — not into the frame, not into the reply cache, not for a dedup resend.
  util::FrameBuilder fb;
  Encoder& head = fb.header();
  if (result.ok()) {
    head.PutU32(static_cast<std::uint32_t>(ErrorCode::kOk));
    head.PutString("");
    head.PutU32(static_cast<std::uint32_t>(result->size()));
    fb.Append(util::SharedSlice::FromBuffer(std::move(*result)));
  } else {
    head.PutU32(static_cast<std::uint32_t>(result.status().code()));
    head.PutString(result.status().message());
    head.PutU32(0);  // empty body
  }
  Encoder& mid = fb.header();
  mid.PutU64(reply_bulk_bytes);
  for (util::SharedSlice& part : reply_bulk) fb.Append(std::move(part));
  Encoder& tail = fb.header();
  tail.PutU32(push_crc);
  tail.PutU64(push_bytes);
  util::Frame wire = fb.Build(/*with_crc_trailer=*/true);

  if (dedup) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    in_progress_.erase(key);
    if (reply_cache_.emplace(key, CachedReply{wire, reply_bulk_bytes}).second) {
      cache_fifo_.push_back(key);
      if (reply_bulk_bytes > 0) {
        bulk_fifo_.push_back(key);
        cache_bulk_bytes_ += reply_bulk_bytes;
      }
      while (cache_fifo_.size() > options_.reply_cache_entries) {
        EraseCacheEntryLocked(cache_fifo_.front());
        cache_fifo_.pop_front();
      }
      // Payload bytes are bounded separately — and much more tightly —
      // than entries: a slice-carrying reply pins its store-owned payload
      // for as long as it is cached, so the oldest bulk replies give
      // theirs back first.  A retransmit that misses one just re-runs the
      // (idempotent) read handler.
      while (cache_bulk_bytes_ > options_.reply_cache_bulk_bytes &&
             !bulk_fifo_.empty()) {
        EraseCacheEntryLocked(bulk_fifo_.front());
        bulk_fifo_.pop_front();
      }
    }
  }

  Status sent = nic_->PutFrame(header->client, kReplyPortal,
                               header->request_id, wire);
  if (!sent.ok()) {
    LWFS_DEBUG << "reply to nid " << header->client
               << " dropped: " << sent.ToString();
  }
}

}  // namespace lwfs::rpc
