#include "rpc/rpc.h"

#include <thread>

#include "util/logging.h"

namespace lwfs::rpc {

std::atomic<std::uint64_t> RpcClient::next_request_id_{1};

namespace {

// Request header layout; see rpc.h for the portal conventions.
void EncodeHeader(Encoder& enc, Opcode opcode, std::uint64_t request_id,
                  portals::Nid client, std::uint64_t bulk_out_len,
                  std::uint64_t bulk_in_len) {
  enc.PutU32(opcode);
  enc.PutU64(request_id);
  enc.PutU32(client);
  enc.PutU64(bulk_out_len);
  enc.PutU64(bulk_in_len);
}

struct Header {
  Opcode opcode;
  std::uint64_t request_id;
  portals::Nid client;
  std::uint64_t bulk_out_len;
  std::uint64_t bulk_in_len;
};

Result<Header> DecodeHeader(Decoder& dec) {
  Header h;
  auto opcode = dec.GetU32();
  auto request_id = dec.GetU64();
  auto client = dec.GetU32();
  auto bulk_out = dec.GetU64();
  auto bulk_in = dec.GetU64();
  if (!opcode.ok() || !request_id.ok() || !client.ok() || !bulk_out.ok() ||
      !bulk_in.ok()) {
    return InvalidArgument("malformed rpc header");
  }
  h.opcode = *opcode;
  h.request_id = *request_id;
  h.client = *client;
  h.bulk_out_len = *bulk_out;
  h.bulk_in_len = *bulk_in;
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// RpcClient
// ---------------------------------------------------------------------------

Result<Buffer> RpcClient::Call(portals::Nid server, Opcode opcode,
                               ByteSpan request, const CallOptions& options) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);

  // Reply slot: one message-mode entry matched by request id.
  portals::EventQueue reply_eq(2);
  portals::MeOptions reply_opts;
  reply_opts.allow_put = true;
  reply_opts.message_mode = true;
  reply_opts.unlink_on_use = true;
  auto reply_me = nic_->Attach(kReplyPortal, request_id, 0, {}, reply_opts,
                               &reply_eq);
  if (!reply_me.ok()) return reply_me.status();
  portals::RegisteredRegion reply_region(nic_, *reply_me);

  // Bulk registrations.  The server may move data in chunks, so the entries
  // persist until the reply arrives (RAII detach).
  portals::RegisteredRegion out_region;
  if (!options.bulk_out.empty()) {
    portals::MeOptions opts;
    opts.allow_get = true;
    // Attach treats the span as mutable but a get-only entry never writes.
    MutableByteSpan span(const_cast<std::uint8_t*>(options.bulk_out.data()),
                         options.bulk_out.size());
    auto me = nic_->Attach(kBulkPortal, request_id, 0, span, opts, nullptr);
    if (!me.ok()) return me.status();
    out_region = portals::RegisteredRegion(nic_, *me);
  }
  portals::RegisteredRegion in_region;
  if (!options.bulk_in.empty()) {
    portals::MeOptions opts;
    opts.allow_put = true;
    auto me = nic_->Attach(kBulkPortal, request_id, 0, options.bulk_in, opts,
                           nullptr);
    if (!me.ok()) return me.status();
    in_region = portals::RegisteredRegion(nic_, *me);
  }

  // Assemble and send the (small) request, resending with backoff while the
  // server's request portal is full.
  Encoder enc;
  EncodeHeader(enc, opcode, request_id, nic_->nid(), options.bulk_out.size(),
               options.bulk_in.size());
  enc.PutRaw(request);

  int backoff_us = 10;
  int attempts = 0;
  for (;;) {
    Status s = nic_->Put(server, options.request_portal, /*match_bits=*/0,
                         ByteSpan(enc.buffer()), 0, request_id);
    if (s.ok()) break;
    if (s.code() != ErrorCode::kResourceExhausted) {
      failures_.fetch_add(1, std::memory_order_relaxed);
      return s;
    }
    if (++attempts > options.max_resends) {
      failures_.fetch_add(1, std::memory_order_relaxed);
      return ResourceExhausted("server request queue full, resends exhausted");
    }
    resends_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    backoff_us = std::min(backoff_us * 2, 2000);
  }

  auto event = reply_eq.WaitFor(options.timeout);
  if (!event) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return Timeout("no reply from server");
  }

  Decoder dec(event->payload);
  auto code = dec.GetU32();
  auto message = dec.GetString();
  auto body = dec.GetBytes();
  if (!code.ok() || !message.ok() || !body.ok()) {
    return Internal("malformed rpc reply");
  }
  if (*code != static_cast<std::uint32_t>(ErrorCode::kOk)) {
    return Status(static_cast<ErrorCode>(*code), std::move(*message));
  }
  return std::move(*body);
}

// ---------------------------------------------------------------------------
// ServerContext
// ---------------------------------------------------------------------------

Status ServerContext::PullBulk(MutableByteSpan out, std::size_t offset) {
  if (offset + out.size() > bulk_out_len_) {
    return OutOfRange("pull beyond client's registered payload");
  }
  return nic_->Get(client_, kBulkPortal, request_id_, out, offset);
}

Status ServerContext::PushBulk(ByteSpan data, std::size_t offset) {
  if (offset + data.size() > bulk_in_len_) {
    return OutOfRange("push beyond client's registered region");
  }
  return nic_->Put(client_, kBulkPortal, request_id_, data, offset);
}

// ---------------------------------------------------------------------------
// RpcServer
// ---------------------------------------------------------------------------

RpcServer::RpcServer(std::shared_ptr<portals::Nic> nic, ServerOptions options)
    : nic_(std::move(nic)),
      options_(options),
      request_eq_(options.request_queue_depth) {}

RpcServer::~RpcServer() { Stop(); }

void RpcServer::RegisterHandler(Opcode opcode, Handler handler) {
  handlers_[opcode] = std::move(handler);
}

Status RpcServer::Start() {
  if (started_) return FailedPrecondition("server already started");
  portals::MeOptions opts;
  opts.allow_put = true;
  opts.message_mode = true;
  auto me = nic_->Attach(options_.request_portal, 0, ~0ULL, {}, opts,
                         &request_eq_);
  if (!me.ok()) return me.status();
  request_me_ = *me;
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  started_ = true;
  return OkStatus();
}

void RpcServer::Stop() {
  if (!started_) return;
  (void)nic_->Detach(request_me_);
  request_eq_.Close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  started_ = false;
}

void RpcServer::WorkerLoop() {
  for (;;) {
    auto event = request_eq_.Wait();
    if (!event) return;  // queue closed
    Dispatch(*event);
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

void RpcServer::Dispatch(const portals::Event& event) {
  Decoder dec(event.payload);
  auto header = DecodeHeader(dec);
  if (!header.ok()) {
    LWFS_WARN << "dropping malformed request from nid " << event.initiator;
    return;
  }

  Result<Buffer> result = Buffer{};
  auto it = handlers_.find(header->opcode);
  if (it == handlers_.end()) {
    result = InvalidArgument("unknown opcode");
  } else {
    ServerContext ctx(nic_.get(), header->client, header->request_id,
                      header->bulk_out_len, header->bulk_in_len);
    result = it->second(ctx, dec);
  }

  Encoder reply;
  if (result.ok()) {
    reply.PutU32(static_cast<std::uint32_t>(ErrorCode::kOk));
    reply.PutString("");
    reply.PutBytes(ByteSpan(result.value()));
  } else {
    reply.PutU32(static_cast<std::uint32_t>(result.status().code()));
    reply.PutString(result.status().message());
    reply.PutBytes({});
  }
  Status sent = nic_->Put(header->client, kReplyPortal, header->request_id,
                          ByteSpan(reply.buffer()));
  if (!sent.ok()) {
    LWFS_DEBUG << "reply to nid " << header->client
               << " dropped: " << sent.ToString();
  }
}

}  // namespace lwfs::rpc
